package qcommit

// The benchmarks in this file regenerate the paper's evaluation artifacts;
// EXPERIMENTS.md maps each to its figure/example/claim. Since the paper's
// testbed is a simulated network, wall-clock ns/op measures simulator cost;
// the protocol-level results are reported as custom metrics:
//
//	vtime-ms/commit   virtual time from Submit to cluster-wide commit
//	msgs/commit       network messages sent per committed transaction
//	acks-at-decision  PC-ACKs the coordinator had when it decided (C2 claim)
//	term-rate-pct     Monte Carlo termination rate (C1 claim)
//	read-avail-pct    Monte Carlo read availability (C1 claim)

import (
	"testing"

	"qcommit/internal/avail"
	"qcommit/internal/core"
)

func benchCommit(b *testing.B, proto Protocol) {
	b.Helper()
	var totalV, totalDecide, totalMsgs float64
	for i := 0; i < b.N; i++ {
		c := MustCluster(paperItems(), Options{Protocol: proto, Seed: int64(i + 1), DisableTrace: true})
		txn := c.Submit(1, map[ItemID]int64{"x": 1, "y": 2})
		end := c.Run()
		if c.Outcome(txn) != OutcomeCommitted {
			b.Fatalf("iteration %d: outcome %v", i, c.Outcome(txn))
		}
		decideAt, ok := c.eng.FirstDecisionAt(txn)
		if !ok {
			b.Fatal("no decision time recorded")
		}
		totalDecide += float64(decideAt) / 1e6
		totalV += float64(end) / 1e6
		totalMsgs += float64(c.NetworkStats().Sent)
	}
	b.ReportMetric(totalDecide/float64(b.N), "vtime-ms-to-decision")
	b.ReportMetric(totalV/float64(b.N), "vtime-ms/commit")
	b.ReportMetric(totalMsgs/float64(b.N), "msgs/commit")
}

// BenchmarkFig1TwoPCCommit regenerates Fig. 1's failure-free message flow
// under 2PC (see cmd/figures -fig 1 for the ladder itself).
func BenchmarkFig1TwoPCCommit(b *testing.B) { benchCommit(b, Proto2PC) }

// BenchmarkFig2ThreePCCommit regenerates Fig. 2 under 3PC.
func BenchmarkFig2ThreePCCommit(b *testing.B) { benchCommit(b, Proto3PC) }

// BenchmarkSkeenQuorumCommit measures Skeen's quorum commit protocol [16].
func BenchmarkSkeenQuorumCommit(b *testing.B) { benchCommit(b, ProtoSkeenQuorum) }

// BenchmarkFig9CommitQC1 regenerates Fig. 9 under commit protocol 1.
func BenchmarkFig9CommitQC1(b *testing.B) { benchCommit(b, ProtoQC1) }

// BenchmarkFig9CommitQC2 regenerates Fig. 9 under commit protocol 2, which
// the paper argues is the fastest (claim C2): compare vtime-ms/commit and
// acks-at-decision across the protocol benchmarks.
func BenchmarkFig9CommitQC2(b *testing.B) { benchCommit(b, ProtoQC2) }

// BenchmarkClaimC2AcksAtDecision measures how many PC-ACKs each quorum
// protocol's coordinator needed before sending COMMIT (3PC needs all 8, CP1
// needs w(x) votes for every item = 6, CP2 needs r(x) for some item = 2).
func BenchmarkClaimC2AcksAtDecision(b *testing.B) {
	for _, proto := range []Protocol{Proto3PC, ProtoQC1, ProtoQC2} {
		proto := proto
		b.Run(string(proto), func(b *testing.B) {
			var acks float64
			for i := 0; i < b.N; i++ {
				c := MustCluster(paperItems(), Options{Protocol: proto, Seed: int64(i + 1), DisableTrace: true})
				txn := c.Submit(1, map[ItemID]int64{"x": 1, "y": 2})
				c.Run()
				if c.Outcome(txn) != OutcomeCommitted {
					b.Fatal("commit failed")
				}
				n, ok := c.eng.AcksAtDecision(1, txn)
				if !ok {
					b.Fatal("coordinator ack counter unavailable")
				}
				acks += float64(n)
			}
			b.ReportMetric(acks/float64(b.N), "acks-at-decision")
		})
	}
}

// BenchmarkExample1SkeenBlocks replays Example 1 (Fig. 3): Skeen's quorum
// protocol blocks in all three partitions.
func BenchmarkExample1SkeenBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := MustCluster(paperItems(), Options{Protocol: ProtoSkeenQuorum, Seed: int64(i + 1),
			SkeenVc: 5, SkeenVa: 4, DisableTrace: true})
		txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
			1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
			5: StatePC, 6: StateWait, 7: StateWait, 8: StateWait,
		})
		c.Crash(1)
		c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5}, []SiteID{6, 7, 8})
		c.Run()
		rep := c.Availability(txn).Tally()
		if rep.Blocked != 3 || rep.Terminated != 0 {
			b.Fatalf("Example 1 shape broken: %+v", rep)
		}
	}
}

// BenchmarkExample4QC1Terminates replays Example 4: termination protocol 1
// aborts in G1 and G3, restoring access to x (read) and y (write).
func BenchmarkExample4QC1Terminates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: int64(i + 1), DisableTrace: true})
		txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
			1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
			5: StatePC, 6: StateWait, 7: StateWait, 8: StateWait,
		})
		c.Crash(1)
		c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5}, []SiteID{6, 7, 8})
		c.Run()
		rep := c.Availability(txn).Tally()
		if rep.Terminated != 2 || rep.Blocked != 1 {
			b.Fatalf("Example 4 shape broken: %+v", rep)
		}
	}
}

// BenchmarkExample2ThreePCInconsistent replays Example 2: the 3PC
// termination protocol splits the decision across partitions.
func BenchmarkExample2ThreePCInconsistent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := MustCluster(paperItems(), Options{Protocol: Proto3PC, Seed: int64(i + 1), DisableTrace: true})
		txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
			1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
			5: StatePC, 6: StateWait, 7: StateWait, 8: StateWait,
		})
		c.Crash(1)
		c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5}, []SiteID{6, 7, 8})
		c.Run()
		if len(c.Violations()) == 0 {
			b.Fatal("Example 2 should violate atomicity under 3PC")
		}
		_ = txn
	}
}

// BenchmarkClaimC1AvailabilityMonteCarlo runs the availability sweep (claim
// C1: the paper's protocols terminate more partitions and keep more items
// accessible than Skeen's quorum protocol) through the parallel Monte Carlo
// sweep under both evaluation engines; the b.N trials use the same seeds
// (1..N) the serial loop used, and both engines report identical
// availability metrics (the differential tests enforce it).
func BenchmarkClaimC1AvailabilityMonteCarlo(b *testing.B) {
	builders := avail.StandardBuilders()
	for _, eng := range []avail.Engine{avail.EngineReplay, avail.EngineAnalytic} {
		for _, bl := range builders {
			bl := bl
			b.Run(eng.String()+"/"+bl.Label, func(b *testing.B) {
				results, err := avail.MonteCarloParallel(avail.DefaultScenarioParams(), b.N, 1,
					[]avail.SpecBuilder{bl}, avail.MCOptions{Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				counts := results[0].Counts
				b.ReportMetric(100*counts.TerminationRate(), "term-rate-pct")
				b.ReportMetric(100*counts.ReadAvailability(), "read-avail-pct")
				b.ReportMetric(100*counts.WriteAvailability(), "write-avail-pct")
			})
		}
	}
}

// BenchmarkFig4ConcurrencySets measures the Fig. 4 analysis (partition-state
// enumeration), asserting the PS2/PS5 impossibility witness each time.
func BenchmarkFig4ConcurrencySets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := core.ConcurrencySets()
		found := false
		for _, other := range cs[core.PS2] {
			if other == core.PS5 {
				found = true
			}
		}
		if !found {
			b.Fatal("PS2/PS5 concurrency lost")
		}
	}
}

// BenchmarkTerminationRoundLatency measures a full termination round
// (election + poll + prepare + confirm + distribute) in a partition holding
// sites 2-4 of item x (w(x)=3 votes present) with all participants in W —
// a configuration that BOTH TP1 and TP2 can abort.
func BenchmarkTerminationRoundLatency(b *testing.B) {
	for _, proto := range []Protocol{ProtoQC1, ProtoQC2} {
		proto := proto
		b.Run(string(proto), func(b *testing.B) {
			var totalV float64
			for i := 0; i < b.N; i++ {
				c := MustCluster([]ReplicatedItem{
					{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3},
				}, Options{Protocol: proto, Seed: int64(i + 1), DisableTrace: true})
				txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1}, map[SiteID]State{
					2: StateWait, 3: StateWait, 4: StateWait,
				})
				c.Crash(1)
				end := c.Run()
				if got := c.OutcomeAt(2, txn); got != OutcomeAborted {
					b.Fatalf("expected abort, got %v", got)
				}
				totalV += float64(end) / 1e6
			}
			b.ReportMetric(totalV/float64(b.N), "vtime-ms/termination")
		})
	}
}

// BenchmarkReplicationSweep measures commit latency and message count as the
// replication degree grows (the cost side of quorum protocols).
func BenchmarkReplicationSweep(b *testing.B) {
	for _, n := range []int{3, 5, 7, 9} {
		n := n
		b.Run(string(rune('0'+n))+"copies", func(b *testing.B) {
			sites := make([]SiteID, n)
			for i := range sites {
				sites[i] = SiteID(i + 1)
			}
			var totalMsgs, totalV float64
			for i := 0; i < b.N; i++ {
				c := MustCluster([]ReplicatedItem{
					{Name: "x", Sites: sites},
				}, Options{Protocol: ProtoQC2, Seed: int64(i + 1), DisableTrace: true})
				txn := c.Submit(1, map[ItemID]int64{"x": 1})
				end := c.Run()
				if c.Outcome(txn) != OutcomeCommitted {
					b.Fatal("commit failed")
				}
				totalMsgs += float64(c.NetworkStats().Sent)
				totalV += float64(end) / 1e6
			}
			b.ReportMetric(totalMsgs/float64(b.N), "msgs/commit")
			b.ReportMetric(totalV/float64(b.N), "vtime-ms/commit")
		})
	}
}
