package qcommit

import (
	"errors"
	"reflect"
	"testing"
)

// TestChurnStudySmoke drives the root churn API end to end: deterministic
// results, all five protocol columns, zero safety violations under site
// churn.
func TestChurnStudySmoke(t *testing.T) {
	params := DefaultChurnParams()
	params.Horizon = 2 * Second
	res, err := ChurnStudy(params, 3, 1, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(res))
	for i, r := range res {
		labels[i] = r.Label
		if r.Violations != 0 {
			t.Errorf("%s: %d violations under site churn", r.Label, r.Violations)
		}
		if r.Counts.Submitted == 0 {
			t.Errorf("%s: no transactions submitted", r.Label)
		}
	}
	want := []string{"2PC", "3PC", "SkeenQ", "QC1", "QC2"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("protocol columns = %v, want %v", labels, want)
	}
	again, err := ChurnStudy(params, 3, 1, ChurnOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("ChurnStudy not deterministic across worker counts")
	}
	table := FormatChurnTable(res)
	ci := FormatChurnTableCI(res)
	if table == "" || ci == "" {
		t.Error("empty churn tables")
	}

	// The hybrid engine through the root API: identical transaction fates
	// on the same seeded worlds.
	params.Engine = ChurnEngineHybrid
	hybrid, err := ChurnStudy(params, 3, 1, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		r, h := res[i].Counts, hybrid[i].Counts
		if r.Committed != h.Committed || r.Aborted != h.Aborted || r.Blocked != h.Blocked ||
			r.Unresolved != h.Unresolved || r.Rejected != h.Rejected || res[i].Violations != hybrid[i].Violations {
			t.Errorf("%s: hybrid fates diverged from replay", res[i].Label)
		}
	}

	// Impossible placements surface as the typed error.
	bad := DefaultChurnParams()
	bad.CopiesPerItem = bad.NumSites + 1
	var pe *ChurnPlacementError
	if _, err := ChurnStudy(bad, 1, 1, ChurnOptions{}); !errors.As(err, &pe) {
		t.Errorf("ChurnStudy returned %v, want *ChurnPlacementError", err)
	}
}

// TestKickAt scripts a full recovery scenario through the root API: a
// partition blocks the minority side of an interrupted transaction, the
// heal is scheduled, and a KickAt right after lets the stragglers learn the
// decision.
func TestKickAt(t *testing.T) {
	cluster, err := NewCluster(PaperItems(), Options{Protocol: ProtoQC1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	txn := cluster.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2},
		map[SiteID]State{
			1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
			5: StateWait, 6: StateWait, 7: StateWait, 8: StateWait,
		})
	cluster.Crash(1)
	// {2,3} lacks any replica quorum: blocked there, aborted in the large
	// group.
	cluster.Partition([]SiteID{2, 3}, []SiteID{4, 5, 6, 7, 8})
	healAt := Time(0).Add(500 * Millisecond)
	cluster.HealAt(healAt)
	cluster.KickAt(healAt, txn)
	cluster.Run()
	for _, id := range []SiteID{2, 3, 4, 5, 6, 7, 8} {
		if got := cluster.OutcomeAt(id, txn); got != OutcomeAborted {
			t.Errorf("site%d = %v after heal+kick, want aborted", id, got)
		}
	}
	if v := cluster.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
