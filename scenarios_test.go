package qcommit

import (
	"strings"
	"testing"
)

// TestExample1ComparisonTable pins the exact per-protocol shape of the
// paper's Example 1 scenario — the headline comparison of EXPERIMENTS.md.
func TestExample1ComparisonTable(t *testing.T) {
	type row struct {
		terminated, blocked int
		readablePairs       int
		violations          bool
	}
	want := map[Protocol]row{
		// 2PC: everyone voted yes, nobody knows the decision: all blocked.
		Proto2PC: {terminated: 0, blocked: 3, readablePairs: 0},
		// 3PC: terminates everywhere but splits the decision (Example 2).
		Proto3PC: {terminated: 3, blocked: 0, readablePairs: 2, violations: true},
		// Skeen's quorum protocol: no partition reaches Vc=5 or Va=4 site
		// votes: all blocked (Example 1).
		ProtoSkeenQuorum: {terminated: 0, blocked: 3, readablePairs: 0},
		// The paper's protocol 1: G1 and G3 abort (Example 4).
		ProtoQC1: {terminated: 2, blocked: 1, readablePairs: 2},
		// Protocol 2 blocks here (its abort side needs w(x) votes for every
		// item); its advantage shows on the commit side and in aggregate.
		ProtoQC2: {terminated: 0, blocked: 3, readablePairs: 0},
	}
	for proto, w := range want {
		proto, w := proto, w
		t.Run(string(proto), func(t *testing.T) {
			c, txn, err := SetupExample1(proto, 1)
			if err != nil {
				t.Fatal(err)
			}
			c.Run()
			got := c.Availability(txn).Tally()
			if got.Terminated != w.terminated || got.Blocked != w.blocked {
				t.Errorf("terminated/blocked = %d/%d, want %d/%d",
					got.Terminated, got.Blocked, w.terminated, w.blocked)
			}
			if got.Readable != w.readablePairs {
				t.Errorf("readable pairs = %d, want %d", got.Readable, w.readablePairs)
			}
			if hasV := len(c.Violations()) > 0; hasV != w.violations {
				t.Errorf("violations = %v, want %v (%v)", hasV, w.violations, c.Violations())
			}
		})
	}
}

func TestSetupExample3PublicAPI(t *testing.T) {
	// Correct rule: safe for this seed.
	c, txn, err := SetupExample3(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("correct rule violated: %v", v)
	}
	_ = txn

	// Buggy rule at the known violating seed.
	c2, txn2, err := SetupExample3(true, 2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Run()
	if v := c2.Violations(); len(v) == 0 {
		t.Fatalf("buggy rule did not violate at seed 2: outcomes %v", c2.Outcomes(txn2))
	}
}

func TestSequenceDiagramPublicAPI(t *testing.T) {
	c := MustCluster([]ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3}, R: 2, W: 2},
	}, Options{Protocol: ProtoQC2, Seed: 1})
	txn := c.Submit(1, map[ItemID]int64{"x": 1})
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed")
	}
	d := c.SequenceDiagram()
	for _, want := range []string{"site1", "site3", "VOTE-REQ", "COMMIT", "o", ">"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
}

func TestSyncSitePublicPath(t *testing.T) {
	// Construct staleness directly: all sites PC except site8 (holds y),
	// which crashed in W; survivors commit; site8 restarts and anti-entropy
	// repairs its copy (this exercises Engine().SyncSite too).
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 30})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
		1: StatePC, 2: StatePC, 3: StatePC, 4: StatePC,
		5: StatePC, 6: StatePC, 7: StatePC, 8: StateWait,
	})
	c.Crash(8)
	c.Kick(txn)
	c.Run()
	if got := c.OutcomeAt(5, txn); got != OutcomeCommitted {
		t.Fatalf("survivors = %v", got)
	}
	c.Restart(8)
	c.Run()
	if v, _, err := c.CopyAt(8, "y"); err != nil || v != 2 {
		t.Errorf("site8 y = %d, %v; want 2 after anti-entropy", v, err)
	}
	// Re-running sync is idempotent.
	c.Engine().SyncSite(8)
	c.Run()
	if v, _, _ := c.CopyAt(8, "y"); v != 2 {
		t.Errorf("idempotent sync changed value to %d", v)
	}
}
