package qcommit

import (
	"errors"
	"strings"
	"testing"
)

// paperItems is the replica layout of the paper's Examples 1, 2 and 4.
func paperItems() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 100},
		{Name: "y", Sites: []SiteID{5, 6, 7, 8}, R: 2, W: 3, Initial: 200},
	}
}

func TestFailureFreeCommitPublicAPI(t *testing.T) {
	for _, proto := range AllProtocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustCluster(paperItems(), Options{Protocol: proto, Seed: 1})
			txn := c.Submit(1, map[ItemID]int64{"x": 111, "y": 222})
			c.Run()
			if got := c.Outcome(txn); got != OutcomeCommitted {
				t.Fatalf("outcome = %v, want committed", got)
			}
			if v, err := c.QuorumRead(1, "x"); err != nil || v != 111 {
				t.Errorf("QuorumRead(x) = %d, %v", v, err)
			}
			if v, err := c.QuorumRead(5, "y"); err != nil || v != 222 {
				t.Errorf("QuorumRead(y) = %d, %v", v, err)
			}
			if len(c.Violations()) != 0 {
				t.Errorf("violations: %v", c.Violations())
			}
		})
	}
}

func TestDefaultQuorumsAreMajority(t *testing.T) {
	c := MustCluster([]ReplicatedItem{
		{Name: "z", Sites: []SiteID{1, 2, 3, 4, 5}},
	}, Options{Seed: 1})
	txn := c.Submit(1, map[ItemID]int64{"z": 9})
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed with default quorums")
	}
	// w = 3, r = 3 for 5 copies: any 3 sites can read.
	c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5})
	if _, err := c.QuorumRead(1, "z"); err != nil {
		t.Errorf("3-site partition should read: %v", err)
	}
	if _, err := c.QuorumRead(4, "z"); err == nil {
		t.Error("2-site partition should not read")
	}
}

func TestWeightedCopies(t *testing.T) {
	// Site 1's copy carries 3 votes: it alone satisfies r=3.
	c := MustCluster([]ReplicatedItem{
		{Name: "w", Sites: []SiteID{1, 2, 3}, Votes: []int{3, 1, 1}, R: 3, W: 3},
	}, Options{Seed: 1})
	txn := c.Submit(1, map[ItemID]int64{"w": 5})
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed")
	}
	c.Partition([]SiteID{1}, []SiteID{2, 3})
	if _, err := c.QuorumRead(1, "w"); err != nil {
		t.Errorf("heavy copy alone should read: %v", err)
	}
	if _, err := c.QuorumRead(2, "w"); err == nil {
		t.Error("light copies should not reach the read quorum")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewCluster(nil, Options{}); err == nil {
		t.Error("empty items accepted")
	}
	if _, err := NewCluster([]ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2}, Votes: []int{1}},
	}, Options{}); err == nil {
		t.Error("mismatched votes length accepted")
	}
	if _, err := NewCluster([]ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 1, W: 3},
	}, Options{}); err == nil {
		t.Error("r+w = v accepted")
	}
	if _, err := NewCluster(paperItems(), Options{Protocol: "nope"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := NewCluster(paperItems(), Options{Protocol: ProtoSkeenQuorum, SkeenVc: 1, SkeenVa: 1}); err == nil {
		t.Error("invalid Skeen quorums accepted")
	}
}

func TestExample4ThroughPublicAPI(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 4})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
		1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
		5: StatePC, 6: StateWait, 7: StateWait, 8: StateWait,
	})
	c.Crash(1)
	c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5}, []SiteID{6, 7, 8})
	c.Run()

	// G1 aborted: x readable there with its pre-transaction value.
	if v, err := c.QuorumRead(2, "x"); err != nil || v != 100 {
		t.Errorf("G1 read x = %d, %v; want 100 (initial)", v, err)
	}
	// G3 aborted: y writable there.
	if !c.CanWrite(6, "y") {
		t.Error("G3 should be able to write y")
	}
	// G2 blocked: x inaccessible (site4's copy locked, quorum unreachable).
	if _, err := c.QuorumRead(4, "x"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("G2 read x err = %v, want ErrNoQuorum", err)
	}
	rep := c.Availability(txn)
	if len(rep.Groups) != 3 {
		t.Errorf("availability groups = %d", len(rep.Groups))
	}
	if !strings.Contains(rep.String(), "blocked") {
		t.Error("availability report should mention the blocked partition")
	}
}

func TestTwoPCBlocksThenRecoversAfterHeal(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: Proto2PC, Seed: 5})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
		1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
		5: StateWait, 6: StateWait, 7: StateWait, 8: StateWait,
	})
	c.Crash(1)
	c.Partition([]SiteID{1, 2, 3, 4}, []SiteID{5, 6, 7, 8})
	c.Run()
	if got := c.Outcome(txn); got != OutcomeBlocked {
		t.Fatalf("2PC under coordinator crash should block, got %v", got)
	}

	// The coordinator recovers: its WAL shows only VOTED-YES... all sites
	// uncertain. Heal and restart site1: cooperative termination still
	// blocks (all voted yes, nobody knows the decision) — the textbook 2PC
	// window. Now let site1's recovery resolve it: in this implementation
	// site1 is just another uncertain participant, so the transaction stays
	// blocked; this is exactly 2PC's weakness.
	c.Heal()
	c.Restart(1)
	c.Kick(txn)
	c.Run()
	if got := c.Outcome(txn); got != OutcomeBlocked {
		t.Fatalf("all-yes 2PC with lost coordinator decision must stay blocked, got %v", got)
	}
}

func TestQC1RecoversAfterHealWithKick(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 6})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
		1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
		5: StatePC, 6: StateWait, 7: StateWait, 8: StateWait,
	})
	c.Crash(1)
	c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5}, []SiteID{6, 7, 8})
	c.Run()
	// G2 blocked (Example 4).
	if got := c.OutcomeAt(4, txn); got != OutcomeBlocked {
		t.Fatalf("site4 = %v, want blocked", got)
	}
	// Partition heals; a fresh termination round must finish the job: the
	// new coordinator sees aborted sites and aborts G2's survivors.
	c.Heal()
	c.Kick(txn)
	c.Run()
	for _, id := range []SiteID{4, 5} {
		if got := c.OutcomeAt(id, txn); got != OutcomeAborted {
			t.Errorf("site%d after heal = %v, want aborted", id, got)
		}
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations: %v", c.Violations())
	}
	// Everything is accessible again.
	if _, err := c.QuorumRead(4, "x"); err != nil {
		t.Errorf("post-heal read: %v", err)
	}
}

func TestCrashRecoveryMidCommit(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 7})
	txn := c.Submit(1, map[ItemID]int64{"x": 7, "y": 8})
	// Let the protocol commit fully, then crash and restart a site: its WAL
	// must reflect the commit.
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed")
	}
	c.Crash(3)
	c.Restart(3)
	c.Run()
	if got := c.OutcomeAt(3, txn); got != OutcomeCommitted {
		t.Errorf("site3 after restart = %v, want committed (from WAL)", got)
	}
	if v, _, err := c.CopyAt(3, "x"); err != nil || v != 7 {
		t.Errorf("site3 copy of x = %d, %v", v, err)
	}
}

func TestCrashDuringPrepareRecoversViaTermination(t *testing.T) {
	// Crash a participant mid-protocol; the rest commit; the crashed site
	// must learn the decision after restarting (via its own termination
	// round polling the committed survivors).
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC2, Seed: 8})
	txn := c.Submit(1, map[ItemID]int64{"x": 7, "y": 8})
	c.CrashAt(Time(12*Millisecond), 8)
	c.Run()
	if got := c.Outcome(txn); got != OutcomeCommitted {
		t.Fatalf("survivors should commit (QC2 needs only r votes of acks), got %v", got)
	}
	c.Restart(8)
	c.Run()
	if got := c.OutcomeAt(8, txn); got != OutcomeCommitted {
		t.Errorf("site8 after restart = %v, want committed", got)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations: %v", c.Violations())
	}
}

func TestRefuseVotesAborts(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 9})
	c.RefuseVotes(7, true)
	txn := c.Submit(2, map[ItemID]int64{"x": 5, "y": 6})
	c.Run()
	if got := c.Outcome(txn); got != OutcomeAborted {
		t.Fatalf("outcome = %v, want aborted", got)
	}
	// Values untouched.
	if v, err := c.QuorumRead(1, "x"); err != nil || v != 100 {
		t.Errorf("x = %d, %v; want 100", v, err)
	}
}

func TestLadderAndStats(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 10})
	txn := c.Submit(1, map[ItemID]int64{"x": 1, "y": 2})
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed")
	}
	lad := c.MessageLadder()
	for _, want := range []string{"VOTE-REQ", "PREPARE-TO-COMMIT", "COMMIT"} {
		if !strings.Contains(lad, want) {
			t.Errorf("ladder missing %s", want)
		}
	}
	st := c.NetworkStats()
	if st.Sent == 0 || st.Delivered == 0 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnknownItemRead(t *testing.T) {
	c := MustCluster(paperItems(), Options{Seed: 1})
	if _, err := c.QuorumRead(1, "ghost"); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("err = %v, want ErrUnknownItem", err)
	}
	if c.CanWrite(1, "ghost") || c.CanRead(1, "ghost") {
		t.Error("unknown item reported accessible")
	}
}

func TestMessageLossAndDuplicationNeverViolate(t *testing.T) {
	// With 10% loss and 10% duplication every protocol except 3PC must
	// still terminate consistently (possibly via termination rounds); the
	// outcome may be commit, abort, or blocked — never mixed.
	for _, proto := range []Protocol{Proto2PC, ProtoSkeenQuorum, ProtoQC1, ProtoQC2} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			for seed := int64(1); seed <= 15; seed++ {
				c := MustCluster(paperItems(), Options{
					Protocol: proto, Seed: seed, LossProb: 0.10, DupProb: 0.10,
				})
				c.Submit(1, map[ItemID]int64{"x": 1, "y": 2})
				c.Run()
				if v := c.Violations(); len(v) != 0 {
					t.Fatalf("seed %d: violations under loss: %v", seed, v)
				}
			}
		})
	}
}

func TestHeavyDuplicationIdempotent(t *testing.T) {
	// Every message duplicated: idempotent handlers (re-acks, duplicate
	// COMMIT application, stale version applies) must keep the run clean.
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 3, DupProb: 1.0})
	txn := c.Submit(1, map[ItemID]int64{"x": 5, "y": 6})
	c.Run()
	if got := c.Outcome(txn); got != OutcomeCommitted {
		t.Fatalf("outcome = %v", got)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if v, err := c.QuorumRead(1, "x"); err != nil || v != 5 {
		t.Errorf("x = %d, %v", v, err)
	}
}

// TestAntiEntropyRepairsStaleCopy: a site that was down across a committed
// transaction it never voted on has a stale copy; restart triggers
// anti-entropy and the copy catches up to the committed version.
func TestAntiEntropyRepairsStaleCopy(t *testing.T) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 21})
	c.Crash(4) // holds a copy of x
	// Participants {1,2,3,4}: site4 down → vote timeout → abort. For the
	// commit to proceed we need x's quorum without site4... votes are
	// unanimous, so write a different item set: y lives on 5-8, commit one
	// on y only.
	txnY := c.Submit(5, map[ItemID]int64{"y": 77})
	c.Run()
	if c.Outcome(txnY) != OutcomeCommitted {
		t.Fatalf("y txn = %v", c.Outcome(txnY))
	}
	// Now restart site4 — its x copy is version 1 and consistent; no repair
	// needed. The interesting case: crash 8 (holds y), commit y again, then
	// restart 8 and check it catches up without having voted.
	c.Restart(4)
	c.Crash(8)
	txnY2 := c.Submit(5, map[ItemID]int64{"y": 88})
	c.Run()
	if got := c.Outcome(txnY2); got != OutcomeAborted {
		// With a copy holder down the unanimous vote fails: aborted.
		t.Fatalf("txnY2 = %v, want aborted (copy holder down)", got)
	}
	c.Restart(8)
	c.Run()
	// site8 was down across txnY? No — txnY committed before the crash. Set
	// up the real staleness: crash 8, commit on y's surviving quorum is
	// impossible (unanimous votes), so staleness can only arise from
	// termination-protocol commits. Construct it directly:
	c2 := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 22})
	txn := c2.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
		1: StatePC, 2: StatePC, 3: StatePC, 4: StatePC,
		5: StatePC, 6: StatePC, 7: StatePC,
		// site8 crashed in W and lost its volatile state; it holds y.
		8: StateWait,
	})
	c2.Crash(8)
	c2.Kick(txn)
	c2.Run()
	// Survivors hold w(x) votes for x (4 PC sites) and w(y)=3 for y
	// (sites 5-7 in PC) → immediate commit.
	if got := c2.OutcomeAt(5, txn); got != OutcomeCommitted {
		t.Fatalf("survivors = %v, want committed", got)
	}
	// site8's copy of y is stale (version 1).
	if _, ver, _ := c2.CopyAt(8, "y"); ver != 1 {
		t.Fatalf("site8 y version = %d, want stale 1", ver)
	}
	c2.Restart(8)
	c2.Run()
	v, ver, err := c2.CopyAt(8, "y")
	if err != nil || v != 2 || ver != uint64(txn)+1 {
		t.Errorf("site8 y after anti-entropy = %d (v%d), %v; want 2 (v%d)", v, ver, err, uint64(txn)+1)
	}
	if got := c2.OutcomeAt(8, txn); got != OutcomeCommitted {
		t.Errorf("site8 outcome after restart = %v, want committed (termination tells it)", got)
	}
}

// TestPersistentClusterPublicAPI: WALDir makes the whole database durable —
// a second cluster over the same directory resumes the committed state.
func TestPersistentClusterPublicAPI(t *testing.T) {
	dir := t.TempDir()
	c1 := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 1, WALDir: dir})
	txn := c1.Submit(1, map[ItemID]int64{"x": 1234, "y": 5678})
	c1.Run()
	if c1.Outcome(txn) != OutcomeCommitted {
		t.Fatal("commit failed")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 2, WALDir: dir})
	defer c2.Close()
	if got := c2.Outcome(txn); got != OutcomeCommitted {
		t.Fatalf("restored outcome = %v", got)
	}
	if v, err := c2.QuorumRead(2, "x"); err != nil || v != 1234 {
		t.Errorf("restored x = %d, %v", v, err)
	}
}
