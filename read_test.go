package qcommit

import (
	"errors"
	"testing"
)

// accessItems is a single 4-copy item with the paper's r=2/w=3 quorums.
func accessItems() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 100},
	}
}

// TestAccessPathTable drives QuorumRead, CanRead and CanWrite through the
// failure shapes the shared vote-counting helper must classify: down
// requester, unknown item, partitioned-away copies, locked copies, and
// weighted (multi-vote) copies.
func TestAccessPathTable(t *testing.T) {
	cases := []struct {
		name     string
		items    []ReplicatedItem
		setup    func(c *Cluster) TxnID
		from     SiteID
		item     ItemID
		wantErr  error
		wantVal  int64
		canRead  bool
		canWrite bool
	}{
		{
			name:     "healthy cluster reads and writes",
			items:    accessItems(),
			from:     1,
			item:     "x",
			wantVal:  100,
			canRead:  true,
			canWrite: true,
		},
		{
			name:    "unknown item",
			items:   accessItems(),
			from:    1,
			item:    "ghost",
			wantErr: ErrUnknownItem,
		},
		{
			name:  "down requester cannot assemble quorums",
			items: accessItems(),
			setup: func(c *Cluster) TxnID {
				c.Crash(1)
				return 0
			},
			from:    1,
			item:    "x",
			wantErr: ErrSiteDown,
		},
		{
			name:  "partitioned-away copies do not count",
			items: accessItems(),
			setup: func(c *Cluster) TxnID {
				c.Partition([]SiteID{1}, []SiteID{2, 3, 4})
				return 0
			},
			from:    1,
			item:    "x",
			wantErr: ErrNoQuorum,
		},
		{
			name:  "majority partition keeps reading and writing",
			items: accessItems(),
			setup: func(c *Cluster) TxnID {
				c.Partition([]SiteID{1}, []SiteID{2, 3, 4})
				return 0
			},
			from:     2,
			item:     "x",
			wantVal:  100,
			canRead:  true,
			canWrite: true,
		},
		{
			name:  "locked copies drop below the write quorum",
			items: accessItems(),
			setup: func(c *Cluster) TxnID {
				// Sites 3 and 4 hold a pending transaction's X locks.
				return c.SetupInterrupted(3, map[ItemID]int64{"x": 7}, map[SiteID]State{
					3: StateWait, 4: StateWait,
				})
			},
			from:     1,
			item:     "x",
			wantVal:  100, // free copies at 1,2 still reach r=2
			canRead:  true,
			canWrite: false, // 2 free votes < w=3
		},
		{
			name:  "all copies locked blocks reads too",
			items: accessItems(),
			setup: func(c *Cluster) TxnID {
				return c.SetupInterrupted(1, map[ItemID]int64{"x": 7}, map[SiteID]State{
					1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
				})
			},
			from:    1,
			item:    "x",
			wantErr: ErrNoQuorum,
		},
		{
			name: "heavy copy alone reaches weighted quorums",
			items: []ReplicatedItem{
				{Name: "w", Sites: []SiteID{1, 2, 3}, Votes: []int{3, 1, 1}, R: 3, W: 3, Initial: 5},
			},
			setup: func(c *Cluster) TxnID {
				c.Partition([]SiteID{1}, []SiteID{2, 3})
				return 0
			},
			from:     1,
			item:     "w",
			wantVal:  5,
			canRead:  true,
			canWrite: true,
		},
		{
			name: "light copies miss weighted quorums",
			items: []ReplicatedItem{
				{Name: "w", Sites: []SiteID{1, 2, 3}, Votes: []int{3, 1, 1}, R: 3, W: 3, Initial: 5},
			},
			setup: func(c *Cluster) TxnID {
				c.Partition([]SiteID{1}, []SiteID{2, 3})
				return 0
			},
			from:    2,
			item:    "w",
			wantErr: ErrNoQuorum,
		},
	}
	for _, strategy := range AllStrategies() {
		for _, tc := range cases {
			tc := tc
			t.Run(strategy.String()+"/"+tc.name, func(t *testing.T) {
				c := MustCluster(tc.items, Options{Seed: 1, Strategy: strategy})
				if tc.setup != nil {
					tc.setup(c)
				}
				v, err := c.QuorumRead(tc.from, tc.item)
				if tc.wantErr != nil {
					// Optimistic read-one relaxes only the vote threshold:
					// down-requester and unknown-item failures are identical
					// under both strategies, and so is the no-quorum verdict
					// whenever not even one free copy is reachable. The two
					// partition cases genuinely diverge (read-one succeeds),
					// so skip those for the missing-writes column.
					if strategy == StrategyMissingWrites && errors.Is(tc.wantErr, ErrNoQuorum) {
						t.Skip("optimistic read-one relaxes the read quorum")
					}
					if !errors.Is(err, tc.wantErr) {
						t.Fatalf("QuorumRead err = %v, want %v", err, tc.wantErr)
					}
					if c.CanRead(tc.from, tc.item) {
						t.Error("CanRead true where QuorumRead fails")
					}
					if tc.canWrite != c.CanWrite(tc.from, tc.item) {
						t.Errorf("CanWrite = %v, want %v", !tc.canWrite, tc.canWrite)
					}
					return
				}
				if err != nil || v != tc.wantVal {
					t.Fatalf("QuorumRead = %d, %v; want %d", v, err, tc.wantVal)
				}
				if got := c.CanRead(tc.from, tc.item); got != tc.canRead {
					t.Errorf("CanRead = %v, want %v", got, tc.canRead)
				}
				if got := c.CanWrite(tc.from, tc.item); got != tc.canWrite {
					t.Errorf("CanWrite = %v, want %v", got, tc.canWrite)
				}
			})
		}
	}
}

// TestCanReadAgreesWithQuorumRead pins the satellite fix: CanRead must be a
// pure vote count that agrees with QuorumRead's verdict in every reachable
// configuration, without taking the value-resolution detour.
func TestCanReadAgreesWithQuorumRead(t *testing.T) {
	c := MustCluster(accessItems(), Options{Seed: 3})
	configs := []func(){
		func() {},
		func() { c.Partition([]SiteID{1, 2}, []SiteID{3, 4}) },
		func() { c.Crash(2) },
		func() { c.Crash(3) },
		func() { c.Heal() },
		func() { c.Restart(2); c.Restart(3) },
	}
	for i, apply := range configs {
		apply()
		for _, from := range c.Sites() {
			_, err := c.QuorumRead(from, "x")
			if got, want := c.CanRead(from, "x"), err == nil; got != want {
				t.Errorf("config %d from %v: CanRead = %v, QuorumRead err = %v", i, from, got, err)
			}
		}
	}
}

// TestMissingWritesOptimisticReadOne: with no missing writes, any single
// copy serves reads — including from a singleton partition where the quorum
// strategy refuses.
func TestMissingWritesOptimisticReadOne(t *testing.T) {
	c := MustCluster(accessItems(), Options{Seed: 2, Strategy: StrategyMissingWrites})
	if got := c.Strategy(); got != StrategyMissingWrites {
		t.Fatalf("Strategy() = %v", got)
	}
	if got := c.ItemMode("x"); got != ModeOptimistic {
		t.Fatalf("fresh item mode = %v, want optimistic", got)
	}
	c.Partition([]SiteID{3}, []SiteID{1, 2, 4})
	if v, err := c.QuorumRead(3, "x"); err != nil || v != 100 {
		t.Errorf("optimistic read-one from singleton = %d, %v; want 100", v, err)
	}
	if !c.CanRead(3, "x") {
		t.Error("CanRead false in optimistic mode with one copy reachable")
	}
	if c.CanWrite(3, "x") {
		t.Error("one copy must not reach the write quorum")
	}
	// The quorum strategy refuses the same read.
	q := MustCluster(accessItems(), Options{Seed: 2})
	q.Partition([]SiteID{3}, []SiteID{1, 2, 4})
	if _, err := q.QuorumRead(3, "x"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("quorum strategy read err = %v, want ErrNoQuorum", err)
	}
	if q.ItemMode("x") != ModePessimistic {
		t.Error("quorum-strategy items must report pessimistic mode")
	}
}

// TestMissingWritesDemotionAndRestartCatchUp: a commit that cannot reach a
// crashed copy demotes the item to pessimistic mode; restarting the site
// catches its copy up (anti-entropy + termination) and restores optimistic
// mode.
func TestMissingWritesDemotionAndRestartCatchUp(t *testing.T) {
	c := MustCluster(accessItems(), Options{Protocol: ProtoQC1, Seed: 11, Strategy: StrategyMissingWrites})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 777}, map[SiteID]State{
		1: StatePC, 2: StatePC, 3: StatePC, 4: StateWait,
	})
	c.Crash(4)
	c.Kick(txn)
	c.Run()
	if got := c.OutcomeAt(1, txn); got != OutcomeCommitted {
		t.Fatalf("survivors = %v, want committed (3 PC votes = w)", got)
	}
	if got := c.ItemMode("x"); got != ModePessimistic {
		t.Fatalf("mode after missed copy = %v, want pessimistic", got)
	}
	if missing := c.MissingWritesAt("x"); len(missing) != 1 || missing[0] != 4 {
		t.Fatalf("missing sites = %v, want [4]", missing)
	}
	if d, r := c.ModeTransitions(); d != 1 || r != 0 {
		t.Errorf("transitions = %d/%d, want 1/0", d, r)
	}
	// Pessimistic reads still work through the fresh copies.
	if v, err := c.QuorumRead(1, "x"); err != nil || v != 777 {
		t.Errorf("pessimistic read = %d, %v; want 777", v, err)
	}
	// The stale copy catches up after restart and the item recovers.
	c.Restart(4)
	c.Run()
	if got := c.ItemMode("x"); got != ModeOptimistic {
		t.Errorf("mode after catch-up = %v, want optimistic", got)
	}
	if missing := c.MissingWritesAt("x"); len(missing) != 0 {
		t.Errorf("missing sites after catch-up = %v, want none", missing)
	}
	if d, r := c.ModeTransitions(); d != 1 || r != 1 {
		t.Errorf("transitions = %d/%d, want 1/1", d, r)
	}
	if v, _, err := c.CopyAt(4, "x"); err != nil || v != 777 {
		t.Errorf("site4 copy = %d, %v; want 777", v, err)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations: %v", c.Violations())
	}
}

// TestMissingWritesStaleCopyExcludedFromReads: a copy carrying a missing
// write must not serve (or count votes toward) reads, even where it would
// satisfy the raw vote arithmetic — only heal-time catch-up readmits it.
func TestMissingWritesStaleCopyExcludedFromReads(t *testing.T) {
	items := []ReplicatedItem{
		{Name: "z", Sites: []SiteID{1, 2, 3, 4, 5}, R: 2, W: 4, Initial: 9},
	}
	c := MustCluster(items, Options{Protocol: ProtoQC1, Seed: 13, Strategy: StrategyMissingWrites})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"z": 55}, map[SiteID]State{
		1: StatePC, 2: StatePC, 3: StatePC, 4: StatePC, 5: StateWait,
	})
	c.Crash(5)
	c.Kick(txn)
	c.Run()
	if got := c.OutcomeAt(1, txn); got != OutcomeCommitted {
		t.Fatalf("survivors = %v, want committed (4 PC votes = w)", got)
	}
	if missing := c.MissingWritesAt("z"); len(missing) != 1 || missing[0] != 5 {
		t.Fatalf("missing sites = %v, want [5]", missing)
	}
	// Bring site 5 back but isolate it with one fresh copy: 1 fresh vote
	// < r=2, and the stale copy must not make up the difference.
	c.Partition([]SiteID{1, 5}, []SiteID{2, 3, 4})
	c.Restart(5)
	if _, err := c.QuorumRead(1, "z"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("read with one fresh + one stale copy err = %v, want ErrNoQuorum", err)
	}
	if c.CanRead(5, "z") {
		t.Error("stale copy counted toward the read quorum")
	}
	// Stale copies still accept writes (a full-value write heals them), so
	// write votes count them: the majority partition holds only 3 < w=4.
	if c.CanWrite(2, "z") {
		t.Error("3 votes should miss w=4")
	}
	// Healing triggers the catch-up pass; once the stale copy applies the
	// newest version the item returns to optimistic mode everywhere.
	c.Heal()
	if !c.CanWrite(2, "z") {
		t.Error("full partition should reach w=4 (stale copies accept writes)")
	}
	c.Run()
	if got := c.ItemMode("z"); got != ModeOptimistic {
		t.Errorf("mode after heal = %v, want optimistic", got)
	}
	if v, _, err := c.CopyAt(5, "z"); err != nil || v != 55 {
		t.Errorf("site5 copy after heal = %d, %v; want 55", v, err)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations: %v", c.Violations())
	}
}

// TestMissingWritesFullReachStaysOptimistic: a failure-free commit reaches
// every copy, so the item never leaves optimistic mode.
func TestMissingWritesFullReachStaysOptimistic(t *testing.T) {
	for _, proto := range AllProtocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustCluster(accessItems(), Options{Protocol: proto, Seed: 4, Strategy: StrategyMissingWrites})
			txn := c.Submit(1, map[ItemID]int64{"x": 42})
			c.Run()
			if got := c.Outcome(txn); got != OutcomeCommitted {
				t.Fatalf("outcome = %v, want committed", got)
			}
			if got := c.ItemMode("x"); got != ModeOptimistic {
				t.Errorf("mode after full-reach commit = %v, want optimistic", got)
			}
			if d, r := c.ModeTransitions(); d != 0 || r != 0 {
				t.Errorf("transitions = %d/%d, want 0/0", d, r)
			}
			if v, err := c.QuorumRead(2, "x"); err != nil || v != 42 {
				t.Errorf("read = %d, %v; want 42", v, err)
			}
		})
	}
}
