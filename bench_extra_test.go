package qcommit

import (
	"fmt"
	"testing"

	"qcommit/internal/avail"
	"qcommit/internal/voting"
	"qcommit/internal/workload"
)

// BenchmarkThroughputSequential streams committed transactions through one
// cluster per protocol, reporting virtual milliseconds per committed
// transaction — the steady-state cost of each protocol's extra phases.
func BenchmarkThroughputSequential(b *testing.B) {
	for _, proto := range AllProtocols() {
		proto := proto
		b.Run(string(proto), func(b *testing.B) {
			c := MustCluster(paperItems(), Options{Protocol: proto, Seed: 1, DisableTrace: true})
			start := c.Now()
			for i := 0; i < b.N; i++ {
				txn := c.Submit(SiteID(i%4+1), map[ItemID]int64{"x": int64(i), "y": int64(i)})
				c.Run()
				if c.Outcome(txn) != OutcomeCommitted {
					b.Fatalf("txn %d: %v", i, c.Outcome(txn))
				}
			}
			elapsed := float64(c.Now()-start) / 1e6
			b.ReportMetric(elapsed/float64(b.N), "vtime-ms/txn")
		})
	}
}

// BenchmarkMessageLossSweep measures how message loss degrades the commit
// rate under QC1: the fraction of transactions that still commit (possibly
// via termination rounds) at 0%, 5%, 10% and 20% loss.
func BenchmarkMessageLossSweep(b *testing.B) {
	for _, loss := range []float64{0, 0.05, 0.10, 0.20} {
		loss := loss
		b.Run(fmt.Sprintf("loss%.0f%%", loss*100), func(b *testing.B) {
			committed, aborted, blocked := 0, 0, 0
			for i := 0; i < b.N; i++ {
				c := MustCluster(paperItems(), Options{
					Protocol: ProtoQC1, Seed: int64(i + 1), LossProb: loss, DisableTrace: true,
				})
				txn := c.Submit(1, map[ItemID]int64{"x": 1, "y": 2})
				c.Run()
				if len(c.Violations()) != 0 {
					b.Fatalf("seed %d: violations under loss", i+1)
				}
				switch c.Outcome(txn) {
				case OutcomeCommitted:
					committed++
				case OutcomeAborted:
					aborted++
				default:
					blocked++
				}
			}
			total := float64(committed + aborted + blocked)
			b.ReportMetric(100*float64(committed)/total, "commit-pct")
			b.ReportMetric(100*float64(blocked)/total, "blocked-pct")
		})
	}
}

// BenchmarkQuorumRead measures the weighted-voting read path (quorum check +
// version resolution) on a healthy cluster.
func BenchmarkQuorumRead(b *testing.B) {
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC1, Seed: 1, DisableTrace: true})
	txn := c.Submit(1, map[ItemID]int64{"x": 42, "y": 43})
	c.Run()
	if c.Outcome(txn) != OutcomeCommitted {
		b.Fatal("setup commit failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.QuorumRead(2, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadMixed streams a generated workload (2 writes per
// transaction, 20% hot-spot skew) through QC2 and reports commit rate and
// per-transaction virtual latency. Conflicting transactions may abort under
// the no-wait lock policy; that is part of the measurement.
func BenchmarkWorkloadMixed(b *testing.B) {
	items := []ReplicatedItem{
		{Name: "a", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3},
		{Name: "b", Sites: []SiteID{3, 4, 5, 6}, R: 2, W: 3},
		{Name: "c", Sites: []SiteID{5, 6, 7, 8}, R: 2, W: 3},
	}
	asgn := voting.MustAssignment(
		voting.Uniform("a", 2, 3, 1, 2, 3, 4),
		voting.Uniform("b", 2, 3, 3, 4, 5, 6),
		voting.Uniform("c", 2, 3, 5, 6, 7, 8),
	)
	gen, err := workload.NewGenerator(asgn, workload.Mix{WritesPerTxn: 2, HotFraction: 0.2}, 77)
	if err != nil {
		b.Fatal(err)
	}
	c := MustCluster(items, Options{Protocol: ProtoQC2, Seed: 1, DisableTrace: true})
	committed := 0
	start := c.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := gen.Next()
		writes := make(map[ItemID]int64, len(txn.Writeset))
		for _, u := range txn.Writeset {
			writes[u.Item] = u.Value
		}
		id := c.Submit(txn.Coord, writes)
		c.Run()
		if c.Outcome(id) == OutcomeCommitted {
			committed++
		}
	}
	b.StopTimer()
	elapsed := float64(c.Now()-start) / 1e6
	b.ReportMetric(100*float64(committed)/float64(b.N), "commit-pct")
	b.ReportMetric(elapsed/float64(b.N), "vtime-ms/txn")
}

// BenchmarkAblationTerminationRounds measures the cost of the reenterable
// termination protocol's retry loop: a partition that can never form a
// quorum burns MaxTerminationRounds election+poll rounds before resigning.
func BenchmarkAblationTerminationRounds(b *testing.B) {
	for _, rounds := range []int{1, 3, 6} {
		rounds := rounds
		b.Run(fmt.Sprintf("rounds%d", rounds), func(b *testing.B) {
			var totalV float64
			for i := 0; i < b.N; i++ {
				c := MustCluster(paperItems(), Options{
					Protocol: ProtoQC1, Seed: int64(i + 1),
					MaxTerminationRounds: rounds, DisableTrace: true,
				})
				// G2 of Example 1: can never terminate, always blocks.
				txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, map[SiteID]State{
					4: StateWait, 5: StatePC,
				})
				c.Crash(1)
				c.Partition([]SiteID{4, 5})
				end := c.Run()
				if got := c.OutcomeAt(4, txn); got != OutcomeBlocked {
					b.Fatalf("expected blocked, got %v", got)
				}
				totalV += float64(end) / 1e6
			}
			b.ReportMetric(totalV/float64(b.N), "vtime-ms-to-resign")
		})
	}
}

// BenchmarkAvailabilityVsGroups sweeps the maximum number of partition
// groups (the x-axis of an availability-vs-fragmentation figure): the more
// fragments, the fewer partitions hold replica quorums, so termination rates
// fall for every quorum protocol — but QC1/QC2 degrade more slowly.
func BenchmarkAvailabilityVsGroups(b *testing.B) {
	for _, groups := range []int{2, 3, 4} {
		groups := groups
		for _, bl := range avail.StandardBuilders() {
			bl := bl
			if bl.Label == "3PC" {
				continue // violates atomicity under partitions; excluded here
			}
			b.Run(fmt.Sprintf("groups%d/%s", groups, bl.Label), func(b *testing.B) {
				params := avail.DefaultScenarioParams()
				params.MaxGroups = groups
				var counts avail.Counts
				for i := 0; i < b.N; i++ {
					sc, err := avail.GenerateScenario(params, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					rep, violations := avail.Replay(sc, bl.Build(sc))
					if len(violations) != 0 {
						b.Fatalf("violations: %v", violations)
					}
					counts.Add(rep.Tally())
				}
				b.ReportMetric(100*counts.TerminationRate(), "term-rate-pct")
				b.ReportMetric(100*counts.ReadAvailability(), "read-avail-pct")
			})
		}
	}
}

// BenchmarkDurableCommit measures a full commit with file-backed WALs: every
// forced log record costs a real fsync at each site, which dominates —
// the classic durability tax.
func BenchmarkDurableCommit(b *testing.B) {
	dir := b.TempDir()
	c := MustCluster(paperItems(), Options{Protocol: ProtoQC2, Seed: 1, DisableTrace: true, WALDir: dir})
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := c.Submit(1, map[ItemID]int64{"x": int64(i), "y": int64(i)})
		c.Run()
		if c.Outcome(txn) != OutcomeCommitted {
			b.Fatalf("txn %d: %v", i, c.Outcome(txn))
		}
	}
}
