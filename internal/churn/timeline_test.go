package churn

import (
	"reflect"
	"testing"

	"qcommit/internal/sim"
	"qcommit/internal/types"
)

// epochSig is a compact epoch literal for table-driven expectations: down
// and groupOf omit the unused index 0.
type epochSig struct {
	start, end sim.Time
	down       []bool
	groupOf    []int
}

func sigOf(e Epoch) epochSig {
	return epochSig{start: e.Start, end: e.End, down: e.Down[1:], groupOf: e.GroupOf[1:]}
}

func TestEpochsOf(t *testing.T) {
	const h = sim.Time(1000)
	up3 := []bool{false, false, false}
	one3 := []int{0, 0, 0}
	cases := []struct {
		name   string
		events []Event
		sites  int
		want   []epochSig
	}{
		{
			name:  "no events",
			sites: 3,
			want:  []epochSig{{0, h, up3, one3}},
		},
		{
			name:  "crash and restart",
			sites: 3,
			events: []Event{
				{At: 100, Kind: EventCrash, Site: 2},
				{At: 400, Kind: EventRestart, Site: 2},
			},
			want: []epochSig{
				{0, 100, up3, one3},
				{100, 400, []bool{false, true, false}, one3},
				{400, h, up3, one3},
			},
		},
		{
			name:  "same-timestamp events share one boundary",
			sites: 3,
			events: []Event{
				{At: 200, Kind: EventCrash, Site: 1},
				{At: 200, Kind: EventCrash, Site: 3},
				{At: 500, Kind: EventRestart, Site: 1},
				{At: 500, Kind: EventCrash, Site: 2},
			},
			want: []epochSig{
				{0, 200, up3, one3},
				{200, 500, []bool{true, false, true}, one3},
				{500, h, []bool{false, true, true}, one3},
			},
		},
		{
			name:  "partition and heal with residual group",
			sites: 4,
			events: []Event{
				// Site 4 is unlisted: it lands in the implicit residual
				// group 0, simnet's convention.
				{At: 300, Kind: EventPartition, Groups: [][]types.SiteID{{1, 2}, {3}}},
				{At: 700, Kind: EventHeal},
			},
			want: []epochSig{
				{0, 300, []bool{false, false, false, false}, []int{0, 0, 0, 0}},
				{300, 700, []bool{false, false, false, false}, []int{1, 1, 2, 0}},
				{700, h, []bool{false, false, false, false}, []int{0, 0, 0, 0}},
			},
		},
		{
			name:  "repartition replaces the previous layout",
			sites: 3,
			events: []Event{
				{At: 100, Kind: EventPartition, Groups: [][]types.SiteID{{1}, {2, 3}}},
				{At: 200, Kind: EventPartition, Groups: [][]types.SiteID{{1, 2}, {3}}},
			},
			want: []epochSig{
				{0, 100, up3, one3},
				{100, 200, up3, []int{1, 2, 2}},
				{200, h, up3, []int{1, 1, 2}},
			},
		},
		{
			name:  "event at time zero mutates the first epoch",
			sites: 2,
			events: []Event{
				{At: 0, Kind: EventCrash, Site: 1},
			},
			want: []epochSig{{0, h, []bool{true, false}, []int{0, 0}}},
		},
		{
			name:  "events at or past the horizon are ignored",
			sites: 2,
			events: []Event{
				{At: 600, Kind: EventCrash, Site: 2},
				{At: h, Kind: EventRestart, Site: 2},
				{At: h + 50, Kind: EventCrash, Site: 1},
			},
			want: []epochSig{
				{0, 600, []bool{false, false}, []int{0, 0}},
				{600, h, []bool{false, true}, []int{0, 0}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EpochsOf(tc.events, tc.sites, h)
			sigs := make([]epochSig, len(got))
			for i, e := range got {
				sigs[i] = sigOf(e)
			}
			if !reflect.DeepEqual(sigs, tc.want) {
				t.Errorf("epochs mismatch:\ngot  %+v\nwant %+v", sigs, tc.want)
			}
			// Structural invariants: tiling, no zero-length epochs.
			for i, e := range got {
				if e.End <= e.Start {
					t.Errorf("epoch %d has non-positive length: %+v", i, sigOf(e))
				}
				if i == 0 && e.Start != 0 {
					t.Errorf("first epoch starts at %v", e.Start)
				}
				if i > 0 && e.Start != got[i-1].End {
					t.Errorf("epoch %d does not abut its predecessor", i)
				}
			}
			if got[len(got)-1].End != h {
				t.Errorf("last epoch ends at %v, want horizon", got[len(got)-1].End)
			}
		})
	}
}

func TestEpochPredicates(t *testing.T) {
	e := Epoch{
		Start:   100,
		End:     200,
		Down:    []bool{false, false, true, false, false},
		GroupOf: []int{0, 1, 1, 2, 0},
	}
	if !e.Up(1) || e.Up(2) {
		t.Error("Up misreads the down flags")
	}
	if e.Connected(1, 2) || e.Connected(2, 2) {
		t.Error("a down site must be disconnected, even from itself")
	}
	if e.Connected(1, 3) || e.Connected(1, 4) {
		t.Error("sites in different groups reported connected")
	}
	if !e.Connected(1, 1) || !e.Connected(3, 3) || !e.Connected(4, 4) {
		t.Error("an up site must be self-connected")
	}
	if !e.Contains(100, 200) || !e.Contains(150, 160) {
		t.Error("Contains rejects an in-range interval")
	}
	if e.Contains(99, 150) || e.Contains(150, 201) {
		t.Error("Contains accepts an out-of-range interval")
	}
}

// TestScriptEpochsMatchEvents cross-checks the epoch view of a generated
// script against a brute-force replay of its event stream: at every probe
// instant the epoch's up/connected state must agree with the state obtained
// by applying all events at or before that instant.
func TestScriptEpochsMatchEvents(t *testing.T) {
	params := testParams()
	sc, err := generateScript(params, 99)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(params.Horizon)
	eps := sc.epochs(horizon)
	if len(eps) < 3 {
		t.Fatalf("churny script produced only %d epochs", len(eps))
	}

	stateAt := func(at sim.Time) ([]bool, []int) {
		down := make([]bool, params.NumSites+1)
		groupOf := make([]int, params.NumSites+1)
		for _, ev := range sc.events {
			if ev.At > at {
				break
			}
			switch ev.Kind {
			case EventCrash:
				down[ev.Site] = true
			case EventRestart:
				down[ev.Site] = false
			case EventPartition:
				for i := range groupOf {
					groupOf[i] = 0
				}
				for gi, g := range ev.Groups {
					for _, s := range g {
						groupOf[s] = gi + 1
					}
				}
			case EventHeal:
				for i := range groupOf {
					groupOf[i] = 0
				}
			}
		}
		return down, groupOf
	}

	for i, ep := range eps {
		// Probe the first instant and the last instant of the epoch.
		for _, at := range []sim.Time{ep.Start, ep.End - 1} {
			down, groupOf := stateAt(at)
			if !reflect.DeepEqual(ep.Down, down) {
				t.Fatalf("epoch %d at %v: down %v, events say %v", i, at, ep.Down, down)
			}
			for a := types.SiteID(1); int(a) <= params.NumSites; a++ {
				for b := types.SiteID(1); int(b) <= params.NumSites; b++ {
					want := !down[a] && !down[b] && groupOf[a] == groupOf[b]
					if got := ep.Connected(a, b); got != want {
						t.Fatalf("epoch %d at %v: Connected(%d,%d)=%v, events say %v", i, at, a, b, got, want)
					}
				}
			}
		}
	}
}
