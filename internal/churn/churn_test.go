package churn

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"qcommit/internal/sim"
	"qcommit/internal/voting"
)

// testParams is a small, fast study configuration exercising both site and
// partition churn.
func testParams() Params {
	p := DefaultParams()
	p.Horizon = 2 * sim.Second
	p.MTTF = 1500 * sim.Millisecond
	p.MTTR = 300 * sim.Millisecond
	p.PartitionMTBF = 1200 * sim.Millisecond
	p.PartitionMTTR = 400 * sim.Millisecond
	return p
}

// TestStudyDeterministic: a study is a pure function of (params, runs,
// seed, builders).
func TestStudyDeterministic(t *testing.T) {
	a, err := Study(testParams(), 3, 7, StandardBuilders())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Study(testParams(), 3, 7, StandardBuilders())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("study not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
	if a[0].Counts.Submitted == 0 {
		t.Fatal("study submitted no transactions")
	}
}

// TestStudyParallelMatchesSerial is the tentpole determinism contract: for
// every tested worker count, under all three access strategies, the
// parallel study returns Results bit-for-bit identical to the serial
// oracle.
func TestStudyParallelMatchesSerial(t *testing.T) {
	for _, strategy := range []voting.Strategy{voting.StrategyQuorum, voting.StrategyMissingWrites, voting.StrategyDynamic} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			params := testParams()
			params.Strategy = strategy
			builders := StandardBuilders()
			const runs = 8
			want, err := Study(params, runs, 1, builders)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
				got, err := StudyParallel(params, runs, 1, builders, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: parallel diverged from serial\ngot  %+v\nwant %+v", workers, got, want)
				}
			}
		})
	}
}

// TestMissingWritesStudySafetyAndMetrics: the adaptive strategy must stay
// violation-free under combined site and partition churn, and its
// availability/mode metrics must be internally consistent.
func TestMissingWritesStudySafetyAndMetrics(t *testing.T) {
	params := testParams()
	params.Strategy = voting.StrategyMissingWrites
	res, err := StudyParallel(params, 6, 17, StandardBuilders(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Label == "3PC" {
			continue // inconsistent under partitioning by design (Example 2)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d safety violations under missing-writes churn", r.Label, r.Violations)
		}
	}
	totalDemotions := 0
	for _, r := range res {
		c := r.Counts
		if c.AccessChecks == 0 {
			t.Fatalf("%s: no access probes sampled", r.Label)
		}
		if c.ReadAvailable > c.AccessChecks || c.WriteAvailable > c.AccessChecks {
			t.Errorf("%s: availability counts exceed checks: %+v", r.Label, c)
		}
		// Note: ReadAvailable >= WriteAvailable is NOT an invariant here —
		// pessimistic reads exclude stale copies that writes still count.
		if c.ModeDemotions < c.ModeRestorations {
			t.Errorf("%s: more restorations (%d) than demotions (%d)", r.Label, c.ModeRestorations, c.ModeDemotions)
		}
		totalDemotions += c.ModeDemotions
	}
	// How often a commit misses a copy is protocol-dependent (2PC mostly
	// blocks instead), but churn this heavy must demote somewhere.
	if totalDemotions == 0 {
		t.Error("no protocol column recorded a single mode demotion")
	}
}

// TestDynamicStudySafetyAndMetrics: the dynamic-voting strategy must stay
// violation-free under combined site and partition churn, reassignment
// churn must actually happen, and the static strategies must report zero
// vote transitions.
func TestDynamicStudySafetyAndMetrics(t *testing.T) {
	params := testParams()
	params.Strategy = voting.StrategyDynamic
	res, err := StudyParallel(params, 6, 17, StandardBuilders(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalReassigns := 0
	for _, r := range res {
		if r.Label != "3PC" && r.Violations != 0 {
			t.Errorf("%s: %d safety violations under dynamic-voting churn", r.Label, r.Violations)
		}
		c := r.Counts
		if c.AccessChecks == 0 {
			t.Fatalf("%s: no access probes sampled", r.Label)
		}
		if c.ReadAvailable > c.AccessChecks || c.WriteAvailable > c.AccessChecks {
			t.Errorf("%s: availability counts exceed checks: %+v", r.Label, c)
		}
		if c.VoteRestorations > c.VoteReassignments {
			t.Errorf("%s: more restorations (%d) than reassignments (%d)", r.Label, c.VoteRestorations, c.VoteReassignments)
		}
		if c.ModeDemotions != 0 || c.ModeRestorations != 0 {
			t.Errorf("%s: dynamic strategy reported missing-writes mode churn %d/%d", r.Label, c.ModeDemotions, c.ModeRestorations)
		}
		totalReassigns += c.VoteReassignments
	}
	if totalReassigns == 0 {
		t.Error("no protocol column recorded a single vote reassignment")
	}
}

// TestDynamicSecondFailureHeadline pins the headline scenario at
// study scale: on identical timelines heavy enough for overlapping
// failures, the dynamic strategy's shrunken bases keep items
// write-available at arrivals where static quorums have lost too many of
// the original votes — so its write-availability count is strictly higher,
// while the probe denominators stay identical (same worlds).
func TestDynamicSecondFailureHeadline(t *testing.T) {
	params := DefaultParams()
	params.Horizon = 3 * sim.Second
	params.MTTR = 800 * sim.Millisecond // slow repairs: failures overlap
	builders := StandardBuilders()[3:4] // QC1 column suffices
	quorum, err := Study(params, 6, 5, builders)
	if err != nil {
		t.Fatal(err)
	}
	params.Strategy = voting.StrategyDynamic
	dynamic, err := Study(params, 6, 5, builders)
	if err != nil {
		t.Fatal(err)
	}
	qc, dc := quorum[0].Counts, dynamic[0].Counts
	if qc.AccessChecks != dc.AccessChecks {
		t.Fatalf("probe counts diverged: %d vs %d", qc.AccessChecks, dc.AccessChecks)
	}
	if dc.WriteAvailable <= qc.WriteAvailable {
		t.Errorf("dynamic write availability %d/%d not above quorum %d/%d under overlapping failures",
			dc.WriteAvailable, dc.AccessChecks, qc.WriteAvailable, qc.AccessChecks)
	}
	if qc.VoteReassignments != 0 || qc.VoteRestorations != 0 {
		t.Errorf("quorum strategy reported vote transitions: %d/%d", qc.VoteReassignments, qc.VoteRestorations)
	}
	if dc.VoteReassignments == 0 {
		t.Error("dynamic column never reassigned under overlapping failures")
	}
	if quorum[0].Violations != 0 || dynamic[0].Violations != 0 {
		t.Errorf("violations: quorum %d, dynamic %d", quorum[0].Violations, dynamic[0].Violations)
	}
}

// TestStrategiesDivergeOnReadAvailability: with rare failures the adaptive
// strategy's optimistic read-one must report read availability at least as
// high as the quorum strategy's on the identical timeline; the quorum
// strategy must report zero mode transitions.
func TestStrategiesDivergeOnReadAvailability(t *testing.T) {
	params := DefaultParams()
	params.Horizon = 2 * sim.Second
	params.MTTF = 8 * sim.Second // rare failures: adaptive voting's home turf
	params.MTTR = 200 * sim.Millisecond
	builders := StandardBuilders()[3:4] // QC1 column suffices
	quorum, err := Study(params, 4, 3, builders)
	if err != nil {
		t.Fatal(err)
	}
	params.Strategy = voting.StrategyMissingWrites
	adaptive, err := Study(params, 4, 3, builders)
	if err != nil {
		t.Fatal(err)
	}
	qc, ac := quorum[0].Counts, adaptive[0].Counts
	if qc.AccessChecks != ac.AccessChecks {
		t.Fatalf("probe counts diverged: %d vs %d", qc.AccessChecks, ac.AccessChecks)
	}
	if ac.ReadAvailable < qc.ReadAvailable {
		t.Errorf("adaptive read availability %d below quorum %d with rare failures",
			ac.ReadAvailable, qc.ReadAvailable)
	}
	if qc.ModeDemotions != 0 || qc.ModeRestorations != 0 {
		t.Errorf("quorum strategy reported mode transitions: %d/%d", qc.ModeDemotions, qc.ModeRestorations)
	}
}

// TestStudyParallelRace exercises the pool under the race detector with more
// workers than runs and a progress callback mutating shared state.
func TestStudyParallelRace(t *testing.T) {
	params := testParams()
	params.Horizon = 1 * sim.Second
	var mu sync.Mutex
	calls, last := 0, 0
	const runs = 5
	res, err := StudyParallel(params, runs, 9, StandardBuilders(), Options{
		Workers: 8,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != runs {
				t.Errorf("progress total = %d, want %d", total, runs)
			}
			if done < last || done > total {
				t.Errorf("progress done = %d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
	if last != runs {
		t.Errorf("final progress %d, want %d", last, runs)
	}
	for _, r := range res {
		if r.Runs != runs {
			t.Errorf("%s: runs = %d, want %d", r.Label, r.Runs, runs)
		}
	}
}

func TestStudyEdgeCases(t *testing.T) {
	builders := StandardBuilders()
	// Zero runs: empty but labeled results, no error.
	res, err := StudyParallel(testParams(), 0, 1, builders, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(builders) || res[0].Runs != 0 || res[0].Label != "2PC" {
		t.Errorf("zero-run results malformed: %+v", res)
	}
	// Invalid params surface the validation error on both paths.
	bad := testParams()
	bad.MTTR = 0
	if _, err := Study(bad, 2, 1, builders); err == nil {
		t.Error("MTTF without MTTR accepted by serial path")
	}
	if _, err := StudyParallel(bad, 2, 1, builders, Options{}); err == nil {
		t.Error("MTTF without MTTR accepted by parallel path")
	}
	// Default worker count (0 → GOMAXPROCS) still matches serial.
	want, err := Study(testParams(), 3, 3, builders)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StudyParallel(testParams(), 3, 3, builders, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("default worker count diverged from serial")
	}
}

// TestSiteChurnSafety: under pure site failure/repair churn (no partitions)
// every protocol must stay safe — zero atomicity violations and zero store
// inconsistencies — while still terminating the bulk of the stream.
func TestSiteChurnSafety(t *testing.T) {
	params := DefaultParams()
	params.Horizon = 3 * sim.Second
	res, err := StudyParallel(params, 6, 11, StandardBuilders(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Violations != 0 {
			t.Errorf("%s: %d safety violations under site churn", r.Label, r.Violations)
		}
		if r.Counts.Submitted == 0 {
			t.Fatalf("%s: no transactions submitted", r.Label)
		}
		if got := r.Counts.TerminatedFraction(); got < 0.5 {
			t.Errorf("%s: terminated fraction %.2f, want ≥ 0.5", r.Label, got)
		}
		if len(r.Latencies) != r.Counts.Committed+r.Counts.Aborted {
			t.Errorf("%s: %d latencies for %d terminations", r.Label, len(r.Latencies), r.Counts.Committed+r.Counts.Aborted)
		}
	}
}

// TestQuorumProtocolSafetyUnderPartitionChurn: the partition-safe protocols
// (everything but the 3PC baseline) must stay violation-free even when
// partitions form and heal while transactions are in flight.
func TestQuorumProtocolSafetyUnderPartitionChurn(t *testing.T) {
	params := testParams()
	res, err := StudyParallel(params, 8, 23, StandardBuilders(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Label == "3PC" {
			continue // inconsistent under partitioning by design (Example 2)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d safety violations under partition churn", r.Label, r.Violations)
		}
	}
}

// TestNoChurnBaseline: with failures disabled the stream runs clean — no
// blocking, no rejections, and (conflict aborts aside) a high commit rate.
func TestNoChurnBaseline(t *testing.T) {
	params := DefaultParams()
	params.MTTF, params.MTTR = 0, 0
	params.Horizon = 2 * sim.Second
	res, err := Study(params, 3, 5, StandardBuilders())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		c := r.Counts
		if c.Blocked != 0 || c.Unresolved != 0 || c.Rejected != 0 {
			t.Errorf("%s: blocked=%d unresolved=%d rejected=%d without churn", r.Label, c.Blocked, c.Unresolved, c.Rejected)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d violations without churn", r.Label, r.Violations)
		}
		if got := c.CommittedFraction(); got < 0.6 {
			t.Errorf("%s: committed fraction %.2f without churn, want ≥ 0.6", r.Label, got)
		}
		if got := c.BlockedTimeShare(); got > 0.1 {
			t.Errorf("%s: blocked-time share %.3f without churn", r.Label, got)
		}
		if c.SiteDownNS != 0 || c.PartitionedNS != 0 {
			t.Errorf("%s: down/partitioned time nonzero without churn", r.Label)
		}
	}
}

func TestGenerateScriptDeterministicAndSane(t *testing.T) {
	params := testParams()
	a, err := generateScript(params, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateScript(params, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.events, b.events) || !reflect.DeepEqual(a.arrivals, b.arrivals) {
		t.Error("script generation not deterministic")
	}
	horizon := sim.Time(params.Horizon)
	for i, ev := range a.events {
		if ev.At < 0 || ev.At >= horizon {
			t.Errorf("event %d at %v outside [0, %v)", i, ev.At, horizon)
		}
		if i > 0 && ev.At < a.events[i-1].At {
			t.Errorf("events not time-sorted at %d", i)
		}
		switch ev.Kind {
		case EventCrash, EventRestart:
			if ev.Site < 1 || int(ev.Site) > params.NumSites {
				t.Errorf("event %d: bad site %v", i, ev.Site)
			}
		case EventPartition:
			if len(ev.Groups) < 2 {
				t.Errorf("event %d: partition with %d groups", i, len(ev.Groups))
			}
		}
	}
	for _, ri := range a.repairs {
		if k := a.events[ri].Kind; k != EventRestart && k != EventHeal {
			t.Errorf("repair index %d points at %v", ri, k)
		}
	}
	// Per-site crash/restart strictly alternate.
	lastKind := make(map[rune]EventKind)
	for _, ev := range a.events {
		if ev.Kind != EventCrash && ev.Kind != EventRestart {
			continue
		}
		key := rune(ev.Site)
		if prev, ok := lastKind[key]; ok && prev == ev.Kind {
			t.Errorf("site %v: consecutive %v events", ev.Site, ev.Kind)
		}
		lastKind[key] = ev.Kind
	}
	if len(a.arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	for i, ar := range a.arrivals {
		if ar.At < 0 || ar.At >= horizon {
			t.Errorf("arrival %d at %v outside horizon", i, ar.At)
		}
		if i > 0 && ar.At < a.arrivals[i-1].At {
			t.Errorf("arrivals not time-sorted at %d", i)
		}
		if len(ar.Writeset) != params.WritesPerTxn {
			t.Errorf("arrival %d writes %d items, want %d", i, len(ar.Writeset), params.WritesPerTxn)
		}
		found := false
		for _, p := range ar.Participants {
			if p == ar.Coord {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("arrival %d: coordinator %v not a participant", i, ar.Coord)
		}
	}
	if a.siteDownNS <= 0 {
		t.Error("no site down time with churn enabled")
	}
	if a.partitionedNS <= 0 {
		t.Error("no partitioned time with partition churn enabled")
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero sites", func(p *Params) { p.NumSites = 0 }},
		{"copies exceed sites", func(p *Params) { p.CopiesPerItem = p.NumSites + 1 }},
		{"writes exceed items", func(p *Params) { p.WritesPerTxn = p.NumItems + 1 }},
		{"hot fraction 1", func(p *Params) { p.HotFraction = 1 }},
		{"invalid strategy", func(p *Params) { p.Strategy = voting.StrategyInvalid }},
		{"zero interarrival", func(p *Params) { p.MeanInterarrival = 0 }},
		{"zero horizon", func(p *Params) { p.Horizon = 0 }},
		{"negative mttf", func(p *Params) { p.MTTF = -1 }},
		{"mttf without mttr", func(p *Params) { p.MTTR = 0 }},
		{"partition mtbf without mttr", func(p *Params) { p.PartitionMTBF = sim.Second; p.PartitionMTTR = 0 }},
		{"partition churn with one group", func(p *Params) {
			p.PartitionMTBF = sim.Second
			p.PartitionMTTR = sim.Second
			p.MaxGroups = 1
		}},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		if err := p.validate(); err == nil {
			t.Errorf("%s: invalid params accepted: %+v", tc.name, p)
		}
	}
	if err := DefaultParams().validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	bad := DefaultParams()
	bad.Engine = Engine(99)
	if err := bad.validate(); err == nil {
		t.Error("invalid engine accepted")
	}
}

// TestPlacementErrors: impossible replica placements surface as the typed
// *PlacementError, carrying the shape that made them impossible, and the
// study entry points propagate it unwrapped through errors.As.
func TestPlacementErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		reason string
	}{
		{"no sites", func(p *Params) { p.NumSites = 0 }, "at least 2 sites"},
		{"one site", func(p *Params) { p.NumSites = 1 }, "at least 2 sites"},
		{"no items", func(p *Params) { p.NumItems = 0 }, "at least 1 item"},
		{"no copies", func(p *Params) { p.CopiesPerItem = 0 }, "at least 1 copy"},
		{"no writes", func(p *Params) { p.WritesPerTxn = 0 }, "at least 1 write"},
		{"copies exceed sites", func(p *Params) { p.CopiesPerItem = p.NumSites + 3 }, "distinct copies"},
		{"writes exceed items", func(p *Params) { p.WritesPerTxn = p.NumItems + 2 }, "distinct written items"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mutate(&p)
			err := p.validate()
			var pe *PlacementError
			if !errors.As(err, &pe) {
				t.Fatalf("validate() = %v, want *PlacementError", err)
			}
			if pe.Sites != p.NumSites || pe.Items != p.NumItems || pe.Copies != p.CopiesPerItem || pe.Writes != p.WritesPerTxn {
				t.Errorf("error shape %+v does not match params", pe)
			}
			if !strings.Contains(pe.Error(), tc.reason) {
				t.Errorf("error %q missing reason %q", pe.Error(), tc.reason)
			}
			if _, err := Study(p, 1, 1, StandardBuilders()); !errors.As(err, &pe) {
				t.Errorf("Study returned %v, want *PlacementError", err)
			}
			if _, err := StudyParallel(p, 1, 1, StandardBuilders(), Options{}); !errors.As(err, &pe) {
				t.Errorf("StudyParallel returned %v, want *PlacementError", err)
			}
		})
	}
	// A tight-but-possible placement is accepted.
	p := DefaultParams()
	p.CopiesPerItem = p.NumSites
	p.WritesPerTxn = p.NumItems
	if err := p.validate(); err != nil {
		t.Errorf("tight placement rejected: %v", err)
	}
}

// TestEngineParse pins the engine selector's string round trip.
func TestEngineParse(t *testing.T) {
	for _, e := range []Engine{EngineReplay, EngineHybrid} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted garbage")
	}
	if Engine(42).String() == "" {
		t.Error("unknown engine should still render")
	}
}

func TestLatencyPercentile(t *testing.T) {
	r := Result{Latencies: []sim.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{50, 50}, {95, 100}, {99, 100}, {100, 100}, {10, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := r.LatencyPercentile(c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := (Result{}).LatencyPercentile(50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestCountsFractionsAndAdd(t *testing.T) {
	a := Counts{Arrivals: 10, Submitted: 8, Committed: 4, Aborted: 2, Blocked: 1, Unresolved: 1, Rejected: 2,
		PendingNS: 25, PostSubmitNS: 100, SiteDownNS: 7, PartitionedNS: 3}
	if got := a.CommittedFraction(); got != 0.5 {
		t.Errorf("committed fraction = %v", got)
	}
	if got := a.TerminatedFraction(); got != 0.75 {
		t.Errorf("terminated fraction = %v", got)
	}
	if got := a.BlockedFraction(); got != 0.125 {
		t.Errorf("blocked fraction = %v", got)
	}
	if got := a.BlockedTimeShare(); got != 0.25 {
		t.Errorf("blocked-time share = %v", got)
	}
	b := a
	b.Add(a)
	if b.Submitted != 16 || b.PendingNS != 50 || b.PartitionedNS != 6 {
		t.Errorf("Add produced %+v", b)
	}
	var zero Counts
	if zero.CommittedFraction() != 0 || zero.BlockedTimeShare() != 0 {
		t.Error("zero counts should yield zero fractions")
	}
}

func TestWilsonCIsBracketPointEstimates(t *testing.T) {
	res, err := Study(testParams(), 2, 1, StandardBuilders()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		lo, hi := r.CommittedCI()
		p := r.Counts.CommittedFraction()
		if p < lo || p > hi {
			t.Errorf("%s: committed %.3f outside CI [%.3f, %.3f]", r.Label, p, lo, hi)
		}
		lo, hi = r.TerminatedCI()
		p = r.Counts.TerminatedFraction()
		if p < lo || p > hi {
			t.Errorf("%s: terminated %.3f outside CI [%.3f, %.3f]", r.Label, p, lo, hi)
		}
	}
}

func TestFormatTables(t *testing.T) {
	res, err := Study(testParams(), 2, 2, StandardBuilders())
	if err != nil {
		t.Fatal(err)
	}
	table := FormatTable(res)
	for _, want := range []string{"protocol", "2PC", "3PC", "SkeenQ", "QC1", "QC2", "p95(ms)", "blkshare"} {
		if !strings.Contains(table, want) {
			t.Errorf("FormatTable missing %q:\n%s", want, table)
		}
	}
	ci := FormatTableCI(res)
	for _, want := range []string{"committed [95% CI]", "terminated [95% CI]", "violations"} {
		if !strings.Contains(ci, want) {
			t.Errorf("FormatTableCI missing %q:\n%s", want, ci)
		}
	}
}
