package churn

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// fateSig is the signature the hybrid engine guarantees to reproduce
// bit-identically: every transaction fate plus the safety verdict. Probe
// counters and latencies are documented approximations and stay out.
type fateSig struct {
	Arrivals, Submitted, Committed, Aborted, Blocked, Unresolved, Rejected, Violations int
}

func fatesOf(r Result) fateSig {
	c := r.Counts
	return fateSig{
		Arrivals: c.Arrivals, Submitted: c.Submitted,
		Committed: c.Committed, Aborted: c.Aborted,
		Blocked: c.Blocked, Unresolved: c.Unresolved, Rejected: c.Rejected,
		Violations: r.Violations,
	}
}

func requireSameFates(t *testing.T, replay, hybrid []Result) {
	t.Helper()
	if len(replay) != len(hybrid) {
		t.Fatalf("column counts diverged: %d vs %d", len(replay), len(hybrid))
	}
	for i := range replay {
		if r, h := fatesOf(replay[i]), fatesOf(hybrid[i]); r != h {
			t.Errorf("%s: fates diverged\nreplay %+v\nhybrid %+v", replay[i].Label, r, h)
		}
	}
}

// TestHybridMatchesReplay is the differential contract: across every
// protocol, every access strategy, and a range of repair speeds, the hybrid
// engine's transaction fates and violation counts are bit-identical to full
// replay of the same seeded worlds.
func TestHybridMatchesReplay(t *testing.T) {
	strategies := []voting.Strategy{voting.StrategyQuorum, voting.StrategyMissingWrites, voting.StrategyDynamic}
	mttrs := []sim.Duration{150 * sim.Millisecond, 300 * sim.Millisecond, 600 * sim.Millisecond}
	for _, strategy := range strategies {
		for _, mttr := range mttrs {
			strategy, mttr := strategy, mttr
			t.Run(fmt.Sprintf("%s/mttr=%v", strategy, sim.Time(mttr)), func(t *testing.T) {
				params := testParams()
				params.Strategy = strategy
				params.MTTR = mttr
				replay, err := Study(params, 3, 1301, StandardBuilders())
				if err != nil {
					t.Fatal(err)
				}
				params.Engine = EngineHybrid
				hybrid, err := Study(params, 3, 1301, StandardBuilders())
				if err != nil {
					t.Fatal(err)
				}
				requireSameFates(t, replay, hybrid)
			})
		}
	}
}

// TestHybridMatchesReplayQuietWorlds covers the regimes where the analytic
// path dominates: no churn at all, and site churn without partitions.
func TestHybridMatchesReplayQuietWorlds(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no churn", func(p *Params) { p.MTTF, p.MTTR = 0, 0 }},
		{"site churn only", func(p *Params) { p.PartitionMTBF, p.PartitionMTTR = 0, 0 }},
		{"sparse arrivals", func(p *Params) { p.MeanInterarrival = 400 * sim.Millisecond }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			params := testParams()
			tc.mutate(&params)
			replay, err := Study(params, 3, 77, StandardBuilders())
			if err != nil {
				t.Fatal(err)
			}
			params.Engine = EngineHybrid
			hybrid, err := Study(params, 3, 77, StandardBuilders())
			if err != nil {
				t.Fatal(err)
			}
			requireSameFates(t, replay, hybrid)
		})
	}
}

// TestHybridAnalyticCoverage pins that the analytic path carries real load —
// a hybrid engine that silently replays everything would pass the
// differential suite while defeating its purpose. Even under the test
// configuration's heavy churn (epochs barely longer than the commit window),
// every protocol column must decide at least a third of its submissions
// analytically, and a quiet world must decide everything analytically.
func TestHybridAnalyticCoverage(t *testing.T) {
	params := testParams()
	// The test configuration's 4-item universe chains almost every arrival
	// into one conflict cluster; a wider item space makes write conflicts
	// rare, the realistic large-study regime the engine is built for.
	params.NumItems = 64
	sc, err := generateScript(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range StandardBuilders() {
		st, err := executeRunHybrid(sc, params, 5, b.Build(sc.sites))
		if err != nil {
			t.Fatal(err)
		}
		if st.counts.Submitted == 0 {
			t.Fatalf("%s: no submissions", b.Label)
		}
		if st.analytic*3 < st.counts.Submitted {
			t.Errorf("%s: only %d/%d submissions decided analytically", b.Label, st.analytic, st.counts.Submitted)
		}
	}

	quiet := params
	quiet.MTTF, quiet.MTTR = 0, 0
	quiet.PartitionMTBF, quiet.PartitionMTTR = 0, 0
	quiet.MeanInterarrival = 400 * sim.Millisecond
	sc, err = generateScript(quiet, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range StandardBuilders() {
		st, err := executeRunHybrid(sc, quiet, 5, b.Build(sc.sites))
		if err != nil {
			t.Fatal(err)
		}
		if st.analytic != st.counts.Submitted {
			t.Errorf("%s: %d/%d analytic in a quiet sparse world", b.Label, st.analytic, st.counts.Submitted)
		}
	}
}

// TestHybridParallelMatchesSerial extends the repo's determinism contract to
// the hybrid engine: StudyParallel must return Results bit-for-bit identical
// to the serial oracle for every tested worker count.
func TestHybridParallelMatchesSerial(t *testing.T) {
	params := testParams()
	params.Engine = EngineHybrid
	builders := StandardBuilders()
	const runs = 8
	want, err := Study(params, runs, 1, builders)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		got, err := StudyParallel(params, runs, 1, builders, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: hybrid parallel diverged from serial", workers)
		}
	}
}

// TestMessageDelayModel pins the hash delay model's contract: in range,
// deterministic, sensitive to every key component, and what simnet actually
// delivers when DelayFn is installed.
func TestMessageDelayModel(t *testing.T) {
	maxDelay := simnet.Config{}.MaxDelayOrDefault()
	seen := map[sim.Duration]int{}
	for i := 0; i < 2000; i++ {
		d := messageDelay(42, types.SiteID(i%7+1), types.SiteID(i%5+1), sim.Time(i*1000))
		if d < 0 || d > maxDelay {
			t.Fatalf("delay %v outside [0, %v]", d, maxDelay)
		}
		seen[d]++
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct delays in 2000 draws — model looks degenerate", len(seen))
	}
	base := messageDelay(1, 2, 3, 4)
	if messageDelay(1, 2, 3, 4) != base {
		t.Error("delay model not deterministic")
	}
	diffs := 0
	for _, other := range []sim.Duration{
		messageDelay(2, 2, 3, 4), messageDelay(1, 3, 3, 4),
		messageDelay(1, 2, 2, 4), messageDelay(1, 2, 3, 5),
	} {
		if other != base {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("delay model insensitive to seed, endpoints, and time")
	}
}

// conflictClusters is pure arithmetic over the arrival stream; pin the
// chaining and windowing behavior directly.
func TestConflictClusters(t *testing.T) {
	ws := func(items ...string) types.Writeset {
		var w types.Writeset
		for _, it := range items {
			w = append(w, types.Update{Item: types.ItemID(it), Value: 1})
		}
		return w
	}
	arrivals := []arrival{
		{At: 0, Writeset: ws("a")},
		{At: 50, Writeset: ws("b")},      // disjoint item: alone
		{At: 80, Writeset: ws("a", "c")}, // links to 0 via "a"
		{At: 150, Writeset: ws("c")},     // links to 2 via "c" → cluster {0,2,3}
		{At: 1000, Writeset: ws("a")},    // "a" again, far outside the window
		{At: 1040, Writeset: ws("d")},    // alone
		{At: 1100, Writeset: ws("a")},    // links to 4
	}
	got := conflictClusters(arrivals, 100)
	want := []bool{true, false, true, true, true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clusters = %v, want %v", got, want)
	}
	if out := conflictClusters(nil, 100); len(out) != 0 {
		t.Errorf("empty stream produced %v", out)
	}
}

// FuzzHybridMatchesReplay drives the differential contract over fuzzed
// study shapes: seed, strategy, churn rates, arrival rate, and partition
// churn on or off.
func FuzzHybridMatchesReplay(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(1500), uint16(300), uint16(100), true)
	f.Add(int64(99), uint8(1), uint16(800), uint16(150), uint16(40), false)
	f.Add(int64(7), uint8(2), uint16(0), uint16(0), uint16(60), true)
	f.Add(int64(-3), uint8(0), uint16(3000), uint16(900), uint16(25), false)
	f.Fuzz(func(t *testing.T, seed int64, strat uint8, mttfMs, mttrMs, arrivalMs uint16, partitions bool) {
		params := DefaultParams()
		params.Horizon = 1500 * sim.Millisecond
		params.Strategy = []voting.Strategy{
			voting.StrategyQuorum, voting.StrategyMissingWrites, voting.StrategyDynamic,
		}[int(strat)%3]
		params.MTTF = sim.Duration(mttfMs%4000) * sim.Millisecond
		params.MTTR = sim.Duration(mttrMs%1200) * sim.Millisecond
		if params.MTTF == 0 || params.MTTR == 0 {
			params.MTTF, params.MTTR = 0, 0
		}
		if partitions {
			params.PartitionMTBF = 1200 * sim.Millisecond
			params.PartitionMTTR = 400 * sim.Millisecond
		}
		params.MeanInterarrival = sim.Duration(arrivalMs%500+10) * sim.Millisecond
		replay, err := Study(params, 1, seed, StandardBuilders())
		if err != nil {
			t.Skip(err)
		}
		params.Engine = EngineHybrid
		hybrid, err := Study(params, 1, seed, StandardBuilders())
		if err != nil {
			t.Fatalf("hybrid errored where replay succeeded: %v", err)
		}
		requireSameFates(t, replay, hybrid)
	})
}
