package churn

import (
	"fmt"
	"testing"

	"qcommit/internal/protocol"
	"qcommit/internal/sim"
)

func benchParams() Params {
	p := DefaultParams()
	p.Horizon = 2 * sim.Second
	return p
}

// BenchmarkStudy measures the serial study kernel (one run is a full
// 5-protocol timeline replay).
func BenchmarkStudy(b *testing.B) {
	params := benchParams()
	builders := StandardBuilders()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Study(params, 1, 1, builders); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyParallel measures the worker-pool study at several worker
// counts.
func BenchmarkStudyParallel(b *testing.B) {
	params := benchParams()
	builders := StandardBuilders()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := StudyParallel(params, 4, 1, builders, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnStudy measures the full study kernel under both engines on
// a realistic sparse-conflict configuration (wide item space, so the hybrid
// engine's analytic path carries most of the stream).
func BenchmarkChurnStudy(b *testing.B) {
	params := benchParams()
	params.NumItems = 64
	builders := StandardBuilders()
	for _, engine := range []Engine{EngineReplay, EngineHybrid} {
		params.Engine = engine
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Study(params, 1, 1, builders); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnTrial isolates one (script, protocol) evaluation — the unit
// of work the study fans out — from script generation and aggregation.
func BenchmarkChurnTrial(b *testing.B) {
	params := benchParams()
	params.NumItems = 64
	sc, err := generateScript(params, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := StandardBuilders()[3].Build(sc.sites) // QC1, the paper's lead protocol
	for _, tc := range []struct {
		name string
		exec func(*script, Params, int64, protocol.Spec) (runStats, error)
	}{
		{"replay", executeRun},
		{"hybrid", executeRunHybrid},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tc.exec(sc, params, 1, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerateScript isolates script generation (placement + timeline +
// workload draw) from simulation.
func BenchmarkGenerateScript(b *testing.B) {
	params := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := generateScript(params, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
