package churn

import (
	"fmt"
	"testing"

	"qcommit/internal/sim"
)

func benchParams() Params {
	p := DefaultParams()
	p.Horizon = 2 * sim.Second
	return p
}

// BenchmarkStudy measures the serial study kernel (one run is a full
// 5-protocol timeline replay).
func BenchmarkStudy(b *testing.B) {
	params := benchParams()
	builders := StandardBuilders()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Study(params, 1, 1, builders); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyParallel measures the worker-pool study at several worker
// counts.
func BenchmarkStudyParallel(b *testing.B) {
	params := benchParams()
	builders := StandardBuilders()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := StudyParallel(params, 4, 1, builders, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerateScript isolates script generation (placement + timeline +
// workload draw) from simulation.
func BenchmarkGenerateScript(b *testing.B) {
	params := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := generateScript(params, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
