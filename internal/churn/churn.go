// Package churn measures steady-state availability under failure and repair
// timelines — the time-axis counterpart of package avail's frozen-snapshot
// Monte Carlo.
//
// Where avail replays a single interrupted commit against a static partition,
// a churn study drives a continuous transaction stream through a cluster
// whose world keeps changing: each site alternates between up and down
// through an exponential renewal process (mean up time MTTF, mean repair
// time MTTR), and the network optionally alternates between connected and
// partitioned (PartitionMTBF/PartitionMTTR, with a fresh random partition
// layout per split). Transactions arrive with exponential spacing, are
// submitted at a live replica of the data they write, and run the full
// commit protocol; when failures interrupt them, the termination protocol
// fights for a decision, and every repair event re-kicks whatever is still
// blocked. At the horizon the study tallies what a client of the system
// would have experienced: committed/aborted/blocked fractions,
// time-to-termination percentiles in virtual time, the share of
// post-submission time spent awaiting a decision, and safety violations.
//
// # Timeline model
//
// A run's world is drawn up front from its seed: replica placement (random
// CopiesPerItem sites per item, majority quorums), the per-site
// crash/restart timeline, the partition form/heal timeline, and the
// transaction stream. Every protocol column replays the identical world, so
// differences between columns isolate the commit and termination protocols
// — exactly the avail sweep's discipline, extended over time.
//
// # Determinism
//
// A study is a pure function of (Params, runs, seed, builders): run r draws
// its script from seed+r, all scheduling happens through the deterministic
// simulator, and aggregation is integer addition plus an order-insensitive
// sort of latencies. StudyParallel exploits this: runs are evaluated by a
// worker pool and merged in run order, making its results bit-for-bit
// identical to the serial Study for any worker count.
package churn

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qcommit/internal/avail"
	"qcommit/internal/sim"
	"qcommit/internal/stats"
	"qcommit/internal/voting"
)

// Params parameterizes a churn study.
type Params struct {
	// NumSites is the number of database sites.
	NumSites int
	// NumItems is the number of replicated data items.
	NumItems int
	// CopiesPerItem is the replication degree (majority quorums).
	CopiesPerItem int
	// WritesPerTxn is how many distinct items each transaction updates.
	WritesPerTxn int
	// HotFraction in [0,1) skews that share of writes onto the first item.
	HotFraction float64
	// MeanInterarrival is the mean spacing between transaction submissions
	// (exponential arrivals).
	MeanInterarrival sim.Duration
	// MTTF is each site's mean time to failure (mean up time). Zero
	// disables site churn.
	MTTF sim.Duration
	// MTTR is each site's mean time to repair (mean down time). Required
	// when MTTF is set.
	MTTR sim.Duration
	// PartitionMTBF is the mean time the network stays fully connected
	// between partition events. Zero disables partition churn.
	PartitionMTBF sim.Duration
	// PartitionMTTR is the mean duration of a partition. Required when
	// PartitionMTBF is set.
	PartitionMTTR sim.Duration
	// MaxGroups bounds the number of groups a partition event splits the
	// network into (≥2; only used with partition churn).
	MaxGroups int
	// Horizon is the virtual-time length of each run.
	Horizon sim.Duration
	// Strategy selects the data-access strategy the cluster runs under:
	// StrategyQuorum (default, pure Gifford quorums), StrategyMissingWrites
	// (adaptive read-one/write-all with demotion to quorum mode while
	// copies carry missing writes), or StrategyDynamic (vote reassignment:
	// every committed write re-anchors the item's quorum basis on the
	// copies it reached, so a surviving majority-of-survivors stays
	// available where static quorums lose a vote per failed copy). The
	// strategy changes what the read/write availability samples measure and
	// how items churn between modes or vote tables; the commit protocols
	// themselves are unchanged.
	Strategy voting.Strategy
	// Engine selects the evaluation engine: EngineReplay (default) replays
	// every transaction through the discrete-event engine, EngineHybrid
	// decides transactions analytically when their commit window fits
	// inside a single fault epoch and replays only the rest. Transaction
	// fates are bit-identical between the two; see hybrid.go for the
	// documented approximations in the auxiliary availability counters.
	Engine Engine
}

// Engine selects how a churn study evaluates transaction fates.
type Engine int

const (
	// EngineReplay replays every transaction through the full
	// discrete-event engine. It is the differential oracle the hybrid
	// engine is pinned against.
	EngineReplay Engine = iota
	// EngineHybrid classifies each transaction at arrival time: if its
	// whole commit window falls inside one epoch of the fault timeline it
	// is decided by quorum arithmetic, otherwise it is replayed in a
	// shared fallback world that simulates only such transactions.
	EngineHybrid
)

// Valid reports whether e is a known engine.
func (e Engine) Valid() bool { return e == EngineReplay || e == EngineHybrid }

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineReplay:
		return "replay"
	case EngineHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine converts a CLI engine name into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "replay":
		return EngineReplay, nil
	case "hybrid":
		return EngineHybrid, nil
	default:
		return 0, fmt.Errorf("churn: unknown engine %q (want replay or hybrid)", s)
	}
}

// PlacementError reports a Params whose replica-placement geometry is
// impossible: the script generator could not place CopiesPerItem distinct
// replicas per item, or draw WritesPerTxn distinct items per transaction.
// It is returned (wrapped) from Study/StudyParallel before any run starts,
// so large grids fail fast with a typed error instead of a mid-run panic.
type PlacementError struct {
	Sites  int
	Items  int
	Copies int
	Writes int
	Reason string
}

// Error implements error.
func (e *PlacementError) Error() string {
	return fmt.Sprintf("churn: impossible replica placement (%d sites, %d items, %d copies/item, %d writes/txn): %s",
		e.Sites, e.Items, e.Copies, e.Writes, e.Reason)
}

func (p Params) placementError(reason string) *PlacementError {
	return &PlacementError{
		Sites:  p.NumSites,
		Items:  p.NumItems,
		Copies: p.CopiesPerItem,
		Writes: p.WritesPerTxn,
		Reason: reason,
	}
}

// DefaultParams mirrors the avail sweep's scale (8 sites, 4 items ×4
// copies, 2 writes per transaction) with moderate site churn: sites fail
// every ~2s of virtual time and repair in ~400ms, transactions arrive every
// ~100ms, and each run observes 5s. Partition churn is off by default so
// the default study isolates the site-failure/repair axis (enable it via
// PartitionMTBF/PartitionMTTR).
func DefaultParams() Params {
	return Params{
		NumSites:         8,
		NumItems:         4,
		CopiesPerItem:    4,
		WritesPerTxn:     2,
		MeanInterarrival: 100 * sim.Millisecond,
		MTTF:             2 * sim.Second,
		MTTR:             400 * sim.Millisecond,
		MaxGroups:        3,
		Horizon:          5 * sim.Second,
	}
}

func (p Params) validate() error {
	if p.NumSites < 2 {
		return p.placementError("need at least 2 sites")
	}
	if p.NumItems < 1 {
		return p.placementError("need at least 1 item")
	}
	if p.CopiesPerItem < 1 {
		return p.placementError("need at least 1 copy per item")
	}
	if p.WritesPerTxn < 1 {
		return p.placementError("need at least 1 write per transaction")
	}
	if p.CopiesPerItem > p.NumSites {
		return p.placementError(fmt.Sprintf("cannot place %d distinct copies on %d sites", p.CopiesPerItem, p.NumSites))
	}
	if p.WritesPerTxn > p.NumItems {
		return p.placementError(fmt.Sprintf("cannot draw %d distinct written items from %d items", p.WritesPerTxn, p.NumItems))
	}
	if math.IsNaN(p.HotFraction) || p.HotFraction < 0 || p.HotFraction >= 1 {
		return fmt.Errorf("churn: HotFraction %v outside [0,1)", p.HotFraction)
	}
	if !p.Strategy.Valid() {
		return fmt.Errorf("churn: invalid Strategy %v", p.Strategy)
	}
	if p.MeanInterarrival <= 0 {
		return fmt.Errorf("churn: MeanInterarrival must be positive, got %d", p.MeanInterarrival)
	}
	if p.Horizon <= 0 {
		return fmt.Errorf("churn: Horizon must be positive, got %d", p.Horizon)
	}
	if p.MTTF < 0 || p.MTTR < 0 || p.PartitionMTBF < 0 || p.PartitionMTTR < 0 {
		return fmt.Errorf("churn: negative timeline parameter in %+v", p)
	}
	if p.MTTF > 0 && p.MTTR == 0 {
		return fmt.Errorf("churn: MTTF set but MTTR zero (repairs would never finish)")
	}
	if p.PartitionMTBF > 0 {
		if p.PartitionMTTR == 0 {
			return fmt.Errorf("churn: PartitionMTBF set but PartitionMTTR zero")
		}
		if p.MaxGroups < 2 {
			return fmt.Errorf("churn: MaxGroups %d < 2 with partition churn enabled", p.MaxGroups)
		}
	}
	if !p.Engine.Valid() {
		return fmt.Errorf("churn: invalid Engine %v", p.Engine)
	}
	return nil
}

// Counts aggregates what the transaction stream experienced.
type Counts struct {
	// Arrivals counts generated submissions, including rejected ones.
	Arrivals int
	// Submitted counts transactions that found a live coordinator.
	Submitted int
	// Committed / Aborted count submitted transactions that reached that
	// decision at some site before the horizon.
	Committed int
	Aborted   int
	// Blocked counts submitted transactions still undecided at the horizon
	// with some site uncertain (voted, holding locks).
	Blocked int
	// Unresolved counts submitted transactions that left no trace anywhere
	// (the coordinator crashed before any site voted); no locks are held.
	Unresolved int
	// Rejected counts arrivals whose every participant replica was down at
	// submission time (the client could not even submit).
	Rejected int
	// PendingNS sums, over submitted transactions, the virtual time from
	// submission until the first decision (or until the horizon for
	// transactions that never terminated).
	PendingNS int64
	// PostSubmitNS sums horizon-minus-submission over submitted
	// transactions; PendingNS/PostSubmitNS is the blocked-time share.
	PostSubmitNS int64
	// SiteDownNS sums per-site down time within the horizon (timeline
	// context, identical across protocol columns of a run).
	SiteDownNS int64
	// PartitionedNS is the virtual time the network spent partitioned.
	PartitionedNS int64
	// AccessChecks counts per-item data-access availability samples: at
	// every arrival, each item the transaction writes is probed once for
	// readability and once for writability from the client's preferred
	// coordinator. ReadAvailable/WriteAvailable count the probes that found
	// a read (write) quorum under the study's access strategy — under
	// StrategyMissingWrites an optimistic item reads off any single fresh
	// copy, so read availability exceeds the quorum strategy's while
	// failures are rare and falls behind once items sit demoted.
	AccessChecks   int
	ReadAvailable  int
	WriteAvailable int
	// ModeDemotions and ModeRestorations count missing-writes mode
	// transitions across the run (always zero under StrategyQuorum):
	// demotions are commits that missed a copy while the item was
	// optimistic, restorations are catch-ups that cleared an item's last
	// missing write.
	ModeDemotions    int
	ModeRestorations int
	// VoteReassignments and VoteRestorations count dynamic-voting
	// reassignment churn (nonzero only under StrategyDynamic):
	// reassignments are vote tables installed — each committed write or
	// catch-up that changed an item's majority basis — and restorations are
	// the subset that restored the full static copy set.
	VoteReassignments int
	VoteRestorations  int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Arrivals += other.Arrivals
	c.Submitted += other.Submitted
	c.Committed += other.Committed
	c.Aborted += other.Aborted
	c.Blocked += other.Blocked
	c.Unresolved += other.Unresolved
	c.Rejected += other.Rejected
	c.PendingNS += other.PendingNS
	c.PostSubmitNS += other.PostSubmitNS
	c.SiteDownNS += other.SiteDownNS
	c.PartitionedNS += other.PartitionedNS
	c.AccessChecks += other.AccessChecks
	c.ReadAvailable += other.ReadAvailable
	c.WriteAvailable += other.WriteAvailable
	c.ModeDemotions += other.ModeDemotions
	c.ModeRestorations += other.ModeRestorations
	c.VoteReassignments += other.VoteReassignments
	c.VoteRestorations += other.VoteRestorations
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// CommittedFraction is the share of submitted transactions that committed.
func (c Counts) CommittedFraction() float64 { return frac(c.Committed, c.Submitted) }

// AbortedFraction is the share of submitted transactions that aborted.
func (c Counts) AbortedFraction() float64 { return frac(c.Aborted, c.Submitted) }

// TerminatedFraction is the share of submitted transactions that reached a
// decision (commit or abort) before the horizon.
func (c Counts) TerminatedFraction() float64 { return frac(c.Committed+c.Aborted, c.Submitted) }

// BlockedFraction is the share of submitted transactions still blocked at
// the horizon.
func (c Counts) BlockedFraction() float64 { return frac(c.Blocked, c.Submitted) }

// ReadAvailability is the share of arrival-time access probes that found a
// read quorum for the probed item under the study's strategy.
func (c Counts) ReadAvailability() float64 { return frac(c.ReadAvailable, c.AccessChecks) }

// WriteAvailability is the share of arrival-time access probes that found a
// write quorum for the probed item.
func (c Counts) WriteAvailability() float64 { return frac(c.WriteAvailable, c.AccessChecks) }

// BlockedTimeShare is the share of post-submission virtual time that
// submitted transactions spent awaiting a decision: 0 means every
// transaction terminated instantly, 1 means nothing ever terminated. It is
// the time-integrated price of blocking — a transaction that blocks early
// in the horizon weighs more than one that blocks near the end.
func (c Counts) BlockedTimeShare() float64 {
	if c.PostSubmitNS == 0 {
		return 0
	}
	return float64(c.PendingNS) / float64(c.PostSubmitNS)
}

// Result is the aggregate of one protocol column across all runs.
type Result struct {
	Label  string
	Runs   int
	Counts Counts
	// Violations counts atomicity violations plus store-consistency issues
	// across all runs (a correct protocol yields zero).
	Violations int
	// Latencies holds the time-to-termination of every terminated
	// transaction across all runs, sorted ascending.
	Latencies []sim.Duration
}

// LatencyPercentile returns the p-th percentile (0 < p ≤ 100) of the
// time-to-termination distribution by the nearest-rank method, or 0 with no
// terminated transactions.
func (r Result) LatencyPercentile(p float64) sim.Duration {
	return stats.PercentileNearestRank(r.Latencies, p)
}

// CommittedCI is the 95% Wilson interval around CommittedFraction, treating
// each submitted transaction as one Bernoulli trial. Transactions in a run
// share a timeline and so are positively correlated; read the interval as
// precision-of-the-pool rather than strict coverage (the avail package's
// caveat applies here too).
func (r Result) CommittedCI() (lo, hi float64) {
	return avail.WilsonInterval(r.Counts.Committed, r.Counts.Submitted, avail.Z95)
}

// TerminatedCI is the 95% Wilson interval around TerminatedFraction.
func (r Result) TerminatedCI() (lo, hi float64) {
	return avail.WilsonInterval(r.Counts.Committed+r.Counts.Aborted, r.Counts.Submitted, avail.Z95)
}

// ms renders a virtual duration in milliseconds.
func ms(d sim.Duration) float64 { return float64(d) / 1e6 }

// FormatTable renders study results as an aligned text table. The rd-avl
// and wr-avl columns are the arrival-time read/write availability samples;
// under StrategyMissingWrites each row additionally reports the item-mode
// churn as modes=demotions/restorations, and under StrategyDynamic the
// reassignment churn as votes=reassignments/restorations.
func FormatTable(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %6s %10s %9s %9s %9s %9s %9s %10s %8s %8s\n",
		"protocol", "runs", "txns", "committed", "aborted", "blocked", "p50(ms)", "p95(ms)", "p99(ms)", "blkshare", "rd-avl", "wr-avl")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8s %6d %6d %9.1f%% %8.1f%% %8.1f%% %9.2f %9.2f %9.2f %9.1f%% %7.1f%% %7.1f%%",
			r.Label, r.Runs, r.Counts.Submitted,
			100*r.Counts.CommittedFraction(), 100*r.Counts.AbortedFraction(), 100*r.Counts.BlockedFraction(),
			ms(r.LatencyPercentile(50)), ms(r.LatencyPercentile(95)), ms(r.LatencyPercentile(99)),
			100*r.Counts.BlockedTimeShare(),
			100*r.Counts.ReadAvailability(), 100*r.Counts.WriteAvailability())
		if r.Counts.ModeDemotions > 0 || r.Counts.ModeRestorations > 0 {
			fmt.Fprintf(&b, "  modes=%d/%d", r.Counts.ModeDemotions, r.Counts.ModeRestorations)
		}
		if r.Counts.VoteReassignments > 0 || r.Counts.VoteRestorations > 0 {
			fmt.Fprintf(&b, "  votes=%d/%d", r.Counts.VoteReassignments, r.Counts.VoteRestorations)
		}
		if r.Violations > 0 {
			fmt.Fprintf(&b, "  VIOLATIONS=%d", r.Violations)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTableCI renders study results with 95% Wilson intervals on the
// committed and terminated fractions, plus the same rd-avl/wr-avl
// availability, mode-churn and reassignment-churn columns as FormatTable.
func FormatTableCI(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %6s %22s %22s %10s %8s %8s %10s\n",
		"protocol", "runs", "txns", "committed [95% CI]", "terminated [95% CI]", "blkshare", "rd-avl", "wr-avl", "violations")
	for _, r := range results {
		clo, chi := r.CommittedCI()
		tlo, thi := r.TerminatedCI()
		fmt.Fprintf(&b, "%-8s %6d %6d %7.1f%% [%5.1f,%5.1f]%% %7.1f%% [%5.1f,%5.1f]%% %9.1f%% %7.1f%% %7.1f%% %10d",
			r.Label, r.Runs, r.Counts.Submitted,
			100*r.Counts.CommittedFraction(), 100*clo, 100*chi,
			100*r.Counts.TerminatedFraction(), 100*tlo, 100*thi,
			100*r.Counts.BlockedTimeShare(),
			100*r.Counts.ReadAvailability(), 100*r.Counts.WriteAvailability(),
			r.Violations)
		if r.Counts.ModeDemotions > 0 || r.Counts.ModeRestorations > 0 {
			fmt.Fprintf(&b, "  modes=%d/%d", r.Counts.ModeDemotions, r.Counts.ModeRestorations)
		}
		if r.Counts.VoteReassignments > 0 || r.Counts.VoteRestorations > 0 {
			fmt.Fprintf(&b, "  votes=%d/%d", r.Counts.VoteReassignments, r.Counts.VoteRestorations)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortLatencies finalizes results after accumulation: the per-run latency
// streams become one ascending distribution per protocol.
func sortLatencies(results []Result) {
	for i := range results {
		lats := results[i].Latencies
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	}
}
