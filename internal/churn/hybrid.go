// Hybrid analytic churn engine.
//
// The replay engine (study.go) simulates every transaction through the full
// discrete-event protocol stack. Between fault events, though, the world is
// static, and a transaction whose entire commit window falls inside one such
// epoch has a fate that is pure arithmetic: every reachable participant
// acquires its locks and votes yes, the vote and ack round trips are fixed by
// the deterministic per-message delay model, and the decision follows the
// protocol's quorum rule. The hybrid engine classifies each arrival at
// submission time — analytic when the window is provably quiet, replayed in a
// shared fallback world otherwise — and produces transaction fates
// bit-identical to full replay.
//
// # Why the fates are exact
//
// Three properties carry the equivalence, each pinned by the differential
// suite in hybrid_test.go:
//
//  1. Delays are per-message, not per-run. simnet.Config.DelayFn derives each
//     propagation delay from (seed, from, to, sendTime), so a world that
//     simulates only a subset of the traffic sees identical delays for every
//     message it shares with full replay. With loss and duplication disabled
//     the scheduler RNG is never consulted, so the fallback world cannot
//     drift off the replay schedule.
//  2. Classification is conservative. A transaction is analytic only if (a)
//     its commit window [arrival, arrival+5T] fits inside one epoch — no
//     crash, restart, partition, or heal anywhere in the window; (b) it is
//     alone in its conflict cluster — no other transaction writes a common
//     item within 6T, which bounds every analytic lock lifetime; (c) no copy
//     of its writeset is locked in the fallback world at arrival time —
//     long-blocked replayed transactions hold locks past any fixed horizon,
//     and this live probe catches them; and (d) the protocol's
//     quorumcalc.Decider confirms the all-participants-prepared tally
//     commits. Anything else — including the measure-zero ack-timeout tie on
//     a terminate-on-timeout protocol — falls back to replay.
//  3. Analytic and replayed transactions cannot interact. Clustering keeps
//     their lock footprints disjoint, message traffic carries no congestion,
//     and strategy state (adaptive demotion, dynamic vote reassignment)
//     never feeds a protocol decision — an analytic commit reaches all
//     copies, which makes its strategy transition a no-op in replay too.
//
// # Documented approximations
//
// Fates (committed/aborted/blocked/unresolved/rejected) and violations are
// exact. Two auxiliary families are not: availability probes are computed
// from the static vote tables over the epoch's up/connected state, so they
// do not see transient lock holds or adaptive/dynamic strategy state; and
// the latency of an analytic transaction reproduces the replay value except
// in measure-zero equal-nanosecond tie cases. The differential suite
// therefore pins counts and violations, not probe counters or latencies.
package churn

import (
	"fmt"
	"sort"

	"qcommit/internal/core"
	"qcommit/internal/engine"
	"qcommit/internal/protocol"
	"qcommit/internal/quorumcalc"
	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/storage"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

const (
	// analyticWindowT is the analytic commit window in units of the timeout
	// base T: a 2T vote phase, a 2T ack phase, and one delivery hop for the
	// decision. A transaction whose arrival+5T fits strictly inside one
	// epoch runs start to finish against a static world.
	analyticWindowT = 5
	// analyticClusterT is the conflict-clustering radius in units of T. An
	// analytic transaction's locks live at most analyticWindowT·T, so two
	// transactions writing a common item more than 6T apart can never
	// contend; anything closer shares a cluster and is replayed together.
	analyticClusterT = 6
)

// mix64 is the splitmix64 finalizer, the usual way to turn structured
// integers into well-distributed hash bits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// messageDelay is the deterministic per-message delay model shared by the
// replay engine, the hybrid engine's fallback world, and the analytic
// arithmetic: a hash of (seed, from, to, sendTime) mapped onto [0, 10ms],
// the same range the RNG model drew from. Keying by message rather than by
// draw order is what lets a partial simulation agree with a full one.
func messageDelay(seed int64, from, to types.SiteID, at sim.Time) sim.Duration {
	h := mix64(uint64(seed))
	h = mix64(h ^ uint64(uint32(from)))
	h = mix64(h ^ uint64(uint32(to)))
	h = mix64(h ^ uint64(at))
	return sim.Duration(h % uint64(simnet.Config{}.MaxDelayOrDefault()+1))
}

// delayModel returns the run's simnet.Config.DelayFn.
func delayModel(seed int64) func(from, to types.SiteID, at sim.Time) sim.Duration {
	return func(from, to types.SiteID, at sim.Time) sim.Duration {
		return messageDelay(seed, from, to, at)
	}
}

// protoModel is the analytic mirror of one protocol's coordinator: how a
// decision is reached when every participant is reachable, lock-free, and
// therefore votes yes. Specs without a model (nil) replay every transaction.
type protoModel struct {
	// twoPhase marks 2PC: commit on the last yes vote, no ack phase.
	twoPhase bool
	// ackTimeoutCommit marks protocols that commit when the ack window
	// expires (3PC); quorum protocols terminate instead, which the
	// analytic path refuses to model and hands to replay.
	ackTimeoutCommit bool
	// satisfied mirrors the protocol's threephase.AckRule over the set of
	// participants whose PC-acks have arrived.
	satisfied func(items []types.ItemID, participants, acked []types.SiteID) bool
	// decider builds the protocol's quorumcalc termination decider, used as
	// a commit sanity gate over the all-participants-prepared tally.
	decider func(items []types.ItemID, participants []types.SiteID) quorumcalc.Decider
}

// protoModelFor derives the analytic model from a built spec. The switch
// covers exactly the StandardBuilders specs; an unknown spec gets no model
// and the hybrid engine degrades to pure replay in the shared world.
func protoModelFor(spec protocol.Spec, asgn *voting.Assignment) *protoModel {
	switch s := spec.(type) {
	case twopc.Spec:
		return &protoModel{twoPhase: true}
	case threepc.Spec:
		return &protoModel{
			ackTimeoutCommit: true,
			satisfied: func(_ []types.ItemID, participants, acked []types.SiteID) bool {
				return len(acked) >= len(participants)
			},
			decider: func(_ []types.ItemID, _ []types.SiteID) quorumcalc.Decider {
				return quorumcalc.ThreePC()
			},
		}
	case core.Spec:
		switch s.Variant {
		case core.Protocol1:
			return &protoModel{
				satisfied: func(items []types.ItemID, _, acked []types.SiteID) bool {
					return asgn.WriteQuorumForEvery(items, acked)
				},
				decider: func(items []types.ItemID, _ []types.SiteID) quorumcalc.Decider {
					return quorumcalc.TP1(items)
				},
			}
		case core.Protocol2:
			return &protoModel{
				satisfied: func(items []types.ItemID, _, acked []types.SiteID) bool {
					return asgn.ReadQuorumForSome(items, acked)
				},
				decider: func(items []types.ItemID, _ []types.SiteID) quorumcalc.Decider {
					return quorumcalc.TP2(items)
				},
			}
		default:
			return nil
		}
	case skeenPerTxn:
		return &protoModel{
			satisfied: func(_ []types.ItemID, participants, acked []types.SiteID) bool {
				return len(acked) >= len(participants)/2+1
			},
			decider: func(_ []types.ItemID, participants []types.SiteID) quorumcalc.Decider {
				v := len(participants)
				vc := v/2 + 1
				return quorumcalc.SkeenUniform(vc, v+1-vc)
			},
		}
	default:
		return nil
	}
}

// conflictClusters flags arrivals whose write locks could interact: two
// arrivals writing a common item within window of each other are linked, the
// links close transitively (a chain of adjacent writers is one cluster), and
// every member of a cluster of two or more is barred from the analytic path
// so that lock contention is always replayed, never modeled.
func conflictClusters(arrivals []arrival, window sim.Duration) []bool {
	parent := make([]int, len(arrivals))
	for i := range parent {
		parent[i] = i
	}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	type lastWrite struct {
		idx int
		at  sim.Time
	}
	last := make(map[types.ItemID]lastWrite, 64)
	for i := range arrivals {
		a := &arrivals[i]
		for _, u := range a.Writeset {
			if lw, ok := last[u.Item]; ok && a.At <= lw.at.Add(window) {
				union(i, lw.idx)
			}
			last[u.Item] = lastWrite{i, a.At}
		}
	}
	size := make([]int, len(arrivals))
	for i := range arrivals {
		size[find(i)]++
	}
	multi := make([]bool, len(arrivals))
	for i := range arrivals {
		multi[i] = size[find(i)] > 1
	}
	return multi
}

// hybridRun is the per-(run, protocol) state of one hybrid evaluation,
// including the scratch reused across arrivals.
type hybridRun struct {
	sc      *script
	params  Params
	seed    int64
	spec    protocol.Spec
	model   *protoModel
	multi   []bool
	plans   []arrivalPlan
	T       sim.Duration
	window  sim.Duration
	horizon sim.Time

	// world is the shared fallback replay world, created lazily at the
	// first replayed transaction. worldTxn[i] is arrival i's transaction ID
	// there (0 = analytic or rejected).
	world    *engine.Cluster
	worldTxn []types.TxnID

	// scratch
	acked []types.SiteID
	tally quorumcalc.Tally
}

type ackArrival struct {
	at   sim.Time
	site types.SiteID
}

// arrivalPlan is the protocol-independent half of classifying one arrival,
// computed once per script and shared by every protocol column: the
// availability probes, the coordinator reroute, the quiet-window test, and
// the vote/ack round-trip arithmetic (all of which depend only on the
// epochs and the per-message delay hash). What remains per protocol is the
// live lock probe against that column's fallback world, the quorum decider
// gate, and the ack-rule walk.
type arrivalPlan struct {
	// coord is the effective coordinator after rerouting; 0 means every
	// participant was down and the submission is rejected.
	coord   types.SiteID
	coordIn bool
	// windowOK reports that the commit window sees a static world (fits
	// the arrival's epoch, or every event in it is irrelevant to the
	// transaction per windowQuiet).
	windowOK bool
	// allReach reports every participant connected to the coordinator;
	// voteAbort that the last vote round trip loses to the 2T timer.
	allReach  bool
	voteAbort bool
	reach     []types.SiteID
	items     []types.ItemID
	// probeRead/probeWrite are the per-arrival availability probe tallies
	// (checks = len(Writeset)).
	probeRead, probeWrite int
	// abortAt/commitAt are the replay-visible first-decision times of the
	// vote-phase abort and the 2PC commit; tAllVotes and ackDeadline feed
	// the three-phase ack walk over acks.
	abortAt     sim.Time
	commitAt    sim.Time
	tAllVotes   sim.Time
	ackDeadline sim.Time
	acks        []ackArrival
}

// buildHybridPlans computes the arrival plans for one script. The epoch
// cursor mirrors executeRunHybrid's arrival loop.
func buildHybridPlans(sc *script, seed int64, epochs []Epoch, T sim.Duration, window sim.Duration, horizon sim.Time) []arrivalPlan {
	plans := make([]arrivalPlan, len(sc.arrivals))
	var eligible []types.SiteID
	ei := 0
	for i := range sc.arrivals {
		a := &sc.arrivals[i]
		for epochs[ei].End <= a.At {
			ei++
		}
		ep := &epochs[ei]
		p := &plans[i]

		// Availability probes from the preferred coordinator, mirroring
		// executeRun's sampling points. These are the static-table
		// approximation documented in the package comment.
		for _, u := range a.Writeset {
			if ic, ok := sc.asgn.Item(u.Item); ok {
				eligible = eligible[:0]
				for _, cp := range ic.Copies {
					if ep.Connected(a.Coord, cp.Site) {
						eligible = append(eligible, cp.Site)
					}
				}
				if sc.asgn.HasReadQuorum(u.Item, eligible) {
					p.probeRead++
				}
				if sc.asgn.HasWriteQuorum(u.Item, eligible) {
					p.probeWrite++
				}
			}
		}

		// Re-route a down coordinator to the lowest-numbered live
		// participant; reject when every participant is down.
		coord := a.Coord
		if ep.Down[coord] {
			coord = 0
			for _, pt := range a.Participants {
				if !ep.Down[pt] {
					coord = pt
					break
				}
			}
		}
		if coord == 0 {
			continue
		}
		p.coord = coord

		p.windowOK = ep.Contains(a.At, a.At.Add(window)+1) ||
			windowQuiet(sc, a, coord, window, horizon)
		if !p.windowOK {
			continue
		}

		// Reachable participants: up and connected to the coordinator for
		// the whole window. Everyone reachable acquires locks and votes
		// yes; everyone else never hears the VOTE-REQ.
		for _, s := range a.Participants {
			if s == coord {
				p.coordIn = true
			}
			if ep.Connected(coord, s) {
				p.reach = append(p.reach, s)
			}
		}
		p.items = a.Writeset.Items()

		// The vote timer was armed at submission, so the last vote must
		// arrive strictly before arrival+2T (the timer wins an exact tie).
		voteDeadline := a.At.Add(2 * T)
		p.abortAt = firstDecisionTime(seed, coord, p.coordIn, p.reach, voteDeadline)
		p.allReach = len(p.reach) == len(a.Participants)
		if !p.allReach {
			continue
		}
		tAllVotes := a.At
		for _, s := range p.reach {
			d1 := messageDelay(seed, coord, s, a.At)
			t1 := a.At.Add(d1)
			t2 := t1.Add(messageDelay(seed, s, coord, t1))
			if t2 > tAllVotes {
				tAllVotes = t2
			}
		}
		p.tAllVotes = tAllVotes
		if tAllVotes >= voteDeadline {
			p.voteAbort = true
			continue
		}
		p.commitAt = firstDecisionTime(seed, coord, p.coordIn, p.reach, tAllVotes)

		// PC/ack round trips for the three-phase protocols, sorted by
		// (arrival time, site) the way the coordinator observes them.
		p.ackDeadline = tAllVotes.Add(2 * T)
		p.acks = make([]ackArrival, 0, len(p.reach))
		for _, s := range p.reach {
			d3 := messageDelay(seed, coord, s, tAllVotes)
			t3 := tAllVotes.Add(d3)
			t4 := t3.Add(messageDelay(seed, s, coord, t3))
			p.acks = append(p.acks, ackArrival{at: t4, site: s})
		}
		sort.Slice(p.acks, func(x, y int) bool {
			if p.acks[x].at != p.acks[y].at {
				return p.acks[x].at < p.acks[y].at
			}
			return p.acks[x].site < p.acks[y].site
		})
	}
	return plans
}

// executeRunHybrid evaluates one script under one protocol with the hybrid
// engine. It mirrors executeRun's accounting exactly; only the evaluation of
// individual transactions differs.
func executeRunHybrid(sc *script, params Params, seed int64, spec protocol.Spec) (runStats, error) {
	horizon := sim.Time(params.Horizon)
	T := simnet.Config{}.MaxDelayOrDefault() // the engine's timeout base
	if sc.hybridMulti == nil {
		sc.hybridMulti = conflictClusters(sc.arrivals, sim.Duration(analyticClusterT)*T)
	}
	if sc.hybridPlans == nil || sc.hybridSeed != seed {
		if sc.hybridEpochs == nil {
			sc.hybridEpochs = sc.epochs(horizon)
		}
		sc.hybridPlans = buildHybridPlans(sc, seed, sc.hybridEpochs, T, sim.Duration(analyticWindowT)*T, horizon)
		sc.hybridSeed = seed
	}
	h := &hybridRun{
		sc:       sc,
		params:   params,
		seed:     seed,
		spec:     spec,
		model:    protoModelFor(spec, sc.asgn),
		multi:    sc.hybridMulti,
		plans:    sc.hybridPlans,
		worldTxn: make([]types.TxnID, len(sc.arrivals)),
	}

	var st runStats
	st.counts.Arrivals = len(sc.arrivals)
	st.counts.SiteDownNS = sc.siteDownNS
	st.counts.PartitionedNS = sc.partitionedNS

	for i := range sc.arrivals {
		a := &sc.arrivals[i]
		p := &h.plans[i]

		st.counts.AccessChecks += len(a.Writeset)
		st.counts.ReadAvailable += p.probeRead
		st.counts.WriteAvailable += p.probeWrite

		if p.coord == 0 {
			st.counts.Rejected++
			continue
		}
		st.counts.Submitted++
		st.counts.PostSubmitNS += int64(horizon - a.At)

		// Keep the fallback world's clock at the arrival front so lock
		// probes and submissions happen at replay-identical times.
		if h.world != nil {
			h.world.Scheduler().RunUntil(a.At)
		}

		if committed, decidedAt, ok := h.classify(i, a, p); ok {
			st.analytic++
			lat := sim.Duration(decidedAt - a.At)
			st.counts.PendingNS += int64(lat)
			st.latencies = append(st.latencies, lat)
			if committed {
				st.counts.Committed++
			} else {
				st.counts.Aborted++
			}
			continue
		}

		// Fallback: replay this transaction in the shared world.
		if h.world == nil {
			h.ensureWorld()
			h.world.Scheduler().RunUntil(a.At)
		}
		h.worldTxn[i] = h.world.Begin(p.coord, a.Writeset)
	}

	if h.world != nil {
		sched := h.world.Scheduler()
		sched.RunUntil(horizon)
		if sched.MaxSteps != 0 && sched.Steps() >= sched.MaxSteps {
			return runStats{}, fmt.Errorf("churn: %s hybrid run (seed %d) exhausted %d scheduler steps before the horizon", spec.Name(), seed, sched.MaxSteps)
		}
		st.counts.ModeDemotions, st.counts.ModeRestorations = h.world.ModeTransitions()
		st.counts.VoteReassignments, st.counts.VoteRestorations = h.world.VoteTransitions()
		all := h.world.Sites()
		for i := range sc.arrivals {
			txn := h.worldTxn[i]
			if txn == 0 {
				continue
			}
			a := &sc.arrivals[i]
			if decidedAt, ok := h.world.FirstDecisionAt(txn); ok {
				lat := sim.Duration(decidedAt - a.At)
				st.counts.PendingNS += int64(lat)
				st.latencies = append(st.latencies, lat)
				switch h.world.GroupOutcome(txn, all) {
				case types.OutcomeCommitted:
					st.counts.Committed++
				default:
					st.counts.Aborted++
				}
				continue
			}
			st.counts.PendingNS += int64(horizon - a.At)
			if h.world.GroupOutcome(txn, all) == types.OutcomeBlocked {
				st.counts.Blocked++
			} else {
				st.counts.Unresolved++
			}
		}
		st.violations = len(h.world.Violations()) + len(h.world.CheckStores())
	}
	return st, nil
}

// ensureWorld builds the shared fallback world: the same cluster replay
// would build, with the full fault timeline and kick schedule, but with only
// the replayed transactions submitted into it.
func (h *hybridRun) ensureWorld() {
	if h.sc.hybridStores == nil {
		tbl := make(map[types.SiteID]map[types.ItemID]storage.Versioned, len(h.sc.sites))
		for _, item := range h.sc.asgn.Items() {
			ic, _ := h.sc.asgn.Item(item)
			for _, cp := range ic.Copies {
				m := tbl[cp.Site]
				if m == nil {
					m = make(map[types.ItemID]storage.Versioned)
					tbl[cp.Site] = m
				}
				m[item] = storage.Versioned{Version: 1}
			}
		}
		h.sc.hybridStores = tbl
	}
	cl := engine.New(engine.Config{
		Seed:       h.seed,
		Net:        simnet.Config{DelayFn: delayModel(h.seed)},
		Assignment: h.sc.asgn,
		Strategy:   h.params.Strategy,
		Spec:       h.spec,
		ExtraSites: h.sc.sites,
		SeedStores: h.sc.hybridStores,
	})
	cl.Recorder().Disable()
	sched := cl.Scheduler()
	sched.MaxSteps = 4_000_000 + uint64(len(h.sc.arrivals))*stepsPerArrival
	for _, ev := range h.sc.events {
		switch ev.Kind {
		case EventCrash:
			cl.CrashAt(ev.At, ev.Site)
		case EventRestart:
			cl.RestartAt(ev.At, ev.Site)
		case EventPartition:
			cl.PartitionAt(ev.At, ev.Groups...)
		case EventHeal:
			cl.HealAt(ev.At)
		}
	}
	grace := sim.Duration(kickGraceT) * cl.T()
	for _, ri := range h.sc.repairs {
		at := h.sc.events[ri].At
		sched.At(at, func() {
			now := sched.Now()
			for i, txn := range h.worldTxn {
				if txn != 0 && h.sc.arrivals[i].At.Add(grace) <= now {
					cl.Kick(txn)
				}
			}
		})
	}
	h.world = cl
}

// classify decides arrival i analytically if it qualifies. It returns
// ok=false to send the transaction to the fallback world. The plan supplies
// the protocol-independent half (window quietness, reachability, vote and
// ack arithmetic); what remains here is everything the protocol column owns:
// the live lock probe against its fallback world, the quorum decider gate,
// and the ack-rule walk.
func (h *hybridRun) classify(i int, a *arrival, p *arrivalPlan) (committed bool, decidedAt sim.Time, ok bool) {
	if h.model == nil || h.multi[i] || !p.windowOK {
		return false, 0, false
	}

	// Live lock probe: a held lock on any copy a reachable participant
	// would try to X-lock means the yes-vote assumption is wrong. Only
	// long-blocked replayed transactions can hold locks here (anything
	// closer shares a conflict cluster), and only the world knows them.
	if h.world != nil && h.world.AnyLocks() {
		for _, s := range p.reach {
			for _, u := range a.Writeset {
				if h.world.ItemLockedAt(s, u.Item) {
					return false, 0, false
				}
			}
		}
	}

	if !p.allReach || p.voteAbort {
		// Missing or too-slow votes: the coordinator aborts on the vote
		// timeout.
		return false, p.abortAt, true
	}
	if h.model.twoPhase {
		return true, p.commitAt, true
	}

	// Three-phase protocols: sanity-gate the commit through the protocol's
	// quorumcalc decider over the all-participants-prepared tally, then
	// walk the PC-ack arrivals until the ack rule is satisfied.
	h.tally.Reset()
	for _, s := range a.Participants {
		h.tally.Add(s, types.StatePC)
	}
	if h.model.decider(p.items, a.Participants)(h.sc.asgn, &h.tally) != types.OutcomeCommitted {
		return false, 0, false
	}

	h.acked = h.acked[:0]
	for _, ack := range p.acks {
		h.acked = append(h.acked, ack.site)
		if !h.model.satisfied(p.items, a.Participants, h.acked) {
			continue
		}
		if ack.at < p.ackDeadline {
			return true, firstDecisionTime(h.seed, p.coord, p.coordIn, p.reach, ack.at), true
		}
		break
	}
	if h.model.ackTimeoutCommit {
		// 3PC commits when the ack window expires.
		return true, firstDecisionTime(h.seed, p.coord, p.coordIn, p.reach, p.ackDeadline), true
	}
	// A terminate-on-ack-timeout protocol would enter its termination
	// machinery here; replay it instead of modeling that.
	return false, 0, false
}

// windowQuiet reports whether every fault event inside the commit window
// (arrival, arrival+5T] is invisible to the transaction: a crash or restart
// of a site that is neither its (effective) coordinator nor one of its
// participants. All protocol traffic flows between the coordinator and the
// participants, the per-message delay hash is independent of unrelated
// traffic, and an unrelated site by definition holds no copy of a written
// item — so such an event cannot change the transaction's fate or timing.
// Partition changes regroup every site and always count as visible. Events
// at the arrival instant are already folded into the arrival's epoch; an
// event at exactly the window end still counts, since replay applies it
// before same-instant message deliveries.
//
// A window overhanging the horizon is never quiet: replay freezes the world
// mid-protocol there, leaving a transaction non-terminal (Blocked) even
// when the arithmetic says its decision lands before the cut — the decision
// only becomes terminal when its delivery does. The epoch fast path gets
// this for free because the last epoch ends at the horizon.
func windowQuiet(sc *script, a *arrival, coord types.SiteID, window sim.Duration, horizon sim.Time) bool {
	end := a.At.Add(window)
	if end+1 > horizon {
		return false
	}
	evs := sc.events
	i := sort.Search(len(evs), func(i int) bool { return evs[i].At > a.At })
	for ; i < len(evs) && evs[i].At <= end; i++ {
		switch evs[i].Kind {
		case EventPartition, EventHeal:
			return false
		default:
			if evs[i].Site == coord {
				return false
			}
			for _, s := range a.Participants {
				if s == evs[i].Site {
					return false
				}
			}
		}
	}
	return true
}

// firstDecisionTime mirrors engine.Cluster.FirstDecisionAt for an analytic
// transaction: a coordinator outside the participant set records the
// decision locally the instant it is made, otherwise the earliest decision
// record is the fastest delivery of the decision message to a reachable
// participant (the coordinator's own site included).
func firstDecisionTime(seed int64, coord types.SiteID, coordIn bool, reach []types.SiteID, tDecide sim.Time) sim.Time {
	if !coordIn {
		return tDecide
	}
	first := sim.Time(0)
	for i, s := range reach {
		at := tDecide.Add(messageDelay(seed, coord, s, tDecide))
		if i == 0 || at < first {
			first = at
		}
	}
	return first
}
