package churn

import (
	"fmt"
	"math/rand"
	"sort"

	"qcommit/internal/sim"
	"qcommit/internal/storage"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/workload"
)

// EventKind classifies a fault-timeline event.
type EventKind uint8

// Timeline event kinds, in deterministic tie-break order: at equal times a
// failure is applied before its repair counterpart so a site whose repair
// draw rounds to zero still observes one down instant, and partitions form
// before they heal.
const (
	// EventCrash takes one site down (volatile state lost, WAL kept).
	EventCrash EventKind = iota
	// EventPartition splits the network into Groups.
	EventPartition
	// EventRestart brings one site back (WAL replay + anti-entropy).
	EventRestart
	// EventHeal reconnects the network.
	EventHeal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventPartition:
		return "partition"
	case EventRestart:
		return "restart"
	default:
		return "heal"
	}
}

// Event is one scheduled fault or repair on the timeline.
type Event struct {
	At   sim.Time
	Kind EventKind
	// Site is the subject of EventCrash/EventRestart.
	Site types.SiteID
	// Groups is the partition layout of EventPartition.
	Groups [][]types.SiteID
}

// arrival is one pre-drawn transaction submission.
type arrival struct {
	At sim.Time
	// Coord is the preferred coordinator; if it is down at submission time
	// the runner re-routes to the lowest-numbered up participant.
	Coord        types.SiteID
	Writeset     types.Writeset
	Participants []types.SiteID
}

// script is everything one study run needs, drawn up front so every protocol
// column replays the identical world: the replica placement, the fault
// timeline, and the transaction stream.
type script struct {
	sites    []types.SiteID
	asgn     *voting.Assignment
	events   []Event
	arrivals []arrival
	// repairs are the indices into events of EventRestart/EventHeal, where
	// the runner re-kicks blocked transactions.
	repairs []int
	// siteDownNS is the summed per-site down time within the horizon;
	// partitionedNS is the time the network spent split.
	siteDownNS    int64
	partitionedNS int64
	// Hybrid-engine views of the script, computed on first use and shared
	// by every protocol column of the run (scripts are evaluated by one
	// goroutine at a time). The plans carry everything about an arrival
	// that is protocol-independent: probes, rerouting, reachability and
	// the vote/ack round-trip arithmetic.
	hybridEpochs []Epoch
	hybridMulti  []bool
	hybridPlans  []arrivalPlan
	hybridSeed   int64
	// hybridStores is the initial store table per site, cloned into each
	// fallback world via engine.Config.SeedStores.
	hybridStores map[types.SiteID]map[types.ItemID]storage.Versioned
}

// expDur draws an exponentially distributed duration with the given mean,
// rounded up so a positive mean never yields a zero-length interval.
func expDur(rng *rand.Rand, mean sim.Duration) sim.Duration {
	d := sim.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = 1
	}
	return d
}

// generateScript draws the run script for one seed. Generation is
// deterministic in (params, seed): a single rand source is consumed in a
// fixed order (placement, per-site failure processes, partition process,
// arrival times), and the transaction mix uses its own derived-seed
// generator so workload draws never shift fault draws or vice versa.
func generateScript(params Params, seed int64) (*script, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := &script{}

	// Replica placement: CopiesPerItem random sites per item, one vote per
	// copy, majority quorums — the avail sweep's placement model.
	sc.sites = make([]types.SiteID, params.NumSites)
	for i := range sc.sites {
		sc.sites[i] = types.SiteID(i + 1)
	}
	r, w := voting.MajorityQuorums(params.CopiesPerItem)
	configs := make([]voting.ItemConfig, params.NumItems)
	for i := range configs {
		perm := rng.Perm(params.NumSites)
		copies := make([]voting.Copy, params.CopiesPerItem)
		for j := range copies {
			copies[j] = voting.Copy{Site: sc.sites[perm[j]], Votes: 1}
		}
		configs[i] = voting.ItemConfig{Item: types.ItemID(fmt.Sprintf("item%d", i+1)), Copies: copies, R: r, W: w}
	}
	asgn, err := voting.NewAssignment(configs...)
	if err != nil {
		return nil, err
	}
	sc.asgn = asgn

	horizon := sim.Time(params.Horizon)

	// Per-site alternating up/down renewal process: up ~ Exp(MTTF),
	// down ~ Exp(MTTR). A site mid-repair at the horizon stays down.
	if params.MTTF > 0 {
		for _, site := range sc.sites {
			t := sim.Time(0)
			for {
				t = t.Add(expDur(rng, params.MTTF))
				if t >= horizon {
					break
				}
				sc.events = append(sc.events, Event{At: t, Kind: EventCrash, Site: site})
				down := t
				t = t.Add(expDur(rng, params.MTTR))
				if t >= horizon {
					sc.siteDownNS += int64(horizon - down)
					break
				}
				sc.siteDownNS += int64(t - down)
				sc.events = append(sc.events, Event{At: t, Kind: EventRestart, Site: site})
			}
		}
	}

	// Global partition renewal process: connected ~ Exp(PartitionMTBF),
	// split ~ Exp(PartitionMTTR). Each split draws a fresh random layout of
	// 2..MaxGroups non-empty groups.
	if params.PartitionMTBF > 0 {
		t := sim.Time(0)
		for {
			t = t.Add(expDur(rng, params.PartitionMTBF))
			if t >= horizon {
				break
			}
			sc.events = append(sc.events, Event{At: t, Kind: EventPartition, Groups: randomGroups(rng, sc.sites, params.MaxGroups)})
			split := t
			t = t.Add(expDur(rng, params.PartitionMTTR))
			if t >= horizon {
				sc.partitionedNS += int64(horizon - split)
				break
			}
			sc.partitionedNS += int64(t - split)
			sc.events = append(sc.events, Event{At: t, Kind: EventHeal})
		}
	}

	sort.SliceStable(sc.events, func(i, j int) bool {
		a, b := sc.events[i], sc.events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Site < b.Site
	})
	for i, ev := range sc.events {
		if ev.Kind == EventRestart || ev.Kind == EventHeal {
			sc.repairs = append(sc.repairs, i)
		}
	}

	// Transaction stream: exponential inter-arrival times from the main
	// source, writesets and coordinators from a derived-seed workload
	// generator.
	wgen, err := workload.NewGenerator(asgn, workload.Mix{
		WritesPerTxn: params.WritesPerTxn,
		HotFraction:  params.HotFraction,
	}, seed^workloadSeedMix)
	if err != nil {
		return nil, err
	}
	t := sim.Time(0)
	for {
		t = t.Add(expDur(rng, params.MeanInterarrival))
		if t >= horizon {
			break
		}
		txn := wgen.Next()
		sc.arrivals = append(sc.arrivals, arrival{
			At:           t,
			Coord:        txn.Coord,
			Writeset:     txn.Writeset,
			Participants: asgn.Participants(txn.Writeset.Items()),
		})
	}
	return sc, nil
}

// workloadSeedMix decorrelates the workload generator's seed from the fault
// rng's seed (an arbitrary odd constant).
const workloadSeedMix = 0x5bf0_3635

// Epoch is a maximal interval [Start, End) of a fault timeline over which
// the world is static: no site crashes or restarts and the partition layout
// does not change. The epoch view is the raw event stream re-expressed as
// state: where events say what changed, an epoch says what held — which is
// exactly what the hybrid engine needs to decide whether a transaction's
// whole commit window saw one fixed world.
type Epoch struct {
	Start sim.Time
	End   sim.Time
	// Down[s] reports whether site s is down throughout the epoch; sites
	// are the contiguous IDs 1..numSites, index 0 is unused.
	Down []bool
	// GroupOf[s] is the partition group of site s, mirroring
	// simnet.Network's convention: all zeros when fully connected, and
	// after a partition the listed groups get 1-based numbers with
	// unlisted sites sharing the implicit residual group 0.
	GroupOf []int
}

// Up reports whether site s is up throughout the epoch.
func (e *Epoch) Up(s types.SiteID) bool { return !e.Down[s] }

// Connected mirrors simnet.Network.Connected over the epoch's static
// state: both sites up and in the same partition group.
func (e *Epoch) Connected(a, b types.SiteID) bool {
	if e.Down[a] || e.Down[b] {
		return false
	}
	return e.GroupOf[a] == e.GroupOf[b]
}

// Contains reports whether the interval [from, to] falls inside the epoch.
func (e *Epoch) Contains(from, to sim.Time) bool {
	return e.Start <= from && to <= e.End
}

// EpochsOf segments a time-sorted fault-event stream over sites 1..numSites
// into epochs covering [0, horizon). Events at identical timestamps are
// applied together in stream order and share one boundary, so no
// zero-length epochs are emitted; events at or past the horizon are
// ignored. The returned epochs tile [0, horizon) exactly: the first starts
// at 0, each next starts where the previous ended, and the last ends at
// the horizon.
func EpochsOf(events []Event, numSites int, horizon sim.Time) []Epoch {
	down := make([]bool, numSites+1)
	groupOf := make([]int, numSites+1)
	var out []Epoch
	start := sim.Time(0)
	snapshot := func(end sim.Time) {
		e := Epoch{
			Start:   start,
			End:     end,
			Down:    make([]bool, numSites+1),
			GroupOf: make([]int, numSites+1),
		}
		copy(e.Down, down)
		copy(e.GroupOf, groupOf)
		out = append(out, e)
	}
	for _, ev := range events {
		if ev.At >= horizon {
			break
		}
		if ev.At > start {
			snapshot(ev.At)
			start = ev.At
		}
		switch ev.Kind {
		case EventCrash:
			down[ev.Site] = true
		case EventRestart:
			down[ev.Site] = false
		case EventPartition:
			for i := range groupOf {
				groupOf[i] = 0
			}
			for gi, g := range ev.Groups {
				for _, s := range g {
					groupOf[s] = gi + 1
				}
			}
		case EventHeal:
			for i := range groupOf {
				groupOf[i] = 0
			}
		}
	}
	if start < horizon {
		snapshot(horizon)
	}
	return out
}

// epochs is the script's epoch view of its own fault timeline.
func (sc *script) epochs(horizon sim.Time) []Epoch {
	return EpochsOf(sc.events, len(sc.sites), horizon)
}

// randomGroups splits sites into 2..maxGroups non-empty groups by
// round-robin over a random permutation (the avail scenario generator's
// partition model).
func randomGroups(rng *rand.Rand, sites []types.SiteID, maxGroups int) [][]types.SiteID {
	numGroups := 2 + rng.Intn(maxGroups-1)
	if numGroups > len(sites) {
		numGroups = len(sites)
	}
	perm := rng.Perm(len(sites))
	groups := make([][]types.SiteID, numGroups)
	for i, pi := range perm {
		gi := i % numGroups
		groups[gi] = append(groups[gi], sites[pi])
	}
	return groups
}
