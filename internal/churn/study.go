package churn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"qcommit/internal/core"
	"qcommit/internal/engine"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// Builder constructs a protocol spec for a churn run.
type Builder struct {
	// Label names the column in result tables.
	Label string
	// Build returns the spec for a cluster over the given sites.
	Build func(sites []types.SiteID) protocol.Spec
}

// StandardBuilders returns the five standard protocol columns: 2PC, 3PC,
// Skeen's quorum protocol with per-transaction majority site-vote quorums,
// and the paper's protocols 1 and 2.
func StandardBuilders() []Builder {
	return []Builder{
		{Label: "2PC", Build: func([]types.SiteID) protocol.Spec { return twopc.Spec{} }},
		{Label: "3PC", Build: func([]types.SiteID) protocol.Spec { return threepc.Spec{} }},
		{Label: "SkeenQ", Build: func([]types.SiteID) protocol.Spec { return skeenPerTxn{} }},
		{Label: "QC1", Build: func([]types.SiteID) protocol.Spec { return core.Spec{Variant: core.Protocol1} }},
		{Label: "QC2", Build: func([]types.SiteID) protocol.Spec { return core.Spec{Variant: core.Protocol2} }},
	}
}

// skeenPerTxn is Skeen's quorum protocol with majority site-vote quorums
// sized per transaction over its participant set — the avail sweep's
// convention, extended to a stream where every transaction has a different
// participant list. A cluster-wide quorum would be unreachable for
// transactions whose items replicate on fewer than Vc sites, blocking them
// even without failures.
type skeenPerTxn struct{}

var _ protocol.Spec = skeenPerTxn{}

func skeenFor(participants []types.SiteID) skeenq.Spec {
	v := len(participants)
	vc := v/2 + 1
	return skeenq.Uniform(participants, vc, v+1-vc)
}

// Name implements protocol.Spec.
func (skeenPerTxn) Name() string { return "SkeenQ" }

// NewCoordinator implements protocol.Spec.
func (skeenPerTxn) NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) protocol.Automaton {
	return skeenFor(participants).NewCoordinator(txn, ws, participants)
}

// NewParticipant implements protocol.Spec (the participant does not consult
// the vote table).
func (skeenPerTxn) NewParticipant(txn types.TxnID, init *wal.TxnImage) protocol.Automaton {
	return skeenq.Spec{}.NewParticipant(txn, init)
}

// NewTerminator implements protocol.Spec.
func (skeenPerTxn) NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) protocol.Automaton {
	return skeenFor(participants).NewTerminator(txn, ws, participants, epoch)
}

// runStats is one (run, protocol) evaluation before aggregation.
type runStats struct {
	counts     Counts
	violations int
	latencies  []sim.Duration
	// analytic is how many submissions the hybrid engine decided without
	// simulation (always zero for replay); it exists so tests can pin that
	// the analytic path carries real coverage.
	analytic int
}

// stepsPerArrival budgets scheduler events per transaction (ordinary
// terminations take hundreds; repeated termination rounds under churn take
// more). The budget exists to turn a livelocked protocol into an error
// instead of an endless spin.
const stepsPerArrival = 100_000

// kickGraceT is how old (in units of the timeout base T) a still-undecided
// transaction must be before a repair event re-kicks its termination. The
// commit protocol's own windows span ~4T (a 2T vote phase plus a 2T ack
// phase), so by 6T an undecided transaction is genuinely stalled.
const kickGraceT = 6

// executeRun replays one script under one protocol: schedule the fault
// timeline, the transaction stream and the post-repair kicks, run the
// simulator to the horizon, then read every transaction's fate out of the
// cluster.
func executeRun(sc *script, params Params, seed int64, spec protocol.Spec) (runStats, error) {
	// ExtraSites keeps copy-less sites in the cluster: random placement may
	// leave a site with no replicas, but the timeline still crashes and
	// restarts it. Delays come from the per-message hash model so the hybrid
	// engine's fallback world — which simulates only a subset of the traffic
	// — sees the same delay on every message it shares with this full replay.
	cl := engine.New(engine.Config{Seed: seed, Net: simnet.Config{DelayFn: delayModel(seed)}, Assignment: sc.asgn, Strategy: params.Strategy, Spec: spec, ExtraSites: sc.sites})
	cl.Recorder().Disable()
	sched := cl.Scheduler()
	sched.MaxSteps = 4_000_000 + uint64(len(sc.arrivals))*stepsPerArrival
	horizon := sim.Time(params.Horizon)

	for _, ev := range sc.events {
		switch ev.Kind {
		case EventCrash:
			cl.CrashAt(ev.At, ev.Site)
		case EventRestart:
			cl.RestartAt(ev.At, ev.Site)
		case EventPartition:
			cl.PartitionAt(ev.At, ev.Groups...)
		case EventHeal:
			cl.HealAt(ev.At)
		}
	}

	// Submissions. At fire time the preferred coordinator may be down; the
	// client then retries the lowest-numbered live replica of its data, and
	// gives up (Rejected) only when every participant is down. txnOf[i] == 0
	// means arrival i was rejected.
	//
	// Each arrival also samples data-access availability from the client's
	// preferred coordinator: one read probe and one write probe per written
	// item, before the submission mutates lock state. The probes see the
	// strategy — optimistic read-one versus quorum reads — so the
	// per-strategy columns quantify when adaptive voting wins (rare
	// failures) and when it loses (items stuck in pessimistic mode with
	// stale copies excluded).
	var access struct{ checks, read, write int }
	txnOf := make([]types.TxnID, len(sc.arrivals))
	for i, a := range sc.arrivals {
		i, a := i, a
		sched.At(a.At, func() {
			for _, u := range a.Writeset {
				access.checks++
				if cl.CanRead(a.Coord, u.Item) {
					access.read++
				}
				if cl.CanWrite(a.Coord, u.Item) {
					access.write++
				}
			}
			coord := a.Coord
			if cl.Network().Down(coord) {
				coord = 0
				for _, p := range a.Participants {
					if !cl.Network().Down(p) {
						coord = p
						break
					}
				}
			}
			if coord == 0 {
				return
			}
			txnOf[i] = cl.Begin(coord, a.Writeset)
		})
	}

	// After every repair event, re-kick stalled transactions: Kick resets
	// the termination-round budget and starts a fresh election, so progress
	// made possible by the repair is actually attempted. Only transactions
	// past the kick grace are touched — a younger transaction's commit
	// protocol is still running, and forcing termination under it would
	// race the live coordinator (the engine's patience timers embody the
	// same discipline). These callbacks are scheduled after the timeline's,
	// so at equal times the repair itself runs first. Kick skips terminated
	// transactions itself.
	grace := sim.Duration(kickGraceT) * cl.T()
	for _, ri := range sc.repairs {
		at := sc.events[ri].At
		sched.At(at, func() {
			now := sched.Now()
			for i, txn := range txnOf {
				if txn != 0 && sc.arrivals[i].At.Add(grace) <= now {
					cl.Kick(txn)
				}
			}
		})
	}

	sched.RunUntil(horizon)
	if sched.MaxSteps != 0 && sched.Steps() >= sched.MaxSteps {
		return runStats{}, fmt.Errorf("churn: %s run (seed %d) exhausted %d scheduler steps before the horizon", spec.Name(), seed, sched.MaxSteps)
	}

	var st runStats
	st.counts.Arrivals = len(sc.arrivals)
	st.counts.SiteDownNS = sc.siteDownNS
	st.counts.PartitionedNS = sc.partitionedNS
	st.counts.AccessChecks = access.checks
	st.counts.ReadAvailable = access.read
	st.counts.WriteAvailable = access.write
	st.counts.ModeDemotions, st.counts.ModeRestorations = cl.ModeTransitions()
	st.counts.VoteReassignments, st.counts.VoteRestorations = cl.VoteTransitions()
	all := cl.Sites()
	for i, a := range sc.arrivals {
		txn := txnOf[i]
		if txn == 0 {
			st.counts.Rejected++
			continue
		}
		st.counts.Submitted++
		st.counts.PostSubmitNS += int64(horizon - a.At)
		if decidedAt, ok := cl.FirstDecisionAt(txn); ok {
			lat := sim.Duration(decidedAt - a.At)
			st.counts.PendingNS += int64(lat)
			st.latencies = append(st.latencies, lat)
			switch cl.GroupOutcome(txn, all) {
			case types.OutcomeCommitted:
				st.counts.Committed++
			default:
				st.counts.Aborted++
			}
			continue
		}
		st.counts.PendingNS += int64(horizon - a.At)
		if cl.GroupOutcome(txn, all) == types.OutcomeBlocked {
			st.counts.Blocked++
		} else {
			st.counts.Unresolved++
		}
	}
	st.violations = len(cl.Violations()) + len(cl.CheckStores())
	return st, nil
}

// accumulateRun draws run r's script (seeded seed+r) and evaluates it under
// every builder, adding the tallies into results. Runs are independently
// seeded and aggregation is pure addition plus latency concatenation in run
// order, so evaluating the run set in any chunking produces identical
// results.
func accumulateRun(params Params, seed int64, r int, builders []Builder, results []Result) error {
	sc, err := generateScript(params, seed+int64(r))
	if err != nil {
		return err
	}
	exec := executeRun
	if params.Engine == EngineHybrid {
		exec = executeRunHybrid
	}
	for i, b := range builders {
		st, err := exec(sc, params, seed+int64(r), b.Build(sc.sites))
		if err != nil {
			return err
		}
		results[i].Runs++
		results[i].Counts.Add(st.counts)
		results[i].Violations += st.violations
		results[i].Latencies = append(results[i].Latencies, st.latencies...)
	}
	return nil
}

func newResults(builders []Builder) []Result {
	results := make([]Result, len(builders))
	for i, b := range builders {
		results[i].Label = b.Label
	}
	return results
}

// Study evaluates runs independent churn runs under every builder and
// aggregates. All builders see identical worlds. This serial path is the
// determinism oracle for StudyParallel.
func Study(params Params, runs int, seed int64, builders []Builder) ([]Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	results := newResults(builders)
	for r := 0; r < runs; r++ {
		if err := accumulateRun(params, seed, r, builders, results); err != nil {
			return nil, err
		}
	}
	sortLatencies(results)
	return results, nil
}

// Options tunes StudyParallel.
type Options struct {
	// Workers is the number of goroutines evaluating runs. Zero or negative
	// means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, if non-nil, is called as runs complete with the number
	// finished so far and the total. Calls are serialized and done is
	// nondecreasing.
	Progress func(done, total int)
}

// StudyParallel is the worker-pool version of Study: runs fan out across
// opts.Workers goroutines (one run per claim — a run is already a 5-protocol
// simulation batch) and per-run accumulators merge in ascending run order.
// Results are bit-for-bit identical to the serial Study for any worker
// count.
func StudyParallel(params Params, runs int, seed int64, builders []Builder, opts Options) ([]Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		// One worker is exactly the serial path; skip the pool machinery.
		results := newResults(builders)
		for r := 0; r < runs; r++ {
			if err := accumulateRun(params, seed, r, builders, results); err != nil {
				return nil, err
			}
			if opts.Progress != nil {
				opts.Progress(r+1, runs)
			}
		}
		sortLatencies(results)
		return results, nil
	}

	// Workers claim run indices from an atomic counter; each run accumulates
	// into its own slot so the merge below proceeds in run order regardless
	// of completion order.
	perRun := make([][]Result, runs)
	errs := make([]error, runs)
	var next atomic.Int64
	var failed atomic.Bool
	var progressMu sync.Mutex // guards done and serializes Progress calls
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= runs || failed.Load() {
					return
				}
				acc := newResults(builders)
				if err := accumulateRun(params, seed, r, builders, acc); err != nil {
					errs[r] = err
					failed.Store(true)
					return
				}
				perRun[r] = acc
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(done, runs)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic merge by run index. On failure, report the error of the
	// lowest failing run, as the serial path would have.
	results := newResults(builders)
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			return nil, errs[r]
		}
		if perRun[r] == nil {
			// A later worker raced past a failed run; the error is ahead.
			continue
		}
		for i := range results {
			results[i].Runs += perRun[r][i].Runs
			results[i].Counts.Add(perRun[r][i].Counts)
			results[i].Violations += perRun[r][i].Violations
			results[i].Latencies = append(results[i].Latencies, perRun[r][i].Latencies...)
		}
	}
	sortLatencies(results)
	return results, nil
}
