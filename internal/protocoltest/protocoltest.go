// Package protocoltest provides a fake protocol.Env for unit-testing
// automata and quorum rules in isolation from the engine and the network.
package protocoltest

import (
	"fmt"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Sent is one recorded Send call.
type Sent struct {
	To  types.SiteID
	Msg msg.Message
}

// Timer is one recorded SetTimer call.
type Timer struct {
	D     sim.Duration
	Token int
}

// Env is a recording fake for protocol.Env.
type Env struct {
	SelfID types.SiteID
	Asgn   *voting.Assignment
	Clock  sim.Time
	NetT   sim.Duration
	LockOK bool

	Sends      []Sent
	Timers     []Timer
	Logs       []wal.Record
	Committed  []types.TxnID
	Aborted    []types.TxnID
	Blocked    []types.TxnID
	TermReqs   []types.TxnID
	TermDones  []types.TxnID
	TraceLines []string
}

var _ protocol.Env = (*Env)(nil)

// New creates a fake env for the given site with locks granting by default.
func New(self types.SiteID, asgn *voting.Assignment) *Env {
	return &Env{SelfID: self, Asgn: asgn, NetT: 10 * sim.Millisecond, LockOK: true}
}

// Self implements protocol.Env.
func (e *Env) Self() types.SiteID { return e.SelfID }

// Now implements protocol.Env.
func (e *Env) Now() sim.Time { return e.Clock }

// T implements protocol.Env.
func (e *Env) T() sim.Duration { return e.NetT }

// Assignment implements protocol.Env.
func (e *Env) Assignment() *voting.Assignment { return e.Asgn }

// Send implements protocol.Env.
func (e *Env) Send(to types.SiteID, m msg.Message) {
	e.Sends = append(e.Sends, Sent{To: to, Msg: m})
}

// SetTimer implements protocol.Env.
func (e *Env) SetTimer(d sim.Duration, token int) {
	e.Timers = append(e.Timers, Timer{D: d, Token: token})
}

// Append implements protocol.Env.
func (e *Env) Append(rec wal.Record) { e.Logs = append(e.Logs, rec) }

// Commit implements protocol.Env.
func (e *Env) Commit(txn types.TxnID) { e.Committed = append(e.Committed, txn) }

// Abort implements protocol.Env.
func (e *Env) Abort(txn types.TxnID) { e.Aborted = append(e.Aborted, txn) }

// Block implements protocol.Env.
func (e *Env) Block(txn types.TxnID) { e.Blocked = append(e.Blocked, txn) }

// RequestTermination implements protocol.Env.
func (e *Env) RequestTermination(txn types.TxnID) { e.TermReqs = append(e.TermReqs, txn) }

// TerminatorDone implements protocol.Env.
func (e *Env) TerminatorDone(txn types.TxnID) { e.TermDones = append(e.TermDones, txn) }

// AcquireLocks implements protocol.Env.
func (e *Env) AcquireLocks(types.TxnID) bool { return e.LockOK }

// Tracef implements protocol.Env.
func (e *Env) Tracef(format string, args ...any) {
	e.TraceLines = append(e.TraceLines, fmt.Sprintf(format, args...))
}

// SentTo returns the messages sent to one site.
func (e *Env) SentTo(id types.SiteID) []msg.Message {
	var out []msg.Message
	for _, s := range e.Sends {
		if s.To == id {
			out = append(out, s.Msg)
		}
	}
	return out
}

// SentKinds returns the kinds of all sends in order.
func (e *Env) SentKinds() []msg.Kind {
	out := make([]msg.Kind, len(e.Sends))
	for i, s := range e.Sends {
		out[i] = s.Msg.Kind()
	}
	return out
}

// LastTimer returns the most recent timer set, or a zero Timer.
func (e *Env) LastTimer() Timer {
	if len(e.Timers) == 0 {
		return Timer{}
	}
	return e.Timers[len(e.Timers)-1]
}

// Reset clears all recordings.
func (e *Env) Reset() {
	e.Sends, e.Timers, e.Logs = nil, nil, nil
	e.Committed, e.Aborted, e.Blocked = nil, nil, nil
	e.TermReqs, e.TermDones, e.TraceLines = nil, nil, nil
}
