package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"qcommit/internal/types"
)

func TestGroupLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if !recordsEqual(recs[i], want[i]) {
			t.Errorf("record %d: got %+v want %+v", i, recs[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The format is FileLog's: a FileLog must replay it identically.
	fl, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	recs2, _ := fl.Records()
	if len(recs2) != len(want) {
		t.Fatalf("FileLog replays %d records of a GroupLog file, want %d", len(recs2), len(want))
	}
}

func TestGroupLogConcurrentAppendsCoalesce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perAppender = 16, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				rec := Record{Type: RecVotedYes, Txn: types.TxnID(a*perAppender + i + 1)}
				if err := l.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	total := appenders * perAppender
	recs, _ := l.Records()
	if len(recs) != total {
		t.Fatalf("got %d records, want %d", len(recs), total)
	}
	fsyncs := l.Fsyncs()
	if fsyncs == 0 || fsyncs >= uint64(total) {
		t.Errorf("fsyncs = %d for %d concurrent appends: expected group commit to coalesce (0 < fsyncs < appends)", fsyncs, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify every acknowledged append survived.
	l2, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ = l2.Records()
	if len(recs) != total {
		t.Fatalf("reopened %d records, want %d", len(recs), total)
	}
}

func TestGroupLogAsyncTickets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	t1 := l.AppendAsync(Record{Type: RecBegin, Txn: 1})
	t2 := l.AppendAsync(Record{Type: RecVotedYes, Txn: 1})
	if t2 != t1+1 {
		t.Fatalf("tickets not dense: %d then %d", t1, t2)
	}
	if err := l.WaitDurable(t2); err != nil {
		t.Fatal(err)
	}
	if l.Durable() < t2 {
		t.Errorf("durable horizon %d below waited ticket %d", l.Durable(), t2)
	}
	recs, _ := l.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d durable records, want 2", len(recs))
	}
}

func TestGroupLogRecordsHidesUndurable(t *testing.T) {
	// Records must never surface a record whose batch has not been forced.
	// Closing immediately after AppendAsync forces the final flush; before
	// the flush the record must be invisible — we can't deterministically
	// pause the syncer, but we can at least pin that a ticket past the
	// durable horizon is not in Records.
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		l.AppendAsync(Record{Type: RecCommit, Txn: types.TxnID(i + 1)})
		recs, _ := l.Records()
		if Ticket(len(recs)) > l.Durable() {
			t.Fatalf("Records surfaced %d records with durable horizon %d", len(recs), l.Durable())
		}
	}
}

func TestGroupLogAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecCommit, Txn: 1}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestGroupLogTornTailSweep crashes a GroupLog file at every possible byte
// boundary: for each truncation point, recovery must yield a clean prefix of
// the appended sequence in order — no gaps, no reordering, no phantom
// records — and the log must accept appends again.
func TestGroupLogTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.wal")
	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const total = 12
	for i := 1; i <= total; i++ {
		if err := l.Append(Record{Type: RecVotedYes, Txn: types.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data); cut >= 0; cut -= 3 {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenGroupLog(torn)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		recs, _ := l2.Records()
		if len(recs) > total {
			t.Fatalf("cut %d: %d records recovered from %d appended", cut, len(recs), total)
		}
		for i, r := range recs {
			if r.Txn != types.TxnID(i+1) {
				t.Fatalf("cut %d: record %d has txn %d: recovery is not a clean prefix", cut, i, r.Txn)
			}
		}
		// The truncated log must keep working.
		if err := l2.Append(Record{Type: RecCommit, Txn: 999}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
	}
}

// TestGroupLogKillRecovery is the crash-recovery pin for group commit: a
// child process appends concurrently through a GroupLog, reporting each
// ticket the moment its WaitDurable returns (i.e. the moment Append would
// have returned); the parent SIGKILLs it mid-stream, reopens the log, and
// asserts the durability ordering both ways:
//
//   - every append that RETURNED is recovered (durable means durable), and
//   - recovery surfaces a clean prefix in append order, so no record is
//     observable whose predecessors' appends had not been written — the
//     force-before-send invariant's foundation.
func TestGroupLogKillRecovery(t *testing.T) {
	if os.Getenv("WAL_KILL_CHILD") != "" {
		walKillChild()
		return
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "killed.wal")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestGroupLogKillRecovery$")
	cmd.Env = append(os.Environ(), "WAL_KILL_CHILD="+path)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read acked tickets until we have enough to make the test meaningful,
	// then SIGKILL mid-batch.
	sc := bufio.NewScanner(out)
	maxAcked := uint64(0)
	acked := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		n, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			continue // test framework chatter
		}
		if n > maxAcked {
			maxAcked = n
		}
		acked++
		if acked >= 200 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if acked == 0 {
		t.Fatal("child acked no appends before the kill")
	}

	l, err := OpenGroupLog(path)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer l.Close()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	// Every acked ticket must be recovered: ticket t acked ⇒ records 1..t
	// durable ⇒ len(recs) >= maxAcked.
	if uint64(len(recs)) < maxAcked {
		t.Fatalf("recovered %d records but ticket %d was acknowledged before the kill", len(recs), maxAcked)
	}
	// And recovery is a clean prefix of the append order (the child appends
	// Txn == ticket): no phantom or out-of-order record survives.
	for i, r := range recs {
		if r.Txn != types.TxnID(i+1) {
			t.Fatalf("record %d recovered with txn %d: not a prefix of the append order", i, r.Txn)
		}
	}
}

// walKillChild is the killed process: concurrent appenders share one
// GroupLog, and every durable append prints its ticket. A single sequencer
// hands out txn IDs equal to the eventual ticket, so the parent can check
// prefix order. It runs until killed.
func walKillChild() {
	path := os.Getenv("WAL_KILL_CHILD")
	l, err := OpenGroupLog(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	var mu sync.Mutex
	var seq uint64
	w := bufio.NewWriter(os.Stdout)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Serialize the append calls so Txn == ticket, which is what
				// lets the parent check recovery is a prefix of append order.
				mu.Lock()
				seq++
				tk := l.AppendAsync(Record{Type: RecVotedYes, Txn: types.TxnID(seq)})
				mu.Unlock()
				if uint64(tk) != seq {
					fmt.Fprintln(os.Stderr, "child: ticket/seq mismatch")
					os.Exit(1)
				}
				if err := l.WaitDurable(tk); err != nil {
					return
				}
				mu.Lock()
				fmt.Fprintf(w, "%d\n", tk)
				w.Flush()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
