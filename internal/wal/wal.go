// Package wal implements the write-ahead log that gives each site stable
// storage for commit-protocol state.
//
// The termination (i.e. commit or abort) of a transaction at a site is an
// irrevocable operation, and a participant that voted yes must remember that
// across crashes, so every protocol state transition of consequence is forced
// to the log before the corresponding message is sent:
//
//	VOTED-YES (with writeset, participants, coordinator) before the yes vote,
//	PC before PC-ACK, PA before PA-ACK, COMMIT/ABORT before acting on them.
//
// Three implementations are provided: MemLog (stable across *simulated*
// crashes), FileLog (a real append-only file with CRC-protected records,
// torn-tail recovery, and one fsync per append) and GroupLog (same file
// format, but concurrent appends coalesce into one write+fsync — group
// commit — behind the AsyncLog interface).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"qcommit/internal/types"
)

// RecType discriminates log record types.
type RecType uint8

// Record types.
const (
	RecInvalid RecType = iota
	// RecBegin marks coordinator-side transaction start.
	RecBegin
	// RecVotedYes is forced before a participant sends its yes vote.
	RecVotedYes
	// RecVotedNo records a no vote (the participant may forget the
	// transaction afterwards; logged for audit).
	RecVotedNo
	// RecPC is forced before a participant acknowledges PREPARE-TO-COMMIT.
	RecPC
	// RecPA is forced before a participant acknowledges PREPARE-TO-ABORT.
	RecPA
	// RecCommit is forced before the transaction's updates are applied.
	RecCommit
	// RecAbort is forced before the transaction's locks are released on abort.
	RecAbort
)

var recNames = map[RecType]string{
	RecBegin:    "BEGIN",
	RecVotedYes: "VOTED-YES",
	RecVotedNo:  "VOTED-NO",
	RecPC:       "PC",
	RecPA:       "PA",
	RecCommit:   "COMMIT",
	RecAbort:    "ABORT",
}

// String implements fmt.Stringer.
func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one log entry. Writeset, Participants and Coord are populated on
// RecBegin and RecVotedYes records so recovery can reconstruct the
// transaction context.
type Record struct {
	Type         RecType
	Txn          types.TxnID
	Coord        types.SiteID
	Participants []types.SiteID
	Writeset     types.Writeset
}

// Log is stable storage for protocol records.
type Log interface {
	// Append durably adds a record.
	Append(Record) error
	// Records returns all records in append order.
	Records() ([]Record, error)
}

// MemLog is an in-memory Log. In the simulator it models stable storage: the
// harness preserves the MemLog across simulated crashes while discarding all
// volatile automaton state.
type MemLog struct {
	recs []Record
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(r Record) error {
	// Deep-copy slices so later caller mutations cannot corrupt the "disk".
	r.Participants = append([]types.SiteID(nil), r.Participants...)
	r.Writeset = r.Writeset.Clone()
	l.recs = append(l.recs, r)
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([]Record, error) {
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Len returns the number of records.
func (l *MemLog) Len() int { return len(l.recs) }

// Scan calls fn for every record in append order without copying the log.
// The callback must not retain the pointer or mutate the record's slices;
// it exists so auditors that walk many large logs can avoid the per-call
// allocation of Records.
func (l *MemLog) Scan(fn func(*Record)) {
	for i := range l.recs {
		fn(&l.recs[i])
	}
}

// TxnImage is the per-transaction state reconstructed from a log.
type TxnImage struct {
	Txn          types.TxnID
	State        types.State
	Coord        types.SiteID
	Participants []types.SiteID
	Writeset     types.Writeset
	// WasCoordinator is true when a RecBegin record was seen.
	WasCoordinator bool
}

// Replay folds a record sequence into per-transaction images, applying the
// protocol's state precedence (terminal states win; PC/PA supersede W).
func Replay(recs []Record) map[types.TxnID]*TxnImage {
	images := make(map[types.TxnID]*TxnImage)
	get := func(txn types.TxnID) *TxnImage {
		im, ok := images[txn]
		if !ok {
			im = &TxnImage{Txn: txn, State: types.StateInitial}
			images[txn] = im
		}
		return im
	}
	for _, r := range recs {
		im := get(r.Txn)
		if im.State.Terminal() {
			continue // irrevocable
		}
		switch r.Type {
		case RecBegin:
			im.WasCoordinator = true
			im.Coord = r.Coord
			im.Participants = append([]types.SiteID(nil), r.Participants...)
			im.Writeset = r.Writeset.Clone()
		case RecVotedYes:
			im.State = types.StateWait
			im.Coord = r.Coord
			im.Participants = append([]types.SiteID(nil), r.Participants...)
			im.Writeset = r.Writeset.Clone()
		case RecVotedNo:
			im.State = types.StateAborted
		case RecPC:
			im.State = types.StatePC
		case RecPA:
			im.State = types.StatePA
		case RecCommit:
			im.State = types.StateCommitted
		case RecAbort:
			im.State = types.StateAborted
		}
	}
	return images
}

// --- file format ---
//
// Each record on disk is:
//
//	u32 length (big endian, body length)
//	body: type u8 | txn uvarint | coord varint | nParticipants uvarint,
//	      participants varint* | nWrites uvarint, (itemLen uvarint, item,
//	      value varint)*
//	u32 crc32(body)
//
// A torn final record (partial write at crash) is detected via length/CRC and
// truncated on open.

// File format errors.
var (
	ErrCorrupt = errors.New("wal: corrupt record")
)

func encodeRecord(r Record) []byte {
	body := make([]byte, 0, 64)
	body = append(body, byte(r.Type))
	body = binary.AppendUvarint(body, uint64(r.Txn))
	body = binary.AppendVarint(body, int64(r.Coord))
	body = binary.AppendUvarint(body, uint64(len(r.Participants)))
	for _, p := range r.Participants {
		body = binary.AppendVarint(body, int64(p))
	}
	body = binary.AppendUvarint(body, uint64(len(r.Writeset)))
	for _, u := range r.Writeset {
		body = binary.AppendUvarint(body, uint64(len(u.Item)))
		body = append(body, u.Item...)
		body = binary.AppendVarint(body, u.Value)
	}
	frame := make([]byte, 0, len(body)+8)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	return frame
}

func decodeBody(body []byte) (Record, error) {
	var r Record
	if len(body) < 1 {
		return r, ErrCorrupt
	}
	r.Type = RecType(body[0])
	buf := body[1:]
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	sv := func() (int64, bool) {
		v, n := binary.Varint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	txn, ok := uv()
	if !ok {
		return r, ErrCorrupt
	}
	r.Txn = types.TxnID(txn)
	coord, ok := sv()
	if !ok {
		return r, ErrCorrupt
	}
	r.Coord = types.SiteID(coord)
	np, ok := uv()
	if !ok || np > uint64(len(buf))+1 {
		return r, ErrCorrupt
	}
	for i := uint64(0); i < np; i++ {
		p, ok := sv()
		if !ok {
			return r, ErrCorrupt
		}
		r.Participants = append(r.Participants, types.SiteID(p))
	}
	nw, ok := uv()
	if !ok || nw > uint64(len(buf))+1 {
		return r, ErrCorrupt
	}
	for i := uint64(0); i < nw; i++ {
		il, ok := uv()
		if !ok || il > uint64(len(buf)) {
			return r, ErrCorrupt
		}
		item := string(buf[:il])
		buf = buf[il:]
		val, ok := sv()
		if !ok {
			return r, ErrCorrupt
		}
		r.Writeset = append(r.Writeset, types.Update{Item: types.ItemID(item), Value: val})
	}
	if len(buf) != 0 {
		return r, ErrCorrupt
	}
	return r, nil
}

// FileLog is an append-only on-disk Log.
type FileLog struct {
	f    *os.File
	path string
	recs []Record
}

// openLogFile opens (creating if needed) the log file at path, scans its
// valid record prefix and truncates any torn tail, leaving the file
// positioned for appending.
func openLogFile(path string) (*os.File, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := scanRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, recs, nil
}

// OpenFileLog opens (creating if needed) the log at path, replaying existing
// records and truncating a torn tail.
func OpenFileLog(path string) (*FileLog, error) {
	f, recs, err := openLogFile(path)
	if err != nil {
		return nil, err
	}
	return &FileLog{f: f, path: path, recs: recs}, nil
}

// scanRecords reads records from the start of f, returning the valid prefix
// and the byte offset of the end of the last valid record.
func scanRecords(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var off int64
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return recs, off, nil // clean EOF or torn header: stop here
		}
		n := binary.BigEndian.Uint32(hdr)
		if n > 1<<20 {
			return recs, off, nil // implausible length: torn
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(f, body); err != nil {
			return recs, off, nil
		}
		sum := binary.BigEndian.Uint32(body[n:])
		if crc32.ChecksumIEEE(body[:n]) != sum {
			return recs, off, nil
		}
		rec, err := decodeBody(body[:n])
		if err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(4 + n + 4)
	}
}

// Append implements Log, syncing the record to disk.
func (l *FileLog) Append(r Record) error {
	frame := encodeRecord(r)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.recs = append(l.recs, r)
	return nil
}

// Records implements Log.
func (l *FileLog) Records() ([]Record, error) {
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close closes the underlying file.
func (l *FileLog) Close() error { return l.f.Close() }

// Path returns the file path.
func (l *FileLog) Path() string { return l.path }
