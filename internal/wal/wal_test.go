package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"qcommit/internal/types"
)

func sampleRecords() []Record {
	ws := types.Writeset{{Item: "x", Value: 4}, {Item: "y", Value: -9}}
	parts := []types.SiteID{1, 2, 3}
	return []Record{
		{Type: RecBegin, Txn: 1, Coord: 1, Participants: parts, Writeset: ws},
		{Type: RecVotedYes, Txn: 1, Coord: 1, Participants: parts, Writeset: ws},
		{Type: RecPC, Txn: 1},
		{Type: RecCommit, Txn: 1},
		{Type: RecVotedYes, Txn: 2, Coord: 3, Participants: parts, Writeset: ws},
		{Type: RecPA, Txn: 2},
		{Type: RecAbort, Txn: 2},
		{Type: RecVotedNo, Txn: 3},
	}
}

func TestMemLogAppendAndRecords(t *testing.T) {
	l := NewMemLog()
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords()) {
		t.Fatalf("got %d records, want %d", len(recs), len(sampleRecords()))
	}
	if l.Len() != len(recs) {
		t.Error("Len mismatch")
	}
}

func TestMemLogDeepCopies(t *testing.T) {
	l := NewMemLog()
	ws := types.Writeset{{Item: "x", Value: 1}}
	rec := Record{Type: RecVotedYes, Txn: 1, Writeset: ws, Participants: []types.SiteID{1}}
	_ = l.Append(rec)
	ws[0].Value = 99
	rec.Participants[0] = 42
	recs, _ := l.Records()
	if recs[0].Writeset[0].Value != 1 {
		t.Error("log shares writeset storage with caller")
	}
	if recs[0].Participants[0] != 1 {
		t.Error("log shares participants storage with caller")
	}
}

func TestReplayStates(t *testing.T) {
	images := Replay(sampleRecords())
	if img := images[1]; img.State != types.StateCommitted || !img.WasCoordinator {
		t.Errorf("txn1 image = %+v, want committed coordinator", img)
	}
	if img := images[2]; img.State != types.StateAborted {
		t.Errorf("txn2 state = %v, want A", img.State)
	}
	if img := images[3]; img.State != types.StateAborted {
		t.Errorf("txn3 (voted no) state = %v, want A", img.State)
	}
}

func TestReplayTerminalIsIrrevocable(t *testing.T) {
	recs := []Record{
		{Type: RecVotedYes, Txn: 1},
		{Type: RecCommit, Txn: 1},
		{Type: RecAbort, Txn: 1}, // must be ignored: termination is irrevocable
	}
	if st := Replay(recs)[1].State; st != types.StateCommitted {
		t.Errorf("state after commit-then-abort = %v, want C", st)
	}
}

func TestReplayKeepsContext(t *testing.T) {
	ws := types.Writeset{{Item: "x", Value: 7}}
	recs := []Record{
		{Type: RecVotedYes, Txn: 5, Coord: 2, Participants: []types.SiteID{2, 3}, Writeset: ws},
		{Type: RecPC, Txn: 5},
	}
	img := Replay(recs)[5]
	if img.State != types.StatePC || img.Coord != 2 || len(img.Participants) != 2 || len(img.Writeset) != 1 {
		t.Errorf("image = %+v", img)
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site1.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if !recordsEqual(recs[i], want[i]) {
			t.Errorf("record %d: got %+v want %+v", i, recs[i], want[i])
		}
	}
}

func recordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.Txn != b.Txn || a.Coord != b.Coord {
		return false
	}
	if len(a.Participants) != len(b.Participants) || len(a.Writeset) != len(b.Writeset) {
		return false
	}
	for i := range a.Participants {
		if a.Participants[i] != b.Participants[i] {
			return false
		}
	}
	for i := range a.Writeset {
		if a.Writeset[i] != b.Writeset[i] {
			return false
		}
	}
	return true
}

func TestFileLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords()[:3] {
		_ = l.Append(r)
	}
	l.Close()

	// Simulate a crash mid-append: append garbage / a partial record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 50, 1, 2, 3}) // length claims 50 bytes, only 3 present
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	recs, _ := l2.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records after torn tail, want 3", len(recs))
	}
	// The log must accept appends again after truncation.
	if err := l2.Append(Record{Type: RecCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	recs, _ = l3.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records after re-append, want 4", len(recs))
	}
}

func TestFileLogCorruptMiddleStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, _ := OpenFileLog(path)
	for _, r := range sampleRecords()[:4] {
		_ = l.Append(r)
	}
	l.Close()

	// Flip a byte inside the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[30] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ := l2.Records()
	if len(recs) >= 4 {
		t.Fatalf("corruption not detected: %d records survived", len(recs))
	}
}

// TestEncodeDecodeRecordProperty: encodeRecord/decodeBody round-trip for
// arbitrary records.
func TestEncodeDecodeRecordProperty(t *testing.T) {
	f := func(typ uint8, txn uint64, coord int32, parts []int32, items []uint8, vals []int64) bool {
		rec := Record{
			Type:  RecType(typ%7 + 1),
			Txn:   types.TxnID(txn),
			Coord: types.SiteID(coord),
		}
		for _, p := range parts {
			rec.Participants = append(rec.Participants, types.SiteID(p))
		}
		for i, it := range items {
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			rec.Writeset = append(rec.Writeset, types.Update{Item: types.ItemID(string(rune('a' + it%26))), Value: v})
		}
		frame := encodeRecord(rec)
		// Strip length header and CRC footer to feed decodeBody.
		body := frame[4 : len(frame)-4]
		got, err := decodeBody(body)
		if err != nil {
			return false
		}
		return recordsEqual(rec, got)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestReplayIdempotent: replaying a log twice yields identical images
// (recovery is deterministic), and replay of any prefix then continuing
// matches full replay for terminal transactions.
func TestReplayIdempotent(t *testing.T) {
	recs := sampleRecords()
	a := Replay(recs)
	b := Replay(recs)
	if !reflect.DeepEqual(statesOf(a), statesOf(b)) {
		t.Error("replay not deterministic")
	}
}

func statesOf(m map[types.TxnID]*TxnImage) map[types.TxnID]types.State {
	out := make(map[types.TxnID]types.State, len(m))
	for k, v := range m {
		out[k] = v.State
	}
	return out
}

func TestRecTypeString(t *testing.T) {
	if RecVotedYes.String() != "VOTED-YES" || RecCommit.String() != "COMMIT" {
		t.Error("record type strings wrong")
	}
	if RecType(200).String() != "RecType(200)" {
		t.Error("unknown record type string wrong")
	}
}
