package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"qcommit/internal/obs"
	"qcommit/internal/types"
)

// Ticket identifies one appended record in a log's total append order.
// Tickets are dense and start at 1; ticket t is durable once the log's
// durable horizon is >= t.
type Ticket uint64

// AsyncLog is a Log whose appends can be decoupled from their fsync: an
// AppendAsync buffers the record and returns immediately, and WaitDurable
// blocks until the record has been forced to stable storage. The blocking
// Append of the Log interface is exactly AppendAsync followed by
// WaitDurable.
//
// The split is what makes group commit effective on a single-goroutine
// caller such as a live site's event loop: the loop appends without
// stalling, keeps processing other transactions (whose records join the
// same pending batch), and the messages that depend on a record's
// durability are released — by whoever holds the ticket — only after
// WaitDurable returns. The force-before-send invariant is unchanged; only
// who waits for the force moves.
type AsyncLog interface {
	Log
	// AppendAsync buffers a record for the next batch and returns its
	// ticket without waiting for durability.
	AppendAsync(Record) Ticket
	// WaitDurable blocks until ticket t is durable (or the log is closed
	// or has failed, returning the error).
	WaitDurable(t Ticket) error
	// Durable returns the current durable horizon (the highest ticket
	// forced to stable storage).
	Durable() Ticket
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// GroupLog is an on-disk Log with group commit: records appended while a
// batch is being forced accumulate into the next batch, and the whole batch
// is written and fsynced in one shot. Under concurrent load this collapses
// N fsyncs into one without weakening durability — Append still returns
// only after the record is stable, and Records only ever surfaces durable
// records, so recovery can never observe a record whose Append (or whose
// ticket's WaitDurable) had not returned.
type GroupLog struct {
	path string

	mu      sync.Mutex
	f       *os.File
	pending []byte   // encoded frames awaiting the next batch write
	batch   []Record // decoded records matching pending, in ticket order
	next    Ticket   // ticket of the most recently appended record
	durable Ticket   // ticket of the most recently forced record
	recs    []Record // durable records, in ticket order
	fsyncs  uint64
	err     error // first write/sync failure; sticky
	closed  bool

	// batchSizes is always on: one sample per fsync, value = records in the
	// batch. The distribution is the group-commit story in one histogram —
	// a mass at 1 means no amortization, a fat tail means the syncer is
	// keeping up with bursts.
	batchSizes *obs.Histogram
	// flushWait and syncDur are optional (nil until RegisterMetrics):
	// per-record AppendAsync→durable latency and per-batch Write+Sync
	// duration. stamps holds the append times backing flushWait; it is only
	// appended to while flushWait is installed, so records appended before
	// RegisterMetrics simply contribute no sample.
	flushWait *obs.Histogram
	syncDur   *obs.Histogram
	stamps    []int64

	work     *sync.Cond // signals the syncer: pending work or close
	forced   *sync.Cond // broadcasts durability advances to waiters
	syncDone chan struct{}
}

var _ AsyncLog = (*GroupLog)(nil)

// OpenGroupLog opens (creating if needed) the group-commit log at path,
// replaying existing records and truncating a torn tail exactly as
// OpenFileLog does — the two formats are identical, only the fsync
// scheduling differs, so a log written by one opens under the other.
func OpenGroupLog(path string) (*GroupLog, error) {
	f, recs, err := openLogFile(path)
	if err != nil {
		return nil, err
	}
	l := &GroupLog{
		path:       path,
		f:          f,
		recs:       recs,
		next:       Ticket(len(recs)),
		durable:    Ticket(len(recs)),
		batchSizes: obs.NewHistogram(obs.SizeBounds()),
		syncDone:   make(chan struct{}),
	}
	l.work = sync.NewCond(&l.mu)
	l.forced = sync.NewCond(&l.mu)
	go l.syncLoop()
	return l, nil
}

// AppendAsync implements AsyncLog.
func (l *GroupLog) AppendAsync(r Record) Ticket {
	frame := encodeRecord(r)
	// Deep-copy slices so later caller mutations cannot corrupt the
	// in-memory image (the frame already snapshots the on-disk bytes).
	r.Participants = append([]types.SiteID(nil), r.Participants...)
	r.Writeset = r.Writeset.Clone()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.next + 1 // never durable: WaitDurable on it reports ErrClosed
	}
	l.pending = append(l.pending, frame...)
	l.batch = append(l.batch, r)
	if l.flushWait != nil {
		l.stamps = append(l.stamps, time.Now().UnixNano())
	}
	l.next++
	t := l.next
	l.work.Signal()
	return t
}

// WaitDurable implements AsyncLog.
func (l *GroupLog) WaitDurable(t Ticket) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < t && l.err == nil && !l.closed {
		l.forced.Wait()
	}
	if l.durable >= t {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrClosed
}

// Durable implements AsyncLog.
func (l *GroupLog) Durable() Ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Append implements Log: durably adds the record, batching the force with
// whatever else is in flight.
func (l *GroupLog) Append(r Record) error {
	return l.WaitDurable(l.AppendAsync(r))
}

// Records implements Log, returning only durable records — a record still
// waiting on its batch's fsync is invisible, so readers (and recovery)
// never act on state that a crash could retract.
func (l *GroupLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, l.err
}

// Fsyncs returns the number of fsync calls issued — the group-commit win is
// fsyncs < appends.
func (l *GroupLog) Fsyncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncs
}

// BatchSizes returns the distribution of records-per-fsync observed so far.
// It is always collected (one histogram sample per fsync), so callers like
// loadbench can report the group-commit amortization shape without turning
// on the rest of the observability stack.
func (l *GroupLog) BatchSizes() obs.HistSnapshot {
	return l.batchSizes.Snapshot()
}

// RegisterMetrics publishes the log's histograms and fsync counter on reg
// under canonical qcommit_wal_* names labelled by site, and turns on the
// optional per-record flush-wait and per-batch sync-duration collection.
// A nil registry is a no-op.
func (l *GroupLog) RegisterMetrics(reg *obs.Registry, site types.SiteID) {
	if reg == nil {
		return
	}
	reg.RegisterHistogram(fmt.Sprintf(`qcommit_wal_batch_records{site="%d"}`, site), l.batchSizes)
	reg.RegisterCounterFunc(fmt.Sprintf(`qcommit_wal_fsyncs_total{site="%d"}`, site), l.Fsyncs)
	fw := reg.Histogram(fmt.Sprintf(`qcommit_wal_flush_wait_ns{site="%d"}`, site), obs.LatencyBounds())
	sd := reg.Histogram(fmt.Sprintf(`qcommit_wal_sync_ns{site="%d"}`, site), obs.LatencyBounds())
	l.mu.Lock()
	l.flushWait = fw
	l.syncDur = sd
	l.mu.Unlock()
}

// Path returns the file path.
func (l *GroupLog) Path() string { return l.path }

// syncLoop is the single syncer goroutine: it claims everything pending,
// writes it in one Write call, forces it with one fsync, then publishes the
// new durable horizon. Appends landing during the force simply form the
// next batch — the classic group-commit cadence, self-clocked by fsync
// latency.
func (l *GroupLog) syncLoop() {
	defer close(l.syncDone)
	l.mu.Lock()
	for {
		for len(l.pending) == 0 && !l.closed {
			l.work.Wait()
		}
		if len(l.pending) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		buf, recs, stamps := l.pending, l.batch, l.stamps
		l.pending, l.batch, l.stamps = nil, nil, nil
		target := l.next
		syncDur := l.syncDur
		l.mu.Unlock()

		var s0 int64
		if syncDur != nil {
			s0 = time.Now().UnixNano()
		}
		_, werr := l.f.Write(buf)
		if werr == nil {
			werr = l.f.Sync()
		}
		if syncDur != nil {
			syncDur.ObserveNS(time.Now().UnixNano() - s0)
		}
		l.batchSizes.Observe(float64(len(recs)))

		l.mu.Lock()
		l.fsyncs++
		if werr != nil {
			if l.err == nil {
				l.err = werr
			}
		} else {
			l.durable = target
			l.recs = append(l.recs, recs...)
			if fw := l.flushWait; fw != nil && len(stamps) > 0 {
				now := time.Now().UnixNano()
				for _, t0 := range stamps {
					fw.ObserveNS(now - t0)
				}
			}
		}
		l.forced.Broadcast()
		if l.err != nil {
			l.mu.Unlock()
			return
		}
	}
}

// Close flushes any pending batch, stops the syncer and closes the file.
// Waiters blocked in WaitDurable for records the final flush could not
// cover are released with an error.
func (l *GroupLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.syncDone
		return nil
	}
	l.closed = true
	l.work.Signal()
	l.mu.Unlock()
	<-l.syncDone
	l.mu.Lock()
	l.forced.Broadcast()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
