package wal

import (
	"fmt"
	"path/filepath"
	"testing"

	"qcommit/internal/types"
)

func benchRecord() Record {
	return Record{
		Type:         RecVotedYes,
		Txn:          42,
		Coord:        1,
		Participants: []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8},
		Writeset:     types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}},
	}
}

func BenchmarkMemLogAppend(b *testing.B) {
	l := NewMemLog()
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileLogAppendSync(b *testing.B) {
	l, err := OpenFileLog(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileLogAppendGroup measures the group-commit path under N
// concurrent appenders — the configuration the sync benchmark above cannot
// express. The headline metric is fsyncs/op: the sync FileLog pays exactly
// 1, group commit amortizes one fsync across every append that lands while
// the previous batch is being forced.
func BenchmarkFileLogAppendGroup(b *testing.B) {
	for _, appenders := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("appenders=%d", appenders), func(b *testing.B) {
			l, err := OpenGroupLog(filepath.Join(b.TempDir(), "bench.wal"))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := benchRecord()
			b.ReportAllocs()
			b.SetParallelism(appenders)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(rec); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(l.Fsyncs())/float64(b.N), "fsyncs/op")
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	recs := make([]Record, 0, 1000)
	for t := types.TxnID(1); t <= 250; t++ {
		recs = append(recs,
			Record{Type: RecVotedYes, Txn: t, Writeset: types.Writeset{{Item: "x", Value: 1}}},
			Record{Type: RecPC, Txn: t},
			Record{Type: RecCommit, Txn: t},
		)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		images := Replay(recs)
		if len(images) != 250 {
			b.Fatal("bad replay")
		}
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = encodeRecord(rec)
	}
}
