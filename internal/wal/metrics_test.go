package wal

import (
	"path/filepath"
	"sync"
	"testing"

	"qcommit/internal/obs"
	"qcommit/internal/types"
)

// TestGroupLogBatchSizes pins the built-in batch-size histogram: one sample
// per fsync, and the samples sum to every record appended.
func TestGroupLogBatchSizes(t *testing.T) {
	l, err := OpenGroupLog(filepath.Join(t.TempDir(), "g.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tk := l.AppendAsync(Record{Type: RecVotedYes, Txn: types.TxnID(w*each + i + 1)})
				if err := l.WaitDurable(tk); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	h := l.BatchSizes()
	if h.Count != l.Fsyncs() {
		t.Errorf("batch samples = %d, fsyncs = %d; want one sample per fsync", h.Count, l.Fsyncs())
	}
	if got := uint64(h.Sum); got != writers*each {
		t.Errorf("batched records = %d, want %d", got, writers*each)
	}
}

// TestGroupLogRegisterMetrics pins mid-stream enablement: flush-wait and sync
// histograms only exist after RegisterMetrics, then record every append.
func TestGroupLogRegisterMetrics(t *testing.T) {
	l, err := OpenGroupLog(filepath.Join(t.TempDir(), "g.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append(Record{Type: RecVotedYes, Txn: 1}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	l.RegisterMetrics(reg, 7)
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Type: RecCommit, Txn: types.TxnID(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}

	snaps := reg.Snapshot()
	if h := obs.MergeHistograms(snaps, "qcommit_wal_flush_wait_ns"); h.Count != n {
		t.Errorf("flush-wait samples = %d, want %d (pre-registration append must not count)", h.Count, n)
	}
	if h := obs.MergeHistograms(snaps, "qcommit_wal_sync_ns"); h.Count == 0 {
		t.Error("no sync-duration samples after RegisterMetrics")
	}
	if got := obs.SumCounters(snaps, "qcommit_wal_fsyncs_total"); got != l.Fsyncs() {
		t.Errorf("exported fsyncs = %d, want %d", got, l.Fsyncs())
	}
	if h := obs.MergeHistograms(snaps, "qcommit_wal_batch_records"); h.Count != l.Fsyncs() {
		t.Errorf("exported batch samples = %d, want %d", h.Count, l.Fsyncs())
	}
}
