package workload

import (
	"math"
	"reflect"
	"testing"

	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func asgn() *voting.Assignment {
	return voting.MustAssignment(
		voting.Uniform("a", 2, 3, 1, 2, 3, 4),
		voting.Uniform("b", 2, 3, 3, 4, 5, 6),
		voting.Uniform("c", 2, 3, 5, 6, 7, 8),
	)
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 5}, 1); err == nil {
		t.Error("WritesPerTxn > items accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, HotFraction: 1.5}, 1); err == nil {
		t.Error("HotFraction out of range accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, HotFraction: -0.1}, 1); err == nil {
		t.Error("negative HotFraction accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, HotFraction: math.NaN()}, 1); err == nil {
		t.Error("NaN HotFraction accepted (NaN compares false and would silently skew the draw)")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, HotFraction: 0.999}, 1); err != nil {
		t.Errorf("in-range HotFraction rejected: %v", err)
	}
	empty, _ := voting.NewAssignment()
	if _, err := NewGenerator(empty, DefaultMix(), 1); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestGeneratorShape(t *testing.T) {
	g, err := NewGenerator(asgn(), Mix{WritesPerTxn: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		txn := g.Next()
		if len(txn.Writeset) != 2 {
			t.Fatalf("writeset size %d", len(txn.Writeset))
		}
		items := txn.Writeset.Items()
		if len(items) != 2 {
			t.Fatalf("duplicate items in writeset: %v", txn.Writeset)
		}
		// Coordinator must be a participant.
		parts := asgn().Participants(items)
		found := false
		for _, p := range parts {
			if p == txn.Coord {
				found = true
			}
		}
		if !found {
			t.Fatalf("coordinator %v not a participant of %v", txn.Coord, items)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, _ := NewGenerator(asgn(), DefaultMix(), 42)
	g2, _ := NewGenerator(asgn(), DefaultMix(), 42)
	if !reflect.DeepEqual(g1.Batch(50), g2.Batch(50)) {
		t.Error("same seed produced different streams")
	}
	g3, _ := NewGenerator(asgn(), DefaultMix(), 43)
	if reflect.DeepEqual(g1.Batch(50), g3.Batch(50)) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorHotSpot(t *testing.T) {
	g, _ := NewGenerator(asgn(), Mix{WritesPerTxn: 1, HotFraction: 0.9}, 5)
	hot := 0
	const n = 1000
	for i := 0; i < n; i++ {
		txn := g.Next()
		if txn.Writeset[0].Item == "a" {
			hot++
		}
	}
	// Expect roughly 90% + (10% uniform)/3 ≈ 93%; accept a broad band.
	if hot < n*8/10 {
		t.Errorf("hot item drawn %d/%d times, expected ≈93%%", hot, n)
	}
}

func TestGeneratorUniformCoversItems(t *testing.T) {
	g, _ := NewGenerator(asgn(), Mix{WritesPerTxn: 1}, 9)
	seen := map[types.ItemID]bool{}
	for i := 0; i < 300; i++ {
		seen[g.Next().Writeset[0].Item] = true
	}
	if len(seen) != 3 {
		t.Errorf("uniform mix covered %d/3 items", len(seen))
	}
}

func TestGeneratorZipfValidation(t *testing.T) {
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 1.0}, 1); err == nil {
		t.Error("ZipfS = 1 accepted (rand.Zipf requires s > 1)")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 0.5}, 1); err == nil {
		t.Error("ZipfS in (0,1] accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: math.NaN()}, 1); err == nil {
		t.Error("NaN ZipfS accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 1.2, HotFraction: 0.5}, 1); err == nil {
		t.Error("ZipfS combined with HotFraction accepted")
	}
	if _, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 1.2}, 1); err != nil {
		t.Errorf("valid ZipfS rejected: %v", err)
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g, err := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 2.0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[types.ItemID]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[g.Next().Writeset[0].Item]++
	}
	// Rank 0 must dominate and the popularity must decay with rank.
	if counts["a"] <= counts["b"] || counts["b"] <= counts["c"] {
		t.Errorf("zipf counts not rank-ordered: a=%d b=%d c=%d", counts["a"], counts["b"], counts["c"])
	}
	if counts["a"] < n/2 {
		t.Errorf("rank-0 item drawn %d/%d times, expected a clear majority at s=2", counts["a"], n)
	}
	// Determinism: the zipf stream replays under the same seed.
	g2, _ := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 2.0}, 5)
	g3, _ := NewGenerator(asgn(), Mix{WritesPerTxn: 1, ZipfS: 2.0}, 5)
	if !reflect.DeepEqual(g2.Batch(50), g3.Batch(50)) {
		t.Error("same seed produced different zipf streams")
	}
}
