// Package workload generates synthetic transaction streams over a
// replicated-item assignment, for throughput and availability experiments.
// The generator is deterministic in its seed, so protocol comparisons replay
// identical workloads.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// Mix parameterizes the transaction stream.
type Mix struct {
	// WritesPerTxn is how many distinct items each transaction updates.
	WritesPerTxn int
	// HotFraction in [0,1) sends that share of writes to the first item
	// ("hot spot"); the remainder spread uniformly. Zero means uniform.
	HotFraction float64
	// ZipfS > 1 draws items from a zipfian distribution over their rank in
	// the assignment's item order (rank 0 hottest), the standard model for
	// skewed key popularity; smaller s is closer to uniform. Zero disables
	// the zipfian draw. Mutually exclusive with HotFraction.
	ZipfS float64
	// ValueRange bounds generated values ([0, ValueRange)). Default 1000.
	ValueRange int64
}

// DefaultMix is two writes per transaction, uniform access.
func DefaultMix() Mix { return Mix{WritesPerTxn: 2, ValueRange: 1000} }

func (m Mix) withDefaults() Mix {
	if m.WritesPerTxn <= 0 {
		m.WritesPerTxn = 1
	}
	if m.ValueRange <= 0 {
		m.ValueRange = 1000
	}
	return m
}

// Txn is one generated transaction: a coordinator and a writeset.
type Txn struct {
	Coord    types.SiteID
	Writeset types.Writeset
}

// Generator produces transactions over an assignment.
type Generator struct {
	asgn  *voting.Assignment
	items []types.ItemID
	mix   Mix
	rng   *rand.Rand
	zipf  *rand.Zipf
}

// NewGenerator validates the mix against the assignment.
func NewGenerator(asgn *voting.Assignment, mix Mix, seed int64) (*Generator, error) {
	mix = mix.withDefaults()
	items := asgn.Items()
	if len(items) == 0 {
		return nil, fmt.Errorf("workload: assignment has no items")
	}
	if mix.WritesPerTxn > len(items) {
		return nil, fmt.Errorf("workload: WritesPerTxn %d exceeds item count %d", mix.WritesPerTxn, len(items))
	}
	// The open-interval check must also reject NaN, which compares false
	// against everything and would otherwise slip through and silently turn
	// the hot-spot draw uniform.
	if math.IsNaN(mix.HotFraction) || mix.HotFraction < 0 || mix.HotFraction >= 1 {
		return nil, fmt.Errorf("workload: HotFraction %v out of [0,1)", mix.HotFraction)
	}
	// rand.Zipf requires s > 1; anything else in a non-zero ZipfS is a
	// configuration error, as is combining the two skew models.
	if mix.ZipfS != 0 && (math.IsNaN(mix.ZipfS) || mix.ZipfS <= 1) {
		return nil, fmt.Errorf("workload: ZipfS %v must be > 1 (or 0 to disable)", mix.ZipfS)
	}
	if mix.ZipfS != 0 && mix.HotFraction != 0 {
		return nil, fmt.Errorf("workload: ZipfS and HotFraction are mutually exclusive")
	}
	g := &Generator{asgn: asgn, items: items, mix: mix, rng: rand.New(rand.NewSource(seed))}
	if mix.ZipfS != 0 {
		g.zipf = rand.NewZipf(g.rng, mix.ZipfS, 1, uint64(len(items)-1))
	}
	return g, nil
}

// Next draws one transaction. The coordinator is a random participant of the
// writeset (the paper's convention: the transaction is issued at a site that
// stores data it touches).
func (g *Generator) Next() Txn {
	chosen := make(map[types.ItemID]bool, g.mix.WritesPerTxn)
	var ws types.Writeset
	for len(chosen) < g.mix.WritesPerTxn {
		var item types.ItemID
		switch {
		case g.zipf != nil:
			item = g.items[g.zipf.Uint64()]
		case g.mix.HotFraction > 0 && g.rng.Float64() < g.mix.HotFraction:
			item = g.items[0]
		default:
			item = g.items[g.rng.Intn(len(g.items))]
		}
		if chosen[item] {
			continue
		}
		chosen[item] = true
		ws = append(ws, types.Update{Item: item, Value: g.rng.Int63n(g.mix.ValueRange)})
	}
	participants := g.asgn.Participants(ws.Items())
	return Txn{
		Coord:    participants[g.rng.Intn(len(participants))],
		Writeset: ws,
	}
}

// Batch draws n transactions.
func (g *Generator) Batch(n int) []Txn {
	out := make([]Txn, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
