// Package core implements the paper's contribution: the quorum-based commit
// protocols (CP1, CP2; Fig. 9) and termination protocols (TP1, Fig. 5; TP2,
// Fig. 8) of Huang & Li, ICDE 1988.
//
// Unlike Skeen's quorum-based protocol, which counts quorums in opaque
// per-site votes, these protocols count the *replica* votes of the weighted
// voting partition-processing strategy: the commit side of TP1 needs w(x)
// votes for every item x in the transaction's writeset W(TR), and the abort
// side needs r(x) votes for some x. TP2 swaps the roles (r(x)-for-some on
// the commit side, w(x)-for-every on the abort side). Either way, a
// partition that will be able to serve an item after termination is much
// more likely to be able to terminate — the paper's availability gain.
//
// The matching commit protocols let the coordinator send COMMIT before all
// PC-ACKs arrive: CP1 once the ACKs carry w(x) votes for every x (an abort
// quorum is then impossible forever), CP2 once they carry r(x) votes for
// some x. CP2 therefore commits faster than CP1, which commits faster than
// plain 3PC.
package core

import (
	"fmt"

	"qcommit/internal/protocol"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// Variant selects between the paper's two protocol pairs.
type Variant int

// Variants.
const (
	// Protocol1 is CP1 + TP1 (Figs. 5 and 9).
	Protocol1 Variant = 1
	// Protocol2 is CP2 + TP2 (Fig. 8).
	Protocol2 Variant = 2
)

// Spec is the paper's quorum-based commit and termination protocol.
type Spec struct {
	// Variant selects protocol 1 or protocol 2. Defaults to Protocol1.
	Variant Variant
	// BuggyBufferCrossing reintroduces the rule violation of Example 3
	// (participants answering PREPARE-TO-COMMIT in PA and PREPARE-TO-ABORT
	// in PC). Only for the counterexample reproduction; never enable
	// otherwise.
	BuggyBufferCrossing bool
	// PatienceRounds caps participant-initiated termination attempts.
	PatienceRounds int
}

var _ protocol.Spec = Spec{}

func (s Spec) variant() Variant {
	if s.Variant == Protocol2 {
		return Protocol2
	}
	return Protocol1
}

// Name implements protocol.Spec.
func (s Spec) Name() string {
	if s.variant() == Protocol2 {
		return "QC2"
	}
	return "QC1"
}

// NewCoordinator implements protocol.Spec with the early-commit rules of
// Fig. 9.
func (s Spec) NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) protocol.Automaton {
	var rule threephase.AckRule
	if s.variant() == Protocol2 {
		rule = threephase.ReadQuorumSome{Items: ws.Items()}
	} else {
		rule = threephase.WriteQuorumEvery{Items: ws.Items()}
	}
	return threephase.NewCoordinator(txn, ws, participants, rule, threephase.AckTimeoutTerminate)
}

// NewParticipant implements protocol.Spec.
func (s Spec) NewParticipant(txn types.TxnID, init *wal.TxnImage) protocol.Automaton {
	return threephase.NewParticipant(txn, init, threephase.ParticipantOpts{
		BuggyBufferCrossing: s.BuggyBufferCrossing,
		PatienceRounds:      s.PatienceRounds,
	})
}

// NewTerminator implements protocol.Spec.
func (s Spec) NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) protocol.Automaton {
	var rules threephase.Rules
	if s.variant() == Protocol2 {
		rules = TP2Rules{Items: ws.Items()}
	} else {
		rules = TP1Rules{Items: ws.Items()}
	}
	return threephase.NewTerminator(txn, ws, participants, epoch, rules)
}

// TP1Rules is the quorum logic of Termination Protocol 1 (Fig. 5):
//
//   - immediate COMMIT if ≥1 participant committed, or participants in PC
//     hold ≥ w(x) votes for every x ∈ W(TR);
//   - immediate ABORT if ≥1 participant aborted or is in the initial state,
//     or participants in PA hold ≥ r(x) votes for some x;
//   - commit quorum possible if ∃ PC participant and participants not in PA
//     hold ≥ w(x) votes for every x;
//   - abort quorum possible if participants not in PC hold ≥ r(x) votes for
//     some x;
//   - otherwise block.
type TP1Rules struct {
	Items []types.ItemID
}

var _ threephase.Rules = TP1Rules{}

// Name implements threephase.Rules.
func (TP1Rules) Name() string { return "TP1" }

// Decide implements threephase.Rules.
func (r TP1Rules) Decide(env protocol.Env, t threephase.StateTally) threephase.Verdict {
	a := env.Assignment()
	switch {
	case t.Any(types.StateCommitted) || a.WriteQuorumForEvery(r.Items, t.In(types.StatePC)):
		return threephase.VerdictCommit
	case t.Any(types.StateAborted) || t.Any(types.StateInitial) ||
		a.ReadQuorumForSome(r.Items, t.In(types.StatePA)):
		return threephase.VerdictAbort
	case t.Any(types.StatePC) && a.WriteQuorumForEvery(r.Items, t.NotIn(types.StatePA)):
		return threephase.VerdictTryCommit
	case a.ReadQuorumForSome(r.Items, t.NotIn(types.StatePC)):
		return threephase.VerdictTryAbort
	default:
		return threephase.VerdictBlock
	}
}

// CommitConfirmed implements threephase.Rules: phase-1 PC reporters plus
// phase-2 PC-ackers must constitute ≥ w(x) votes for every x ∈ W(TR).
func (r TP1Rules) CommitConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return env.Assignment().WriteQuorumForEvery(r.Items, sites)
}

// AbortConfirmed implements threephase.Rules: phase-1 PA reporters plus
// phase-2 PA-ackers must constitute ≥ r(x) votes for some x ∈ W(TR).
func (r TP1Rules) AbortConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return env.Assignment().ReadQuorumForSome(r.Items, sites)
}

// TP2Rules is the quorum logic of Termination Protocol 2 (Fig. 8), which is
// TP1 with the r/w roles swapped: the commit side needs r(x) votes for some
// x, the abort side needs w(x) votes for every x.
type TP2Rules struct {
	Items []types.ItemID
}

var _ threephase.Rules = TP2Rules{}

// Name implements threephase.Rules.
func (TP2Rules) Name() string { return "TP2" }

// Decide implements threephase.Rules.
func (r TP2Rules) Decide(env protocol.Env, t threephase.StateTally) threephase.Verdict {
	a := env.Assignment()
	switch {
	case t.Any(types.StateCommitted) || a.ReadQuorumForSome(r.Items, t.In(types.StatePC)):
		return threephase.VerdictCommit
	case t.Any(types.StateAborted) || t.Any(types.StateInitial) ||
		a.WriteQuorumForEvery(r.Items, t.In(types.StatePA)):
		return threephase.VerdictAbort
	case t.Any(types.StatePC) && a.ReadQuorumForSome(r.Items, t.NotIn(types.StatePA)):
		return threephase.VerdictTryCommit
	case a.WriteQuorumForEvery(r.Items, t.NotIn(types.StatePC)):
		return threephase.VerdictTryAbort
	default:
		return threephase.VerdictBlock
	}
}

// CommitConfirmed implements threephase.Rules.
func (r TP2Rules) CommitConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return env.Assignment().ReadQuorumForSome(r.Items, sites)
}

// AbortConfirmed implements threephase.Rules.
func (r TP2Rules) AbortConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return env.Assignment().WriteQuorumForEvery(r.Items, sites)
}

// String implements fmt.Stringer.
func (v Variant) String() string { return fmt.Sprintf("protocol %d", int(v)) }
