package core

import (
	"strings"
	"testing"

	"qcommit/internal/types"
)

func TestClassify(t *testing.T) {
	q, w, pc, c, a := types.StateInitial, types.StateWait, types.StatePC, types.StateCommitted, types.StateAborted
	cases := []struct {
		states []types.State
		want   PartitionState
	}{
		{nil, PSNone},
		{[]types.State{q}, PS1},
		{[]types.State{q, w}, PS1},
		{[]types.State{w}, PS2},
		{[]types.State{w, w, w}, PS2},
		{[]types.State{a}, PS3},
		{[]types.State{q, a}, PS3}, // A dominates (PS1 requires no A)
		{[]types.State{w, a}, PS3},
		{[]types.State{pc, w}, PS4},
		{[]types.State{pc}, PS5},
		{[]types.State{pc, pc}, PS5},
		{[]types.State{c}, PS6},
		{[]types.State{pc, c}, PS6},
		{[]types.State{w, c}, PS6},
	}
	for _, tc := range cases {
		if got := Classify(tc.states); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.states, got, tc.want)
		}
	}
}

// TestConcurrencySets verifies the load-bearing facts of the paper's Fig. 4
// argument.
func TestConcurrencySets(t *testing.T) {
	cs := ConcurrencySets()

	has := func(a, b PartitionState) bool { return containsPS(cs[a], b) }

	// "PS3 is in both C(PS1) and C(PS2)" — so PS1 and PS2 can only block or
	// abort.
	if !has(PS1, PS3) || !has(PS2, PS3) {
		t.Error("PS3 must be concurrent with PS1 and PS2")
	}
	// "PS6 is in C(PS5)" — so PS5 can only block or commit.
	if !has(PS5, PS6) {
		t.Error("PS6 must be concurrent with PS5")
	}
	// "PS2 is in C(PS5) and vice versa" — the impossibility argument's core.
	if !has(PS2, PS5) || !has(PS5, PS2) {
		t.Error("PS2 and PS5 must be mutually concurrent")
	}
	// An all-W partition can never be concurrent with a committed one in
	// 3PC (COMMIT is sent only after every participant reached PC).
	if has(PS2, PS6) {
		t.Error("PS6 must not be concurrent with PS2 under 3PC")
	}
	// A PC-containing partition can never be concurrent with an abort:
	// PREPARE-TO-COMMIT is only sent after unanimous yes votes.
	if has(PS5, PS3) || has(PS4, PS3) {
		t.Error("PS3 must not be concurrent with PS4/PS5")
	}
	// A committed partition cannot coexist with an initial-state one.
	if has(PS6, PS1) {
		t.Error("PS6 must not be concurrent with PS1")
	}
}

// TestAllowedActions mechanizes the rule-1/rule-2 derivation quoted in
// section 2 of the paper.
func TestAllowedActions(t *testing.T) {
	actions := AllowedActions()
	want := map[PartitionState]Action{
		PS1: ActionBlockOrAbort,
		PS2: ActionBlockOrAbort,
		PS3: ActionAbort,
		PS4: ActionConsistent,
		PS5: ActionBlockOrCommit,
		PS6: ActionCommit,
	}
	for ps, a := range want {
		if actions[ps] != a {
			t.Errorf("action(%v) = %v, want %v", ps, actions[ps], a)
		}
	}
}

// TestImpossibilityWitness reproduces the section-3 negative result: PS2 and
// PS5 may be concurrent, PS2 may only block-or-abort, PS5 may only
// block-or-commit — so two partitions, each holding a replica quorum for a
// different written item, cannot both terminate. No termination protocol
// escapes this.
func TestImpossibilityWitness(t *testing.T) {
	cs := ConcurrencySets()
	actions := AllowedActions()
	if !containsPS(cs[PS2], PS5) {
		t.Fatal("witness needs PS2 concurrent with PS5")
	}
	if actions[PS2] == ActionBlockOrCommit || actions[PS2] == ActionCommit {
		t.Error("PS2 must never be allowed to commit")
	}
	if actions[PS5] == ActionBlockOrAbort || actions[PS5] == ActionAbort {
		t.Error("PS5 must never be allowed to abort")
	}
}

func TestFig4TableRenders(t *testing.T) {
	out := Fig4Table()
	for _, want := range []string{"PS1", "PS6", "block-or-abort", "block-or-commit", "concurrency set"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4Table missing %q:\n%s", want, out)
		}
	}
}

func TestFig6NoBufferCrossing(t *testing.T) {
	if LegalTransition(types.StatePC, types.StatePA) {
		t.Error("PC→PA must be illegal")
	}
	if LegalTransition(types.StatePA, types.StatePC) {
		t.Error("PA→PC must be illegal")
	}
}

func TestFig6Reachability(t *testing.T) {
	// Every state is reachable from q and every non-terminal state reaches a
	// terminal one.
	adj := make(map[types.State][]types.State)
	for _, tr := range Fig6Transitions() {
		adj[tr.From] = append(adj[tr.From], tr.To)
	}
	reach := map[types.State]bool{types.StateInitial: true}
	stack := []types.State{types.StateInitial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[s] {
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	for _, s := range []types.State{types.StateWait, types.StatePC, types.StatePA, types.StateCommitted, types.StateAborted} {
		if !reach[s] {
			t.Errorf("%s unreachable from q", s)
		}
	}
	// Terminal states are absorbing: no outgoing edges.
	if len(adj[types.StateCommitted]) != 0 || len(adj[types.StateAborted]) != 0 {
		t.Error("terminal states must have no outgoing transitions")
	}
}

func TestFig6TableRenders(t *testing.T) {
	out := Fig6Table()
	if !strings.Contains(out, "no transition exists between PC and PA") {
		t.Error("Fig6Table missing the PC/PA note")
	}
}

func TestSpecNames(t *testing.T) {
	if (Spec{}).Name() != "QC1" {
		t.Errorf("default spec name = %q", (Spec{}).Name())
	}
	if (Spec{Variant: Protocol2}).Name() != "QC2" {
		t.Errorf("protocol 2 name = %q", (Spec{Variant: Protocol2}).Name())
	}
	if Protocol1.String() != "protocol 1" {
		t.Errorf("variant string = %q", Protocol1.String())
	}
}
