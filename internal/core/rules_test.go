package core

import (
	"testing"

	"qcommit/internal/protocoltest"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// ex1 builds the paper's Example 1/4 assignment: x at sites 1-4, y at 5-8,
// one vote per copy, r=2, w=3.
func ex1() *voting.Assignment {
	return voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	)
}

func tally(states map[types.SiteID]types.State) threephase.StateTally {
	return threephase.NewStateTally(states)
}

var items = []types.ItemID{"x", "y"}

func TestTP1DecideTable(t *testing.T) {
	env := protocoltest.New(1, ex1())
	r := TP1Rules{Items: items}
	q, w, pc, pa, c, a := types.StateInitial, types.StateWait, types.StatePC, types.StatePA, types.StateCommitted, types.StateAborted

	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   threephase.Verdict
	}{
		// Immediate commit: a committed participant exists.
		{"any C", map[types.SiteID]types.State{2: w, 5: c}, threephase.VerdictCommit},
		// Immediate commit: PC sites alone hold w(x) votes for EVERY item:
		// x needs 3 of sites1-4, y needs 3 of sites5-8.
		{"PC full write quorum", map[types.SiteID]types.State{
			1: pc, 2: pc, 3: pc, 5: pc, 6: pc, 7: pc}, threephase.VerdictCommit},
		// Immediate abort: aborted participant.
		{"any A", map[types.SiteID]types.State{2: w, 3: a}, threephase.VerdictAbort},
		// Immediate abort: initial-state participant.
		{"any q", map[types.SiteID]types.State{2: w, 3: q}, threephase.VerdictAbort},
		// Immediate abort: PA sites hold r(x) votes for SOME item.
		{"PA read quorum", map[types.SiteID]types.State{2: pa, 3: pa, 4: w}, threephase.VerdictAbort},
		// Commit quorum possible: one PC + non-PA sites cover w for every item.
		{"try-commit", map[types.SiteID]types.State{
			1: w, 2: w, 3: w, 5: pc, 6: w, 7: w}, threephase.VerdictTryCommit},
		// G1 of Example 4: sites 2,3 in W → abort quorum possible via x.
		{"Example4 G1 try-abort", map[types.SiteID]types.State{2: w, 3: w}, threephase.VerdictTryAbort},
		// G3 of Example 4: sites 6,7,8 in W → abort quorum via y.
		{"Example4 G3 try-abort", map[types.SiteID]types.State{6: w, 7: w, 8: w}, threephase.VerdictTryAbort},
		// G2 of Example 4: site5 PC + site4 W → nothing possible → block.
		{"Example4 G2 block", map[types.SiteID]types.State{4: w, 5: pc}, threephase.VerdictBlock},
		// A single W site with 1 vote of x (r=2): block.
		{"lone W blocks", map[types.SiteID]types.State{2: w}, threephase.VerdictBlock},
		// PC sites present but commit side impossible AND the PC site makes
		// the abort side unusable for x... site2 PC, sites3,4 W: non-PC
		// {3,4} has 2 votes of x ≥ r(x)=2 → try-abort.
		{"PC excluded from abort count", map[types.SiteID]types.State{
			2: pc, 3: w, 4: w}, threephase.VerdictTryAbort},
	}
	for _, tc := range cases {
		if got := r.Decide(env, tally(tc.states)); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTP1Confirmations(t *testing.T) {
	env := protocoltest.New(1, ex1())
	r := TP1Rules{Items: items}
	// Commit confirmation needs w(x) votes for every item.
	if r.CommitConfirmed(env, []types.SiteID{1, 2, 3}) {
		t.Error("x-only sites cannot confirm commit (no y votes)")
	}
	if !r.CommitConfirmed(env, []types.SiteID{1, 2, 3, 5, 6, 7}) {
		t.Error("3 x votes + 3 y votes should confirm commit")
	}
	// Abort confirmation needs r(x) votes for some item.
	if !r.AbortConfirmed(env, []types.SiteID{2, 3}) {
		t.Error("2 x votes should confirm abort")
	}
	if r.AbortConfirmed(env, []types.SiteID{4, 5}) {
		t.Error("1 x vote + 1 y vote confirm nothing (r=2 each)")
	}
}

func TestTP2DecideTable(t *testing.T) {
	env := protocoltest.New(1, ex1())
	r := TP2Rules{Items: items}
	w, pc, pa := types.StateWait, types.StatePC, types.StatePA

	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   threephase.Verdict
	}{
		// Immediate commit: PC sites hold r(x) votes for SOME item (r=2).
		{"PC read quorum commits", map[types.SiteID]types.State{1: pc, 2: pc, 3: w}, threephase.VerdictCommit},
		// Immediate abort: PA sites hold w(x) for EVERY item.
		{"PA full write quorum aborts", map[types.SiteID]types.State{
			1: pa, 2: pa, 3: pa, 5: pa, 6: pa, 7: pa}, threephase.VerdictAbort},
		// Try-commit: one PC (too few votes for immediate commit) plus
		// non-PA W sites covering r(x)=2 for x via sites 3,4.
		{"try-commit via r-some", map[types.SiteID]types.State{3: w, 4: w, 5: pc}, threephase.VerdictTryCommit},
		// TP2 on Example 1's G2 (site5 PC + site4 W): try-commit needs
		// non-PA sites with r(x) votes for some x, but {4,5} holds only one
		// vote of each item (r=2); the abort side needs w(x) for every item
		// from non-PC = {4} — impossible. G2 blocks under TP2 as well.
		{"G2 blocks under TP2 too", map[types.SiteID]types.State{4: w, 5: pc}, threephase.VerdictBlock},
	}
	for _, tc := range cases {
		if got := r.Decide(env, tally(tc.states)); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTP2AbortSideUsesWriteQuorum(t *testing.T) {
	env := protocoltest.New(1, ex1())
	r := TP2Rules{Items: items}
	w := types.StateWait
	// Example 4's G1 (sites 2,3 in W): TP2's abort side needs w(x) votes for
	// EVERY item from non-PC sites — {2,3} has 2 x votes (w=3) and 0 y votes
	// → block (TP1 aborted here; this is the r/w trade-off between the two).
	got := r.Decide(env, tally(map[types.SiteID]types.State{2: w, 3: w}))
	if got != threephase.VerdictBlock {
		t.Errorf("TP2 on Example4-G1 = %v, want block", got)
	}
	// But a partition holding w votes for all items can abort: sites 1,2,3
	// (3 x votes) + 5,6,7 (3 y votes).
	got = r.Decide(env, tally(map[types.SiteID]types.State{
		1: w, 2: w, 3: w, 5: w, 6: w, 7: w}))
	if got != threephase.VerdictTryAbort {
		t.Errorf("TP2 full-write-quorum partition = %v, want try-abort", got)
	}
}

// TestTP1TP2NoConflictingQuorumsProperty: the structural safety property —
// for ANY split of participants into PC-reporters and PA-reporters, it must
// never be possible that the commit side confirms with the PC set while the
// abort side confirms with the PA set, because PC sites refuse
// PREPARE-TO-ABORT and vice versa (sets are disjoint). This is Lemma 1/2's
// vote-arithmetic core: w(x)-every over S1 and r(x)-some over S2 with S1,S2
// disjoint would need w(x)+r(x) > v(x) votes for that x.
func TestTP1TP2NoConflictingQuorumsProperty(t *testing.T) {
	env := protocoltest.New(1, ex1())
	tp1 := TP1Rules{Items: items}
	tp2 := TP2Rules{Items: items}
	all := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	for mask := 0; mask < 1<<8; mask++ {
		var s1, s2 []types.SiteID
		for i, s := range all {
			if mask&(1<<i) != 0 {
				s1 = append(s1, s)
			} else {
				s2 = append(s2, s)
			}
		}
		if tp1.CommitConfirmed(env, s1) && tp1.AbortConfirmed(env, s2) {
			t.Fatalf("TP1: disjoint commit (%v) and abort (%v) quorums", s1, s2)
		}
		if tp2.CommitConfirmed(env, s1) && tp2.AbortConfirmed(env, s2) {
			t.Fatalf("TP2: disjoint commit (%v) and abort (%v) quorums", s1, s2)
		}
	}
}
