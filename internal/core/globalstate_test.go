package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcommit/internal/protocoltest"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
)

// TestTPOppositeImmediateVerdictsImpossible is the rules-level form of
// Theorem 1: take any *legal* interrupted global state (every participant
// voted yes; the coordinator crashed mid-PREPARE, so each participant is in
// W or PC) and any split of the participants into two partitions. It must
// never happen that one partition's tally yields an immediate COMMIT verdict
// while the other yields an immediate ABORT verdict — immediate verdicts act
// without further acknowledgements, so a conflict here would be an
// unconditional atomicity violation.
func TestTPOppositeImmediateVerdictsImpossible(t *testing.T) {
	env := protocoltest.New(1, ex1())
	all := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	rules := []threephase.Rules{TP1Rules{Items: items}, TP2Rules{Items: items}}

	f := func(pcMask, splitMask uint8) bool {
		g1 := make(map[types.SiteID]types.State)
		g2 := make(map[types.SiteID]types.State)
		for i, s := range all {
			st := types.StateWait
			if pcMask&(1<<i) != 0 {
				st = types.StatePC
			}
			if splitMask&(1<<i) != 0 {
				g1[s] = st
			} else {
				g2[s] = st
			}
		}
		for _, r := range rules {
			v1 := threephase.VerdictBlock
			if len(g1) > 0 {
				v1 = r.Decide(env, threephase.NewStateTally(g1))
			}
			v2 := threephase.VerdictBlock
			if len(g2) > 0 {
				v2 = r.Decide(env, threephase.NewStateTally(g2))
			}
			if (v1 == threephase.VerdictCommit && v2 == threephase.VerdictAbort) ||
				(v1 == threephase.VerdictAbort && v2 == threephase.VerdictCommit) {
				return false
			}
			// Stronger: an immediate COMMIT in one partition must make even
			// a *confirmed* abort quorum impossible in the other, because
			// immediate commit requires w(x) votes ∀x among PC sites, whose
			// complement cannot reach r(x) votes for any x.
			if v1 == threephase.VerdictCommit && r.AbortConfirmed(env, sitesOf(g2)) {
				return false
			}
			if v2 == threephase.VerdictCommit && r.AbortConfirmed(env, sitesOf(g1)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sitesOf(m map[types.SiteID]types.State) []types.SiteID {
	out := make([]types.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	return out
}

// TestTPVerdictPreconditions: structural sanity of the decision tables for
// arbitrary tallies (legal or not): a commit-side verdict requires a
// committable state in the partition; try-verdicts never fire on terminal
// evidence.
func TestTPVerdictPreconditions(t *testing.T) {
	env := protocoltest.New(1, ex1())
	all := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	states := []types.State{
		types.StateInitial, types.StateWait, types.StatePC,
		types.StatePA, types.StateCommitted, types.StateAborted,
	}
	rules := []threephase.Rules{TP1Rules{Items: items}, TP2Rules{Items: items}}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3000; trial++ {
		tallyMap := make(map[types.SiteID]types.State)
		for _, s := range all {
			if rng.Intn(3) > 0 { // ~2/3 of sites respond
				tallyMap[s] = states[rng.Intn(len(states))]
			}
		}
		if len(tallyMap) == 0 {
			continue
		}
		tl := threephase.NewStateTally(tallyMap)
		for _, r := range rules {
			v := r.Decide(env, tl)
			anyCommittable := tl.Any(types.StatePC) || tl.Any(types.StateCommitted)
			if (v == threephase.VerdictCommit || v == threephase.VerdictTryCommit) && !anyCommittable {
				t.Fatalf("%s: commit-side verdict %v without any committable state: %v", r.Name(), v, tallyMap)
			}
			if v == threephase.VerdictTryCommit && (tl.Any(types.StateAborted) || tl.Any(types.StateInitial) || tl.Any(types.StateCommitted)) {
				t.Fatalf("%s: try-commit despite terminal/initial evidence: %v", r.Name(), tallyMap)
			}
			if v == threephase.VerdictTryAbort && (tl.Any(types.StateCommitted) || tl.Any(types.StateAborted) || tl.Any(types.StateInitial)) {
				t.Fatalf("%s: try-abort despite decisive evidence: %v", r.Name(), tallyMap)
			}
		}
	}
}
