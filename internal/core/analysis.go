package core

import (
	"fmt"
	"sort"
	"strings"

	"qcommit/internal/types"
)

// This file reproduces the paper's analytical artifacts: the partition-state
// taxonomy and concurrency sets of Fig. 4 (with which section 2 proves that
// no termination protocol can terminate in *every* partition holding a
// replica quorum), and the participant state-transition relation of Fig. 6.

// PartitionState classifies the multiset of local states of the active
// participants in one partition, per Fig. 4.
type PartitionState int

// Partition states PS1–PS6 (Fig. 4).
const (
	// PSNone is the classification of an empty partition (no active
	// participants).
	PSNone PartitionState = iota
	// PS1: at least one participant is in the initial state q and none is
	// aborted.
	PS1
	// PS2: all participants are in the wait state W.
	PS2
	// PS3: at least one participant is in the abort state A.
	PS3
	// PS4: some participants are in PC and some in W.
	PS4
	// PS5: all participants are in PC.
	PS5
	// PS6: at least one participant is in the commit state C.
	PS6
)

// String implements fmt.Stringer.
func (ps PartitionState) String() string {
	if ps == PSNone {
		return "PS-none"
	}
	return fmt.Sprintf("PS%d", int(ps))
}

// Classify maps a partition's local states (over q, W, PC, C, A — the 3PC
// vocabulary of Fig. 4) to its partition state.
func Classify(states []types.State) PartitionState {
	if len(states) == 0 {
		return PSNone
	}
	var q, w, pc, c, a int
	for _, s := range states {
		switch s {
		case types.StateInitial:
			q++
		case types.StateWait:
			w++
		case types.StatePC:
			pc++
		case types.StateCommitted:
			c++
		case types.StateAborted:
			a++
		}
	}
	switch {
	case c > 0:
		return PS6
	case a > 0:
		return PS3
	case q > 0:
		return PS1
	case pc > 0 && w > 0:
		return PS4
	case pc > 0:
		return PS5
	default:
		return PS2
	}
}

// phase is a family of global configurations the three-phase commit
// procedure can be in when failures interrupt it. Each phase constrains
// which local states may coexist globally.
type phase struct {
	name string
	// allowed local states in this phase.
	states []types.State
	// require lists states of which at least one instance must exist
	// globally for the configuration to belong to this phase.
	require []types.State
}

// phases enumerates the interrupted-commit global configurations of 3PC:
// vote collection (q/W), abort distribution (q/W/A), prepare distribution
// (W/PC) and commit distribution (PC/C). The commit-distribution constraint
// encodes 3PC's "COMMIT only after every participant acknowledged PC".
func phases() []phase {
	return []phase{
		{name: "voting", states: []types.State{types.StateInitial, types.StateWait}},
		{name: "aborting", states: []types.State{types.StateInitial, types.StateWait, types.StateAborted},
			require: []types.State{types.StateAborted}},
		{name: "preparing", states: []types.State{types.StateWait, types.StatePC}},
		{name: "committing", states: []types.State{types.StatePC, types.StateCommitted},
			require: []types.State{types.StateCommitted}},
	}
}

// ConcurrencySets computes C(PS) for each partition state by enumerating
// two-partition splits of every legal global configuration (up to three
// participants per partition, which is exhaustive for the classification
// since every partition state is witnessed with ≤2 members).
func ConcurrencySets() map[PartitionState][]PartitionState {
	result := make(map[PartitionState]map[PartitionState]bool)
	add := func(a, b PartitionState) {
		if result[a] == nil {
			result[a] = make(map[PartitionState]bool)
		}
		result[a][b] = true
	}

	for _, ph := range phases() {
		// Enumerate partition-A and partition-B multisets of sizes 1..3
		// drawn from the phase's allowed states.
		combosA := stateMultisets(ph.states, 3)
		combosB := stateMultisets(ph.states, 3)
		for _, ma := range combosA {
			for _, mb := range combosB {
				if !phaseSatisfied(ph, ma, mb) {
					continue
				}
				psa, psb := Classify(ma), Classify(mb)
				add(psa, psb)
				add(psb, psa)
			}
		}
	}

	out := make(map[PartitionState][]PartitionState, len(result))
	for ps, set := range result {
		var list []PartitionState
		for other := range set {
			list = append(list, other)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[ps] = list
	}
	return out
}

// phaseSatisfied checks the phase's global "require" constraint against the
// union of both partitions' states.
func phaseSatisfied(ph phase, a, b []types.State) bool {
	for _, req := range ph.require {
		found := false
		for _, s := range a {
			if s == req {
				found = true
				break
			}
		}
		if !found {
			for _, s := range b {
				if s == req {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// stateMultisets enumerates non-empty multisets (as sorted slices) of the
// given states with size ≤ maxSize.
func stateMultisets(states []types.State, maxSize int) [][]types.State {
	var out [][]types.State
	var rec func(start int, cur []types.State)
	rec = func(start int, cur []types.State) {
		if len(cur) > 0 {
			cp := make([]types.State, len(cur))
			copy(cp, cur)
			out = append(out, cp)
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(states); i++ {
			rec(i, append(cur, states[i]))
		}
	}
	rec(0, nil)
	return out
}

// Action is what a termination protocol may do with a partition in a given
// partition state, as derived from the paper's rules 1 and 2.
type Action string

// Actions of Fig. 4's accompanying argument.
const (
	// ActionAbort: the partition must abort (rule 1: C(PS) contains a state
	// with an aborted participant; here the partition itself has one).
	ActionAbort Action = "abort"
	// ActionCommit: the partition must commit.
	ActionCommit Action = "commit"
	// ActionBlockOrAbort: the partition may block or abort, never commit.
	ActionBlockOrAbort Action = "block-or-abort"
	// ActionBlockOrCommit: the partition may block or commit, never abort.
	ActionBlockOrCommit Action = "block-or-commit"
	// ActionConsistent: the partition must block or terminate consistently
	// with every concurrent PS2/PS5 partition (the PS4 dilemma).
	ActionConsistent Action = "block-or-consistent"
)

// AllowedActions derives each partition state's permitted action from the
// computed concurrency sets, mechanizing the paper's argument:
// rule 1 forces PS3→abort and PS6→commit; rule 2 then confines any state
// whose concurrency set contains PS3 (resp. PS6) to block-or-abort (resp.
// block-or-commit); PS4, concurrent with both PS2 and PS5, may only block or
// coordinate.
func AllowedActions() map[PartitionState]Action {
	cs := ConcurrencySets()
	actions := make(map[PartitionState]Action)
	for _, ps := range []PartitionState{PS1, PS2, PS3, PS4, PS5, PS6} {
		switch ps {
		case PS3:
			actions[ps] = ActionAbort
		case PS6:
			actions[ps] = ActionCommit
		default:
			hasAbortPeer := containsPS(cs[ps], PS3)
			hasCommitPeer := containsPS(cs[ps], PS6)
			switch {
			case hasAbortPeer && !hasCommitPeer:
				actions[ps] = ActionBlockOrAbort
			case hasCommitPeer && !hasAbortPeer:
				actions[ps] = ActionBlockOrCommit
			default:
				actions[ps] = ActionConsistent
			}
		}
	}
	return actions
}

func containsPS(ss []PartitionState, x PartitionState) bool {
	for _, s := range ss {
		if s == x {
			return true
		}
	}
	return false
}

// Fig4Table renders the Fig. 4 reproduction: each partition state, its
// definition, computed concurrency set, and permitted action.
func Fig4Table() string {
	defs := map[PartitionState]string{
		PS1: "≥1 participant in q, none in A",
		PS2: "all participants in W",
		PS3: "≥1 participant in A",
		PS4: "some participants in PC, some in W",
		PS5: "all participants in PC",
		PS6: "≥1 participant in C",
	}
	cs := ConcurrencySets()
	actions := AllowedActions()
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-38s %-28s %s\n", "PS", "definition", "concurrency set C(PS)", "permitted action")
	for _, ps := range []PartitionState{PS1, PS2, PS3, PS4, PS5, PS6} {
		var names []string
		for _, other := range cs[ps] {
			names = append(names, other.String())
		}
		fmt.Fprintf(&b, "%-4s %-38s %-28s %s\n", ps, defs[ps], "{"+strings.Join(names, ",")+"}", actions[ps])
	}
	return b.String()
}

// Transition is one edge of the participant state diagram (Fig. 6).
type Transition struct {
	From, To types.State
	// Label is the event causing the transition.
	Label string
	// Quorum is true for the solid "participates in quorum formation" edges
	// of Fig. 6, false for the dashed non-participating edges.
	Quorum bool
}

// Fig6Transitions returns the complete legal transition relation of the
// participant automaton, including the paper's additions (W→PA on
// PREPARE-TO-ABORT) and deliberate omissions: there is NO transition between
// PC and PA in either direction.
func Fig6Transitions() []Transition {
	return []Transition{
		{From: types.StateInitial, To: types.StateWait, Label: "vote yes", Quorum: true},
		{From: types.StateInitial, To: types.StateAborted, Label: "vote no", Quorum: true},
		{From: types.StateWait, To: types.StatePC, Label: "PREPARE-TO-COMMIT / PC-ACK", Quorum: true},
		{From: types.StateWait, To: types.StatePA, Label: "PREPARE-TO-ABORT / PA-ACK", Quorum: true},
		{From: types.StateWait, To: types.StateCommitted, Label: "COMMIT", Quorum: false},
		{From: types.StateWait, To: types.StateAborted, Label: "ABORT", Quorum: false},
		{From: types.StatePC, To: types.StateCommitted, Label: "COMMIT", Quorum: true},
		{From: types.StatePC, To: types.StateAborted, Label: "ABORT", Quorum: false},
		{From: types.StatePA, To: types.StateAborted, Label: "ABORT", Quorum: true},
		{From: types.StatePA, To: types.StateCommitted, Label: "COMMIT", Quorum: false},
	}
}

// LegalTransition reports whether from→to appears in Fig. 6. Self-loops
// (message re-delivery) are legal no-ops.
func LegalTransition(from, to types.State) bool {
	if from == to {
		return true
	}
	for _, tr := range Fig6Transitions() {
		if tr.From == from && tr.To == to {
			return true
		}
	}
	return false
}

// Fig6Table renders the transition relation.
func Fig6Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-30s %s\n", "from", "to", "event", "edge")
	for _, tr := range Fig6Transitions() {
		kind := "dashed (not in quorum)"
		if tr.Quorum {
			kind = "solid (participates)"
		}
		fmt.Fprintf(&b, "%-4s %-4s %-30s %s\n", tr.From, tr.To, tr.Label, kind)
	}
	b.WriteString("note: no transition exists between PC and PA in either direction\n")
	return b.String()
}
