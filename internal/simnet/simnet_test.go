package simnet

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/sim"
	"qcommit/internal/types"
)

func newNet(cfg Config) (*sim.Scheduler, *Network, map[types.SiteID][]msg.Envelope) {
	sched := sim.NewScheduler(1)
	n := New(sched, cfg)
	got := make(map[types.SiteID][]msg.Envelope)
	for id := types.SiteID(1); id <= 4; id++ {
		id := id
		n.Register(id, func(e msg.Envelope) { got[id] = append(got[id], e) })
	}
	return sched, n, got
}

func TestDeliveryWithinDelayBounds(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 2 * sim.Millisecond, MaxDelay: 5 * sim.Millisecond, Codec: true})
	n.Send(1, 2, msg.Commit{Txn: 1})
	end := sched.Run()
	if len(got[2]) != 1 {
		t.Fatalf("site2 got %d messages", len(got[2]))
	}
	if end < sim.Time(2*sim.Millisecond) || end > sim.Time(5*sim.Millisecond) {
		t.Errorf("delivery at %v outside [2ms,5ms]", end)
	}
	if n.Stats().Delivered != 1 || n.Stats().Sent != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestSelfDelivery(t *testing.T) {
	sched, n, got := newNet(DefaultConfig())
	n.Send(3, 3, msg.StateReq{Txn: 1, Coord: 3})
	sched.Run()
	if len(got[3]) != 1 {
		t.Fatalf("self delivery failed: %d", len(got[3]))
	}
}

func TestPartitionBlocksAcrossGroups(t *testing.T) {
	sched, n, got := newNet(DefaultConfig())
	n.Partition([]types.SiteID{1, 2}, []types.SiteID{3, 4})
	n.Send(1, 3, msg.Commit{Txn: 1}) // across groups: dropped
	n.Send(1, 2, msg.Commit{Txn: 1}) // same group: delivered
	n.Send(3, 4, msg.Commit{Txn: 1}) // same group: delivered
	sched.Run()
	if len(got[3]) != 0 {
		t.Error("cross-partition message delivered")
	}
	if len(got[2]) != 1 || len(got[4]) != 1 {
		t.Error("intra-partition messages lost")
	}
	if n.Stats().DroppedPartition != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}

	n.Heal()
	n.Send(1, 3, msg.Commit{Txn: 2})
	sched.Run()
	if len(got[3]) != 1 {
		t.Error("post-heal message lost")
	}
}

func TestImplicitResidualGroup(t *testing.T) {
	_, n, _ := newNet(DefaultConfig())
	n.Partition([]types.SiteID{1}) // sites 2,3,4 form the residual group
	if n.Connected(2, 3) != true {
		t.Error("residual group members should be connected")
	}
	if n.Connected(1, 2) {
		t.Error("explicit and residual groups should be separated")
	}
	groups := n.Groups()
	if len(groups) != 2 {
		t.Fatalf("Groups = %v", groups)
	}
}

func TestMidFlightPartitionCut(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 10 * sim.Millisecond, MaxDelay: 10 * sim.Millisecond, Codec: true})
	n.Send(1, 2, msg.Commit{Txn: 1})
	// Partition before the in-flight message lands: it must be cut off.
	sched.At(sim.Time(5*sim.Millisecond), func() {
		n.Partition([]types.SiteID{1}, []types.SiteID{2, 3, 4})
	})
	sched.Run()
	if len(got[2]) != 0 {
		t.Error("mid-flight message crossed a partition formed before delivery")
	}
}

func TestCrashDropsSendsAndReceives(t *testing.T) {
	sched, n, got := newNet(DefaultConfig())
	n.Crash(2)
	if !n.Down(2) {
		t.Error("Down(2) false")
	}
	n.Send(1, 2, msg.Commit{Txn: 1}) // to crashed: dropped
	n.Send(2, 1, msg.Commit{Txn: 1}) // from crashed: dropped
	sched.Run()
	if len(got[2]) != 0 || len(got[1]) != 0 {
		t.Error("crashed site exchanged messages")
	}
	n.Recover(2)
	n.Send(1, 2, msg.Commit{Txn: 2})
	sched.Run()
	if len(got[2]) != 1 {
		t.Error("recovered site got no message")
	}
}

func TestLossProbabilityAppliesStatistically(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 1, MaxDelay: 2, LossProb: 0.5, Codec: false})
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(1, 2, msg.Commit{Txn: types.TxnID(i)})
	}
	sched.Run()
	delivered := len(got[2])
	if delivered < total/3 || delivered > 2*total/3 {
		t.Errorf("delivered %d of %d with 50%% loss — far from expectation", delivered, total)
	}
	if n.Stats().DroppedLoss+uint64(delivered) != total {
		t.Errorf("loss accounting wrong: %+v", n.Stats())
	}
}

func TestDuplication(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 1, MaxDelay: 2, DupProb: 1.0, Codec: false})
	n.Send(1, 2, msg.Commit{Txn: 1})
	sched.Run()
	if len(got[2]) != 2 {
		t.Errorf("with DupProb=1 expected 2 deliveries, got %d", len(got[2]))
	}
}

func TestScriptedFilter(t *testing.T) {
	sched, n, got := newNet(DefaultConfig())
	n.SetFilter(func(e msg.Envelope) bool { return e.From == 1 && e.To == 2 })
	n.Send(1, 2, msg.Commit{Txn: 1})
	n.Send(1, 3, msg.Commit{Txn: 1})
	sched.Run()
	if len(got[2]) != 0 || len(got[3]) != 1 {
		t.Errorf("filter misapplied: %d/%d", len(got[2]), len(got[3]))
	}
	if n.Stats().DroppedFilter != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
	n.SetFilter(nil)
	n.Send(1, 2, msg.Commit{Txn: 2})
	sched.Run()
	if len(got[2]) != 1 {
		t.Error("cleared filter still dropping")
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	sched, n, got := newNet(DefaultConfig())
	n.Broadcast(1, []types.SiteID{1, 2, 3, 4}, msg.Commit{Txn: 1})
	sched.Run()
	if len(got[1]) != 0 {
		t.Error("broadcast delivered to sender")
	}
	if len(got[2]) != 1 || len(got[3]) != 1 || len(got[4]) != 1 {
		t.Error("broadcast incomplete")
	}
}

func TestCodecRoundTripOnWire(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 1, MaxDelay: 1, Codec: true})
	ws := types.Writeset{{Item: "x", Value: 123}}
	n.Send(1, 2, msg.VoteReq{Txn: 9, Coord: 1, Participants: []types.SiteID{1, 2}, Writeset: ws})
	sched.Run()
	if len(got[2]) != 1 {
		t.Fatal("no delivery")
	}
	req, ok := got[2][0].Msg.(msg.VoteReq)
	if !ok {
		t.Fatalf("wrong type %T", got[2][0].Msg)
	}
	if req.Txn != 9 || len(req.Writeset) != 1 || req.Writeset[0].Value != 123 {
		t.Errorf("payload mangled: %+v", req)
	}
	if n.Stats().Bytes == 0 {
		t.Error("no bytes accounted")
	}
}

func TestSitesSorted(t *testing.T) {
	_, n, _ := newNet(DefaultConfig())
	sites := n.Sites()
	if len(sites) != 4 {
		t.Fatalf("Sites = %v", sites)
	}
	for i := 1; i < len(sites); i++ {
		if sites[i] <= sites[i-1] {
			t.Fatalf("Sites unsorted: %v", sites)
		}
	}
}

func TestDeterministicDelays(t *testing.T) {
	run := func() []sim.Time {
		sched := sim.NewScheduler(99)
		n := New(sched, DefaultConfig())
		var times []sim.Time
		n.Register(1, func(msg.Envelope) {})
		n.Register(2, func(msg.Envelope) { times = append(times, sched.Now()) })
		for i := 0; i < 20; i++ {
			n.Send(1, 2, msg.Commit{Txn: types.TxnID(i)})
		}
		sched.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery times at %d", i)
		}
	}
}

func TestGroupOfAndConfigDefaults(t *testing.T) {
	_, n, _ := newNet(Config{})
	if n.Config().MaxDelayOrDefault() != 10*sim.Millisecond {
		t.Error("MaxDelay default wrong")
	}
	n.Partition([]types.SiteID{2}, []types.SiteID{3})
	if n.GroupOf(2) == n.GroupOf(3) {
		t.Error("explicit groups share an ID")
	}
	if n.GroupOf(1) != 0 || n.GroupOf(4) != 0 {
		t.Error("residual sites should report group 0")
	}
}

func TestSendFromUnregisteredHandlerIsSafe(t *testing.T) {
	sched := sim.NewScheduler(1)
	n := New(sched, Config{MinDelay: 1, MaxDelay: 1})
	n.Register(1, func(msg.Envelope) {})
	// Destination never registered: delivery must be a silent no-op.
	n.Send(1, 99, msg.Commit{Txn: 1})
	sched.Run()
}

func TestZeroDelayConfig(t *testing.T) {
	sched, n, got := newNet(Config{MinDelay: 0, MaxDelay: 0})
	n.Send(1, 2, msg.Commit{Txn: 1})
	sched.Run()
	if len(got[2]) != 1 {
		t.Error("zero-delay config must still deliver (defaults applied)")
	}
}
