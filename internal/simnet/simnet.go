// Package simnet models the communication network between database sites on
// top of the deterministic simulation kernel.
//
// The model captures exactly the failure classes the paper's protocols are
// designed for: site failures (crash/recover), lost messages, and network
// partitioning (the network splits into disjoint components with no
// communication between them), plus message duplication and variable delay.
// The longest end-to-end propagation delay T of the paper maps to
// Config.MaxDelay.
package simnet

import (
	"fmt"
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/sim"
	"qcommit/internal/types"
)

// Handler consumes a delivered message at a site.
type Handler func(env msg.Envelope)

// DropFilter can veto delivery of specific envelopes (for scripted message
// loss, e.g. Example 3's "messages between site2 and site3 are lost").
// Returning true drops the message.
type DropFilter func(env msg.Envelope) bool

// Config parameterizes the network.
type Config struct {
	// MinDelay and MaxDelay bound per-message propagation delay; delays are
	// drawn uniformly from [MinDelay, MaxDelay]. MaxDelay is the paper's T.
	MinDelay sim.Duration
	MaxDelay sim.Duration
	// LossProb is the independent probability that any message is lost.
	LossProb float64
	// DupProb is the probability a delivered message is delivered twice.
	DupProb float64
	// Codec, when true, round-trips every message through the binary wire
	// codec, exercising Marshal/Unmarshal on every hop.
	Codec bool
	// DelayFn, when non-nil, replaces the random draw: the propagation delay
	// of a message is DelayFn(from, to, sendTime) and the scheduler RNG is
	// never consulted. A pure DelayFn makes per-message timing a function of
	// the message alone rather than of the global send order, so a
	// simulation of any subset of the traffic sees identical delays for the
	// messages it shares with the full run — the property the hybrid churn
	// engine's replay fallback relies on. The returned delay is clamped
	// to [0, MaxDelayOrDefault()].
	DelayFn func(from, to types.SiteID, at sim.Time) sim.Duration
}

// DefaultConfig returns the configuration used by most experiments:
// 1–10 ms delay, lossless, codec enabled.
func DefaultConfig() Config {
	return Config{
		MinDelay: 1 * sim.Millisecond,
		MaxDelay: 10 * sim.Millisecond,
		Codec:    true,
	}
}

// MaxDelayOrDefault returns MaxDelay, defaulting to 10ms if unset.
func (c Config) MaxDelayOrDefault() sim.Duration {
	if c.MaxDelay <= 0 {
		return 10 * sim.Millisecond
	}
	return c.MaxDelay
}

// Stats counts network activity.
type Stats struct {
	Sent             uint64
	Delivered        uint64
	Duplicated       uint64
	DroppedLoss      uint64
	DroppedPartition uint64
	DroppedDown      uint64
	DroppedFilter    uint64
	Bytes            uint64
}

// Network routes messages between sites under the configured failure model.
type Network struct {
	sched    *sim.Scheduler
	cfg      Config
	handlers map[types.SiteID]Handler
	down     map[types.SiteID]bool
	group    map[types.SiteID]int // partition group; all zero = fully connected
	filter   DropFilter
	stats    Stats
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Network {
	return &Network{
		sched:    sched,
		cfg:      cfg,
		handlers: make(map[types.SiteID]Handler),
		down:     make(map[types.SiteID]bool),
		group:    make(map[types.SiteID]int),
	}
}

// Scheduler returns the underlying simulation scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Register installs the message handler for a site. Registering a site marks
// it up.
func (n *Network) Register(id types.SiteID, h Handler) {
	n.handlers[id] = h
	n.down[id] = false
}

// Sites returns the registered site IDs in ascending order.
func (n *Network) Sites() []types.SiteID {
	out := make([]types.SiteID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Crash marks a site down: it receives nothing and its sends are dropped.
func (n *Network) Crash(id types.SiteID) { n.down[id] = true }

// Recover marks a site up again.
func (n *Network) Recover(id types.SiteID) { n.down[id] = false }

// Down reports whether a site is crashed.
func (n *Network) Down(id types.SiteID) bool { return n.down[id] }

// SetFilter installs (or clears, with nil) a scripted drop filter.
func (n *Network) SetFilter(f DropFilter) { n.filter = f }

// Partition splits the network into the given disjoint groups. Sites not
// listed in any group form an implicit final group together. Heal() undoes
// the split.
func (n *Network) Partition(groups ...[]types.SiteID) {
	n.group = make(map[types.SiteID]int)
	for gi, g := range groups {
		for _, s := range g {
			n.group[s] = gi + 1
		}
	}
}

// Heal reconnects all sites.
func (n *Network) Heal() { n.group = make(map[types.SiteID]int) }

// Connected reports whether a and b can currently exchange messages
// (same partition group and both up).
func (n *Network) Connected(a, b types.SiteID) bool {
	if n.down[a] || n.down[b] {
		return false
	}
	return n.group[a] == n.group[b]
}

// GroupOf returns the partition group identifier of a site. Sites in the
// implicit residual group return 0.
func (n *Network) GroupOf(id types.SiteID) int { return n.group[id] }

// Groups returns the current partition as a list of site groups in
// deterministic order. A fully connected network returns one group.
func (n *Network) Groups() [][]types.SiteID {
	byGroup := make(map[int][]types.SiteID)
	for _, id := range n.Sites() {
		g := n.group[id]
		byGroup[g] = append(byGroup[g], id)
	}
	keys := make([]int, 0, len(byGroup))
	for k := range byGroup {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]types.SiteID, 0, len(keys))
	for _, k := range keys {
		out = append(out, byGroup[k])
	}
	return out
}

// Send routes one message. Delivery (or loss) is decided at send time against
// the current partition/crash state; delivery happens after a random delay.
// Messages already in flight when a partition forms are still delivered —
// checked again at delivery time, modeling messages cut off mid-flight.
func (n *Network) Send(from, to types.SiteID, m msg.Message) {
	n.stats.Sent++
	env := msg.Envelope{From: from, To: to, Msg: m}
	if n.down[from] {
		n.stats.DroppedDown++
		return
	}
	if n.cfg.Codec {
		frame, err := msg.Marshal(m)
		if err != nil {
			panic(fmt.Sprintf("simnet: marshal %T: %v", m, err))
		}
		n.stats.Bytes += uint64(len(frame))
		decoded, err := msg.Unmarshal(frame)
		if err != nil {
			panic(fmt.Sprintf("simnet: unmarshal %s: %v", m.Kind(), err))
		}
		env.Msg = decoded
	}
	if n.filter != nil && n.filter(env) {
		n.stats.DroppedFilter++
		return
	}
	if !n.Connected(from, to) {
		n.stats.DroppedPartition++
		return
	}
	if n.cfg.LossProb > 0 && n.sched.Rand().Float64() < n.cfg.LossProb {
		n.stats.DroppedLoss++
		return
	}
	n.deliverAfter(env, n.delayFor(from, to))
	if n.cfg.DupProb > 0 && n.sched.Rand().Float64() < n.cfg.DupProb {
		n.stats.Duplicated++
		n.deliverAfter(env, n.delayFor(from, to))
	}
}

// Broadcast sends m from one site to each destination.
func (n *Network) Broadcast(from types.SiteID, tos []types.SiteID, m msg.Message) {
	for _, to := range tos {
		if to == from {
			continue
		}
		n.Send(from, to, m)
	}
}

func (n *Network) delayFor(from, to types.SiteID) sim.Duration {
	hi := n.cfg.MaxDelayOrDefault()
	if fn := n.cfg.DelayFn; fn != nil {
		d := fn(from, to, n.sched.Now())
		if d < 0 {
			d = 0
		}
		if d > hi {
			d = hi
		}
		return d
	}
	lo := n.cfg.MinDelay
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return lo
	}
	return lo + sim.Duration(n.sched.Rand().Int63n(int64(hi-lo)+1))
}

func (n *Network) deliverAfter(env msg.Envelope, d sim.Duration) {
	n.sched.After(d, func() {
		// Re-check at delivery time: the receiver may have crashed or the
		// partition may have separated sender and receiver mid-flight.
		if n.down[env.To] || !n.Connected(env.From, env.To) {
			n.stats.DroppedPartition++
			return
		}
		h := n.handlers[env.To]
		if h == nil {
			return
		}
		n.stats.Delivered++
		h(env)
	})
}
