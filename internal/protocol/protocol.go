// Package protocol defines the runtime-agnostic contract between commit /
// termination protocol automata and the engine that hosts them.
//
// Every protocol in this repository (two-phase commit, three-phase commit,
// Skeen's quorum-based protocol, and the paper's quorum-based commit and
// termination protocols 1 and 2) is written as a set of pure, event-driven
// state machines: an automaton consumes messages and timer expirations and
// reacts through the Env interface. The same automata run unchanged under
// the deterministic discrete-event simulator (package engine) and the live
// goroutine runtime (package live); only the Env implementation differs.
package protocol

import (
	"qcommit/internal/msg"
	"qcommit/internal/sim"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Env is the world as seen by one automaton at one site. All methods are
// non-blocking; effects (sends, timers) are applied by the hosting runtime.
type Env interface {
	// Self is the hosting site's ID.
	Self() types.SiteID
	// Now is the current (virtual or wall-clock-mapped) time.
	Now() sim.Time
	// T is the longest end-to-end propagation delay of the network; the
	// paper's timeout periods are expressed as multiples of it (2T, 3T).
	T() sim.Duration
	// Assignment is the cluster-wide vote assignment for replicated items.
	Assignment() *voting.Assignment

	// Send transmits a message to another site (or to Self; self-delivery is
	// routed like any other message).
	Send(to types.SiteID, m msg.Message)
	// SetTimer schedules OnTimer(token) after d. Automata are responsible
	// for ignoring stale timers (e.g. with epoch counters); timers are not
	// cancellable.
	SetTimer(d sim.Duration, token int)

	// Append forces a record to the site's write-ahead log before returning.
	Append(rec wal.Record)

	// Commit asks the host to irrevocably commit the transaction locally:
	// log COMMIT, apply the writeset, release locks, record the outcome.
	Commit(txn types.TxnID)
	// Abort is the abort counterpart of Commit.
	Abort(txn types.TxnID)
	// Block records that the termination attempt for txn is blocked in this
	// partition; locks remain held. A later termination round may unblock.
	Block(txn types.TxnID)
	// RequestTermination reports that the normal commitment procedure looks
	// interrupted (timeout); the host runs the election protocol and, if
	// this site wins, starts the termination-protocol coordinator.
	RequestTermination(txn types.TxnID)
	// TerminatorDone reports that a termination coordinator finished its
	// round (decided, blocked, or handed off to a re-election).
	TerminatorDone(txn types.TxnID)

	// AcquireLocks takes exclusive locks on every local copy of the
	// transaction's written items, returning false if any is unavailable.
	// Participants turn a false return into a no vote.
	AcquireLocks(txn types.TxnID) bool

	// Tracef emits a trace event for message-ladder rendering and debugging.
	Tracef(format string, args ...any)
}

// Automaton is an event-driven protocol state machine.
type Automaton interface {
	// Start runs when the automaton is installed.
	Start(env Env)
	// OnMessage delivers a routed protocol message.
	OnMessage(from types.SiteID, m msg.Message, env Env)
	// OnTimer delivers an expired timer set via Env.SetTimer.
	OnTimer(token int, env Env)
}

// Role classifies automata for message routing by the host.
type Role uint8

// Roles.
const (
	// RoleCoordinator is the commit-protocol coordinator.
	RoleCoordinator Role = iota
	// RoleParticipant is the per-site participant.
	RoleParticipant
	// RoleTerminator is the termination-protocol coordinator elected in a
	// partition.
	RoleTerminator
	// RoleElection is the coordinator-election automaton.
	RoleElection
)

// Spec is a commit+termination protocol family. The engine uses it to build
// automata; everything protocol-specific lives behind this interface.
type Spec interface {
	// Name identifies the protocol in traces and result tables
	// (e.g. "2PC", "3PC", "SkeenQ", "QC1", "QC2").
	Name() string
	// NewCoordinator creates the commit coordinator for a transaction
	// issued at this site.
	NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) Automaton
	// NewParticipant creates the per-site participant automaton. init is
	// non-nil when the participant is being reconstructed from the WAL after
	// a crash.
	NewParticipant(txn types.TxnID, init *wal.TxnImage) Automaton
	// NewTerminator creates the termination-protocol coordinator that runs
	// after this site wins an election in its partition. epoch distinguishes
	// successive (reentrant) invocations.
	NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) Automaton
}

// Timeout multiples used across the protocols, as in the paper: a
// participant that sent a message to the coordinator starts the election
// protocol if it hears nothing within 3T; the termination coordinator's
// phase-2 acknowledgement window is 2T.
const (
	// AckWindowT is the terminator's phase-2/3 wait, in units of T.
	AckWindowT = 2
	// ParticipantPatienceT is the participant's silence tolerance, in units
	// of T.
	ParticipantPatienceT = 3
)

// AckWindow returns 2T for the given Env.
func AckWindow(env Env) sim.Duration { return sim.Duration(AckWindowT) * env.T() }

// ParticipantPatience returns 3T for the given Env.
func ParticipantPatience(env Env) sim.Duration {
	return sim.Duration(ParticipantPatienceT) * env.T()
}
