package avail

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// differentialParamSets are the scenario-parameter grid of the analytic-vs-
// replay differential suite, chosen to hit the structural edges: the
// defaults, full replication (CopiesPerItem == NumSites, every site is a
// participant), sparse replication with a wide writeset, pure vote-phase
// cuts (VotePhasePct 100, q states guaranteed possible) and pure PC-phase
// cuts (VotePhasePct 0, no q states ever), plus maximal fragmentation.
var differentialParamSets = []ScenarioParams{
	DefaultScenarioParams(),
	{NumSites: 6, NumItems: 3, CopiesPerItem: 6, ItemsPerTxn: 2, MaxGroups: 4, VotePhasePct: 50},
	{NumSites: 8, NumItems: 4, CopiesPerItem: 3, ItemsPerTxn: 4, MaxGroups: 5, VotePhasePct: 0},
	{NumSites: 5, NumItems: 2, CopiesPerItem: 2, ItemsPerTxn: 1, MaxGroups: 2, VotePhasePct: 100},
}

// assertEngineAgreement replays one scenario under every standard protocol
// with both engines and fails on any Counts or violation-count divergence.
func assertEngineAgreement(t *testing.T, sc Scenario, label string) {
	t.Helper()
	for _, b := range StandardBuilders() {
		rep, violations := Replay(sc, b.Build(sc))
		wantCounts, wantViol := rep.Tally(), len(violations)
		gotCounts, gotViol := AnalyzeAnalytic(sc, b.Decider(sc))
		if !reflect.DeepEqual(gotCounts, wantCounts) {
			t.Errorf("%s %s: analytic counts diverge\nreplay   %+v\nanalytic %+v\nstates %v partition %v coord %v writeset %v",
				label, b.Label, wantCounts, gotCounts, sc.States, sc.Partition, sc.Coord, sc.Writeset)
		}
		if gotViol != wantViol {
			t.Errorf("%s %s: analytic violations = %d, replay = %d (%v)",
				label, b.Label, gotViol, wantViol, violations)
		}
	}
}

// TestAnalyticMatchesReplayGrid is the tentpole contract: over a grid of
// seeds × all five protocols × edge-case scenario parameters, the analytic
// engine's Counts are bit-identical to full engine replay, and it reports
// exactly the replay's violation count. The simulator stays the oracle; the
// analytic path must never drift from it.
func TestAnalyticMatchesReplayGrid(t *testing.T) {
	for pi, params := range differentialParamSets {
		gen, err := NewScenarioGen(params)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 50; seed++ {
			sc, err := gen.Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			assertEngineAgreement(t, sc, fmt.Sprintf("params%d/seed%d", pi, seed))
		}
	}
}

// TestAnalyticMatchesReplayRandomParams is the fuzz-style variant: scenario
// parameters themselves are drawn at random (within validity bounds) and a
// few seeds are differentially checked for each draw.
func TestAnalyticMatchesReplayRandomParams(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for i := 0; i < 40; i++ {
		params := ScenarioParams{
			NumSites:     2 + rng.Intn(9), // 2..10
			NumItems:     1 + rng.Intn(5), // 1..5
			MaxGroups:    2 + rng.Intn(4), // 2..5
			VotePhasePct: rng.Intn(101),
		}
		params.CopiesPerItem = 1 + rng.Intn(params.NumSites) // 1..NumSites
		params.ItemsPerTxn = 1 + rng.Intn(params.NumItems)   // 1..NumItems
		gen, err := NewScenarioGen(params)
		if err != nil {
			t.Fatalf("params %+v: %v", params, err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			sc, err := gen.Generate(seed)
			if err != nil {
				t.Fatalf("params %+v seed %d: %v", params, seed, err)
			}
			assertEngineAgreement(t, sc, fmt.Sprintf("rand%d/seed%d", i, seed))
		}
	}
}

// FuzzAnalyticMatchesReplay lets the native fuzzer explore the
// (params, seed) space beyond the fixed grid; `go test` runs the seed corpus
// as a regression suite.
func FuzzAnalyticMatchesReplay(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(4), uint8(4), uint8(2), uint8(3), uint8(25))
	f.Add(int64(17), uint8(6), uint8(6), uint8(3), uint8(3), uint8(4), uint8(100))
	f.Add(int64(33), uint8(5), uint8(2), uint8(2), uint8(1), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, sites, copies, items, writes, groups, votePct uint8) {
		params := ScenarioParams{
			NumSites:      int(sites),
			NumItems:      int(items),
			CopiesPerItem: int(copies),
			ItemsPerTxn:   int(writes),
			MaxGroups:     int(groups),
			VotePhasePct:  int(votePct),
		}
		if params.NumSites > 12 || params.NumItems > 6 {
			t.Skip("keep replay cost bounded")
		}
		sc, err := GenerateScenario(params, seed)
		if err != nil {
			t.Skip("invalid params")
		}
		assertEngineAgreement(t, sc, "fuzz")
	})
}

// TestAnalyticResidualGroup covers hand-built scenarios whose Partition
// does not list every replica-holding site: simnet lumps unlisted sites
// into an implicit residual group, and the analytic engine must model that
// population rather than treating those sites as down.
func TestAnalyticResidualGroup(t *testing.T) {
	params := DefaultScenarioParams()
	for seed := int64(1); seed <= 20; seed++ {
		sc, err := GenerateScenario(params, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Drop the last partition group: its sites (participants included)
		// now belong to the residual group.
		sc.Partition = sc.Partition[:len(sc.Partition)-1]
		assertEngineAgreement(t, sc, fmt.Sprintf("residual/seed%d", seed))
	}
	// Degenerate cut: no partition groups listed at all — every up site
	// lands in one residual group.
	sc, err := GenerateScenario(params, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc.Partition = nil
	assertEngineAgreement(t, sc, "residual/none")
}

// TestMonteCarloEnginesMatch checks the aggregated sweep: both engines,
// serial and parallel, produce identical MCResult slices.
func TestMonteCarloEnginesMatch(t *testing.T) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	const trials = 80
	want, err := MonteCarlo(params, trials, 11, builders, EngineReplay)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MonteCarlo(params, trials, 11, builders, EngineAnalytic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("serial analytic diverged from serial replay\ngot  %+v\nwant %+v", got, want)
	}
	for _, workers := range []int{2, 5} {
		gotPar, err := MonteCarloParallel(params, trials, 11, builders,
			MCOptions{Workers: workers, Engine: EngineAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotPar, want) {
			t.Errorf("parallel analytic (workers=%d) diverged from replay\ngot  %+v\nwant %+v", workers, gotPar, want)
		}
	}
}

// TestAnalyticRequiresDeciders pins the error path: an analytic run with a
// builder lacking a Decider must fail up front, serial and parallel alike.
func TestAnalyticRequiresDeciders(t *testing.T) {
	builders := StandardBuilders()[:1]
	builders[0].Decider = nil
	if _, err := MonteCarlo(DefaultScenarioParams(), 4, 1, builders, EngineAnalytic); err == nil {
		t.Error("serial analytic run without Decider succeeded")
	}
	if _, err := MonteCarloParallel(DefaultScenarioParams(), 100, 1, builders,
		MCOptions{Workers: 4, Engine: EngineAnalytic}); err == nil {
		t.Error("parallel analytic run without Decider succeeded")
	}
}
