package avail

import (
	"fmt"
	"math/rand"

	"qcommit/internal/engine"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// Scenario is one randomly drawn "interrupted commit" configuration: a
// replica placement, a transaction writeset, a mid-protocol cut (which
// participants had reached PC when the coordinator crashed), and a network
// partition. The same scenario is replayed under every protocol under test,
// so the comparison isolates the termination protocols' quorum rules.
type Scenario struct {
	Seed         int64
	Assignment   *voting.Assignment
	Writeset     types.Writeset
	Coord        types.SiteID
	Participants []types.SiteID
	States       map[types.SiteID]types.State
	Partition    [][]types.SiteID
}

// ScenarioParams controls random scenario generation.
type ScenarioParams struct {
	// NumSites is the total number of database sites.
	NumSites int
	// NumItems is the number of replicated data items in the database.
	NumItems int
	// CopiesPerItem is the replication degree of each item.
	CopiesPerItem int
	// ItemsPerTxn is how many items the analyzed transaction writes.
	ItemsPerTxn int
	// MaxGroups bounds the number of partition groups (≥2).
	MaxGroups int
	// VotePhasePct is the percentage (0–100) of scenarios where the
	// coordinator crashed during the *vote* phase, leaving some participants
	// still in the initial state q (every termination protocol can then
	// abort). The rest crash during PREPARE-TO-COMMIT distribution.
	VotePhasePct int
}

// DefaultScenarioParams mirrors the scale of the paper's examples: 8 sites,
// 4-way replication, transactions writing 2 items, up to 3-way partitions.
func DefaultScenarioParams() ScenarioParams {
	return ScenarioParams{NumSites: 8, NumItems: 4, CopiesPerItem: 4, ItemsPerTxn: 2, MaxGroups: 3, VotePhasePct: 25}
}

func (p ScenarioParams) validate() error {
	if p.NumSites < 2 || p.NumItems < 1 || p.CopiesPerItem < 1 || p.ItemsPerTxn < 1 || p.MaxGroups < 2 {
		return fmt.Errorf("avail: invalid scenario params %+v", p)
	}
	if p.VotePhasePct < 0 || p.VotePhasePct > 100 {
		return fmt.Errorf("avail: VotePhasePct %d outside 0-100", p.VotePhasePct)
	}
	if p.CopiesPerItem > p.NumSites {
		return fmt.Errorf("avail: CopiesPerItem %d exceeds NumSites %d", p.CopiesPerItem, p.NumSites)
	}
	if p.ItemsPerTxn > p.NumItems {
		return fmt.Errorf("avail: ItemsPerTxn %d exceeds NumItems %d", p.ItemsPerTxn, p.NumItems)
	}
	return nil
}

// GenerateScenario draws one scenario with the given seed. Generation is
// deterministic in (params, seed).
func GenerateScenario(params ScenarioParams, seed int64) (Scenario, error) {
	if err := params.validate(); err != nil {
		return Scenario{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed}

	sites := make([]types.SiteID, params.NumSites)
	for i := range sites {
		sites[i] = types.SiteID(i + 1)
	}

	// Random replica placement with majority quorums.
	r, w := voting.MajorityQuorums(params.CopiesPerItem)
	configs := make([]voting.ItemConfig, params.NumItems)
	for i := 0; i < params.NumItems; i++ {
		perm := rng.Perm(params.NumSites)
		holders := make([]types.SiteID, params.CopiesPerItem)
		for j := 0; j < params.CopiesPerItem; j++ {
			holders[j] = sites[perm[j]]
		}
		configs[i] = voting.Uniform(types.ItemID(fmt.Sprintf("item%d", i+1)), r, w, holders...)
	}
	asgn, err := voting.NewAssignment(configs...)
	if err != nil {
		return Scenario{}, err
	}
	sc.Assignment = asgn

	// Random writeset.
	itemPerm := rng.Perm(params.NumItems)
	for j := 0; j < params.ItemsPerTxn; j++ {
		item := types.ItemID(fmt.Sprintf("item%d", itemPerm[j]+1))
		sc.Writeset = append(sc.Writeset, types.Update{Item: item, Value: rng.Int63n(1000)})
	}
	sc.Participants = asgn.Participants(sc.Writeset.Items())
	sc.Coord = sc.Participants[rng.Intn(len(sc.Participants))]

	// Mid-protocol cut. With probability VotePhasePct% the coordinator
	// crashed during the vote phase (a random strict subset of participants
	// is still in q, the rest voted yes); otherwise it crashed partway
	// through distributing PREPARE-TO-COMMIT (a random prefix of a random
	// participant order is in PC, possibly none, possibly all).
	sc.States = make(map[types.SiteID]types.State, len(sc.Participants))
	for _, s := range sc.Participants {
		sc.States[s] = types.StateWait
	}
	cutPerm := rng.Perm(len(sc.Participants))
	if rng.Intn(100) < params.VotePhasePct {
		numQ := 1 + rng.Intn(len(sc.Participants))
		for j := 0; j < numQ; j++ {
			sc.States[sc.Participants[cutPerm[j]]] = types.StateInitial
		}
	} else {
		numPC := rng.Intn(len(sc.Participants) + 1)
		for j := 0; j < numPC; j++ {
			sc.States[sc.Participants[cutPerm[j]]] = types.StatePC
		}
	}

	// Random partition of all sites into 2..MaxGroups non-empty groups.
	numGroups := 2 + rng.Intn(params.MaxGroups-1)
	if numGroups > params.NumSites {
		numGroups = params.NumSites
	}
	perm := rng.Perm(params.NumSites)
	groups := make([][]types.SiteID, numGroups)
	for i, pi := range perm {
		g := i % numGroups // guarantees non-empty groups
		groups[g] = append(groups[g], sites[pi])
	}
	sc.Partition = groups
	return sc, nil
}

// SpecBuilder constructs a protocol spec for a scenario. Quorum-per-site
// protocols (Skeen's) need the participant list to size their quorums.
type SpecBuilder struct {
	// Label names the column in result tables.
	Label string
	// Build returns the spec for the given scenario.
	Build func(sc Scenario) protocol.Spec
}

// Replay runs one scenario under one protocol and returns the availability
// report plus any correctness violations (atomicity violations and
// store-level consistency issues).
func Replay(sc Scenario, spec protocol.Spec) (Report, []string) {
	cl := engine.New(engine.Config{
		Seed:       sc.Seed,
		Assignment: sc.Assignment,
		Spec:       spec,
	})
	txn := cl.SetupInterrupted(sc.Coord, sc.Writeset, sc.States)
	cl.Crash(sc.Coord)
	cl.Partition(sc.Partition...)
	cl.Run()
	violations := cl.Violations()
	violations = append(violations, cl.CheckStores()...)
	return Analyze(cl, txn), violations
}

// MCResult is the aggregate of one protocol column across all trials.
type MCResult struct {
	Label      string
	Trials     int
	Counts     Counts
	Violations int
}

// accumulate replays trial t (seeded seed+t) under every builder and adds
// the tallies into results. It is the shared per-trial kernel of the serial
// and parallel Monte Carlo paths: because trials are independently seeded
// and Counts aggregation is pure integer addition, replaying the same trial
// set in any arrangement produces identical results.
func accumulate(params ScenarioParams, seed int64, t int, builders []SpecBuilder, results []MCResult) error {
	sc, err := GenerateScenario(params, seed+int64(t))
	if err != nil {
		return err
	}
	for i, b := range builders {
		rep, violations := Replay(sc, b.Build(sc))
		results[i].Trials++
		results[i].Counts.Add(rep.Tally())
		results[i].Violations += len(violations)
	}
	return nil
}

// MonteCarlo replays Trials random scenarios under every builder and
// aggregates availability counts. All builders see identical scenarios.
// This serial path is the determinism oracle for MonteCarloParallel.
func MonteCarlo(params ScenarioParams, trials int, seed int64, builders []SpecBuilder) ([]MCResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	results := newMCResults(builders)
	for t := 0; t < trials; t++ {
		if err := accumulate(params, seed, t, builders, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func newMCResults(builders []SpecBuilder) []MCResult {
	results := make([]MCResult, len(builders))
	for i, b := range builders {
		results[i].Label = b.Label
	}
	return results
}

// FormatMCTable renders Monte Carlo results as an aligned text table.
func FormatMCTable(results []MCResult) string {
	s := fmt.Sprintf("%-8s %8s %12s %12s %12s %12s %10s\n",
		"protocol", "trials", "term-rate", "blocked", "read-avail", "write-avail", "violations")
	for _, r := range results {
		s += fmt.Sprintf("%-8s %8d %11.1f%% %12d %11.1f%% %11.1f%% %10d\n",
			r.Label, r.Trials,
			100*r.Counts.TerminationRate(), r.Counts.Blocked,
			100*r.Counts.ReadAvailability(), 100*r.Counts.WriteAvailability(),
			r.Violations)
	}
	return s
}
