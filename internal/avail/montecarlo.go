package avail

import (
	"fmt"
	"math/rand"
	"strings"

	"qcommit/internal/engine"
	"qcommit/internal/protocol"
	"qcommit/internal/quorumcalc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// Scenario is one randomly drawn "interrupted commit" configuration: a
// replica placement, a transaction writeset, a mid-protocol cut (which
// participants had reached PC when the coordinator crashed), and a network
// partition. The same scenario is replayed under every protocol under test,
// so the comparison isolates the termination protocols' quorum rules.
type Scenario struct {
	Seed       int64
	Assignment *voting.Assignment
	Writeset   types.Writeset
	// Items caches Writeset.Items() — the distinct written item IDs.
	Items        []types.ItemID
	Coord        types.SiteID
	Participants []types.SiteID
	States       map[types.SiteID]types.State
	Partition    [][]types.SiteID
}

// ScenarioParams controls random scenario generation.
type ScenarioParams struct {
	// NumSites is the total number of database sites.
	NumSites int
	// NumItems is the number of replicated data items in the database.
	NumItems int
	// CopiesPerItem is the replication degree of each item.
	CopiesPerItem int
	// ItemsPerTxn is how many items the analyzed transaction writes.
	ItemsPerTxn int
	// MaxGroups bounds the number of partition groups (≥2).
	MaxGroups int
	// VotePhasePct is the percentage (0–100) of scenarios where the
	// coordinator crashed during the *vote* phase, leaving some participants
	// still in the initial state q (every termination protocol can then
	// abort). The rest crash during PREPARE-TO-COMMIT distribution.
	VotePhasePct int
}

// DefaultScenarioParams mirrors the scale of the paper's examples: 8 sites,
// 4-way replication, transactions writing 2 items, up to 3-way partitions.
func DefaultScenarioParams() ScenarioParams {
	return ScenarioParams{NumSites: 8, NumItems: 4, CopiesPerItem: 4, ItemsPerTxn: 2, MaxGroups: 3, VotePhasePct: 25}
}

func (p ScenarioParams) validate() error {
	if p.NumSites < 2 || p.NumItems < 1 || p.CopiesPerItem < 1 || p.ItemsPerTxn < 1 || p.MaxGroups < 2 {
		return fmt.Errorf("avail: invalid scenario params %+v", p)
	}
	if p.VotePhasePct < 0 || p.VotePhasePct > 100 {
		return fmt.Errorf("avail: VotePhasePct %d outside 0-100", p.VotePhasePct)
	}
	if p.CopiesPerItem > p.NumSites {
		return fmt.Errorf("avail: CopiesPerItem %d exceeds NumSites %d", p.CopiesPerItem, p.NumSites)
	}
	if p.ItemsPerTxn > p.NumItems {
		return fmt.Errorf("avail: ItemsPerTxn %d exceeds NumItems %d", p.ItemsPerTxn, p.NumItems)
	}
	return nil
}

// ScenarioGen draws scenarios for one fixed ScenarioParams. It precomputes
// the item-name table and reuses permutation, replica and state scratch
// buffers across draws, so the per-trial allocation cost is dominated by the
// (trial-lived) vote assignment rather than generator bookkeeping.
//
// A generator is not safe for concurrent use, and each generated Scenario
// aliases the generator's buffers: it is valid only until the next Generate
// call. Use the standalone GenerateScenario for an independent, long-lived
// scenario.
type ScenarioGen struct {
	params    ScenarioParams
	src       rand.Source
	rng       *rand.Rand
	sites     []types.SiteID
	itemNames []types.ItemID
	r, w      int

	permBuf  []int
	copies   []voting.Copy
	configs  []voting.ItemConfig
	writeset types.Writeset
	states   map[types.SiteID]types.State
	groups   [][]types.SiteID
	groupBuf []types.SiteID
}

// NewScenarioGen validates params and builds a generator for them.
func NewScenarioGen(params ScenarioParams) (*ScenarioGen, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	g := &ScenarioGen{params: params, src: rand.NewSource(0)}
	g.rng = rand.New(g.src)
	g.sites = make([]types.SiteID, params.NumSites)
	for i := range g.sites {
		g.sites[i] = types.SiteID(i + 1)
	}
	g.itemNames = make([]types.ItemID, params.NumItems)
	for i := range g.itemNames {
		g.itemNames[i] = types.ItemID(fmt.Sprintf("item%d", i+1))
	}
	g.r, g.w = voting.MajorityQuorums(params.CopiesPerItem)
	permLen := params.NumSites
	if params.NumItems > permLen {
		permLen = params.NumItems
	}
	g.permBuf = make([]int, permLen)
	g.copies = make([]voting.Copy, params.NumItems*params.CopiesPerItem)
	g.configs = make([]voting.ItemConfig, params.NumItems)
	g.writeset = make(types.Writeset, 0, params.ItemsPerTxn)
	g.states = make(map[types.SiteID]types.State, params.NumSites)
	g.groups = make([][]types.SiteID, params.MaxGroups)
	g.groupBuf = make([]types.SiteID, params.NumSites)
	return g, nil
}

// perm fills the scratch buffer with a random permutation of 0..n-1,
// consuming exactly the random stream math/rand.(*Rand).Perm would, so
// generation stays bit-identical to the historical per-trial allocation.
func (g *ScenarioGen) perm(n int) []int {
	p := g.permBuf[:n]
	for i := 0; i < n; i++ {
		j := g.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Generate draws the scenario for the given seed. Generation is
// deterministic in (params, seed). The returned scenario aliases the
// generator's scratch buffers and is valid until the next Generate call.
func (g *ScenarioGen) Generate(seed int64) (Scenario, error) {
	params := g.params
	g.src.Seed(seed)
	rng := g.rng
	sc := Scenario{Seed: seed}

	// Random replica placement with majority quorums.
	for i := 0; i < params.NumItems; i++ {
		perm := g.perm(params.NumSites)
		copies := g.copies[i*params.CopiesPerItem : (i+1)*params.CopiesPerItem]
		for j := range copies {
			copies[j] = voting.Copy{Site: g.sites[perm[j]], Votes: 1}
		}
		g.configs[i] = voting.ItemConfig{Item: g.itemNames[i], Copies: copies, R: g.r, W: g.w}
	}
	asgn, err := voting.NewAssignment(g.configs...)
	if err != nil {
		return Scenario{}, err
	}
	sc.Assignment = asgn

	// Random writeset.
	itemPerm := g.perm(params.NumItems)
	g.writeset = g.writeset[:0]
	for j := 0; j < params.ItemsPerTxn; j++ {
		g.writeset = append(g.writeset, types.Update{Item: g.itemNames[itemPerm[j]], Value: rng.Int63n(1000)})
	}
	sc.Writeset = g.writeset
	sc.Items = sc.Writeset.Items()
	sc.Participants = asgn.Participants(sc.Items)
	sc.Coord = sc.Participants[rng.Intn(len(sc.Participants))]

	// Mid-protocol cut. With probability VotePhasePct% the coordinator
	// crashed during the vote phase (a random strict subset of participants
	// is still in q, the rest voted yes); otherwise it crashed partway
	// through distributing PREPARE-TO-COMMIT (a random prefix of a random
	// participant order is in PC, possibly none, possibly all).
	clear(g.states)
	sc.States = g.states
	for _, s := range sc.Participants {
		sc.States[s] = types.StateWait
	}
	cutPerm := g.perm(len(sc.Participants))
	if rng.Intn(100) < params.VotePhasePct {
		numQ := 1 + rng.Intn(len(sc.Participants))
		for j := 0; j < numQ; j++ {
			sc.States[sc.Participants[cutPerm[j]]] = types.StateInitial
		}
	} else {
		numPC := rng.Intn(len(sc.Participants) + 1)
		for j := 0; j < numPC; j++ {
			sc.States[sc.Participants[cutPerm[j]]] = types.StatePC
		}
	}

	// Random partition of all sites into 2..MaxGroups non-empty groups,
	// carved out of the group arena: round-robin assignment fixes each
	// group's size up front, so the per-group slices never reallocate.
	numGroups := 2 + rng.Intn(params.MaxGroups-1)
	if numGroups > params.NumSites {
		numGroups = params.NumSites
	}
	perm := g.perm(params.NumSites)
	groups := g.groups[:numGroups]
	offset := 0
	for gi := range groups {
		size := (params.NumSites - gi + numGroups - 1) / numGroups
		groups[gi] = g.groupBuf[offset : offset : offset+size]
		offset += size
	}
	for i, pi := range perm {
		gi := i % numGroups // guarantees non-empty groups
		groups[gi] = append(groups[gi], g.sites[pi])
	}
	sc.Partition = groups
	return sc, nil
}

// GenerateScenario draws one independent scenario with the given seed.
// Generation is deterministic in (params, seed). Callers drawing many
// scenarios should hold a ScenarioGen instead, which reuses scratch buffers
// across draws.
func GenerateScenario(params ScenarioParams, seed int64) (Scenario, error) {
	g, err := NewScenarioGen(params)
	if err != nil {
		return Scenario{}, err
	}
	return g.Generate(seed)
}

// Engine selects how a Monte Carlo trial is evaluated.
type Engine uint8

// Engines.
const (
	// EngineReplay replays every trial through the discrete-event simulator
	// (engine.New + termination automata). It is the oracle: it observes
	// violations from actual message ladders and supports arbitrary protocol
	// specs, at the cost of simulating every WAL append, election and
	// timeout.
	EngineReplay Engine = iota
	// EngineAnalytic computes each trial's Counts by pure quorum arithmetic
	// (package quorumcalc) — no simulation. Differential tests pin it
	// count-for-count to EngineReplay; it requires every SpecBuilder to
	// provide a Decider.
	EngineAnalytic
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == EngineAnalytic {
		return "analytic"
	}
	return "replay"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "replay":
		return EngineReplay, nil
	case "analytic":
		return EngineAnalytic, nil
	default:
		return 0, fmt.Errorf("avail: unknown engine %q (want \"replay\" or \"analytic\")", s)
	}
}

// SpecBuilder constructs a protocol spec for a scenario. Quorum-per-site
// protocols (Skeen's) need the participant list to size their quorums.
type SpecBuilder struct {
	// Label names the column in result tables.
	Label string
	// Build returns the spec for the given scenario (EngineReplay).
	Build func(sc Scenario) protocol.Spec
	// Decider returns the analytic decision kernel equivalent to Build's
	// termination automaton (EngineAnalytic). A nil Decider restricts the
	// builder to EngineReplay.
	Decider func(sc Scenario) quorumcalc.Decider
}

// Replay runs one scenario under one protocol through the discrete-event
// engine and returns the availability report plus any correctness violations
// (atomicity violations and store-level consistency issues).
func Replay(sc Scenario, spec protocol.Spec) (Report, []string) {
	cl := engine.New(engine.Config{
		Seed:       sc.Seed,
		Assignment: sc.Assignment,
		Spec:       spec,
	})
	txn := cl.SetupInterrupted(sc.Coord, sc.Writeset, sc.States)
	cl.Crash(sc.Coord)
	cl.Partition(sc.Partition...)
	cl.Run()
	violations := cl.Violations()
	violations = append(violations, cl.CheckStores()...)
	return Analyze(cl, txn), violations
}

// MCResult is the aggregate of one protocol column across all trials.
type MCResult struct {
	Label      string
	Trials     int
	Counts     Counts
	Violations int
}

// trialRunner is the shared per-trial kernel of the serial and parallel
// Monte Carlo paths: it generates trial t (seeded seed+t) and evaluates it
// under every builder with the selected engine, adding the tallies into
// results. Because trials are independently seeded and Counts aggregation is
// pure integer addition, evaluating the same trial set in any arrangement
// produces identical results. A trialRunner owns scratch state (generator
// buffers, analytic tallies) and must not be shared between goroutines.
type trialRunner struct {
	gen      *ScenarioGen
	builders []SpecBuilder
	engine   Engine
	eval     *analyticEval // scratch for EngineAnalytic
	deciders []quorumcalc.Decider
}

func newTrialRunner(params ScenarioParams, builders []SpecBuilder, eng Engine) (*trialRunner, error) {
	gen, err := NewScenarioGen(params)
	if err != nil {
		return nil, err
	}
	r := &trialRunner{gen: gen, builders: builders, engine: eng}
	if eng == EngineAnalytic {
		for i, b := range builders {
			if b.Decider == nil {
				return nil, fmt.Errorf("avail: builder %d (%q) has no analytic Decider; use EngineReplay", i, b.Label)
			}
		}
		r.eval = newAnalyticEval()
		r.deciders = make([]quorumcalc.Decider, len(builders))
	}
	return r, nil
}

// accumulate evaluates trial t into results.
func (r *trialRunner) accumulate(seed int64, t int, results []MCResult) error {
	sc, err := r.gen.Generate(seed + int64(t))
	if err != nil {
		return err
	}
	if r.engine == EngineAnalytic {
		for i, b := range r.builders {
			r.deciders[i] = b.Decider(sc)
		}
		r.eval.run(sc, r.deciders, results)
		return nil
	}
	for i, b := range r.builders {
		rep, violations := Replay(sc, b.Build(sc))
		results[i].Trials++
		results[i].Counts.Add(rep.Tally())
		results[i].Violations += len(violations)
	}
	return nil
}

// MonteCarlo evaluates Trials random scenarios under every builder with the
// selected engine and aggregates availability counts. All builders see
// identical scenarios. This serial path is the determinism oracle for
// MonteCarloParallel; with EngineReplay it is also the correctness oracle
// for EngineAnalytic.
func MonteCarlo(params ScenarioParams, trials int, seed int64, builders []SpecBuilder, eng Engine) ([]MCResult, error) {
	runner, err := newTrialRunner(params, builders, eng)
	if err != nil {
		return nil, err
	}
	results := newMCResults(builders)
	for t := 0; t < trials; t++ {
		if err := runner.accumulate(seed, t, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func newMCResults(builders []SpecBuilder) []MCResult {
	results := make([]MCResult, len(builders))
	for i, b := range builders {
		results[i].Label = b.Label
	}
	return results
}

// FormatMCTable renders Monte Carlo results as an aligned text table.
func FormatMCTable(results []MCResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s %12s %10s\n",
		"protocol", "trials", "term-rate", "blocked", "read-avail", "write-avail", "violations")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8s %8d %11.1f%% %12d %11.1f%% %11.1f%% %10d\n",
			r.Label, r.Trials,
			100*r.Counts.TerminationRate(), r.Counts.Blocked,
			100*r.Counts.ReadAvailability(), 100*r.Counts.WriteAvailability(),
			r.Violations)
	}
	return b.String()
}
