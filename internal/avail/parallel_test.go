package avail

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// TestMonteCarloParallelMatchesSerial is the tentpole determinism contract:
// for every tested worker count the parallel engine returns MCResults
// bit-for-bit identical to the serial oracle.
func TestMonteCarloParallelMatchesSerial(t *testing.T) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	const trials = 60
	want, err := MonteCarlo(params, trials, 1, builders, EngineReplay)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		got, err := MonteCarloParallel(params, trials, 1, builders, MCOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel diverged from serial\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestMonteCarloParallelRace exercises the pool under the race detector
// (run via go test -race) with more workers than chunks and a progress
// callback mutating shared state.
func TestMonteCarloParallelRace(t *testing.T) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	var mu sync.Mutex
	var calls int
	last := 0
	res, err := MonteCarloParallel(params, 40, 9, builders, MCOptions{
		Workers: 8,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != 40 {
				t.Errorf("progress total = %d, want 40", total)
			}
			if done < last || done > total {
				t.Errorf("progress done = %d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
	if last != 40 {
		t.Errorf("final progress %d, want 40", last)
	}
	for _, r := range res {
		if r.Trials != 40 {
			t.Errorf("%s: trials = %d, want 40", r.Label, r.Trials)
		}
	}
}

func TestMonteCarloParallelEdgeCases(t *testing.T) {
	builders := StandardBuilders()
	// Zero trials: empty but labeled results, no error.
	res, err := MonteCarloParallel(DefaultScenarioParams(), 0, 1, builders, MCOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(builders) || res[0].Trials != 0 {
		t.Errorf("zero-trial results malformed: %+v", res)
	}
	// Invalid params surface the validation error, as the serial path does.
	bad := DefaultScenarioParams()
	bad.VotePhasePct = 150
	if _, err := MonteCarloParallel(bad, 10, 1, builders, MCOptions{}); err == nil {
		t.Error("VotePhasePct=150 accepted by parallel path")
	}
	if _, err := MonteCarlo(bad, 10, 1, builders, EngineReplay); err == nil {
		t.Error("VotePhasePct=150 accepted by serial path")
	}
	// Default worker count (0 → GOMAXPROCS) still matches serial.
	want, err := MonteCarlo(DefaultScenarioParams(), 20, 3, builders, EngineReplay)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MonteCarloParallel(DefaultScenarioParams(), 20, 3, builders, MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("default worker count diverged from serial")
	}
}
