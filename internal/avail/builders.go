package avail

import (
	"qcommit/internal/core"
	"qcommit/internal/protocol"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
)

// StandardBuilders returns the five protocol columns every comparison table
// in EXPERIMENTS.md uses: 2PC, 3PC (site-failure termination), Skeen's
// quorum protocol with majority site-vote quorums over the participants, and
// the paper's protocols 1 and 2.
func StandardBuilders() []SpecBuilder {
	return []SpecBuilder{
		{Label: "2PC", Build: func(Scenario) protocol.Spec { return twopc.Spec{} }},
		{Label: "3PC", Build: func(Scenario) protocol.Spec { return threepc.Spec{} }},
		{Label: "SkeenQ", Build: func(sc Scenario) protocol.Spec {
			v := len(sc.Participants)
			vc := v/2 + 1
			va := v + 1 - vc
			return skeenq.Uniform(sc.Participants, vc, va)
		}},
		{Label: "QC1", Build: func(Scenario) protocol.Spec { return core.Spec{Variant: core.Protocol1} }},
		{Label: "QC2", Build: func(Scenario) protocol.Spec { return core.Spec{Variant: core.Protocol2} }},
	}
}
