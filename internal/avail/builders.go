package avail

import (
	"qcommit/internal/core"
	"qcommit/internal/protocol"
	"qcommit/internal/quorumcalc"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
)

// skeenQuorums sizes Skeen's site-vote quorums for a scenario: one vote per
// participant, majority commit quorum, minimal intersecting abort quorum.
func skeenQuorums(sc Scenario) (vc, va int) {
	v := len(sc.Participants)
	vc = v/2 + 1
	va = v + 1 - vc
	return vc, va
}

// StandardBuilders returns the five protocol columns every comparison table
// in EXPERIMENTS.md uses: 2PC, 3PC (site-failure termination), Skeen's
// quorum protocol with majority site-vote quorums over the participants, and
// the paper's protocols 1 and 2. Each builder carries both evaluation
// engines: Build constructs the automata for engine replay, Decider the
// equivalent analytic quorum kernel.
func StandardBuilders() []SpecBuilder {
	return []SpecBuilder{
		{
			Label:   "2PC",
			Build:   func(Scenario) protocol.Spec { return twopc.Spec{} },
			Decider: func(Scenario) quorumcalc.Decider { return quorumcalc.TwoPC() },
		},
		{
			Label:   "3PC",
			Build:   func(Scenario) protocol.Spec { return threepc.Spec{} },
			Decider: func(Scenario) quorumcalc.Decider { return quorumcalc.ThreePC() },
		},
		{
			Label: "SkeenQ",
			Build: func(sc Scenario) protocol.Spec {
				vc, va := skeenQuorums(sc)
				return skeenq.Uniform(sc.Participants, vc, va)
			},
			Decider: func(sc Scenario) quorumcalc.Decider {
				return quorumcalc.SkeenUniform(skeenQuorums(sc))
			},
		},
		{
			Label: "QC1",
			Build: func(Scenario) protocol.Spec { return core.Spec{Variant: core.Protocol1} },
			Decider: func(sc Scenario) quorumcalc.Decider {
				return quorumcalc.TP1(sc.Items)
			},
		},
		{
			Label: "QC2",
			Build: func(Scenario) protocol.Spec { return core.Spec{Variant: core.Protocol2} },
			Decider: func(sc Scenario) quorumcalc.Decider {
				return quorumcalc.TP2(sc.Items)
			},
		},
	}
}
