// Package avail measures data availability — the paper's figure of merit.
//
// Two factors reduce the availability of data items when failures interrupt
// a commit procedure:
//
//  1. data items locked by blocked transactions are inaccessible until the
//     failure recovers (the termination protocol's fault), and
//  2. a partition lacking a replica quorum for an item cannot serve it even
//     when the transaction terminated there (the partition-processing
//     strategy's fault).
//
// Analyze computes, for a cluster after a termination attempt, per-partition
// and per-item read/write accessibility under both factors, so protocols can
// be compared exactly the way the paper's Examples 1 and 4 compare Skeen's
// quorum protocol against termination protocol 1.
package avail

import (
	"fmt"
	"sort"
	"strings"

	"qcommit/internal/engine"
	"qcommit/internal/types"
)

// ItemAccess is the accessibility of one item in one partition group.
type ItemAccess struct {
	Item  types.ItemID
	Group int
	// Sites are the up sites of the group holding copies of the item.
	Sites []types.SiteID
	// VotesPresent counts replica votes of the item held by up sites in the
	// group; VotesFree counts those not locked by the analyzed transaction.
	VotesPresent int
	VotesFree    int
	// Readable/Writable report whether the free votes reach r(x)/w(x).
	Readable bool
	Writable bool
}

// GroupReport is the per-partition-group slice of a Report.
type GroupReport struct {
	Group   int
	Sites   []types.SiteID // up sites in the group
	Outcome types.Outcome  // transaction fate in this group
	Items   []ItemAccess
}

// Report is the availability analysis of one transaction's aftermath.
type Report struct {
	Txn      types.TxnID
	Protocol string
	Groups   []GroupReport
}

// Analyze inspects the cluster's current partition structure, lock tables
// and WAL-derived outcomes.
func Analyze(cl *engine.Cluster, txn types.TxnID) Report {
	rep := Report{Txn: txn, Protocol: cl.Spec().Name()}
	asgn := cl.Assignment()
	for gi, group := range cl.Network().Groups() {
		var up []types.SiteID
		for _, id := range group {
			if !cl.Network().Down(id) {
				up = append(up, id)
			}
		}
		gr := GroupReport{Group: gi, Sites: up, Outcome: cl.GroupOutcome(txn, up)}
		for _, item := range asgn.Items() {
			ia := ItemAccess{Item: item, Group: gi}
			for _, id := range up {
				votes := asgn.VotesAt(id, item)
				if votes == 0 {
					continue
				}
				ia.Sites = append(ia.Sites, id)
				ia.VotesPresent += votes
				if !cl.Site(id).Locks().LockedBy(txn, item) {
					ia.VotesFree += votes
				}
			}
			ia.Readable = ia.VotesFree >= asgn.ReadQuorum(item)
			ia.Writable = ia.VotesFree >= asgn.WriteQuorum(item)
			gr.Items = append(gr.Items, ia)
		}
		rep.Groups = append(rep.Groups, gr)
	}
	return rep
}

// Counts aggregates a report into the scalar metrics the Monte Carlo sweep
// tabulates.
type Counts struct {
	// Groups is the number of partition groups with ≥1 up site.
	Groups int
	// GroupsWithParticipants is the number of groups containing a site that
	// voted on the transaction.
	GroupsWithParticipants int
	// Terminated counts groups (with participants) where the transaction
	// committed or aborted; Blocked counts groups where it blocked.
	Terminated int
	Blocked    int
	// ItemGroupPairs counts (item, group) pairs where the group holds ≥1
	// copy of the item; Readable/Writable count pairs accessible after the
	// termination attempt.
	ItemGroupPairs int
	Readable       int
	Writable       int
}

// Tally computes Counts from a report.
func (r Report) Tally() Counts {
	var c Counts
	for _, g := range r.Groups {
		if len(g.Sites) == 0 {
			continue
		}
		c.Groups++
		switch g.Outcome {
		case types.OutcomeCommitted, types.OutcomeAborted:
			c.GroupsWithParticipants++
			c.Terminated++
		case types.OutcomeBlocked:
			c.GroupsWithParticipants++
			c.Blocked++
		}
		for _, ia := range g.Items {
			if ia.VotesPresent == 0 {
				continue
			}
			c.ItemGroupPairs++
			if ia.Readable {
				c.Readable++
			}
			if ia.Writable {
				c.Writable++
			}
		}
	}
	return c
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Groups += other.Groups
	c.GroupsWithParticipants += other.GroupsWithParticipants
	c.Terminated += other.Terminated
	c.Blocked += other.Blocked
	c.ItemGroupPairs += other.ItemGroupPairs
	c.Readable += other.Readable
	c.Writable += other.Writable
}

// TerminationRate is the fraction of participant-holding groups that
// terminated (rather than blocked) the transaction.
func (c Counts) TerminationRate() float64 {
	if c.GroupsWithParticipants == 0 {
		return 0
	}
	return float64(c.Terminated) / float64(c.GroupsWithParticipants)
}

// ReadAvailability is the fraction of (item, group) pairs readable after the
// termination attempt.
func (c Counts) ReadAvailability() float64 {
	if c.ItemGroupPairs == 0 {
		return 0
	}
	return float64(c.Readable) / float64(c.ItemGroupPairs)
}

// WriteAvailability is the fraction of (item, group) pairs writable after
// the termination attempt.
func (c Counts) WriteAvailability() float64 {
	if c.ItemGroupPairs == 0 {
		return 0
	}
	return float64(c.Writable) / float64(c.ItemGroupPairs)
}

// String renders the report as the per-partition table used by the figures
// tool (Examples 1 and 4 reproduction).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s, transaction %s\n", r.Protocol, r.Txn)
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  G%d %v: outcome=%s\n", g.Group+1, siteList(g.Sites), g.Outcome)
		for _, ia := range g.Items {
			if ia.VotesPresent == 0 {
				continue
			}
			fmt.Fprintf(&b, "    item %-4s votes=%d free=%d read=%v write=%v\n",
				ia.Item, ia.VotesPresent, ia.VotesFree, ia.Readable, ia.Writable)
		}
	}
	return b.String()
}

func siteList(ss []types.SiteID) string {
	sorted := append([]types.SiteID(nil), ss...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, len(sorted))
	for i, s := range sorted {
		parts[i] = s.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
