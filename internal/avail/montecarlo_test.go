package avail

import (
	"reflect"
	"strings"
	"testing"

	"qcommit/internal/types"
)

func TestGenerateScenarioDeterminism(t *testing.T) {
	p := DefaultScenarioParams()
	a, err := GenerateScenario(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScenario(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Writeset, b.Writeset) || a.Coord != b.Coord ||
		!reflect.DeepEqual(a.States, b.States) || !reflect.DeepEqual(a.Partition, b.Partition) {
		t.Error("same seed produced different scenarios")
	}
	c, err := GenerateScenario(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.States, c.States) && reflect.DeepEqual(a.Partition, c.Partition) {
		t.Error("different seeds produced identical scenarios (suspicious)")
	}
}

func TestGenerateScenarioShape(t *testing.T) {
	p := DefaultScenarioParams()
	for seed := int64(1); seed <= 50; seed++ {
		sc, err := GenerateScenario(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Writeset) != p.ItemsPerTxn {
			t.Fatalf("seed %d: writeset size %d", seed, len(sc.Writeset))
		}
		// The coordinator is a participant.
		found := false
		for _, s := range sc.Participants {
			if s == sc.Coord {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: coordinator not a participant", seed)
		}
		// Every participant has a state; every state is legal for a cut.
		for _, s := range sc.Participants {
			st, ok := sc.States[s]
			if !ok {
				t.Fatalf("seed %d: participant %v has no state", seed, s)
			}
			if st != types.StateWait && st != types.StatePC && st != types.StateInitial {
				t.Fatalf("seed %d: illegal cut state %v", seed, st)
			}
		}
		// Partition covers all sites exactly once, with non-empty groups.
		seen := make(map[types.SiteID]int)
		for _, g := range sc.Partition {
			if len(g) == 0 {
				t.Fatalf("seed %d: empty partition group", seed)
			}
			for _, s := range g {
				seen[s]++
			}
		}
		if len(seen) != p.NumSites {
			t.Fatalf("seed %d: partition covers %d sites, want %d", seed, len(seen), p.NumSites)
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: site %v in %d groups", seed, s, n)
			}
		}
		// A vote-phase cut never mixes q with PC (the coordinator cannot
		// have sent PREPARE-TO-COMMIT before collecting all votes).
		hasQ, hasPC := false, false
		for _, st := range sc.States {
			if st == types.StateInitial {
				hasQ = true
			}
			if st == types.StatePC {
				hasPC = true
			}
		}
		if hasQ && hasPC {
			t.Fatalf("seed %d: illegal global cut with both q and PC", seed)
		}
	}
}

func TestGenerateScenarioValidation(t *testing.T) {
	bad := []ScenarioParams{
		{NumSites: 1, NumItems: 1, CopiesPerItem: 1, ItemsPerTxn: 1, MaxGroups: 2},
		{NumSites: 4, NumItems: 1, CopiesPerItem: 5, ItemsPerTxn: 1, MaxGroups: 2},
		{NumSites: 4, NumItems: 1, CopiesPerItem: 2, ItemsPerTxn: 2, MaxGroups: 2},
		{NumSites: 4, NumItems: 1, CopiesPerItem: 2, ItemsPerTxn: 1, MaxGroups: 1},
		{NumSites: 4, NumItems: 1, CopiesPerItem: 2, ItemsPerTxn: 1, MaxGroups: 2, VotePhasePct: -5},
		{NumSites: 4, NumItems: 1, CopiesPerItem: 2, ItemsPerTxn: 1, MaxGroups: 2, VotePhasePct: 150},
	}
	for i, p := range bad {
		if _, err := GenerateScenario(p, 1); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestReplayIsolatesScenario(t *testing.T) {
	// Replaying the same scenario twice under the same protocol gives
	// identical availability counts (full determinism end to end).
	sc, err := GenerateScenario(DefaultScenarioParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	builders := StandardBuilders()
	r1, _ := Replay(sc, builders[3].Build(sc))
	r2, _ := Replay(sc, builders[3].Build(sc))
	if !reflect.DeepEqual(r1.Tally(), r2.Tally()) {
		t.Error("same scenario+protocol produced different tallies")
	}
}

func TestFormatMCTable(t *testing.T) {
	results := []MCResult{{Label: "QC1", Trials: 10, Counts: Counts{
		GroupsWithParticipants: 20, Terminated: 15, Blocked: 5,
		ItemGroupPairs: 40, Readable: 30, Writable: 10,
	}}}
	out := FormatMCTable(results)
	for _, want := range []string{"QC1", "75.0%", "protocol"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
