package avail

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MCOptions tunes MonteCarloParallel.
type MCOptions struct {
	// Workers is the number of goroutines evaluating trials. Zero or negative
	// means runtime.GOMAXPROCS(0).
	Workers int
	// Engine selects trial evaluation: EngineReplay (the default, full
	// discrete-event simulation) or EngineAnalytic (pure quorum arithmetic,
	// differentially validated against replay).
	Engine Engine
	// Progress, if non-nil, is called as chunks of trials complete with the
	// number of trials finished so far and the total. Calls are serialized
	// (the callback need not be goroutine-safe) and done is nondecreasing.
	Progress func(done, total int)
}

// chunkSize bounds how many trials a worker claims at once: small enough to
// load-balance and keep progress reports frequent, large enough that the
// claim counter is not contended.
const chunkSize = 16

// MonteCarloParallel is the worker-pool version of MonteCarlo: it fans the
// trials out across opts.Workers goroutines and merges the per-chunk
// accumulators in ascending trial order. Because every trial is
// independently seeded (seed+t) and evaluated hermetically, the result is
// bit-for-bit identical to the serial MonteCarlo for any worker count and
// either engine.
func MonteCarloParallel(params ScenarioParams, trials int, seed int64, builders []SpecBuilder, opts MCOptions) ([]MCResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		// One worker is exactly the serial path; skip the pool machinery.
		runner, err := newTrialRunner(params, builders, opts.Engine)
		if err != nil {
			return nil, err
		}
		results := newMCResults(builders)
		for t := 0; t < trials; t++ {
			if err := runner.accumulate(seed, t, results); err != nil {
				return nil, err
			}
			if opts.Progress != nil {
				opts.Progress(t+1, trials)
			}
		}
		return results, nil
	}

	// Per-worker scratch (scenario generator buffers, analytic tallies),
	// constructed before spawning so a misconfigured run fails up front.
	runners := make([]*trialRunner, workers)
	for w := range runners {
		runner, err := newTrialRunner(params, builders, opts.Engine)
		if err != nil {
			return nil, err
		}
		runners[w] = runner
	}

	// Workers claim contiguous chunks of trial indices from an atomic
	// counter; each chunk accumulates into its own slot so the merge below
	// can proceed in trial order regardless of completion order.
	numChunks := (trials + chunkSize - 1) / chunkSize
	chunks := make([][]MCResult, numChunks)
	errs := make([]error, numChunks)

	var next atomic.Int64
	var failed atomic.Bool
	var progressMu sync.Mutex // guards done and serializes Progress calls
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		runner := runners[w]
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= numChunks || failed.Load() {
					return
				}
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > trials {
					hi = trials
				}
				acc := newMCResults(builders)
				for t := lo; t < hi; t++ {
					if err := runner.accumulate(seed, t, acc); err != nil {
						errs[ci] = err
						failed.Store(true)
						return
					}
				}
				chunks[ci] = acc
				if opts.Progress != nil {
					progressMu.Lock()
					done += hi - lo
					opts.Progress(done, trials)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic merge by trial index: chunk ci covers trials
	// [ci*chunkSize, ...), so walking chunks in order replays the serial
	// aggregation order. On failure, report the error of the lowest failing
	// trial range, as the serial path would have.
	results := newMCResults(builders)
	for ci := 0; ci < numChunks; ci++ {
		if errs[ci] != nil {
			return nil, errs[ci]
		}
		if chunks[ci] == nil {
			// A later worker raced past a failed chunk; the error is ahead.
			continue
		}
		for i := range results {
			results[i].Trials += chunks[ci][i].Trials
			results[i].Counts.Add(chunks[ci][i].Counts)
			results[i].Violations += chunks[ci][i].Violations
		}
	}
	return results, nil
}
