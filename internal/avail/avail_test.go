package avail

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/engine"
	"qcommit/internal/skeenq"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func example1Cluster(t *testing.T, specName string) (*engine.Cluster, types.TxnID) {
	t.Helper()
	asgn := voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	)
	var cl *engine.Cluster
	switch specName {
	case "SkeenQ":
		cl = engine.New(engine.Config{Seed: 1, Assignment: asgn,
			Spec: skeenq.Uniform([]types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}, 5, 4)})
	case "QC1":
		cl = engine.New(engine.Config{Seed: 1, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}})
	default:
		t.Fatalf("unknown spec %q", specName)
	}
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC,
		6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Partition([]types.SiteID{1, 2, 3}, []types.SiteID{4, 5}, []types.SiteID{6, 7, 8})
	cl.Run()
	return cl, txn
}

// TestExample1Accessibility checks the availability table of Example 1:
// under Skeen's quorum protocol every partition blocks, so x and y are
// inaccessible everywhere even though G1 has enough votes to read x and G3
// enough votes to write y.
func TestExample1Accessibility(t *testing.T) {
	cl, txn := example1Cluster(t, "SkeenQ")
	rep := Analyze(cl, txn)

	for _, g := range rep.Groups {
		if g.Outcome != types.OutcomeBlocked {
			t.Errorf("group %v outcome = %v, want blocked", g.Sites, g.Outcome)
		}
		for _, ia := range g.Items {
			if ia.VotesPresent == 0 {
				continue
			}
			if ia.Readable || ia.Writable {
				t.Errorf("group %d item %s accessible (r=%v w=%v), want inaccessible under SkeenQ",
					g.Group, ia.Item, ia.Readable, ia.Writable)
			}
		}
	}
	c := rep.Tally()
	if c.Terminated != 0 || c.Blocked != 3 {
		t.Errorf("tally = %+v, want 0 terminated / 3 blocked", c)
	}
}

// TestExample4Accessibility checks Example 4: under termination protocol 1
// G1 and G3 abort, making x readable in G1 (2 free votes ≥ r=2) and y
// writable in G3 (3 free votes ≥ w=3). G2 still blocks.
func TestExample4Accessibility(t *testing.T) {
	cl, txn := example1Cluster(t, "QC1")
	rep := Analyze(cl, txn)

	find := func(group int, item types.ItemID) ItemAccess {
		for _, g := range rep.Groups {
			if g.Group != group {
				continue
			}
			for _, ia := range g.Items {
				if ia.Item == item {
					return ia
				}
			}
		}
		t.Fatalf("no access entry for group %d item %s", group, item)
		return ItemAccess{}
	}

	// Group 0 = {site1(down), site2, site3}: x readable, not writable.
	x1 := find(0, "x")
	if !x1.Readable || x1.Writable {
		t.Errorf("G1 x: readable=%v writable=%v, want readable only (votes free=%d)", x1.Readable, x1.Writable, x1.VotesFree)
	}
	// Group 1 = {site4, site5}: blocked, x inaccessible.
	x2 := find(1, "x")
	if x2.Readable || x2.Writable {
		t.Errorf("G2 x: readable=%v writable=%v, want inaccessible", x2.Readable, x2.Writable)
	}
	// Group 2 = {site6, site7, site8}: y writable (3 ≥ w=3).
	y3 := find(2, "y")
	if !y3.Writable {
		t.Errorf("G3 y: writable=%v (free=%d), want writable", y3.Writable, y3.VotesFree)
	}
}

// TestMonteCarloOrdering runs the availability sweep and asserts the
// paper's comparative claims hold in aggregate: the paper's protocols
// terminate at least as often as Skeen's quorum protocol, which beats 2PC;
// and QC1/QC2 never violate atomicity while 3PC (under partitions) does.
func TestMonteCarloOrdering(t *testing.T) {
	results, err := MonteCarlo(DefaultScenarioParams(), 60, 12345, StandardBuilders(), EngineReplay)
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	byLabel := make(map[string]MCResult, len(results))
	for _, r := range results {
		byLabel[r.Label] = r
	}
	qc1 := byLabel["QC1"].Counts.TerminationRate()
	qc2 := byLabel["QC2"].Counts.TerminationRate()
	skq := byLabel["SkeenQ"].Counts.TerminationRate()
	twoPC := byLabel["2PC"].Counts.TerminationRate()

	if qc1 < skq {
		t.Errorf("QC1 termination rate %.3f < SkeenQ %.3f, paper claims the opposite", qc1, skq)
	}
	if qc2 < skq {
		t.Errorf("QC2 termination rate %.3f < SkeenQ %.3f, paper claims the opposite", qc2, skq)
	}
	if skq < twoPC {
		t.Errorf("SkeenQ termination rate %.3f < 2PC %.3f, unexpected", skq, twoPC)
	}
	for _, label := range []string{"2PC", "SkeenQ", "QC1", "QC2"} {
		if v := byLabel[label].Violations; v != 0 {
			t.Errorf("%s produced %d atomicity violations, want 0", label, v)
		}
	}
	if byLabel["3PC"].Violations == 0 {
		t.Logf("note: 3PC produced no violations in this sample (possible but unusual)")
	}
	t.Logf("\n%s", FormatMCTable(results))
}

// TestMonteCarloStress runs a larger randomized sweep with full correctness
// auditing (atomicity + store consistency on every replay); skipped in
// -short mode.
func TestMonteCarloStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped in -short mode")
	}
	params := ScenarioParams{
		NumSites: 10, NumItems: 5, CopiesPerItem: 5,
		ItemsPerTxn: 3, MaxGroups: 4, VotePhasePct: 30,
	}
	results, err := MonteCarlo(params, 150, 777, StandardBuilders(), EngineReplay)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Label == "3PC" {
			continue // expected to violate under partitions
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d violations across stress sweep", r.Label, r.Violations)
		}
	}
	byLabel := make(map[string]MCResult)
	for _, r := range results {
		byLabel[r.Label] = r
	}
	if byLabel["QC2"].Counts.TerminationRate() < byLabel["SkeenQ"].Counts.TerminationRate() {
		t.Error("QC2 lost to SkeenQ at 10-site scale")
	}
	t.Logf("\n%s", FormatMCTable(results))
}
