package avail

import (
	"fmt"
	"math"
	"strings"
)

// Z95 is the standard normal quantile for a two-sided 95% interval.
const Z95 = 1.959963984540054

// WilsonInterval returns the Wilson score interval [lo, hi] for a binomial
// proportion with the given successes out of trials, at critical value z
// (use Z95 for 95%). Unlike the normal approximation it stays inside [0, 1]
// and behaves sensibly near 0%, 100% and small trial counts. With trials ==
// 0 it returns the vacuous interval [0, 1].
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// The MCResult intervals below treat each group (or item-group pair) as an
// independent Bernoulli trial. Observations from the same scenario share a
// partition cut and so are positively correlated, which makes these
// intervals anticonservative (narrower than a scenario-clustered interval
// would be); read them as precision-of-the-pool, not strict 95% coverage.

// TerminationRateCI is the 95% Wilson interval around TerminationRate,
// treating each participant-holding partition group as one Bernoulli trial.
func (r MCResult) TerminationRateCI() (lo, hi float64) {
	return WilsonInterval(r.Counts.Terminated, r.Counts.GroupsWithParticipants, Z95)
}

// ReadAvailabilityCI is the 95% Wilson interval around ReadAvailability,
// treating each (item, group) pair as one Bernoulli trial.
func (r MCResult) ReadAvailabilityCI() (lo, hi float64) {
	return WilsonInterval(r.Counts.Readable, r.Counts.ItemGroupPairs, Z95)
}

// WriteAvailabilityCI is the 95% Wilson interval around WriteAvailability.
func (r MCResult) WriteAvailabilityCI() (lo, hi float64) {
	return WilsonInterval(r.Counts.Writable, r.Counts.ItemGroupPairs, Z95)
}

// FormatMCTableCI renders Monte Carlo results like FormatMCTable but with a
// 95% Wilson confidence interval after each rate column.
func FormatMCTableCI(results []MCResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %22s %8s %22s %22s %6s\n",
		"protocol", "trials", "term-rate [95% CI]", "blocked", "read-avail [95% CI]", "write-avail [95% CI]", "viol")
	for _, r := range results {
		tl, th := r.TerminationRateCI()
		rl, rh := r.ReadAvailabilityCI()
		wl, wh := r.WriteAvailabilityCI()
		fmt.Fprintf(&b, "%-8s %7d %6.1f%% [%5.1f,%5.1f]%% %8d %6.1f%% [%5.1f,%5.1f]%% %6.1f%% [%5.1f,%5.1f]%% %6d\n",
			r.Label, r.Trials,
			100*r.Counts.TerminationRate(), 100*tl, 100*th,
			r.Counts.Blocked,
			100*r.Counts.ReadAvailability(), 100*rl, 100*rh,
			100*r.Counts.WriteAvailability(), 100*wl, 100*wh,
			r.Violations)
	}
	return b.String()
}
