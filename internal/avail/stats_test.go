package avail

import (
	"math"
	"strings"
	"testing"
)

func TestWilsonInterval(t *testing.T) {
	cases := []struct {
		successes, trials int
		lo, hi            float64 // reference values for the Wilson score interval
	}{
		{0, 0, 0, 1},
		{0, 10, 0, 0.2775},      // never negative at p=0
		{10, 10, 0.7225, 1},     // never above 1 at p=1
		{5, 10, 0.2366, 0.7634}, // symmetric at p=0.5
		{80, 100, 0.7112, 0.8667},
	}
	for _, c := range cases {
		lo, hi := WilsonInterval(c.successes, c.trials, Z95)
		if math.Abs(lo-c.lo) > 5e-4 || math.Abs(hi-c.hi) > 5e-4 {
			t.Errorf("Wilson(%d/%d) = [%.4f, %.4f], want [%.4f, %.4f]",
				c.successes, c.trials, lo, hi, c.lo, c.hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson(%d/%d) = [%.4f, %.4f] not a sub-interval of [0,1]",
				c.successes, c.trials, lo, hi)
		}
	}
}

func TestWilsonIntervalContainsPointEstimate(t *testing.T) {
	for trials := 1; trials <= 50; trials++ {
		for s := 0; s <= trials; s++ {
			lo, hi := WilsonInterval(s, trials, Z95)
			p := float64(s) / float64(trials)
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("Wilson(%d/%d) = [%f, %f] excludes p=%f", s, trials, lo, hi, p)
			}
		}
	}
}

func TestMCResultCIs(t *testing.T) {
	r := MCResult{Label: "QC1", Trials: 10, Counts: Counts{
		GroupsWithParticipants: 20, Terminated: 15, Blocked: 5,
		ItemGroupPairs: 40, Readable: 30, Writable: 10,
	}}
	lo, hi := r.TerminationRateCI()
	if !(lo < 0.75 && 0.75 < hi) {
		t.Errorf("termination CI [%f, %f] excludes 0.75", lo, hi)
	}
	lo, hi = r.ReadAvailabilityCI()
	if !(lo < 0.75 && 0.75 < hi) {
		t.Errorf("read CI [%f, %f] excludes 0.75", lo, hi)
	}
	lo, hi = r.WriteAvailabilityCI()
	if !(lo < 0.25 && 0.25 < hi) {
		t.Errorf("write CI [%f, %f] excludes 0.25", lo, hi)
	}
}

func TestFormatMCTableCI(t *testing.T) {
	results := []MCResult{{Label: "QC1", Trials: 10, Counts: Counts{
		GroupsWithParticipants: 20, Terminated: 15, Blocked: 5,
		ItemGroupPairs: 40, Readable: 30, Writable: 10,
	}}}
	out := FormatMCTableCI(results)
	for _, want := range []string{"QC1", "75.0%", "95% CI", "["} {
		if !strings.Contains(out, want) {
			t.Errorf("CI table missing %q:\n%s", want, out)
		}
	}
	// The narrower 40-trial read interval and wider 20-trial termination
	// interval should both be present and properly bracketed.
	if strings.Count(out, "[") < 4 {
		t.Errorf("expected bracketed intervals in every rate column:\n%s", out)
	}
}
