package avail

import (
	"fmt"
	"testing"
)

// benchTrials is the sweep size each benchmark iteration evaluates: large
// enough that worker-pool startup is amortized, small enough for quick runs.
const benchTrials = 64

// BenchmarkMonteCarlo measures the serial sweep under both evaluation
// engines. The replay case is the oracle baseline; the analytic case is the
// quorum-arithmetic fast path, which must beat it by ≥10× (it computes the
// same Counts — see the differential tests — without simulating WAL appends,
// elections or timeouts).
func BenchmarkMonteCarlo(b *testing.B) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	for _, eng := range []Engine{EngineReplay, EngineAnalytic} {
		b.Run(eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MonteCarlo(params, benchTrials, 1, builders, eng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkMonteCarloParallel measures the worker-pool sweep at several
// worker counts under both engines. Compare ns/op against BenchmarkMonteCarlo:
// replay scales with cores (per-trial simulation dominates); the analytic
// engine is so much cheaper per trial that pool overhead shows at small
// trial counts.
func BenchmarkMonteCarloParallel(b *testing.B) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	for _, eng := range []Engine{EngineReplay, EngineAnalytic} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", eng, workers), func(b *testing.B) {
				b.ReportAllocs()
				opts := MCOptions{Workers: workers, Engine: eng}
				for i := 0; i < b.N; i++ {
					if _, err := MonteCarloParallel(params, benchTrials, 1, builders, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
	}
}

// BenchmarkGenerateScenario contrasts the one-shot generator (a fresh
// ScenarioGen per draw — the historical allocation profile) with a reused
// generator (precomputed item names, recycled permutation/state/group
// scratch). allocs/op is the point of comparison.
func BenchmarkGenerateScenario(b *testing.B) {
	params := DefaultScenarioParams()
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := GenerateScenario(params, int64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		gen, err := NewScenarioGen(params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(int64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrial measures one scenario × one protocol (QC1) per iteration
// under each engine — the innermost unit of the sweep, free of generator
// and aggregation costs.
func BenchmarkTrial(b *testing.B) {
	var qc1 SpecBuilder
	for _, bl := range StandardBuilders() {
		if bl.Label == "QC1" {
			qc1 = bl
		}
	}
	if qc1.Build == nil {
		b.Fatal("QC1 builder not found")
	}
	sc, err := GenerateScenario(DefaultScenarioParams(), 7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, _ := Replay(sc, qc1.Build(sc))
			if rep.Tally().Groups == 0 {
				b.Fatal("empty tally")
			}
		}
	})
	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts, _ := AnalyzeAnalytic(sc, qc1.Decider(sc))
			if counts.Groups == 0 {
				b.Fatal("empty counts")
			}
		}
	})
}
