package avail

import (
	"fmt"
	"testing"
)

// benchTrials is the sweep size each benchmark iteration replays: large
// enough that worker-pool startup is amortized, small enough for quick runs.
const benchTrials = 64

// BenchmarkMonteCarlo measures the serial engine — the oracle baseline the
// parallel speedup is judged against.
func BenchmarkMonteCarlo(b *testing.B) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarlo(params, benchTrials, 1, builders); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloParallel measures the worker-pool engine at several
// worker counts on the default scenario params. Compare ns/op against
// BenchmarkMonteCarlo; on an 8-way machine the workers=8 case should run
// ≥3× faster than serial (per-trial scenario replay dominates, and trials
// are embarrassingly parallel).
func BenchmarkMonteCarloParallel(b *testing.B) {
	params := DefaultScenarioParams()
	builders := StandardBuilders()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MonteCarloParallel(params, benchTrials, 1, builders, MCOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
