package avail

import (
	"qcommit/internal/quorumcalc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// analyticEval computes Monte Carlo tallies for a scenario by pure quorum
// arithmetic, with no discrete-event simulation. It mirrors exactly what
// Replay + Analyze + Tally observe after the engine quiesces:
//
//   - the only down site is the crashed coordinator, so every other site of
//     a partition group is "up" and answers the termination poll;
//   - a group's termination outcome is a pure function of its initial state
//     tally (package quorumcalc);
//   - write locks are held by participants cut in W/PC/PA and released only
//     when the group's termination attempt commits or aborts;
//   - an (item, group) pair is readable/writable when the group's unlocked
//     replica votes reach r(x)/w(x);
//   - one atomicity violation is reported per trial whose groups terminate
//     inconsistently (some commit, some abort — 3PC's Example 2 behaviour);
//     the stores themselves stay consistent because only committed groups
//     apply the writeset.
//
// The group structure, replica placement and lock footprint are protocol
// independent, so they are computed once per scenario and shared across all
// deciders — work the replay engine repeats for every protocol column.
//
// The struct is scratch state reused across trials; it is not safe for
// concurrent use.
type analyticEval struct {
	tallies   []quorumcalc.Tally
	upCount   []int
	outcomes  []types.Outcome // [decider*numGroups + group]
	siteGroup []int32         // site ID → group index, -1 when down/absent
	holdsCopy []bool          // site ID → holds ≥1 replica (exists in the engine)
	present   []int           // per group: replica votes of the current item
	locked    []int           // per group: votes of those replicas still locked
}

func newAnalyticEval() *analyticEval { return &analyticEval{} }

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// run evaluates one scenario under every decider, adding the per-protocol
// tallies into results (one MCResult per decider, as accumulate does for
// replay).
func (e *analyticEval) run(sc Scenario, deciders []quorumcalc.Decider, results []MCResult) {
	// One tally slot per listed partition group, plus one for the implicit
	// residual group: simnet lumps sites not listed in any group into a
	// final group together, so replica-holding sites omitted from
	// sc.Partition still form a (connected) population in replay.
	ng := len(sc.Partition) + 1
	if cap(e.tallies) < ng {
		e.tallies = make([]quorumcalc.Tally, ng)
	}
	e.tallies = e.tallies[:ng]
	e.upCount = growInts(e.upCount, ng)
	e.present = growInts(e.present, ng)
	e.locked = growInts(e.locked, ng)
	if n := ng * len(deciders); cap(e.outcomes) < n {
		e.outcomes = make([]types.Outcome, n)
	} else {
		e.outcomes = e.outcomes[:n]
	}

	// Map sites to groups; the crashed coordinator maps nowhere (down).
	maxSite := types.SiteID(0)
	for _, group := range sc.Partition {
		for _, s := range group {
			if s > maxSite {
				maxSite = s
			}
		}
	}
	sc.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, cp := range ic.Copies {
			if cp.Site > maxSite {
				maxSite = cp.Site
			}
		}
	})
	if cap(e.siteGroup) < int(maxSite)+1 {
		e.siteGroup = make([]int32, int(maxSite)+1)
		e.holdsCopy = make([]bool, int(maxSite)+1)
	}
	e.siteGroup = e.siteGroup[:int(maxSite)+1]
	e.holdsCopy = e.holdsCopy[:int(maxSite)+1]
	for i := range e.siteGroup {
		e.siteGroup[i] = -1
		e.holdsCopy[i] = false
	}

	// The engine instantiates only the sites the assignment places replicas
	// at; a replica-less site is invisible to Analyze, so it must not count
	// toward a group's up-site population here either.
	sc.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, cp := range ic.Copies {
			e.holdsCopy[cp.Site] = true
		}
	})

	// Per-group state tally over up participants — the exact response set a
	// termination coordinator's phase-1 poll collects in that group.
	addSite := func(t *quorumcalc.Tally, gi int, s types.SiteID) {
		e.siteGroup[s] = int32(gi)
		if st, ok := sc.States[s]; ok {
			t.Add(s, st)
		}
	}
	for gi, group := range sc.Partition {
		t := &e.tallies[gi]
		t.Reset()
		up := 0
		for _, s := range group {
			if s == sc.Coord || !e.holdsCopy[s] {
				continue
			}
			addSite(t, gi, s)
			up++
		}
		e.upCount[gi] = up
	}
	// The residual group (replica-holding sites listed in no group) is the
	// last slot; for sweep-generated scenarios the partition covers every
	// site and the slot stays empty.
	rt := &e.tallies[ng-1]
	rt.Reset()
	up := 0
	for s := types.SiteID(1); s <= maxSite; s++ {
		if s == sc.Coord || !e.holdsCopy[s] || e.siteGroup[s] >= 0 {
			continue
		}
		addSite(rt, ng-1, s)
		up++
	}
	e.upCount[ng-1] = up

	// Termination outcome per (decider, group), plus the trial-level
	// counters Tally derives from group outcomes.
	for d, decide := range deciders {
		res := &results[d]
		anyCommit, anyAbort := false, false
		for gi := 0; gi < ng; gi++ {
			if e.upCount[gi] == 0 {
				e.outcomes[d*ng+gi] = types.OutcomeUnknown
				continue
			}
			out := decide(sc.Assignment, &e.tallies[gi])
			e.outcomes[d*ng+gi] = out
			res.Counts.Groups++
			switch out {
			case types.OutcomeCommitted:
				res.Counts.GroupsWithParticipants++
				res.Counts.Terminated++
				anyCommit = true
			case types.OutcomeAborted:
				res.Counts.GroupsWithParticipants++
				res.Counts.Terminated++
				anyAbort = true
			case types.OutcomeBlocked:
				res.Counts.GroupsWithParticipants++
				res.Counts.Blocked++
			}
		}
		if anyCommit && anyAbort {
			res.Violations++
		}
		res.Trials++
	}

	// Per-(item, group) accessibility. Replica presence and the lock
	// footprint are protocol independent; only "did the group terminate"
	// (locks released) differs per decider.
	sc.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for gi := 0; gi < ng; gi++ {
			e.present[gi] = 0
			e.locked[gi] = 0
		}
		written := sc.Writeset.Contains(ic.Item)
		for _, cp := range ic.Copies {
			gi := e.siteGroup[cp.Site]
			if gi < 0 {
				continue // the crashed coordinator serves nothing
			}
			e.present[gi] += cp.Votes
			if written {
				switch sc.States[cp.Site] {
				case types.StateWait, types.StatePC, types.StatePA:
					e.locked[gi] += cp.Votes
				}
			}
		}
		for gi := 0; gi < ng; gi++ {
			if e.present[gi] == 0 {
				continue
			}
			for d := range deciders {
				free := e.present[gi]
				switch e.outcomes[d*ng+gi] {
				case types.OutcomeCommitted, types.OutcomeAborted:
					// Terminated: every lock in the group was released.
				default:
					free -= e.locked[gi]
				}
				results[d].Counts.ItemGroupPairs++
				if free >= ic.R {
					results[d].Counts.Readable++
				}
				if free >= ic.W {
					results[d].Counts.Writable++
				}
			}
		}
	})
}

// AnalyzeAnalytic computes, for one scenario under one protocol decider, the
// Counts and violation count that Replay + Analyze + Tally would produce —
// without running the discrete-event engine. The differential test suite
// asserts the equivalence against the replay oracle.
func AnalyzeAnalytic(sc Scenario, d quorumcalc.Decider) (Counts, int) {
	results := make([]MCResult, 1)
	newAnalyticEval().run(sc, []quorumcalc.Decider{d}, results)
	return results[0].Counts, results[0].Violations
}
