package election

import (
	"math/rand"
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// harness wires election FSMs to a simulated network directly, without the
// full engine, so the election protocol is tested in isolation.
type harness struct {
	sched *sim.Scheduler
	net   *simnet.Network
	fsms  map[types.SiteID]*FSM
	asgn  *voting.Assignment
	won   map[types.SiteID]bool
	retry map[types.SiteID]int
}

type testEnv struct {
	h    *harness
	self types.SiteID
}

func (e *testEnv) Self() types.SiteID                  { return e.self }
func (e *testEnv) Now() sim.Time                       { return e.h.sched.Now() }
func (e *testEnv) T() sim.Duration                     { return 10 * sim.Millisecond }
func (e *testEnv) Assignment() *voting.Assignment      { return e.h.asgn }
func (e *testEnv) Send(to types.SiteID, m msg.Message) { e.h.net.Send(e.self, to, m) }
func (e *testEnv) SetTimer(d sim.Duration, token int) {
	self := e.self
	e.h.sched.After(d, func() {
		if f := e.h.fsms[self]; f != nil {
			f.OnTimer(token, e)
		}
	})
}
func (e *testEnv) Append(wal.Record)              {}
func (e *testEnv) Commit(types.TxnID)             {}
func (e *testEnv) Abort(types.TxnID)              {}
func (e *testEnv) Block(types.TxnID)              {}
func (e *testEnv) RequestTermination(types.TxnID) {}
func (e *testEnv) TerminatorDone(types.TxnID)     {}
func (e *testEnv) AcquireLocks(types.TxnID) bool  { return true }
func (e *testEnv) Tracef(string, ...any)          {}

var _ protocol.Env = (*testEnv)(nil)

func newHarness(t *testing.T, seed int64, sites []types.SiteID) *harness {
	t.Helper()
	h := &harness{
		sched: sim.NewScheduler(seed),
		fsms:  make(map[types.SiteID]*FSM),
		won:   make(map[types.SiteID]bool),
		retry: make(map[types.SiteID]int),
	}
	h.net = simnet.New(h.sched, simnet.DefaultConfig())
	r, w := voting.MajorityQuorums(len(sites))
	h.asgn = voting.MustAssignment(voting.Uniform("x", r, w, sites...))
	for _, id := range sites {
		id := id
		h.net.Register(id, func(e msg.Envelope) {
			if f := h.fsms[id]; f != nil {
				f.OnMessage(e.From, e.Msg, &testEnv{h: h, self: id})
			}
		})
		f := New(1, id, sites, 0)
		f.OnElected = func(uint32) { h.won[id] = true }
		f.OnRetry = func() { h.retry[id]++ }
		h.fsms[id] = f
	}
	return h
}

func (h *harness) startAll() {
	for id, f := range h.fsms {
		id := id
		f := f
		h.sched.At(0, func() { f.Start(&testEnv{h: h, self: id}) })
	}
}

func TestLowestSiteWins(t *testing.T) {
	sites := []types.SiteID{1, 2, 3, 4}
	h := newHarness(t, 1, sites)
	h.startAll()
	h.sched.Run()
	if !h.won[1] {
		t.Error("site1 (lowest) should win")
	}
	for _, id := range []types.SiteID{2, 3, 4} {
		if h.won[id] {
			t.Errorf("site%d should defer", id)
		}
	}
}

func TestWinnerAfterLowestCrashes(t *testing.T) {
	sites := []types.SiteID{1, 2, 3, 4}
	h := newHarness(t, 2, sites)
	h.net.Crash(1)
	delete(h.fsms, 1)
	h.startAll()
	h.sched.Run()
	if !h.won[2] {
		t.Error("site2 should win when site1 is down")
	}
	if h.won[3] || h.won[4] {
		t.Error("higher sites should defer to site2")
	}
}

func TestOneWinnerPerPartition(t *testing.T) {
	sites := []types.SiteID{1, 2, 3, 4, 5, 6}
	h := newHarness(t, 3, sites)
	h.net.Partition([]types.SiteID{1, 2, 3}, []types.SiteID{4, 5, 6})
	h.startAll()
	h.sched.Run()
	if !h.won[1] {
		t.Error("site1 should win its partition")
	}
	if !h.won[4] {
		t.Error("site4 should win its partition")
	}
	if h.won[2] || h.won[3] || h.won[5] || h.won[6] {
		t.Errorf("unexpected extra winners: %v", h.won)
	}
}

func TestLostMessagesCanYieldTwoCoordinators(t *testing.T) {
	// The paper explicitly tolerates this: drop all messages between 1 and 2
	// so both believe they have priority.
	sites := []types.SiteID{1, 2, 3}
	h := newHarness(t, 4, sites)
	h.net.SetFilter(func(e msg.Envelope) bool {
		return (e.From == 1 && e.To == 2) || (e.From == 2 && e.To == 1)
	})
	h.startAll()
	h.sched.Run()
	if !h.won[1] || !h.won[2] {
		t.Errorf("expected both site1 and site2 to win, got %v", h.won)
	}
}

func TestDeferredRetriesWhenWinnerSilent(t *testing.T) {
	sites := []types.SiteID{1, 2}
	h := newHarness(t, 5, sites)
	// site1 answers the election (so site2 defers) but then "does nothing":
	// no CoordAnnounce follow-up activity reaches site2 because site1's FSM
	// wins silently and our harness never polls states. site2's patience
	// must eventually request a retry.
	h.startAll()
	h.sched.Run()
	if !h.won[1] {
		t.Fatal("site1 should win")
	}
	if h.retry[2] == 0 {
		t.Error("site2 deferred forever; expected a retry request after the winner stayed silent")
	}
}

func TestSingletonPartitionWinsImmediately(t *testing.T) {
	sites := []types.SiteID{3}
	h := newHarness(t, 6, sites)
	h.startAll()
	h.sched.Run()
	if !h.won[3] {
		t.Error("lone site should elect itself")
	}
	if h.fsms[3].Won() != true {
		t.Error("Won() should report true")
	}
}

func TestStopSilencesFSM(t *testing.T) {
	sites := []types.SiteID{1, 2}
	h := newHarness(t, 7, sites)
	h.fsms[2].Stop()
	h.startAll()
	h.sched.Run()
	if h.won[2] {
		t.Error("stopped FSM acted")
	}
}

func TestEpochInBallot(t *testing.T) {
	f := New(1, 5, []types.SiteID{5}, 7)
	if f.Epoch() != 7 {
		t.Errorf("Epoch = %d", f.Epoch())
	}
	if f.ballot>>32 != 7 {
		t.Errorf("ballot epoch bits = %d", f.ballot>>32)
	}
	if uint32(f.ballot) != 5 {
		t.Errorf("ballot site bits = %d", uint32(f.ballot))
	}
}

// TestLivenessProperty: for random crash subsets and random 2-way
// partitions, every partition that contains at least one live participant
// elects at least one coordinator (possibly after retries).
func TestLivenessProperty(t *testing.T) {
	for seed := int64(1); seed <= 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // 3..7 sites
		sites := make([]types.SiteID, n)
		for i := range sites {
			sites[i] = types.SiteID(i + 1)
		}
		h := newHarness(t, seed, sites)

		// Crash a random strict subset.
		crashed := map[types.SiteID]bool{}
		for _, s := range sites {
			if rng.Float64() < 0.3 {
				crashed[s] = true
			}
		}
		if len(crashed) == n {
			delete(crashed, sites[0])
		}
		for s := range crashed {
			h.net.Crash(s)
			delete(h.fsms, s)
		}

		// Random 2-way partition.
		var g1, g2 []types.SiteID
		for _, s := range sites {
			if rng.Float64() < 0.5 {
				g1 = append(g1, s)
			} else {
				g2 = append(g2, s)
			}
		}
		h.net.Partition(g1, g2)

		h.startAll()
		h.sched.Run()

		check := func(group []types.SiteID) {
			live := 0
			winners := 0
			for _, s := range group {
				if crashed[s] {
					continue
				}
				live++
				if h.won[s] {
					winners++
				}
			}
			if live > 0 && winners == 0 {
				t.Fatalf("seed %d: partition %v (live %d) elected nobody", seed, group, live)
			}
		}
		check(g1)
		check(g2)
	}
}
