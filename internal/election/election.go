// Package election implements the coordinator election protocol invoked at
// the start of the termination protocols (after Garcia-Molina, "Elections in
// a distributed computing system", 1982).
//
// The paper only requires that *some* coordinator emerge in each partition —
// explicitly not a unique one: "our protocols do not require the election of
// a unique coordinator in each partition". This implementation is an
// invitation/bully hybrid with lowest-site-ID priority. Lost messages can
// (and, under the scripted scenario of Example 3, deliberately do) yield
// several concurrent coordinators, which the termination protocols must and
// do tolerate.
package election

import (
	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
)

// Timer tokens.
const (
	tokWaitBetter = iota + 1 // waiting for a lower-ID site to claim the role
	tokWaitCoord             // deferred; waiting for the winner to act
)

// phase of the election FSM.
type phase uint8

const (
	phaseIdle phase = iota
	phaseCampaign
	phaseDeferred
	phaseWon
	phaseStopped
)

// FSM is the per-site election automaton for one transaction. A site in a
// partition campaigns by calling every lower-ID participant; if none answers
// within 2T the site wins and announces itself. A site that hears from a
// better (lower-ID) candidate defers; if the expected coordinator then stays
// silent for 3T, the site campaigns again with a higher ballot.
type FSM struct {
	txn          types.TxnID
	self         types.SiteID
	participants []types.SiteID
	epoch        uint32
	ballot       uint64
	ph           phase
	// OnElected is invoked (once per win) when this site becomes
	// coordinator of the termination protocol.
	OnElected func(epoch uint32)
	// OnRetry is invoked when the FSM wants a fresh election round (the
	// expected winner stayed silent). The host decides whether the retry
	// budget allows it.
	OnRetry func()
}

// New creates an election FSM. participants must include self.
func New(txn types.TxnID, self types.SiteID, participants []types.SiteID, epoch uint32) *FSM {
	return &FSM{
		txn:          txn,
		self:         self,
		participants: participants,
		epoch:        epoch,
		ballot:       uint64(epoch)<<32 | uint64(uint32(self)),
	}
}

// Epoch returns the election epoch.
func (f *FSM) Epoch() uint32 { return f.epoch }

// Won reports whether this site won the election.
func (f *FSM) Won() bool { return f.ph == phaseWon }

// Stop deactivates the FSM (e.g. the transaction terminated mid-election).
func (f *FSM) Stop() { f.ph = phaseStopped }

// Start implements protocol.Automaton.
func (f *FSM) Start(env protocol.Env) {
	f.ph = phaseCampaign
	env.Tracef("election: %s campaigns for %s (epoch %d)", f.self, f.txn, f.epoch)
	sent := false
	for _, p := range f.participants {
		if p < f.self {
			env.Send(p, msg.ElectionCall{Txn: f.txn, Ballot: f.ballot, Candidate: f.self})
			sent = true
		}
	}
	if !sent {
		// No better-priority site exists at all: win immediately.
		f.win(env)
		return
	}
	env.SetTimer(protocol.AckWindow(env), tokWaitBetter)
}

// OnMessage implements protocol.Automaton.
func (f *FSM) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	if f.ph == phaseStopped {
		return
	}
	switch v := m.(type) {
	case msg.ElectionCall:
		// A higher-ID candidate asks whether we (a better candidate) are
		// alive. Claim priority and campaign ourselves if idle.
		if v.Candidate > f.self {
			env.Send(from, msg.ElectionOK{Txn: f.txn, Ballot: v.Ballot})
			if f.ph == phaseIdle {
				f.Start(env)
			}
		}
	case msg.ElectionOK:
		// A better candidate is alive; defer to it.
		if f.ph == phaseCampaign && v.Ballot == f.ballot {
			f.ph = phaseDeferred
			env.Tracef("election: %s defers for %s (epoch %d)", f.self, f.txn, f.epoch)
			env.SetTimer(protocol.ParticipantPatience(env), tokWaitCoord)
		}
	case msg.CoordAnnounce:
		// Someone won. If we also think we won, keep both coordinators
		// running — the termination protocols tolerate this by design.
		if f.ph == phaseCampaign || f.ph == phaseDeferred {
			f.ph = phaseDeferred
			env.Tracef("election: %s observes coordinator %s for %s", f.self, v.Coord, f.txn)
			env.SetTimer(protocol.ParticipantPatience(env), tokWaitCoord)
		}
	}
}

// OnTimer implements protocol.Automaton.
func (f *FSM) OnTimer(token int, env protocol.Env) {
	if f.ph == phaseStopped {
		return
	}
	switch token {
	case tokWaitBetter:
		if f.ph == phaseCampaign {
			f.win(env)
		}
	case tokWaitCoord:
		if f.ph == phaseDeferred {
			// The supposed winner went silent; ask the host for a retry.
			env.Tracef("election: %s saw no progress for %s, requesting retry", f.self, f.txn)
			f.ph = phaseStopped
			if f.OnRetry != nil {
				f.OnRetry()
			}
		}
	}
}

func (f *FSM) win(env protocol.Env) {
	f.ph = phaseWon
	env.Tracef("election: %s wins for %s (epoch %d)", f.self, f.txn, f.epoch)
	for _, p := range f.participants {
		if p != f.self {
			env.Send(p, msg.CoordAnnounce{Txn: f.txn, Ballot: f.ballot, Coord: f.self})
		}
	}
	if f.OnElected != nil {
		f.OnElected(f.epoch)
	}
}
