package storage

import (
	"testing"

	"qcommit/internal/types"
)

func BenchmarkApply(b *testing.B) {
	s := NewStore(1)
	s.Init("x", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Apply("x", int64(i), uint64(i+2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	s := NewStore(1)
	s.Init("x", 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyWriteset(b *testing.B) {
	s := NewStore(1)
	s.Init("x", 0)
	s.Init("y", 0)
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}, {Item: "z", Value: 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ApplyWriteset(ws, uint64(i+2))
	}
}

func BenchmarkResolveRead(b *testing.B) {
	copies := []Versioned{{1, 3}, {2, 9}, {3, 7}, {4, 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ResolveRead(copies); err != nil {
			b.Fatal(err)
		}
	}
}
