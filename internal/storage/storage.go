// Package storage implements the per-site versioned store holding physical
// copies of replicated data items.
//
// Each copy carries a version number; weighted-voting reads collect a read
// quorum of copies and take the value with the highest version, which the
// Gifford constraint r(x)+w(x) > v(x) guarantees includes the most recent
// committed write (see package voting).
package storage

import (
	"fmt"
	"maps"
	"sort"
	"sync"

	"qcommit/internal/types"
)

// Versioned is a copy's value and version number.
type Versioned struct {
	Value   int64
	Version uint64
}

// Store holds the copies resident at one site. It is safe for concurrent use
// (the live runtime accesses it from multiple goroutines).
type Store struct {
	mu     sync.RWMutex
	site   types.SiteID
	copies map[types.ItemID]Versioned
}

// NewStore creates an empty store for a site.
func NewStore(site types.SiteID) *Store {
	return &Store{site: site, copies: make(map[types.ItemID]Versioned)}
}

// Site returns the owning site.
func (s *Store) Site() types.SiteID { return s.site }

// Init places a copy of item with an initial value at version 1. It is used
// during cluster construction.
func (s *Store) Init(item types.ItemID, value int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copies[item] = Versioned{Value: value, Version: 1}
}

// Reserve pre-sizes an empty store for n copies, avoiding incremental map
// growth during the Init stream that seeds a cluster.
func (s *Store) Reserve(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.copies) == 0 && n > 0 {
		s.copies = make(map[types.ItemID]Versioned, n)
	}
}

// InitFrom replaces the store contents with a copy of src. Cloning an
// already-built table skips the per-item hashing of an Init stream, which is
// what makes repeated construction of identical worlds cheap.
func (s *Store) InitFrom(src map[types.ItemID]Versioned) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copies = maps.Clone(src)
}

// Has reports whether the site holds a copy of item.
func (s *Store) Has(item types.ItemID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.copies[item]
	return ok
}

// Read returns the local copy of item.
func (s *Store) Read(item types.ItemID) (Versioned, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.copies[item]
	if !ok {
		return Versioned{}, fmt.Errorf("storage: %s holds no copy of %q", s.site, item)
	}
	return v, nil
}

// Apply installs a committed write at the given version. Versions must be
// monotonically increasing per copy; a stale version is rejected so that a
// duplicated or reordered COMMIT cannot roll a copy backward.
func (s *Store) Apply(item types.ItemID, value int64, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.copies[item]
	if !ok {
		return fmt.Errorf("storage: %s holds no copy of %q", s.site, item)
	}
	if version <= cur.Version {
		return nil // duplicate/stale apply: idempotent no-op
	}
	s.copies[item] = Versioned{Value: value, Version: version}
	return nil
}

// ApplyWriteset applies every update in ws that this site holds a copy of,
// at the given version.
func (s *Store) ApplyWriteset(ws types.Writeset, version uint64) {
	for _, u := range ws {
		if s.Has(u.Item) {
			_ = s.Apply(u.Item, u.Value, version)
		}
	}
}

// Items returns the item IDs stored here in ascending order.
func (s *Store) Items() []types.ItemID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]types.ItemID, 0, len(s.copies))
	for id := range s.copies {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scan calls fn for every copy in the store, in map order. Callers that
// need a stable order must sort what they collect; the auditors use Scan to
// walk large stores without the allocation and sort of Items.
func (s *Store) Scan(fn func(types.ItemID, Versioned)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, v := range s.copies {
		fn(id, v)
	}
}

// Snapshot returns a copy of the full store contents.
func (s *Store) Snapshot() map[types.ItemID]Versioned {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[types.ItemID]Versioned, len(s.copies))
	for k, v := range s.copies {
		out[k] = v
	}
	return out
}

// ResolveRead picks the most recent value among quorum copies: the highest
// version wins. It returns an error on an empty set.
func ResolveRead(copies []Versioned) (Versioned, error) {
	if len(copies) == 0 {
		return Versioned{}, fmt.Errorf("storage: empty read set")
	}
	best := copies[0]
	for _, c := range copies[1:] {
		if c.Version > best.Version {
			best = c
		}
	}
	return best, nil
}
