package storage

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"qcommit/internal/types"
)

func TestStoreInitReadApply(t *testing.T) {
	s := NewStore(1)
	if s.Site() != 1 {
		t.Error("site wrong")
	}
	s.Init("x", 10)
	if !s.Has("x") || s.Has("y") {
		t.Error("Has wrong")
	}
	v, err := s.Read("x")
	if err != nil || v.Value != 10 || v.Version != 1 {
		t.Errorf("Read = %+v, %v", v, err)
	}
	if _, err := s.Read("y"); err == nil {
		t.Error("Read of absent copy should fail")
	}
	if err := s.Apply("x", 20, 5); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Read("x")
	if v.Value != 20 || v.Version != 5 {
		t.Errorf("after apply: %+v", v)
	}
}

func TestStoreApplyStaleIsNoOp(t *testing.T) {
	s := NewStore(1)
	s.Init("x", 0)
	_ = s.Apply("x", 100, 10)
	// A duplicated or delayed COMMIT at an older version must not roll back.
	if err := s.Apply("x", 55, 3); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read("x")
	if v.Value != 100 || v.Version != 10 {
		t.Errorf("stale apply changed copy: %+v", v)
	}
	// Same version is also stale.
	_ = s.Apply("x", 77, 10)
	v, _ = s.Read("x")
	if v.Value != 100 {
		t.Errorf("same-version apply changed copy: %+v", v)
	}
}

func TestStoreApplyUnknownItem(t *testing.T) {
	s := NewStore(1)
	if err := s.Apply("nope", 1, 2); err == nil {
		t.Error("apply to absent copy should fail")
	}
}

func TestApplyWritesetOnlyLocalCopies(t *testing.T) {
	s := NewStore(1)
	s.Init("x", 0)
	ws := types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 9}}
	s.ApplyWriteset(ws, 2)
	v, _ := s.Read("x")
	if v.Value != 5 {
		t.Errorf("x = %+v", v)
	}
	if s.Has("y") {
		t.Error("y must not appear")
	}
}

func TestItemsAndSnapshot(t *testing.T) {
	s := NewStore(1)
	s.Init("b", 2)
	s.Init("a", 1)
	items := s.Items()
	if len(items) != 2 || items[0] != "a" || items[1] != "b" {
		t.Errorf("Items = %v", items)
	}
	snap := s.Snapshot()
	if snap["a"].Value != 1 || snap["b"].Value != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	// Snapshot must be a copy.
	snap["a"] = Versioned{Value: 99, Version: 9}
	v, _ := s.Read("a")
	if v.Value != 1 {
		t.Error("snapshot aliases store")
	}
}

func TestResolveRead(t *testing.T) {
	if _, err := ResolveRead(nil); err == nil {
		t.Error("empty read set should fail")
	}
	got, err := ResolveRead([]Versioned{
		{Value: 1, Version: 3},
		{Value: 2, Version: 7},
		{Value: 3, Version: 5},
	})
	if err != nil || got.Value != 2 || got.Version != 7 {
		t.Errorf("ResolveRead = %+v, %v", got, err)
	}
}

// TestVersionMonotonicityProperty: after any sequence of Apply calls the
// copy's version never decreases and always equals the max applied version
// (or 1 if none exceeded the initial version).
func TestVersionMonotonicityProperty(t *testing.T) {
	f := func(versions []uint64, values []int64) bool {
		s := NewStore(1)
		s.Init("x", 0)
		maxV := uint64(1)
		var expect int64 = 0
		for i, ver := range versions {
			ver %= 64
			val := int64(i)
			if i < len(values) {
				val = values[i]
			}
			_ = s.Apply("x", val, ver)
			if ver > maxV {
				maxV = ver
				expect = val
			}
		}
		got, _ := s.Read("x")
		return got.Version == maxV && got.Value == expect
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestResolveReadSeesLatestProperty: the Gifford read rule (take the highest
// version in the quorum) returns the value written at the max version.
func TestResolveReadSeesLatestProperty(t *testing.T) {
	f := func(pairs []uint32) bool {
		if len(pairs) == 0 {
			return true
		}
		copies := make([]Versioned, len(pairs))
		var best Versioned
		for i, p := range pairs {
			copies[i] = Versioned{Value: int64(p % 97), Version: uint64(p)}
			if copies[i].Version >= best.Version {
				// Ties: ResolveRead keeps the first max; emulate.
				if copies[i].Version > best.Version {
					best = copies[i]
				}
			}
		}
		if best.Version == 0 {
			best = copies[0]
			for _, c := range copies {
				if c.Version > best.Version {
					best = c
				}
			}
		}
		got, err := ResolveRead(copies)
		return err == nil && got.Version == maxVersion(copies)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func maxVersion(cs []Versioned) uint64 {
	var m uint64
	for _, c := range cs {
		if c.Version > m {
			m = c.Version
		}
	}
	return m
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(1)
	s.Init("x", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Apply("x", int64(i), uint64(g*100+i))
				_, _ = s.Read("x")
				_ = s.Items()
			}
		}(g)
	}
	wg.Wait()
	v, _ := s.Read("x")
	if v.Version == 0 {
		t.Error("no applies took effect")
	}
}
