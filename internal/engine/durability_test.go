package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/types"
)

// TestDurableWALSurvivesProcessRestart commits a transaction in one cluster
// instance writing file-backed WALs, tears it down, and builds a fresh
// instance over the same directory: the committed state and values must be
// restored from disk alone.
func TestDurableWALSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	asgn := paperAssignment(t)

	cl1 := New(Config{Seed: 1, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}, WALDir: dir})
	txn := cl1.Begin(1, types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}})
	cl1.Run()
	if got := cl1.GroupOutcome(txn, cl1.Sites()); got != types.OutcomeCommitted {
		t.Fatalf("outcome = %v", got)
	}
	if err := cl1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": a brand-new cluster over the same WAL files.
	cl2 := New(Config{Seed: 2, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}, WALDir: dir})
	defer cl2.Close()
	for _, id := range cl2.Sites() {
		if got := cl2.OutcomeAt(id, txn); got != types.OutcomeCommitted {
			t.Errorf("site%d after restart = %v, want committed", id, got)
		}
	}
	// Values re-applied from the logged writesets.
	for _, id := range []types.SiteID{1, 2, 3, 4} {
		v, err := cl2.Site(id).Store().Read("x")
		if err != nil || v.Value != 42 {
			t.Errorf("site%d x = %+v, %v; want 42", id, v, err)
		}
	}
	// New transactions get fresh IDs and work normally.
	txn2 := cl2.Begin(2, types.Writeset{{Item: "x", Value: 100}})
	if txn2 <= txn {
		t.Errorf("txn ID %v not advanced past %v", txn2, txn)
	}
	cl2.Run()
	if got := cl2.GroupOutcome(txn2, cl2.Sites()); got != types.OutcomeCommitted {
		t.Errorf("post-restart txn = %v", got)
	}
	if issues := cl2.CheckStores(); len(issues) != 0 {
		t.Errorf("store issues after restart: %v", issues)
	}
}

// TestDurableWALResumesInterruptedTermination: the first instance is killed
// with an unterminated (blocked) transaction on disk; the second instance's
// participants rejoin the termination protocol and finish it.
func TestDurableWALResumesInterruptedTermination(t *testing.T) {
	dir := t.TempDir()
	asgn := paperAssignment(t)

	cl1 := New(Config{Seed: 3, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}, WALDir: dir})
	// Everyone voted yes; coordinator crashed; whole cluster partitioned into
	// singletons so nothing can terminate before "the process dies".
	txn := cl1.SetupInterrupted(1, types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 6}},
		map[types.SiteID]types.State{
			1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
			5: types.StateWait, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
		})
	cl1.Crash(1)
	cl1.Partition([]types.SiteID{1}, []types.SiteID{2}, []types.SiteID{3}, []types.SiteID{4},
		[]types.SiteID{5}, []types.SiteID{6}, []types.SiteID{7}, []types.SiteID{8})
	cl1.Run()
	if got := cl1.OutcomeAt(2, txn); got != types.OutcomeBlocked {
		t.Fatalf("pre-restart site2 = %v, want blocked", got)
	}
	if err := cl1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with a healed network: recovery arms patience timers, the
	// termination protocol runs, and TP1 aborts (all W, read quorums exist).
	cl2 := New(Config{Seed: 4, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}, WALDir: dir})
	defer cl2.Close()
	cl2.Run()
	for _, id := range cl2.Sites() {
		if got := cl2.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("site%d after restart = %v, want aborted", id, got)
		}
	}
	if v := cl2.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
