package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/protocol"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// paperAssignment is the replication layout of the paper's Example 1:
// item x with single-vote copies at sites 1-4, item y at sites 5-8,
// r = 2 and w = 3 for both.
func paperAssignment(t testing.TB) *voting.Assignment {
	t.Helper()
	a, err := voting.NewAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	)
	if err != nil {
		t.Fatalf("assignment: %v", err)
	}
	return a
}

func allSpecs() []protocol.Spec {
	sites := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	return []protocol.Spec{
		twopc.Spec{},
		threepc.Spec{},
		skeenq.Uniform(sites, 5, 4),
		core.Spec{Variant: core.Protocol1},
		core.Spec{Variant: core.Protocol2},
	}
}

func TestFailureFreeCommitAllProtocols(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			cl := New(Config{Seed: 1, Assignment: paperAssignment(t), Spec: spec})
			ws := types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}}
			txn := cl.Begin(1, ws)
			cl.Run()

			for _, id := range cl.Sites() {
				if got := cl.OutcomeAt(id, txn); got != types.OutcomeCommitted {
					t.Errorf("site%d outcome = %v, want committed", id, got)
				}
			}
			if v := cl.Violations(); len(v) != 0 {
				t.Errorf("violations: %v", v)
			}
			// The committed values must be applied at every copy.
			for _, id := range []types.SiteID{1, 2, 3, 4} {
				got, err := cl.Site(id).Store().Read("x")
				if err != nil || got.Value != 42 {
					t.Errorf("site%d x = %+v err=%v, want 42", id, got, err)
				}
			}
			for _, id := range []types.SiteID{5, 6, 7, 8} {
				got, err := cl.Site(id).Store().Read("y")
				if err != nil || got.Value != 7 {
					t.Errorf("site%d y = %+v err=%v, want 7", id, got, err)
				}
			}
			// All locks must be released.
			for _, id := range cl.Sites() {
				if items := cl.LockedItems(id, txn); len(items) != 0 {
					t.Errorf("site%d still holds locks %v", id, items)
				}
			}
		})
	}
}

func TestNoVoteAbortsAllProtocols(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			cl := New(Config{Seed: 2, Assignment: paperAssignment(t), Spec: spec})
			cl.Site(3).RefuseVotes(true)
			ws := types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}}
			txn := cl.Begin(1, ws)
			cl.Run()

			for _, id := range cl.Sites() {
				if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
					t.Errorf("site%d outcome = %v, want aborted", id, got)
				}
			}
			if v := cl.Violations(); len(v) != 0 {
				t.Errorf("violations: %v", v)
			}
			// No value may have been applied anywhere.
			for _, id := range []types.SiteID{1, 2, 3, 4} {
				got, _ := cl.Site(id).Store().Read("x")
				if got.Value != 0 {
					t.Errorf("site%d x = %d, want 0 (aborted)", id, got.Value)
				}
			}
		})
	}
}

// TestExample1SkeenBlocksEverywhere reproduces the paper's Example 1: under
// Skeen's quorum protocol (votes 1 each, Vc=5, Va=4), coordinator site1
// crashes and the network splits into G1={1,2,3}, G2={4,5}, G3={6,7,8} with
// site5 in PC and all other participants in W. No partition holds either
// quorum, so the transaction blocks in all partitions.
func TestExample1SkeenBlocksEverywhere(t *testing.T) {
	sites := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	cl := New(Config{Seed: 3, Assignment: paperAssignment(t), Spec: skeenq.Uniform(sites, 5, 4)})
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC,
		6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Partition([]types.SiteID{1, 2, 3}, []types.SiteID{4, 5}, []types.SiteID{6, 7, 8})
	cl.Run()

	for _, id := range []types.SiteID{2, 3, 4, 5, 6, 7, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeBlocked {
			t.Errorf("site%d outcome = %v, want blocked", id, got)
		}
	}
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestExample4TP1ImprovesAvailability reproduces Example 4: same scenario as
// Example 1 but under the paper's termination protocol 1. Partitions G1 and
// G3 satisfy TP1's abort quorum, so the transaction aborts there (and the
// data items become accessible again); G2 still blocks.
func TestExample4TP1ImprovesAvailability(t *testing.T) {
	cl := New(Config{Seed: 4, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC,
		6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Partition([]types.SiteID{1, 2, 3}, []types.SiteID{4, 5}, []types.SiteID{6, 7, 8})
	cl.Run()

	for _, id := range []types.SiteID{2, 3} { // G1 aborts
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("G1 site%d outcome = %v, want aborted", id, got)
		}
	}
	for _, id := range []types.SiteID{6, 7, 8} { // G3 aborts
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("G3 site%d outcome = %v, want aborted", id, got)
		}
	}
	for _, id := range []types.SiteID{4, 5} { // G2 blocks
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeBlocked {
			t.Errorf("G2 site%d outcome = %v, want blocked", id, got)
		}
	}
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	// Locks released in G1: x is readable there (2 votes ≥ r=2).
	for _, id := range []types.SiteID{2, 3} {
		if items := cl.LockedItems(id, txn); len(items) != 0 {
			t.Errorf("G1 site%d still locked: %v", id, items)
		}
	}
}

// TestExample2ThreePCInconsistent reproduces Example 2: the same interrupted
// scenario terminated by 3PC's site-failure-only termination protocol splits
// the decision — G2 (which contains the PC site) commits while G1 and G3
// abort.
func TestExample2ThreePCInconsistent(t *testing.T) {
	cl := New(Config{Seed: 5, Assignment: paperAssignment(t), Spec: threepc.Spec{}})
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC,
		6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Partition([]types.SiteID{1, 2, 3}, []types.SiteID{4, 5}, []types.SiteID{6, 7, 8})
	cl.Run()

	for _, id := range []types.SiteID{2, 3, 6, 7, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("site%d outcome = %v, want aborted", id, got)
		}
	}
	for _, id := range []types.SiteID{4, 5} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeCommitted {
			t.Errorf("site%d outcome = %v, want committed", id, got)
		}
	}
	if v := cl.Violations(); len(v) == 0 {
		t.Error("expected an atomicity violation to be reported (that is Example 2's point)")
	}
}
