// Package engine hosts protocol automata on the deterministic simulator.
//
// A Cluster owns one Site per database site. Each Site carries the durable
// substrate (write-ahead log, versioned store, lock manager) and the volatile
// automata (commit coordinator, participant, election FSM, termination
// coordinator) for each transaction. Crashing a site discards its volatile
// automata and silences its timers while preserving the WAL; recovery
// replays the WAL and rejoins the termination protocol, exactly the failure
// model of the paper.
package engine

import (
	"fmt"
	"sort"

	"qcommit/internal/election"
	"qcommit/internal/lockmgr"
	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/storage"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// txnCtx is a site's bookkeeping for one transaction.
type txnCtx struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
	coordSite    types.SiteID

	auto map[protocol.Role]protocol.Automaton
	gen  map[protocol.Role]uint32

	elect     *election.FSM
	nextEpoch uint32
	rounds    int // termination/election rounds consumed

	outcome   types.Outcome
	decidedAt sim.Time
	blocked   bool
}

func (c *txnCtx) terminal() bool {
	return c.outcome == types.OutcomeCommitted || c.outcome == types.OutcomeAborted
}

// Site is one database site: durable state plus per-transaction automata.
type Site struct {
	id    types.SiteID
	cl    *Cluster
	log   wal.Log
	store *storage.Store
	locks *lockmgr.Manager
	txns  map[types.TxnID]*txnCtx
	// voteNo holds injected refusals for specific transactions (a modeled
	// persistent fault, like refuser); promisedNo holds the volatile
	// never-voted promises made by poll replies, lost on crash.
	voteNo     map[types.TxnID]bool
	promisedNo map[types.TxnID]bool
	refuser    bool // injected refusal for all transactions
}

func newSite(id types.SiteID, cl *Cluster, log wal.Log) *Site {
	if log == nil {
		log = wal.NewMemLog()
	}
	return &Site{
		id:    id,
		cl:    cl,
		log:   log,
		store: storage.NewStore(id),
		locks: lockmgr.New(id),
		txns:  make(map[types.TxnID]*txnCtx),
	}
}

// ID returns the site's identifier.
func (s *Site) ID() types.SiteID { return s.id }

// Store exposes the site's versioned store (read-only use expected).
func (s *Site) Store() *storage.Store { return s.store }

// Locks exposes the site's lock manager (read-only use expected).
func (s *Site) Locks() *lockmgr.Manager { return s.locks }

// Log exposes the site's write-ahead log.
func (s *Site) Log() wal.Log { return s.log }

// RefuseVotes makes the site vote no on all future transactions (models an
// I/O subsystem failure, the paper's example reason for a no vote).
func (s *Site) RefuseVotes(refuse bool) { s.refuser = refuse }

// RefuseVote makes the site vote no on one transaction (an injected fault;
// like RefuseVotes it persists across crashes).
func (s *Site) RefuseVote(txn types.TxnID) {
	if s.voteNo == nil {
		s.voteNo = make(map[types.TxnID]bool)
	}
	s.voteNo[txn] = true
}

// promiseNoVote records the volatile promise a never-voted poll reply
// makes: any VOTE-REQ for txn arriving later is answered no. Unlike the
// injected refusals it is lost on crash, as volatile state must be.
func (s *Site) promiseNoVote(txn types.TxnID) {
	if s.promisedNo == nil {
		s.promisedNo = make(map[types.TxnID]bool)
	}
	s.promisedNo[txn] = true
}

func (s *Site) ctx(txn types.TxnID) *txnCtx {
	return s.txns[txn]
}

func (s *Site) ensureCtx(txn types.TxnID) *txnCtx {
	c := s.txns[txn]
	if c == nil {
		c = &txnCtx{
			txn:  txn,
			auto: make(map[protocol.Role]protocol.Automaton),
			gen:  make(map[protocol.Role]uint32),
		}
		s.txns[txn] = c
	}
	return c
}

// install places an automaton in a role slot, superseding (and silencing the
// timers of) any previous occupant, and starts it.
func (s *Site) install(c *txnCtx, role protocol.Role, a protocol.Automaton) {
	c.gen[role]++
	c.auto[role] = a
	a.Start(s.env(c.txn, role))
}

// env builds the protocol.Env bound to (site, txn, role) at the current
// generation; timers from superseded automata are dropped via the generation
// check.
func (s *Site) env(txn types.TxnID, role protocol.Role) *autoEnv {
	c := s.ensureCtx(txn)
	return &autoEnv{site: s, txn: txn, role: role, gen: c.gen[role]}
}

// crash discards volatile state: all automata and elections stop, timers are
// silenced via generation bumps. The WAL, store and lock table survive.
// Never-voted promises made by poll replies (see the StateReq/DecisionReq
// fallbacks in handle) are volatile too and are lost with the rest — a
// restarted site could in principle vote yes on a VOTE-REQ it promised to
// refuse. In-model the window is unreachable (termination polls start ≥3T
// after the vote phase, message delays are ≤T, and nothing redelivers a
// dropped VOTE-REQ after a restart), and the churn study's safety tallies
// would surface it if that ever changed. Injected refusals (RefuseVotes,
// RefuseVote) model a persistent I/O-subsystem fault and survive.
func (s *Site) crash() {
	for _, c := range s.txns {
		for role := range c.auto {
			c.gen[role]++
			delete(c.auto, role)
		}
		if c.elect != nil {
			c.elect.Stop()
			c.elect = nil
		}
	}
	s.promisedNo = nil
}

// recover replays the WAL and reconstructs participants for unterminated
// transactions; their patience timers re-enter the termination protocol.
func (s *Site) recoverVolatile() {
	recs, _ := s.log.Records()
	images := wal.Replay(recs)
	txns := make([]types.TxnID, 0, len(images))
	for txn := range images {
		txns = append(txns, txn)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, txn := range txns {
		im := images[txn]
		c := s.ensureCtx(txn)
		if len(c.ws) == 0 {
			c.ws = im.Writeset.Clone()
		}
		if len(c.participants) == 0 {
			c.participants = append([]types.SiteID(nil), im.Participants...)
		}
		c.coordSite = im.Coord
		switch im.State {
		case types.StateCommitted:
			c.outcome = types.OutcomeCommitted
		case types.StateAborted:
			c.outcome = types.OutcomeAborted
		case types.StateWait, types.StatePC, types.StatePA:
			// Re-acquire write locks on local copies (they were held before
			// the crash) and rejoin via a fresh participant automaton.
			s.lockLocalCopies(txn, c.ws)
			s.install(c, protocol.RoleParticipant, s.cl.cfg.Spec.NewParticipant(txn, im))
		}
	}
}

// syncCopies runs anti-entropy: ask every peer replica for its current copy
// of each locally-held item, installing newer versions as responses arrive.
// Called on restart so a site that was down across commits catches up even
// for transactions it never voted on.
func (s *Site) syncCopies() {
	for _, item := range s.store.Items() {
		if !s.cl.writtenItems[item] {
			continue // no commit ever wrote it: every copy is still initial
		}
		ic, ok := s.cl.cfg.Assignment.Item(item)
		if !ok {
			continue
		}
		for _, cp := range ic.Copies {
			if cp.Site != s.id {
				s.cl.send(s.id, cp.Site, msg.CopyReq{Item: item})
			}
		}
	}
}

// lockLocalCopies takes X locks on every local copy of items written by txn.
// It reports whether all locks were obtained; on failure it releases what it
// took.
func (s *Site) lockLocalCopies(txn types.TxnID, ws types.Writeset) bool {
	var taken []types.ItemID
	for _, x := range ws.Items() {
		if !s.store.Has(x) {
			continue
		}
		if err := s.locks.TryAcquire(txn, x, lockmgr.Exclusive); err != nil {
			for _, y := range taken {
				s.locks.Release(txn, y)
			}
			return false
		}
		taken = append(taken, x)
	}
	return true
}

// handle routes a delivered message to the right automaton.
func (s *Site) handle(e msg.Envelope) {
	if s.cl.net.Down(s.id) {
		return
	}
	txn := msg.TxnOf(e.Msg)
	s.cl.rec.Message(s.cl.sched.Now(), e.From, s.id, e.Msg.Kind().String())

	switch m := e.Msg.(type) {
	case msg.CopyReq:
		// Anti-entropy service: serve our copy unless a pending transaction
		// holds it (its value may be about to change).
		if s.store.Has(m.Item) && !s.locks.Locked(m.Item) {
			if v, err := s.store.Read(m.Item); err == nil {
				s.cl.send(s.id, e.From, msg.CopyResp{Item: m.Item, Value: v.Value, Version: v.Version})
			}
		}

	case msg.CopyResp:
		// Install only newer versions; storage.Apply enforces monotonicity.
		// A copy that catches up to the newest committed version sheds its
		// missing write or rejoins its item's dynamic majority basis
		// (no-ops under StrategyQuorum).
		if s.store.Has(m.Item) {
			_ = s.store.Apply(m.Item, m.Value, m.Version)
			s.cl.maybeResolve(m.Item, s.id)
			s.cl.maybeRejoin(m.Item, s.id)
		}

	case msg.VoteReq:
		c := s.ensureCtx(txn)
		if c.terminal() {
			return
		}
		if len(c.ws) == 0 {
			c.ws = m.Writeset.Clone()
			c.participants = append([]types.SiteID(nil), m.Participants...)
			c.coordSite = m.Coord
		}
		if c.auto[protocol.RoleParticipant] == nil {
			s.install(c, protocol.RoleParticipant, s.cl.cfg.Spec.NewParticipant(txn, nil))
		}
		s.deliver(c, protocol.RoleParticipant, e)

	case msg.ElectionCall, msg.ElectionOK, msg.CoordAnnounce:
		c := s.ctx(txn)
		if c == nil || c.terminal() {
			return
		}
		if c.elect == nil {
			// Joining an election started elsewhere (passive: does not
			// consume a termination round).
			epoch := uint32(0)
			if call, ok := m.(msg.ElectionCall); ok {
				epoch = uint32(call.Ballot >> 32)
			}
			s.startElection(c, epoch, false)
		}
		s.deliver(c, protocol.RoleElection, e)

	case msg.StateReq:
		c := s.ctx(txn)
		if c == nil || c.auto[protocol.RoleParticipant] == nil {
			// This site never heard of the transaction: it is in the initial
			// state q, and must say so — an initial-state reply lets the
			// termination protocol abort immediately. Saying so is a promise:
			// the reply poisons any VOTE-REQ still in flight (we will vote
			// no), otherwise a late yes vote could let the commit protocol
			// commit a transaction the termination protocol aborted on the
			// strength of this reply.
			st := types.StateInitial
			if c != nil && c.terminal() {
				st = c.outcome.StateEquivalent()
			} else {
				s.promiseNoVote(txn)
			}
			s.cl.send(s.id, e.From, msg.StateResp{Txn: txn, Epoch: m.Epoch, State: st})
			return
		}
		s.deliver(c, protocol.RoleParticipant, e)

	case msg.DecisionReq:
		c := s.ctx(txn)
		if c == nil || c.auto[protocol.RoleParticipant] == nil {
			// Unknown transaction: we have not voted, so the coordinator
			// cannot have committed — report "uncommitted". As with the
			// initial-state reply above, the report doubles as a refusal to
			// vote yes later.
			resp := msg.DecisionResp{Txn: txn, Uncommitted: true}
			if c != nil && c.terminal() {
				resp.Uncommitted = false
				if c.outcome == types.OutcomeCommitted {
					resp.Decision = types.DecisionCommit
				} else {
					resp.Decision = types.DecisionAbort
				}
			} else {
				s.promiseNoVote(txn)
			}
			s.cl.send(s.id, e.From, resp)
			return
		}
		s.deliver(c, protocol.RoleParticipant, e)

	case msg.StateResp, msg.PCAck, msg.PAAck, msg.DecisionResp:
		c := s.ctx(txn)
		if c == nil {
			return
		}
		if c.auto[protocol.RoleTerminator] != nil {
			s.deliver(c, protocol.RoleTerminator, e)
		} else if c.auto[protocol.RoleCoordinator] != nil {
			s.deliver(c, protocol.RoleCoordinator, e)
		}

	case msg.VoteResp, msg.Done:
		c := s.ctx(txn)
		if c == nil {
			return
		}
		s.deliver(c, protocol.RoleCoordinator, e)

	case msg.PrepareToCommit, msg.PrepareToAbort, msg.Commit, msg.Abort:
		c := s.ctx(txn)
		if c == nil {
			return
		}
		if c.auto[protocol.RoleParticipant] != nil {
			s.deliver(c, protocol.RoleParticipant, e)
			return
		}
		// No participant automaton (e.g. the pure coordinator site holds no
		// copies): apply terminal commands directly.
		switch e.Msg.(type) {
		case msg.Commit:
			s.doCommit(c)
		case msg.Abort:
			s.doAbort(c)
		}
	}
}

func (s *Site) deliver(c *txnCtx, role protocol.Role, e msg.Envelope) {
	a := c.auto[role]
	if a == nil {
		return
	}
	a.OnMessage(e.From, e.Msg, s.env(c.txn, role))
}

// startElection creates an election FSM at the given epoch. With campaign
// set the site actively campaigns (consuming one termination round);
// otherwise it joins passively and only reacts to election messages.
func (s *Site) startElection(c *txnCtx, epoch uint32, campaign bool) {
	if c.terminal() {
		return
	}
	if campaign {
		if c.rounds >= s.cl.cfg.MaxTerminationRounds {
			c.blocked = true
			return
		}
		c.rounds++
	}
	if epoch < c.nextEpoch {
		epoch = c.nextEpoch
	}
	c.nextEpoch = epoch + 1
	f := election.New(c.txn, s.id, s.alivePeers(c), epoch)
	f.OnElected = func(ep uint32) { s.startTerminator(c, ep) }
	f.OnRetry = func() {
		c.elect = nil
		s.startElection(c, c.nextEpoch, true)
	}
	c.elect = f
	c.gen[protocol.RoleElection]++
	c.auto[protocol.RoleElection] = f
	if campaign {
		f.Start(s.env(c.txn, protocol.RoleElection))
	}
}

// alivePeers returns the transaction's participant list (the election runs
// over all participants; unreachable ones simply never answer).
func (s *Site) alivePeers(c *txnCtx) []types.SiteID {
	if len(c.participants) > 0 {
		return c.participants
	}
	return s.cl.siteIDs
}

func (s *Site) startTerminator(c *txnCtx, epoch uint32) {
	if c.terminal() {
		return
	}
	term := s.cl.cfg.Spec.NewTerminator(c.txn, c.ws, c.participants, epoch)
	s.install(c, protocol.RoleTerminator, term)
}

// doCommit performs the irrevocable local commit: force COMMIT to the log,
// apply the writeset at version txn+1, release locks, record the outcome.
func (s *Site) doCommit(c *txnCtx) {
	if c.terminal() {
		if c.outcome == types.OutcomeAborted {
			s.cl.violationf("site %s: COMMIT after local ABORT of %s", s.id, c.txn)
		}
		return
	}
	_ = s.log.Append(wal.Record{Type: wal.RecCommit, Txn: c.txn})
	s.store.ApplyWriteset(c.ws, uint64(c.txn)+1)
	s.cl.noteWritten(c.ws)
	s.cl.noteCommitApplied(s, c)
	s.locks.ReleaseAll(c.txn)
	c.outcome = types.OutcomeCommitted
	c.blocked = false
	c.decidedAt = s.cl.sched.Now()
	s.quiesce(c)
	s.cl.rec.Annotate(s.cl.sched.Now(), s.id, "%s COMMITTED", c.txn)
}

// doAbort is the abort counterpart of doCommit.
func (s *Site) doAbort(c *txnCtx) {
	if c.terminal() {
		if c.outcome == types.OutcomeCommitted {
			s.cl.violationf("site %s: ABORT after local COMMIT of %s", s.id, c.txn)
		}
		return
	}
	_ = s.log.Append(wal.Record{Type: wal.RecAbort, Txn: c.txn})
	s.locks.ReleaseAll(c.txn)
	c.outcome = types.OutcomeAborted
	c.blocked = false
	c.decidedAt = s.cl.sched.Now()
	s.quiesce(c)
	s.cl.rec.Annotate(s.cl.sched.Now(), s.id, "%s ABORTED", c.txn)
}

// quiesce silences every automaton of a terminated transaction except the
// coordinator/terminator (which may still be distributing the decision).
func (s *Site) quiesce(c *txnCtx) {
	if c.elect != nil {
		c.elect.Stop()
		c.elect = nil
	}
	c.gen[protocol.RoleParticipant]++
	delete(c.auto, protocol.RoleParticipant)
	c.gen[protocol.RoleElection]++
	delete(c.auto, protocol.RoleElection)
}

// autoEnv implements protocol.Env bound to one automaton instance.
type autoEnv struct {
	site *Site
	txn  types.TxnID
	role protocol.Role
	gen  uint32
}

var _ protocol.Env = (*autoEnv)(nil)

func (e *autoEnv) Self() types.SiteID             { return e.site.id }
func (e *autoEnv) Now() sim.Time                  { return e.site.cl.sched.Now() }
func (e *autoEnv) T() sim.Duration                { return e.site.cl.cfg.T }
func (e *autoEnv) Assignment() *voting.Assignment { return e.site.cl.cfg.Assignment }

func (e *autoEnv) Send(to types.SiteID, m msg.Message) {
	e.site.cl.send(e.site.id, to, m)
}

func (e *autoEnv) SetTimer(d sim.Duration, token int) {
	s := e.site
	cl := s.cl
	txn, role, gen := e.txn, e.role, e.gen
	cl.sched.After(d, func() {
		if cl.net.Down(s.id) {
			return
		}
		c := s.ctx(txn)
		if c == nil || c.gen[role] != gen {
			return // automaton superseded or transaction terminated
		}
		a := c.auto[role]
		if a == nil {
			return
		}
		a.OnTimer(token, e)
	})
}

func (e *autoEnv) Append(rec wal.Record) {
	if err := e.site.log.Append(rec); err != nil {
		panic(fmt.Sprintf("engine: wal append at %s: %v", e.site.id, err))
	}
}

func (e *autoEnv) Commit(txn types.TxnID) {
	if c := e.site.ctx(txn); c != nil {
		e.site.doCommit(c)
	}
}

func (e *autoEnv) Abort(txn types.TxnID) {
	if c := e.site.ctx(txn); c != nil {
		e.site.doAbort(c)
	}
}

func (e *autoEnv) Block(txn types.TxnID) {
	if c := e.site.ctx(txn); c != nil && !c.terminal() {
		c.blocked = true
		e.site.cl.rec.Annotate(e.Now(), e.site.id, "%s BLOCKED (termination cannot form a quorum)", txn)
	}
}

func (e *autoEnv) RequestTermination(txn types.TxnID) {
	s := e.site
	c := s.ctx(txn)
	if c == nil || c.terminal() {
		return
	}
	if c.elect != nil && !c.elect.Won() {
		return // an election is already in progress
	}
	s.startElection(c, c.nextEpoch, true)
}

func (e *autoEnv) TerminatorDone(txn types.TxnID) {
	// Bookkeeping hook; the terminator slot stays installed so late acks are
	// still consumed harmlessly.
}

func (e *autoEnv) Tracef(format string, args ...any) {
	e.site.cl.rec.Annotate(e.Now(), e.site.id, format, args...)
}

// AcquireLocks is the host service participants use while voting: X locks on
// all local copies in the writeset. Injected refusals make it fail, which
// the participant turns into a no vote.
func (e *autoEnv) AcquireLocks(txn types.TxnID) bool {
	s := e.site
	if s.refuser || s.voteNo[txn] || s.promisedNo[txn] {
		return false
	}
	c := s.ctx(txn)
	if c == nil {
		return false
	}
	return s.lockLocalCopies(txn, c.ws)
}
