package engine

import (
	"fmt"
	"path/filepath"
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/storage"
	"qcommit/internal/trace"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Config parameterizes a simulated cluster.
type Config struct {
	// Seed drives all randomness (message delays, loss) deterministically.
	Seed int64
	// Net configures the simulated network.
	Net simnet.Config
	// Assignment is the cluster-wide weighted-voting configuration.
	Assignment *voting.Assignment
	// Strategy selects the data-access strategy layered over the
	// assignment: StrategyQuorum (default) runs Gifford quorum reads and
	// writes unconditionally; StrategyMissingWrites runs optimistic
	// read-one/write-all until a committed write misses a copy, then
	// demotes that item to pessimistic quorum mode until anti-entropy
	// catches the stale copies up (see internal/voting.Adaptive);
	// StrategyDynamic reassigns votes to the copies each committed write
	// reaches, so quorums are majorities of the current survivor set under
	// version-numbered, epoch-guarded vote tables (see
	// internal/voting.Dynamic). The commit and termination protocols
	// themselves always run on the static assignment.
	Strategy voting.Strategy
	// Spec is the commit+termination protocol under test.
	Spec protocol.Spec
	// T is the longest end-to-end propagation delay (timeout base).
	// Defaults to Net.MaxDelay.
	T sim.Duration
	// MaxTerminationRounds caps how many election/termination rounds a site
	// will initiate before resigning to a block; Kick resets the budget.
	// Defaults to 3.
	MaxTerminationRounds int
	// ExtraSites adds sites that hold no copies (pure coordinators).
	ExtraSites []types.SiteID
	// InitialValue seeds every copy of every item.
	InitialValue int64
	// InitialValues overrides InitialValue per item.
	InitialValues map[types.ItemID]int64
	// SeedStores, when set, seeds each site's store by cloning the given
	// table instead of streaming per-item Inits, and InitialValue(s) are
	// ignored. Callers that build many identical worlds over one placement
	// (the hybrid churn engine) compute the tables once and reuse them.
	SeedStores map[types.SiteID]map[types.ItemID]storage.Versioned
	// Recorder receives trace events; nil allocates a fresh one.
	Recorder *trace.Recorder
	// WALDir, when set, persists each site's write-ahead log to
	// WALDir/site<N>.wal instead of in-memory stable storage. A cluster
	// created over existing logs resumes them: committed/aborted state is
	// restored and unterminated voted transactions rejoin the termination
	// protocol (as after a full-cluster restart).
	WALDir string
}

func (c Config) withDefaults() Config {
	if c.T <= 0 {
		c.T = c.Net.MaxDelayOrDefault()
	}
	if c.MaxTerminationRounds <= 0 {
		c.MaxTerminationRounds = 3
	}
	if c.Recorder == nil {
		c.Recorder = trace.NewRecorder()
	}
	return c
}

// Cluster is a simulated distributed database running one protocol.
type Cluster struct {
	cfg        Config
	sched      *sim.Scheduler
	net        *simnet.Network
	sites      map[types.SiteID]*Site
	siteIDs    []types.SiteID
	nextTxn    types.TxnID
	violations []string
	rec        *trace.Recorder
	// adaptive tracks per-item missing writes under StrategyMissingWrites
	// and dynamic tracks per-item vote tables under StrategyDynamic (both
	// nil otherwise); recordedWrites marks transactions whose commit-time
	// copy reachability has been recorded, so the bookkeeping runs once per
	// transaction even though every site applies the commit.
	adaptive       *voting.Adaptive
	dynamic        *voting.Dynamic
	recordedWrites map[types.TxnID]bool
	// writtenItems marks items written by some committed transaction. A
	// restarting site's anti-entropy only syncs those: every copy of a
	// never-written item still sits at its initial version, so its sync
	// round would be pure no-op traffic.
	writtenItems map[types.ItemID]bool
}

// New builds a cluster: one site per site mentioned in the assignment (plus
// ExtraSites), stores seeded with InitialValue at version 1.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Assignment == nil {
		panic("engine: Config.Assignment is required")
	}
	if cfg.Spec == nil {
		panic("engine: Config.Spec is required")
	}
	if !cfg.Strategy.Valid() {
		panic(fmt.Sprintf("engine: invalid Config.Strategy %v", cfg.Strategy))
	}
	sched := sim.NewScheduler(cfg.Seed)
	sched.MaxSteps = 2_000_000 // livelock guard
	net := simnet.New(sched, cfg.Net)
	cl := &Cluster{
		cfg:          cfg,
		sched:        sched,
		net:          net,
		sites:        make(map[types.SiteID]*Site),
		rec:          cfg.Recorder,
		writtenItems: make(map[types.ItemID]bool),
	}
	switch cfg.Strategy {
	case voting.StrategyMissingWrites:
		cl.adaptive = voting.NewAdaptive(cfg.Assignment)
		cl.recordedWrites = make(map[types.TxnID]bool)
	case voting.StrategyDynamic:
		cl.dynamic = voting.NewDynamic(cfg.Assignment)
		cl.recordedWrites = make(map[types.TxnID]bool)
	}

	idSet := make(map[types.SiteID]bool)
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			idSet[cp.Site] = true
		}
	}
	for _, id := range cfg.ExtraSites {
		idSet[id] = true
	}
	for id := range idSet {
		cl.siteIDs = append(cl.siteIDs, id)
	}
	sort.Slice(cl.siteIDs, func(i, j int) bool { return cl.siteIDs[i] < cl.siteIDs[j] })

	for _, id := range cl.siteIDs {
		var log wal.Log
		if cfg.WALDir != "" {
			fl, err := wal.OpenFileLog(filepath.Join(cfg.WALDir, fmt.Sprintf("site%d.wal", id)))
			if err != nil {
				panic(fmt.Sprintf("engine: open WAL for %s: %v", id, err))
			}
			log = fl
		}
		st := newSite(id, cl, log)
		cl.sites[id] = st
		net.Register(id, st.handle)
	}
	if cfg.SeedStores != nil {
		for _, id := range cl.siteIDs {
			if tbl, ok := cfg.SeedStores[id]; ok {
				cl.sites[id].store.InitFrom(tbl)
			}
		}
	} else {
		items := cfg.Assignment.Items()
		perSite := make(map[types.SiteID]int, len(cl.siteIDs))
		for _, item := range items {
			ic, _ := cfg.Assignment.Item(item)
			for _, cp := range ic.Copies {
				perSite[cp.Site]++
			}
		}
		for _, id := range cl.siteIDs {
			if n := perSite[id]; n > 0 {
				cl.sites[id].store.Reserve(n)
			}
		}
		for _, item := range items {
			ic, _ := cfg.Assignment.Item(item)
			initial := cfg.InitialValue
			if v, ok := cfg.InitialValues[item]; ok {
				initial = v
			}
			for _, cp := range ic.Copies {
				cl.sites[cp.Site].store.Init(item, initial)
			}
		}
	}
	if cfg.WALDir != "" {
		cl.resumeFromLogs()
	}
	return cl
}

// resumeFromLogs restores state after a full-cluster restart over persistent
// WALs: committed transactions re-apply their writesets (idempotent via
// version checks), unterminated voted transactions rejoin the termination
// protocol, and the transaction-ID counter advances past everything seen.
func (cl *Cluster) resumeFromLogs() {
	maxTxn := types.TxnID(0)
	for _, id := range cl.siteIDs {
		site := cl.sites[id]
		recs, err := site.log.Records()
		if err != nil {
			continue
		}
		images := wal.Replay(recs)
		txns := make([]types.TxnID, 0, len(images))
		for txn := range images {
			txns = append(txns, txn)
		}
		sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
		for _, txn := range txns {
			img := images[txn]
			if txn > maxTxn {
				maxTxn = txn
			}
			if img.State == types.StateCommitted && len(img.Writeset) > 0 {
				site.store.ApplyWriteset(img.Writeset, uint64(txn)+1)
				cl.noteWritten(img.Writeset)
			}
		}
		site.recoverVolatile()
	}
	cl.nextTxn = maxTxn
}

// Close releases file-backed WALs (no-op for in-memory logs).
func (cl *Cluster) Close() error {
	var first error
	for _, id := range cl.siteIDs {
		if fl, ok := cl.sites[id].log.(*wal.FileLog); ok {
			if err := fl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Scheduler exposes the simulation scheduler.
func (cl *Cluster) Scheduler() *sim.Scheduler { return cl.sched }

// T returns the timeout base (the longest end-to-end propagation delay).
func (cl *Cluster) T() sim.Duration { return cl.cfg.T }

// Network exposes the simulated network.
func (cl *Cluster) Network() *simnet.Network { return cl.net }

// Recorder exposes the trace recorder.
func (cl *Cluster) Recorder() *trace.Recorder { return cl.rec }

// Site returns a site by ID.
func (cl *Cluster) Site(id types.SiteID) *Site { return cl.sites[id] }

// Sites returns all site IDs ascending.
func (cl *Cluster) Sites() []types.SiteID {
	out := make([]types.SiteID, len(cl.siteIDs))
	copy(out, cl.siteIDs)
	return out
}

// Spec returns the protocol under test.
func (cl *Cluster) Spec() protocol.Spec { return cl.cfg.Spec }

// Assignment returns the voting configuration.
func (cl *Cluster) Assignment() *voting.Assignment { return cl.cfg.Assignment }

func (cl *Cluster) send(from, to types.SiteID, m msg.Message) {
	cl.net.Send(from, to, m)
}

// noteWritten records the items of a committed writeset so anti-entropy can
// skip items no commit ever touched.
func (cl *Cluster) noteWritten(ws types.Writeset) {
	for _, u := range ws {
		cl.writtenItems[u.Item] = true
	}
}

func (cl *Cluster) violationf(format string, args ...any) {
	cl.violations = append(cl.violations, fmt.Sprintf(format, args...))
}

// Violations returns atomicity violations observed so far (commit and abort
// of the same transaction). A correct protocol produces none; the 3PC
// baseline under partitioning is expected to produce some (Example 2), and
// the deliberately buggy participant variant reproduces Example 3.
func (cl *Cluster) Violations() []string {
	out := append([]string(nil), cl.violations...)
	// Cross-site check: some site committed while another aborted.
	perTxn := make(map[types.TxnID][2][]types.SiteID) // [committed, aborted]
	for _, id := range cl.siteIDs {
		for txn, c := range cl.sites[id].txns {
			pair := perTxn[txn]
			switch c.outcome {
			case types.OutcomeCommitted:
				pair[0] = append(pair[0], id)
			case types.OutcomeAborted:
				pair[1] = append(pair[1], id)
			}
			perTxn[txn] = pair
		}
	}
	txns := make([]types.TxnID, 0, len(perTxn))
	for txn := range perTxn {
		txns = append(txns, txn)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, txn := range txns {
		pair := perTxn[txn]
		if len(pair[0]) > 0 && len(pair[1]) > 0 {
			sort.Slice(pair[0], func(i, j int) bool { return pair[0][i] < pair[0][j] })
			sort.Slice(pair[1], func(i, j int) bool { return pair[1][i] < pair[1][j] })
			out = append(out, fmt.Sprintf("%s terminated inconsistently: committed at %v, aborted at %v", txn, pair[0], pair[1]))
		}
	}
	return out
}

// Begin starts a transaction at the coordinator site with the given
// writeset. The participant set is derived from the vote assignment. It
// returns the transaction ID; run the scheduler to make progress.
func (cl *Cluster) Begin(coord types.SiteID, ws types.Writeset) types.TxnID {
	cl.nextTxn++
	txn := cl.nextTxn
	site := cl.sites[coord]
	if site == nil {
		panic(fmt.Sprintf("engine: unknown coordinator site %s", coord))
	}
	participants := cl.cfg.Assignment.Participants(ws.Items())
	c := site.ensureCtx(txn)
	c.ws = ws.Clone()
	c.participants = participants
	c.coordSite = coord
	cl.sched.At(cl.sched.Now(), func() {
		if cl.net.Down(coord) {
			return
		}
		site.install(c, protocol.RoleCoordinator, cl.cfg.Spec.NewCoordinator(txn, c.ws, participants))
	})
	return txn
}

// SetupInterrupted constructs, without running the commit protocol, the
// exact mid-protocol configuration the paper's examples start from: every
// site in states is a participant frozen in the given local state (the
// coordinator has crashed or is about to). Write locks are held by sites in
// W/PC/PA, and WAL records match the states. Termination is NOT triggered
// automatically; partition the network and call Kick, or let participant
// patience timers fire.
func (cl *Cluster) SetupInterrupted(coord types.SiteID, ws types.Writeset, states map[types.SiteID]types.State) types.TxnID {
	cl.nextTxn++
	txn := cl.nextTxn
	participants := make([]types.SiteID, 0, len(states))
	for id := range states {
		participants = append(participants, id)
	}
	sort.Slice(participants, func(i, j int) bool { return participants[i] < participants[j] })

	for _, id := range participants {
		st := states[id]
		site := cl.sites[id]
		if site == nil {
			panic(fmt.Sprintf("engine: unknown site %s in SetupInterrupted", id))
		}
		c := site.ensureCtx(txn)
		c.ws = ws.Clone()
		c.participants = participants
		c.coordSite = coord

		img := &wal.TxnImage{
			Txn:          txn,
			State:        st,
			Coord:        coord,
			Participants: participants,
			Writeset:     ws.Clone(),
		}
		base := wal.Record{Txn: txn, Coord: coord, Participants: participants, Writeset: ws}
		switch st {
		case types.StateInitial:
			// No records, no automaton: the site has not voted.
			continue
		case types.StateWait:
			rec := base
			rec.Type = wal.RecVotedYes
			_ = site.log.Append(rec)
		case types.StatePC:
			rec := base
			rec.Type = wal.RecVotedYes
			_ = site.log.Append(rec)
			_ = site.log.Append(wal.Record{Type: wal.RecPC, Txn: txn})
		case types.StatePA:
			rec := base
			rec.Type = wal.RecVotedYes
			_ = site.log.Append(rec)
			_ = site.log.Append(wal.Record{Type: wal.RecPA, Txn: txn})
		case types.StateCommitted:
			rec := base
			rec.Type = wal.RecVotedYes
			_ = site.log.Append(rec)
			site.lockLocalCopies(txn, ws)
			site.doCommit(c)
			continue
		case types.StateAborted:
			site.doAbort(c)
			continue
		}
		site.lockLocalCopies(txn, ws)
		site.install(c, protocol.RoleParticipant, cl.cfg.Spec.NewParticipant(txn, img))
	}
	return txn
}

// Kick resets the termination-round budget for txn at every up site and
// triggers a fresh termination attempt (used after healing a partition or
// recovering sites).
func (cl *Cluster) Kick(txn types.TxnID) {
	for _, id := range cl.siteIDs {
		site := cl.sites[id]
		c := site.ctx(txn)
		if c == nil || c.terminal() || cl.net.Down(id) {
			continue
		}
		if c.auto[protocol.RoleParticipant] == nil {
			continue
		}
		c.rounds = 0
		c.blocked = false
		if c.elect != nil {
			c.elect.Stop()
			c.elect = nil
			c.gen[protocol.RoleElection]++
			delete(c.auto, protocol.RoleElection)
		}
		id := id
		cl.sched.At(cl.sched.Now(), func() {
			s := cl.sites[id]
			cc := s.ctx(txn)
			if cc == nil || cc.terminal() || cl.net.Down(id) {
				return
			}
			s.startElection(cc, cc.nextEpoch, true)
		})
	}
}

// KickAt schedules a Kick at virtual time t (use just after a scheduled
// heal or restart to retrigger termination with a fresh round budget).
func (cl *Cluster) KickAt(t sim.Time, txn types.TxnID) {
	cl.sched.At(t, func() { cl.Kick(txn) })
}

// Crash takes a site down immediately (volatile state lost, WAL kept).
func (cl *Cluster) Crash(id types.SiteID) {
	cl.net.Crash(id)
	cl.sites[id].crash()
	cl.rec.Annotate(cl.sched.Now(), id, "CRASH")
}

// CrashAt schedules a crash at virtual time t.
func (cl *Cluster) CrashAt(t sim.Time, id types.SiteID) {
	cl.sched.At(t, func() { cl.Crash(id) })
}

// Restart brings a crashed site back: the WAL is replayed, unterminated
// transactions rejoin the termination protocol, and anti-entropy repairs
// copies that missed committed writes while the site was down.
func (cl *Cluster) Restart(id types.SiteID) {
	cl.net.Recover(id)
	cl.rec.Annotate(cl.sched.Now(), id, "RESTART")
	cl.sites[id].recoverVolatile()
	cl.sites[id].syncCopies()
}

// SyncSite triggers an anti-entropy round for one site's copies.
func (cl *Cluster) SyncSite(id types.SiteID) { cl.sites[id].syncCopies() }

// RestartAt schedules a restart at virtual time t.
func (cl *Cluster) RestartAt(t sim.Time, id types.SiteID) {
	cl.sched.At(t, func() { cl.Restart(id) })
}

// Partition splits the network now.
func (cl *Cluster) Partition(groups ...[]types.SiteID) {
	cl.net.Partition(groups...)
	cl.rec.Annotate(cl.sched.Now(), 0, "PARTITION %v", groups)
}

// PartitionAt schedules a partition at virtual time t.
func (cl *Cluster) PartitionAt(t sim.Time, groups ...[]types.SiteID) {
	cl.sched.At(t, func() { cl.Partition(groups...) })
}

// Heal reconnects the network now. Under StrategyMissingWrites it also
// starts the catch-up pass: every copy carrying a missing write asks its
// peers for their current versions, and items whose stale copies catch up
// return to optimistic mode. Under StrategyDynamic the same pass runs for
// copies outside their item's current majority basis, whose catch-up
// triggers a vote reassignment folding them back in.
func (cl *Cluster) Heal() {
	cl.net.Heal()
	cl.rec.Annotate(cl.sched.Now(), 0, "HEAL")
	cl.catchUpMissing()
	cl.catchUpDynamic()
}

// HealAt schedules a heal at virtual time t.
func (cl *Cluster) HealAt(t sim.Time) {
	cl.sched.At(t, func() { cl.Heal() })
}

// Run drives the simulation to quiescence and returns the final time.
func (cl *Cluster) Run() sim.Time { return cl.sched.Run() }

// RunFor advances virtual time by d.
func (cl *Cluster) RunFor(d sim.Duration) sim.Time { return cl.sched.RunFor(d) }

// StateOf returns the local protocol state of txn at a site. The fast path
// reads the live context (terminal outcome, or the participant automaton's
// state); the slow path reconstructs from the site's WAL — the ground truth
// that survives crashes.
func (cl *Cluster) StateOf(id types.SiteID, txn types.TxnID) types.State {
	site := cl.sites[id]
	if c := site.ctx(txn); c != nil {
		switch c.outcome {
		case types.OutcomeCommitted:
			return types.StateCommitted
		case types.OutcomeAborted:
			return types.StateAborted
		}
		if p, ok := c.auto[protocol.RoleParticipant].(interface{ State() types.State }); ok {
			return p.State()
		}
	}
	recs, _ := site.log.Records()
	img := wal.Replay(recs)[txn]
	if img == nil {
		return types.StateInitial
	}
	return img.State
}

// OutcomeAt returns what txn's fate is at one site: committed, aborted,
// blocked (voted yes, still holding locks, no decision), or unknown (never
// voted / not involved).
func (cl *Cluster) OutcomeAt(id types.SiteID, txn types.TxnID) types.Outcome {
	switch cl.StateOf(id, txn) {
	case types.StateCommitted:
		return types.OutcomeCommitted
	case types.StateAborted:
		return types.OutcomeAborted
	case types.StateWait, types.StatePC, types.StatePA:
		return types.OutcomeBlocked
	default:
		return types.OutcomeUnknown
	}
}

// Outcomes maps every site that participated in txn to its outcome.
func (cl *Cluster) Outcomes(txn types.TxnID) map[types.SiteID]types.Outcome {
	out := make(map[types.SiteID]types.Outcome)
	for _, id := range cl.siteIDs {
		if o := cl.OutcomeAt(id, txn); o != types.OutcomeUnknown {
			out[id] = o
		}
	}
	return out
}

// GroupOutcome aggregates txn's fate across a set of sites: committed if any
// committed, aborted if any aborted (a correct protocol never mixes the two;
// mixing is reported by Violations), blocked if any site is still blocked,
// otherwise unknown.
func (cl *Cluster) GroupOutcome(txn types.TxnID, group []types.SiteID) types.Outcome {
	anyBlocked := false
	for _, id := range group {
		switch cl.OutcomeAt(id, txn) {
		case types.OutcomeCommitted:
			return types.OutcomeCommitted
		case types.OutcomeAborted:
			return types.OutcomeAborted
		case types.OutcomeBlocked:
			anyBlocked = true
		}
	}
	if anyBlocked {
		return types.OutcomeBlocked
	}
	return types.OutcomeUnknown
}

// LockedItems returns the items still X-locked by txn at a site.
func (cl *Cluster) LockedItems(id types.SiteID, txn types.TxnID) []types.ItemID {
	return cl.sites[id].locks.HeldItems(txn)
}

// ItemLockedAt reports whether any transaction currently holds a lock on
// item at the given site. The hybrid churn engine uses it as a
// classification probe: a candidate for the analytic fast path must see
// every copy of its writeset unlocked, otherwise its votes are not the
// unanimous yes the arithmetic assumes and it is replayed instead.
func (cl *Cluster) ItemLockedAt(id types.SiteID, item types.ItemID) bool {
	return cl.sites[id].locks.Locked(item)
}

// AnyLocks reports whether any site currently holds any lock. It is the
// cheap screen in front of per-item ItemLockedAt probes: one counter read
// per site instead of a hashed table lookup per (site, item) pair.
func (cl *Cluster) AnyLocks() bool {
	for _, id := range cl.siteIDs {
		if cl.sites[id].locks.HeldCount() > 0 {
			return true
		}
	}
	return false
}

// FirstDecisionAt returns the earliest virtual time at which any site
// irrevocably terminated txn, and whether any site has.
func (cl *Cluster) FirstDecisionAt(txn types.TxnID) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, id := range cl.siteIDs {
		c := cl.sites[id].ctx(txn)
		if c == nil || !c.terminal() {
			continue
		}
		if !found || c.decidedAt < best {
			best = c.decidedAt
			found = true
		}
	}
	return best, found
}

// AcksAtDecision reports how many PC-ACKs the commit coordinator hosted at
// the given site had collected when it decided to commit txn, and whether
// such a coordinator exists. Plain 2PC coordinators report false.
func (cl *Cluster) AcksAtDecision(id types.SiteID, txn types.TxnID) (int, bool) {
	site := cl.sites[id]
	c := site.ctx(txn)
	if c == nil {
		return 0, false
	}
	counter, ok := c.auto[protocol.RoleCoordinator].(interface{ AcksAtDecision() int })
	if !ok {
		return 0, false
	}
	return counter.AcksAtDecision(), true
}
