package engine

import (
	"math/rand"
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/simnet"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// randomSchedule runs one transaction under a randomly generated failure
// schedule: coordinator and participant crashes at random times, a random
// network partition (possibly healing later), random restarts, plus ambient
// message loss and duplication. It returns the cluster for inspection.
func randomSchedule(t testing.TB, spec protocol.Spec, seed int64, loss, dup float64) *Cluster {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Random placement: 2 items, each on 4 of 8 sites, r=2/w=3.
	sites := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	place := func() []types.SiteID {
		perm := rng.Perm(8)
		out := make([]types.SiteID, 4)
		for i := 0; i < 4; i++ {
			out[i] = sites[perm[i]]
		}
		return out
	}
	asgn := voting.MustAssignment(
		voting.Uniform("x", 2, 3, place()...),
		voting.Uniform("y", 2, 3, place()...),
	)
	cl := New(Config{
		Seed:       seed,
		Assignment: asgn,
		Spec:       spec,
		ExtraSites: sites, // random placement may not cover all 8
		Net: simnet.Config{
			MinDelay: 1 * sim.Millisecond,
			MaxDelay: 10 * sim.Millisecond,
			LossProb: loss,
			DupProb:  dup,
			Codec:    true,
		},
	})

	ws := types.Writeset{{Item: "x", Value: rng.Int63n(100)}, {Item: "y", Value: rng.Int63n(100)}}
	participants := asgn.Participants(ws.Items())
	coord := participants[rng.Intn(len(participants))]
	cl.Begin(coord, ws)

	// The commit procedure takes roughly 30–60 ms of virtual time; draw
	// failure times across (0, 80ms] so every phase gets hit.
	rt := func() sim.Time { return sim.Time(1 + rng.Int63n(80_000_000)) }

	// Crash the coordinator with high probability (that is the interesting
	// case), and up to two other sites.
	if rng.Float64() < 0.8 {
		cl.CrashAt(rt(), coord)
	}
	for i := 0; i < rng.Intn(3); i++ {
		victim := sites[rng.Intn(len(sites))]
		cl.CrashAt(rt(), victim)
		if rng.Float64() < 0.5 {
			cl.RestartAt(rt()+sim.Time(20_000_000), victim)
		}
	}
	// Random partition into 2 or 3 groups, possibly healing later.
	if rng.Float64() < 0.8 {
		g := 2 + rng.Intn(2)
		perm := rng.Perm(8)
		groups := make([][]types.SiteID, g)
		for i, pi := range perm {
			groups[i%g] = append(groups[i%g], sites[pi])
		}
		cl.PartitionAt(rt(), groups...)
		if rng.Float64() < 0.4 {
			cl.HealAt(sim.Time(100_000_000) + rt())
		}
	}
	cl.Run()
	return cl
}

// TestAtomicityUnderRandomFailureSchedules asserts Theorem 1 empirically:
// across randomized crash/partition/loss schedules, none of the correct
// protocols ever terminates a transaction inconsistently.
func TestAtomicityUnderRandomFailureSchedules(t *testing.T) {
	specs := []protocol.Spec{
		twopc.Spec{},
		skeenq.Uniform([]types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}, 5, 4),
		core.Spec{Variant: core.Protocol1},
		core.Spec{Variant: core.Protocol2},
	}
	const runs = 120
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= runs; seed++ {
				cl := randomSchedule(t, spec, seed, 0.05, 0.05)
				if v := cl.Violations(); len(v) != 0 {
					t.Fatalf("seed %d: %v", seed, v)
				}
			}
		})
	}
}

// TestThreePCViolatesUnderRandomPartitions documents the baseline's failure
// mode: across the same schedule distribution, 3PC's site-failure
// termination protocol does terminate transactions inconsistently in a
// measurable fraction of runs — the statistical form of Example 2.
func TestThreePCViolatesUnderRandomPartitions(t *testing.T) {
	violations := 0
	const runs = 120
	for seed := int64(1); seed <= runs; seed++ {
		cl := randomSchedule(t, threepc.Spec{}, seed, 0.05, 0.05)
		if len(cl.Violations()) > 0 {
			violations++
		}
	}
	if violations == 0 {
		t.Error("3PC never violated atomicity across random partitions — the Example 2 failure mode should appear")
	}
	t.Logf("3PC violated atomicity in %d/%d random schedules", violations, runs)
}

// TestTerminalStatesConsistentAndLocksReleased: whenever a site reaches a
// terminal state, its transaction locks are released; blocked sites hold
// theirs — the precise coupling avail.Analyze depends on.
func TestTerminalStatesConsistentAndLocksReleased(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		cl := randomSchedule(t, core.Spec{Variant: core.Protocol1}, seed, 0, 0)
		for _, id := range cl.Sites() {
			for txn := types.TxnID(1); txn <= 1; txn++ {
				switch cl.OutcomeAt(id, txn) {
				case types.OutcomeCommitted, types.OutcomeAborted:
					if items := cl.LockedItems(id, txn); len(items) != 0 {
						t.Fatalf("seed %d site %s: terminal but still holds %v", seed, id, items)
					}
				case types.OutcomeBlocked:
					// Blocked sites must hold at least one local copy lock
					// if they store any written item.
					// (Holding zero is possible when the site stores no
					// copy of the writeset, so no assertion on emptiness.)
				}
			}
		}
	}
}

// TestCommittedValueAppliedEverywhereReachable: after a run with no
// failures injected beyond ambient loss, if the transaction committed, every
// up site's copies reflect the committed values at the same version.
func TestCommittedValueAppliedEverywhereReachable(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		asgn := voting.MustAssignment(
			voting.Uniform("x", 2, 3, 1, 2, 3, 4),
			voting.Uniform("y", 2, 3, 5, 6, 7, 8),
		)
		cl := New(Config{Seed: seed, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol2},
			Net: simnet.Config{MinDelay: sim.Millisecond, MaxDelay: 10 * sim.Millisecond, LossProb: 0.05, Codec: true}})
		ws := types.Writeset{{Item: "x", Value: 7}, {Item: "y", Value: 9}}
		txn := cl.Begin(1, ws)
		cl.Run()
		if cl.GroupOutcome(txn, cl.Sites()) != types.OutcomeCommitted {
			continue // loss may abort or block; only committed runs checked
		}
		for _, id := range cl.Sites() {
			if cl.OutcomeAt(id, txn) != types.OutcomeCommitted {
				continue // a straggler may be blocked if its COMMIT was lost
			}
			st := cl.Site(id).Store()
			for _, u := range ws {
				if !st.Has(u.Item) {
					continue
				}
				v, err := st.Read(u.Item)
				if err != nil || v.Value != u.Value {
					t.Fatalf("seed %d site %s %s = %+v, want %d", seed, id, u.Item, v, u.Value)
				}
			}
		}
	}
}
