package engine

import (
	"fmt"
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/skeenq"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
)

// TestCrashGridAllProtocolsAllPhases crashes either the coordinator or a
// participant at a time inside each protocol phase (vote collection,
// prepare distribution, decision distribution), for every correct protocol,
// across several delay seeds. Whatever happens, atomicity and store
// consistency must hold, and when every up site terminated they must agree.
func TestCrashGridAllProtocolsAllPhases(t *testing.T) {
	phases := []struct {
		name string
		at   sim.Time
	}{
		{"during-votes", sim.Time(8 * sim.Millisecond)},
		{"during-prepare", sim.Time(24 * sim.Millisecond)},
		{"during-decision", sim.Time(40 * sim.Millisecond)},
	}
	victims := []struct {
		name string
		site types.SiteID
	}{
		{"coordinator", 1},
		{"participant", 6},
	}
	specs := []protocol.Spec{
		twopc.Spec{},
		skeenq.Uniform([]types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}, 5, 4),
		core.Spec{Variant: core.Protocol1},
		core.Spec{Variant: core.Protocol2},
	}
	for _, spec := range specs {
		for _, ph := range phases {
			for _, v := range victims {
				name := fmt.Sprintf("%s/%s/%s", spec.Name(), ph.name, v.name)
				spec, ph, v := spec, ph, v
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					for seed := int64(1); seed <= 6; seed++ {
						cl := New(Config{Seed: seed, Assignment: paperAssignment(t), Spec: spec})
						txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 3}, {Item: "y", Value: 4}})
						cl.CrashAt(ph.at, v.site)
						cl.Run()

						if viol := cl.Violations(); len(viol) != 0 {
							t.Fatalf("seed %d: %v", seed, viol)
						}
						if issues := cl.CheckStores(); len(issues) != 0 {
							t.Fatalf("seed %d: store issues: %v", seed, issues)
						}
						// All up terminated sites agree (Violations covers the
						// mixed case; here ensure decided-ness is plausible:
						// at least the up sites are not stuck in q).
						_ = txn
					}
				})
			}
		}
	}
}

// TestTP2CommitSideTermination drives termination protocol 2's commit path
// end to end: a partition holding one PC site plus enough W sites for r(x)
// votes of some item commits the transaction via PREPARE-TO-COMMIT.
func TestTP2CommitSideTermination(t *testing.T) {
	asgn := paperAssignment(t)
	cl := New(Config{Seed: 9, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol2}})
	ws := types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 6}}
	// Partition {2,3,5}: site5 in PC; x votes at {2,3} = 2 ≥ r(x)=2 from
	// non-PA sites → TP2 try-commit → confirm (PC reporter 5 + ackers 2,3
	// give r-some) → COMMIT.
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Partition([]types.SiteID{2, 3, 5}, []types.SiteID{1, 4, 6, 7, 8})
	cl.Run()

	for _, id := range []types.SiteID{2, 3, 5} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeCommitted {
			t.Errorf("site%d = %v, want committed (TP2 commit quorum)", id, got)
		}
	}
	// The committed values are applied in the partition.
	v, err := cl.Site(2).Store().Read("x")
	if err != nil || v.Value != 5 {
		t.Errorf("x at site2 = %+v, %v", v, err)
	}
	// The other partition: sites {4,6,7,8} hold 1 x vote + 3 y votes; TP2's
	// abort side needs w for EVERY item → impossible; commit side needs a
	// PC site → none. Blocked.
	for _, id := range []types.SiteID{4, 6, 7, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeBlocked {
			t.Errorf("site%d = %v, want blocked", id, got)
		}
	}
	if viol := cl.Violations(); len(viol) != 0 {
		t.Fatalf("violations: %v", viol)
	}
	// Lemma 1 in action: the blocked partition can never abort later; after
	// healing it must learn the commit.
	cl.Heal()
	cl.Kick(txn)
	cl.Run()
	for _, id := range []types.SiteID{4, 6, 7, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeCommitted {
			t.Errorf("post-heal site%d = %v, want committed", id, got)
		}
	}
}

// TestTP1CommitSideTermination is the TP1 analogue: the partition must hold
// w(x) votes for EVERY item among non-PA sites plus one PC site.
func TestTP1CommitSideTermination(t *testing.T) {
	asgn := paperAssignment(t)
	cl := New(Config{Seed: 10, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1}})
	ws := types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 6}}
	// Partition {1,2,3,5,6,7}: x votes = 3 (w=3 ✓), y votes = 3 (w=3 ✓),
	// site5 in PC → TP1 try-commit → commit.
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		1: types.StateWait, 2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Partition([]types.SiteID{1, 2, 3, 5, 6, 7}, []types.SiteID{4, 8})
	cl.Kick(txn)
	cl.Run()
	for _, id := range []types.SiteID{1, 2, 3, 5, 6, 7} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeCommitted {
			t.Errorf("site%d = %v, want committed (TP1 commit quorum)", id, got)
		}
	}
	// {4,8}: 1 x vote + 1 y vote: no quorum either way → blocked.
	for _, id := range []types.SiteID{4, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeBlocked {
			t.Errorf("site%d = %v, want blocked", id, got)
		}
	}
	if viol := cl.Violations(); len(viol) != 0 {
		t.Fatalf("violations: %v", viol)
	}
}
