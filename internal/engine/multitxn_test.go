package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/types"
)

// TestSequentialTransactionsVersionsMonotonic runs several transactions over
// the same items and checks version numbers grow monotonically and final
// values match the last committed writer.
func TestSequentialTransactionsVersionsMonotonic(t *testing.T) {
	cl := New(Config{Seed: 1, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol2}})
	var lastTxn types.TxnID
	for i := 0; i < 5; i++ {
		lastTxn = cl.Begin(types.SiteID(i%4+1), types.Writeset{{Item: "x", Value: int64(i * 10)}})
		cl.Run()
		if got := cl.GroupOutcome(lastTxn, cl.Sites()); got != types.OutcomeCommitted {
			t.Fatalf("txn %d outcome = %v", i, got)
		}
	}
	var prev uint64
	for _, id := range []types.SiteID{1, 2, 3, 4} {
		v, err := cl.Site(id).Store().Read("x")
		if err != nil {
			t.Fatal(err)
		}
		if v.Value != 40 {
			t.Errorf("site%d x = %d, want 40", id, v.Value)
		}
		if prev != 0 && v.Version != prev {
			t.Errorf("site%d version %d differs from %d", id, v.Version, prev)
		}
		prev = v.Version
	}
	if prev != uint64(lastTxn)+1 {
		t.Errorf("final version = %d, want %d", prev, uint64(lastTxn)+1)
	}
}

// TestConcurrentDisjointTransactionsCommit submits two transactions on
// disjoint items before running the scheduler: both must commit.
func TestConcurrentDisjointTransactionsCommit(t *testing.T) {
	cl := New(Config{Seed: 2, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
	t1 := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}})
	t2 := cl.Begin(5, types.Writeset{{Item: "y", Value: 2}})
	cl.Run()
	if got := cl.GroupOutcome(t1, cl.Sites()); got != types.OutcomeCommitted {
		t.Errorf("t1 = %v", got)
	}
	if got := cl.GroupOutcome(t2, cl.Sites()); got != types.OutcomeCommitted {
		t.Errorf("t2 = %v", got)
	}
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestConcurrentConflictingTransactionsNoWait: two simultaneous writers of x
// conflict at every copy; under the no-wait policy each participant votes no
// for the latecomer, so at most one commits and no violation occurs.
func TestConcurrentConflictingTransactionsNoWait(t *testing.T) {
	committed := 0
	for seed := int64(1); seed <= 20; seed++ {
		cl := New(Config{Seed: seed, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
		t1 := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}})
		t2 := cl.Begin(2, types.Writeset{{Item: "x", Value: 2}})
		cl.Run()
		o1 := cl.GroupOutcome(t1, cl.Sites())
		o2 := cl.GroupOutcome(t2, cl.Sites())
		if o1 == types.OutcomeCommitted && o2 == types.OutcomeCommitted {
			t.Fatalf("seed %d: both conflicting writers committed", seed)
		}
		for i, o := range []types.Outcome{o1, o2} {
			if o != types.OutcomeCommitted && o != types.OutcomeAborted {
				t.Fatalf("seed %d: t%d = %v (must terminate)", seed, i+1, o)
			}
			if o == types.OutcomeCommitted {
				committed++
			}
		}
		if v := cl.Violations(); len(v) != 0 {
			t.Fatalf("seed %d: %v", seed, v)
		}
		// Locks all released.
		for _, id := range cl.Sites() {
			if cl.Site(id).Locks().Locked("x") {
				t.Fatalf("seed %d: x still locked at %s", seed, id)
			}
		}
	}
	if committed == 0 {
		t.Error("across 20 seeds, no conflicting writer ever committed — expected at least some wins")
	}
}

// TestManyTransactionsThroughput pushes a batch of transactions through one
// cluster and verifies every one terminates and the store converges.
func TestManyTransactionsThroughput(t *testing.T) {
	cl := New(Config{Seed: 3, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol2}})
	const n = 30
	txns := make([]types.TxnID, 0, n)
	for i := 0; i < n; i++ {
		item := types.ItemID("x")
		coord := types.SiteID(i%4 + 1)
		if i%2 == 1 {
			item = "y"
			coord = types.SiteID(i%4 + 5)
		}
		txns = append(txns, cl.Begin(coord, types.Writeset{{Item: item, Value: int64(i)}}))
		cl.Run() // drain between submissions: sequential stream
	}
	for i, txn := range txns {
		if got := cl.GroupOutcome(txn, cl.Sites()); got != types.OutcomeCommitted {
			t.Fatalf("txn %d = %v", i, got)
		}
	}
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
