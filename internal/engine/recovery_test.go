package engine

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/sim"
	"qcommit/internal/types"
)

// allWait is the paper's canonical interrupted configuration: every site
// voted yes and holds locks, nobody has the decision.
func allWait() map[types.SiteID]types.State {
	states := make(map[types.SiteID]types.State, 8)
	for s := types.SiteID(1); s <= 8; s++ {
		states[s] = types.StateWait
	}
	return states
}

// checkClean fails the test on any atomicity violation or store
// inconsistency.
func checkClean(t *testing.T, cl *Cluster) {
	t.Helper()
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if issues := cl.CheckStores(); len(issues) != 0 {
		t.Errorf("store issues: %v", issues)
	}
}

// TestCoordinatorRestartMidTermination crashes the coordinator in the middle
// of the commit procedure and restarts it while the survivors' termination
// protocol is running: the recovered site must rejoin (via WAL replay and
// its participant patience timer) and every protocol must end with all
// sites agreeing, with zero violations. This is the recovery path the churn
// runner exercises continuously.
func TestCoordinatorRestartMidTermination(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 8; seed++ {
				cl := New(Config{Seed: seed, Assignment: paperAssignment(t), Spec: spec})
				txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 3}, {Item: "y", Value: 4}})
				// 24ms is inside the prepare/decision distribution window;
				// the restart lands while survivors are terminating.
				cl.CrashAt(sim.Time(24*sim.Millisecond), 1)
				cl.RestartAt(sim.Time(80*sim.Millisecond), 1)
				cl.KickAt(sim.Time(80*sim.Millisecond), txn)
				cl.Run()

				checkClean(t, cl)
				// Every site must reach the same terminal outcome — the
				// restarted coordinator included.
				outcomes := cl.Outcomes(txn)
				var want types.Outcome
				for _, id := range cl.Sites() {
					o, ok := outcomes[id]
					if !ok {
						continue
					}
					if o == types.OutcomeBlocked {
						t.Errorf("seed %d: site%d still blocked after coordinator restart", seed, id)
						continue
					}
					if want == types.OutcomeUnknown {
						want = o
					} else if o != want {
						t.Errorf("seed %d: site%d = %v, others %v", seed, id, o, want)
					}
				}
				if want == types.OutcomeUnknown {
					t.Errorf("seed %d: no site terminated", seed)
				}
			}
		})
	}
}

// TestPartitionHealBetweenTerminationRounds blocks an interrupted
// transaction by partitioning the cluster into quorum-less fragments, lets
// every termination round fail, then heals and kicks: the quorum protocols
// must now terminate everywhere, 2PC must keep blocking (nobody knows the
// decision and nobody is in q — cooperative termination has nothing to work
// with), and nothing may violate atomicity.
func TestPartitionHealBetweenTerminationRounds(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			cl := New(Config{Seed: 7, Assignment: paperAssignment(t), Spec: spec})
			ws := types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 6}}
			txn := cl.SetupInterrupted(1, ws, allWait())
			cl.Crash(1)
			// Singleton fragments: one replica vote each < r = 2, so no
			// quorum rule can fire and every termination round blocks.
			cl.Partition([]types.SiteID{2}, []types.SiteID{3}, []types.SiteID{4},
				[]types.SiteID{5}, []types.SiteID{6}, []types.SiteID{7}, []types.SiteID{8})
			cl.Run()
			// 3PC's site-failure termination rule terminates every fragment
			// immediately (all-W → abort): it never blocks, and here the
			// fragments happen to agree. Everything else blocks.
			wantBeforeHeal := types.OutcomeBlocked
			if spec.Name() == "3PC" {
				wantBeforeHeal = types.OutcomeAborted
			}
			for _, id := range []types.SiteID{2, 4, 6, 8} {
				if got := cl.OutcomeAt(id, txn); got != wantBeforeHeal {
					t.Fatalf("site%d = %v before heal, want %v", id, got, wantBeforeHeal)
				}
			}

			healAt := cl.Scheduler().Now().Add(10 * sim.Millisecond)
			cl.HealAt(healAt)
			cl.KickAt(healAt, txn)
			cl.Run()

			checkClean(t, cl)
			wantAfterHeal := types.OutcomeAborted
			if spec.Name() == "2PC" {
				wantAfterHeal = types.OutcomeBlocked
			}
			for _, id := range []types.SiteID{2, 3, 4, 5, 6, 7, 8} {
				if got := cl.OutcomeAt(id, txn); got != wantAfterHeal {
					t.Errorf("site%d = %v after heal+kick, want %v", id, got, wantAfterHeal)
				}
			}
		})
	}
}

// TestRestartThenRepartition drives the compound fault the churn timeline
// generates all the time: a participant crashes, the network partitions,
// the site restarts into a *different* partition layout, and termination is
// re-kicked. Outcomes must stay consistent across every round.
func TestRestartThenRepartition(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 6; seed++ {
				cl := New(Config{Seed: seed, Assignment: paperAssignment(t), Spec: spec})
				ws := types.Writeset{{Item: "x", Value: 9}, {Item: "y", Value: 10}}
				txn := cl.SetupInterrupted(1, ws, allWait())
				cl.Crash(1)
				cl.Crash(5)
				// Round 1: majority fragment {2,3,4,6,7,8} can terminate;
				// the paper's protocols abort (x has 3 free copies ≥ r=2 at
				// 2,3,4; y has 3 at 6,7,8).
				cl.Partition([]types.SiteID{2, 3, 4, 6, 7, 8}, []types.SiteID{1, 5})
				cl.Run()

				// Rounds 2: site5 recovers, the partition re-forms the other
				// way; its fragment must learn the round-1 outcome or stay
				// blocked — never contradict it.
				t2 := cl.Scheduler().Now().Add(10 * sim.Millisecond)
				cl.RestartAt(t2, 5)
				cl.PartitionAt(t2, []types.SiteID{2, 3, 5}, []types.SiteID{4, 6, 7, 8})
				cl.KickAt(t2.Add(1*sim.Millisecond), txn)
				cl.Run()

				// Final heal: everyone still up converges.
				t3 := cl.Scheduler().Now().Add(10 * sim.Millisecond)
				cl.HealAt(t3)
				cl.KickAt(t3, txn)
				cl.Run()

				checkClean(t, cl)
				// 2PC blocks by design: everyone voted yes, the coordinator
				// is gone, so cooperative termination has nothing to work
				// with in any round. The other protocols must converge to
				// one terminal outcome across all up sites.
				if spec.Name() == "2PC" {
					for _, id := range []types.SiteID{2, 3, 4, 5, 6, 7, 8} {
						if got := cl.OutcomeAt(id, txn); got != types.OutcomeBlocked {
							t.Errorf("seed %d: 2PC site%d = %v, want blocked", seed, id, got)
						}
					}
					continue
				}
				var want types.Outcome
				for _, id := range []types.SiteID{2, 3, 4, 5, 6, 7, 8} {
					got := cl.OutcomeAt(id, txn)
					if got == types.OutcomeBlocked {
						t.Errorf("seed %d: site%d blocked after final heal+kick", seed, id)
						continue
					}
					if got == types.OutcomeUnknown {
						continue
					}
					if want == types.OutcomeUnknown {
						want = got
					} else if got != want {
						t.Errorf("seed %d: site%d = %v, others %v", seed, id, got, want)
					}
				}
			}
		})
	}
}

// TestInitialStateReplyRefusesLateVote pins the promise semantics of the
// never-voted reply paths: after a site answers a termination poll with
// "initial"/"uncommitted", a VOTE-REQ arriving later must not produce a yes
// vote. Without the refusal, a termination protocol that aborted on the
// strength of the reply races the commit protocol into an atomicity
// violation (observed under churn before the fix).
func TestInitialStateReplyRefusesLateVote(t *testing.T) {
	asgn := paperAssignment(t)
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			cl := New(Config{Seed: 3, Assignment: asgn, Spec: spec})
			ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
			// Sites 2-7 voted; site8 never heard of the transaction (its
			// VOTE-REQ is "still in flight").
			states := map[types.SiteID]types.State{
				2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
				5: types.StateWait, 6: types.StateWait, 7: types.StateWait,
				8: types.StateInitial,
			}
			txn := cl.SetupInterrupted(1, ws, states)
			cl.Crash(1)
			cl.Run()
			// Every protocol aborts: site8's initial-state reply is abort
			// evidence for each termination rule (2PC cooperative included).
			for _, id := range []types.SiteID{2, 3, 4, 5, 6, 7} {
				if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
					t.Fatalf("site%d = %v, want aborted", id, got)
				}
			}
			// The late VOTE-REQ arrives at site8 — the engine fallback that
			// answered the poll must have poisoned the vote.
			cl.Network().Send(2, 8, msg.VoteReq{Txn: txn, Coord: 1, Participants: []types.SiteID{2, 3, 4, 5, 6, 7, 8}, Writeset: ws})
			cl.Run()
			if got := cl.StateOf(8, txn); got == types.StateWait || got == types.StatePC {
				t.Errorf("site8 voted yes after promising initial (state %v)", got)
			}
			checkClean(t, cl)
		})
	}
}
