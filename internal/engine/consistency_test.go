package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/types"
)

func TestCheckStoresCleanAfterCommit(t *testing.T) {
	cl := New(Config{Seed: 1, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
	cl.Begin(1, types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}})
	cl.Run()
	if issues := cl.CheckStores(); len(issues) != 0 {
		t.Errorf("issues on a clean commit: %v", issues)
	}
}

func TestCheckStoresCleanAcrossRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		cl := randomSchedule(t, core.Spec{Variant: core.Protocol2}, seed, 0.05, 0.05)
		if issues := cl.CheckStores(); len(issues) != 0 {
			t.Fatalf("seed %d: %v", seed, issues)
		}
	}
}

func TestCheckStoresDetectsDirtyWrite(t *testing.T) {
	cl := New(Config{Seed: 2, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
	cl.Site(3).RefuseVotes(true)
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 9}})
	cl.Run()
	if got := cl.GroupOutcome(txn, cl.Sites()); got != types.OutcomeAborted {
		t.Fatalf("setup: outcome = %v", got)
	}
	// Corrupt a store as if the aborted transaction's write leaked.
	if err := cl.Site(2).Store().Apply("x", 9, uint64(txn)+1); err != nil {
		t.Fatal(err)
	}
	issues := cl.CheckStores()
	if len(issues) == 0 {
		t.Fatal("dirty write not detected")
	}
}

func TestCheckStoresDetectsValueMismatch(t *testing.T) {
	cl := New(Config{Seed: 3, Assignment: paperAssignment(t), Spec: core.Spec{Variant: core.Protocol1}})
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}})
	cl.Run()
	// Corrupt one copy: right version, wrong value.
	if err := cl.Site(2).Store().Apply("x", 999, uint64(txn)+2); err != nil {
		t.Fatal(err)
	}
	issues := cl.CheckStores()
	if len(issues) == 0 {
		t.Fatal("corrupted copy not detected")
	}
}
