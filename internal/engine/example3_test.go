package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/msg"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// example3Cluster builds the paper's Example 3 / Fig. 7 configuration:
// transaction TR issued at site1 updates x and y, whose copies x2..x5 and
// y2..y5 live at sites 2–5 with one vote each, w(x)=w(y)=3, r(x)=r(y)=2.
// The coordinator (site1) has crashed leaving site5 in PC and sites 2–4 in
// W. All messages between site2 and site3 and from site2 to site5 are lost,
// so both site2 and site3 win elections and run termination concurrently:
// site2 can only assemble an abort quorum, site3 only a commit quorum.
// The seed varies message delays, i.e. the interleaving of the two
// coordinators' PREPARE rounds at site4.
func example3Cluster(t testing.TB, seed int64, buggy bool) (*Cluster, types.TxnID) {
	t.Helper()
	asgn := voting.MustAssignment(
		voting.Uniform("x", 2, 3, 2, 3, 4, 5),
		voting.Uniform("y", 2, 3, 2, 3, 4, 5),
	)
	cl := New(Config{
		Seed:       seed,
		Assignment: asgn,
		Spec:       core.Spec{Variant: core.Protocol1, BuggyBufferCrossing: buggy},
		ExtraSites: []types.SiteID{1},
	})
	cl.Network().SetFilter(func(e msg.Envelope) bool {
		between23 := (e.From == 2 && e.To == 3) || (e.From == 3 && e.To == 2)
		from2to5 := e.From == 2 && e.To == 5
		return between23 || from2to5
	})
	ws := types.Writeset{{Item: "x", Value: 10}, {Item: "y", Value: 20}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StatePC,
	})
	cl.Crash(1)
	return cl, txn
}

// TestExample3BuggyRuleViolatesAtomicity reproduces the paper's
// counterexample at a seed whose interleaving lets site4 acknowledge both
// coordinators: site2 collects enough PA-ACKs to abort while site3 collects
// enough PC-ACKs to commit, and the transaction terminates inconsistently.
func TestExample3BuggyRuleViolatesAtomicity(t *testing.T) {
	cl, txn := example3Cluster(t, 2, true)
	cl.Run()

	outcomes := cl.Outcomes(txn)
	committed, aborted := 0, 0
	for _, o := range outcomes {
		switch o {
		case types.OutcomeCommitted:
			committed++
		case types.OutcomeAborted:
			aborted++
		}
	}
	if committed == 0 || aborted == 0 {
		t.Fatalf("expected mixed outcomes with the buggy rule, got %v", outcomes)
	}
	if v := cl.Violations(); len(v) == 0 {
		t.Error("expected an atomicity violation report")
	} else {
		t.Logf("violation (expected): %s", v[0])
	}
}

// TestExample3Sweep drives the two-coordinator scenario across 60 delay
// seeds, with and without the paper's buffer-state rule. The buggy variant
// must violate atomicity for at least one interleaving (that is the point of
// the counterexample); the correct rule must never violate it.
func TestExample3Sweep(t *testing.T) {
	buggyViolations, correctViolations := 0, 0
	sawCommit, sawAbort := false, false
	for seed := int64(1); seed <= 60; seed++ {
		for _, buggy := range []bool{true, false} {
			cl, txn := example3Cluster(t, seed, buggy)
			cl.Run()
			v := cl.Violations()
			if buggy {
				if len(v) > 0 {
					buggyViolations++
				}
				continue
			}
			if len(v) > 0 {
				correctViolations++
				t.Errorf("seed %d: correct rule violated atomicity: %v (outcomes %v)",
					seed, v, cl.Outcomes(txn))
			}
			for _, o := range cl.Outcomes(txn) {
				if o == types.OutcomeCommitted {
					sawCommit = true
				}
				if o == types.OutcomeAborted {
					sawAbort = true
				}
			}
		}
	}
	if buggyViolations == 0 {
		t.Error("buggy buffer-crossing rule never violated atomicity across 60 interleavings; the counterexample should manifest")
	}
	t.Logf("buggy violations: %d/60 seeds; correct: %d/60; correct-rule global outcomes seen: commit=%v abort=%v",
		buggyViolations, correctViolations, sawCommit, sawAbort)
}
