package engine

import (
	"testing"

	"qcommit/internal/core"
	"qcommit/internal/sim"
	"qcommit/internal/types"
)

// TestTerminatorCrashMidTerminationHandedOver exercises the paper's feature
// (3): the termination protocol deals with additional failures during its
// own execution. The elected termination coordinator crashes after polling
// states but before distributing a decision; the surviving participants'
// patience timers elect a new coordinator which finishes the job.
func TestTerminatorCrashMidTerminationHandedOver(t *testing.T) {
	asgn := paperAssignment(t)
	cl := New(Config{Seed: 11, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1},
		MaxTerminationRounds: 5})
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	// Whole cluster reachable except the crashed original coordinator: the
	// first termination round could abort (all W). We kill the newly elected
	// coordinator (the lowest live site, site2) right after its poll starts.
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StateWait, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	// Patience fires at 30ms; election resolves by ~50ms; the terminator
	// polls at ~50–70ms. Crash site2 at 55ms — mid-poll.
	cl.CrashAt(sim.Time(55*sim.Millisecond), 2)
	cl.Run()

	for _, id := range []types.SiteID{3, 4, 5, 6, 7, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("site%d = %v, want aborted (handover should finish the round)", id, got)
		}
	}
	if v := cl.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestTerminatorCrashAfterPartialDistribution: the termination coordinator
// crashes after sending the decision to only some participants. The decision
// is already irrevocable; the next round must observe it (immediate commit/
// abort on a terminal report) and spread it, not contradict it.
func TestTerminatorCrashAfterPartialDistribution(t *testing.T) {
	asgn := paperAssignment(t)
	for seed := int64(1); seed <= 15; seed++ {
		cl := New(Config{Seed: seed, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1},
			MaxTerminationRounds: 5})
		ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
		txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
			2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
			5: types.StateWait, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
		})
		cl.Crash(1)
		// The abort decision distributes around ~90ms (poll 2T + PTA 2T +
		// confirm); crash site2 somewhere inside the distribution window so
		// only a prefix of ABORT messages lands.
		cl.CrashAt(sim.Time(92*sim.Millisecond), 2)
		cl.Run()
		if v := cl.Violations(); len(v) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, v)
		}
		// Every surviving site must end aborted — nobody may stay blocked,
		// because the remaining sites can re-run termination and either see
		// an aborted peer or assemble the abort quorum again.
		for _, id := range []types.SiteID{3, 4, 5, 6, 7, 8} {
			if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
				t.Fatalf("seed %d: site%d = %v, want aborted", seed, id, got)
			}
		}
	}
}

// TestRecoveredSiteJoinsOngoingTermination: a participant crashes before the
// termination protocol starts, recovers while it is underway, and must end
// consistent with everyone else.
func TestRecoveredSiteJoinsOngoingTermination(t *testing.T) {
	asgn := paperAssignment(t)
	cl := New(Config{Seed: 13, Assignment: asgn, Spec: core.Spec{Variant: core.Protocol1},
		MaxTerminationRounds: 5})
	ws := types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	txn := cl.SetupInterrupted(1, ws, map[types.SiteID]types.State{
		2: types.StateWait, 3: types.StateWait, 4: types.StateWait,
		5: types.StateWait, 6: types.StateWait, 7: types.StateWait, 8: types.StateWait,
	})
	cl.Crash(1)
	cl.Crash(7)
	cl.RestartAt(sim.Time(60*sim.Millisecond), 7)
	cl.Run()
	if v := cl.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if got := cl.OutcomeAt(7, txn); got != types.OutcomeAborted {
		t.Errorf("recovered site7 = %v, want aborted like its peers", got)
	}
	for _, id := range []types.SiteID{2, 3, 4, 5, 6, 8} {
		if got := cl.OutcomeAt(id, txn); got != types.OutcomeAborted {
			t.Errorf("site%d = %v, want aborted", id, got)
		}
	}
}
