package engine

import (
	"errors"
	"fmt"
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/storage"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// Data-access errors, surfaced unchanged through the qcommit root API.
var (
	// ErrNoQuorum means the reachable, unlocked copies do not carry enough
	// votes for the operation under the current access mode.
	ErrNoQuorum = errors.New("qcommit: replica quorum not reachable")
	// ErrUnknownItem means the item has no replica configuration.
	ErrUnknownItem = errors.New("qcommit: unknown item")
	// ErrSiteDown means the site issuing the operation is itself down — a
	// crashed site cannot assemble quorums or serve reads.
	ErrSiteDown = errors.New("qcommit: requesting site is down")
)

// tally is the result of one vote-counting pass over an item's copies.
type tally struct {
	// votes sums the static votes of up, connected, unlocked copies
	// reachable from the requesting site. Under the missing-writes
	// strategy, copies carrying missing writes are excluded for reads
	// (their values are stale) but counted for writes (a full-value write
	// heals them). Under the dynamic strategy the static sum is ignored;
	// quorums are judged over sites under the current vote table instead.
	votes int
	// sites lists the counted copy sites, in copy declaration order — the
	// group the dynamic strategy's epoch-guarded tables are consulted for.
	// Collected only under StrategyDynamic; the other strategies judge
	// quorums from the static vote sum alone.
	sites []types.SiteID
	// copies holds the (value, version) pairs behind votes when collect is
	// set — the read path's resolution candidates.
	copies []storage.Versioned
}

// tallyVotes is the one shared vote-counting pass behind ReadItem, CanRead
// and CanWrite: it walks item's copies and counts those that are up, in the
// requesting site's partition group, and not locked by a pending
// transaction. forWrite selects write semantics (stale copies count; a write
// installs a complete fresh value). collect additionally gathers the counted
// copies' versioned values for read resolution.
func (cl *Cluster) tallyVotes(from types.SiteID, item types.ItemID, forWrite, collect bool) (tally, voting.ItemConfig, error) {
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return tally{}, ic, fmt.Errorf("%w: %q", ErrUnknownItem, item)
	}
	if cl.net.Down(from) {
		return tally{}, ic, fmt.Errorf("%w: %s", ErrSiteDown, from)
	}
	var t tally
	for _, cp := range ic.Copies {
		if cl.net.Down(cp.Site) || !cl.net.Connected(from, cp.Site) {
			continue
		}
		site := cl.sites[cp.Site]
		if site.locks.Locked(item) {
			continue // held by a pending (possibly blocked) transaction
		}
		if !forWrite && cl.adaptive != nil && cl.adaptive.IsMissing(item, cp.Site) {
			continue // stale copy: must not serve reads
		}
		if collect {
			v, err := site.store.Read(item)
			if err != nil {
				continue
			}
			t.copies = append(t.copies, v)
		}
		t.votes += cp.Votes
		if cl.dynamic != nil {
			t.sites = append(t.sites, cp.Site)
		}
	}
	return t, ic, nil
}

// readNeed returns the votes a read of item must collect right now: r(x)
// under the quorum strategy and in pessimistic missing-writes mode, a single
// vote in optimistic mode (read-one).
func (cl *Cluster) readNeed(item types.ItemID, ic voting.ItemConfig) int {
	if cl.adaptive != nil && cl.adaptive.ModeOf(item) == voting.Optimistic {
		return 1
	}
	return ic.R
}

// ReadItem performs a strategy-aware read of item as seen from the given
// site: it collects copies from up sites in the same partition group whose
// copies are not locked, requires the current read quorum — r(x) votes under
// StrategyQuorum, one fresh vote in optimistic missing-writes mode, a
// majority of the current vote table under StrategyDynamic — and returns the
// copy with the highest version number (which the constraint r+w > v, the
// absence of missing writes, or the table-majority intersection guarantees
// is the most recently committed one).
func (cl *Cluster) ReadItem(from types.SiteID, item types.ItemID) (storage.Versioned, error) {
	t, ic, err := cl.tallyVotes(from, item, false, true)
	if err != nil {
		return storage.Versioned{}, err
	}
	if cl.dynamic != nil {
		got, need, _, epoch := cl.dynamic.VotesAmong(item, t.sites)
		if need == 0 || got < need {
			return storage.Versioned{}, fmt.Errorf("%w: item %q has %d free votes under the epoch-%d table reachable from %s, read quorum is %d",
				ErrNoQuorum, item, got, epoch, from, need)
		}
	} else if need := cl.readNeed(item, ic); t.votes < need {
		return storage.Versioned{}, fmt.Errorf("%w: item %q has %d free votes reachable from %s, read quorum is %d",
			ErrNoQuorum, item, t.votes, from, need)
	}
	return storage.ResolveRead(t.copies)
}

// CanRead reports whether a read of item could assemble its current read
// quorum from the given site right now. Unlike ReadItem it resolves no
// values.
func (cl *Cluster) CanRead(from types.SiteID, item types.ItemID) bool {
	t, ic, err := cl.tallyVotes(from, item, false, false)
	if err != nil {
		return false
	}
	if cl.dynamic != nil {
		return cl.dynamic.CanRead(item, t.sites)
	}
	return t.votes >= cl.readNeed(item, ic)
}

// CanWrite reports whether a transaction writing item could assemble a write
// quorum from the given site's partition right now (up, connected, unlocked
// copies carrying ≥ w(x) votes). Under the missing-writes strategy the
// threshold stays w(x): an optimistic write tries to reach every copy, but
// one that reaches at least the pessimistic quorum proceeds and demotes the
// item instead of failing. Under the dynamic strategy the threshold is a
// majority of the newest vote table installed at the reachable copies.
func (cl *Cluster) CanWrite(from types.SiteID, item types.ItemID) bool {
	t, ic, err := cl.tallyVotes(from, item, true, false)
	if err != nil {
		return false
	}
	if cl.dynamic != nil {
		return cl.dynamic.CanWrite(item, t.sites)
	}
	return t.votes >= ic.W
}

// Strategy returns the cluster's access strategy.
func (cl *Cluster) Strategy() voting.Strategy { return cl.cfg.Strategy }

// ItemMode returns item's current missing-writes mode. Under StrategyQuorum
// every item is permanently pessimistic (quorum operations only).
func (cl *Cluster) ItemMode(item types.ItemID) voting.Mode {
	if cl.adaptive == nil {
		return voting.Pessimistic
	}
	return cl.adaptive.ModeOf(item)
}

// MissingAt returns the sites currently carrying missing writes for item
// (always empty under StrategyQuorum), ascending.
func (cl *Cluster) MissingAt(item types.ItemID) []types.SiteID {
	if cl.adaptive == nil {
		return nil
	}
	return cl.adaptive.MissingAt(item)
}

// ModeTransitions returns the cumulative missing-writes mode transitions:
// demotions (optimistic→pessimistic) and restorations (the reverse). Both
// are zero under StrategyQuorum.
func (cl *Cluster) ModeTransitions() (demotions, restorations int) {
	if cl.adaptive == nil {
		return 0, 0
	}
	return cl.adaptive.Transitions()
}

// noteCommitApplied is the strategy bookkeeping hook doCommit calls after
// applying a committed writeset at one site. The first site to decide
// records, for every written item, which copies the commit actually reaches:
// a copy counts as reached only if its site is up, in the decider's
// partition group, and bound to apply the write — it is the decider itself,
// it already committed, or it still holds the transaction's X lock (voted,
// so the decision will reach it via COMMIT or the termination protocol).
// Under the missing-writes strategy, copies at down, partitioned-away or
// never-voted sites gain missing writes and the item demotes to pessimistic
// mode; under the dynamic strategy the reached set becomes the item's new
// majority basis (vote reassignment, epoch-guarded inside the tracker).
// Every subsequent local apply (a late COMMIT at a previously unreachable
// site) may resolve that site's missing writes or rejoin it to the basis,
// since an applied write installs the complete current value.
func (cl *Cluster) noteCommitApplied(s *Site, c *txnCtx) {
	if cl.adaptive == nil && cl.dynamic == nil {
		return
	}
	if !cl.recordedWrites[c.txn] {
		cl.recordedWrites[c.txn] = true
		for _, item := range c.ws.Items() {
			ic, ok := cl.cfg.Assignment.Item(item)
			if !ok {
				continue
			}
			reached := make([]types.SiteID, 0, len(ic.Copies))
			for _, cp := range ic.Copies {
				if cl.net.Down(cp.Site) || !cl.net.Connected(s.id, cp.Site) {
					continue
				}
				peer := cl.sites[cp.Site]
				pc := peer.ctx(c.txn)
				willApply := cp.Site == s.id ||
					(pc != nil && pc.outcome == types.OutcomeCommitted) ||
					peer.locks.LockedBy(c.txn, item)
				if willApply {
					reached = append(reached, cp.Site)
				}
			}
			if cl.adaptive != nil && len(reached) < len(ic.Copies) {
				cl.adaptive.DegradeExcept(item, reached)
			}
			if cl.dynamic != nil {
				cl.dynamic.Reassign(item, reached)
			}
		}
	}
	for _, item := range c.ws.Items() {
		if s.store.Has(item) {
			cl.maybeResolve(item, s.id)
			cl.maybeRejoin(item, s.id)
		}
	}
}

// maybeResolve clears site's missing write for item once its copy has caught
// up to the highest committed version cluster-wide (stores only ever hold
// committed values, so the max version across copies is that version).
func (cl *Cluster) maybeResolve(item types.ItemID, site types.SiteID) {
	if cl.adaptive == nil || !cl.adaptive.IsMissing(item, site) {
		return
	}
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return
	}
	var max uint64
	for _, cp := range ic.Copies {
		if v, err := cl.sites[cp.Site].store.Read(item); err == nil && v.Version > max {
			max = v.Version
		}
	}
	if v, err := cl.sites[site].store.Read(item); err == nil && v.Version >= max {
		cl.adaptive.ResolveMissing(item, site)
	}
}

// catchUpMissing starts an anti-entropy round for every copy still carrying
// a missing write: each such site (if up) asks its peer replicas for their
// current copies, and the CopyResp applies resolve the missing writes,
// restoring items to optimistic mode. Called on Heal; Restart's per-site
// syncCopies covers the crash/recovery path.
func (cl *Cluster) catchUpMissing() {
	if cl.adaptive == nil {
		return
	}
	cl.cfg.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, stale := range cl.adaptive.MissingAt(ic.Item) {
			if cl.net.Down(stale) {
				continue
			}
			for _, cp := range ic.Copies {
				if cp.Site != stale {
					cl.send(stale, cp.Site, msg.CopyReq{Item: ic.Item})
				}
			}
		}
	})
}

// catchUpDynamic is catchUpMissing's dynamic-strategy counterpart, called on
// Heal: every copy outside its item's current majority basis asks its peers
// for their current versions; the CopyResp applies bring it up to date and
// maybeRejoin folds it back into the basis via a reassignment. Restart's
// per-site syncCopies covers the crash/recovery path the same way.
func (cl *Cluster) catchUpDynamic() {
	if cl.dynamic == nil {
		return
	}
	cl.cfg.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, stale := range cl.dynamic.StaleSites(ic.Item) {
			if cl.net.Down(stale) {
				continue
			}
			for _, cp := range ic.Copies {
				if cp.Site != stale {
					cl.send(stale, cp.Site, msg.CopyReq{Item: ic.Item})
				}
			}
		}
	})
}

// maybeRejoin folds a caught-up copy back into its item's dynamic majority
// basis: once site's copy holds the highest version any copy holds, the
// reachable current copies (basis members plus the rejoiner) reassign votes
// to include it. The tracker's epoch guard makes the call safe to issue
// optimistically — a group not holding a majority under the newest table it
// knows cannot install anything. No-op for sites already in the basis and
// under the other strategies.
func (cl *Cluster) maybeRejoin(item types.ItemID, site types.SiteID) {
	if cl.dynamic == nil || cl.dynamic.InBasis(item, site) || cl.net.Down(site) {
		return
	}
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return
	}
	var max uint64
	versions := make(map[types.SiteID]uint64, len(ic.Copies))
	for _, cp := range ic.Copies {
		if v, err := cl.sites[cp.Site].store.Read(item); err == nil {
			versions[cp.Site] = v.Version
			if v.Version > max {
				max = v.Version
			}
		}
	}
	if versions[site] < max {
		return // not caught up yet; a later CopyResp will retry
	}
	group := make([]types.SiteID, 0, len(ic.Copies))
	for _, cp := range ic.Copies {
		if !cl.net.Down(cp.Site) && cl.net.Connected(site, cp.Site) && versions[cp.Site] == max {
			group = append(group, cp.Site)
		}
	}
	cl.dynamic.Reassign(item, group)
}

// VoteEpoch returns the version number of item's current dynamic vote table
// (always 0 under the static strategies: the initial table is never
// superseded).
func (cl *Cluster) VoteEpoch(item types.ItemID) uint64 {
	if cl.dynamic == nil {
		return 0
	}
	return cl.dynamic.Epoch(item)
}

// VotesNow returns item's currently effective vote table, ascending by
// site: the static assignment under StrategyQuorum and
// StrategyMissingWrites, the newest reassigned table under StrategyDynamic
// (sites outside the majority basis hold no votes and are omitted).
func (cl *Cluster) VotesNow(item types.ItemID) []voting.Copy {
	if cl.dynamic == nil {
		ic, ok := cl.cfg.Assignment.Item(item)
		if !ok {
			return nil
		}
		out := append([]voting.Copy(nil), ic.Copies...)
		sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
		return out
	}
	return cl.dynamic.VotesNow(item)
}

// VoteTransitions returns the cumulative dynamic-voting reassignment
// counters: vote tables installed, and the subset that restored the full
// static copy set. Both are zero under the other strategies.
func (cl *Cluster) VoteTransitions() (reassignments, restorations int) {
	if cl.dynamic == nil {
		return 0, 0
	}
	return cl.dynamic.Transitions()
}
