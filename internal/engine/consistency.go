package engine

import (
	"fmt"
	"sort"

	"qcommit/internal/storage"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// CheckStores audits every copy of every item against the cluster's WALs and
// returns human-readable issues. The invariants are the storage-level
// consequences of atomic commitment plus versioned replication:
//
//  1. a copy's version is either 1 (initial) or txn+1 for a transaction
//     that committed at some site — values written by aborted or undecided
//     transactions must never be visible;
//  2. the value stored equals what that committed transaction wrote to the
//     item (no cross-item or cross-transaction smearing);
//  3. two copies of the same item at the same version hold the same value.
//
// A correct protocol yields no issues in any reachable state; the checker is
// used by the randomized sweeps and is also a debugging aid.
func (cl *Cluster) CheckStores() []string {
	var issues []string

	// Gather global commit/abort knowledge and writesets from all WALs.
	// Records are scanned in place — the per-record fold only needs the
	// terminal markers plus one writeset per transaction, so replaying full
	// per-site transaction images here would be pure allocation churn.
	type txnInfo struct {
		committed bool
		aborted   bool
		ws        types.Writeset
	}
	txns := make(map[types.TxnID]*txnInfo)
	fold := func(r *wal.Record) {
		if r.Type != wal.RecCommit && r.Type != wal.RecAbort && r.Type != wal.RecVotedNo && len(r.Writeset) == 0 {
			return
		}
		info := txns[r.Txn]
		if info == nil {
			info = &txnInfo{}
			txns[r.Txn] = info
		}
		switch r.Type {
		case wal.RecCommit:
			info.committed = true
		case wal.RecAbort, wal.RecVotedNo:
			info.aborted = true
		}
		if len(r.Writeset) > 0 && len(info.ws) == 0 {
			info.ws = r.Writeset
		}
	}
	for _, id := range cl.siteIDs {
		if mem, ok := cl.sites[id].log.(*wal.MemLog); ok {
			mem.Scan(fold)
			continue
		}
		recs, _ := cl.sites[id].log.Records()
		for i := range recs {
			fold(&recs[i])
		}
	}

	// Values seen per (item, version) for cross-copy agreement.
	type iv struct {
		item types.ItemID
		ver  uint64
	}
	seen := make(map[iv]int64)

	for _, id := range cl.siteIDs {
		id := id
		site := cl.sites[id]
		// Scan visits copies in map order; the trailing sort restores a
		// deterministic issue list, and the divergence message orders its
		// value pair itself so it reads the same either way around.
		site.store.Scan(func(item types.ItemID, v storage.Versioned) {
			if v.Version == 1 {
				return // initial value
			}
			txn := types.TxnID(v.Version - 1)
			info := txns[txn]
			switch {
			case info == nil:
				issues = append(issues, fmt.Sprintf(
					"site %s: item %s at version %d from unknown transaction %s", id, item, v.Version, txn))
			case !info.committed:
				state := "undecided"
				if info.aborted {
					state = "aborted"
				}
				issues = append(issues, fmt.Sprintf(
					"site %s: item %s holds value of %s transaction %s", id, item, state, txn))
			default:
				want, ok := info.ws.ValueOf(item)
				if !ok {
					issues = append(issues, fmt.Sprintf(
						"site %s: item %s at version of %s, which never wrote it", id, item, txn))
				} else if want != v.Value {
					issues = append(issues, fmt.Sprintf(
						"site %s: item %s = %d, but %s wrote %d", id, item, v.Value, txn, want))
				}
			}
			key := iv{item, v.Version}
			if prev, ok := seen[key]; ok && prev != v.Value {
				lo, hi := prev, v.Value
				if lo > hi {
					lo, hi = hi, lo
				}
				issues = append(issues, fmt.Sprintf(
					"item %s version %d has divergent values %d and %d", item, v.Version, lo, hi))
			}
			seen[key] = v.Value
		})
	}
	sort.Strings(issues)
	return issues
}
