// Package linttest is the golden-fixture harness for qcommit's lint suite,
// modeled on golang.org/x/tools/go/analysis/analysistest: a fixture package
// under testdata/src marks every line it expects a finding on with a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment, and Run fails the test on any diagnostic without a matching want
// or any want without a matching diagnostic. Fixture packages are real,
// compiling packages (go list builds their export data), kept out of
// ./... sweeps by living under testdata.
package linttest

import (
	"regexp"
	"strconv"
	"testing"

	"qcommit/internal/lint"
	"qcommit/internal/lint/driver"
)

// wantRE extracts the quoted patterns of a want comment; patterns are
// backquoted (the natural form for regexps) or double-quoted.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one want pattern anchored to a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package matched by pattern (e.g.
// "./testdata/src/determinism"), runs the given analyzers, and compares the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	units, err := driver.LoadPackages([]string{pattern})
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(units) == 0 {
		t.Fatalf("no packages matched %s", pattern)
	}
	for _, u := range units {
		if u.Err != nil {
			t.Fatalf("%s: %v", u.ImportPath, u.Err)
		}
		diags, err := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", u.ImportPath, err)
		}
		wants := collectWants(t, u)
		for _, d := range diags {
			pos := u.Fset.Position(d.Pos)
			if !match(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses every want comment in the unit's files.
func collectWants(t *testing.T, u driver.LoadedUnit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// match consumes the first unmatched expectation on (file, line) whose
// pattern matches message.
func match(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
