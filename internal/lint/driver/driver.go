// Package driver loads type-checked packages for qcommit's lint suite and
// speaks the (unpublished but stable) cmd/go vet-tool protocol, so cmd/qlint
// runs both standalone (qlint ./...) and as `go vet -vettool=qlint`.
//
// Everything here is standard library only: when cmd/go drives us it hands
// the tool a JSON config naming every dependency's export-data file, and in
// standalone mode `go list -export -deps` produces the same information, so
// type-checking needs no module resolution of its own — go/importer's gc
// importer reads the export data through a lookup function.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"runtime"
)

// Config mirrors cmd/go's vetConfig: the JSON description of one package
// unit that `go vet -vettool` passes to the tool as a *.cfg file.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// ReadConfig parses a vet.cfg file.
func ReadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

// Unit is one parsed and type-checked package, ready for analysis.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// goVersionRE matches language versions types.Config accepts ("go1.24");
// anything else (toolchain suffixes, "") is dropped rather than passed on.
var goVersionRE = regexp.MustCompile(`^go\d+\.\d+$`)

// Load parses cfg.GoFiles and type-checks them against the export data named
// in cfg.PackageFile. Type errors are returned after best-effort checking so
// the caller can honor SucceedOnTypecheckFailure.
func Load(cfg *Config) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := &types.Config{
		Importer: &unsafeAwareImporter{base: importer.ForCompiler(fset, compiler, lookup), dir: cfg.Dir},
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
		Error:    func(error) {}, // collect everything; Check returns the first
	}
	if goVersionRE.MatchString(cfg.GoVersion) {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	unit := &Unit{ImportPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	return unit, err
}

// unsafeAwareImporter routes "unsafe" to types.Unsafe and everything else
// through the gc export-data importer.
type unsafeAwareImporter struct {
	base types.Importer
	dir  string
}

func (i *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if from, ok := i.base.(types.ImporterFrom); ok {
		return from.ImportFrom(path, i.dir, 0)
	}
	return i.base.Import(path)
}
