package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qcommit/internal/lint"
)

// Main is cmd/qlint's entry point. It implements the cmd/go vet-tool
// protocol — `qlint -V=full` (tool identity for the build cache),
// `qlint -flags` (supported flags as JSON), and `qlint [flags] foo.cfg`
// (analyze one package unit) — and a standalone mode where the arguments are
// package patterns resolved through `go list` (default "./...").
//
// Exit status: 0 clean, 1 operational error, 2 findings reported.
func Main(analyzers []*lint.Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion(progname)
			return
		case "-flags", "--flags":
			printFlagDefs(analyzers)
			return
		}
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-<analyzer>...] [package pattern... | vet.cfg]\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  -%s\n        %s\n", a.Name, a.Doc)
		}
	}
	for _, a := range analyzers {
		fs.Bool(a.Name, false, a.Doc)
	}
	_ = fs.Parse(os.Args[1:]) // ExitOnError
	enabled := selectAnalyzers(fs, analyzers)

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], enabled))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runPatterns(args, enabled))
}

// selectAnalyzers applies unitchecker-style flag semantics: with no analyzer
// flags, run everything; if any -name is set true, run exactly those; if
// only -name=false flags appear, run everything except those.
func selectAnalyzers(fs *flag.FlagSet, analyzers []*lint.Analyzer) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	setTrue := map[string]bool{}
	setFalse := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if byName[f.Name] == nil {
			return
		}
		if f.Value.String() == "true" {
			setTrue[f.Name] = true
		} else {
			setFalse[f.Name] = true
		}
	})
	if len(setTrue) > 0 {
		var out []*lint.Analyzer
		for _, a := range analyzers {
			if setTrue[a.Name] {
				out = append(out, a)
			}
		}
		return out
	}
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if !setFalse[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// printVersion emits the `-V=full` line cmd/go's toolID check requires:
// "<name> version devel ... buildID=<content-hash>", where the hash is this
// executable's content so go vet's action cache invalidates when qlint is
// rebuilt with different analyzers.
func printVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

// printFlagDefs emits the JSON flag description `go vet` queries via -flags.
func printFlagDefs(analyzers []*lint.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

// runVetUnit analyzes the single package unit described by a vet.cfg file.
func runVetUnit(cfgPath string, analyzers []*lint.Analyzer) int {
	cfg, err := ReadConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency-only run: the suite uses no cross-package facts, so
		// just produce the (empty) facts file cmd/go caches.
		writeVetx(cfg)
		return 0
	}
	unit, err := Load(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := lint.Run(unit.Fset, unit.Files, unit.Pkg, unit.Info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	printDiagnostics(unit, diags)
	writeVetx(cfg)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(cfg *Config) {
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, []byte("qlint: no facts\n"), 0o666)
	}
}

func printDiagnostics(unit *Unit, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", unit.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// runPatterns analyzes every in-module package matched by the patterns.
func runPatterns(patterns []string, analyzers []*lint.Analyzer) int {
	units, err := LoadPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	status := 0
	for _, u := range units {
		if u.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", u.ImportPath, u.Err)
			status = 1
			continue
		}
		diags, err := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		printDiagnostics(u.Unit, diags)
		if len(diags) > 0 && status == 0 {
			status = 2
		}
	}
	return status
}
