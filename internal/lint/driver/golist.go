package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadedUnit pairs a Unit with the load/typecheck error for its package, so
// pattern runs can report per-package failures without aborting the sweep.
type LoadedUnit struct {
	*Unit
	Err error
}

// LoadPackages resolves patterns through `go list -export -deps`, then
// parses and type-checks every directly matched package against its
// dependencies' export data. Standard-library and dependency-only packages
// provide export data but are not themselves analyzed.
func LoadPackages(patterns []string) ([]LoadedUnit, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}

	packageFile := make(map[string]string)
	importMap := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		importMap[p.ImportPath] = p.ImportPath
	}

	var units []LoadedUnit
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			units = append(units, LoadedUnit{
				Unit: &Unit{ImportPath: p.ImportPath},
				Err:  fmt.Errorf("%s", p.Error.Err),
			})
			continue
		}
		cfg := &Config{
			Compiler:    "gc",
			Dir:         p.Dir,
			ImportPath:  p.ImportPath,
			ImportMap:   importMap,
			PackageFile: packageFile,
		}
		for _, f := range p.GoFiles {
			cfg.GoFiles = append(cfg.GoFiles, filepath.Join(p.Dir, f))
		}
		unit, err := Load(cfg)
		units = append(units, LoadedUnit{Unit: unit, Err: err})
	}
	return units, nil
}
