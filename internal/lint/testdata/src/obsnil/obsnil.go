// Package obsnil is the golden fixture for the obsnil analyzer: obs handles
// are nil-safe only when reached through the pointer method set, so direct
// Observer field access, handle dereference, and value-typed handle
// declarations are all flagged.
package obsnil

import "qcommit/internal/obs"

// fields reaches through Observer's fields: panics when ob is nil.
func fields(ob *obs.Observer) (*obs.Registry, *obs.Spans) {
	return ob.Registry, ob.Spans // want `direct access to obs\.Observer\.Registry` `direct access to obs\.Observer\.Spans`
}

// accessors is the nil-safe way in.
func accessors(ob *obs.Observer) (*obs.Registry, *obs.Spans) {
	return ob.Reg(), ob.Spanner()
}

// construction of an Observer is fine — the analyzer only polices access.
func build() *obs.Observer {
	return &obs.Observer{Registry: obs.NewRegistry(), Spans: obs.NewSpans(1, 16, 0)}
}

// deref copies a handle out of its pointer: the copy's atomics diverge from
// the original's, and the value is "on" even when the pointer was nil.
func deref(c *obs.Counter) {
	v := *c // want `dereferencing \*obs\.Counter copies the handle` `obs\.Counter declared by value`
	_ = v
}

type holder struct {
	count obs.Counter // want `obs\.Counter declared by value`
}

type goodHolder struct {
	count *obs.Counter
}
