// Package droppederr is the golden fixture for the droppederr analyzer. The
// template is PR 5's ParseStrategy bug: the error result was discarded at a
// call site, so an invalid flag value silently became the zero value and a
// different experiment ran.
package droppederr

import "fmt"

type Mode int

const (
	ModeInvalid Mode = iota
	ModeQuorum
	ModeMissingWrites
)

func ParseMode(s string) (Mode, error) {
	switch s {
	case "quorum":
		return ModeQuorum, nil
	case "missing-writes":
		return ModeMissingWrites, nil
	}
	return ModeInvalid, fmt.Errorf("unknown mode %q", s)
}

func ValidateMode(m Mode) error {
	if m == ModeInvalid {
		return fmt.Errorf("invalid mode")
	}
	return nil
}

// drop is the PR 5 shape: bad input silently becomes the zero Mode.
func drop(s string) Mode {
	m, _ := ParseMode(s) // want `error from ParseMode discarded`
	return m
}

// floorDrop calls a validator for its error and ignores it.
func floorDrop(m Mode) {
	ValidateMode(m) // want `error from ValidateMode dropped on the floor`
}

// propagate handles the error: nothing to flag.
func propagate(s string) (Mode, error) {
	return ParseMode(s)
}

// checked branches on the validator's result: nothing to flag.
func checked(m Mode) bool {
	return ValidateMode(m) == nil
}

// deliberate wants the zero value on bad input and says why.
func deliberate(s string) Mode {
	//qlint:allow droppederr the zero mode is the documented fallback for unknown names here
	m, _ := ParseMode(s)
	return m
}
