// Package lockheld is the golden fixture for the lockheld analyzer. The
// first function reproduces the PR 5 mailbox deadlock exactly: a transport
// Send issued while the node's mutex is held, so a peer wedged on the same
// mutex can never drain the channel the Send is blocked on.
package lockheld

import (
	"sync"

	"qcommit/internal/msg"
	"qcommit/internal/transport"
)

type node struct {
	mu      sync.Mutex
	tr      transport.Transport
	mbox    chan msg.Envelope
	pending []msg.Envelope
}

// broadcastLocked is the PR 5 deadlock shape: Send under a held mutex.
func (n *node) broadcastLocked(env msg.Envelope) {
	n.mu.Lock()
	n.tr.Send(env) // want `transport Send while n\.mu is held`
	n.mu.Unlock()
}

// postLocked blocks on a channel send while a deferred unlock holds the lock.
func (n *node) postLocked(env msg.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mbox <- env // want `channel send while n\.mu is held`
}

// drainLocked blocks on a channel receive under the lock.
func (n *node) drainLocked() msg.Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.mbox // want `channel receive while n\.mu is held`
}

// waitLocked hits a select with no default arm under the lock.
func (n *node) waitLocked(done chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `select without default while n\.mu is held`
	case <-done:
	case env := <-n.mbox:
		n.pending = append(n.pending, env)
	}
}

// snapshotThenSend is the fix: copy under the lock, block outside it.
func (n *node) snapshotThenSend() {
	n.mu.Lock()
	out := append([]msg.Envelope(nil), n.pending...)
	n.pending = n.pending[:0]
	n.mu.Unlock()
	for _, env := range out {
		n.tr.Send(env)
	}
}

// tryPost is non-blocking: a select with a default arm never parks.
func (n *node) tryPost(env msg.Envelope) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.mbox <- env:
		return true
	default:
		return false
	}
}

// spawnSender starts the blocking work lock-free: a go statement never
// blocks the spawner and the goroutine body begins with no locks held.
func (n *node) spawnSender(env msg.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.tr.Send(env)
	}()
}

// reply sends under the lock but the channel contract makes it safe; the
// reasoned allow records why.
func (n *node) reply(ch chan error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//qlint:allow lockheld ch is buffered with capacity 1 and has exactly one sender, so the send never blocks
	ch <- nil
}
