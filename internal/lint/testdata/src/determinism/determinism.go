// Package determinism is the golden fixture for the determinism analyzer:
// wall-clock calls, global math/rand draws, and map iterations whose effects
// depend on visit order must all be flagged; seeded RNG, collect-then-sort,
// and commutative accumulation must not. The package is opted into the gate
// by the directive below (its import path is not on the built-in list).
//
//qlint:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic package`
}

func globalDraw() int {
	return rand.Intn(6) // want `global math/rand\.Intn`
}

// seededDraw is fine: constructors don't touch the process-global source and
// methods on a seeded *rand.Rand are deterministic per seed.
func seededDraw() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// orderDependent leaks iteration order into the slice it returns.
func orderDependent(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration over m has order-dependent effects`
		out = append(out, k+"!")
	}
	return out
}

// sortedKeys is the canonical fix: collect, then sort before anyone reads.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total is commutative integer accumulation: order cannot change the sum.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mean accumulates floats: FP addition is not associative, so the bits of
// the sum depend on iteration order.
func mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `order-dependent effects`
		sum += v
	}
	return sum / float64(len(m))
}

// anyMatch is order-independent in fact but beyond the analyzer's proof;
// the reasoned allow keeps it quiet.
func anyMatch(m map[string]bool) bool {
	found := false
	//qlint:allow determinism pure any-match: found flips at most once and the result is identical in every visit order
	for _, v := range m {
		if v {
			found = true
		}
	}
	return found
}

// missingReason shows that an allow without a reason does not suppress — it
// converts the finding into a missing-reason diagnostic instead.
func missingReason(m map[string]string) string {
	s := ""
	//qlint:allow determinism
	for k := range m { // want `suppression needs a written reason`
		s += k
	}
	return s
}
