package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"qcommit/internal/lint"
	"qcommit/internal/lint/linttest"
)

// The fixture packages under testdata/src each carry // want comments for
// every expected finding — positive hits, clean negatives, a reasoned
// suppression that is honored, and a reason-less suppression that is itself
// flagged. testdata keeps them out of ./... sweeps while explicit paths
// still reach them.

func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/determinism", lint.Determinism)
}

func TestLockHeldFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/lockheld", lint.LockHeld)
}

func TestObsNilFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/obsnil", lint.ObsNil)
}

func TestDroppedErrFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/droppederr", lint.DroppedErr)
}

// TestGoVetVettool exercises the real cmd/go protocol end to end: build
// qlint, point go vet at it, and check it fails the droppederr fixture with
// the expected finding. This is exactly the CI invocation.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "qlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/qlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/lint/testdata/src/droppederr")
	vet.Dir = root
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a fixture with known findings:\n%s", out)
	}
	for _, wantSub := range []string{"[droppederr]", "error from ParseMode discarded", "error from ValidateMode dropped on the floor"} {
		if !strings.Contains(string(out), wantSub) {
			t.Errorf("go vet -vettool output missing %q:\n%s", wantSub, out)
		}
	}

	// The clean tree must stay clean through the same path — a suppression
	// regression or a new finding fails here before it fails CI.
	clean := exec.Command("go", "vet", "-vettool="+bin, "./internal/engine/...")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on internal/engine: %v\n%s", err, out)
	}
}
