package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held — the exact shape of the PR 5 mailbox deadlock, where
// a live.Node posting into a peer's full mailbox channel while its own
// mutex-guarded loop was wedged deadlocked the whole cluster.
//
// Tracking is intraprocedural and linear: a mutex counts as held from a
// visible x.Lock()/x.RLock() call until the matching x.Unlock()/x.RUnlock()
// at the same statement level (a deferred unlock holds to the end of the
// function). Branch bodies are analyzed under a copy of the held set, and a
// lock taken inside a branch is not propagated out — the analyzer prefers
// false negatives over noise; anything it does flag is a real
// lock-spans-blocking-call shape and needs either a restructure or a
// reasoned //qlint:allow.
//
// Blocking operations: channel send/receive, select without a default,
// transport Send (anything under qcommit/internal/transport),
// wal.AsyncLog.WaitDurable, WaitOutcome, WAL Append (may fsync),
// (*os.File).Sync, sync.WaitGroup.Wait, and time.Sleep.
// sync.Cond.Wait is exempt: it releases the mutex it rides on.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "forbid blocking operations (transport Send, channel ops, WaitDurable, WaitOutcome, fsync, WAL append) while a mutex is held; " +
		"the PR 5 mailbox deadlock was exactly a send performed under a held lock",
	Run: runLockHeld,
}

func runLockHeld(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		w := &lockWalker{pass: p}
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				w.walkStmts(fd.Body.List, map[string]token.Pos{})
				return false // FuncLits inside are walked by the walker itself
			}
			return true
		})
	}
	return nil
}

type lockWalker struct {
	pass *Pass
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// mutexOp classifies call as a Lock/Unlock on a sync.Mutex or sync.RWMutex
// and returns the receiver expression's printed form as the held-set key.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key string, locks, unlocks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, _ := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false, false
	}
	named := recvType(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// blockingCall names the blocking operation call performs, or "".
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return ""
	}
	if isPkgFunc(fn, "time", "Sleep") {
		return "time.Sleep"
	}
	if isMethodOf(fn, "sync", "WaitGroup", "Wait") {
		return "sync.WaitGroup.Wait"
	}
	if isMethodOf(fn, "os", "File", "Sync") {
		return "fsync ((*os.File).Sync)"
	}
	named := recvType(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	recvPkg := named.Obj().Pkg().Path()
	switch fn.Name() {
	case "Send":
		if isQcommitPkg(recvPkg, "internal/transport") {
			return "transport Send"
		}
	case "WaitDurable":
		if isQcommitPkg(recvPkg, "") {
			return "wal WaitDurable"
		}
	case "WaitOutcome":
		if isQcommitPkg(recvPkg, "") {
			return "WaitOutcome"
		}
	case "Append", "AppendWriteset":
		if recvPkg == modulePath+"/internal/wal" {
			return "WAL append (may fsync)"
		}
	}
	return ""
}

const modulePath = "qcommit"

// isQcommitPkg reports whether pkg is under modulePath/sub (any qcommit
// package when sub is empty).
func isQcommitPkg(pkg, sub string) bool {
	base := modulePath
	if sub != "" {
		base = modulePath + "/" + sub
	}
	return pkg == base || len(pkg) > len(base) && pkg[:len(base)+1] == base+"/"
}

func (w *lockWalker) report(pos token.Pos, op string, held map[string]token.Pos) {
	// Name one held mutex deterministically (the first in key order).
	var key string
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	lockPos := w.pass.Fset.Position(held[key])
	w.pass.Reportf(pos, "%s while %s is held (Lock at line %d): blocking under a mutex is the PR 5 mailbox-deadlock shape; release %s first or annotate with %s lockheld <reason>", op, key, lockPos.Line, key, AllowDirective)
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, locks, unlocks := w.mutexOp(call); locks || unlocks {
				if locks {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if key, _, unlocks := w.mutexOp(s.Call); unlocks && key != "" {
			return // deferred unlock: stays held to function end, by design
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.GoStmt:
		// The spawn itself never blocks; the goroutine starts lock-free.
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), "channel send", held)
		}
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		w.walkStmt(s.Post, body)
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.report(s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm clauses themselves were judged by the select as a
				// whole; only walk the bodies.
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr flags blocking operations inside an expression evaluated while
// held is non-empty. FuncLits are walked as fresh lock-free functions unless
// they are invoked on the spot.
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.report(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			// An immediately-invoked FuncLit runs under the current held set.
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, a := range n.Args {
					w.scanExpr(a, held)
				}
				w.walkStmts(lit.Body.List, copyHeld(held))
				return false
			}
			if len(held) > 0 {
				if op := w.blockingCall(n); op != "" {
					w.report(n.Pos(), op, held)
				}
			}
		}
		return true
	})
}
