package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr flags assignments that discard the error from Parse*/Validate*
// functions. PR 5's ParseStrategy bug is the template: the error result was
// dropped at a call site, so an invalid -strategy value silently fell back
// to the quorum default instead of failing — a config typo changed which
// experiment ran. Parse/validate errors are exactly the class where the
// zero-value fallback is a plausible-looking wrong answer.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc: "forbid discarding the error result of Parse*/Validate* functions (the PR 5 ParseStrategy silent-fallback class): " +
		"a dropped parse error turns bad input into a plausible default",
	Run: runDroppedErr,
}

func runDroppedErr(p *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	isParseLike := func(fn *types.Func) bool {
		return fn != nil && (strings.HasPrefix(fn.Name(), "Parse") || strings.HasPrefix(fn.Name(), "Validate"))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if !isParseLike(fn) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Results().Len() < 2 || len(n.Lhs) != sig.Results().Len() {
					return true
				}
				if !types.Identical(sig.Results().At(sig.Results().Len()-1).Type(), errType) {
					return true
				}
				if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					p.Reportf(id.Pos(), "error from %s discarded: a dropped parse/validate error silently falls back to the zero value (the PR 5 ParseStrategy class); handle it or annotate with %s droppederr <reason>", fn.Name(), AllowDirective)
				}
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if !isParseLike(fn) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Results().Len() != 1 || !types.Identical(sig.Results().At(0).Type(), errType) {
					return true
				}
				p.Reportf(call.Pos(), "error from %s dropped on the floor: the call exists only to report failure; check its result or annotate with %s droppederr <reason>", fn.Name(), AllowDirective)
			}
			return true
		})
	}
	return nil
}
