package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterministicDirective opts a package into the determinism gate in
// addition to the built-in path list (put it in any file of the package).
const DeterministicDirective = "//qlint:deterministic"

// deterministicPkgs are the packages whose behaviour must be a pure function
// of (seed, params): the discrete-event engine and everything replayed
// through it. Serial and parallel runs over these packages are pinned
// bit-identical by tests; this analyzer makes the underlying rule — virtual
// time and seeded RNG only, no order-dependent map iteration — a compile-time
// gate instead of a property a test must happen to exercise.
var deterministicPkgs = map[string]bool{
	"qcommit/internal/engine":     true,
	"qcommit/internal/churn":      true,
	"qcommit/internal/quorumcalc": true,
	"qcommit/internal/avail":      true,
	"qcommit/internal/workload":   true,
	"qcommit/internal/sim":        true,
	"qcommit/internal/simnet":     true,
	"qcommit/internal/core":       true,
	"qcommit/internal/protocol":   true,
	"qcommit/internal/twopc":      true,
	"qcommit/internal/threepc":    true,
	"qcommit/internal/threephase": true,
	"qcommit/internal/skeenq":     true,
	"qcommit/internal/election":   true,
	"qcommit/internal/voting":     true,
}

// bannedTimeFuncs are the wall-clock entry points. Deterministic code gets
// time only from the scheduler (sim.Time).
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand package-level functions that do NOT
// draw from the process-global source (constructors only). Everything else
// at package level is a global-source draw and is banned; methods on a
// seeded *rand.Rand are always fine.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism is the determinism analyzer; see package doc.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, and order-dependent map iteration in the deterministic simulation packages; " +
		"serial/parallel bit-identity (PR 1-3) holds only if every run is a pure function of (seed, params)",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) error {
	if !deterministicPkgs[p.PkgPath()] && !hasDirective(p.Files, DeterministicDirective) {
		return nil
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			// Tests may time themselves; the gate is for the replayed code.
			continue
		}
		checkBannedCalls(p, f)
		w := &detWalker{pass: p}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w.stmts(n.Body.List)
				}
				return true // still descend: FuncLits nest inside
			case *ast.FuncLit:
				w.stmts(n.Body.List)
				return true
			}
			return true
		})
	}
	return nil
}

// checkBannedCalls flags wall-clock and global-rand call sites.
func checkBannedCalls(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "time.%s in deterministic package %s: wall-clock time breaks serial/parallel bit-identity; use the engine's virtual time (sim.Time)", fn.Name(), p.PkgPath())
			}
		case "math/rand", "math/rand/v2":
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil && !allowedRandFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "global %s.%s in deterministic package %s: the process-wide source is shared across goroutines and seeds; draw from the scenario's seeded *rand.Rand", funcPkgPath(fn), fn.Name(), p.PkgPath())
			}
		}
		return true
	})
}

// detWalker walks statement lists so a map-range statement can see the
// statements that follow it (the append-then-sort idiom is judged by what
// happens to the collected slice afterwards).
type detWalker struct {
	pass *Pass
}

func (w *detWalker) stmts(list []ast.Stmt) {
	for i, s := range list {
		w.stmt(s, list[i+1:])
	}
}

func (w *detWalker) stmt(s ast.Stmt, rest []ast.Stmt) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if t := w.pass.Info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.checkMapRange(s, rest)
			}
		}
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, nil)
		}
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else, nil)
		}
	case *ast.ForStmt:
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		w.stmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		w.stmts(s.Body.List)
	case *ast.SelectStmt:
		w.stmts(s.Body.List)
	case *ast.CaseClause:
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, rest)
	}
}

// checkMapRange flags a map iteration unless its effects are provably
// independent of iteration order: either every statement in the body is
// order-insensitive (counter/map updates), or the loop only collects keys
// into a slice that is sorted later in the same block.
func (w *detWalker) checkMapRange(rs *ast.RangeStmt, rest []ast.Stmt) {
	if w.appendThenSorted(rs, rest) {
		return
	}
	if w.orderInsensitive(rs, rs.Body.List) {
		return
	}
	w.pass.Reportf(rs.Pos(), "map iteration over %s has order-dependent effects in deterministic package %s: Go randomizes map order per run; iterate a sorted key slice (collect + sort), or annotate with %s determinism <reason>", types.ExprString(rs.X), w.pass.PkgPath(), AllowDirective)
}

// appendThenSorted matches the canonical fix: the body is exactly
// "s = append(s, ...)" and a later statement in the enclosing block sorts s.
func (w *detWalker) appendThenSorted(rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || w.pass.Info.Uses[id] != types.Universe.Lookup("append") {
		return false
	}
	target := types.ExprString(asg.Lhs[0])
	if types.ExprString(ast.Unparen(call.Args[0])) != target {
		return false
	}
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(w.pass.Info, call)
			pkg := funcPkgPath(fn)
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(ast.Unparen(arg)) == target {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// orderInsensitive reports whether every statement commutes across
// iterations: map-index writes, delete, integer accumulation, and loop-local
// work. Anything else — appends (without a later sort), sends, calls,
// branching, float accumulation (FP addition is not associative, so the sum's
// bits depend on order) — is treated as order-dependent.
func (w *detWalker) orderInsensitive(rs *ast.RangeStmt, list []ast.Stmt) bool {
	local := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := w.pass.Info.ObjectOf(id)
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	// localBase unwraps x.f, x[i], *x, (x) chains: a write through a
	// loop-local base only mutates per-iteration state.
	localBase := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return local(e)
			}
		}
	}
	mapIndex := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := w.pass.Info.TypeOf(ix.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	intTyped := func(e ast.Expr) bool {
		t := w.pass.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}
	// usesLocal reports whether any identifier under e resolves to a
	// loop-local: a `return` whose results mention none is the same
	// regardless of which iteration reaches it first.
	usesLocal := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && local(id) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	okCall := func(call *ast.CallExpr) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok &&
			id.Name == "delete" && w.pass.Info.Uses[id] == types.Universe.Lookup("delete") {
			return true
		}
		// In-place sort of a per-key bucket or a loop-local slice: the
		// result is the same whichever order the buckets are visited in.
		if fn := calleeFunc(w.pass.Info, call); fn != nil {
			if pkg := funcPkgPath(fn); (pkg == "sort" || pkg == "slices") && len(call.Args) > 0 {
				if arg := call.Args[0]; mapIndex(arg) || localBase(arg) {
					return true
				}
			}
		}
		// A method call whose receiver chain roots at a loop-local touches
		// only per-iteration state (e.g. site.apply(img) inside range sites).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && localBase(sel.X) {
			return true
		}
		return false
	}
	var insens func(list []ast.Stmt) bool
	insens = func(list []ast.Stmt) bool {
		for _, s := range list {
			switch s := s.(type) {
			case *ast.AssignStmt:
				switch s.Tok {
				case token.DEFINE:
					// New loop-locals are fine.
				case token.ASSIGN:
					for _, lhs := range s.Lhs {
						if !mapIndex(lhs) && !isBlank(lhs) && !localBase(lhs) {
							return false
						}
					}
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
					lhs := s.Lhs[0]
					if !mapIndex(lhs) && !localBase(lhs) && !intTyped(lhs) {
						return false
					}
				default:
					return false
				}
			case *ast.IncDecStmt:
				if !mapIndex(s.X) && !localBase(s.X) && !intTyped(s.X) {
					return false
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !okCall(call) {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil && !insens([]ast.Stmt{s.Init}) {
					return false
				}
				if !insens(s.Body.List) {
					return false
				}
				if s.Else != nil && !insens([]ast.Stmt{s.Else}) {
					return false
				}
			case *ast.RangeStmt:
				if !insens(s.Body.List) {
					return false
				}
			case *ast.ForStmt:
				if !insens(s.Body.List) {
					return false
				}
			case *ast.SwitchStmt:
				if !insens(s.Body.List) {
					return false
				}
			case *ast.CaseClause:
				if !insens(s.Body) {
					return false
				}
			case *ast.ReturnStmt:
				// "Return on any match" guards are order-independent only
				// if the returned values don't name a loop-local.
				for _, res := range s.Results {
					if usesLocal(res) {
						return false
					}
				}
			case *ast.BlockStmt:
				if !insens(s.List) {
					return false
				}
			case *ast.DeclStmt, *ast.EmptyStmt:
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return insens(list)
}
