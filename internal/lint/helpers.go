package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function, method, or interface method), or nil for builtins,
// conversions, and calls through function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the declaring package path of fn ("" for builtins).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvType returns the named type of fn's receiver after stripping one
// pointer, or nil for package-level functions.
func recvType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOf reports whether fn is a method named name declared on
// pkgPath.typeName (value or pointer receiver).
func isMethodOf(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvType(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedObsType returns the type name if t (after stripping one pointer) is a
// named type declared in qcommit/internal/obs, else "".
func namedObsType(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() != obsPkgPath {
		return ""
	}
	return named.Obj().Name()
}

// hasDirective reports whether any comment in the package's files starts with
// the given directive prefix (e.g. "//qlint:deterministic").
func hasDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directive) {
					return true
				}
			}
		}
	}
	return false
}
