package lint

import (
	"go/ast"
	"go/types"
)

const obsPkgPath = modulePath + "/internal/obs"

// obsHandleTypes are the nil-safe handle types: every method on a nil
// pointer is a no-op, so instrumented code carries plain pointers and
// records unconditionally. Copying a handle by value or reaching through
// Observer's fields directly defeats that contract (a nil Observer would
// panic, a copied handle splits the atomics).
var obsHandleTypes = map[string]bool{
	"Observer": true, "Registry": true, "Spans": true,
	"Counter": true, "Gauge": true, "Histogram": true,
}

// ObsNil enforces the obs nil-safety contract outside the obs package:
//
//   - obs.Observer's Registry/Spans fields are reached only through the
//     nil-safe accessors Reg()/Spanner() (field access on a nil *Observer
//     panics; composite-literal construction is fine and not flagged),
//   - obs handles are never dereferenced (copying splits the atomics and
//     breaks the one-pointer-check contract),
//   - obs handles are declared as pointers, never as values.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc: "obs.Observer and obs handles must go through the nil-safe method set: no direct Observer field access, " +
		"no handle dereference or value-typed handle declarations outside internal/obs",
	Run: runObsNil,
}

func runObsNil(p *Pass) error {
	if isQcommitPkg(p.PkgPath(), "internal/obs") {
		return nil // the defining package owns its internals
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if n.Sel.Name != "Registry" && n.Sel.Name != "Spans" {
					return true
				}
				// Only field selections count; Registry is also a Registry
				// method name on *Registry getters etc., so resolve the
				// selection kind through the type info.
				sel, ok := p.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if namedObsType(p.Info.TypeOf(n.X)) == "Observer" {
					p.Reportf(n.Pos(), "direct access to obs.Observer.%s: a nil *Observer panics here; use the nil-safe accessor %s instead", n.Sel.Name, observerAccessor(n.Sel.Name))
				}
			case *ast.StarExpr:
				tv, ok := p.Info.Types[n.X]
				if !ok || !tv.IsValue() {
					return true // type position (*obs.Counter as a type)
				}
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
					return true
				}
				if name := namedObsType(tv.Type); name != "" && obsHandleTypes[name] {
					p.Reportf(n.Pos(), "dereferencing *obs.%s copies the handle: copies split the atomics and defeat the nil-off contract; pass the pointer", name)
				}
			}
			return true
		})
	}
	// Value-typed handle declarations (fields, vars, params, results).
	for id, obj := range p.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.Type() == nil {
			continue
		}
		if _, isPtr := v.Type().(*types.Pointer); isPtr {
			continue
		}
		if name := namedObsType(v.Type()); name != "" && obsHandleTypes[name] {
			p.Reportf(id.Pos(), "obs.%s declared by value: handles must be pointers (*obs.%s) so nil means observability-off; a value handle is always on and copies split its atomics", name, name)
		}
	}
	return nil
}

func observerAccessor(field string) string {
	if field == "Registry" {
		return "Reg()"
	}
	return "Spanner()"
}
