// Package lint is qcommit's project-specific static-analysis suite: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis model (the
// container this repo builds in has no module network access, so the x/tools
// framework itself is off the table; the API shape below is kept deliberately
// close so a future migration is mechanical).
//
// The analyzers encode the repo's "correct by convention" invariants — the
// rules that PR 3's termination-poll soundness bug and PR 5's mailbox
// deadlock proved tests alone don't pin:
//
//   - determinism: no wall-clock time, no global math/rand, no
//     order-dependent map iteration inside the deterministic packages
//     (engine, churn, quorumcalc, avail, workload, sim, ...). Serial and
//     parallel studies must stay bit-identical; virtual time and seeded RNG
//     only.
//   - lockheld: no blocking operation (transport Send, channel send/recv,
//     WaitDurable, WaitOutcome, fsync, WAL append) while a sync.Mutex or
//     sync.RWMutex is held — the exact shape of the PR 5 mailbox deadlock.
//   - obsnil: obs.Observer and obs handle fields are reached only through
//     the nil-safe method set; no direct field access, no handle copying
//     that defeats the one-pointer-check contract.
//   - droppederr: the error result of Parse*/Validate* functions is never
//     discarded (the PR 5 ParseStrategy silent-fallback class).
//
// Findings are suppressed line-by-line with a directive comment carrying a
// mandatory reason:
//
//	//qlint:allow <analyzer> <reason>
//
// placed at the end of the offending line or on the line directly above it.
// An allow without a reason is itself a diagnostic. The suite runs as
// cmd/qlint, either standalone (qlint ./...) or as go vet -vettool.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in flags and //qlint:allow
	Doc  string // what the analyzer enforces and why
	Run  func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgPath is the package's import path with any test-variant suffix
// ("pkg [pkg.test]") stripped, so path-scoped analyzers treat a package's
// test build like the package itself.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// IsTestFile reports whether file is a _test.go file.
func (p *Pass) IsTestFile(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}

// AllowDirective is the suppression directive prefix. The full form is
// "//qlint:allow <analyzer> <reason>"; the reason is mandatory.
const AllowDirective = "//qlint:allow"

// allow is one parsed suppression directive.
type allow struct {
	analyzer string
	reason   string
}

// allowIndex maps filename -> line -> directives on that line.
type allowIndex map[string]map[int][]allow

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowDirective)
				fields := strings.Fields(rest)
				a := allow{}
				if len(fields) > 0 {
					a.analyzer = fields[0]
					a.reason = strings.Join(fields[1:], " ")
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]allow)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], a)
			}
		}
	}
	return idx
}

// lookup finds a directive for analyzer at the diagnostic's line or the line
// directly above it.
func (idx allowIndex) lookup(pos token.Position, analyzer string) (allow, bool) {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return allow{}, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range byLine[line] {
			if a.analyzer == analyzer {
				return a, true
			}
		}
	}
	return allow{}, false
}

// Run executes the analyzers over one type-checked package and returns the
// surviving diagnostics in position order. Findings covered by a
// "//qlint:allow <analyzer> <reason>" directive on the same or preceding
// line are dropped; an allow whose reason is empty converts the finding into
// a missing-reason diagnostic instead of suppressing it.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	idx := buildAllowIndex(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		a, ok := idx.lookup(pos, d.Analyzer)
		switch {
		case !ok:
			kept = append(kept, d)
		case a.reason == "":
			d.Message = fmt.Sprintf("%s suppression needs a written reason: %s %s <why this is safe>", AllowDirective, AllowDirective, d.Analyzer)
			kept = append(kept, d)
		default:
			// Suppressed with a reason: drop.
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
