package lint

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockHeld, ObsNil, DroppedErr}
}
