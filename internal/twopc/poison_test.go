package twopc

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/types"
)

// TestParticipantPoisonsVoteAfterInitialReply: once a participant in q has
// answered a termination poll (DecisionReq or StateReq), it has promised not
// to vote — a VOTE-REQ arriving afterwards must not yield a yes vote, or the
// cooperative terminator's abort-on-uncommitted rule races the live
// coordinator into an atomicity violation.
func TestParticipantPoisonsVoteAfterInitialReply(t *testing.T) {
	cases := []struct {
		name string
		poll msg.Message
	}{
		{"decision-req", msg.DecisionReq{Txn: 1}},
		{"state-req", msg.StateReq{Txn: 1, Epoch: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := env()
			p := Spec{}.NewParticipant(1, nil)
			p.Start(e)
			p.OnMessage(3, tc.poll, e)
			if len(e.Aborted) != 1 {
				t.Fatalf("participant did not abort after initial-state reply (aborted %v)", e.Aborted)
			}
			e.Reset()
			p.OnMessage(1, msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}, e)
			for _, s := range e.Sends {
				if v, ok := s.Msg.(msg.VoteResp); ok && v.Vote == types.VoteYes {
					t.Error("participant voted yes after promising q")
				}
			}
		})
	}
}
