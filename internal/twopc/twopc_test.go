package twopc

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/protocoltest"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

func env() *protocoltest.Env {
	return protocoltest.New(1, voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
	))
}

var (
	ws    = types.Writeset{{Item: "x", Value: 1}}
	parts = []types.SiteID{1, 2, 3, 4}
)

func TestCoordinatorCommitsOnUnanimousYes(t *testing.T) {
	e := env()
	c := Spec{}.NewCoordinator(1, ws, parts)
	c.Start(e)
	if e.Logs[0].Type != wal.RecBegin {
		t.Error("BEGIN not logged first")
	}
	if len(e.Sends) != len(parts) {
		t.Fatalf("VOTE-REQs = %d", len(e.Sends))
	}
	e.Reset()
	for _, p := range parts[:3] {
		c.OnMessage(p, msg.VoteResp{Txn: 1, Vote: types.VoteYes}, e)
	}
	if len(e.Sends) != 0 {
		t.Fatal("committed before all votes")
	}
	c.OnMessage(parts[3], msg.VoteResp{Txn: 1, Vote: types.VoteYes}, e)
	commits := 0
	for _, s := range e.Sends {
		if s.Msg.Kind() == msg.KindCommit {
			commits++
		}
	}
	if commits != len(parts) {
		t.Errorf("COMMITs = %d, want %d", commits, len(parts))
	}
}

func TestCoordinatorAbortsOnNoOrTimeout(t *testing.T) {
	e := env()
	c := Spec{}.NewCoordinator(1, ws, parts)
	c.Start(e)
	e.Reset()
	c.OnMessage(2, msg.VoteResp{Txn: 1, Vote: types.VoteNo}, e)
	if len(e.Sends) == 0 || e.Sends[0].Msg.Kind() != msg.KindAbort {
		t.Error("no vote should abort")
	}

	e2 := env()
	c2 := Spec{}.NewCoordinator(1, ws, parts)
	c2.Start(e2)
	e2.Reset()
	c2.OnTimer(tokVotes, e2)
	if len(e2.Sends) == 0 || e2.Sends[0].Msg.Kind() != msg.KindAbort {
		t.Error("vote timeout should abort")
	}
}

func TestParticipantLifecycle(t *testing.T) {
	e := env()
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	p.OnMessage(1, msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}, e)
	if p.State() != types.StateWait {
		t.Fatalf("state = %v", p.State())
	}
	p.OnMessage(1, msg.Commit{Txn: 1}, e)
	if p.State() != types.StateCommitted || len(e.Committed) != 1 {
		t.Error("commit not applied")
	}
}

func TestParticipantUncertaintyBlocksUnilateralAction(t *testing.T) {
	e := env()
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	p.OnMessage(1, msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}, e)
	// In W, a DecisionReq yields "no decision" — not an abort.
	e.Reset()
	p.OnMessage(3, msg.DecisionReq{Txn: 1}, e)
	resp := e.SentTo(3)[0].(msg.DecisionResp)
	if resp.Decision != types.DecisionNone || resp.Uncommitted {
		t.Errorf("uncertain participant replied %+v", resp)
	}
	if p.State() != types.StateWait {
		t.Error("uncertain participant changed state")
	}
}

func TestParticipantInitialStateAbortsOnDecisionReq(t *testing.T) {
	e := env()
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	p.OnMessage(3, msg.DecisionReq{Txn: 1}, e)
	resp := e.SentTo(3)[0].(msg.DecisionResp)
	if !resp.Uncommitted {
		t.Errorf("unvoted participant replied %+v, want Uncommitted", resp)
	}
	if p.State() != types.StateAborted {
		t.Error("unvoted participant should abort unilaterally after promising abort")
	}
}

func TestTerminatorAdoptsKnownDecision(t *testing.T) {
	e := env()
	term := Spec{}.NewTerminator(1, ws, parts, 0).(*Terminator)
	term.Start(e)
	if len(e.Sends) != len(parts) {
		t.Fatalf("DecisionReqs = %d", len(e.Sends))
	}
	e.Reset()
	term.OnMessage(2, msg.DecisionResp{Txn: 1, Decision: types.DecisionCommit}, e)
	term.OnMessage(3, msg.DecisionResp{Txn: 1}, e)
	term.OnTimer(tokCollect, e)
	if len(e.Sends) == 0 || e.Sends[0].Msg.Kind() != msg.KindCommit {
		t.Error("known commit decision not adopted")
	}
}

func TestTerminatorAbortsWhenSomeoneUnvoted(t *testing.T) {
	e := env()
	term := Spec{}.NewTerminator(1, ws, parts, 0).(*Terminator)
	term.Start(e)
	e.Reset()
	term.OnMessage(2, msg.DecisionResp{Txn: 1, Uncommitted: true}, e)
	term.OnMessage(3, msg.DecisionResp{Txn: 1}, e)
	term.OnTimer(tokCollect, e)
	if len(e.Sends) == 0 || e.Sends[0].Msg.Kind() != msg.KindAbort {
		t.Error("uncommitted responder should allow a safe abort")
	}
}

func TestTerminatorBlocksWhenAllUncertain(t *testing.T) {
	e := env()
	term := Spec{}.NewTerminator(1, ws, parts, 0).(*Terminator)
	term.Start(e)
	e.Reset()
	term.OnMessage(2, msg.DecisionResp{Txn: 1}, e)
	term.OnMessage(3, msg.DecisionResp{Txn: 1}, e)
	term.OnTimer(tokCollect, e)
	if len(e.Blocked) != 1 {
		t.Error("all-uncertain poll must block — 2PC's fundamental weakness")
	}
	if len(e.Sends) != 0 {
		t.Error("blocked terminator must not distribute a decision")
	}
}

func TestTerminatorPrefersCommitOverAbortReports(t *testing.T) {
	// If one site reports commit (it saw the decision) the terminator must
	// distribute commit even if another reports abort — which cannot happen
	// in a correct run, but commit must win deterministically.
	e := env()
	term := Spec{}.NewTerminator(1, ws, parts, 0).(*Terminator)
	term.Start(e)
	e.Reset()
	term.OnMessage(2, msg.DecisionResp{Txn: 1, Decision: types.DecisionAbort}, e)
	term.OnMessage(3, msg.DecisionResp{Txn: 1, Decision: types.DecisionCommit}, e)
	term.OnTimer(tokCollect, e)
	if len(e.Sends) == 0 || e.Sends[0].Msg.Kind() != msg.KindCommit {
		t.Error("commit report should dominate")
	}
}

func TestParticipantRecoveryImage(t *testing.T) {
	e := env()
	img := &wal.TxnImage{Txn: 1, State: types.StateWait, Coord: 1, Participants: parts, Writeset: ws}
	p := Spec{}.NewParticipant(1, img).(*Participant)
	p.Start(e)
	if p.State() != types.StateWait {
		t.Errorf("recovered state = %v", p.State())
	}
	if len(e.Timers) == 0 {
		t.Error("recovered uncertain participant must arm patience")
	}
	// Patience fires: request termination, bounded by the budget.
	p.OnTimer(e.LastTimer().Token, e)
	if len(e.TermReqs) != 1 {
		t.Error("patience did not request termination")
	}
}

func TestParticipantDuplicateVoteReq(t *testing.T) {
	e := env()
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	req := msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}
	p.OnMessage(1, req, e)
	logs := len(e.Logs)
	p.OnMessage(1, req, e)
	if len(e.Logs) != logs {
		t.Error("duplicate VOTE-REQ logged twice")
	}
	if got := e.SentTo(1); len(got) != 2 {
		t.Errorf("expected re-sent vote, got %d messages", len(got))
	}
}

func TestParticipantVoteNoOnLockFailure(t *testing.T) {
	e := env()
	e.LockOK = false
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	p.OnMessage(1, msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}, e)
	if p.State() != types.StateAborted || len(e.Aborted) != 1 {
		t.Errorf("state = %v; lock failure must vote no and abort", p.State())
	}
	resp := e.SentTo(1)[0].(msg.VoteResp)
	if resp.Vote != types.VoteNo {
		t.Errorf("vote = %v", resp.Vote)
	}
}

func TestParticipantStateReqInterop(t *testing.T) {
	e := env()
	p := Spec{}.NewParticipant(1, nil).(*Participant)
	p.Start(e)
	p.OnMessage(1, msg.VoteReq{Txn: 1, Coord: 1, Participants: parts, Writeset: ws}, e)
	p.OnMessage(3, msg.StateReq{Txn: 1, Coord: 3, Epoch: 2}, e)
	resp := e.SentTo(3)[0].(msg.StateResp)
	if resp.State != types.StateWait || resp.Epoch != 2 {
		t.Errorf("state resp = %+v", resp)
	}
}
