// Package twopc implements the two-phase commit protocol (Fig. 1 of the
// paper) with the classic cooperative termination protocol.
//
// 2PC is the simplest atomic commitment protocol and the baseline every
// other protocol here is measured against: in the absence of failures it
// works well, but once a participant has voted yes it cannot terminate the
// transaction until it learns the coordinator's decision. If the coordinator
// crashes or the network partitions, participants block, holding locks on
// every data item the transaction touched.
package twopc

import (
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// Spec is the 2PC protocol family.
type Spec struct {
	// PatienceRounds caps participant-initiated termination attempts.
	PatienceRounds int
}

var _ protocol.Spec = Spec{}

// Name implements protocol.Spec.
func (Spec) Name() string { return "2PC" }

// NewCoordinator implements protocol.Spec.
func (s Spec) NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) protocol.Automaton {
	return &Coordinator{txn: txn, ws: ws, participants: participants, votes: make(map[types.SiteID]types.Vote)}
}

// NewParticipant implements protocol.Spec.
func (s Spec) NewParticipant(txn types.TxnID, init *wal.TxnImage) protocol.Automaton {
	rounds := s.PatienceRounds
	if rounds <= 0 {
		rounds = 4
	}
	p := &Participant{txn: txn, state: types.StateInitial, patienceLeft: rounds}
	if init != nil {
		p.state = init.State
		p.coord = init.Coord
	}
	return p
}

// NewTerminator implements protocol.Spec: cooperative termination by
// decision polling.
func (s Spec) NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) protocol.Automaton {
	return &Terminator{txn: txn, participants: participants, epoch: epoch}
}

// --- coordinator ---

// Timer tokens.
const (
	tokVotes = iota + 1
	tokCollect
)

// Coordinator runs 2PC's two phases: distribute VOTE-REQ, collect votes,
// distribute COMMIT on unanimous yes or ABORT otherwise.
type Coordinator struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
	votes        map[types.SiteID]types.Vote
	done         bool
}

// Start implements protocol.Automaton.
func (c *Coordinator) Start(env protocol.Env) {
	env.Append(wal.Record{
		Type:         wal.RecBegin,
		Txn:          c.txn,
		Coord:        env.Self(),
		Participants: c.participants,
		Writeset:     c.ws,
	})
	env.Tracef("%s: 2PC coordinator %s starts", c.txn, env.Self())
	req := msg.VoteReq{Txn: c.txn, Coord: env.Self(), Participants: c.participants, Writeset: c.ws}
	for _, p := range c.participants {
		env.Send(p, req)
	}
	env.SetTimer(protocol.AckWindow(env), tokVotes)
}

// OnMessage implements protocol.Automaton.
func (c *Coordinator) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	v, ok := m.(msg.VoteResp)
	if !ok || c.done {
		return
	}
	c.votes[from] = v.Vote
	if v.Vote == types.VoteNo {
		c.decide(env, types.DecisionAbort, "participant voted no")
		return
	}
	for _, p := range c.participants {
		vote, got := c.votes[p]
		if !got || vote != types.VoteYes {
			return
		}
	}
	c.decide(env, types.DecisionCommit, "unanimous yes")
}

// OnTimer implements protocol.Automaton.
func (c *Coordinator) OnTimer(token int, env protocol.Env) {
	if token == tokVotes && !c.done {
		c.decide(env, types.DecisionAbort, "vote timeout")
	}
}

func (c *Coordinator) decide(env protocol.Env, d types.Decision, why string) {
	c.done = true
	env.Tracef("%s: 2PC coordinator decides %s (%s)", c.txn, d, why)
	for _, p := range c.participants {
		if d == types.DecisionCommit {
			env.Send(p, msg.Commit{Txn: c.txn})
		} else {
			env.Send(p, msg.Abort{Txn: c.txn})
		}
	}
	self := env.Self()
	isParticipant := false
	for _, p := range c.participants {
		if p == self {
			isParticipant = true
			break
		}
	}
	if !isParticipant {
		if d == types.DecisionCommit {
			env.Commit(c.txn)
		} else {
			env.Abort(c.txn)
		}
	}
}

// --- participant ---

// Participant is 2PC's per-site automaton: q → W on a yes vote, then wait
// for the decision. Once in W it is *uncertain* and may not terminate
// unilaterally — the source of 2PC's blocking.
type Participant struct {
	txn          types.TxnID
	state        types.State
	coord        types.SiteID
	patienceLeft int
	timerSeq     int
}

// State returns the participant's local state.
func (p *Participant) State() types.State { return p.state }

// Start implements protocol.Automaton.
func (p *Participant) Start(env protocol.Env) {
	if p.state == types.StateWait {
		p.armPatience(env)
	}
}

func (p *Participant) armPatience(env protocol.Env) {
	p.timerSeq++
	env.SetTimer(protocol.ParticipantPatience(env), p.timerSeq)
}

// OnTimer implements protocol.Automaton.
func (p *Participant) OnTimer(token int, env protocol.Env) {
	if token != p.timerSeq || p.state != types.StateWait || p.patienceLeft <= 0 {
		return
	}
	p.patienceLeft--
	env.Tracef("%s: %s uncertain and coordinator silent, starting cooperative termination", p.txn, env.Self())
	env.RequestTermination(p.txn)
	p.armPatience(env)
}

// OnMessage implements protocol.Automaton.
func (p *Participant) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	switch v := m.(type) {
	case msg.VoteReq:
		p.onVoteReq(from, v, env)
	case msg.Commit:
		if p.state == types.StateWait {
			p.state = types.StateCommitted
			env.Commit(p.txn)
			env.Send(from, msg.Done{Txn: p.txn})
		}
	case msg.Abort:
		if !p.state.Terminal() {
			p.state = types.StateAborted
			env.Abort(p.txn)
			env.Send(from, msg.Done{Txn: p.txn})
		}
	case msg.DecisionReq:
		resp := msg.DecisionResp{Txn: p.txn}
		switch p.state {
		case types.StateCommitted:
			resp.Decision = types.DecisionCommit
		case types.StateAborted:
			resp.Decision = types.DecisionAbort
		case types.StateInitial:
			// We have not voted, so the coordinator cannot have decided to
			// commit; abort unilaterally and say so.
			resp.Uncommitted = true
			p.state = types.StateAborted
			env.Abort(p.txn)
		}
		env.Send(from, resp)
		if p.state == types.StateWait {
			p.armPatience(env)
		}
	case msg.StateReq:
		env.Send(from, msg.StateResp{Txn: p.txn, Epoch: v.Epoch, State: p.state})
		// As with DecisionReq: reporting q promises a no vote afterwards.
		if p.state == types.StateInitial {
			p.state = types.StateAborted
			env.Abort(p.txn)
		}
	}
}

func (p *Participant) onVoteReq(from types.SiteID, v msg.VoteReq, env protocol.Env) {
	switch p.state {
	case types.StateInitial:
		p.coord = v.Coord
		if env.AcquireLocks(p.txn) {
			env.Append(wal.Record{
				Type:         wal.RecVotedYes,
				Txn:          p.txn,
				Coord:        v.Coord,
				Participants: v.Participants,
				Writeset:     v.Writeset,
			})
			p.state = types.StateWait
			env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteYes})
			p.armPatience(env)
		} else {
			env.Append(wal.Record{Type: wal.RecVotedNo, Txn: p.txn})
			env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteNo})
			p.state = types.StateAborted
			env.Abort(p.txn)
		}
	case types.StateWait:
		env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteYes})
	}
}

// --- cooperative terminator ---

// Terminator is 2PC's cooperative termination protocol: poll every reachable
// participant for the decision. If anyone knows it, adopt and distribute it;
// if anyone has not voted, abort is safe; if everyone reachable is
// uncertain, the transaction blocks until a failure recovers.
type Terminator struct {
	txn          types.TxnID
	participants []types.SiteID
	epoch        uint32
	resp         map[types.SiteID]msg.DecisionResp
	done         bool
}

// Start implements protocol.Automaton.
func (t *Terminator) Start(env protocol.Env) {
	t.resp = make(map[types.SiteID]msg.DecisionResp)
	env.Tracef("%s: cooperative terminator %s polls decisions", t.txn, env.Self())
	for _, p := range t.participants {
		env.Send(p, msg.DecisionReq{Txn: t.txn})
	}
	env.SetTimer(protocol.AckWindow(env), tokCollect)
}

// OnMessage implements protocol.Automaton.
func (t *Terminator) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	if v, ok := m.(msg.DecisionResp); ok && !t.done {
		t.resp[from] = v
	}
}

// OnTimer implements protocol.Automaton.
func (t *Terminator) OnTimer(token int, env protocol.Env) {
	if token != tokCollect || t.done {
		return
	}
	t.done = true
	sites := make([]types.SiteID, 0, len(t.resp))
	for s := range t.resp {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	decision := types.DecisionNone
	for _, s := range sites {
		switch t.resp[s].Decision {
		case types.DecisionCommit:
			decision = types.DecisionCommit
		case types.DecisionAbort:
			if decision == types.DecisionNone {
				decision = types.DecisionAbort
			}
		}
	}
	if decision == types.DecisionNone {
		for _, s := range sites {
			if t.resp[s].Uncommitted {
				decision = types.DecisionAbort // safe: that site never voted
				break
			}
		}
	}
	if decision == types.DecisionNone {
		env.Tracef("%s: all reachable participants uncertain — 2PC blocks", t.txn)
		env.Block(t.txn)
		env.TerminatorDone(t.txn)
		return
	}
	env.Tracef("%s: cooperative terminator distributes %s", t.txn, decision)
	for _, p := range t.participants {
		if decision == types.DecisionCommit {
			env.Send(p, msg.Commit{Txn: t.txn})
		} else {
			env.Send(p, msg.Abort{Txn: t.txn})
		}
	}
	env.TerminatorDone(t.txn)
}
