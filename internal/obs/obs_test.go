package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilHandlesAreFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Spans
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(1)
	h.ObserveNS(5)
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	if s.Start(1) {
		t.Error("nil spans sampled")
	}
	s.Mark(1, 0, StageVote)
	s.Finish(1, "committed")
	if s.Recent() != nil || s.Slowest(3) != nil {
		t.Error("nil spans returned data")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry returned non-nil handles")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 9; i++ {
		h.Observe(50) // bucket <=100
	}
	h.Observe(5000) // overflow
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.50); got != 10 {
		t.Errorf("p50 = %v, want 10 (bucket bound)", got)
	}
	if got := s.Quantile(0.95); got != 100 {
		t.Errorf("p95 = %v, want 100", got)
	}
	if got := s.Quantile(1.0); got != 5000 {
		t.Errorf("p100 = %v, want recorded max 5000", got)
	}
	if mean := s.Mean(); mean < 59 || mean > 60 {
		t.Errorf("mean = %v, want 59.5", mean)
	}
	if s.Max != 5000 {
		t.Errorf("max = %v, want 5000", s.Max)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while a
// reader snapshots it; run under -race this pins the lock-free Observe path.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const goroutines, per = 8, 5000
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot().Quantile(0.99)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				h.ObserveNS(int64(g*1000 + i))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("qc_txns_total").Add(3)
	r.Gauge(`qc_depth{site="1"}`).Set(5)
	h := r.Histogram(`qc_lat_ns{site="1",shard="0"}`, []float64{10, 100})
	h.Observe(7)
	h.Observe(700)
	r.RegisterCounterFunc("qc_ext_total", func() uint64 { return 9 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"qc_txns_total 3",
		`qc_depth{site="1"} 5`,
		`qc_lat_ns_bucket{site="1",shard="0",le="10"} 1`,
		`qc_lat_ns_bucket{site="1",shard="0",le="100"} 1`,
		`qc_lat_ns_bucket{site="1",shard="0",le="+Inf"} 2`,
		`qc_lat_ns_sum{site="1",shard="0"} 707`,
		`qc_lat_ns_count{site="1",shard="0"} 2`,
		"qc_ext_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestMergeHistograms(t *testing.T) {
	r := NewRegistry()
	for _, site := range []string{"1", "2"} {
		h := r.Histogram(`m_ns{site="`+site+`"}`, []float64{10, 100})
		h.Observe(5)
		h.Observe(50)
	}
	merged := MergeHistograms(r.Snapshot(), "m_ns")
	if merged.Count != 4 || merged.Sum != 110 {
		t.Errorf("merged count/sum = %d/%v, want 4/110", merged.Count, merged.Sum)
	}
	if got := SumCounters(r.Snapshot(), "m_ns"); got != 0 {
		t.Errorf("SumCounters over histograms = %d, want 0", got)
	}
	r.Counter(`c_total{site="1"}`).Add(2)
	r.Counter(`c_total{site="2"}`).Add(3)
	if got := SumCounters(r.Snapshot(), "c_total"); got != 5 {
		t.Errorf("SumCounters = %d, want 5", got)
	}
}

// TestSpanSamplingDeterminism pins the seeded sampler: two recorders with
// the same seed and period sample exactly the same Start ordinals, a third
// with a different seed is phase-shifted but samples the same count, and
// period 1 samples everything.
func TestSpanSamplingDeterminism(t *testing.T) {
	const n = 256
	pick := func(seed int64, every int) []int {
		s := NewSpans(every, 64, seed)
		var got []int
		for i := 0; i < n; i++ {
			if s.Start(uint64(i)) {
				got = append(got, i)
				s.Finish(uint64(i), "committed")
			}
		}
		return got
	}
	a, b := pick(7, 16), pick(7, 16)
	if len(a) != n/16 {
		t.Fatalf("sampled %d of %d with period 16, want %d", len(a), n, n/16)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := pick(8, 16)
	if len(c) != n/16 {
		t.Errorf("different seed sampled %d, want %d (phase shift only)", len(c), n/16)
	}
	if all := pick(1, 1); len(all) != n {
		t.Errorf("period 1 sampled %d of %d", len(all), n)
	}
}

func TestSpanLifecycleAndSlowest(t *testing.T) {
	s := NewSpans(1, 4, 1)
	for i := 1; i <= 6; i++ { // overflows the 4-slot ring
		if !s.Start(uint64(i)) {
			t.Fatalf("txn %d not sampled at period 1", i)
		}
		s.Mark(uint64(i), 2, StageVote)
		s.Mark(uint64(i), 1, StageDecision)
		s.Finish(uint64(i), "committed")
	}
	recent := s.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d spans, want ring capacity 4", len(recent))
	}
	if recent[0].Txn != 6 || recent[3].Txn != 3 {
		t.Errorf("recent order = %d..%d, want 6..3", recent[0].Txn, recent[3].Txn)
	}
	sp := recent[0]
	if sp.Outcome != "committed" || len(sp.Stages) != 3 {
		t.Errorf("span = %+v, want committed with recv+vote+decision stages", sp)
	}
	if sp.Stages[0].Stage != StageRecv || sp.Stages[1].Stage != StageVote || sp.Stages[1].Site != 2 {
		t.Errorf("stage order/site wrong: %+v", sp.Stages)
	}
	if slow := s.Slowest(2); len(slow) != 2 {
		t.Errorf("Slowest(2) = %d spans", len(slow))
	}
	started, finished := s.Stats()
	if started != 6 || finished != 6 {
		t.Errorf("stats = %d/%d, want 6/6", started, finished)
	}
	// Marks and finishes for unsampled or unknown txns are safe no-ops.
	s.Mark(99, 0, StageVote)
	s.Finish(99, "aborted")
}
