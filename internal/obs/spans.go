package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Commit-path stage names. The live runtime marks these on every sampled
// transaction's span; each is timestamped relative to the span's start, and
// a stage can repeat (one vote mark per participant, one termination mark
// per election round). The span stream is the client-visible history
// substrate for offline auditing: ordered, timestamped, per-transaction.
const (
	// StageRecv is the client/submitter receive — span start.
	StageRecv = "recv"
	// StageLocks is local lock acquisition at a site.
	StageLocks = "locks"
	// StageVoteReq is the coordinator dispatching the vote round.
	StageVoteReq = "vote_req"
	// StageVote is one participant vote arriving at the coordinator.
	StageVote = "vote"
	// StageWALAppend is a WAL append entering the (possibly async) log.
	StageWALAppend = "wal_append"
	// StageWALDurable is the append's group-commit batch landing on disk.
	StageWALDurable = "wal_durable"
	// StageDecision is the local commit/abort decision being applied.
	StageDecision = "decision"
	// StageTermRound is one termination-protocol election round starting.
	StageTermRound = "term_round"
	// StageNotify is the outcome notification waking client waiters.
	StageNotify = "notify"
)

// StageEvent is one timestamped stage mark.
type StageEvent struct {
	Site  int    `json:"site"`
	Stage string `json:"stage"`
	AtNS  int64  `json:"at_ns"` // relative to the span's start
}

// Span is one sampled transaction's commit-path timeline.
type Span struct {
	Txn     uint64       `json:"txn"`
	StartNS int64        `json:"start_unix_ns"`
	EndNS   int64        `json:"end_unix_ns"` // 0 while in flight
	Outcome string       `json:"outcome"`     // "" while in flight
	Stages  []StageEvent `json:"stages"`
}

// DurationNS is the span's total duration (up to now for in-flight spans).
func (s Span) DurationNS() int64 {
	if s.EndNS == 0 {
		return time.Now().UnixNano() - s.StartNS
	}
	return s.EndNS - s.StartNS
}

// maxActive bounds the in-flight span table, so transactions that never
// terminate (blocked under a partition, say) cannot grow it without bound;
// at the cap, new transactions simply go unsampled.
const maxActive = 1024

// Spans records sampled per-transaction commit-path timelines. Sampling is
// deterministic given the seed and the Start call sequence: Start's n-th
// call samples iff (n + phase) is a multiple of the sampling period, with
// the phase derived from the seed — so two recorders with the same seed and
// period sample the same ordinals, which is what makes span-based
// assertions reproducible. A nil *Spans no-ops every method.
type Spans struct {
	every uint64
	phase uint64
	seq   atomic.Uint64

	started  Counter // sampled spans begun
	finished Counter // sampled spans completed

	mu     sync.Mutex
	active map[uint64]*Span
	ring   []Span // completed spans, oldest overwritten first
	next   int
	filled bool
}

// NewSpans builds a recorder sampling one transaction in every (minimum 1),
// keeping the most recent capacity completed spans (default 256), seeded
// for a deterministic sampling phase.
func NewSpans(every, capacity int, seed int64) *Spans {
	if every < 1 {
		every = 1
	}
	if capacity <= 0 {
		capacity = 256
	}
	// splitmix64 step scrambles the seed into a phase inside the period.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &Spans{
		every:  uint64(every),
		phase:  z % uint64(every),
		active: make(map[uint64]*Span),
		ring:   make([]Span, 0, capacity),
	}
}

// Start begins txn's span if the sampler picks it, reporting the decision.
func (s *Spans) Start(txn uint64) bool {
	if s == nil {
		return false
	}
	n := s.seq.Add(1)
	if (n+s.phase)%s.every != 0 {
		return false
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.active) >= maxActive {
		return false
	}
	s.active[txn] = &Span{
		Txn:     txn,
		StartNS: now,
		Stages:  []StageEvent{{Stage: StageRecv}},
	}
	s.started.Inc()
	return true
}

// Sampled reports whether txn has an in-flight span.
func (s *Spans) Sampled(txn uint64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.active[txn]
	return ok
}

// Mark timestamps stage on txn's span, if sampled (cheap no-op otherwise).
func (s *Spans) Mark(txn uint64, site int, stage string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.active[txn]
	if sp == nil {
		return
	}
	sp.Stages = append(sp.Stages, StageEvent{Site: site, Stage: stage, AtNS: now - sp.StartNS})
}

// Finish completes txn's span with the given outcome and moves it to the
// recent ring.
func (s *Spans) Finish(txn uint64, outcome string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.active[txn]
	if sp == nil {
		return
	}
	delete(s.active, txn)
	sp.EndNS = now
	sp.Outcome = outcome
	s.finished.Inc()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, *sp)
		return
	}
	s.ring[s.next] = *sp
	s.next = (s.next + 1) % cap(s.ring)
	s.filled = true
}

// Recent returns the completed spans in the retention window, newest first.
func (s *Spans) Recent() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.ring))
	if !s.filled {
		// Still in the append phase: newest is the last element.
		for i := len(s.ring) - 1; i >= 0; i-- {
			out = append(out, s.ring[i])
		}
		return out
	}
	// Wrapped: s.next is the next overwrite slot, so newest is just before it.
	for i := 0; i < len(s.ring); i++ {
		idx := ((s.next-1-i)%len(s.ring) + len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx])
	}
	return out
}

// Slowest returns up to n completed spans ordered by descending duration.
func (s *Spans) Slowest(n int) []Span {
	all := s.Recent()
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurationNS() > all[j].DurationNS() })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Stats reports the sampler's counters: spans begun and completed.
func (s *Spans) Stats() (started, finished uint64) {
	if s == nil {
		return 0, 0
	}
	return s.started.Load(), s.finished.Load()
}
