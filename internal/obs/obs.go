// Package obs is the runtime's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with quantile snapshots) plus a sampled per-transaction span
// recorder that timestamps each commit-path stage (see spans.go).
//
// The design rule is that the zero value is free: every method on a nil
// *Counter, *Gauge, *Histogram or *Spans is a no-op, so instrumented code
// holds plain pointer fields, leaves them nil when observability is off, and
// records unconditionally — no branches, no interface dispatch, no
// registration dance on the hot path. When a Registry is wired in, each
// record costs one or two atomic operations.
//
// Metric names follow the Prometheus text conventions: snake_case with a
// unit suffix (_total, _ns), optional labels in the name itself —
// "qcommit_lock_wait_ns{site=\"1\",shard=\"3\"}" — which WritePrometheus
// splits back out so histogram bucket lines can merge the le label in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Observer bundles what an instrumented runtime carries: the metrics
// registry and the span recorder. Either field (or the whole pointer) may be
// nil; everything downstream of a nil stays free.
type Observer struct {
	Registry *Registry
	Spans    *Spans
}

// Reg returns the observer's registry (nil-safe).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Spanner returns the observer's span recorder (nil-safe).
func (o *Observer) Spanner() *Spans {
	if o == nil {
		return nil
	}
	return o.Spans
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. No-op on nil.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation i lands in the first
// bucket whose upper bound is >= the value, with one overflow bucket above
// the last bound (+Inf). Bounds are set at construction and never change, so
// Observe is lock-free: one atomic add into the bucket, one into the sum,
// one into the count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits-encoded CAS-accumulated sum
	count   atomic.Uint64
	maxBits atomic.Uint64 // float64 bits of the largest observation
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
// The bounds slice is copied; an empty bounds list yields a single +Inf
// bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// LatencyBounds is the default bucket ladder for nanosecond latencies:
// powers of two from 1µs to ~17s. Coarse enough to stay cheap, fine enough
// for meaningful p50/p95/p99 under the runtime's microsecond-to-second range.
func LatencyBounds() []float64 {
	bounds := make([]float64, 0, 25)
	for ns := float64(1024); ns < 2e10; ns *= 2 { // ~1µs .. ~17s
		bounds = append(bounds, ns)
	}
	return bounds
}

// SizeBounds is a bucket ladder for small-integer distributions (batch
// sizes, queue depths): 1, 2, 4, ... 4096.
func SizeBounds() []float64 {
	bounds := make([]float64, 0, 13)
	for n := float64(1); n <= 4096; n *= 2 {
		bounds = append(bounds, n)
	}
	return bounds
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary-search the bucket; the ladders are small (~25 entries).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveNS records a nanosecond duration.
func (h *Histogram) ObserveNS(ns int64) { h.Observe(float64(ns)) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"-"`
	Counts []uint64  `json:"-"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
}

// Snapshot copies the histogram's state. Counts are read bucket-by-bucket
// without a global lock, so a snapshot taken under concurrent observation is
// internally consistent only to within the in-flight observations — fine for
// monitoring. Nil yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile returns the q-th quantile (0 < q <= 1) estimated from the bucket
// counts: the upper bound of the bucket holding the nearest-rank
// observation, with the overflow bucket reporting the recorded maximum. Zero
// observations yield 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean (0 with no observations).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// metric is one registered entry, in registration order.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics with Prometheus text
// exposition. Handles are created through the getters (get-or-create by
// exact name, labels included) or attached with the Register* methods when
// the instrumented code owns its own handles. A nil *Registry returns nil
// handles from every getter, which keeps the whole chain free.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]int
	metrics []metric
	funcs   []counterFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Counter returns the counter registered under name, creating it if needed.
// Nil registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].c
	}
	c := &Counter{}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, c: c})
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].g
	}
	g := &Gauge{}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, g: g})
	return g
}

// Histogram returns the histogram registered under name, creating it over
// bounds if needed (bounds are ignored when the name already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].h
	}
	h := NewHistogram(bounds)
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, h: h})
	return h
}

// RegisterHistogram attaches an externally owned histogram under name
// (instrumented packages that always maintain their own handles — e.g. the
// group-commit WAL's batch-size distribution — publish them this way).
// Re-registering a name replaces the previous handle.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		r.metrics[i] = metric{name: name, h: h}
		return
	}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, h: h})
}

// RegisterCounterFunc registers a counter whose value is read through fn at
// exposition time (for sources that already keep their own atomic counts,
// like the TCP endpoint's frame counters).
func (r *Registry) RegisterCounterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	c := r.Counter(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs = append(r.funcs, counterFunc{c: c, fn: fn})
}

// counterFunc mirrors an external count into a registered counter at
// exposition time.
type counterFunc struct {
	c  *Counter
	fn func() uint64
}

// refresh pulls every counter func's current value.
func (r *Registry) refresh() {
	r.mu.Lock()
	funcs := append([]counterFunc(nil), r.funcs...)
	r.mu.Unlock()
	for _, cf := range funcs {
		v := cf.fn()
		if cur := cf.c.Load(); v > cur {
			cf.c.Add(v - cur)
		}
	}
}

// splitName separates "base{labels}" into base and "labels" (no braces);
// labels is empty when the name carries none.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels merges an existing label set with one more k="v" pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, in registration order. Histograms expand into cumulative _bucket
// lines plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.refresh()
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		base, labels := splitName(m.name)
		wrap := func(lbl string) string {
			if lbl == "" {
				return ""
			}
			return "{" + lbl + "}"
		}
		switch {
		case m.c != nil:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, wrap(labels), m.c.Load()); err != nil {
				return err
			}
		case m.g != nil:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, wrap(labels), m.g.Load()); err != nil {
				return err
			}
		case m.h != nil:
			s := m.h.Snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = strconv(s.Bounds[i])
				}
				lbl := joinLabels(labels, `le="`+le+`"`)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, wrap(lbl), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, wrap(labels), s.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, wrap(labels), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// strconv renders a bucket bound compactly (integral bounds without the
// trailing .0 %g would keep).
func strconv(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Kind discriminates snapshot entries.
type Kind uint8

// Snapshot kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// MetricSnapshot is one metric's point-in-time state.
type MetricSnapshot struct {
	Name  string // full registered name, labels included
	Base  string // name with labels stripped
	Kind  Kind
	Value float64      // counter/gauge value
	Hist  HistSnapshot // KindHistogram only
}

// Snapshot returns every metric's current state in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.refresh()
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		base, _ := splitName(m.name)
		ms := MetricSnapshot{Name: m.name, Base: base}
		switch {
		case m.c != nil:
			ms.Kind, ms.Value = KindCounter, float64(m.c.Load())
		case m.g != nil:
			ms.Kind, ms.Value = KindGauge, float64(m.g.Load())
		case m.h != nil:
			ms.Kind, ms.Hist = KindHistogram, m.h.Snapshot()
		}
		out = append(out, ms)
	}
	return out
}

// MergeHistograms sums the bucket counts of every histogram snapshot whose
// base name matches, yielding the aggregate distribution (per-site and
// per-shard series roll up into one). Snapshots with differing bucket
// ladders are skipped after the first.
func MergeHistograms(snaps []MetricSnapshot, base string) HistSnapshot {
	var out HistSnapshot
	for _, s := range snaps {
		if s.Kind != KindHistogram || s.Base != base {
			continue
		}
		if out.Bounds == nil {
			out.Bounds = s.Hist.Bounds
			out.Counts = make([]uint64, len(s.Hist.Counts))
		}
		if len(s.Hist.Counts) != len(out.Counts) {
			continue
		}
		for i, c := range s.Hist.Counts {
			out.Counts[i] += c
		}
		out.Count += s.Hist.Count
		out.Sum += s.Hist.Sum
		if s.Hist.Max > out.Max {
			out.Max = s.Hist.Max
		}
	}
	return out
}

// SumCounters sums every counter snapshot whose base name matches.
func SumCounters(snaps []MetricSnapshot, base string) uint64 {
	var total uint64
	for _, s := range snaps {
		if s.Kind == KindCounter && s.Base == base {
			total += uint64(s.Value)
		}
	}
	return total
}
