// Package threepc implements Skeen's three-phase commit protocol (Fig. 2 of
// the paper) together with its termination protocol, which was designed for
// site failures only.
//
// The termination rule is the one quoted in the paper's Example 2: "if there
// exists a site in PC state or commit state, then the transaction should be
// committed; else the transaction should be aborted". Under pure site
// failures this is nonblocking and safe; under network partitioning it
// terminates transactions inconsistently — partitions with a PC site commit
// while partitions without one abort. The repository reproduces exactly that
// misbehaviour (Example 2) as a baseline.
package threepc

import (
	"qcommit/internal/protocol"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// Spec is the 3PC protocol family.
type Spec struct {
	// PatienceRounds caps participant-initiated termination attempts.
	PatienceRounds int
}

var _ protocol.Spec = Spec{}

// Name implements protocol.Spec.
func (Spec) Name() string { return "3PC" }

// NewCoordinator implements protocol.Spec: plain 3PC waits for every PC-ACK
// and presumes silent sites failed when the window closes.
func (s Spec) NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) protocol.Automaton {
	return threephase.NewCoordinator(txn, ws, participants,
		threephase.AllAcks{Participants: participants}, threephase.AckTimeoutCommit)
}

// NewParticipant implements protocol.Spec.
func (s Spec) NewParticipant(txn types.TxnID, init *wal.TxnImage) protocol.Automaton {
	return threephase.NewParticipant(txn, init, threephase.ParticipantOpts{PatienceRounds: s.PatienceRounds})
}

// NewTerminator implements protocol.Spec.
func (s Spec) NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) protocol.Automaton {
	return threephase.NewTerminator(txn, ws, participants, epoch, Rules{})
}

// Rules is 3PC's site-failure termination rule.
type Rules struct{}

var _ threephase.Rules = Rules{}

// Name implements threephase.Rules.
func (Rules) Name() string { return "3PC-term" }

// Decide implements threephase.Rules: commit if any participant is in PC or
// C, else abort.
func (Rules) Decide(env protocol.Env, t threephase.StateTally) threephase.Verdict {
	switch {
	case t.Any(types.StateCommitted):
		return threephase.VerdictCommit
	case t.Any(types.StateAborted):
		return threephase.VerdictAbort
	case t.Any(types.StatePC):
		// Move waiting participants to PC first, then commit.
		return threephase.VerdictTryCommit
	default:
		return threephase.VerdictAbort
	}
}

// CommitConfirmed implements threephase.Rules: the site-failure termination
// protocol commits unconditionally once the PC round is over (it assumes
// silent sites are down, not partitioned away).
func (Rules) CommitConfirmed(env protocol.Env, sites []types.SiteID) bool { return true }

// AbortConfirmed implements threephase.Rules (unused: aborts are immediate).
func (Rules) AbortConfirmed(env protocol.Env, sites []types.SiteID) bool { return true }
