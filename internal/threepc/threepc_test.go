package threepc

import (
	"testing"

	"qcommit/internal/protocoltest"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func env() *protocoltest.Env {
	return protocoltest.New(1, voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
	))
}

func TestRulesDecide(t *testing.T) {
	r := Rules{}
	e := env()
	q, w, pc, c, a := types.StateInitial, types.StateWait, types.StatePC, types.StateCommitted, types.StateAborted

	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   threephase.Verdict
	}{
		{"committed present", map[types.SiteID]types.State{2: w, 3: c}, threephase.VerdictCommit},
		{"aborted present", map[types.SiteID]types.State{2: w, 3: a}, threephase.VerdictAbort},
		{"PC present commits", map[types.SiteID]types.State{2: w, 3: pc}, threephase.VerdictTryCommit},
		{"all W aborts", map[types.SiteID]types.State{2: w, 3: w}, threephase.VerdictAbort},
		{"q aborts", map[types.SiteID]types.State{2: q}, threephase.VerdictAbort},
	}
	for _, tc := range cases {
		if got := r.Decide(e, threephase.NewStateTally(tc.states)); got != tc.want {
			t.Errorf("%s: %v, want %v", tc.name, got, tc.want)
		}
	}
	// The site-failure termination protocol never demands quorums: any
	// confirmation succeeds.
	if !r.CommitConfirmed(e, nil) || !r.AbortConfirmed(e, nil) {
		t.Error("3PC termination must confirm unconditionally")
	}
}

// TestRulesAreInconsistentUnderPartition documents WHY Example 2 happens:
// two disjoint partitions of one interrupted run (one holding the PC site,
// one not) get opposite verdicts.
func TestRulesAreInconsistentUnderPartition(t *testing.T) {
	r := Rules{}
	e := env()
	w, pc := types.StateWait, types.StatePC
	gWithPC := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{4: w, 5: pc}))
	gWithout := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{2: w, 3: w}))
	if gWithPC != threephase.VerdictTryCommit || gWithout != threephase.VerdictAbort {
		t.Errorf("verdicts = %v/%v, want try-commit/abort (the Example 2 split)", gWithPC, gWithout)
	}
}

func TestSpecConstruction(t *testing.T) {
	s := Spec{}
	if s.Name() != "3PC" {
		t.Errorf("name = %q", s.Name())
	}
	ws := types.Writeset{{Item: "x", Value: 1}}
	parts := []types.SiteID{1, 2}
	if s.NewCoordinator(1, ws, parts) == nil || s.NewParticipant(1, nil) == nil ||
		s.NewTerminator(1, ws, parts, 0) == nil {
		t.Error("spec returned nil automata")
	}
}
