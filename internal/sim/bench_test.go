package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		for j := 0; j < 100; j++ {
			s.After(Duration(j%17)*Millisecond, func() {})
		}
		s.Run()
	}
}

func BenchmarkNestedCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		depth := 0
		var step func()
		step = func() {
			depth++
			if depth < 1000 {
				s.After(Millisecond, step)
			}
		}
		s.After(Millisecond, step)
		s.Run()
		depth = 0
	}
}

func BenchmarkCancel(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := s.At(Time(i+1_000_000_000), func() {})
		s.Cancel(id)
	}
}
