package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("final time = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOAmongEqualTimes(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerAfterAndNesting(t *testing.T) {
	s := NewScheduler(1)
	var hits []Time
	s.After(10, func() {
		hits = append(hits, s.Now())
		s.After(5, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulerPastSchedulingClamps(t *testing.T) {
	s := NewScheduler(1)
	var at Time = -1
	s.At(10, func() {
		s.At(3, func() { at = s.Now() }) // in the past: runs "now"
	})
	s.Run()
	if at != 10 {
		t.Errorf("past event ran at %v, want clamped to 10", at)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	id := s.At(10, func() { ran = true })
	if !s.Cancel(id) {
		t.Error("first Cancel should report true")
	}
	if s.Cancel(id) {
		t.Error("second Cancel should report false")
	}
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var ran []Time
	s.At(10, func() { ran = append(ran, 10) })
	s.At(20, func() { ran = append(ran, 20) })
	s.At(30, func() { ran = append(ran, 30) })
	s.RunUntil(20)
	if len(ran) != 2 {
		t.Errorf("RunUntil(20) ran %v, want two events", ran)
	}
	if s.Now() != 20 {
		t.Errorf("Now = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(ran) != 3 {
		t.Errorf("final ran = %v", ran)
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler(1)
	hits := 0
	s.At(5, func() { hits++ })
	s.RunFor(3)
	if hits != 0 || s.Now() != 3 {
		t.Errorf("after RunFor(3): hits=%d now=%v", hits, s.Now())
	}
	s.RunFor(3)
	if hits != 1 || s.Now() != 6 {
		t.Errorf("after RunFor(6): hits=%d now=%v", hits, s.Now())
	}
}

func TestSchedulerMaxSteps(t *testing.T) {
	s := NewScheduler(1)
	s.MaxSteps = 100
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	s.Run()
	if s.Steps() != 100 {
		t.Errorf("steps = %d, want clamped at 100", s.Steps())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := NewScheduler(seed)
		var log []Time
		for i := 0; i < 50; i++ {
			s.After(Duration(s.Rand().Int63n(1000)), func() { log = append(log, s.Now()) })
		}
		s.Run()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSchedulerDispatchOrderProperty: events always dispatch in
// non-decreasing time order, regardless of insertion order.
func TestSchedulerDispatchOrderProperty(t *testing.T) {
	f := func(seed int64, times []uint32) bool {
		s := NewScheduler(seed)
		var dispatched []Time
		for _, tm := range times {
			at := Time(tm % 10000)
			s.At(at, func() { dispatched = append(dispatched, s.Now()) })
		}
		s.Run()
		if len(dispatched) != len(times) {
			return false
		}
		for i := 1; i < len(dispatched); i++ {
			if dispatched[i] < dispatched[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Time(1_500_000).String() != "1.500ms" {
		t.Errorf("Time string = %q", Time(1_500_000).String())
	}
	if Time(10).Add(5) != 15 {
		t.Error("Add wrong")
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Error("unit ratios wrong")
	}
}
