// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol experiments in this repository run on virtual time: events
// (message deliveries, timer expirations, scripted failures) are ordered in
// a priority queue keyed by (time, sequence number), so a given seed and
// scenario always replays identically. The same protocol automata also run
// under the live goroutine runtime (package live); only the scheduler
// differs.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time in milliseconds for trace output.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1e6) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// event is a scheduled callback. Events are pooled: once dispatched or
// cancelled they return to the scheduler's freelist and are reused by later
// At/After calls, so a long replay's event churn settles into a fixed
// working set instead of allocating per event. The gen counter guards stale
// EventIDs across reuse.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	idx  int    // heap index, -1 once popped or cancelled
	gen  uint32 // bumped on recycle; EventIDs carry the gen they were issued at
	dead bool
}

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled. An EventID
// outlives its event safely: once the event runs, is cancelled, or its slot
// is reused, the ID's generation no longer matches and Cancel is a no-op.
type EventID struct {
	ev  *event
	gen uint32
}

// Scheduler is the simulation event loop. It is not safe for concurrent use;
// all simulated activity happens inside callbacks run by the scheduler.
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	free   []*event // recycled events for reuse by At/After
	seed   int64
	rng    *rand.Rand
	steps  uint64
	// MaxSteps bounds the number of dispatched events to guard against
	// livelock in buggy scenarios; 0 means unlimited.
	MaxSteps uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source. The source is
// seeded on first use — seeding the rand table is surprisingly expensive,
// and runs under a deterministic DelayFn never draw from it at all.
func (s *Scheduler) Rand() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.seed))
	}
	return s.rng
}

// Steps returns the number of events dispatched so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time, preserving FIFO order.
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		t = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.fn, ev.dead = t, fn, false
	} else {
		ev = &event{at: t, fn: fn}
	}
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
	return EventID{ev, ev.gen}
}

// recycle returns a popped or cancelled event to the freelist, invalidating
// outstanding EventIDs for it and dropping its closure.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	s.free = append(s.free, ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d Duration, fn func()) EventID {
	return s.At(s.now.Add(d), fn)
}

// Cancel prevents a scheduled event from running. Cancelling an already-run
// or already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (s *Scheduler) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&s.events, ev.idx)
	s.recycle(ev)
	return true
}

// Pending returns the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.events) }

// step dispatches the earliest event. It reports false when no events remain
// or MaxSteps is exhausted.
func (s *Scheduler) step() bool {
	if len(s.events) == 0 {
		return false
	}
	if s.MaxSteps != 0 && s.steps >= s.MaxSteps {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	if ev.dead {
		return true
	}
	s.now = ev.at
	s.steps++
	fn := ev.fn
	s.recycle(ev)
	fn()
	return true
}

// Run dispatches events until none remain (or MaxSteps is reached) and
// returns the final virtual time.
func (s *Scheduler) Run() Time {
	for s.step() {
	}
	return s.now
}

// RunUntil dispatches events with time ≤ deadline and then advances the clock
// to the deadline. Events scheduled beyond the deadline stay pending.
func (s *Scheduler) RunUntil(deadline Time) Time {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		if !s.step() {
			break
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor advances virtual time by d, dispatching due events.
func (s *Scheduler) RunFor(d Duration) Time { return s.RunUntil(s.now.Add(d)) }
