// Package stats holds small shared statistics helpers. It exists because
// the nearest-rank percentile was implemented twice — once in the churn
// study's latency tables and once (slightly differently) in loadbench —
// and the two drifted; every consumer of sample percentiles goes through
// here now.
package stats

import (
	"cmp"
	"math"
)

// PercentileNearestRank returns the p-th percentile (0 < p <= 100) of the
// ascending-sorted sample by the nearest-rank method: the smallest element
// with at least ceil(p/100*n) samples at or below it. The zero value of T
// is returned for an empty sample; p is clamped into (0, 100].
//
// Nearest rank is exact on the sample (no interpolation), monotone in p,
// and for p=100 always returns the maximum — the properties the latency
// tables rely on.
func PercentileNearestRank[T cmp.Ordered](sorted []T, p float64) T {
	var zero T
	n := len(sorted)
	if n == 0 {
		return zero
	}
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
