package stats

import (
	"testing"
	"time"
)

func TestPercentileEmpty(t *testing.T) {
	if got := PercentileNearestRank([]float64(nil), 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := PercentileNearestRank([]time.Duration{}, 99); got != 0 {
		t.Errorf("empty duration percentile = %v, want 0", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	s := []int{42}
	for _, p := range []float64{0.0001, 1, 50, 99, 100} {
		if got := PercentileNearestRank(s, p); got != 42 {
			t.Errorf("p%v of single sample = %d, want 42", p, got)
		}
	}
}

// TestPercentileExactRankBoundaries pins the nearest-rank rule at the rank
// transition points: with n samples, p just above 100*k/n must move to the
// (k+1)-th order statistic, and p exactly 100*k/n must still report the
// k-th.
func TestPercentileExactRankBoundaries(t *testing.T) {
	s := []int{10, 20, 30, 40} // n=4: ranks flip at 25, 50, 75
	cases := []struct {
		p    float64
		want int
	}{
		{1, 10}, {25, 10}, // ceil(25/100*4)=1
		{25.01, 20}, {50, 20}, // ceil jumps to 2 just past 25
		{50.01, 30}, {75, 30},
		{75.01, 40}, {99, 40}, {100, 40},
	}
	for _, tc := range cases {
		if got := PercentileNearestRank(s, tc.p); got != tc.want {
			t.Errorf("p%v = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestPercentileClampsOutOfRangeP(t *testing.T) {
	s := []int{1, 2, 3}
	if got := PercentileNearestRank(s, -5); got != 1 {
		t.Errorf("p<=0 = %d, want first sample", got)
	}
	if got := PercentileNearestRank(s, 250); got != 3 {
		t.Errorf("p>100 = %d, want last sample", got)
	}
}
