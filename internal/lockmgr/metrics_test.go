package lockmgr

import (
	"testing"
	"time"

	"qcommit/internal/obs"
	"qcommit/internal/types"
)

// TestMetricsRecording pins the manager's observability hooks: grants and
// releases produce hold samples on the right shard, contention bumps the
// would-block counter, and a deadlock bumps its counter.
func TestMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewSharded(1, 4)
	m.SetMetrics(NewMetrics(reg, 1, m.Shards()))

	item := types.ItemID("x")
	if err := m.TryAcquire(1, item, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, item, Exclusive); err != ErrWouldBlock {
		t.Fatalf("contended TryAcquire = %v, want ErrWouldBlock", err)
	}
	m.ReleaseAll(1)

	holds := obs.MergeHistograms(reg.Snapshot(), "qcommit_lock_hold_ns")
	if holds.Count != 1 {
		t.Errorf("hold samples = %d, want 1 (one grant fully released)", holds.Count)
	}
	if got := obs.SumCounters(reg.Snapshot(), "qcommit_lock_wouldblock_total"); got != 1 {
		t.Errorf("wouldblock = %d, want 1", got)
	}

	// A cross-item mutual wait deadlocks the second blocking Acquire.
	a, b := types.ItemID("a"), types.ItemID("b")
	if err := m.Acquire(10, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(11, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(10, b, Exclusive) }()
	waitQueued(t, m, b)
	if err := m.Acquire(11, a, Exclusive); err != ErrDeadlock {
		t.Fatalf("cycle-closing Acquire = %v, want ErrDeadlock", err)
	}
	if got := obs.SumCounters(reg.Snapshot(), "qcommit_lock_deadlocks_total"); got != 1 {
		t.Errorf("deadlocks = %d, want 1", got)
	}
	m.ReleaseAll(11)
	if err := <-errc; err != nil {
		t.Fatalf("woken waiter got %v", err)
	}
	// The woken grant blocked, so it must have produced a wait sample.
	waits := obs.MergeHistograms(reg.Snapshot(), "qcommit_lock_wait_ns")
	if waits.Count != 1 {
		t.Errorf("wait samples = %d, want 1 (the blocked-then-granted Acquire)", waits.Count)
	}
	m.ReleaseAll(10)
}

// waitQueued polls until item has a queued waiter, so the cycle-closing
// Acquire below observes the edge instead of racing the goroutine's enqueue.
func waitQueued(t *testing.T, m *Manager, item types.ItemID) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sh := m.shardOf(item)
		sh.mu.Lock()
		queued := sh.locks[item] != nil && len(sh.locks[item].queue) > 0
		sh.mu.Unlock()
		if queued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("waiter never queued")
}

// TestMetricsNilIsFree pins that a manager without metrics records nothing
// and never allocates grant-timestamp maps.
func TestMetricsNilIsFree(t *testing.T) {
	m := NewSharded(1, 2)
	item := types.ItemID("x")
	if err := m.TryAcquire(1, item, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ls := sh.locks[item]; ls != nil && ls.since != nil {
		t.Error("since map allocated without metrics")
	}
}
