package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qcommit/internal/types"
)

func TestTryAcquireBasics(t *testing.T) {
	m := New(1)
	if m.Site() != 1 {
		t.Error("site wrong")
	}
	if err := m.TryAcquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Locked("x") || !m.LockedBy(1, "x") {
		t.Error("lock state wrong")
	}
	if err := m.TryAcquire(2, "x", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("conflicting X lock: err = %v", err)
	}
	if err := m.TryAcquire(2, "x", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("S after X: err = %v", err)
	}
	m.Release(1, "x")
	if m.Locked("x") {
		t.Error("x still locked after release")
	}
	if err := m.TryAcquire(2, "x", Shared); err != nil {
		t.Errorf("S after release: %v", err)
	}
}

func TestSharedCompatibility(t *testing.T) {
	m := New(1)
	if err := m.TryAcquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, "x", Shared); err != nil {
		t.Errorf("S+S should be compatible: %v", err)
	}
	if err := m.TryAcquire(3, "x", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("X against S holders: %v", err)
	}
}

func TestReentrancyAndUpgrade(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "x", Shared)
	if err := m.TryAcquire(1, "x", Shared); err != nil {
		t.Errorf("re-entrant S: %v", err)
	}
	// Sole holder upgrade S → X succeeds.
	if err := m.TryAcquire(1, "x", Exclusive); err != nil {
		t.Errorf("upgrade by sole holder: %v", err)
	}
	// Now a second reader must be blocked.
	if err := m.TryAcquire(2, "x", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("S against upgraded X: %v", err)
	}
	// Upgrade with two holders fails.
	m2 := New(2)
	_ = m2.TryAcquire(1, "y", Shared)
	_ = m2.TryAcquire(2, "y", Shared)
	if err := m2.TryAcquire(1, "y", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("upgrade with co-holders: %v", err)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "x", Exclusive)
	_ = m.TryAcquire(1, "y", Exclusive)

	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, "x", Exclusive) }()
	// Give the goroutine time to enqueue.
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter woke with error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
	if m.Locked("y") {
		t.Error("y still locked after ReleaseAll")
	}
	if !m.LockedBy(2, "x") {
		t.Error("waiter does not hold x")
	}
}

func TestHeldItemsSorted(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "b", Exclusive)
	_ = m.TryAcquire(1, "a", Exclusive)
	_ = m.TryAcquire(2, "c", Exclusive)
	items := m.HeldItems(1)
	if len(items) != 2 || items[0] != "a" || items[1] != "b" {
		t.Errorf("HeldItems = %v", items)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "x", Exclusive)
	_ = m.TryAcquire(2, "y", Exclusive)

	// txn2 waits for x (held by 1).
	done2 := make(chan error, 1)
	go func() { done2 <- m.Acquire(2, "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	// txn1 requesting y would close the cycle 1→2→1.
	err := m.Acquire(1, "y", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}

	// Resolve: abort txn1 (release everything); txn2 must proceed.
	m.ReleaseAll(1)
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("txn2 woke with error %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("txn2 never woke after deadlock resolution")
	}
}

func TestQueuedRequestCancelledByReleaseAll(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "x", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// Abort the *waiter*: its queued request must be withdrawn.
	m.ReleaseAll(2)
	select {
	case err := <-done:
		if !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// x is still held by 1 and free after its release.
	if !m.LockedBy(1, "x") {
		t.Error("x lost its holder")
	}
}

func TestFIFOWaiters(t *testing.T) {
	m := New(1)
	_ = m.TryAcquire(1, "x", Exclusive)
	order := make(chan types.TxnID, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = m.Acquire(2, "x", Exclusive)
		order <- 2
		m.ReleaseAll(2)
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		defer wg.Done()
		_ = m.Acquire(3, "x", Exclusive)
		order <- 3
		m.ReleaseAll(3)
	}()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	first, second := <-order, <-order
	if first != 2 || second != 3 {
		t.Errorf("wake order = %v,%v, want 2,3 (FIFO)", first, second)
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings wrong")
	}
}

func TestStringSmoke(t *testing.T) {
	m := New(4)
	_ = m.TryAcquire(1, "x", Exclusive)
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}
