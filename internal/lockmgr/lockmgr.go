// Package lockmgr implements each site's lock manager.
//
// The commit protocols hold exclusive locks on every local copy written by a
// transaction from the yes vote until the transaction terminates. A blocked
// transaction therefore renders those copies inaccessible — the first of the
// two availability-reduction factors the paper analyzes. The availability
// harness (package avail) asks this lock manager which copies are locked to
// compute per-partition data accessibility.
//
// Locking is strict two-phase: locks are only released at commit or abort.
// Shared (read) and exclusive (write) modes are supported, with FIFO waiting
// and waits-for-graph deadlock detection.
package lockmgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qcommit/internal/types"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// compatible reports whether a new request of mode b can join holders of
// mode a.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Lock manager errors.
var (
	// ErrDeadlock is returned when granting the request would close a cycle
	// in the waits-for graph.
	ErrDeadlock = errors.New("lockmgr: deadlock detected")
	// ErrWouldBlock is returned by TryAcquire when the lock is unavailable.
	ErrWouldBlock = errors.New("lockmgr: lock unavailable")
)

type request struct {
	txn   types.TxnID
	mode  Mode
	grant chan error
}

type lockState struct {
	mode    Mode
	holders map[types.TxnID]int // re-entrancy count
	queue   []*request
}

// Manager is a per-site lock table.
type Manager struct {
	mu    sync.Mutex
	site  types.SiteID
	locks map[types.ItemID]*lockState
	// waitsFor[t] = set of transactions t waits for (deadlock detection).
	waitsFor map[types.TxnID]map[types.TxnID]bool
}

// New creates a lock manager for a site.
func New(site types.SiteID) *Manager {
	return &Manager{
		site:     site,
		locks:    make(map[types.ItemID]*lockState),
		waitsFor: make(map[types.TxnID]map[types.TxnID]bool),
	}
}

// Site returns the owning site.
func (m *Manager) Site() types.SiteID { return m.site }

// TryAcquire attempts to take item in the given mode without waiting.
// Re-entrant acquisition by the same transaction succeeds; upgrading S→X
// succeeds only if the transaction is the sole holder.
func (m *Manager) TryAcquire(txn types.TxnID, item types.ItemID, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[item]
	if ls == nil || len(ls.holders) == 0 {
		m.grantLocked(txn, item, mode)
		return nil
	}
	if _, holds := ls.holders[txn]; holds {
		if mode == Exclusive && ls.mode == Shared {
			if len(ls.holders) == 1 {
				ls.mode = Exclusive
				ls.holders[txn]++
				return nil
			}
			return ErrWouldBlock
		}
		ls.holders[txn]++
		return nil
	}
	if compatible(ls.mode, mode) && len(ls.queue) == 0 {
		ls.holders[txn] = 1
		return nil
	}
	return ErrWouldBlock
}

// Acquire takes the lock, blocking until granted. It returns ErrDeadlock if
// waiting would create a waits-for cycle. Intended for the live runtime; the
// deterministic simulator uses TryAcquire.
func (m *Manager) Acquire(txn types.TxnID, item types.ItemID, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[item]
	if ls == nil || len(ls.holders) == 0 {
		m.grantLocked(txn, item, mode)
		m.mu.Unlock()
		return nil
	}
	if _, holds := ls.holders[txn]; holds {
		err := func() error {
			if mode == Exclusive && ls.mode == Shared {
				if len(ls.holders) == 1 {
					ls.mode = Exclusive
					ls.holders[txn]++
					return nil
				}
				return ErrWouldBlock
			}
			ls.holders[txn]++
			return nil
		}()
		m.mu.Unlock()
		return err
	}
	if compatible(ls.mode, mode) && len(ls.queue) == 0 {
		ls.holders[txn] = 1
		m.mu.Unlock()
		return nil
	}
	// Must wait: record edges and check for a cycle.
	for holder := range ls.holders {
		m.addEdgeLocked(txn, holder)
	}
	if m.cycleFromLocked(txn) {
		m.clearEdgesLocked(txn)
		m.mu.Unlock()
		return ErrDeadlock
	}
	req := &request{txn: txn, mode: mode, grant: make(chan error, 1)}
	ls.queue = append(ls.queue, req)
	m.mu.Unlock()
	return <-req.grant
}

// Release drops one hold of txn on item, waking waiters when it becomes free.
func (m *Manager) Release(txn types.TxnID, item types.ItemID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, item)
}

// ReleaseAll drops every lock held by txn (commit/abort).
func (m *Manager) ReleaseAll(txn types.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for item, ls := range m.locks {
		if _, ok := ls.holders[txn]; ok {
			delete(ls.holders, txn)
			m.wakeLocked(item)
		}
		// Also drop a queued request from an aborted transaction.
		for i, req := range ls.queue {
			if req.txn == txn {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				req.grant <- ErrWouldBlock
				break
			}
		}
	}
	m.clearEdgesLocked(txn)
}

// Locked reports whether item is currently locked (by anyone).
func (m *Manager) Locked(item types.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[item]
	return ls != nil && len(ls.holders) > 0
}

// LockedBy reports whether txn holds item.
func (m *Manager) LockedBy(txn types.TxnID, item types.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[item]
	if ls == nil {
		return false
	}
	_, ok := ls.holders[txn]
	return ok
}

// HeldItems returns the items txn currently holds, in ascending order.
func (m *Manager) HeldItems(txn types.TxnID) []types.ItemID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []types.ItemID
	for item, ls := range m.locks {
		if _, ok := ls.holders[txn]; ok {
			out = append(out, item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the lock table for debugging.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	items := make([]types.ItemID, 0, len(m.locks))
	for it := range m.locks {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	s := fmt.Sprintf("locks@%s{", m.site)
	for i, it := range items {
		ls := m.locks[it]
		if len(ls.holders) == 0 {
			continue
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%s×%d", it, ls.mode, len(ls.holders))
	}
	return s + "}"
}

func (m *Manager) grantLocked(txn types.TxnID, item types.ItemID, mode Mode) {
	ls := m.locks[item]
	if ls == nil {
		ls = &lockState{holders: make(map[types.TxnID]int)}
		m.locks[item] = ls
	}
	ls.mode = mode
	ls.holders[txn] = 1
}

func (m *Manager) releaseLocked(txn types.TxnID, item types.ItemID) {
	ls := m.locks[item]
	if ls == nil {
		return
	}
	if cnt, ok := ls.holders[txn]; ok {
		if cnt > 1 {
			ls.holders[txn] = cnt - 1
			return
		}
		delete(ls.holders, txn)
	}
	m.wakeLocked(item)
}

// wakeLocked grants queued requests that have become compatible.
func (m *Manager) wakeLocked(item types.ItemID) {
	ls := m.locks[item]
	if ls == nil {
		return
	}
	for len(ls.queue) > 0 {
		head := ls.queue[0]
		if len(ls.holders) == 0 {
			ls.queue = ls.queue[1:]
			ls.mode = head.mode
			ls.holders[head.txn] = 1
			m.clearEdgesLocked(head.txn)
			head.grant <- nil
			continue
		}
		if compatible(ls.mode, head.mode) {
			ls.queue = ls.queue[1:]
			ls.holders[head.txn] = 1
			m.clearEdgesLocked(head.txn)
			head.grant <- nil
			continue
		}
		break
	}
}

func (m *Manager) addEdgeLocked(from, to types.TxnID) {
	if from == to {
		return
	}
	set := m.waitsFor[from]
	if set == nil {
		set = make(map[types.TxnID]bool)
		m.waitsFor[from] = set
	}
	set[to] = true
}

func (m *Manager) clearEdgesLocked(txn types.TxnID) {
	delete(m.waitsFor, txn)
}

// cycleFromLocked reports whether txn can reach itself in the waits-for graph.
func (m *Manager) cycleFromLocked(start types.TxnID) bool {
	seen := make(map[types.TxnID]bool)
	var stack []types.TxnID
	for t := range m.waitsFor[start] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for next := range m.waitsFor[t] {
			stack = append(stack, next)
		}
	}
	return false
}
