// Package lockmgr implements each site's lock manager.
//
// The commit protocols hold exclusive locks on every local copy written by a
// transaction from the yes vote until the transaction terminates. A blocked
// transaction therefore renders those copies inaccessible — the first of the
// two availability-reduction factors the paper analyzes. The availability
// harness (package avail) asks this lock manager which copies are locked to
// compute per-partition data accessibility.
//
// Locking is strict two-phase: locks are only released at commit or abort.
// Shared (read) and exclusive (write) modes are supported, with FIFO waiting
// and waits-for-graph deadlock detection.
//
// The lock table is sharded by item hash so independent transactions touching
// different items never serialize on one mutex; each shard has its own lock
// and per-item FIFO queues, while the waits-for graph stays global (guarded
// by its own mutex) so deadlock cycles spanning shards are still detected —
// edge insertion and the cycle check happen in one critical section of the
// graph mutex, which serializes the checks exactly as the old single mutex
// did.
package lockmgr

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qcommit/internal/obs"
	"qcommit/internal/types"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// compatible reports whether a new request of mode b can join holders of
// mode a.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Lock manager errors.
var (
	// ErrDeadlock is returned when granting the request would close a cycle
	// in the waits-for graph.
	ErrDeadlock = errors.New("lockmgr: deadlock detected")
	// ErrWouldBlock is returned by TryAcquire when the lock is unavailable.
	ErrWouldBlock = errors.New("lockmgr: lock unavailable")
)

type request struct {
	txn   types.TxnID
	mode  Mode
	grant chan error
}

type lockState struct {
	mode    Mode
	holders map[types.TxnID]int // re-entrancy count
	queue   []*request
	since   map[types.TxnID]int64 // grant timestamps (ns); nil unless metrics are on
}

// shard is one slice of the lock table: its own mutex, its own items.
type shard struct {
	idx   int
	mu    sync.Mutex
	locks map[types.ItemID]*lockState
}

// Metrics carries the lock manager's observability handles. Wait and Hold
// are indexed by shard — contention is a per-shard phenomenon under the
// hashed table, so that is the granularity profile hunts need. Any nil
// handle (or a nil *Metrics on the manager) records nothing; the zero value
// costs one pointer check per operation.
type Metrics struct {
	// Wait observes, per shard, how long Acquire calls that actually
	// blocked waited for their grant.
	Wait []*obs.Histogram
	// Hold observes, per shard, the time from a transaction's grant on an
	// item to its final release of that item.
	Hold []*obs.Histogram
	// Deadlocks counts waits refused because they would close a cycle.
	Deadlocks *obs.Counter
	// WouldBlock counts non-blocking acquisitions that found the lock taken.
	WouldBlock *obs.Counter
}

// NewMetrics builds (and registers under canonical qcommit_lock_* names,
// labelled by site and shard) the handle set for a manager with the given
// shard count. A nil registry yields nil, keeping the whole chain free.
func NewMetrics(reg *obs.Registry, site types.SiteID, shards int) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		Deadlocks:  reg.Counter(fmt.Sprintf(`qcommit_lock_deadlocks_total{site="%d"}`, site)),
		WouldBlock: reg.Counter(fmt.Sprintf(`qcommit_lock_wouldblock_total{site="%d"}`, site)),
	}
	for i := 0; i < shards; i++ {
		m.Wait = append(m.Wait, reg.Histogram(fmt.Sprintf(`qcommit_lock_wait_ns{site="%d",shard="%d"}`, site, i), obs.LatencyBounds()))
		m.Hold = append(m.Hold, reg.Histogram(fmt.Sprintf(`qcommit_lock_hold_ns{site="%d",shard="%d"}`, site, i), obs.LatencyBounds()))
	}
	return m
}

// wait returns the shard's wait histogram (nil-safe).
func (mt *Metrics) wait(i int) *obs.Histogram {
	if mt == nil || i >= len(mt.Wait) {
		return nil
	}
	return mt.Wait[i]
}

// hold returns the shard's hold histogram (nil-safe).
func (mt *Metrics) hold(i int) *obs.Histogram {
	if mt == nil || i >= len(mt.Hold) {
		return nil
	}
	return mt.Hold[i]
}

// wouldBlock bumps the would-block counter (nil-safe).
func (mt *Metrics) wouldBlock() {
	if mt != nil {
		mt.WouldBlock.Inc()
	}
}

// deadlock bumps the deadlock counter (nil-safe).
func (mt *Metrics) deadlock() {
	if mt != nil {
		mt.Deadlocks.Inc()
	}
}

// DefaultShards is the shard count New uses.
const DefaultShards = 16

// hashSeed is shared by every manager so equal items always land in the
// same shard index regardless of which manager hashes them.
var hashSeed = maphash.MakeSeed()

// Manager is a per-site lock table.
type Manager struct {
	site   types.SiteID
	shards []shard

	// held counts (txn, item) holder entries across all shards, maintained
	// at every grant and release. HeldCount lets callers skip per-item
	// probes when the whole table is empty — the common case for the
	// hybrid churn engine's classification probe.
	held atomic.Int64

	// graphMu guards waitsFor, the global waits-for relation used for
	// deadlock detection across all shards. Lock order: a shard's mu may be
	// held while taking graphMu, never the reverse.
	graphMu sync.Mutex
	// waitsFor[t] = set of transactions t waits for.
	waitsFor map[types.TxnID]map[types.TxnID]bool

	// met is the optional observability handle set; nil means every
	// recording below is a single pointer check.
	met *Metrics
}

// SetMetrics installs the manager's observability handles. Call it before
// the manager sees traffic; operations in flight during the swap may record
// into either handle set.
func (m *Manager) SetMetrics(mt *Metrics) { m.met = mt }

// New creates a lock manager for a site with DefaultShards shards.
func New(site types.SiteID) *Manager { return NewSharded(site, DefaultShards) }

// NewSharded creates a lock manager with an explicit shard count; shards=1
// reproduces the historical single-mutex table (the loadbench baseline).
func NewSharded(site types.SiteID, shards int) *Manager {
	if shards <= 0 {
		shards = DefaultShards
	}
	m := &Manager{
		site:     site,
		shards:   make([]shard, shards),
		waitsFor: make(map[types.TxnID]map[types.TxnID]bool),
	}
	for i := range m.shards {
		m.shards[i].idx = i
		// Each shard's lock map is created on first grant: reads of a nil
		// map behave like reads of an empty one, and many simulated sites
		// never grant a lock at all.
	}
	return m
}

// noteGrantLocked stamps txn's grant time on ls for hold-time measurement;
// runs under the shard mutex, no-op without metrics.
func (m *Manager) noteGrantLocked(ls *lockState, txn types.TxnID) {
	if m.met == nil {
		return
	}
	if ls.since == nil {
		ls.since = make(map[types.TxnID]int64)
	}
	ls.since[txn] = time.Now().UnixNano()
}

// noteReleaseLocked observes txn's hold time on ls; runs under the shard
// mutex, no-op without metrics or when the grant predates SetMetrics.
func (m *Manager) noteReleaseLocked(sh *shard, ls *lockState, txn types.TxnID) {
	if m.met == nil || ls.since == nil {
		return
	}
	if t0, ok := ls.since[txn]; ok {
		delete(ls.since, txn)
		m.met.hold(sh.idx).ObserveNS(time.Now().UnixNano() - t0)
	}
}

// Site returns the owning site.
func (m *Manager) Site() types.SiteID { return m.site }

// Shards returns the shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// shardOf returns the shard holding item.
func (m *Manager) shardOf(item types.ItemID) *shard {
	if len(m.shards) == 1 {
		return &m.shards[0]
	}
	h := maphash.String(hashSeed, string(item))
	return &m.shards[h%uint64(len(m.shards))]
}

// TryAcquire attempts to take item in the given mode without waiting.
// Re-entrant acquisition by the same transaction succeeds; upgrading S→X
// succeeds only if the transaction is the sole holder.
func (m *Manager) TryAcquire(txn types.TxnID, item types.ItemID, mode Mode) error {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[item]
	if ls == nil || len(ls.holders) == 0 {
		sh.grantLocked(txn, item, mode)
		m.held.Add(1)
		m.noteGrantLocked(sh.locks[item], txn)
		return nil
	}
	if _, holds := ls.holders[txn]; holds {
		if mode == Exclusive && ls.mode == Shared {
			if len(ls.holders) == 1 {
				ls.mode = Exclusive
				ls.holders[txn]++
				return nil
			}
			m.met.wouldBlock()
			return ErrWouldBlock
		}
		ls.holders[txn]++
		return nil
	}
	if compatible(ls.mode, mode) && len(ls.queue) == 0 {
		ls.holders[txn] = 1
		m.held.Add(1)
		m.noteGrantLocked(ls, txn)
		return nil
	}
	m.met.wouldBlock()
	return ErrWouldBlock
}

// Acquire takes the lock, blocking until granted. It returns ErrDeadlock if
// waiting would create a waits-for cycle. Intended for the live runtime; the
// deterministic simulator uses TryAcquire.
func (m *Manager) Acquire(txn types.TxnID, item types.ItemID, mode Mode) error {
	sh := m.shardOf(item)
	sh.mu.Lock()
	ls := sh.locks[item]
	if ls == nil || len(ls.holders) == 0 {
		sh.grantLocked(txn, item, mode)
		m.held.Add(1)
		m.noteGrantLocked(sh.locks[item], txn)
		sh.mu.Unlock()
		return nil
	}
	if _, holds := ls.holders[txn]; holds {
		err := func() error {
			if mode == Exclusive && ls.mode == Shared {
				if len(ls.holders) == 1 {
					ls.mode = Exclusive
					ls.holders[txn]++
					return nil
				}
				return ErrWouldBlock
			}
			ls.holders[txn]++
			return nil
		}()
		sh.mu.Unlock()
		return err
	}
	if compatible(ls.mode, mode) && len(ls.queue) == 0 {
		ls.holders[txn] = 1
		m.held.Add(1)
		m.noteGrantLocked(ls, txn)
		sh.mu.Unlock()
		return nil
	}
	// Must wait: record edges and check for a cycle in one graph critical
	// section, so two transactions racing into a mutual wait from different
	// shards cannot both miss the cycle.
	m.graphMu.Lock()
	for holder := range ls.holders {
		m.addEdgeLocked(txn, holder)
	}
	if m.cycleFromLocked(txn) {
		m.clearEdgesLocked(txn)
		m.graphMu.Unlock()
		sh.mu.Unlock()
		m.met.deadlock()
		return ErrDeadlock
	}
	m.graphMu.Unlock()
	var t0 int64
	if m.met != nil {
		t0 = time.Now().UnixNano()
	}
	req := &request{txn: txn, mode: mode, grant: make(chan error, 1)}
	ls.queue = append(ls.queue, req)
	sh.mu.Unlock()
	err := <-req.grant
	if m.met != nil && err == nil {
		m.met.wait(sh.idx).ObserveNS(time.Now().UnixNano() - t0)
	}
	return err
}

// Release drops one hold of txn on item, waking waiters when it becomes free.
func (m *Manager) Release(txn types.TxnID, item types.ItemID) {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[item]
	if ls == nil {
		return
	}
	if cnt, ok := ls.holders[txn]; ok {
		if cnt > 1 {
			ls.holders[txn] = cnt - 1
			return
		}
		delete(ls.holders, txn)
		m.held.Add(-1)
		m.noteReleaseLocked(sh, ls, txn)
	}
	m.wakeLocked(sh, item)
}

// ReleaseAll drops every lock held by txn (commit/abort).
func (m *Manager) ReleaseAll(txn types.TxnID) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for item, ls := range sh.locks {
			if _, ok := ls.holders[txn]; ok {
				delete(ls.holders, txn)
				m.held.Add(-1)
				m.noteReleaseLocked(sh, ls, txn)
				m.wakeLocked(sh, item)
			}
			// Also drop a queued request from an aborted transaction.
			for j, req := range ls.queue {
				if req.txn == txn {
					ls.queue = append(ls.queue[:j], ls.queue[j+1:]...)
					//qlint:allow lockheld grant is buffered (cap 1, one send per request lifetime), so this send never blocks
					req.grant <- ErrWouldBlock
					break
				}
			}
		}
		sh.mu.Unlock()
	}
	m.graphMu.Lock()
	m.clearEdgesLocked(txn)
	m.graphMu.Unlock()
}

// Locked reports whether item is currently locked (by anyone).
func (m *Manager) Locked(item types.ItemID) bool {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[item]
	return ls != nil && len(ls.holders) > 0
}

// HeldCount returns the number of (transaction, item) holder entries across
// the whole table. Zero means no lock is held anywhere; an Exclusive upgrade
// of a Shared hold still counts once.
func (m *Manager) HeldCount() int64 { return m.held.Load() }

// LockedBy reports whether txn holds item.
func (m *Manager) LockedBy(txn types.TxnID, item types.ItemID) bool {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[item]
	if ls == nil {
		return false
	}
	_, ok := ls.holders[txn]
	return ok
}

// HeldItems returns the items txn currently holds, in ascending order.
func (m *Manager) HeldItems(txn types.TxnID) []types.ItemID {
	var out []types.ItemID
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for item, ls := range sh.locks {
			if _, ok := ls.holders[txn]; ok {
				out = append(out, item)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the lock table for debugging.
func (m *Manager) String() string {
	type entry struct {
		mode    Mode
		holders int
	}
	held := make(map[types.ItemID]entry)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for it, ls := range sh.locks {
			if len(ls.holders) > 0 {
				held[it] = entry{mode: ls.mode, holders: len(ls.holders)}
			}
		}
		sh.mu.Unlock()
	}
	items := make([]types.ItemID, 0, len(held))
	for it := range held {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	s := fmt.Sprintf("locks@%s{", m.site)
	for i, it := range items {
		if i > 0 {
			s += " "
		}
		e := held[it]
		s += fmt.Sprintf("%s:%s×%d", it, e.mode, e.holders)
	}
	return s + "}"
}

// grantLocked runs under the shard's mutex.
func (sh *shard) grantLocked(txn types.TxnID, item types.ItemID, mode Mode) {
	ls := sh.locks[item]
	if ls == nil {
		if sh.locks == nil {
			sh.locks = make(map[types.ItemID]*lockState)
		}
		ls = &lockState{holders: make(map[types.TxnID]int)}
		sh.locks[item] = ls
	}
	ls.mode = mode
	ls.holders[txn] = 1
}

// wakeLocked grants queued requests that have become compatible. It runs
// under sh.mu and takes graphMu to clear the woken waiters' edges
// (shard→graph is the one permitted lock order).
func (m *Manager) wakeLocked(sh *shard, item types.ItemID) {
	ls := sh.locks[item]
	if ls == nil {
		return
	}
	for len(ls.queue) > 0 {
		head := ls.queue[0]
		if len(ls.holders) == 0 {
			ls.queue = ls.queue[1:]
			ls.mode = head.mode
			ls.holders[head.txn] = 1
			m.held.Add(1)
			m.noteGrantLocked(ls, head.txn)
			m.clearEdges(head.txn)
			head.grant <- nil
			continue
		}
		if compatible(ls.mode, head.mode) {
			ls.queue = ls.queue[1:]
			ls.holders[head.txn] = 1
			m.held.Add(1)
			m.noteGrantLocked(ls, head.txn)
			m.clearEdges(head.txn)
			head.grant <- nil
			continue
		}
		break
	}
}

func (m *Manager) clearEdges(txn types.TxnID) {
	m.graphMu.Lock()
	m.clearEdgesLocked(txn)
	m.graphMu.Unlock()
}

// addEdgeLocked runs under graphMu.
func (m *Manager) addEdgeLocked(from, to types.TxnID) {
	if from == to {
		return
	}
	set := m.waitsFor[from]
	if set == nil {
		set = make(map[types.TxnID]bool)
		m.waitsFor[from] = set
	}
	set[to] = true
}

// clearEdgesLocked runs under graphMu.
func (m *Manager) clearEdgesLocked(txn types.TxnID) {
	delete(m.waitsFor, txn)
}

// cycleFromLocked reports whether txn can reach itself in the waits-for
// graph; runs under graphMu.
func (m *Manager) cycleFromLocked(start types.TxnID) bool {
	seen := make(map[types.TxnID]bool)
	var stack []types.TxnID
	for t := range m.waitsFor[start] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for next := range m.waitsFor[t] {
			stack = append(stack, next)
		}
	}
	return false
}
