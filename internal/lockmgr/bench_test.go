package lockmgr

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"qcommit/internal/types"
)

func BenchmarkTryAcquireRelease(b *testing.B) {
	m := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := types.TxnID(i)
		if err := m.TryAcquire(txn, "x", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.Release(txn, "x")
	}
}

func BenchmarkReleaseAllManyItems(b *testing.B) {
	items := make([]types.ItemID, 16)
	for i := range items {
		items[i] = types.ItemID(string(rune('a' + i)))
	}
	m := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := types.TxnID(i)
		for _, it := range items {
			_ = m.TryAcquire(txn, it, Exclusive)
		}
		m.ReleaseAll(txn)
	}
}

func BenchmarkSharedContention(b *testing.B) {
	m := New(1)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			txn := types.TxnID(i)
			if err := m.TryAcquire(txn, "hot", Shared); err == nil {
				m.Release(txn, "hot")
			}
			i++
		}
	})
}

// BenchmarkContendedZipf is the sharding benchmark: P goroutines each run a
// short acquire-all/release-all cycle over zipfian-distributed items (a few
// hot items absorb most traffic), in shared-heavy and exclusive-heavy mixes.
// shards=1 is the pre-sharding manager — a single mutex over everything —
// so the sharded/unsharded pairs isolate the win.
func BenchmarkContendedZipf(b *testing.B) {
	const (
		nItems      = 1024
		zipfS       = 1.2
		itemsPerTxn = 4
	)
	items := make([]types.ItemID, nItems)
	for i := range items {
		items[i] = types.ItemID(fmt.Sprintf("item%04d", i))
	}
	mixes := []struct {
		name      string
		exclusive float64 // probability a given item is taken exclusive
	}{
		{"sharedheavy", 0.1},
		{"exclheavy", 0.9},
	}
	for _, shards := range []int{1, DefaultShards} {
		for _, procs := range []int{4, 16} {
			for _, mix := range mixes {
				name := fmt.Sprintf("shards=%d/procs=%d/%s", shards, procs, mix.name)
				b.Run(name, func(b *testing.B) {
					m := NewSharded(1, shards)
					var txnSeq atomic.Uint64
					var seed atomic.Uint64
					b.SetParallelism(procs)
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						rng := rand.New(rand.NewSource(int64(seed.Add(1))))
						zipf := rand.NewZipf(rng, zipfS, 1, nItems-1)
						picked := make(map[types.ItemID]bool, itemsPerTxn)
						for pb.Next() {
							txn := types.TxnID(txnSeq.Add(1))
							clear(picked)
							for len(picked) < itemsPerTxn {
								picked[items[zipf.Uint64()]] = true
							}
							for it := range picked {
								mode := Shared
								if rng.Float64() < mix.exclusive {
									mode = Exclusive
								}
								// Contended acquires fail rather than queue:
								// the benchmark measures lock-table traffic,
								// not wait scheduling.
								_ = m.TryAcquire(txn, it, mode)
							}
							m.ReleaseAll(txn)
						}
					})
				})
			}
		}
	}
}
