package lockmgr

import (
	"testing"

	"qcommit/internal/types"
)

func BenchmarkTryAcquireRelease(b *testing.B) {
	m := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := types.TxnID(i)
		if err := m.TryAcquire(txn, "x", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.Release(txn, "x")
	}
}

func BenchmarkReleaseAllManyItems(b *testing.B) {
	items := make([]types.ItemID, 16)
	for i := range items {
		items[i] = types.ItemID(string(rune('a' + i)))
	}
	m := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := types.TxnID(i)
		for _, it := range items {
			_ = m.TryAcquire(txn, it, Exclusive)
		}
		m.ReleaseAll(txn)
	}
}

func BenchmarkSharedContention(b *testing.B) {
	m := New(1)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			txn := types.TxnID(i)
			if err := m.TryAcquire(txn, "hot", Shared); err == nil {
				m.Release(txn, "hot")
			}
			i++
		}
	})
}
