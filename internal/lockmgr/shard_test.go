package lockmgr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qcommit/internal/types"
)

// twoItemsInDifferentShards returns item names that hash to distinct shards
// of m (the per-process hash seed makes the mapping stable within a run but
// not across runs, so tests compute it rather than assume it).
func twoItemsInDifferentShards(t *testing.T, m *Manager) (types.ItemID, types.ItemID) {
	t.Helper()
	first := types.ItemID("item0")
	fs := m.shardOf(first)
	for i := 1; i < 10000; i++ {
		it := types.ItemID(fmt.Sprintf("item%d", i))
		if m.shardOf(it) != fs {
			return first, it
		}
	}
	t.Fatal("could not find items in different shards")
	return "", ""
}

func TestShardedSpreadsItems(t *testing.T) {
	m := New(1)
	if m.Shards() != DefaultShards {
		t.Fatalf("Shards() = %d, want %d", m.Shards(), DefaultShards)
	}
	a, b := twoItemsInDifferentShards(t, m)
	if m.shardOf(a) == m.shardOf(b) {
		t.Fatal("helper returned same-shard items")
	}
	// Same item always maps to the same shard, on any manager.
	m2 := NewSharded(2, DefaultShards)
	for _, it := range []types.ItemID{a, b, "x", "y"} {
		if m.shardOf(it) != &m.shards[shardIndex(m2, it)] {
			t.Fatalf("item %s maps to different shard indexes on equal-width managers", it)
		}
	}
}

func shardIndex(m *Manager, item types.ItemID) int {
	sh := m.shardOf(item)
	for i := range m.shards {
		if sh == &m.shards[i] {
			return i
		}
	}
	return -1
}

func TestSingleShardManager(t *testing.T) {
	m := NewSharded(1, 1)
	if m.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", m.Shards())
	}
	if err := m.TryAcquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, "x", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("conflict on 1-shard manager: %v", err)
	}
	m.ReleaseAll(1)
	if m.Locked("x") {
		t.Error("still locked")
	}
}

// TestCrossShardDeadlockDetected pins that deadlock detection survives the
// sharding: the two items provably live in different shards, so the cycle
// can only be seen through the global waits-for graph.
func TestCrossShardDeadlockDetected(t *testing.T) {
	m := New(1)
	a, b := twoItemsInDifferentShards(t, m)
	if err := m.TryAcquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- m.Acquire(2, a, Exclusive) }() // 2 waits for 1
	time.Sleep(10 * time.Millisecond)
	// 1 requesting b closes the cycle 1→2→1 across shards.
	if err := m.Acquire(1, b, Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cross-shard cycle: got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(1)
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("survivor woke with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never woke")
	}
}

// TestConcurrentMutualWaitOneDetects drives many racing mutual-wait pairs on
// items in different shards; exactly one side of each pair must get
// ErrDeadlock and the other must eventually acquire.
func TestConcurrentMutualWaitOneDetects(t *testing.T) {
	m := New(1)
	a, b := twoItemsInDifferentShards(t, m)
	for round := 0; round < 50; round++ {
		t1 := types.TxnID(2*round + 1)
		t2 := types.TxnID(2*round + 2)
		if err := m.TryAcquire(t1, a, Exclusive); err != nil {
			t.Fatal(err)
		}
		if err := m.TryAcquire(t2, b, Exclusive); err != nil {
			t.Fatal(err)
		}
		// Each side aborts itself on deadlock, which unblocks its peer. Both
		// seeing deadlock is impossible (the graph check is serialized under
		// graphMu); neither seeing it would hang the peer's Acquire forever,
		// caught by the deadline below.
		acquire := func(txn types.TxnID, item types.ItemID, ch chan<- error) {
			err := m.Acquire(txn, item, Exclusive)
			if errors.Is(err, ErrDeadlock) {
				m.ReleaseAll(txn)
			}
			ch <- err
		}
		ch1 := make(chan error, 1)
		ch2 := make(chan error, 1)
		go acquire(t1, b, ch1)
		go acquire(t2, a, ch2)
		var err1, err2 error
		deadline := time.After(5 * time.Second)
		for got := 0; got < 2; {
			select {
			case err1 = <-ch1:
				got++
			case err2 = <-ch2:
				got++
			case <-deadline:
				t.Fatal("mutual wait never resolved: deadlock missed")
			}
		}
		d1, d2 := errors.Is(err1, ErrDeadlock), errors.Is(err2, ErrDeadlock)
		if d1 == d2 {
			t.Fatalf("round %d: deadlock outcomes %v/%v, want exactly one", round, err1, err2)
		}
		m.ReleaseAll(t1)
		m.ReleaseAll(t2)
	}
}
