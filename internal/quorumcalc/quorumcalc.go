// Package quorumcalc is the analytic counterpart of the termination
// automata: for each protocol family it computes, by pure quorum arithmetic,
// the outcome a partition group's termination attempt reaches — no
// discrete-event engine, no messages, no WAL.
//
// The availability Monte Carlo (package avail) replays an "interrupted
// commit" scenario under a static partition: the commit coordinator has
// crashed, every other site stays up, and intra-group message delivery is
// reliable. Under that model the event-driven termination protocols are
// fully determined by each group's initial state tally:
//
//   - phase 1 always collects the local state of every up participant in the
//     group (reachable sites answer within the 2T window, nothing is lost);
//   - a VerdictTryCommit round moves every waiting (W) participant to PC and
//     collects their PC-ACKs, so the confirmation set equals exactly the
//     site set whose votes satisfied the try-commit condition — the quorum
//     is always confirmed, and symmetrically for VerdictTryAbort;
//   - a VerdictBlock round changes no state, so re-entering the election
//     yields the same verdict until the round budget runs out.
//
// Each Decider below therefore folds the poll → classify → confirm →
// distribute ladder of Figs. 5 and 8 into a single decision over the tally,
// mirroring rule for rule the corresponding threephase.Rules implementation
// (twopc.Terminator, threepc.Rules, skeenq.Rules, core.TP1Rules,
// core.TP2Rules). The discrete-event engine remains the oracle — package
// avail's differential tests assert count-for-count equality between the two
// — and stays required whenever the model above does not hold: lossy or
// duplicating networks, mid-round crashes or heals, the buggy
// buffer-crossing participant of Example 3, or whenever message ladders and
// violation traces are wanted.
package quorumcalc

import (
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// numStates is the size of the per-state tables (q, W, PC, PA, C, A).
const numStates = int(types.StateAborted) + 1

// Tally is the termination-relevant summary of one partition group: which
// up participants occupy each local protocol state. It is the analytic
// analogue of threephase.StateTally, shaped for reuse across trials (Reset
// keeps the per-state site slices).
type Tally struct {
	sites [numStates][]types.SiteID
}

// Reset clears the tally for a new group, retaining allocated capacity.
func (t *Tally) Reset() {
	for i := range t.sites {
		t.sites[i] = t.sites[i][:0]
	}
}

// Add records one participant in the given local state.
func (t *Tally) Add(site types.SiteID, st types.State) {
	t.sites[st] = append(t.sites[st], site)
}

// Count returns the number of participants tallied in the given state.
func (t *Tally) Count(st types.State) int { return len(t.sites[st]) }

// Sites returns the participants tallied in the given state. The slice is
// owned by the tally and valid until the next Reset.
func (t *Tally) Sites(st types.State) []types.SiteID { return t.sites[st] }

// Empty reports whether no participant was tallied at all.
func (t *Tally) Empty() bool {
	for i := range t.sites {
		if len(t.sites[i]) > 0 {
			return false
		}
	}
	return true
}

// uncertain returns the number of participants holding locks while awaiting
// a decision (W, PC or PA) — the states whose presence makes an undecided
// group report "blocked".
func (t *Tally) uncertain() int {
	return t.Count(types.StateWait) + t.Count(types.StatePC) + t.Count(types.StatePA)
}

// Decider computes the outcome one partition group's termination attempt
// reaches, given the group's state tally. The assignment carries the replica
// vote configuration for deciders that count replica votes (TP1, TP2);
// site-vote and state-only deciders ignore it.
//
// The returned outcome is what engine.Cluster.GroupOutcome reports after the
// simulation quiesces: OutcomeCommitted/OutcomeAborted when the group
// terminates, OutcomeBlocked when participants keep holding locks, and
// OutcomeUnknown when no tallied participant ever voted (nothing to
// terminate, nothing locked).
type Decider func(a *voting.Assignment, t *Tally) types.Outcome

// passiveOutcome is the group outcome when no site can initiate termination:
// states are frozen, so the group reports whatever its terminal sites
// already decided, blocked if undecided participants hold locks, and unknown
// when only unvoted (q) participants — or none at all — are present.
func passiveOutcome(t *Tally) types.Outcome {
	switch {
	case t.Count(types.StateCommitted) > 0:
		return types.OutcomeCommitted
	case t.Count(types.StateAborted) > 0:
		return types.OutcomeAborted
	case t.uncertain() > 0:
		return types.OutcomeBlocked
	default:
		return types.OutcomeUnknown
	}
}

// TwoPC mirrors 2PC's cooperative termination protocol (twopc.Terminator):
// poll every reachable participant for the decision; adopt it if anyone
// knows it; abort if anyone never voted (the coordinator cannot have
// committed); otherwise every reachable site is uncertain and the group
// blocks. Only uncertain participants in W arm the patience timers that
// invoke termination — a group whose undecided sites all sit in PC (2PC
// participants reconstructed mid-3PC-style cut) has no initiator and blocks
// passively.
func TwoPC() Decider {
	return func(_ *voting.Assignment, t *Tally) types.Outcome {
		if t.Count(types.StateWait) == 0 {
			return passiveOutcome(t)
		}
		switch {
		case t.Count(types.StateCommitted) > 0:
			return types.OutcomeCommitted
		case t.Count(types.StateAborted) > 0:
			return types.OutcomeAborted
		case t.Count(types.StateInitial) > 0:
			return types.OutcomeAborted
		default:
			return types.OutcomeBlocked
		}
	}
}

// threePhase wraps a three-phase-style decision: any participant in W, PC or
// PA arms a patience timer and eventually elects a termination coordinator;
// without one the group stays passive.
func threePhase(decide func(a *voting.Assignment, t *Tally) types.Outcome) Decider {
	return func(a *voting.Assignment, t *Tally) types.Outcome {
		if t.uncertain() == 0 {
			return passiveOutcome(t)
		}
		return decide(a, t)
	}
}

// ThreePC mirrors 3PC's site-failure termination rule (threepc.Rules): "if
// there exists a site in PC state or commit state, then the transaction
// should be committed; else the transaction should be aborted". The
// try-commit round always succeeds because 3PC's confirmation is
// unconditional (silent sites are presumed crashed, not partitioned away) —
// which is exactly why 3PC terminates every partition and violates atomicity
// across them (Example 2).
func ThreePC() Decider {
	return threePhase(func(_ *voting.Assignment, t *Tally) types.Outcome {
		switch {
		case t.Count(types.StateCommitted) > 0:
			return types.OutcomeCommitted
		case t.Count(types.StateAborted) > 0:
			return types.OutcomeAborted
		case t.Count(types.StatePC) > 0:
			return types.OutcomeCommitted
		default:
			return types.OutcomeAborted
		}
	})
}

// Skeen mirrors Skeen's quorum termination rules (skeenq.Rules) with the
// given per-site vote weights and commit/abort quorums Vc, Va. Sites absent
// from votes carry zero weight.
func Skeen(votes map[types.SiteID]int, vc, va int) Decider {
	weigh := func(sites []types.SiteID) int {
		total := 0
		for _, s := range sites {
			total += votes[s]
		}
		return total
	}
	return skeenRules(weigh, vc, va)
}

// SkeenUniform is Skeen with one vote per site (the configuration
// avail.StandardBuilders uses), avoiding the per-trial vote map.
func SkeenUniform(vc, va int) Decider {
	return skeenRules(func(sites []types.SiteID) int { return len(sites) }, vc, va)
}

// skeenRules folds skeenq.Rules.Decide plus its always-confirmed try rounds.
// At the try-commit branch the responders not in PA are exactly W∪PC (any
// q, C or A responder was caught by an earlier branch), and every W site
// acknowledges PREPARE-TO-COMMIT, so the confirmation set equals the site
// set the branch condition counted; symmetrically for try-abort with W∪PA.
func skeenRules(weigh func([]types.SiteID) int, vc, va int) Decider {
	return threePhase(func(_ *voting.Assignment, t *Tally) types.Outcome {
		vPC := weigh(t.Sites(types.StatePC))
		vW := weigh(t.Sites(types.StateWait))
		vPA := weigh(t.Sites(types.StatePA))
		switch {
		case t.Count(types.StateCommitted) > 0 || vPC >= vc:
			return types.OutcomeCommitted
		case t.Count(types.StateAborted) > 0 || t.Count(types.StateInitial) > 0 || vPA >= va:
			return types.OutcomeAborted
		case t.Count(types.StatePC) > 0 && vPC+vW >= vc:
			return types.OutcomeCommitted // try-commit, always confirmed
		case vW+vPA >= va:
			return types.OutcomeAborted // try-abort, always confirmed
		default:
			return types.OutcomeBlocked
		}
	})
}

// itemVotes sums, for one item, the replica votes held by the sites of the
// given tally states.
func itemVotes(a *voting.Assignment, x types.ItemID, t *Tally, states ...types.State) int {
	total := 0
	for _, st := range states {
		for _, s := range t.Sites(st) {
			total += a.VotesAt(s, x)
		}
	}
	return total
}

// writeQuorumEvery reports whether the sites in the given states jointly
// hold ≥ w(x) replica votes for every written item.
func writeQuorumEvery(a *voting.Assignment, items []types.ItemID, t *Tally, states ...types.State) bool {
	if len(items) == 0 {
		return false
	}
	for _, x := range items {
		if !a.WriteQuorumMet(x, itemVotes(a, x, t, states...)) {
			return false
		}
	}
	return true
}

// readQuorumSome reports whether the sites in the given states jointly hold
// ≥ r(x) replica votes for at least one written item.
func readQuorumSome(a *voting.Assignment, items []types.ItemID, t *Tally, states ...types.State) bool {
	for _, x := range items {
		if a.ReadQuorumMet(x, itemVotes(a, x, t, states...)) {
			return true
		}
	}
	return false
}

// TP1 mirrors the paper's Termination Protocol 1 (core.TP1Rules, Fig. 5)
// over the transaction's written items: commit needs w(x) replica votes for
// every x ∈ W(TR), abort needs r(x) votes for some x. As in skeenRules, the
// try branches count exactly the sites that then confirm the quorum, so
// they fold into immediate decisions.
func TP1(items []types.ItemID) Decider {
	return threePhase(func(a *voting.Assignment, t *Tally) types.Outcome {
		switch {
		case t.Count(types.StateCommitted) > 0 ||
			writeQuorumEvery(a, items, t, types.StatePC):
			return types.OutcomeCommitted
		case t.Count(types.StateAborted) > 0 || t.Count(types.StateInitial) > 0 ||
			readQuorumSome(a, items, t, types.StatePA):
			return types.OutcomeAborted
		case t.Count(types.StatePC) > 0 &&
			writeQuorumEvery(a, items, t, types.StateWait, types.StatePC):
			return types.OutcomeCommitted // try-commit, always confirmed
		case readQuorumSome(a, items, t, types.StateWait, types.StatePA):
			return types.OutcomeAborted // try-abort, always confirmed
		default:
			return types.OutcomeBlocked
		}
	})
}

// TP2 mirrors Termination Protocol 2 (core.TP2Rules, Fig. 8): TP1 with the
// r/w roles swapped — commit needs r(x) votes for some x, abort needs w(x)
// votes for every x.
func TP2(items []types.ItemID) Decider {
	return threePhase(func(a *voting.Assignment, t *Tally) types.Outcome {
		switch {
		case t.Count(types.StateCommitted) > 0 ||
			readQuorumSome(a, items, t, types.StatePC):
			return types.OutcomeCommitted
		case t.Count(types.StateAborted) > 0 || t.Count(types.StateInitial) > 0 ||
			writeQuorumEvery(a, items, t, types.StatePA):
			return types.OutcomeAborted
		case t.Count(types.StatePC) > 0 &&
			readQuorumSome(a, items, t, types.StateWait, types.StatePC):
			return types.OutcomeCommitted // try-commit, always confirmed
		case writeQuorumEvery(a, items, t, types.StateWait, types.StatePA):
			return types.OutcomeAborted // try-abort, always confirmed
		default:
			return types.OutcomeBlocked
		}
	})
}
