package quorumcalc

import (
	"testing"

	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// exampleAssignment mirrors the paper's Example 1 shape: one item x with
// four single-vote copies, r(x)=2, w(x)=3.
func exampleAssignment(t *testing.T) *voting.Assignment {
	t.Helper()
	a, err := voting.NewAssignment(voting.Uniform("x", 2, 3, 1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func tallyOf(states map[types.SiteID]types.State) *Tally {
	t := &Tally{}
	for s, st := range states {
		t.Add(s, st)
	}
	return t
}

func TestTallyReuse(t *testing.T) {
	ta := tallyOf(map[types.SiteID]types.State{1: types.StateWait, 2: types.StatePC})
	if ta.Count(types.StateWait) != 1 || ta.Count(types.StatePC) != 1 || ta.Empty() {
		t.Fatalf("unexpected tally: %+v", ta)
	}
	ta.Reset()
	if !ta.Empty() || ta.Count(types.StateWait) != 0 {
		t.Fatal("Reset did not clear the tally")
	}
	ta.Add(3, types.StateInitial)
	if ta.Count(types.StateInitial) != 1 {
		t.Fatal("Add after Reset lost the site")
	}
}

func TestTwoPC(t *testing.T) {
	d := TwoPC()
	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   types.Outcome
	}{
		{"all uncertain blocks", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait}, types.OutcomeBlocked},
		{"unvoted site enables abort", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateInitial}, types.OutcomeAborted},
		{"known commit adopted", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateCommitted}, types.OutcomeCommitted},
		{"known abort adopted", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateAborted}, types.OutcomeAborted},
		// 2PC participants only watch for coordinator silence in W; a group
		// cut entirely in PC has no initiator and blocks passively.
		{"PC-only group has no initiator", map[types.SiteID]types.State{2: types.StatePC, 3: types.StatePC}, types.OutcomeBlocked},
		{"q-only group never terminates", map[types.SiteID]types.State{2: types.StateInitial}, types.OutcomeUnknown},
		{"empty group", nil, types.OutcomeUnknown},
	}
	for _, tc := range cases {
		if got := d(nil, tallyOf(tc.states)); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestThreePC(t *testing.T) {
	d := ThreePC()
	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   types.Outcome
	}{
		// "If there exists a site in PC state or commit state, commit; else
		// abort" — terminates every partition, never blocks.
		{"PC commits", map[types.SiteID]types.State{2: types.StateWait, 3: types.StatePC}, types.OutcomeCommitted},
		{"W-only aborts", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait}, types.OutcomeAborted},
		{"q aborts", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateInitial}, types.OutcomeAborted},
		{"terminal commit wins", map[types.SiteID]types.State{2: types.StateCommitted, 3: types.StateWait}, types.OutcomeCommitted},
		{"no initiator", map[types.SiteID]types.State{2: types.StateInitial}, types.OutcomeUnknown},
	}
	for _, tc := range cases {
		if got := d(nil, tallyOf(tc.states)); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSkeenUniform(t *testing.T) {
	// Four single-vote participants: Vc = 3, Va = 2.
	d := SkeenUniform(3, 2)
	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   types.Outcome
	}{
		{"PC quorum commits", map[types.SiteID]types.State{1: types.StatePC, 2: types.StatePC, 3: types.StatePC}, types.OutcomeCommitted},
		{"try-commit via W", map[types.SiteID]types.State{1: types.StatePC, 2: types.StateWait, 3: types.StateWait}, types.OutcomeCommitted},
		{"try-abort via W", map[types.SiteID]types.State{1: types.StateWait, 2: types.StateWait}, types.OutcomeAborted},
		{"q aborts immediately", map[types.SiteID]types.State{1: types.StateWait, 2: types.StateInitial}, types.OutcomeAborted},
		// The Example 1 failure: a small partition with a PC site has
		// neither quorum — Skeen's protocol blocks it.
		{"PC minority blocks", map[types.SiteID]types.State{1: types.StatePC}, types.OutcomeBlocked},
		{"lone W blocks", map[types.SiteID]types.State{1: types.StateWait}, types.OutcomeBlocked},
	}
	for _, tc := range cases {
		if got := d(nil, tallyOf(tc.states)); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSkeenWeighted(t *testing.T) {
	// Site 1 carries 3 votes, sites 2-3 one each: Vc = 3, Va = 3.
	d := Skeen(map[types.SiteID]int{1: 3, 2: 1, 3: 1}, 3, 3)
	if got := d(nil, tallyOf(map[types.SiteID]types.State{1: types.StatePC})); got != types.OutcomeCommitted {
		t.Errorf("heavy PC site: got %v, want committed", got)
	}
	if got := d(nil, tallyOf(map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait})); got != types.OutcomeBlocked {
		t.Errorf("light W sites: got %v, want blocked", got)
	}
}

func TestTP1(t *testing.T) {
	a := exampleAssignment(t)
	d := TP1([]types.ItemID{"x"})
	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   types.Outcome
	}{
		// Sites 2,3,4 hold 3 = w(x) votes: with a PC site present the
		// try-commit branch reaches the write quorum — the availability gain
		// over Skeen's site-vote quorums (Example 4).
		{"w(x) votes with PC commit", map[types.SiteID]types.State{2: types.StatePC, 3: types.StateWait, 4: types.StateWait}, types.OutcomeCommitted},
		{"w(x) votes all W abort", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait, 4: types.StateWait}, types.OutcomeAborted},
		{"r(x) votes abort", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait}, types.OutcomeAborted},
		{"q aborts immediately", map[types.SiteID]types.State{2: types.StatePC, 3: types.StateInitial}, types.OutcomeAborted},
		// One vote reaches neither w(x)=3 (commit) nor r(x)=2 (abort).
		{"single vote blocks", map[types.SiteID]types.State{2: types.StatePC}, types.OutcomeBlocked},
		{"no initiator", map[types.SiteID]types.State{2: types.StateInitial}, types.OutcomeUnknown},
	}
	for _, tc := range cases {
		if got := d(a, tallyOf(tc.states)); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTP2(t *testing.T) {
	a := exampleAssignment(t)
	d := TP2([]types.ItemID{"x"})
	cases := []struct {
		name   string
		states map[types.SiteID]types.State
		want   types.Outcome
	}{
		// TP2 swaps the roles: commit needs only r(x)=2 votes (with a PC
		// site), abort needs w(x)=3.
		{"r(x) votes with PC commit", map[types.SiteID]types.State{2: types.StatePC, 3: types.StateWait}, types.OutcomeCommitted},
		{"w(x) votes all W abort", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait, 4: types.StateWait}, types.OutcomeAborted},
		{"r(x) votes all W block", map[types.SiteID]types.State{2: types.StateWait, 3: types.StateWait}, types.OutcomeBlocked},
		{"single PC blocks", map[types.SiteID]types.State{2: types.StatePC}, types.OutcomeBlocked},
		{"q aborts immediately", map[types.SiteID]types.State{2: types.StatePC, 3: types.StateInitial}, types.OutcomeAborted},
	}
	for _, tc := range cases {
		if got := d(a, tallyOf(tc.states)); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTP1VsSkeenExample1 pins the paper's headline comparison: the same
// partition group (w(x) replica votes present, one site in PC) commits under
// TP1's replica-vote quorums but blocks under Skeen's site-vote quorums when
// the site majority lies elsewhere.
func TestTP1VsSkeenExample1(t *testing.T) {
	a := exampleAssignment(t)
	// Five participants overall → Vc = 3, Va = 3 site votes; the group holds
	// only sites 2,3,4 (3 of 5 sites, but suppose Vc were 4: use 6
	// participants → Vc = 4, Va = 3 to make Skeen block).
	skeen := SkeenUniform(4, 3)
	tp1 := TP1([]types.ItemID{"x"})
	group := map[types.SiteID]types.State{2: types.StatePC, 3: types.StateWait, 4: types.StateWait}
	if got := tp1(a, tallyOf(group)); got != types.OutcomeCommitted {
		t.Errorf("TP1: got %v, want committed", got)
	}
	if got := skeen(a, tallyOf(group)); got != types.OutcomeBlocked {
		t.Errorf("Skeen: got %v, want blocked", got)
	}
}
