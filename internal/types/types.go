// Package types defines the identifiers, protocol states, votes and
// decisions shared by every subsystem in the repository.
//
// The vocabulary follows Huang & Li (ICDE 1988): a transaction moves each
// participating site through the local states q (initial), W (wait),
// PC (prepare-to-commit), PA (prepare-to-abort), C (commit) and A (abort).
// PA and the rule that PC and PA never transition into each other are the
// paper's additions to Skeen's three-phase commit vocabulary.
package types

import "fmt"

// SiteID identifies a database site. Sites are numbered from 1, matching the
// paper's examples (site1 ... site8).
type SiteID int32

// String implements fmt.Stringer.
func (s SiteID) String() string { return fmt.Sprintf("site%d", int32(s)) }

// TxnID identifies a distributed transaction.
type TxnID uint64

// String implements fmt.Stringer.
func (t TxnID) String() string { return fmt.Sprintf("TR%d", uint64(t)) }

// ItemID names a logical data item. A data item has one or more physical
// copies placed at distinct sites; see package voting for placements.
type ItemID string

// State is the local state of a participant for one transaction.
type State uint8

// Local transaction states. The committable states are StatePC and
// StateCommitted: a site occupies a committable state only if all
// participants voted yes.
const (
	// StateInitial is q: the site has not voted yet.
	StateInitial State = iota
	// StateWait is W: the site voted yes and waits for the outcome.
	StateWait
	// StatePC is the prepare-to-commit buffer state of 3PC.
	StatePC
	// StatePA is the prepare-to-abort buffer state introduced by the paper.
	StatePA
	// StateCommitted is C: the transaction is irrevocably committed here.
	StateCommitted
	// StateAborted is A: the transaction is irrevocably aborted here.
	StateAborted
)

var stateNames = [...]string{"q", "W", "PC", "PA", "C", "A"}

// String implements fmt.Stringer using the paper's single-letter names.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Terminal reports whether the state is irrevocable (C or A).
func (s State) Terminal() bool { return s == StateCommitted || s == StateAborted }

// Committable reports whether occupying this state implies every participant
// voted yes (PC or C).
func (s State) Committable() bool { return s == StatePC || s == StateCommitted }

// Valid reports whether s is one of the six defined states.
func (s State) Valid() bool { return s <= StateAborted }

// Vote is a participant's response to VOTE-REQ.
type Vote uint8

// Vote values.
const (
	VoteYes Vote = iota
	VoteNo
)

// String implements fmt.Stringer.
func (v Vote) String() string {
	if v == VoteYes {
		return "yes"
	}
	return "no"
}

// Decision is the global outcome of a transaction.
type Decision uint8

// Decision values. DecisionNone means "not yet decided"; a termination
// protocol may additionally *block*, which is represented by OutcomeBlocked
// at the harness level, not as a Decision.
const (
	DecisionNone Decision = iota
	DecisionCommit
	DecisionAbort
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return "none"
	}
}

// StateAfter returns the terminal state a decision drives a participant to.
func (d Decision) StateAfter() State {
	switch d {
	case DecisionCommit:
		return StateCommitted
	case DecisionAbort:
		return StateAborted
	default:
		return StateInitial
	}
}

// Outcome classifies what a partition's termination attempt achieved for a
// transaction: committed, aborted, or blocked awaiting recovery.
type Outcome uint8

// Outcome values.
const (
	OutcomeUnknown Outcome = iota
	OutcomeCommitted
	OutcomeAborted
	OutcomeBlocked
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	case OutcomeBlocked:
		return "blocked"
	default:
		return "unknown"
	}
}

// StateEquivalent maps a terminal outcome to the corresponding local state
// (C or A); non-terminal outcomes map to the initial state.
func (o Outcome) StateEquivalent() State {
	switch o {
	case OutcomeCommitted:
		return StateCommitted
	case OutcomeAborted:
		return StateAborted
	default:
		return StateInitial
	}
}

// OutcomeOf converts a decision into an outcome.
func OutcomeOf(d Decision) Outcome {
	switch d {
	case DecisionCommit:
		return OutcomeCommitted
	case DecisionAbort:
		return OutcomeAborted
	default:
		return OutcomeUnknown
	}
}

// Update is a single write in a transaction's writeset: item <- Value.
type Update struct {
	Item  ItemID
	Value int64
}

// Writeset is the ordered list of updates of a transaction. W(TR) in the
// paper's notation is the set of item IDs in the writeset.
type Writeset []Update

// Items returns the distinct item IDs in the writeset, preserving order.
func (w Writeset) Items() []ItemID {
	seen := make(map[ItemID]bool, len(w))
	items := make([]ItemID, 0, len(w))
	for _, u := range w {
		if !seen[u.Item] {
			seen[u.Item] = true
			items = append(items, u.Item)
		}
	}
	return items
}

// Contains reports whether the writeset writes item x.
func (w Writeset) Contains(x ItemID) bool {
	for _, u := range w {
		if u.Item == x {
			return true
		}
	}
	return false
}

// ValueOf returns the last value written to x and whether x is written.
func (w Writeset) ValueOf(x ItemID) (int64, bool) {
	var v int64
	found := false
	for _, u := range w {
		if u.Item == x {
			v, found = u.Value, true
		}
	}
	return v, found
}

// Clone returns a deep copy of the writeset.
func (w Writeset) Clone() Writeset {
	out := make(Writeset, len(w))
	copy(out, w)
	return out
}
