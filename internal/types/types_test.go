package types

import (
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		StateInitial:   "q",
		StateWait:      "W",
		StatePC:        "PC",
		StatePA:        "PA",
		StateCommitted: "C",
		StateAborted:   "A",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
	if got := State(99).String(); got != "State(99)" {
		t.Errorf("unknown state string = %q", got)
	}
}

func TestStateClassification(t *testing.T) {
	if !StateCommitted.Terminal() || !StateAborted.Terminal() {
		t.Error("C and A must be terminal")
	}
	for _, st := range []State{StateInitial, StateWait, StatePC, StatePA} {
		if st.Terminal() {
			t.Errorf("%s must not be terminal", st)
		}
	}
	// A site occupies a committable state only if all participants voted
	// yes: exactly PC and C.
	if !StatePC.Committable() || !StateCommitted.Committable() {
		t.Error("PC and C must be committable")
	}
	for _, st := range []State{StateInitial, StateWait, StatePA, StateAborted} {
		if st.Committable() {
			t.Errorf("%s must not be committable", st)
		}
	}
	for st := StateInitial; st <= StateAborted; st++ {
		if !st.Valid() {
			t.Errorf("%s should be valid", st)
		}
	}
	if State(6).Valid() {
		t.Error("State(6) should be invalid")
	}
}

func TestDecisionAndOutcome(t *testing.T) {
	if DecisionCommit.StateAfter() != StateCommitted || DecisionAbort.StateAfter() != StateAborted {
		t.Error("StateAfter mapping wrong")
	}
	if DecisionNone.StateAfter() != StateInitial {
		t.Error("DecisionNone.StateAfter() should be initial")
	}
	if OutcomeOf(DecisionCommit) != OutcomeCommitted || OutcomeOf(DecisionAbort) != OutcomeAborted {
		t.Error("OutcomeOf mapping wrong")
	}
	if OutcomeOf(DecisionNone) != OutcomeUnknown {
		t.Error("OutcomeOf(none) should be unknown")
	}
	if OutcomeCommitted.StateEquivalent() != StateCommitted ||
		OutcomeAborted.StateEquivalent() != StateAborted ||
		OutcomeBlocked.StateEquivalent() != StateInitial {
		t.Error("StateEquivalent mapping wrong")
	}
}

func TestStringers(t *testing.T) {
	if SiteID(3).String() != "site3" {
		t.Errorf("SiteID string = %q", SiteID(3).String())
	}
	if TxnID(7).String() != "TR7" {
		t.Errorf("TxnID string = %q", TxnID(7).String())
	}
	if VoteYes.String() != "yes" || VoteNo.String() != "no" {
		t.Error("vote strings wrong")
	}
	if DecisionCommit.String() != "commit" || DecisionAbort.String() != "abort" || DecisionNone.String() != "none" {
		t.Error("decision strings wrong")
	}
	if OutcomeBlocked.String() != "blocked" || OutcomeUnknown.String() != "unknown" {
		t.Error("outcome strings wrong")
	}
}

func TestWritesetItems(t *testing.T) {
	ws := Writeset{
		{Item: "x", Value: 1},
		{Item: "y", Value: 2},
		{Item: "x", Value: 3}, // rewrite of x
	}
	items := ws.Items()
	if len(items) != 2 || items[0] != "x" || items[1] != "y" {
		t.Errorf("Items() = %v, want [x y] (dedup, order-preserving)", items)
	}
	if !ws.Contains("x") || !ws.Contains("y") || ws.Contains("z") {
		t.Error("Contains wrong")
	}
	v, ok := ws.ValueOf("x")
	if !ok || v != 3 {
		t.Errorf("ValueOf(x) = %d,%v, want 3 (last write wins)", v, ok)
	}
	if _, ok := ws.ValueOf("z"); ok {
		t.Error("ValueOf(z) should report absent")
	}
}

func TestWritesetCloneIndependence(t *testing.T) {
	ws := Writeset{{Item: "x", Value: 1}}
	cl := ws.Clone()
	cl[0].Value = 99
	if ws[0].Value != 1 {
		t.Error("Clone must not share backing storage")
	}
}

func TestWritesetItemsProperty(t *testing.T) {
	// Property: Items() has no duplicates and covers exactly the item IDs
	// present in the writeset.
	f := func(names []uint8, values []int64) bool {
		var ws Writeset
		for i, n := range names {
			v := int64(i)
			if i < len(values) {
				v = values[i]
			}
			ws = append(ws, Update{Item: ItemID(rune('a' + n%16)), Value: v})
		}
		items := ws.Items()
		seen := make(map[ItemID]bool)
		for _, it := range items {
			if seen[it] {
				return false // duplicate
			}
			seen[it] = true
			if !ws.Contains(it) {
				return false
			}
		}
		for _, u := range ws {
			if !seen[u.Item] {
				return false // missing
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
