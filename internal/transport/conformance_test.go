package transport_test

// Conformance suite: every transport.Transport implementation must route,
// filter and shed identically — the protocols' correctness arguments lean on
// these semantics, not on any one fabric's internals. Each test runs against
// the inproc fabric and a tcp.Fabric over real loopback sockets.

import (
	"sync"
	"testing"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/transport"
	"qcommit/internal/transport/inproc"
	"qcommit/internal/transport/tcp"
	"qcommit/internal/types"
)

var sites = []types.SiteID{1, 2, 3}

// fabrics enumerates the implementations under test.
func fabrics(t *testing.T) map[string]transport.Transport {
	tcpFab, err := tcp.NewFabric(sites, tcp.Options{})
	if err != nil {
		t.Fatalf("tcp fabric: %v", err)
	}
	return map[string]transport.Transport{
		"inproc": inproc.New(inproc.Options{MaxDelay: time.Millisecond, Seed: 1}),
		"tcp":    tcpFab,
	}
}

// collector buffers deliveries and wakes waiters.
type collector struct {
	mu   sync.Mutex
	got  []msg.Envelope
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handle(env msg.Envelope) {
	c.mu.Lock()
	c.got = append(c.got, env)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitN blocks until n envelopes arrived or the deadline passed, returning a
// snapshot.
func (c *collector) waitN(n int, d time.Duration) []msg.Envelope {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < n && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	return append([]msg.Envelope(nil), c.got...)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func send(tr transport.Transport, from, to types.SiteID, txn types.TxnID) {
	tr.Send(msg.Envelope{From: from, To: to, Msg: msg.Commit{Txn: txn}})
}

func TestConformanceDelivery(t *testing.T) {
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			c := newCollector()
			tr.Bind(c.handle)
			send(tr, 1, 2, 7)
			got := c.waitN(1, 5*time.Second)
			if len(got) != 1 {
				t.Fatalf("delivered %d envelopes, want 1", len(got))
			}
			if got[0].From != 1 || got[0].To != 2 {
				t.Errorf("routing = %v->%v, want 1->2", got[0].From, got[0].To)
			}
			if m, ok := got[0].Msg.(msg.Commit); !ok || m.Txn != 7 {
				t.Errorf("payload = %#v, want Commit{Txn:7}", got[0].Msg)
			}
		})
	}
}

func TestConformancePartitionCutsAndHealRestores(t *testing.T) {
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			c := newCollector()
			tr.Bind(c.handle)
			tr.Partition([]types.SiteID{1}, []types.SiteID{2, 3})
			if tr.Connected(1, 2) {
				t.Error("Connected(1,2) across a partition")
			}
			if !tr.Connected(2, 3) {
				t.Error("!Connected(2,3) within a group")
			}
			send(tr, 1, 2, 1) // must be cut
			send(tr, 3, 2, 2) // same group: must arrive
			got := c.waitN(1, 5*time.Second)
			if len(got) != 1 || msg.TxnOf(got[0].Msg) != 2 {
				t.Fatalf("partitioned delivery = %v, want only txn 2", got)
			}
			tr.Heal()
			if !tr.Connected(1, 2) {
				t.Error("!Connected(1,2) after Heal")
			}
			send(tr, 1, 2, 3)
			got = c.waitN(2, 5*time.Second)
			if len(got) != 2 || msg.TxnOf(got[1].Msg) != 3 {
				t.Fatalf("post-heal delivery = %v, want txn 3 appended", got)
			}
		})
	}
}

func TestConformanceCrashShedsBothDirections(t *testing.T) {
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			c := newCollector()
			tr.Bind(c.handle)
			tr.Crash(2)
			if !tr.Down(2) || tr.Down(1) {
				t.Errorf("Down view = {1:%v 2:%v}, want {false true}", tr.Down(1), tr.Down(2))
			}
			send(tr, 1, 2, 1) // to a crashed site
			send(tr, 2, 1, 2) // from a crashed site
			send(tr, 3, 1, 3) // bystanders still talk
			got := c.waitN(1, 5*time.Second)
			if len(got) != 1 || msg.TxnOf(got[0].Msg) != 3 {
				t.Fatalf("post-crash delivery = %v, want only txn 3", got)
			}
			tr.Restart(2)
			send(tr, 1, 2, 4)
			got = c.waitN(2, 5*time.Second)
			if len(got) != 2 || msg.TxnOf(got[1].Msg) != 4 {
				t.Fatalf("post-restart delivery = %v, want txn 4 appended", got)
			}
		})
	}
}

// localOnly is an internal control message (KindInvalid): no transport may
// ever deliver one.
type localOnly struct{}

func (localOnly) Kind() msg.Kind { return msg.KindInvalid }

func TestConformanceControlMessagesStayLocal(t *testing.T) {
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			c := newCollector()
			tr.Bind(c.handle)
			tr.Send(msg.Envelope{From: 1, To: 2, Msg: localOnly{}})
			send(tr, 1, 2, 9) // marker: anything before it would have arrived
			got := c.waitN(1, 5*time.Second)
			if len(got) != 1 || msg.TxnOf(got[0].Msg) != 9 {
				t.Fatalf("delivered %v, want only the txn-9 marker", got)
			}
		})
	}
}

func TestConformanceConcurrentSend(t *testing.T) {
	const senders, per = 8, 50
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			c := newCollector()
			tr.Bind(c.handle)
			var wg sync.WaitGroup
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					from := sites[g%len(sites)]
					to := sites[(g+1)%len(sites)]
					for i := 0; i < per; i++ {
						send(tr, from, to, types.TxnID(g*per+i+1))
					}
				}(g)
			}
			wg.Wait()
			got := c.waitN(senders*per, 10*time.Second)
			if len(got) != senders*per {
				t.Fatalf("delivered %d envelopes, want %d", len(got), senders*per)
			}
		})
	}
}

func TestConformanceCloseShedsSends(t *testing.T) {
	for name, tr := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			c := newCollector()
			tr.Bind(c.handle)
			if err := tr.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			send(tr, 1, 2, 1)
			time.Sleep(50 * time.Millisecond)
			if n := c.count(); n != 0 {
				t.Errorf("%d envelopes delivered after Close", n)
			}
		})
	}
}

// TestTCPWriteCoalescing pins the writev batching contract: every frame
// delivered was counted, each batch carried at least one frame (batches <=
// frames), and nothing was shed under an idle queue.
func TestTCPWriteCoalescing(t *testing.T) {
	fab, err := tcp.NewFabric(sites, tcp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	c := newCollector()
	fab.Bind(c.handle)
	const burst = 200
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			send(fab, 1, 2, types.TxnID(i+1))
		}(i)
	}
	wg.Wait()
	if got := c.waitN(burst, 5*time.Second); len(got) != burst {
		t.Fatalf("delivered %d of %d frames", len(got), burst)
	}
	s := fab.WriteStats()
	if s.Frames != burst {
		t.Errorf("stats count %d frames, want %d", s.Frames, burst)
	}
	if s.Batches == 0 || s.Batches > s.Frames {
		t.Errorf("batches = %d with %d frames: want 0 < batches <= frames", s.Batches, s.Frames)
	}
	if s.Shed != 0 {
		t.Errorf("shed %d frames under an idle queue", s.Shed)
	}
	t.Logf("coalescing: %d frames in %d batches (%.1f frames/batch)",
		s.Frames, s.Batches, float64(s.Frames)/float64(s.Batches))
}
