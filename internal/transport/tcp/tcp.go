// Package tcp is the real-socket transport: length-prefixed internal/msg
// frames over persistent TCP connections, with dial-on-demand, reconnect
// backoff, and a bounded write queue per peer. One Endpoint serves one site —
// the shape the qcommitd node binary deploys — and a Fabric bundles one
// endpoint per site for single-process clusters and conformance tests.
//
// Failure semantics: Send is best-effort. A message is dropped when the
// local topology view says the route is cut (crash/partition), when the
// peer's write queue is full, or when the connection dies mid-write; the
// commit protocols recover through their timeout machinery, exactly as they
// do under the simulated fabric. Inbound frames are filtered by the same
// local topology view, so a partition installed on every node of a cluster
// cuts traffic in both directions even if one side's view lags.
package tcp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/obs"
	"qcommit/internal/transport"
	"qcommit/internal/types"
)

// Options tunes an endpoint.
type Options struct {
	// QueueLen caps buffered outbound frames per peer (default 1024).
	QueueLen int
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff between failed
	// dials (defaults 10ms and 500ms).
	BackoffMin, BackoffMax time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 500 * time.Millisecond
	}
	return o
}

// Endpoint is one site's socket endpoint.
type Endpoint struct {
	transport.Topology

	self types.SiteID
	opts Options
	ln   net.Listener
	done chan struct{}

	mu      sync.Mutex
	addrs   map[types.SiteID]string
	h       transport.Handler
	clientH ClientHandler
	peers   map[types.SiteID]*peer
	conns   map[net.Conn]bool
	closed  bool

	frames  atomic.Uint64
	batches atomic.Uint64
	shed    atomic.Uint64

	// met holds the optional observability handles; loaded atomically so the
	// Send fast path never takes e.mu. Nil means recording is off and costs
	// one atomic load.
	met atomic.Pointer[epMetrics]

	wg sync.WaitGroup
}

// epMetrics is the endpoint's handle set: the enqueue→writev latency per
// frame and the number of frames sitting in peer queues right now.
type epMetrics struct {
	enqToWrite *obs.Histogram
	queueDepth *obs.Gauge
}

// RegisterMetrics publishes the endpoint's outbound counters on reg under
// canonical qcommit_net_* names labelled by site, and turns on per-frame
// enqueue→writev latency and queue-depth tracking. A nil registry is a
// no-op; without it the endpoint records nothing beyond the atomic counters
// it always kept.
func (e *Endpoint) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	site := e.self
	reg.RegisterCounterFunc(fmt.Sprintf(`qcommit_net_frames_total{site="%d"}`, site), e.frames.Load)
	reg.RegisterCounterFunc(fmt.Sprintf(`qcommit_net_batches_total{site="%d"}`, site), e.batches.Load)
	reg.RegisterCounterFunc(fmt.Sprintf(`qcommit_net_shed_total{site="%d"}`, site), e.shed.Load)
	e.met.Store(&epMetrics{
		enqToWrite: reg.Histogram(fmt.Sprintf(`qcommit_net_enqueue_to_write_ns{site="%d"}`, site), obs.LatencyBounds()),
		queueDepth: reg.Gauge(fmt.Sprintf(`qcommit_net_queue_depth{site="%d"}`, site)),
	})
}

// WriteStats counts outbound write activity on an endpoint. Frames/Batches
// is the average coalescing factor: how many frames each writev syscall
// carried.
type WriteStats struct {
	// Frames handed to the kernel.
	Frames uint64
	// Batches is the number of writev calls — one syscall per batch.
	Batches uint64
	// Shed counts frames dropped at a full peer queue.
	Shed uint64
}

// WriteStats returns a snapshot of the endpoint's outbound counters.
func (e *Endpoint) WriteStats() WriteStats {
	return WriteStats{
		Frames:  e.frames.Load(),
		Batches: e.batches.Load(),
		Shed:    e.shed.Load(),
	}
}

// ClientHandler receives one client-link request (Envelope.From ==
// transport.ClientID) together with a reply function bound to the inbound
// connection. reply is safe to call from any goroutine; the handler itself
// runs on the connection's read goroutine and must not block.
type ClientHandler func(env msg.Envelope, reply func(m msg.Message) error)

var _ transport.Transport = (*Endpoint)(nil)

// peer is the outbound side of one link: a bounded frame queue drained by a
// writer goroutine that dials on demand and redials with backoff. The queue
// is a plain slice under a mutex rather than a channel so the writer can
// claim everything queued in one step and hand the whole batch to writev.
type peer struct {
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	q      [][]byte
	stamps []int64 // enqueue times (ns) backing enqToWrite; only fed while metrics are on
	closed bool
}

// New builds an endpoint for site self listening on listen (empty means an
// ephemeral loopback port; read it back with Addr). peers maps every site to
// its peer address and may be nil if SetPeers is called before Bind.
func New(self types.SiteID, listen string, peers map[types.SiteID]string, opts Options) (*Endpoint, error) {
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("tcp: site%d listen %s: %w", self, listen, err)
	}
	e := &Endpoint{
		self:  self,
		opts:  opts.withDefaults(),
		ln:    ln,
		done:  make(chan struct{}),
		addrs: make(map[types.SiteID]string),
		peers: make(map[types.SiteID]*peer),
		conns: make(map[net.Conn]bool),
	}
	for id, a := range peers {
		e.addrs[id] = a
	}
	return e, nil
}

// Addr returns the listener's actual address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Self returns the hosted site.
func (e *Endpoint) Self() types.SiteID { return e.self }

// SetPeers installs the peer address map; call before Bind when the
// addresses were not known at construction (ephemeral-port fabrics).
func (e *Endpoint) SetPeers(addrs map[types.SiteID]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, a := range addrs {
		e.addrs[id] = a
	}
}

// BindClient installs the client-link handler; call before Bind. Without
// one, client frames are dropped (peer-only endpoints).
func (e *Endpoint) BindClient(h ClientHandler) {
	e.mu.Lock()
	e.clientH = h
	e.mu.Unlock()
}

// Bind implements transport.Transport: installs the delivery callback and
// starts accepting inbound connections.
func (e *Endpoint) Bind(h transport.Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
	e.wg.Add(1)
	go e.acceptLoop()
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.conns[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var wmu sync.Mutex // serializes replies on this client connection
	reply := func(m msg.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		return msg.WriteEnvelope(conn, msg.Envelope{From: e.self, To: transport.ClientID, Msg: m})
	}
	for {
		env, err := msg.ReadEnvelope(br)
		if err != nil {
			return
		}
		if env.To != e.self {
			continue // misrouted frame
		}
		if env.From == transport.ClientID {
			// Client link: bypasses the site topology filters (see
			// transport.ClientID) and answers over this connection.
			e.mu.Lock()
			ch := e.clientH
			e.mu.Unlock()
			if ch != nil {
				ch(env, reply)
			}
			continue
		}
		if !e.Connected(env.From, e.self) {
			continue // partitioned or crashed in the local view
		}
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

// Send implements transport.Transport.
func (e *Endpoint) Send(env msg.Envelope) {
	frame, err := msg.Marshal(env.Msg)
	if err != nil {
		return // control messages (KindInvalid) stay local by construction
	}
	if !e.Connected(env.From, env.To) {
		return
	}
	if env.To == e.self {
		// Loopback: decode the wire bytes back, proving the same
		// serialization boundary the remote path crosses.
		decoded, err := msg.Unmarshal(frame)
		if err != nil {
			return
		}
		e.mu.Lock()
		h, closed := e.h, e.closed
		e.mu.Unlock()
		if h != nil && !closed {
			h(msg.Envelope{From: env.From, To: env.To, Msg: decoded})
		}
		return
	}
	buf := msg.AppendFrame(nil, env.From, env.To, frame)
	p := e.peer(env.To)
	if p == nil {
		return
	}
	met := e.met.Load()
	p.mu.Lock()
	if p.closed || len(p.q) >= e.opts.QueueLen {
		p.mu.Unlock()
		// Queue full: shed. The protocols' timeout machinery recovers.
		e.shed.Add(1)
		return
	}
	p.q = append(p.q, buf)
	if met != nil {
		p.stamps = append(p.stamps, time.Now().UnixNano())
		met.queueDepth.Add(1)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// peer returns (lazily creating) the outbound link to site id.
func (e *Endpoint) peer(id types.SiteID) *peer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if p, ok := e.peers[id]; ok {
		return p
	}
	addr, ok := e.addrs[id]
	if !ok {
		return nil
	}
	p := &peer{addr: addr}
	p.cond = sync.NewCond(&p.mu)
	e.peers[id] = p
	e.wg.Add(1)
	go e.writeLoop(p)
	return p
}

// writeLoop drains one peer's queue: dial on demand, claim every queued
// frame in one step and hand the batch to net.Buffers — one writev syscall
// per batch — then redial with exponential backoff after failures. Frames
// queued while a batch is in flight form the next batch, so coalescing
// deepens exactly when the link is the bottleneck.
func (e *Endpoint) writeLoop(p *peer) {
	defer e.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := e.opts.BackoffMin
	for {
		p.mu.Lock()
		for len(p.q) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		batch, stamps := p.q, p.stamps
		p.q, p.stamps = nil, nil
		p.mu.Unlock()
		if met := e.met.Load(); met != nil {
			met.queueDepth.Add(-int64(len(stamps)))
		}
		for conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, e.opts.DialTimeout)
			if err != nil {
				select {
				case <-e.done:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > e.opts.BackoffMax {
					backoff = e.opts.BackoffMax
				}
				continue
			}
			conn = c
			backoff = e.opts.BackoffMin
		}
		bufs := net.Buffers(batch)
		if _, err := bufs.WriteTo(conn); err != nil {
			conn.Close()
			conn = nil // batch dropped; redial on the next frame
			continue
		}
		e.frames.Add(uint64(len(batch)))
		e.batches.Add(1)
		if met := e.met.Load(); met != nil && len(stamps) > 0 {
			now := time.Now().UnixNano()
			for _, t0 := range stamps {
				met.enqToWrite.ObserveNS(now - t0)
			}
		}
	}
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	peers := make([]*peer, 0, len(e.peers))
	for _, p := range e.peers {
		peers = append(peers, p)
	}
	e.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	err := e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
	return err
}

// Fabric bundles one endpoint per site in a single process, so a live
// cluster (or a conformance test) can run every site over real loopback
// sockets. It implements transport.Transport by routing Send through the
// sender's endpoint and applying every control to all endpoints, keeping
// their local topology views consistent.
type Fabric struct {
	order []types.SiteID
	eps   map[types.SiteID]*Endpoint
}

var _ transport.Transport = (*Fabric)(nil)

// NewFabric builds endpoints for the given sites on ephemeral loopback
// ports and cross-wires their peer address maps.
func NewFabric(sites []types.SiteID, opts Options) (*Fabric, error) {
	f := &Fabric{eps: make(map[types.SiteID]*Endpoint, len(sites))}
	addrs := make(map[types.SiteID]string, len(sites))
	for _, s := range sites {
		ep, err := New(s, "", nil, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.eps[s] = ep
		f.order = append(f.order, s)
		addrs[s] = ep.Addr()
	}
	for _, ep := range f.eps {
		ep.SetPeers(addrs)
	}
	return f, nil
}

// WriteStats sums the outbound counters of every endpoint in the fabric.
func (f *Fabric) WriteStats() WriteStats {
	var total WriteStats
	for _, ep := range f.eps {
		s := ep.WriteStats()
		total.Frames += s.Frames
		total.Batches += s.Batches
		total.Shed += s.Shed
	}
	return total
}

// RegisterMetrics publishes every endpoint's outbound counters and latency
// histograms on reg (each labelled by its own site).
func (f *Fabric) RegisterMetrics(reg *obs.Registry) {
	for _, ep := range f.eps {
		ep.RegisterMetrics(reg)
	}
}

// Addrs returns each site's listen address.
func (f *Fabric) Addrs() map[types.SiteID]string {
	out := make(map[types.SiteID]string, len(f.eps))
	for s, ep := range f.eps {
		out[s] = ep.Addr()
	}
	return out
}

// Bind implements transport.Transport.
func (f *Fabric) Bind(h transport.Handler) {
	for _, ep := range f.eps {
		ep.Bind(h)
	}
}

// Send implements transport.Transport.
func (f *Fabric) Send(env msg.Envelope) {
	if ep := f.eps[env.From]; ep != nil {
		ep.Send(env)
	}
}

// Crash implements transport.Transport.
func (f *Fabric) Crash(id types.SiteID) {
	for _, ep := range f.eps {
		ep.Crash(id)
	}
}

// Restart implements transport.Transport.
func (f *Fabric) Restart(id types.SiteID) {
	for _, ep := range f.eps {
		ep.Restart(id)
	}
}

// Partition implements transport.Transport.
func (f *Fabric) Partition(groups ...[]types.SiteID) {
	for _, ep := range f.eps {
		ep.Partition(groups...)
	}
}

// Heal implements transport.Transport.
func (f *Fabric) Heal() {
	for _, ep := range f.eps {
		ep.Heal()
	}
}

// Connected implements transport.Transport (all endpoints share one view).
func (f *Fabric) Connected(a, b types.SiteID) bool {
	if len(f.order) == 0 {
		return false
	}
	return f.eps[f.order[0]].Connected(a, b)
}

// Down implements transport.Transport.
func (f *Fabric) Down(id types.SiteID) bool {
	if len(f.order) == 0 {
		return false
	}
	return f.eps[f.order[0]].Down(id)
}

// Close implements transport.Transport.
func (f *Fabric) Close() error {
	var first error
	for _, ep := range f.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
