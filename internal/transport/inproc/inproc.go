// Package inproc is the in-process transport: the mailbox fabric the live
// runtime has always run on, refactored behind the transport.Transport
// interface. Messages pay a full wire-codec round-trip (so anything that
// cannot cross a real socket cannot cross this fabric either), a randomized
// propagation delay drawn from a seeded source, and the crash/partition
// filters — then land in the hosting runtime's delivery callback.
package inproc

import (
	"math/rand"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/transport"
)

// Options parameterizes the fabric.
type Options struct {
	// MinDelay/MaxDelay bound the simulated propagation delay. When
	// MaxDelay <= MinDelay every message takes exactly MinDelay.
	MinDelay, MaxDelay time.Duration
	// Seed drives the delay randomness.
	Seed int64
}

// Network is a single in-process fabric serving every site of a cluster.
type Network struct {
	transport.Topology

	opts Options

	mu     sync.Mutex // guards rng, h and closed
	rng    *rand.Rand
	h      transport.Handler
	closed bool
}

var _ transport.Transport = (*Network)(nil)

// New builds an unbound fabric; call Bind before the first Send.
func New(opts Options) *Network {
	return &Network{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Bind implements transport.Transport.
func (n *Network) Bind(h transport.Handler) {
	n.mu.Lock()
	n.h = h
	n.mu.Unlock()
}

// delay draws the next propagation delay.
func (n *Network) delay() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo, hi := n.opts.MinDelay, n.opts.MaxDelay
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(n.rng.Int63n(int64(hi-lo)+1))
}

// Send implements transport.Transport: codec round-trip, connectivity check
// at send time and again at delivery time (a partition formed mid-flight
// loses the message), randomized delay.
func (n *Network) Send(env msg.Envelope) {
	frame, err := msg.Marshal(env.Msg)
	if err != nil {
		return // internal control messages are never sent over the wire
	}
	decoded, err := msg.Unmarshal(frame)
	if err != nil {
		return
	}
	if !n.Connected(env.From, env.To) {
		return
	}
	d := n.delay()
	out := msg.Envelope{From: env.From, To: env.To, Msg: decoded}
	time.AfterFunc(d, func() {
		if !n.Connected(out.From, out.To) {
			return
		}
		n.mu.Lock()
		h, closed := n.h, n.closed
		n.mu.Unlock()
		if h != nil && !closed {
			h(out)
		}
	})
}

// Close implements transport.Transport. In-flight timers may still fire but
// deliver nothing.
func (n *Network) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	return nil
}
