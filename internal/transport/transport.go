// Package transport defines the message fabric a live runtime sends protocol
// frames through, decoupling the hosting of sites (package live) from the
// routing of messages between them.
//
// The interface is deliberately shaped like a fault-injectable network rather
// than a plain socket: the quorum-commit protocols in this repository exist
// to survive crashed sites and partitioned links, so the controls to create
// those failures (Crash/Restart/Partition/Heal) are part of the transport
// contract, not bolted onto one implementation. Two implementations are
// provided:
//
//   - inproc: the deterministic in-process fabric — randomized propagation
//     delay, partition/crash filtering, and a codec round-trip on every send,
//     delivering into the hosting runtime's mailboxes. This is the fast path
//     the simulation studies and most tests run on.
//   - tcp: real sockets — length-prefixed msg frames over persistent
//     connections with dial-on-demand, reconnect backoff and per-peer write
//     queues. One Endpoint serves one site (the qcommitd node binary);
//     a Fabric bundles one endpoint per site for single-process use.
//
// Both implementations marshal every message through the internal/msg wire
// codec, so a message that cannot cross a real wire cannot cross the inproc
// fabric either; internal control messages (msg.KindInvalid) are dropped by
// construction and never leave the hosting runtime.
package transport

import (
	"sync"

	"qcommit/internal/msg"
	"qcommit/internal/types"
)

// Handler receives an inbound envelope from the fabric. Implementations call
// it from internal goroutines (timer callbacks, connection readers); it must
// not block.
type Handler func(env msg.Envelope)

// ClientID is the reserved sender ID client links use in Envelope.From.
// Clients are not sites: frames from ClientID bypass the site topology
// filters (a partitioned node must still answer its local clients and accept
// the control frames that will later heal it), and no transport ever dials
// ClientID — replies flow back over the connection the request arrived on.
const ClientID types.SiteID = -1

// Transport is a message fabric endpoint with failure-injection controls.
//
// Send is asynchronous and best-effort: messages may be dropped (partition,
// crashed site, connection failure, backpressure) and the protocols recover
// via their timeout machinery. Send never blocks and never delivers a
// message whose kind does not marshal (msg.KindInvalid).
//
// The failure controls describe this endpoint's local view of the network.
// For the in-process implementations one call updates the whole fabric; for
// distributed tcp endpoints each process must be told separately (the e2e
// harness scripts this through the qcommitd control protocol).
type Transport interface {
	// Bind installs the delivery callback. It must be called exactly once
	// before the first Send; implementations may also use it to start
	// accepting inbound traffic.
	Bind(h Handler)

	// Send routes env.Msg from env.From to env.To.
	Send(env msg.Envelope)

	// Crash marks a site down: sends from and deliveries to it are dropped.
	Crash(id types.SiteID)
	// Restart clears a site's down mark.
	Restart(id types.SiteID)
	// Partition splits the network into the given groups; unlisted sites
	// form a residual group. Calling it with no groups is equivalent to Heal.
	Partition(groups ...[]types.SiteID)
	// Heal removes all partition splits.
	Heal()

	// Connected reports whether a and b can currently exchange messages in
	// this endpoint's view (both up, same partition group).
	Connected(a, b types.SiteID) bool
	// Down reports whether id is currently marked crashed in this endpoint's
	// view.
	Down(id types.SiteID) bool

	// Close releases the endpoint; subsequent Sends are dropped.
	Close() error
}

// Topology is the shared crash/partition bookkeeping every implementation
// embeds: a down-site set and a partition group map, both guarded by one
// mutex. The zero value is a fully connected, fully up network.
type Topology struct {
	mu    sync.Mutex
	group map[types.SiteID]int
	down  map[types.SiteID]bool
}

// Crash marks id down.
func (tp *Topology) Crash(id types.SiteID) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.down == nil {
		tp.down = make(map[types.SiteID]bool)
	}
	tp.down[id] = true
}

// Restart clears id's down mark.
func (tp *Topology) Restart(id types.SiteID) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.down != nil {
		delete(tp.down, id)
	}
}

// Partition installs the given groups; unlisted sites form a residual group.
func (tp *Topology) Partition(groups ...[]types.SiteID) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	tp.group = make(map[types.SiteID]int)
	for gi, g := range groups {
		for _, s := range g {
			tp.group[s] = gi + 1
		}
	}
}

// Heal removes all partition splits.
func (tp *Topology) Heal() { tp.Partition() }

// Connected reports whether a and b are both up and in the same group.
func (tp *Topology) Connected(a, b types.SiteID) bool {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.down[a] || tp.down[b] {
		return false
	}
	return tp.group[a] == tp.group[b]
}

// Down reports whether id is marked crashed.
func (tp *Topology) Down(id types.SiteID) bool {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.down[id]
}
