// Package live runs the same protocol automata as the deterministic engine
// on a real concurrent runtime: one goroutine per database site, Go channels
// as the message fabric, wall-clock timers for the protocol timeouts. It is
// the "deployment-shaped" counterpart of package engine — protocol logic is
// shared, only the hosting differs — and demonstrates that the automata are
// genuinely runtime-agnostic.
package live

import (
	"math/rand"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Config parameterizes a live cluster.
type Config struct {
	// Assignment is the weighted-voting replica configuration.
	Assignment *voting.Assignment
	// Strategy selects the data-access strategy layered over the
	// assignment (StrategyQuorum default, or StrategyMissingWrites for
	// adaptive read-one/write-all with per-item demotion), exactly as in
	// the deterministic engine.
	Strategy voting.Strategy
	// Spec is the commit+termination protocol.
	Spec protocol.Spec
	// MinDelay/MaxDelay bound simulated propagation delay (wall clock).
	// Defaults 200µs–2ms, keeping 3T timeouts test-friendly.
	MinDelay, MaxDelay time.Duration
	// TimeoutBase is the protocol timeout unit T. Unlike the deterministic
	// simulator, wall-clock runs pay goroutine scheduling and marshalling
	// overhead on top of propagation delay, so T needs headroom; it defaults
	// to 4×MaxDelay.
	TimeoutBase time.Duration
	// Seed drives the delay randomness.
	Seed int64
	// MaxTerminationRounds caps termination retries (default 3).
	MaxTerminationRounds int
}

type event struct {
	env   *msg.Envelope
	timer *timerEvent
	stop  bool
}

type timerEvent struct {
	txn   types.TxnID
	role  protocol.Role
	gen   uint32
	token int
}

// Cluster is a set of live site goroutines.
type Cluster struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex // guards partition/crash state and rng
	group   map[types.SiteID]int
	down    map[types.SiteID]bool
	rng     *rand.Rand
	nextTxn types.TxnID

	nodes map[types.SiteID]*Node
	wg    sync.WaitGroup

	// adaptive tracks per-item missing writes under StrategyMissingWrites
	// (nil under StrategyQuorum). wroteMu guards recordedWrites (the
	// once-per-transaction commit-reachability bookkeeping flag) and its
	// high-water mark; unlike the engine's per-run clusters a live cluster
	// is long-lived, so old entries are pruned once their transactions are
	// far enough behind the newest recorded one that no straggler apply
	// can still be in flight.
	adaptive       *voting.Adaptive
	wroteMu        sync.Mutex
	recordedWrites map[types.TxnID]bool
	maxRecorded    types.TxnID
}

// New builds and starts one goroutine per site in the assignment.
func New(cfg Config) *Cluster {
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 200*time.Microsecond, 2*time.Millisecond
	}
	if cfg.TimeoutBase == 0 {
		cfg.TimeoutBase = 4 * cfg.MaxDelay
	}
	if cfg.MaxTerminationRounds <= 0 {
		cfg.MaxTerminationRounds = 3
	}
	cl := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		group: make(map[types.SiteID]int),
		down:  make(map[types.SiteID]bool),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[types.SiteID]*Node),
	}
	if cfg.Strategy == voting.StrategyMissingWrites {
		cl.adaptive = voting.NewAdaptive(cfg.Assignment)
		cl.recordedWrites = make(map[types.TxnID]bool)
	}
	seen := make(map[types.SiteID]bool)
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			seen[cp.Site] = true
		}
	}
	for id := range seen {
		n := newNode(id, cl)
		cl.nodes[id] = n
	}
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			cl.nodes[cp.Site].store.Init(item, 0)
		}
	}
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.loop(&cl.wg)
	}
	return cl
}

// Node returns a site's node.
func (cl *Cluster) Node(id types.SiteID) *Node { return cl.nodes[id] }

// T is the protocol timeout base.
func (cl *Cluster) T() time.Duration { return cl.cfg.TimeoutBase }

// Begin submits a transaction at the coordinator site and returns its ID.
func (cl *Cluster) Begin(coord types.SiteID, ws types.Writeset) types.TxnID {
	cl.mu.Lock()
	cl.nextTxn++
	txn := cl.nextTxn
	cl.mu.Unlock()
	participants := cl.cfg.Assignment.Participants(ws.Items())
	n := cl.nodes[coord]
	n.post(event{env: &msg.Envelope{From: coord, To: coord, Msg: beginMsg{txn: txn, ws: ws.Clone(), participants: participants}}})
	return txn
}

// beginMsg is an internal control message carried through the mailbox so all
// automaton access stays on the node goroutine.
type beginMsg struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
}

// Kind implements msg.Message (never marshalled).
func (beginMsg) Kind() msg.Kind { return msg.KindInvalid }

// Crash takes a site down (volatile state lost, WAL kept).
func (cl *Cluster) Crash(id types.SiteID) {
	cl.mu.Lock()
	cl.down[id] = true
	cl.mu.Unlock()
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: crashMsg{}}})
}

type crashMsg struct{}

func (crashMsg) Kind() msg.Kind { return msg.KindInvalid }

// Restart recovers a crashed site from its WAL.
func (cl *Cluster) Restart(id types.SiteID) {
	cl.mu.Lock()
	cl.down[id] = false
	cl.mu.Unlock()
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: restartMsg{}}})
}

type restartMsg struct{}

func (restartMsg) Kind() msg.Kind { return msg.KindInvalid }

// Partition splits the network into groups; unlisted sites form a residual
// group.
func (cl *Cluster) Partition(groups ...[]types.SiteID) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.group = make(map[types.SiteID]int)
	for gi, g := range groups {
		for _, s := range g {
			cl.group[s] = gi + 1
		}
	}
}

// Heal reconnects the network. Under StrategyMissingWrites it also starts
// the catch-up pass: every copy carrying a missing write asks its peers for
// their current versions, and items whose stale copies catch up return to
// optimistic mode.
func (cl *Cluster) Heal() {
	cl.mu.Lock()
	cl.group = make(map[types.SiteID]int)
	cl.mu.Unlock()
	if cl.adaptive == nil {
		return
	}
	cl.cfg.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, stale := range cl.adaptive.MissingAt(ic.Item) {
			cl.mu.Lock()
			isDown := cl.down[stale]
			cl.mu.Unlock()
			if isDown {
				continue
			}
			for _, cp := range ic.Copies {
				if cp.Site != stale {
					cl.send(stale, cp.Site, msg.CopyReq{Item: ic.Item})
				}
			}
		}
	})
}

func (cl *Cluster) connected(a, b types.SiteID) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.down[a] || cl.down[b] {
		return false
	}
	return cl.group[a] == cl.group[b]
}

func (cl *Cluster) delay() time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	lo, hi := cl.cfg.MinDelay, cl.cfg.MaxDelay
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(cl.rng.Int63n(int64(hi-lo)+1))
}

// send routes a message with delay, loss-on-partition and codec round-trip.
func (cl *Cluster) send(from, to types.SiteID, m msg.Message) {
	frame, err := msg.Marshal(m)
	if err != nil {
		return // internal control messages are never sent over the wire
	}
	decoded, err := msg.Unmarshal(frame)
	if err != nil {
		return
	}
	if !cl.connected(from, to) {
		return
	}
	d := cl.delay()
	time.AfterFunc(d, func() {
		if !cl.connected(from, to) {
			return
		}
		if n := cl.nodes[to]; n != nil {
			n.post(event{env: &msg.Envelope{From: from, To: to, Msg: decoded}})
		}
	})
}

// OutcomeAt reads txn's fate at one site from its WAL.
func (cl *Cluster) OutcomeAt(id types.SiteID, txn types.TxnID) types.Outcome {
	n := cl.nodes[id]
	n.walMu.Lock()
	recs, _ := n.log.Records()
	n.walMu.Unlock()
	img := wal.Replay(recs)[txn]
	if img == nil {
		return types.OutcomeUnknown
	}
	switch img.State {
	case types.StateCommitted:
		return types.OutcomeCommitted
	case types.StateAborted:
		return types.OutcomeAborted
	case types.StateWait, types.StatePC, types.StatePA:
		return types.OutcomeBlocked
	default:
		return types.OutcomeUnknown
	}
}

// WaitOutcome polls until every up site holding a copy reports the same
// terminal outcome for txn, or the deadline passes (returning the aggregate
// at that point: blocked/unknown if not uniform terminal). Crashed sites are
// excluded — they learn the outcome from their WAL and the termination
// protocol after Restart.
func (cl *Cluster) WaitOutcome(txn types.TxnID, deadline time.Duration) types.Outcome {
	limit := time.Now().Add(deadline)
	for {
		agg := types.OutcomeUnknown
		uniform := true
		for id := range cl.nodes {
			cl.mu.Lock()
			isDown := cl.down[id]
			cl.mu.Unlock()
			if isDown {
				continue
			}
			o := cl.OutcomeAt(id, txn)
			if o == types.OutcomeUnknown {
				continue
			}
			if !o.StateEquivalent().Terminal() {
				uniform = false
				break
			}
			if agg == types.OutcomeUnknown {
				agg = o
			} else if agg != o {
				return agg // mixed — caller detects via Violated
			}
		}
		if uniform && agg != types.OutcomeUnknown {
			return agg
		}
		if time.Now().After(limit) {
			if !uniform {
				return types.OutcomeBlocked
			}
			return agg
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Violated reports whether any transaction terminated inconsistently.
func (cl *Cluster) Violated(txn types.TxnID) bool {
	committed, aborted := false, false
	for id := range cl.nodes {
		switch cl.OutcomeAt(id, txn) {
		case types.OutcomeCommitted:
			committed = true
		case types.OutcomeAborted:
			aborted = true
		}
	}
	return committed && aborted
}

// Stop shuts down all node goroutines.
func (cl *Cluster) Stop() {
	for _, n := range cl.nodes {
		n.post(event{stop: true})
	}
	cl.wg.Wait()
}

// Strategy returns the cluster's access strategy.
func (cl *Cluster) Strategy() voting.Strategy { return cl.cfg.Strategy }

// ItemMode returns item's current missing-writes mode (always Pessimistic —
// quorum operations — under StrategyQuorum).
func (cl *Cluster) ItemMode(item types.ItemID) voting.Mode {
	if cl.adaptive == nil {
		return voting.Pessimistic
	}
	return cl.adaptive.ModeOf(item)
}

// MissingAt returns the sites currently carrying missing writes for item,
// ascending (always empty under StrategyQuorum).
func (cl *Cluster) MissingAt(item types.ItemID) []types.SiteID {
	if cl.adaptive == nil {
		return nil
	}
	return cl.adaptive.MissingAt(item)
}

// ModeTransitions returns the cumulative missing-writes mode transitions
// (demotions, restorations); both zero under StrategyQuorum.
func (cl *Cluster) ModeTransitions() (demotions, restorations int) {
	if cl.adaptive == nil {
		return 0, 0
	}
	return cl.adaptive.Transitions()
}

// noteCommitApplied is the missing-writes bookkeeping hook a node's doCommit
// calls after applying a committed writeset — the live counterpart of the
// engine's hook. The first node to decide records which copies the commit
// reaches: a copy counts as reached if its site is up, in the decider's
// group, and bound to apply the write — it is the decider itself, it still
// holds the transaction's X lock (voted), or its store already carries the
// transaction's version (applied concurrently; stores and lock managers are
// mutex-guarded, so peeking across goroutines is safe). Copies that miss
// the write demote the item; later local applies resolve them.
func (cl *Cluster) noteCommitApplied(n *Node, c *txnCtx) {
	if cl.adaptive == nil {
		return
	}
	cl.wroteMu.Lock()
	first := !cl.recordedWrites[c.txn]
	cl.recordedWrites[c.txn] = true
	if c.txn > cl.maxRecorded {
		cl.maxRecorded = c.txn
	}
	// Bound the map: a commit's applies finish within a few timeout units,
	// so entries thousands of transactions behind the high-water mark are
	// dead weight. If an ancient commit ever did re-record, the worst case
	// is a spurious demotion that the next catch-up pass resolves.
	if len(cl.recordedWrites) > 8192 {
		for txn := range cl.recordedWrites {
			if txn+4096 < cl.maxRecorded {
				delete(cl.recordedWrites, txn)
			}
		}
	}
	cl.wroteMu.Unlock()
	version := uint64(c.txn) + 1
	if first {
		for _, item := range c.ws.Items() {
			ic, ok := cl.cfg.Assignment.Item(item)
			if !ok {
				continue
			}
			reached := make([]types.SiteID, 0, len(ic.Copies))
			for _, cp := range ic.Copies {
				if !cl.connected(n.id, cp.Site) {
					continue
				}
				peer := cl.nodes[cp.Site]
				applied := false
				if v, err := peer.store.Read(item); err == nil && v.Version >= version {
					applied = true
				}
				if cp.Site == n.id || applied || peer.locks.LockedBy(c.txn, item) {
					reached = append(reached, cp.Site)
				}
			}
			if len(reached) < len(ic.Copies) {
				cl.adaptive.DegradeExcept(item, reached)
			}
		}
	}
	for _, item := range c.ws.Items() {
		if n.store.Has(item) {
			cl.maybeResolve(item, n.id)
		}
	}
}

// maybeResolve clears site's missing write for item once its copy has
// caught up to the highest version any copy holds (stores only ever hold
// committed values).
func (cl *Cluster) maybeResolve(item types.ItemID, site types.SiteID) {
	if cl.adaptive == nil || !cl.adaptive.IsMissing(item, site) {
		return
	}
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return
	}
	var max uint64
	for _, cp := range ic.Copies {
		if v, err := cl.nodes[cp.Site].store.Read(item); err == nil && v.Version > max {
			max = v.Version
		}
	}
	if v, err := cl.nodes[site].store.Read(item); err == nil && v.Version >= max {
		cl.adaptive.ResolveMissing(item, site)
	}
}
