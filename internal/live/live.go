// Package live runs the same protocol automata as the deterministic engine
// on a real concurrent runtime: one goroutine per database site, Go channels
// as the message fabric, wall-clock timers for the protocol timeouts. It is
// the "deployment-shaped" counterpart of package engine — protocol logic is
// shared, only the hosting differs — and demonstrates that the automata are
// genuinely runtime-agnostic.
package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/obs"
	"qcommit/internal/protocol"
	"qcommit/internal/transport"
	"qcommit/internal/transport/inproc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Config parameterizes a live cluster.
type Config struct {
	// Assignment is the weighted-voting replica configuration.
	Assignment *voting.Assignment
	// Strategy selects the data-access strategy layered over the
	// assignment (StrategyQuorum default, StrategyMissingWrites for
	// adaptive read-one/write-all with per-item demotion, or
	// StrategyDynamic for vote reassignment onto each committed write's
	// survivor set), exactly as in the deterministic engine.
	Strategy voting.Strategy
	// Spec is the commit+termination protocol.
	Spec protocol.Spec
	// MinDelay/MaxDelay bound simulated propagation delay (wall clock).
	// Defaults 200µs–2ms, keeping 3T timeouts test-friendly.
	MinDelay, MaxDelay time.Duration
	// TimeoutBase is the protocol timeout unit T. Unlike the deterministic
	// simulator, wall-clock runs pay goroutine scheduling and marshalling
	// overhead on top of propagation delay, so T needs headroom; it defaults
	// to 4×MaxDelay.
	TimeoutBase time.Duration
	// Seed drives the delay randomness.
	Seed int64
	// MaxTerminationRounds caps termination retries (default 3).
	MaxTerminationRounds int
	// Transport optionally supplies the message fabric serving every site.
	// Nil builds the in-process fabric from MinDelay/MaxDelay/Seed — the
	// historical mailbox path. A tcp.Fabric here runs the same cluster over
	// real loopback sockets. The cluster takes ownership and closes the
	// transport on Stop.
	Transport transport.Transport
	// WAL optionally supplies each site's log (nil sites fall back to a
	// fresh MemLog). Supplying a wal.AsyncLog (e.g. wal.GroupLog) enables
	// commit pipelining: a node's durability-gated sends are released by a
	// flusher goroutine once the group fsync lands, so the event loop keeps
	// processing other transactions while a batch is being forced. The
	// caller retains ownership and closes the logs after Stop.
	WAL func(types.SiteID) wal.Log
	// LockShards overrides each node's lock-manager shard count
	// (0 means lockmgr.DefaultShards).
	LockShards int
	// Obs optionally attaches an observability sink: every node registers
	// its metric set (and its lock manager's and group WAL's) on the
	// observer's registry, and the observer's span recorder samples
	// commit-path traces. Nil — the default — keeps every hook a single
	// pointer check.
	Obs *obs.Observer
}

type event struct {
	env   *msg.Envelope
	timer *timerEvent
	stop  bool
}

type timerEvent struct {
	txn   types.TxnID
	role  protocol.Role
	gen   uint32
	token int
}

// Cluster is a set of live site goroutines.
type Cluster struct {
	cfg   Config
	start time.Time

	// tr is the message fabric. All routing policy — propagation delay,
	// partition and crash filtering, the wire-codec round-trip — lives
	// behind it; the cluster only posts inbound envelopes to node mailboxes
	// and consults the transport's topology view.
	tr transport.Transport

	mu      sync.Mutex // guards nextTxn
	nextTxn types.TxnID

	nodes map[types.SiteID]*Node
	wg    sync.WaitGroup

	// adaptive tracks per-item missing writes under StrategyMissingWrites
	// and dynamic tracks per-item vote tables under StrategyDynamic (both
	// nil otherwise). wroteMu guards recordedWrites (the
	// once-per-transaction commit-reachability bookkeeping flag) and its
	// high-water mark; unlike the engine's per-run clusters a live cluster
	// is long-lived, so old entries are pruned once their transactions are
	// far enough behind the newest recorded one that no straggler apply
	// can still be in flight.
	adaptive       *voting.Adaptive
	dynamic        *voting.Dynamic
	wroteMu        sync.Mutex
	recordedWrites map[types.TxnID]bool
	maxRecorded    types.TxnID

	// noteMu guards notes, the per-transaction outcome watch channels
	// behind WaitOutcome: every local decision (and every crash or restart,
	// which changes the up-site set the aggregate is taken over) closes the
	// transaction's current channel, so waiters re-evaluate immediately
	// instead of sleep-polling. Each note counts its waiters, and the last
	// waiter out removes an unnotified entry — a long-lived cluster must
	// not accumulate one map entry per transaction ever waited on.
	noteMu sync.Mutex
	notes  map[types.TxnID]*outcomeNote
}

// outcomeNote is one transaction's outcome watch: the broadcast channel and
// the number of WaitOutcome loops currently holding it.
type outcomeNote struct {
	ch      chan struct{}
	waiters int
}

// New builds and starts one goroutine per site in the assignment.
func New(cfg Config) *Cluster {
	if !cfg.Strategy.Valid() {
		panic(fmt.Sprintf("live: invalid Config.Strategy %v", cfg.Strategy))
	}
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 200*time.Microsecond, 2*time.Millisecond
	}
	if cfg.TimeoutBase == 0 {
		cfg.TimeoutBase = 4 * cfg.MaxDelay
	}
	if cfg.MaxTerminationRounds <= 0 {
		cfg.MaxTerminationRounds = 3
	}
	tr := cfg.Transport
	if tr == nil {
		tr = inproc.New(inproc.Options{MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay, Seed: cfg.Seed})
	}
	cl := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		tr:    tr,
		nodes: make(map[types.SiteID]*Node),
		notes: make(map[types.TxnID]*outcomeNote),
	}
	switch cfg.Strategy {
	case voting.StrategyMissingWrites:
		cl.adaptive = voting.NewAdaptive(cfg.Assignment)
		cl.recordedWrites = make(map[types.TxnID]bool)
	case voting.StrategyDynamic:
		cl.dynamic = voting.NewDynamic(cfg.Assignment)
		cl.recordedWrites = make(map[types.TxnID]bool)
	}
	seen := make(map[types.SiteID]bool)
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			seen[cp.Site] = true
		}
	}
	for id := range seen {
		var log wal.Log
		if cfg.WAL != nil {
			log = cfg.WAL(id)
		}
		n := newNode(id, cl, log, cfg.LockShards, cfg.Obs)
		cl.nodes[id] = n
	}
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			cl.nodes[cp.Site].store.Init(item, 0)
		}
	}
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.loop(&cl.wg)
		if n.alog != nil {
			cl.wg.Add(1)
			go n.flusher(&cl.wg)
		}
	}
	tr.Bind(cl.deliver)
	return cl
}

// deliver posts an inbound envelope to the destination node's mailbox; it is
// the transport's delivery callback and must not block (post never does).
func (cl *Cluster) deliver(env msg.Envelope) {
	if n := cl.nodes[env.To]; n != nil {
		n.post(event{env: &env})
	}
}

// Transport exposes the cluster's message fabric.
func (cl *Cluster) Transport() transport.Transport { return cl.tr }

// Node returns a site's node.
func (cl *Cluster) Node(id types.SiteID) *Node { return cl.nodes[id] }

// T is the protocol timeout base.
func (cl *Cluster) T() time.Duration { return cl.cfg.TimeoutBase }

// Begin submits a transaction at the coordinator site and returns its ID.
func (cl *Cluster) Begin(coord types.SiteID, ws types.Writeset) types.TxnID {
	cl.mu.Lock()
	cl.nextTxn++
	txn := cl.nextTxn
	cl.mu.Unlock()
	participants := cl.cfg.Assignment.Participants(ws.Items())
	n := cl.nodes[coord]
	n.post(event{env: &msg.Envelope{From: coord, To: coord, Msg: beginMsg{txn: txn, ws: ws.Clone(), participants: participants}}})
	return txn
}

// beginMsg is an internal control message carried through the mailbox so all
// automaton access stays on the node goroutine.
type beginMsg struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
}

// Kind implements msg.Message (never marshalled).
func (beginMsg) Kind() msg.Kind { return msg.KindInvalid }

// Crash takes a site down (volatile state lost, WAL kept).
func (cl *Cluster) Crash(id types.SiteID) {
	cl.tr.Crash(id)
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: crashMsg{}}})
	cl.notifyAllOutcomes() // the up-site set changed; waiters re-aggregate
}

type crashMsg struct{}

func (crashMsg) Kind() msg.Kind { return msg.KindInvalid }

// Restart recovers a crashed site from its WAL.
func (cl *Cluster) Restart(id types.SiteID) {
	cl.tr.Restart(id)
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: restartMsg{}}})
	cl.notifyAllOutcomes() // the up-site set changed; waiters re-aggregate
}

type restartMsg struct{}

func (restartMsg) Kind() msg.Kind { return msg.KindInvalid }

// Partition splits the network into groups; unlisted sites form a residual
// group.
func (cl *Cluster) Partition(groups ...[]types.SiteID) {
	cl.tr.Partition(groups...)
}

// Heal reconnects the network. Under StrategyMissingWrites it also starts
// the catch-up pass: every copy carrying a missing write asks its peers for
// their current versions, and items whose stale copies catch up return to
// optimistic mode. Under StrategyDynamic the same pass runs for copies
// outside their item's current majority basis, whose catch-up triggers a
// vote reassignment folding them back in.
func (cl *Cluster) Heal() {
	cl.tr.Heal()
	if cl.adaptive == nil && cl.dynamic == nil {
		return
	}
	staleSites := func(item types.ItemID) []types.SiteID {
		if cl.adaptive != nil {
			return cl.adaptive.MissingAt(item)
		}
		return cl.dynamic.StaleSites(item)
	}
	cl.cfg.Assignment.ForEachItem(func(ic voting.ItemConfig) {
		for _, stale := range staleSites(ic.Item) {
			if cl.tr.Down(stale) {
				continue
			}
			for _, cp := range ic.Copies {
				if cp.Site != stale {
					cl.send(stale, cp.Site, msg.CopyReq{Item: ic.Item})
				}
			}
		}
	})
}

// send routes a message through the transport, which applies delay,
// loss-on-partition and the wire-codec round-trip.
func (cl *Cluster) send(from, to types.SiteID, m msg.Message) {
	cl.tr.Send(msg.Envelope{From: from, To: to, Msg: m})
}

// host accessors (see host.go): Cluster hosts every node of the assignment.

func (cl *Cluster) spec() protocol.Spec            { return cl.cfg.Spec }
func (cl *Cluster) assignment() *voting.Assignment { return cl.cfg.Assignment }
func (cl *Cluster) timeoutBase() time.Duration     { return cl.cfg.TimeoutBase }
func (cl *Cluster) maxTermRounds() int             { return cl.cfg.MaxTerminationRounds }
func (cl *Cluster) startTime() time.Time           { return cl.start }

// OutcomeAt reads txn's fate at one site from its WAL.
func (cl *Cluster) OutcomeAt(id types.SiteID, txn types.TxnID) types.Outcome {
	return walOutcome(cl.nodes[id], txn)
}

// watchOutcome registers the caller as a waiter on txn's outcome note,
// whose channel is closed at the next outcome-affecting event: a site
// records a local decision, or a crash/restart changes the up-site set the
// aggregate ranges over. Waiters must register BEFORE evaluating the
// aggregate, so a decision landing between evaluation and wait still wakes
// them, and must pair every registration with unwatchOutcome.
func (cl *Cluster) watchOutcome(txn types.TxnID) *outcomeNote {
	cl.noteMu.Lock()
	defer cl.noteMu.Unlock()
	note := cl.notes[txn]
	if note == nil {
		note = &outcomeNote{ch: make(chan struct{})}
		cl.notes[txn] = note
	}
	note.waiters++
	return note
}

// unwatchOutcome releases one registration; the last waiter out removes the
// entry if no notification consumed it already (the channel-closed paths
// find cl.notes[txn] pointing at a fresh note or nothing).
func (cl *Cluster) unwatchOutcome(txn types.TxnID, note *outcomeNote) {
	cl.noteMu.Lock()
	defer cl.noteMu.Unlock()
	note.waiters--
	if note.waiters == 0 && cl.notes[txn] == note {
		delete(cl.notes, txn)
	}
}

// notifyOutcome wakes the waiters watching txn.
func (cl *Cluster) notifyOutcome(txn types.TxnID) {
	cl.noteMu.Lock()
	if note, ok := cl.notes[txn]; ok {
		close(note.ch)
		delete(cl.notes, txn)
	}
	cl.noteMu.Unlock()
}

// notifyAllOutcomes wakes every waiter (crash/restart changed the up set).
func (cl *Cluster) notifyAllOutcomes() {
	cl.noteMu.Lock()
	for txn, note := range cl.notes {
		close(note.ch)
		delete(cl.notes, txn)
	}
	cl.noteMu.Unlock()
}

// outcomeSnapshot aggregates txn's fate across the up sites right now. It
// returns settled=true once every up site holding state for txn reports the
// same terminal outcome (or a mixed terminal pair — callers detect that via
// Violated); otherwise it returns the value WaitOutcome should report if the
// deadline struck now (blocked if some site is mid-protocol, else the
// aggregate so far).
func (cl *Cluster) outcomeSnapshot(txn types.TxnID) (types.Outcome, bool) {
	agg := types.OutcomeUnknown
	for id := range cl.nodes {
		if cl.tr.Down(id) {
			continue
		}
		o := cl.OutcomeAt(id, txn)
		if o == types.OutcomeUnknown {
			continue
		}
		if !o.StateEquivalent().Terminal() {
			return types.OutcomeBlocked, false
		}
		if agg == types.OutcomeUnknown {
			agg = o
		} else if agg != o {
			return agg, true // mixed — caller detects via Violated
		}
	}
	return agg, agg != types.OutcomeUnknown
}

// WaitOutcome blocks until every up site holding a copy reports the same
// terminal outcome for txn, or the deadline passes (returning the aggregate
// at that point: blocked/unknown if not uniform terminal). Crashed sites are
// excluded — they learn the outcome from their WAL and the termination
// protocol after Restart. Waiters are woken by per-transaction decision
// notifications (and by crash/restart events), so they observe the outcome
// as soon as it lands and the deadline is honored exactly rather than
// quantized to a polling interval.
func (cl *Cluster) WaitOutcome(txn types.TxnID, deadline time.Duration) types.Outcome {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for {
		note := cl.watchOutcome(txn)
		if agg, settled := cl.outcomeSnapshot(txn); settled {
			cl.unwatchOutcome(txn, note)
			return agg
		}
		select {
		case <-note.ch:
			cl.unwatchOutcome(txn, note)
		case <-timer.C:
			cl.unwatchOutcome(txn, note)
			agg, _ := cl.outcomeSnapshot(txn)
			return agg
		}
	}
}

// Violated reports whether any transaction terminated inconsistently.
func (cl *Cluster) Violated(txn types.TxnID) bool {
	committed, aborted := false, false
	for id := range cl.nodes {
		switch cl.OutcomeAt(id, txn) {
		case types.OutcomeCommitted:
			committed = true
		case types.OutcomeAborted:
			aborted = true
		}
	}
	return committed && aborted
}

// Stop shuts down all node goroutines.
func (cl *Cluster) Stop() {
	for _, n := range cl.nodes {
		n.post(event{stop: true})
	}
	cl.wg.Wait()
	cl.tr.Close()
}

// Strategy returns the cluster's access strategy.
func (cl *Cluster) Strategy() voting.Strategy { return cl.cfg.Strategy }

// ItemMode returns item's current missing-writes mode (always Pessimistic —
// quorum operations — under StrategyQuorum).
func (cl *Cluster) ItemMode(item types.ItemID) voting.Mode {
	if cl.adaptive == nil {
		return voting.Pessimistic
	}
	return cl.adaptive.ModeOf(item)
}

// MissingAt returns the sites currently carrying missing writes for item,
// ascending (always empty under StrategyQuorum).
func (cl *Cluster) MissingAt(item types.ItemID) []types.SiteID {
	if cl.adaptive == nil {
		return nil
	}
	return cl.adaptive.MissingAt(item)
}

// ModeTransitions returns the cumulative missing-writes mode transitions
// (demotions, restorations); both zero under StrategyQuorum.
func (cl *Cluster) ModeTransitions() (demotions, restorations int) {
	if cl.adaptive == nil {
		return 0, 0
	}
	return cl.adaptive.Transitions()
}

// noteCommitApplied is the strategy bookkeeping hook a node's doCommit
// calls after applying a committed writeset — the live counterpart of the
// engine's hook. The first node to decide records which copies the commit
// reaches: a copy counts as reached if its site is up, in the decider's
// group, and bound to apply the write — it is the decider itself, it still
// holds the transaction's X lock (voted), or its store already carries the
// transaction's version (applied concurrently; stores and lock managers are
// mutex-guarded, so peeking across goroutines is safe). Under the
// missing-writes strategy copies that miss the write demote the item and
// later local applies resolve them; under the dynamic strategy the reached
// set becomes the item's new majority basis and later applies rejoin
// stragglers.
func (cl *Cluster) noteCommitApplied(n *Node, c *txnCtx) {
	if cl.adaptive == nil && cl.dynamic == nil {
		return
	}
	cl.wroteMu.Lock()
	first := !cl.recordedWrites[c.txn]
	cl.recordedWrites[c.txn] = true
	if c.txn > cl.maxRecorded {
		cl.maxRecorded = c.txn
	}
	// Bound the map: a commit's applies finish within a few timeout units,
	// so entries thousands of transactions behind the high-water mark are
	// dead weight. If an ancient commit ever did re-record, the worst case
	// is a spurious demotion that the next catch-up pass resolves.
	if len(cl.recordedWrites) > 8192 {
		for txn := range cl.recordedWrites {
			if txn+4096 < cl.maxRecorded {
				delete(cl.recordedWrites, txn)
			}
		}
	}
	cl.wroteMu.Unlock()
	version := uint64(c.txn) + 1
	if first {
		for _, item := range c.ws.Items() {
			ic, ok := cl.cfg.Assignment.Item(item)
			if !ok {
				continue
			}
			reached := make([]types.SiteID, 0, len(ic.Copies))
			for _, cp := range ic.Copies {
				if !cl.tr.Connected(n.id, cp.Site) {
					continue
				}
				peer := cl.nodes[cp.Site]
				applied := false
				if v, err := peer.store.Read(item); err == nil && v.Version >= version {
					applied = true
				}
				if cp.Site == n.id || applied || peer.locks.LockedBy(c.txn, item) {
					reached = append(reached, cp.Site)
				}
			}
			if cl.adaptive != nil && len(reached) < len(ic.Copies) {
				cl.adaptive.DegradeExcept(item, reached)
			}
			if cl.dynamic != nil {
				cl.dynamic.Reassign(item, reached)
			}
		}
	}
	for _, item := range c.ws.Items() {
		if n.store.Has(item) {
			cl.maybeResolve(item, n.id)
			cl.maybeRejoin(item, n.id)
		}
	}
}

// maybeResolve clears site's missing write for item once its copy has
// caught up to the highest version any copy holds (stores only ever hold
// committed values).
func (cl *Cluster) maybeResolve(item types.ItemID, site types.SiteID) {
	if cl.adaptive == nil || !cl.adaptive.IsMissing(item, site) {
		return
	}
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return
	}
	var max uint64
	for _, cp := range ic.Copies {
		if v, err := cl.nodes[cp.Site].store.Read(item); err == nil && v.Version > max {
			max = v.Version
		}
	}
	if v, err := cl.nodes[site].store.Read(item); err == nil && v.Version >= max {
		cl.adaptive.ResolveMissing(item, site)
	}
}

// maybeRejoin folds a caught-up copy back into its item's dynamic majority
// basis, mirroring the engine's hook: once site's copy holds the highest
// version any copy holds, the connected current copies plus the rejoiner
// reassign votes to include it. The tracker's epoch guard makes the
// optimistic call safe; no-op for basis members and under the other
// strategies.
func (cl *Cluster) maybeRejoin(item types.ItemID, site types.SiteID) {
	if cl.dynamic == nil || cl.dynamic.InBasis(item, site) {
		return
	}
	ic, ok := cl.cfg.Assignment.Item(item)
	if !ok {
		return
	}
	var max uint64
	versions := make(map[types.SiteID]uint64, len(ic.Copies))
	for _, cp := range ic.Copies {
		if v, err := cl.nodes[cp.Site].store.Read(item); err == nil {
			versions[cp.Site] = v.Version
			if v.Version > max {
				max = v.Version
			}
		}
	}
	if versions[site] < max {
		return // not caught up yet; a later CopyResp will retry
	}
	group := make([]types.SiteID, 0, len(ic.Copies))
	for _, cp := range ic.Copies {
		if cl.tr.Connected(site, cp.Site) && versions[cp.Site] == max {
			group = append(group, cp.Site)
		}
	}
	cl.dynamic.Reassign(item, group)
}

// VoteEpoch returns the version number of item's current dynamic vote table
// (always 0 under the static strategies).
func (cl *Cluster) VoteEpoch(item types.ItemID) uint64 {
	if cl.dynamic == nil {
		return 0
	}
	return cl.dynamic.Epoch(item)
}

// VotesNow returns item's currently effective vote table, ascending by
// site: the static assignment under StrategyQuorum and
// StrategyMissingWrites, the newest reassigned table under StrategyDynamic.
func (cl *Cluster) VotesNow(item types.ItemID) []voting.Copy {
	if cl.dynamic == nil {
		ic, ok := cl.cfg.Assignment.Item(item)
		if !ok {
			return nil
		}
		out := append([]voting.Copy(nil), ic.Copies...)
		sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
		return out
	}
	return cl.dynamic.VotesNow(item)
}

// VoteTransitions returns the cumulative dynamic-voting reassignment
// counters (tables installed, full-basis restorations); both zero under the
// other strategies.
func (cl *Cluster) VoteTransitions() (reassignments, restorations int) {
	if cl.dynamic == nil {
		return 0, 0
	}
	return cl.dynamic.Transitions()
}
