// Package live runs the same protocol automata as the deterministic engine
// on a real concurrent runtime: one goroutine per database site, Go channels
// as the message fabric, wall-clock timers for the protocol timeouts. It is
// the "deployment-shaped" counterpart of package engine — protocol logic is
// shared, only the hosting differs — and demonstrates that the automata are
// genuinely runtime-agnostic.
package live

import (
	"math/rand"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// Config parameterizes a live cluster.
type Config struct {
	// Assignment is the weighted-voting replica configuration.
	Assignment *voting.Assignment
	// Spec is the commit+termination protocol.
	Spec protocol.Spec
	// MinDelay/MaxDelay bound simulated propagation delay (wall clock).
	// Defaults 200µs–2ms, keeping 3T timeouts test-friendly.
	MinDelay, MaxDelay time.Duration
	// TimeoutBase is the protocol timeout unit T. Unlike the deterministic
	// simulator, wall-clock runs pay goroutine scheduling and marshalling
	// overhead on top of propagation delay, so T needs headroom; it defaults
	// to 4×MaxDelay.
	TimeoutBase time.Duration
	// Seed drives the delay randomness.
	Seed int64
	// MaxTerminationRounds caps termination retries (default 3).
	MaxTerminationRounds int
}

type event struct {
	env   *msg.Envelope
	timer *timerEvent
	stop  bool
}

type timerEvent struct {
	txn   types.TxnID
	role  protocol.Role
	gen   uint32
	token int
}

// Cluster is a set of live site goroutines.
type Cluster struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex // guards partition/crash state and rng
	group   map[types.SiteID]int
	down    map[types.SiteID]bool
	rng     *rand.Rand
	nextTxn types.TxnID

	nodes map[types.SiteID]*Node
	wg    sync.WaitGroup
}

// New builds and starts one goroutine per site in the assignment.
func New(cfg Config) *Cluster {
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 200*time.Microsecond, 2*time.Millisecond
	}
	if cfg.TimeoutBase == 0 {
		cfg.TimeoutBase = 4 * cfg.MaxDelay
	}
	if cfg.MaxTerminationRounds <= 0 {
		cfg.MaxTerminationRounds = 3
	}
	cl := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		group: make(map[types.SiteID]int),
		down:  make(map[types.SiteID]bool),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[types.SiteID]*Node),
	}
	seen := make(map[types.SiteID]bool)
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			seen[cp.Site] = true
		}
	}
	for id := range seen {
		n := newNode(id, cl)
		cl.nodes[id] = n
	}
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			cl.nodes[cp.Site].store.Init(item, 0)
		}
	}
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.loop(&cl.wg)
	}
	return cl
}

// Node returns a site's node.
func (cl *Cluster) Node(id types.SiteID) *Node { return cl.nodes[id] }

// T is the protocol timeout base.
func (cl *Cluster) T() time.Duration { return cl.cfg.TimeoutBase }

// Begin submits a transaction at the coordinator site and returns its ID.
func (cl *Cluster) Begin(coord types.SiteID, ws types.Writeset) types.TxnID {
	cl.mu.Lock()
	cl.nextTxn++
	txn := cl.nextTxn
	cl.mu.Unlock()
	participants := cl.cfg.Assignment.Participants(ws.Items())
	n := cl.nodes[coord]
	n.post(event{env: &msg.Envelope{From: coord, To: coord, Msg: beginMsg{txn: txn, ws: ws.Clone(), participants: participants}}})
	return txn
}

// beginMsg is an internal control message carried through the mailbox so all
// automaton access stays on the node goroutine.
type beginMsg struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
}

// Kind implements msg.Message (never marshalled).
func (beginMsg) Kind() msg.Kind { return msg.KindInvalid }

// Crash takes a site down (volatile state lost, WAL kept).
func (cl *Cluster) Crash(id types.SiteID) {
	cl.mu.Lock()
	cl.down[id] = true
	cl.mu.Unlock()
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: crashMsg{}}})
}

type crashMsg struct{}

func (crashMsg) Kind() msg.Kind { return msg.KindInvalid }

// Restart recovers a crashed site from its WAL.
func (cl *Cluster) Restart(id types.SiteID) {
	cl.mu.Lock()
	cl.down[id] = false
	cl.mu.Unlock()
	cl.nodes[id].post(event{env: &msg.Envelope{Msg: restartMsg{}}})
}

type restartMsg struct{}

func (restartMsg) Kind() msg.Kind { return msg.KindInvalid }

// Partition splits the network into groups; unlisted sites form a residual
// group.
func (cl *Cluster) Partition(groups ...[]types.SiteID) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.group = make(map[types.SiteID]int)
	for gi, g := range groups {
		for _, s := range g {
			cl.group[s] = gi + 1
		}
	}
}

// Heal reconnects the network.
func (cl *Cluster) Heal() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.group = make(map[types.SiteID]int)
}

func (cl *Cluster) connected(a, b types.SiteID) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.down[a] || cl.down[b] {
		return false
	}
	return cl.group[a] == cl.group[b]
}

func (cl *Cluster) delay() time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	lo, hi := cl.cfg.MinDelay, cl.cfg.MaxDelay
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(cl.rng.Int63n(int64(hi-lo)+1))
}

// send routes a message with delay, loss-on-partition and codec round-trip.
func (cl *Cluster) send(from, to types.SiteID, m msg.Message) {
	frame, err := msg.Marshal(m)
	if err != nil {
		return // internal control messages are never sent over the wire
	}
	decoded, err := msg.Unmarshal(frame)
	if err != nil {
		return
	}
	if !cl.connected(from, to) {
		return
	}
	d := cl.delay()
	time.AfterFunc(d, func() {
		if !cl.connected(from, to) {
			return
		}
		if n := cl.nodes[to]; n != nil {
			n.post(event{env: &msg.Envelope{From: from, To: to, Msg: decoded}})
		}
	})
}

// OutcomeAt reads txn's fate at one site from its WAL.
func (cl *Cluster) OutcomeAt(id types.SiteID, txn types.TxnID) types.Outcome {
	n := cl.nodes[id]
	n.walMu.Lock()
	recs, _ := n.log.Records()
	n.walMu.Unlock()
	img := wal.Replay(recs)[txn]
	if img == nil {
		return types.OutcomeUnknown
	}
	switch img.State {
	case types.StateCommitted:
		return types.OutcomeCommitted
	case types.StateAborted:
		return types.OutcomeAborted
	case types.StateWait, types.StatePC, types.StatePA:
		return types.OutcomeBlocked
	default:
		return types.OutcomeUnknown
	}
}

// WaitOutcome polls until every up site holding a copy reports the same
// terminal outcome for txn, or the deadline passes (returning the aggregate
// at that point: blocked/unknown if not uniform terminal). Crashed sites are
// excluded — they learn the outcome from their WAL and the termination
// protocol after Restart.
func (cl *Cluster) WaitOutcome(txn types.TxnID, deadline time.Duration) types.Outcome {
	limit := time.Now().Add(deadline)
	for {
		agg := types.OutcomeUnknown
		uniform := true
		for id := range cl.nodes {
			cl.mu.Lock()
			isDown := cl.down[id]
			cl.mu.Unlock()
			if isDown {
				continue
			}
			o := cl.OutcomeAt(id, txn)
			if o == types.OutcomeUnknown {
				continue
			}
			if !o.StateEquivalent().Terminal() {
				uniform = false
				break
			}
			if agg == types.OutcomeUnknown {
				agg = o
			} else if agg != o {
				return agg // mixed — caller detects via Violated
			}
		}
		if uniform && agg != types.OutcomeUnknown {
			return agg
		}
		if time.Now().After(limit) {
			if !uniform {
				return types.OutcomeBlocked
			}
			return agg
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Violated reports whether any transaction terminated inconsistently.
func (cl *Cluster) Violated(txn types.TxnID) bool {
	committed, aborted := false, false
	for id := range cl.nodes {
		switch cl.OutcomeAt(id, txn) {
		case types.OutcomeCommitted:
			committed = true
		case types.OutcomeAborted:
			aborted = true
		}
	}
	return committed && aborted
}

// Stop shuts down all node goroutines.
func (cl *Cluster) Stop() {
	for _, n := range cl.nodes {
		n.post(event{stop: true})
	}
	cl.wg.Wait()
}
