package live

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/transport/tcp"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// TestLiveGroupWALPipelinedCommit runs a cluster on real on-disk group-commit
// logs: every durability-gated send goes through the flusher, so this
// exercises the full async append → WaitDurable → deferred-send pipeline
// under concurrent transaction load, and then checks every decision reached
// the disk.
func TestLiveGroupWALPipelinedCommit(t *testing.T) {
	dir := t.TempDir()
	const txns = 16
	specs := make([]voting.ItemConfig, txns)
	for i := range specs {
		specs[i] = voting.Uniform(types.ItemID(fmt.Sprintf("k%02d", i)), 2, 3, 1, 2, 3, 4)
	}
	logs := make(map[types.SiteID]*wal.GroupLog)
	var logMu sync.Mutex
	cl := New(Config{
		Assignment:  voting.MustAssignment(specs...),
		Spec:        core.Spec{Variant: core.Protocol1},
		Seed:        11,
		TimeoutBase: 50 * time.Millisecond,
		WAL: func(id types.SiteID) wal.Log {
			l, err := wal.OpenGroupLog(filepath.Join(dir, fmt.Sprintf("site%d.wal", id)))
			if err != nil {
				t.Fatalf("site%d wal: %v", id, err)
			}
			logMu.Lock()
			logs[id] = l
			logMu.Unlock()
			return l
		},
	})
	// Disjoint writesets: every transaction must commit, and with 16 in
	// flight across 4 sites the group-commit batches stay deep.
	var wg sync.WaitGroup
	outcomes := make([]types.Outcome, txns)
	ids := make([]types.TxnID, txns)
	for i := 0; i < txns; i++ {
		item := types.ItemID(fmt.Sprintf("k%02d", i))
		coord := types.SiteID(i%4 + 1)
		ids[i] = cl.Begin(coord, types.Writeset{{Item: item, Value: int64(i)}})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = cl.WaitOutcome(ids[i], 10*time.Second)
		}(i)
	}
	wg.Wait()
	for i, o := range outcomes {
		if o != types.OutcomeCommitted {
			t.Errorf("txn %d outcome = %v, want committed", i, o)
		}
		if cl.Violated(ids[i]) {
			t.Errorf("txn %d violated atomicity", i)
		}
	}
	cl.Stop()
	for id, l := range logs {
		if err := l.Close(); err != nil {
			t.Errorf("close site%d wal: %v", id, err)
		}
	}
	// Reopen each log: the on-disk state must agree with the reported
	// outcomes (a committed transaction has its COMMIT record on every
	// participant log that decided).
	for id := range logs {
		l, err := wal.OpenFileLog(filepath.Join(dir, fmt.Sprintf("site%d.wal", id)))
		if err != nil {
			t.Fatalf("reopen site%d: %v", id, err)
		}
		recs, _ := l.Records()
		images := wal.Replay(recs)
		for i, o := range outcomes {
			im := images[ids[i]]
			if im == nil {
				continue // this site was not a participant or never decided
			}
			if o == types.OutcomeCommitted && im.State == types.StateAborted {
				t.Errorf("site%d logged ABORT for committed txn %d", id, ids[i])
			}
			if o == types.OutcomeAborted && im.State == types.StateCommitted {
				t.Errorf("site%d logged COMMIT for aborted txn %d", id, ids[i])
			}
		}
		l.Close()
	}
}

// TestServerGroupWALRestartRecovery kills a Server-shaped deployment (two
// single-site processes in one test) after a commit and restarts one site
// from its on-disk WAL: the restarted server must report the outcome and
// serve the committed value — the real-deployment counterpart of the
// cluster's simulated crash/restart tests.
func TestServerGroupWALRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	a := voting.MustAssignment(voting.Uniform("k", 1, 2, 1, 2))
	open := func(id types.SiteID) *wal.GroupLog {
		l, err := wal.OpenGroupLog(filepath.Join(dir, fmt.Sprintf("site%d.wal", id)))
		if err != nil {
			t.Fatalf("open wal %d: %v", id, err)
		}
		return l
	}
	newEp := func(id types.SiteID, addrs map[types.SiteID]string) *tcp.Endpoint {
		ep, err := tcp.New(id, "", addrs, tcp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	ep1 := newEp(1, nil)
	ep2 := newEp(2, nil)
	addrs := map[types.SiteID]string{1: ep1.Addr(), 2: ep2.Addr()}
	ep1.SetPeers(addrs)
	ep2.SetPeers(addrs)
	log1, log2 := open(1), open(2)
	cfg := ServerConfig{Assignment: a, Spec: core.Spec{Variant: core.Protocol1}, TimeoutBase: 30 * time.Millisecond}
	cfg1, cfg2 := cfg, cfg
	cfg1.WAL = log1
	cfg2.WAL = log2
	s1, err := NewServer(1, cfg1, ep1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(2, cfg2, ep2)
	if err != nil {
		t.Fatal(err)
	}
	txn := s1.Begin(types.Writeset{{Item: "k", Value: 77}})
	if o := s1.WaitOutcome(txn, 5*time.Second); o != types.OutcomeCommitted {
		t.Fatalf("outcome = %v, want committed", o)
	}
	// "Crash" site 1: stop the server and close its log, then restart from
	// the same file.
	s1.Stop()
	log1.Close()

	log1b := open(1)
	ep1b := newEp(1, addrs)
	cfg1.WAL = log1b
	s1b, err := NewServer(1, cfg1, ep1b)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s1b.Stop()
		log1b.Close()
		s2.Stop()
		log2.Close()
	}()
	if o := s1b.Outcome(txn); o != types.OutcomeCommitted {
		t.Fatalf("recovered outcome = %v, want committed", o)
	}
	if v, ver, ok := s1b.ReadItem("k"); !ok || v != 77 {
		t.Fatalf("recovered k = %d (version %d, ok=%v), want 77", v, ver, ok)
	}
}
