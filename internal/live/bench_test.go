package live

import (
	"testing"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/types"
)

// BenchmarkLiveCommit measures wall-clock commit latency on the concurrent
// runtime (goroutines + channels + real timers) — the deployment-shaped
// number, as opposed to the simulator's virtual-time latencies.
func BenchmarkLiveCommit(b *testing.B) {
	cl := New(Config{
		Assignment:  asgn(),
		Spec:        core.Spec{Variant: core.Protocol2},
		Seed:        1,
		TimeoutBase: 50 * time.Millisecond,
	})
	defer cl.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin(types.SiteID(i%4+1), types.Writeset{{Item: "x", Value: int64(i)}})
		if got := cl.WaitOutcome(txn, 10*time.Second); got != types.OutcomeCommitted {
			b.Fatalf("txn %d: %v", i, got)
		}
	}
}
