package live

import (
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// host is what a Node needs from whatever runtime hosts it. Two hosts exist:
// Cluster runs every site of an assignment in one process over a shared
// transport, and Server runs exactly one site — the qcommitd deployment
// shape, where each peer site lives in its own process and only the
// transport connects them. Node code must go through this interface for
// anything beyond its own state, so it cannot accidentally grow a dependency
// on cluster-global shared memory that a distributed host cannot provide.
type host interface {
	// spec is the commit+termination protocol the host runs.
	spec() protocol.Spec
	// assignment is the weighted-voting replica configuration.
	assignment() *voting.Assignment
	// timeoutBase is the protocol timeout unit T.
	timeoutBase() time.Duration
	// maxTermRounds caps termination retries.
	maxTermRounds() int
	// startTime anchors the host's monotonic protocol clock.
	startTime() time.Time
	// send routes a protocol message through the host's transport.
	send(from, to types.SiteID, m msg.Message)
	// notifyOutcome wakes outcome waiters after a local decision.
	notifyOutcome(txn types.TxnID)
	// noteCommitApplied, maybeResolve and maybeRejoin are the adaptive
	// strategy bookkeeping hooks. They peek across sites, so only the
	// single-process Cluster implements them meaningfully; a distributed
	// host is restricted to the static quorum strategy and no-ops them.
	noteCommitApplied(n *Node, c *txnCtx)
	maybeResolve(item types.ItemID, site types.SiteID)
	maybeRejoin(item types.ItemID, site types.SiteID)
}
