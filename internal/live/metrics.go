package live

import (
	"fmt"

	"qcommit/internal/obs"
	"qcommit/internal/types"
)

// nodeMetrics is one node's handle set on the shared registry. A nil
// *nodeMetrics (observability off) makes every recording method a single
// pointer check, so the zero-value cluster pays nothing.
type nodeMetrics struct {
	begun      *obs.Counter   // transactions begun with this site as coordinator
	committed  *obs.Counter   // local commit decisions applied
	aborted    *obs.Counter   // local abort decisions applied
	termRounds *obs.Counter   // termination-protocol election campaigns started
	commitNS   *obs.Histogram // coordinator begin→commit latency
	mboxDepth  *obs.Gauge     // events queued in the mailbox right now
	flushWait  *obs.Histogram // flusher block time per job waiting on the group fsync
}

// newNodeMetrics registers the node's metric set on the observer's registry
// under canonical qcommit_* names labelled by site; nil observer (or nil
// registry) yields nil.
func newNodeMetrics(o *obs.Observer, site types.SiteID) *nodeMetrics {
	reg := o.Reg()
	if reg == nil {
		return nil
	}
	l := func(name string) string { return fmt.Sprintf(`%s{site="%d"}`, name, site) }
	return &nodeMetrics{
		begun:      reg.Counter(l("qcommit_txns_begun_total")),
		committed:  reg.Counter(l("qcommit_txns_committed_total")),
		aborted:    reg.Counter(l("qcommit_txns_aborted_total")),
		termRounds: reg.Counter(l("qcommit_term_rounds_total")),
		commitNS:   reg.Histogram(l("qcommit_commit_ns"), obs.LatencyBounds()),
		mboxDepth:  reg.Gauge(l("qcommit_mailbox_depth")),
		flushWait:  reg.Histogram(l("qcommit_flush_release_wait_ns"), obs.LatencyBounds()),
	}
}

func (m *nodeMetrics) onBegin() {
	if m != nil {
		m.begun.Inc()
	}
}

func (m *nodeMetrics) onCommit() {
	if m != nil {
		m.committed.Inc()
	}
}

func (m *nodeMetrics) onAbort() {
	if m != nil {
		m.aborted.Inc()
	}
}

func (m *nodeMetrics) onTermRound() {
	if m != nil {
		m.termRounds.Inc()
	}
}

// spanFinish is one deferred span completion: the coordinator's decision is
// final only once its WAL record is durable, so the Finish rides the flush
// job alongside the durability-gated sends.
type spanFinish struct {
	txn     types.TxnID
	outcome string
}
