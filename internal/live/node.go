package live

import (
	"sync"
	"time"

	"qcommit/internal/election"
	"qcommit/internal/lockmgr"
	"qcommit/internal/msg"
	"qcommit/internal/obs"
	"qcommit/internal/protocol"
	"qcommit/internal/sim"
	"qcommit/internal/storage"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// txnCtx mirrors the engine's per-transaction bookkeeping. The dispatch
// logic here deliberately parallels internal/engine/site.go: the engine
// validates behaviour deterministically, this runtime executes the same
// decisions concurrently.
type txnCtx struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
	coordSite    types.SiteID

	auto map[protocol.Role]protocol.Automaton
	gen  map[protocol.Role]uint32

	// sampled caches whether this transaction carries a recording span, so
	// unsampled transactions never touch the span recorder's mutex after the
	// one Start/Sampled probe. beganNS is the coordinator's begin timestamp
	// backing the commit-latency histogram (0 when metrics are off or this
	// site is not the coordinator).
	sampled bool
	beganNS int64

	elect     *election.FSM
	nextEpoch uint32
	rounds    int

	outcome types.Outcome
}

func (c *txnCtx) terminal() bool {
	return c.outcome == types.OutcomeCommitted || c.outcome == types.OutcomeAborted
}

// Node is one live database site: a goroutine owning the site's durable
// state and automata. All automaton access happens on the node goroutine.
type Node struct {
	id types.SiteID
	h  host

	// The mailbox is an unbounded slice guarded by mboxMu/mboxCond rather
	// than a buffered channel: a channel's buffer puts a hard cap on
	// outstanding deliveries, and once it filled, post blocked its caller —
	// under heavy submit/churn load two nodes posting into each other's
	// full mailboxes from their own loops deadlocked the whole cluster.
	// After the loop exits (stop), posts are shed instead of blocking or
	// panicking, so message/timer callbacks racing Cluster.Stop are safe.
	mboxMu   sync.Mutex
	mboxCond *sync.Cond
	mbox     []event
	stopped  bool

	walMu sync.Mutex
	log   wal.Log
	alog  wal.AsyncLog // non-nil when log supports async group commit

	// Event-scoped pipelining state, owned by the node goroutine. When the
	// log is an AsyncLog, an event's WAL appends return a ticket instead of
	// blocking on the fsync; the sends and outcome notifications that the
	// protocol gates on durability are buffered here and handed to the
	// flusher goroutine at the end of the event. The event loop moves on to
	// the next transaction's event while the batch is being forced — that is
	// what lets independent transactions overlap their protocol rounds on
	// one site.
	pendingTicket wal.Ticket
	havePending   bool
	defRecs       []wal.Record
	defSends      []sendOp
	defNotifies   []types.TxnID
	defMarks      []types.TxnID // sampled txns whose appends await their durable mark
	defFinishes   []spanFinish  // sampled decisions whose spans close once durable

	flushMu   sync.Mutex
	flushCond *sync.Cond
	flushQ    []flushJob
	flushStop bool

	// view is the per-transaction outcome fold of the node's DURABLE log
	// records, maintained incrementally: synchronous appends apply on
	// return, asynchronous ones when their batch's fsync lands. Outcome
	// reads (WaitOutcome aggregation, Violated, Server.Outcome) hit this
	// map instead of replaying the whole log — replaying is O(history)
	// per probe and was the dominant cost of a long benchmark run.
	viewMu sync.Mutex
	view   map[types.TxnID]types.Outcome

	store *storage.Store
	locks *lockmgr.Manager

	// met and spans are the optional observability hooks (both nil-safe and
	// nil when the host was built without an Observer).
	met   *nodeMetrics
	spans *obs.Spans

	txns    map[types.TxnID]*txnCtx
	crashed bool
}

// sendOp is one deferred transport send.
type sendOp struct {
	from, to types.SiteID
	m        msg.Message
}

// flushJob is one event's durability-gated output: released in FIFO order
// once the WAL batch covering ticket is forced.
type flushJob struct {
	ticket   wal.Ticket
	recs     []wal.Record
	sends    []sendOp
	notifies []types.TxnID
	marks    []types.TxnID
	finishes []spanFinish
}

func newNode(id types.SiteID, h host, log wal.Log, lockShards int, o *obs.Observer) *Node {
	if log == nil {
		log = wal.NewMemLog()
	}
	n := &Node{
		id:    id,
		h:     h,
		log:   log,
		store: storage.NewStore(id),
		locks: lockmgr.NewSharded(id, lockShards),
		txns:  make(map[types.TxnID]*txnCtx),
		view:  make(map[types.TxnID]types.Outcome),
	}
	n.met = newNodeMetrics(o, id)
	n.spans = o.Spanner()
	n.locks.SetMetrics(lockmgr.NewMetrics(o.Reg(), id, n.locks.Shards()))
	if gl, ok := log.(*wal.GroupLog); ok {
		gl.RegisterMetrics(o.Reg(), id)
	}
	n.alog, _ = log.(wal.AsyncLog)
	if recs, err := log.Records(); err == nil && len(recs) > 0 {
		n.applyView(recs)
	}
	n.mboxCond = sync.NewCond(&n.mboxMu)
	n.flushCond = sync.NewCond(&n.flushMu)
	return n
}

// applyView folds durable records into the outcome view, with the same
// precedence Replay uses: terminal states are irrevocable.
func (n *Node) applyView(recs []wal.Record) {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	for _, rec := range recs {
		cur := n.view[rec.Txn]
		if cur == types.OutcomeCommitted || cur == types.OutcomeAborted {
			continue
		}
		switch rec.Type {
		case wal.RecCommit:
			n.view[rec.Txn] = types.OutcomeCommitted
		case wal.RecAbort, wal.RecVotedNo:
			n.view[rec.Txn] = types.OutcomeAborted
		case wal.RecVotedYes, wal.RecPC, wal.RecPA:
			n.view[rec.Txn] = types.OutcomeBlocked
		}
	}
}

// Store exposes the node's versioned store.
func (n *Node) Store() *storage.Store { return n.store }

// post enqueues an event for the node goroutine. It never blocks: the
// mailbox grows as needed, and events posted to a stopped node are shed.
func (n *Node) post(ev event) {
	n.mboxMu.Lock()
	defer n.mboxMu.Unlock()
	if n.stopped {
		return
	}
	n.mbox = append(n.mbox, ev)
	if n.met != nil {
		n.met.mboxDepth.Set(int64(len(n.mbox)))
	}
	n.mboxCond.Signal()
}

func (n *Node) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		n.mboxMu.Lock()
		for len(n.mbox) == 0 {
			n.mboxCond.Wait()
		}
		batch := n.mbox
		n.mbox = nil
		n.mboxMu.Unlock()
		if n.met != nil {
			n.met.mboxDepth.Set(0)
		}
		for _, ev := range batch {
			switch {
			case ev.stop:
				n.mboxMu.Lock()
				n.stopped = true
				n.mbox = nil // shed anything queued behind the stop
				n.mboxMu.Unlock()
				n.stopFlusher()
				return
			case ev.timer != nil:
				n.onTimer(ev.timer)
			case ev.env != nil:
				n.dispatch(*ev.env)
			}
			n.finishEvent()
		}
	}
}

// append writes rec through the node's log: asynchronously — recording the
// ticket in the event's pending context — on an AsyncLog, synchronously
// otherwise.
func (n *Node) append(rec wal.Record) {
	sampled := false
	if n.spans != nil {
		if c := n.txns[rec.Txn]; c != nil && c.sampled {
			sampled = true
			n.spans.Mark(uint64(rec.Txn), int(n.id), obs.StageWALAppend)
		}
	}
	if n.alog != nil {
		n.pendingTicket = n.alog.AppendAsync(rec)
		n.havePending = true
		n.defRecs = append(n.defRecs, rec)
		if sampled {
			n.defMarks = append(n.defMarks, rec.Txn)
		}
		return
	}
	n.walMu.Lock()
	//qlint:allow lockheld walMu exists solely to serialize appends; nothing acquires it while holding another lock, so the fsync cannot deadlock
	_ = n.log.Append(rec)
	n.walMu.Unlock()
	n.applyView([]wal.Record{rec})
	if sampled {
		n.spans.Mark(uint64(rec.Txn), int(n.id), obs.StageWALDurable)
	}
}

// notifyOutcome defers the notification behind a pending append (outcome
// reads see only durable records, so an early wake-up would be consumed
// before the decision is visible) or fires it immediately.
func (n *Node) notifyOutcome(txn types.TxnID) {
	if n.havePending {
		n.defNotifies = append(n.defNotifies, txn)
		return
	}
	n.h.notifyOutcome(txn)
}

// finishEvent closes the current event's pending context: the sends and
// notifications it gated on durability become one flush job. Events that
// appended nothing (or whose appends gate nothing) produce no job.
func (n *Node) finishEvent() {
	if !n.havePending {
		return
	}
	job := flushJob{
		ticket: n.pendingTicket, recs: n.defRecs, sends: n.defSends,
		notifies: n.defNotifies, marks: n.defMarks, finishes: n.defFinishes,
	}
	n.havePending = false
	n.defRecs, n.defSends, n.defNotifies = nil, nil, nil
	n.defMarks, n.defFinishes = nil, nil
	if len(job.recs) == 0 && len(job.sends) == 0 && len(job.notifies) == 0 {
		return
	}
	n.flushMu.Lock()
	if !n.flushStop {
		n.flushQ = append(n.flushQ, job)
	}
	n.flushMu.Unlock()
	n.flushCond.Signal()
}

// flusher releases durability-gated output in FIFO order: wait until the
// job's WAL batch is forced, then perform its sends and notifications. It
// runs only for AsyncLog-backed nodes.
func (n *Node) flusher(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		n.flushMu.Lock()
		for len(n.flushQ) == 0 && !n.flushStop {
			n.flushCond.Wait()
		}
		if n.flushStop {
			n.flushMu.Unlock()
			return
		}
		jobs := n.flushQ
		n.flushQ = nil
		n.flushMu.Unlock()
		for _, j := range jobs {
			var t0 int64
			if n.met != nil {
				t0 = time.Now().UnixNano()
			}
			if err := n.alog.WaitDurable(j.ticket); err != nil {
				continue // log closed or failed: shed, timeouts recover
			}
			if n.met != nil {
				n.met.flushWait.ObserveNS(time.Now().UnixNano() - t0)
			}
			// The records are durable now: publish them to the outcome view
			// BEFORE the notifications it gates, so a woken waiter observes
			// the decision.
			n.applyView(j.recs)
			for _, txn := range j.marks {
				n.spans.Mark(uint64(txn), int(n.id), obs.StageWALDurable)
			}
			for _, op := range j.sends {
				n.h.send(op.from, op.to, op.m)
			}
			for _, txn := range j.notifies {
				n.h.notifyOutcome(txn)
			}
			for _, fin := range j.finishes {
				n.spans.Finish(uint64(fin.txn), fin.outcome)
			}
		}
	}
}

// stopFlusher sheds queued jobs and stops the flusher goroutine.
func (n *Node) stopFlusher() {
	n.flushMu.Lock()
	n.flushStop = true
	n.flushQ = nil
	n.flushMu.Unlock()
	n.flushCond.Broadcast()
}

func (n *Node) onTimer(t *timerEvent) {
	if n.crashed {
		return
	}
	c := n.txns[t.txn]
	if c == nil || c.gen[t.role] != t.gen {
		return
	}
	a := c.auto[t.role]
	if a == nil {
		return
	}
	a.OnTimer(t.token, n.env(t.txn, t.role))
}

func (n *Node) ensureCtx(txn types.TxnID) *txnCtx {
	c := n.txns[txn]
	if c == nil {
		c = &txnCtx{
			txn:  txn,
			auto: make(map[protocol.Role]protocol.Automaton),
			gen:  make(map[protocol.Role]uint32),
		}
		n.txns[txn] = c
	}
	return c
}

func (n *Node) install(c *txnCtx, role protocol.Role, a protocol.Automaton) {
	c.gen[role]++
	c.auto[role] = a
	a.Start(n.env(c.txn, role))
}

func (n *Node) dispatch(e msg.Envelope) {
	switch m := e.Msg.(type) {
	case beginMsg:
		c := n.ensureCtx(m.txn)
		c.ws = m.ws
		c.participants = m.participants
		c.coordSite = n.id
		n.met.onBegin()
		if n.met != nil {
			c.beganNS = time.Now().UnixNano()
		}
		if n.spans.Start(uint64(m.txn)) {
			c.sampled = true
		}
		n.install(c, protocol.RoleCoordinator, n.h.spec().NewCoordinator(m.txn, m.ws, m.participants))
		return
	case crashMsg:
		n.crashed = true
		for _, c := range n.txns {
			for role := range c.auto {
				c.gen[role]++
				delete(c.auto, role)
			}
			if c.elect != nil {
				c.elect.Stop()
				c.elect = nil
			}
		}
		return
	case restartMsg:
		n.crashed = false
		n.recoverVolatile()
		// Anti-entropy: repair copies that missed writes while down.
		for _, item := range n.store.Items() {
			if ic, ok := n.h.assignment().Item(item); ok {
				for _, cp := range ic.Copies {
					if cp.Site != n.id {
						n.h.send(n.id, cp.Site, msg.CopyReq{Item: item})
					}
				}
			}
		}
		return
	default:
	}

	if n.crashed {
		return
	}
	txn := msg.TxnOf(e.Msg)
	switch m := e.Msg.(type) {
	case msg.CopyReq:
		if n.store.Has(m.Item) && !n.locks.Locked(m.Item) {
			if v, err := n.store.Read(m.Item); err == nil {
				n.h.send(n.id, e.From, msg.CopyResp{Item: m.Item, Value: v.Value, Version: v.Version})
			}
		}

	case msg.CopyResp:
		if n.store.Has(m.Item) {
			_ = n.store.Apply(m.Item, m.Value, m.Version)
			n.h.maybeResolve(m.Item, n.id)
			n.h.maybeRejoin(m.Item, n.id)
		}

	case msg.VoteReq:
		c := n.ensureCtx(txn)
		if c.terminal() {
			return
		}
		if len(c.ws) == 0 {
			c.ws = m.Writeset.Clone()
			c.participants = append([]types.SiteID(nil), m.Participants...)
			c.coordSite = m.Coord
		}
		if c.auto[protocol.RoleParticipant] == nil {
			// Adopt the coordinator's span if it sampled this transaction
			// (one recorder lookup per participant install; under the
			// distributed Server host the recorder never started it, so
			// spans stay coordinator-local there).
			if !c.sampled && n.spans.Sampled(uint64(txn)) {
				c.sampled = true
			}
			if c.sampled {
				n.spans.Mark(uint64(txn), int(n.id), obs.StageVoteReq)
			}
			n.install(c, protocol.RoleParticipant, n.h.spec().NewParticipant(txn, nil))
		}
		n.deliver(c, protocol.RoleParticipant, e)

	case msg.ElectionCall, msg.ElectionOK, msg.CoordAnnounce:
		c := n.txns[txn]
		if c == nil || c.terminal() {
			return
		}
		if c.elect == nil {
			epoch := uint32(0)
			if call, ok := m.(msg.ElectionCall); ok {
				epoch = uint32(call.Ballot >> 32)
			}
			n.startElection(c, epoch, false)
		}
		n.deliver(c, protocol.RoleElection, e)

	case msg.StateReq:
		c := n.txns[txn]
		if c == nil || c.auto[protocol.RoleParticipant] == nil {
			st := types.StateInitial
			if c != nil && c.terminal() {
				st = c.outcome.StateEquivalent()
			}
			n.h.send(n.id, e.From, msg.StateResp{Txn: txn, Epoch: m.Epoch, State: st})
			return
		}
		n.deliver(c, protocol.RoleParticipant, e)

	case msg.DecisionReq:
		c := n.txns[txn]
		if c == nil || c.auto[protocol.RoleParticipant] == nil {
			resp := msg.DecisionResp{Txn: txn, Uncommitted: true}
			if c != nil && c.terminal() {
				resp.Uncommitted = false
				if c.outcome == types.OutcomeCommitted {
					resp.Decision = types.DecisionCommit
				} else {
					resp.Decision = types.DecisionAbort
				}
			}
			n.h.send(n.id, e.From, resp)
			return
		}
		n.deliver(c, protocol.RoleParticipant, e)

	case msg.StateResp, msg.PCAck, msg.PAAck, msg.DecisionResp:
		c := n.txns[txn]
		if c == nil {
			return
		}
		if c.auto[protocol.RoleTerminator] != nil {
			n.deliver(c, protocol.RoleTerminator, e)
		} else if c.auto[protocol.RoleCoordinator] != nil {
			n.deliver(c, protocol.RoleCoordinator, e)
		}

	case msg.VoteResp, msg.Done:
		if c := n.txns[txn]; c != nil {
			if c.sampled {
				if _, isVote := e.Msg.(msg.VoteResp); isVote {
					n.spans.Mark(uint64(txn), int(e.From), obs.StageVote)
				}
			}
			n.deliver(c, protocol.RoleCoordinator, e)
		}

	case msg.PrepareToCommit, msg.PrepareToAbort, msg.Commit, msg.Abort:
		c := n.txns[txn]
		if c == nil {
			return
		}
		if c.auto[protocol.RoleParticipant] != nil {
			n.deliver(c, protocol.RoleParticipant, e)
			return
		}
		switch e.Msg.(type) {
		case msg.Commit:
			n.doCommit(c)
		case msg.Abort:
			n.doAbort(c)
		}
	}
}

func (n *Node) deliver(c *txnCtx, role protocol.Role, e msg.Envelope) {
	if a := c.auto[role]; a != nil {
		a.OnMessage(e.From, e.Msg, n.env(c.txn, role))
	}
}

func (n *Node) startElection(c *txnCtx, epoch uint32, campaign bool) {
	if c.terminal() {
		return
	}
	if campaign {
		if c.rounds >= n.h.maxTermRounds() {
			return
		}
		c.rounds++
		n.met.onTermRound()
		if c.sampled {
			n.spans.Mark(uint64(c.txn), int(n.id), obs.StageTermRound)
		}
	}
	if epoch < c.nextEpoch {
		epoch = c.nextEpoch
	}
	c.nextEpoch = epoch + 1
	peers := c.participants
	if len(peers) == 0 {
		peers = []types.SiteID{n.id}
	}
	f := election.New(c.txn, n.id, peers, epoch)
	f.OnElected = func(uint32) {
		term := n.h.spec().NewTerminator(c.txn, c.ws, c.participants, epoch)
		n.install(c, protocol.RoleTerminator, term)
	}
	f.OnRetry = func() {
		c.elect = nil
		n.startElection(c, c.nextEpoch, true)
	}
	c.elect = f
	c.gen[protocol.RoleElection]++
	c.auto[protocol.RoleElection] = f
	if campaign {
		f.Start(n.env(c.txn, protocol.RoleElection))
	}
}

func (n *Node) lockLocalCopies(txn types.TxnID, ws types.Writeset) bool {
	var taken []types.ItemID
	for _, x := range ws.Items() {
		if !n.store.Has(x) {
			continue
		}
		if err := n.locks.TryAcquire(txn, x, lockmgr.Exclusive); err != nil {
			for _, y := range taken {
				n.locks.Release(txn, y)
			}
			return false
		}
		taken = append(taken, x)
	}
	return true
}

func (n *Node) recoverVolatile() {
	n.walMu.Lock()
	recs, _ := n.log.Records()
	n.walMu.Unlock()
	for txn, im := range wal.Replay(recs) {
		c := n.ensureCtx(txn)
		if len(c.ws) == 0 {
			c.ws = im.Writeset.Clone()
		}
		if len(c.participants) == 0 {
			c.participants = append([]types.SiteID(nil), im.Participants...)
		}
		c.coordSite = im.Coord
		switch im.State {
		case types.StateCommitted:
			c.outcome = types.OutcomeCommitted
		case types.StateAborted:
			c.outcome = types.OutcomeAborted
		case types.StateWait, types.StatePC, types.StatePA:
			n.lockLocalCopies(txn, c.ws)
			n.install(c, protocol.RoleParticipant, n.h.spec().NewParticipant(txn, im))
		}
	}
}

func (n *Node) doCommit(c *txnCtx) {
	if c.terminal() {
		return
	}
	if c.sampled {
		n.spans.Mark(uint64(c.txn), int(n.id), obs.StageDecision)
	}
	n.append(wal.Record{Type: wal.RecCommit, Txn: c.txn})
	n.store.ApplyWriteset(c.ws, uint64(c.txn)+1)
	n.h.noteCommitApplied(n, c)
	n.locks.ReleaseAll(c.txn)
	c.outcome = types.OutcomeCommitted
	n.quiesce(c)
	n.met.onCommit()
	n.noteDecision(c, "committed")
	n.notifyOutcome(c.txn)
}

func (n *Node) doAbort(c *txnCtx) {
	if c.terminal() {
		return
	}
	if c.sampled {
		n.spans.Mark(uint64(c.txn), int(n.id), obs.StageDecision)
	}
	n.append(wal.Record{Type: wal.RecAbort, Txn: c.txn})
	n.locks.ReleaseAll(c.txn)
	c.outcome = types.OutcomeAborted
	n.quiesce(c)
	n.met.onAbort()
	n.noteDecision(c, "aborted")
	n.notifyOutcome(c.txn)
}

// noteDecision records the coordinator-side terminal observability: the
// begin→decision latency sample (commits only) and the span completion,
// which defers behind the decision record's pending append so a finished
// span always describes a durable outcome.
func (n *Node) noteDecision(c *txnCtx, outcome string) {
	if c.coordSite != n.id {
		return
	}
	if n.met != nil && c.beganNS != 0 && outcome == "committed" {
		n.met.commitNS.ObserveNS(time.Now().UnixNano() - c.beganNS)
	}
	if !c.sampled {
		return
	}
	if n.havePending {
		n.defFinishes = append(n.defFinishes, spanFinish{txn: c.txn, outcome: outcome})
		return
	}
	n.spans.Finish(uint64(c.txn), outcome)
}

func (n *Node) quiesce(c *txnCtx) {
	if c.elect != nil {
		c.elect.Stop()
		c.elect = nil
	}
	c.gen[protocol.RoleParticipant]++
	delete(c.auto, protocol.RoleParticipant)
	c.gen[protocol.RoleElection]++
	delete(c.auto, protocol.RoleElection)
}

// env builds the protocol.Env bound to (node, txn, role, generation).
func (n *Node) env(txn types.TxnID, role protocol.Role) *nodeEnv {
	c := n.ensureCtx(txn)
	return &nodeEnv{node: n, txn: txn, role: role, gen: c.gen[role]}
}

type nodeEnv struct {
	node *Node
	txn  types.TxnID
	role protocol.Role
	gen  uint32
}

var _ protocol.Env = (*nodeEnv)(nil)

func (e *nodeEnv) Self() types.SiteID { return e.node.id }

func (e *nodeEnv) Now() sim.Time { return sim.Time(time.Since(e.node.h.startTime())) }

func (e *nodeEnv) T() sim.Duration { return sim.Duration(e.node.h.timeoutBase()) }

func (e *nodeEnv) Assignment() *voting.Assignment { return e.node.h.assignment() }

// Send routes through the host, unless this event has a WAL append in
// flight — then the send joins the event's flush job and goes out only once
// the append is durable, preserving force-before-send.
func (e *nodeEnv) Send(to types.SiteID, m msg.Message) {
	n := e.node
	if n.havePending {
		n.defSends = append(n.defSends, sendOp{from: n.id, to: to, m: m})
		return
	}
	n.h.send(n.id, to, m)
}

func (e *nodeEnv) SetTimer(d sim.Duration, token int) {
	n := e.node
	t := &timerEvent{txn: e.txn, role: e.role, gen: e.gen, token: token}
	time.AfterFunc(time.Duration(d), func() {
		n.post(event{timer: t}) // stop-safe: a stopped node sheds the event
	})
}

func (e *nodeEnv) Append(rec wal.Record) { e.node.append(rec) }

func (e *nodeEnv) Commit(txn types.TxnID) {
	if c := e.node.txns[txn]; c != nil {
		e.node.doCommit(c)
	}
}

func (e *nodeEnv) Abort(txn types.TxnID) {
	if c := e.node.txns[txn]; c != nil {
		e.node.doAbort(c)
	}
}

func (e *nodeEnv) Block(types.TxnID) {}

func (e *nodeEnv) RequestTermination(txn types.TxnID) {
	n := e.node
	c := n.txns[txn]
	if c == nil || c.terminal() {
		return
	}
	if c.elect != nil && !c.elect.Won() {
		return
	}
	n.startElection(c, c.nextEpoch, true)
}

func (e *nodeEnv) TerminatorDone(types.TxnID) {}

func (e *nodeEnv) AcquireLocks(txn types.TxnID) bool {
	n := e.node
	c := n.txns[txn]
	if c == nil {
		return false
	}
	ok := n.lockLocalCopies(txn, c.ws)
	if ok && c.sampled {
		n.spans.Mark(uint64(txn), int(n.id), obs.StageLocks)
	}
	return ok
}

func (e *nodeEnv) Tracef(string, ...any) {}
