package live

import (
	"testing"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func asgn() *voting.Assignment {
	return voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	)
}

func specs() []protocol.Spec {
	sites := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	return []protocol.Spec{
		twopc.Spec{},
		threepc.Spec{},
		skeenq.Uniform(sites, 5, 4),
		core.Spec{Variant: core.Protocol1},
		core.Spec{Variant: core.Protocol2},
	}
}

func TestLiveFailureFreeCommit(t *testing.T) {
	for _, spec := range specs() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			cl := New(Config{Assignment: asgn(), Spec: spec, Seed: 1, TimeoutBase: 30 * time.Millisecond})
			defer cl.Stop()
			ws := types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}}
			txn := cl.Begin(1, ws)
			got := cl.WaitOutcome(txn, 3*time.Second)
			if got != types.OutcomeCommitted {
				t.Fatalf("outcome = %v, want committed", got)
			}
			if cl.Violated(txn) {
				t.Fatal("atomicity violated")
			}
			v, err := cl.Node(2).Store().Read("x")
			if err != nil || v.Value != 42 {
				t.Errorf("x at site2 = %+v, %v", v, err)
			}
		})
	}
}

func TestLiveSequentialTransactions(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol2}, Seed: 2, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	for i := 0; i < 5; i++ {
		txn := cl.Begin(types.SiteID(i%4+1), types.Writeset{{Item: "x", Value: int64(i)}})
		if got := cl.WaitOutcome(txn, 3*time.Second); got != types.OutcomeCommitted {
			t.Fatalf("txn %d outcome = %v", i, got)
		}
	}
	v, err := cl.Node(1).Store().Read("x")
	if err != nil || v.Value != 4 {
		t.Errorf("final x = %+v, %v; want 4", v, err)
	}
}

func TestLiveConcurrentDisjointTransactions(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 3, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	t1 := cl.Begin(1, types.Writeset{{Item: "x", Value: 10}})
	t2 := cl.Begin(5, types.Writeset{{Item: "y", Value: 20}})
	if got := cl.WaitOutcome(t1, 3*time.Second); got != types.OutcomeCommitted {
		t.Errorf("t1 = %v", got)
	}
	if got := cl.WaitOutcome(t2, 3*time.Second); got != types.OutcomeCommitted {
		t.Errorf("t2 = %v", got)
	}
}

func TestLiveConflictingTransactionsTerminateSafely(t *testing.T) {
	// Two transactions writing x race for the same copy locks. The no-wait
	// policy makes a participant that cannot lock vote no, so depending on
	// the interleaving one commits and one aborts, or both abort — but both
	// always terminate and neither violates atomicity.
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 4, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	t1 := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}})
	t2 := cl.Begin(2, types.Writeset{{Item: "x", Value: 2}})
	o1 := cl.WaitOutcome(t1, 3*time.Second)
	o2 := cl.WaitOutcome(t2, 3*time.Second)
	if cl.Violated(t1) || cl.Violated(t2) {
		t.Fatal("atomicity violated")
	}
	for i, o := range []types.Outcome{o1, o2} {
		if o != types.OutcomeCommitted && o != types.OutcomeAborted {
			t.Errorf("t%d outcome = %v, want a terminal decision", i+1, o)
		}
	}
	if o1 == types.OutcomeCommitted && o2 == types.OutcomeCommitted {
		t.Error("both committed despite a write-write conflict on every copy")
	}
}

func TestLiveCoordinatorCrashTerminationAborts(t *testing.T) {
	// Crash the coordinator immediately after submitting: participants that
	// never heard VOTE-REQ stay in q, so any termination round aborts.
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 5,
		MinDelay: 2 * time.Millisecond, MaxDelay: 8 * time.Millisecond})
	defer cl.Stop()
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 9}, {Item: "y", Value: 8}})
	time.Sleep(10 * time.Millisecond) // let VOTE-REQs reach the participants
	cl.Crash(1)
	got := cl.WaitOutcome(txn, 5*time.Second)
	if got != types.OutcomeAborted && got != types.OutcomeCommitted {
		// Depending on how far the protocol got, survivors may also have
		// committed (crash after distribution started); blocked would mean
		// the termination protocol failed to run.
		t.Fatalf("outcome = %v, want a terminal decision", got)
	}
	if cl.Violated(txn) {
		t.Fatal("atomicity violated")
	}
}

func TestLivePartitionThenHeal(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol2}, Seed: 6, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	cl.Partition([]types.SiteID{1, 2, 3, 4}, []types.SiteID{5, 6, 7, 8})
	// A transaction writing x and y cannot collect votes across the split;
	// it must abort (vote timeout) or block, never violate.
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}})
	got := cl.WaitOutcome(txn, 5*time.Second)
	if cl.Violated(txn) {
		t.Fatal("atomicity violated")
	}
	if got == types.OutcomeCommitted {
		t.Fatal("committed across a partition without y votes")
	}
	cl.Heal()
	// A fresh transaction after healing commits.
	txn2 := cl.Begin(1, types.Writeset{{Item: "x", Value: 3}, {Item: "y", Value: 4}})
	if got := cl.WaitOutcome(txn2, 5*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("post-heal txn = %v", got)
	}
}

func TestLiveCrashRecoveryLearnsOutcome(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol2}, Seed: 7, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 5}, {Item: "y", Value: 6}})
	if got := cl.WaitOutcome(txn, 3*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("outcome = %v", got)
	}
	cl.Crash(8)
	cl.Restart(8)
	deadline := time.Now().Add(3 * time.Second)
	for cl.OutcomeAt(8, txn) != types.OutcomeCommitted {
		if time.Now().After(deadline) {
			t.Fatalf("site8 never relearned the outcome: %v", cl.OutcomeAt(8, txn))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveMissingWritesStrategy exercises the adaptive strategy's wiring on
// the concurrent runtime: a failure-free commit reaches every copy and keeps
// the item optimistic; a degraded item is healed by the Heal-time catch-up
// pass (CopyReq/CopyResp + resolution) and returns to optimistic mode.
func TestLiveMissingWritesStrategy(t *testing.T) {
	cl := New(Config{
		Assignment: asgn(),
		Strategy:   voting.StrategyMissingWrites,
		Spec:       core.Spec{Variant: core.Protocol1},
		Seed:       31, TimeoutBase: 30 * time.Millisecond,
	})
	defer cl.Stop()
	if cl.Strategy() != voting.StrategyMissingWrites {
		t.Fatalf("Strategy() = %v", cl.Strategy())
	}
	ws := types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}}
	txn := cl.Begin(1, ws)
	if got := cl.WaitOutcome(txn, 5*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("outcome = %v, want committed", got)
	}
	// Nodes may still be distributing/applying the decision when WaitOutcome
	// returns (it reads WALs); allow the applies a moment to land before
	// asserting no copy was recorded missing.
	deadline := time.Now().Add(2 * time.Second)
	for cl.ItemMode("x") != voting.Optimistic || cl.ItemMode("y") != voting.Optimistic {
		if time.Now().After(deadline) {
			t.Fatalf("failure-free commit left modes %v/%v, missing %v/%v",
				cl.ItemMode("x"), cl.ItemMode("y"), cl.MissingAt("x"), cl.MissingAt("y"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Degrade x by hand (the deterministic engine covers the real
	// commit-misses-a-copy path) and let the heal-time catch-up pass
	// resolve it: site 4's copy already holds the newest version, so the
	// CopyResp round-trip restores optimistic mode.
	cl.adaptive.DegradeExcept("x", []types.SiteID{1, 2, 3})
	if cl.ItemMode("x") != voting.Pessimistic {
		t.Fatal("degraded item not pessimistic")
	}
	if missing := cl.MissingAt("x"); len(missing) != 1 || missing[0] != 4 {
		t.Fatalf("missing = %v, want [4]", missing)
	}
	cl.Heal()
	deadline = time.Now().Add(2 * time.Second)
	for cl.ItemMode("x") != voting.Optimistic {
		if time.Now().After(deadline) {
			t.Fatalf("heal catch-up did not restore optimistic mode, missing %v", cl.MissingAt("x"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d, r := cl.ModeTransitions(); d != 1 || r != 1 {
		t.Errorf("transitions = %d/%d, want 1/1", d, r)
	}
}

// TestLiveDynamicStrategy exercises dynamic vote reassignment on the
// concurrent runtime: a failure-free commit keeps the full basis (no epoch
// churn); a hand-shrunk basis is restored by the Heal-time catch-up pass
// (CopyReq/CopyResp + rejoin reassignment).
func TestLiveDynamicStrategy(t *testing.T) {
	cl := New(Config{
		Assignment: asgn(),
		Strategy:   voting.StrategyDynamic,
		Spec:       core.Spec{Variant: core.Protocol1},
		Seed:       37, TimeoutBase: 30 * time.Millisecond,
	})
	defer cl.Stop()
	if cl.Strategy() != voting.StrategyDynamic {
		t.Fatalf("Strategy() = %v", cl.Strategy())
	}
	ws := types.Writeset{{Item: "x", Value: 42}, {Item: "y", Value: 7}}
	txn := cl.Begin(1, ws)
	if got := cl.WaitOutcome(txn, 5*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("outcome = %v, want committed", got)
	}
	// Applies may still be landing when WaitOutcome returns; the full-reach
	// commit must leave the basis whole either way.
	deadline := time.Now().Add(2 * time.Second)
	for len(cl.VotesNow("x")) != 4 || cl.VoteEpoch("x") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("failure-free commit churned the basis: epoch %d votes %v",
				cl.VoteEpoch("x"), cl.VotesNow("x"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Shrink the basis by hand (the deterministic engine covers the real
	// commit-misses-a-copy path) and let the heal-time catch-up pass
	// restore it: site 4's copy already holds the newest version, so the
	// CopyResp round-trip rejoins it.
	if !cl.dynamic.Reassign("x", []types.SiteID{1, 2, 3}) {
		t.Fatal("hand shrink rejected")
	}
	if cl.dynamic.InBasis("x", 4) {
		t.Fatal("shrunk basis still contains site 4")
	}
	cl.Heal()
	deadline = time.Now().Add(2 * time.Second)
	for len(cl.VotesNow("x")) != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("heal catch-up did not restore the basis: epoch %d votes %v",
				cl.VoteEpoch("x"), cl.VotesNow("x"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if re, ro := cl.VoteTransitions(); re != 2 || ro != 1 {
		t.Errorf("transitions = %d/%d, want 2/1", re, ro)
	}
}

// TestLivePostAfterStopShedsInsteadOfBlocking is the mailbox regression
// test: posting to a stopped cluster must neither panic nor block, even far
// past the old 1024-entry channel buffer. Before the unbounded stop-safe
// mailbox, the 1025th post would hang forever and a post racing Stop could
// hit a closed channel.
func TestLivePostAfterStopShedsInsteadOfBlocking(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 8, TimeoutBase: 20 * time.Millisecond})
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}})
	cl.WaitOutcome(txn, 3*time.Second)
	cl.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		n := cl.Node(1)
		for i := 0; i < 5000; i++ {
			n.post(event{env: &msg.Envelope{From: 2, To: 1, Msg: msg.CopyReq{Item: "x"}}})
		}
		// Public entry points must be equally safe after Stop.
		cl.Begin(2, types.Writeset{{Item: "x", Value: 2}})
		cl.Crash(3)
		cl.Restart(3)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("posting to a stopped cluster blocked")
	}
}

// TestLiveStopRacesTimersAndMessages: stop the cluster while transactions,
// timers and crash churn are in full flight. Run under -race this pins the
// stop-safety of the mailbox (the old channel could be sent to after the
// loop exited, blocking the sender forever).
func TestLiveStopRacesTimersAndMessages(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol2}, Seed: seed,
			MinDelay: 100 * time.Microsecond, MaxDelay: 1 * time.Millisecond})
		for i := 0; i < 8; i++ {
			cl.Begin(types.SiteID(i%4+1), types.Writeset{{Item: "x", Value: int64(i)}, {Item: "y", Value: int64(i)}})
		}
		cl.Crash(2)
		cl.Restart(2)
		// Stop immediately: in-flight sends, AfterFunc timers and the churn
		// above race the node shutdowns.
		cl.Stop()
	}
}

// TestLiveMailboxBacklogDoesNotDeadlock floods one node with far more
// events than the old channel buffer held while its goroutine is running
// normally — the cross-node flood that used to deadlock the cluster under
// heavy submit load now just grows the mailbox.
func TestLiveMailboxBacklogDoesNotDeadlock(t *testing.T) {
	// T must outlast draining the flood: the post-flood VoteReqs queue
	// behind ~20k CopyResp events in the peer mailboxes, and a vote-phase
	// timeout would abort the transaction (a liveness test shouldn't hinge
	// on drain speed).
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 9, TimeoutBase: 300 * time.Millisecond})
	defer cl.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := cl.Node(1)
		for i := 0; i < 20000; i++ {
			n.post(event{env: &msg.Envelope{From: 2, To: 1, Msg: msg.CopyReq{Item: "x"}}})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("mailbox flood blocked the poster")
	}
	// The node is still alive and serving after the flood.
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 5}})
	if got := cl.WaitOutcome(txn, 5*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("post-flood transaction = %v", got)
	}
}

// TestLiveWaitOutcomeWakesOnDecision is the WaitOutcome regression test:
// waiters are notified per transaction instead of sleep-polling, so a
// decided transaction returns well before a generous deadline, and
// concurrent waiters all see it.
func TestLiveWaitOutcomeWakesOnDecision(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 10, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 3}})
	results := make(chan types.Outcome, 4)
	start := time.Now()
	for i := 0; i < 4; i++ {
		go func() { results <- cl.WaitOutcome(txn, 30*time.Second) }()
	}
	for i := 0; i < 4; i++ {
		if got := <-results; got != types.OutcomeCommitted {
			t.Fatalf("waiter %d outcome = %v", i, got)
		}
	}
	// The commit itself takes a few timeout units; 30s minus slack proves
	// the waiters woke on notification rather than deadline.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("waiters took %v, deadline-bound rather than notification-woken", elapsed)
	}
}

// TestLiveWaitOutcomeDeadlineIsExact: with no decision coming, WaitOutcome
// honors the requested deadline (timer-based) instead of quantizing to a
// poll interval, and reports the aggregate at that instant.
func TestLiveWaitOutcomeDeadlineIsExact(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 11, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	// Transaction 999 does not exist: nothing will ever decide it.
	start := time.Now()
	got := cl.WaitOutcome(types.TxnID(999), 50*time.Millisecond)
	elapsed := time.Since(start)
	if got != types.OutcomeUnknown {
		t.Fatalf("undecidable txn outcome = %v, want unknown", got)
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("WaitOutcome returned after %v, before the %v deadline", elapsed, 50*time.Millisecond)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("WaitOutcome overshot the deadline by %v", elapsed-50*time.Millisecond)
	}
	// The watch entry must not outlive the wait: an unnotified transaction
	// would otherwise leak one map entry per WaitOutcome call forever.
	cl.noteMu.Lock()
	leaked := len(cl.notes)
	cl.noteMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d outcome watch entries leaked after WaitOutcome returned", leaked)
	}
}
