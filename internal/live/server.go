package live

import (
	"fmt"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/obs"
	"qcommit/internal/protocol"
	"qcommit/internal/storage"
	"qcommit/internal/transport"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

// ServerConfig parameterizes a single-site server.
type ServerConfig struct {
	// Assignment is the cluster-wide replica configuration; every process
	// of a deployment must be started with the same one.
	Assignment *voting.Assignment
	// Spec is the commit+termination protocol.
	Spec protocol.Spec
	// TimeoutBase is the protocol timeout unit T (default 50ms — sockets
	// pay real scheduling and kernel latency, so the default is far above
	// the inproc fabric's).
	TimeoutBase time.Duration
	// MaxTerminationRounds caps termination retries (default 3).
	MaxTerminationRounds int
	// InitialValues seeds the store copies this site holds.
	InitialValues map[types.ItemID]int64
	// WAL optionally supplies this site's log (nil means a fresh MemLog,
	// durable only for the process lifetime). A non-empty log triggers
	// recovery on startup: terminal transactions are replayed and
	// in-doubt ones resume their participant automata. Supplying a
	// wal.AsyncLog (e.g. wal.GroupLog) additionally enables commit
	// pipelining, as in Config.WAL. The caller retains ownership and
	// closes the log after Stop.
	WAL wal.Log
	// LockShards overrides the lock-manager shard count (0 means
	// lockmgr.DefaultShards).
	LockShards int
	// Obs optionally attaches an observability sink, as in Config.Obs. On a
	// Server the span recorder sees only this process's timeline, so traces
	// cover transactions this site coordinates.
	Obs *obs.Observer
}

// Server hosts ONE site of an assignment over a transport — the deployment
// shape of the qcommitd node binary, where every peer site is a separate
// process and only the wire connects them. It runs the exact same Node (and
// therefore the exact same protocol automata) as Cluster; the difference is
// the host: a Server has no visibility into peer stores or lock tables, so
// it is restricted to the static quorum strategy and no-ops the adaptive
// bookkeeping hooks that require cluster-global shared memory.
type Server struct {
	id    types.SiteID
	cfg   ServerConfig
	start time.Time
	tr    transport.Transport
	node  *Node
	wg    sync.WaitGroup

	mu  sync.Mutex // guards seq
	seq uint32

	noteMu sync.Mutex
	notes  map[types.TxnID]*outcomeNote
}

var _ host = (*Server)(nil)

// NewServer builds and starts the server for site id. It binds the transport
// and takes ownership of it (Stop closes it).
func NewServer(id types.SiteID, cfg ServerConfig, tr transport.Transport) (*Server, error) {
	if cfg.Assignment == nil {
		return nil, fmt.Errorf("live: ServerConfig.Assignment is required")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("live: ServerConfig.Spec is required")
	}
	if cfg.TimeoutBase <= 0 {
		cfg.TimeoutBase = 50 * time.Millisecond
	}
	if cfg.MaxTerminationRounds <= 0 {
		cfg.MaxTerminationRounds = 3
	}
	s := &Server{
		id:    id,
		cfg:   cfg,
		start: time.Now(),
		tr:    tr,
		notes: make(map[types.TxnID]*outcomeNote),
	}
	s.node = newNode(id, s, cfg.WAL, cfg.LockShards, cfg.Obs)
	for _, item := range cfg.Assignment.Items() {
		ic, _ := cfg.Assignment.Item(item)
		for _, cp := range ic.Copies {
			if cp.Site == id {
				s.node.store.Init(item, cfg.InitialValues[item])
			}
		}
	}
	// A restarted process recovers from its surviving WAL before serving:
	// terminal outcomes are reapplied, in-doubt transactions re-lock their
	// copies and resume the protocol. Safe here — the node goroutine has
	// not started, and any sends the recovery defers are flushed normally.
	if recs, err := s.node.log.Records(); err == nil && len(recs) > 0 {
		// Unlike a simulated crash, a process restart loses the store, so
		// committed writesets are reapplied from the log before the usual
		// volatile-state recovery resumes in-doubt transactions.
		for _, im := range wal.Replay(recs) {
			if im.State != types.StateCommitted {
				continue
			}
			for _, u := range im.Writeset {
				if s.node.store.Has(u.Item) {
					_ = s.node.store.Apply(u.Item, u.Value, uint64(im.Txn)+1)
				}
			}
		}
		s.node.recoverVolatile()
		s.node.finishEvent()
	}
	s.wg.Add(1)
	go s.node.loop(&s.wg)
	if s.node.alog != nil {
		s.wg.Add(1)
		go s.node.flusher(&s.wg)
	}
	tr.Bind(s.deliver)
	return s, nil
}

// deliver is the transport's delivery callback.
func (s *Server) deliver(env msg.Envelope) {
	if env.To != s.id {
		return
	}
	s.node.post(event{env: &env})
}

// Self returns the hosted site.
func (s *Server) Self() types.SiteID { return s.id }

// Node exposes the hosted node (stores are safe to read cross-goroutine).
func (s *Server) Node() *Node { return s.node }

// Transport exposes the server's message fabric.
func (s *Server) Transport() transport.Transport { return s.tr }

// T is the protocol timeout base.
func (s *Server) T() time.Duration { return s.cfg.TimeoutBase }

// Begin submits a transaction coordinated by this site and returns its ID.
// IDs embed the coordinator site in the high half, so transactions begun at
// different processes never collide.
func (s *Server) Begin(ws types.Writeset) types.TxnID {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	txn := types.TxnID(uint64(uint32(s.id))<<32 | uint64(seq))
	participants := s.cfg.Assignment.Participants(ws.Items())
	s.node.post(event{env: &msg.Envelope{From: s.id, To: s.id, Msg: beginMsg{txn: txn, ws: ws.Clone(), participants: participants}}})
	return txn
}

// Outcome reads txn's fate from this site's WAL.
func (s *Server) Outcome(txn types.TxnID) types.Outcome {
	return walOutcome(s.node, txn)
}

// WaitOutcome blocks until this site has durably decided txn, or the
// deadline passes (returning the local aggregate at that point — Blocked for
// a site wedged mid-protocol, which is exactly the observable a blocked-2PC
// demonstration asserts on).
func (s *Server) WaitOutcome(txn types.TxnID, deadline time.Duration) types.Outcome {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for {
		note := s.watch(txn)
		if o := s.Outcome(txn); o.StateEquivalent().Terminal() && o != types.OutcomeUnknown {
			s.unwatch(txn, note)
			return o
		}
		select {
		case <-note.ch:
			s.unwatch(txn, note)
		case <-timer.C:
			s.unwatch(txn, note)
			return s.Outcome(txn)
		}
	}
}

// ReadItem returns this site's copy of item, if it holds one.
func (s *Server) ReadItem(item types.ItemID) (value int64, version uint64, ok bool) {
	if !s.node.store.Has(item) {
		return 0, 0, false
	}
	v, err := s.node.store.Read(item)
	if err != nil {
		return 0, 0, false
	}
	return v.Value, v.Version, true
}

// Store exposes the hosted site's store.
func (s *Server) Store() *storage.Store { return s.node.store }

// Stop shuts the node goroutine down and closes the transport.
func (s *Server) Stop() {
	s.node.post(event{stop: true})
	s.wg.Wait()
	s.tr.Close()
}

func (s *Server) watch(txn types.TxnID) *outcomeNote {
	s.noteMu.Lock()
	defer s.noteMu.Unlock()
	note := s.notes[txn]
	if note == nil {
		note = &outcomeNote{ch: make(chan struct{})}
		s.notes[txn] = note
	}
	note.waiters++
	return note
}

func (s *Server) unwatch(txn types.TxnID, note *outcomeNote) {
	s.noteMu.Lock()
	defer s.noteMu.Unlock()
	note.waiters--
	if note.waiters == 0 && s.notes[txn] == note {
		delete(s.notes, txn)
	}
}

// host accessors (see host.go): Server hosts exactly one node.

func (s *Server) spec() protocol.Spec            { return s.cfg.Spec }
func (s *Server) assignment() *voting.Assignment { return s.cfg.Assignment }
func (s *Server) timeoutBase() time.Duration     { return s.cfg.TimeoutBase }
func (s *Server) maxTermRounds() int             { return s.cfg.MaxTerminationRounds }
func (s *Server) startTime() time.Time           { return s.start }

func (s *Server) send(from, to types.SiteID, m msg.Message) {
	s.tr.Send(msg.Envelope{From: from, To: to, Msg: m})
}

func (s *Server) notifyOutcome(txn types.TxnID) {
	s.noteMu.Lock()
	if note, ok := s.notes[txn]; ok {
		close(note.ch)
		delete(s.notes, txn)
	}
	s.noteMu.Unlock()
}

// The adaptive strategy hooks need peer-store visibility a distributed host
// does not have; a Server always runs the static quorum strategy.

func (s *Server) noteCommitApplied(*Node, *txnCtx)        {}
func (s *Server) maybeResolve(types.ItemID, types.SiteID) {}
func (s *Server) maybeRejoin(types.ItemID, types.SiteID)  {}

// walOutcome reads txn's fate from one node's WAL: terminal records map to
// their outcome, a surviving mid-protocol state (W/PC/PA) is Blocked. It
// consults the node's incrementally-maintained durable-record view rather
// than replaying the log, which would be O(history) per probe.
func walOutcome(n *Node, txn types.TxnID) types.Outcome {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	return n.view[txn]
}
