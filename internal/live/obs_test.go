package live

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/obs"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// TestLiveObserverRecordsCommitPath runs a few transactions through an
// observed cluster (group WAL so the async flush path is exercised) and pins
// that every layer's instrumentation moved: txn counters, the coordinator
// commit-latency histogram, lock holds, WAL batch/flush-wait samples, and a
// complete sampled span carrying the WAL-durable stage.
func TestLiveObserverRecordsCommitPath(t *testing.T) {
	ob := &obs.Observer{
		Registry: obs.NewRegistry(),
		Spans:    obs.NewSpans(1, 64, 42), // sample everything
	}
	dir := t.TempDir()
	cl := New(Config{
		Assignment:  asgn(),
		Spec:        core.Spec{Variant: core.Protocol1},
		Seed:        1,
		TimeoutBase: 30 * time.Millisecond,
		WAL: func(id types.SiteID) wal.Log {
			l, err := wal.OpenGroupLog(filepath.Join(dir, fmt.Sprintf("site%d.wal", id)))
			if err != nil {
				t.Fatalf("site%d wal: %v", id, err)
			}
			return l
		},
		Obs: ob,
	})
	defer cl.Stop()

	const txns = 4
	for i := 0; i < txns; i++ {
		txn := cl.Begin(1, types.Writeset{{Item: "x", Value: int64(i)}})
		if got := cl.WaitOutcome(txn, 3*time.Second); got != types.OutcomeCommitted {
			t.Fatalf("txn %d outcome = %v", i, got)
		}
	}

	snaps := ob.Reg().Snapshot()
	if got := obs.SumCounters(snaps, "qcommit_txns_begun_total"); got != txns {
		t.Errorf("begun = %d, want %d", got, txns)
	}
	if got := obs.SumCounters(snaps, "qcommit_txns_committed_total"); got == 0 {
		t.Error("committed counter never moved")
	}
	if h := obs.MergeHistograms(snaps, "qcommit_commit_ns"); h.Count != txns {
		t.Errorf("commit latency samples = %d, want %d", h.Count, txns)
	}
	if h := obs.MergeHistograms(snaps, "qcommit_lock_hold_ns"); h.Count == 0 {
		t.Error("no lock-hold samples")
	}
	if h := obs.MergeHistograms(snaps, "qcommit_wal_batch_records"); h.Count == 0 {
		t.Error("no WAL batch samples")
	}
	if h := obs.MergeHistograms(snaps, "qcommit_wal_flush_wait_ns"); h.Count == 0 {
		t.Error("no WAL flush-wait samples")
	}
	if got := obs.SumCounters(snaps, "qcommit_wal_fsyncs_total"); got == 0 {
		t.Error("fsync counter func never scraped a sync")
	}

	// Span Finish runs in the flusher after the outcome notification, so the
	// last transaction's close can trail WaitOutcome by a beat.
	var started, finished uint64
	for deadline := time.Now().Add(2 * time.Second); ; {
		started, finished = ob.Spanner().Stats()
		if finished == txns || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if started != txns || finished != txns {
		t.Fatalf("span stats = %d/%d, want %d/%d", started, finished, txns, txns)
	}
	stages := make(map[string]bool)
	span := ob.Spanner().Recent()[0]
	for _, ev := range span.Stages {
		stages[ev.Stage] = true
	}
	for _, want := range []string{obs.StageRecv, obs.StageVoteReq, obs.StageVote, obs.StageLocks, obs.StageDecision, obs.StageWALAppend, obs.StageWALDurable} {
		if !stages[want] {
			t.Errorf("span missing stage %q (got %v)", want, span.Stages)
		}
	}
	if span.Outcome != "committed" || span.EndNS == 0 {
		t.Errorf("span = outcome %q end %d, want finished committed span", span.Outcome, span.EndNS)
	}
}

// TestLiveObserverOffIsInert pins the zero-value contract: a cluster built
// without an Observer runs with every hook nil.
func TestLiveObserverOffIsInert(t *testing.T) {
	cl := New(Config{Assignment: asgn(), Spec: core.Spec{Variant: core.Protocol1}, Seed: 1, TimeoutBase: 30 * time.Millisecond})
	defer cl.Stop()
	txn := cl.Begin(1, types.Writeset{{Item: "x", Value: 1}})
	if got := cl.WaitOutcome(txn, 3*time.Second); got != types.OutcomeCommitted {
		t.Fatalf("outcome = %v", got)
	}
	n := cl.Node(1)
	if n.met != nil || n.spans != nil {
		t.Error("node carries observability handles without an Observer")
	}
}
