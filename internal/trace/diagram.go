package trace

import (
	"fmt"
	"sort"
	"strings"

	"qcommit/internal/types"
)

// Diagram renders the recorded events as a column-per-site sequence diagram,
// the textual analogue of the paper's Figs. 1, 2 and 9:
//
//	t           site1         site2         site3
//	3.201ms       o--VOTE-REQ-->|             |
//	5.914ms       |<----yes-----o             |
//	12.000ms      |             *enters PC    |
//
// Message events draw an arrow from sender (o) to receiver (>); annotations
// mark the site with * and print the text in place. Sites not in the list
// are skipped. The width parameter sets the column width (0 = default 14).
func (r *Recorder) Diagram(sites []types.SiteID, width int) string {
	if width <= 0 {
		width = 14
	}
	col := make(map[types.SiteID]int, len(sites))
	sorted := append([]types.SiteID(nil), sites...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, s := range sorted {
		col[s] = i
	}
	timeW := 12

	var b strings.Builder
	// Header.
	b.WriteString(pad("t", timeW))
	for _, s := range sorted {
		b.WriteString(pad(s.String(), width))
	}
	b.WriteByte('\n')

	for _, e := range r.Events() {
		// Extra tail room so annotations near the right edge are not cut.
		line := make([]byte, timeW+width*len(sorted)+56)
		for i := range line {
			line[i] = ' '
		}
		copy(line, pad(e.At.String(), timeW))
		// Lifelines.
		for i := range sorted {
			line[timeW+i*width+width/2] = '|'
		}
		switch {
		case e.IsMessage():
			fromCol, fromOK := col[e.From]
			toCol, toOK := col[e.To]
			if !fromOK || !toOK {
				continue
			}
			fromPos := timeW + fromCol*width + width/2
			toPos := timeW + toCol*width + width/2
			if fromPos == toPos {
				// Self-delivery: mark with a loop glyph.
				line[fromPos] = '@'
				drawLabel(line, fromPos+2, e.Label)
				b.Write(trimRight(line))
				b.WriteByte('\n')
				continue
			}
			lo, hi := fromPos, toPos
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo + 1; i < hi; i++ {
				line[i] = '-'
			}
			line[fromPos] = 'o'
			if toPos > fromPos {
				line[toPos] = '>'
			} else {
				line[toPos] = '<'
			}
			drawLabel(line, (lo+hi)/2-len(e.Label)/2, e.Label)
		default:
			c, ok := col[e.Site]
			if !ok {
				// Cluster-level annotation (partition/heal): full-width note.
				note := fmt.Sprintf("== %s ==", e.Text)
				drawLabel(line, timeW, note)
				b.Write(trimRight(line))
				b.WriteByte('\n')
				continue
			}
			pos := timeW + c*width + width/2
			line[pos] = '*'
			drawLabel(line, pos+1, e.Text)
		}
		b.Write(trimRight(line))
		b.WriteByte('\n')
	}
	return b.String()
}

// drawLabel writes s into line at pos, clipped to the buffer.
func drawLabel(line []byte, pos int, s string) {
	if pos < 0 {
		pos = 0
	}
	for i := 0; i < len(s) && pos+i < len(line); i++ {
		line[pos+i] = s[i]
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w-1] + " "
	}
	return s + strings.Repeat(" ", w-len(s))
}

func trimRight(line []byte) []byte {
	end := len(line)
	for end > 0 && line[end-1] == ' ' {
		end--
	}
	return line[:end]
}
