package trace

import (
	"strings"
	"sync"
	"testing"

	"qcommit/internal/sim"
	"qcommit/internal/types"
)

func TestRecorderAnnotateAndMessage(t *testing.T) {
	r := NewRecorder()
	r.Annotate(5, 1, "hello %d", 42)
	r.Message(10, 1, 2, "COMMIT")
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].IsMessage() || evs[0].Text != "hello 42" {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if !evs[1].IsMessage() || evs[1].From != 1 || evs[1].To != 2 {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Annotate(0, 1, "x")
	r.Message(0, 1, 2, "y")
	r.Reset()
	r.Disable()
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder events = %v", got)
	}
	if s := r.Ladder(nil); s != "" {
		t.Errorf("nil recorder ladder = %q", s)
	}
}

func TestDisable(t *testing.T) {
	r := NewRecorder()
	r.Disable()
	r.Annotate(0, 1, "dropped")
	if len(r.Events()) != 0 {
		t.Error("disabled recorder recorded")
	}
}

func TestLadderRendering(t *testing.T) {
	r := NewRecorder()
	r.Message(sim.Time(3*sim.Millisecond), 1, 3, "VOTE-REQ")
	r.Annotate(sim.Time(4*sim.Millisecond), 3, "enters PC")
	out := r.Ladder(nil)
	if !strings.Contains(out, "site1 --VOTE-REQ--> site3") {
		t.Errorf("ladder missing arrow:\n%s", out)
	}
	if !strings.Contains(out, "[site3] enters PC") {
		t.Errorf("ladder missing annotation:\n%s", out)
	}
	msgsOnly := r.Ladder(MessagesOnly)
	if strings.Contains(msgsOnly, "enters PC") {
		t.Errorf("filter not applied:\n%s", msgsOnly)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Annotate(0, 1, "x")
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Annotate(sim.Time(i), 1, "g%d i%d", g, i)
				_ = r.Events()
			}
		}(g)
	}
	wg.Wait()
	if len(r.Events()) != 800 {
		t.Errorf("got %d events, want 800", len(r.Events()))
	}
}

func TestDiagramRendering(t *testing.T) {
	r := NewRecorder()
	sites := []types.SiteID{1, 2, 3}
	r.Message(sim.Time(3*sim.Millisecond), 1, 3, "VOTE-REQ")
	r.Message(sim.Time(5*sim.Millisecond), 3, 1, "yes")
	r.Message(sim.Time(6*sim.Millisecond), 2, 2, "STATE-REQ") // self-delivery
	r.Annotate(sim.Time(7*sim.Millisecond), 2, "enters PC")
	r.Annotate(sim.Time(8*sim.Millisecond), 0, "PARTITION") // cluster-level

	out := r.Diagram(sites, 14)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected header + 5 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "site1") || !strings.Contains(lines[0], "site3") {
		t.Errorf("header missing sites: %q", lines[0])
	}
	if !strings.Contains(lines[1], "o") || !strings.Contains(lines[1], ">") || !strings.Contains(lines[1], "VOTE-REQ") {
		t.Errorf("arrow row malformed: %q", lines[1])
	}
	if !strings.Contains(lines[2], "<") {
		t.Errorf("reverse arrow missing: %q", lines[2])
	}
	if !strings.Contains(lines[3], "@") {
		t.Errorf("self-delivery glyph missing: %q", lines[3])
	}
	if !strings.Contains(lines[4], "*enters PC") {
		t.Errorf("annotation missing: %q", lines[4])
	}
	if !strings.Contains(lines[5], "== PARTITION ==") {
		t.Errorf("cluster note missing: %q", lines[5])
	}
}

func TestDiagramSkipsUnknownSites(t *testing.T) {
	r := NewRecorder()
	r.Message(1, 9, 10, "X") // neither site in the diagram
	out := r.Diagram([]types.SiteID{1, 2}, 10)
	if strings.Contains(out, "X") {
		t.Errorf("unknown-site message rendered:\n%s", out)
	}
}
