// Package trace records protocol events and renders message ladders, the
// textual equivalent of the paper's Figures 1, 2 and 9.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"qcommit/internal/sim"
	"qcommit/internal/types"
)

// Event is one recorded protocol event.
type Event struct {
	At   sim.Time
	Site types.SiteID
	// From/To/Label are set for message events (Label = message kind);
	// plain annotations leave From/To zero.
	From, To types.SiteID
	Label    string
	Text     string
}

// IsMessage reports whether the event is a message delivery.
func (e Event) IsMessage() bool { return e.Label != "" }

// Recorder accumulates events. It is safe for concurrent use so the live
// runtime can share one recorder across site goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// Enabled gates recording; a nil Recorder is also valid and records
	// nothing.
	disabled bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Disable turns the recorder off (events are discarded).
func (r *Recorder) Disable() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disabled = true
}

// Annotate records a free-form event at a site.
func (r *Recorder) Annotate(at sim.Time, site types.SiteID, format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return
	}
	r.events = append(r.events, Event{At: at, Site: site, Text: fmt.Sprintf(format, args...)})
}

// Message records a message delivery event.
func (r *Recorder) Message(at sim.Time, from, to types.SiteID, label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return
	}
	r.events = append(r.events, Event{At: at, Site: to, From: from, To: to, Label: label})
}

// Events returns a snapshot of the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// Ladder renders the recorded events as a time-ordered message ladder:
//
//	t=3.201ms   site1 --VOTE-REQ--> site3
//	t=9.114ms   site3 --VOTE(yes)--> site1
//	t=12.000ms  [site3] enters PC
//
// Only events matching filter (nil = all) are included.
func (r *Recorder) Ladder(filter func(Event) bool) string {
	var b strings.Builder
	for _, e := range r.Events() {
		if filter != nil && !filter(e) {
			continue
		}
		if e.IsMessage() {
			fmt.Fprintf(&b, "t=%-11s %s --%s--> %s\n", e.At, e.From, e.Label, e.To)
		} else {
			fmt.Fprintf(&b, "t=%-11s [%s] %s\n", e.At, e.Site, e.Text)
		}
	}
	return b.String()
}

// MessagesOnly is a Ladder filter keeping only message events.
func MessagesOnly(e Event) bool { return e.IsMessage() }
