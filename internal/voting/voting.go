// Package voting implements Gifford-style weighted voting for replicated
// data, the partition-processing strategy the paper folds into its commit
// and termination protocols.
//
// Every copy of each data item x is assigned votes. A transaction must
// collect r(x) votes to read x and w(x) votes to write x, subject to
//
//	(1) r(x) + w(x) > v(x)   — reads see the most recent copy, and x cannot
//	                           be read in one partition and written in another
//	(2) w(x) > v(x)/2        — two writes cannot proceed in parallel or in
//	                           two different partitions
//
// where v(x) is the total number of votes of x. Version numbers identify the
// most recent copy (package storage).
package voting

import (
	"fmt"
	"sort"

	"qcommit/internal/types"
)

// Copy is one physical replica of an item: its site and its vote weight.
type Copy struct {
	Site  types.SiteID
	Votes int
}

// ItemConfig is the replication configuration of one data item.
type ItemConfig struct {
	Item   types.ItemID
	Copies []Copy
	R      int // read quorum r(x)
	W      int // write quorum w(x)
}

// TotalVotes returns v(x), the sum of all copy votes.
func (ic ItemConfig) TotalVotes() int {
	total := 0
	for _, c := range ic.Copies {
		total += c.Votes
	}
	return total
}

// VotesAt returns the votes the given site holds for this item (0 if none).
func (ic ItemConfig) VotesAt(site types.SiteID) int {
	for _, c := range ic.Copies {
		if c.Site == site {
			return c.Votes
		}
	}
	return 0
}

// Sites returns the sites holding copies, in ascending order.
func (ic ItemConfig) Sites() []types.SiteID {
	out := make([]types.SiteID, 0, len(ic.Copies))
	for _, c := range ic.Copies {
		out = append(out, c.Site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the two Gifford constraints and basic sanity.
func (ic ItemConfig) Validate() error {
	if len(ic.Copies) == 0 {
		return fmt.Errorf("voting: item %q has no copies", ic.Item)
	}
	seen := make(map[types.SiteID]bool, len(ic.Copies))
	for _, c := range ic.Copies {
		if c.Votes <= 0 {
			return fmt.Errorf("voting: item %q copy at %s has non-positive votes %d", ic.Item, c.Site, c.Votes)
		}
		if seen[c.Site] {
			return fmt.Errorf("voting: item %q has two copies at %s", ic.Item, c.Site)
		}
		seen[c.Site] = true
	}
	v := ic.TotalVotes()
	if ic.R <= 0 || ic.W <= 0 {
		return fmt.Errorf("voting: item %q quorums must be positive (r=%d w=%d)", ic.Item, ic.R, ic.W)
	}
	if ic.R > v || ic.W > v {
		return fmt.Errorf("voting: item %q quorum exceeds total votes %d (r=%d w=%d)", ic.Item, v, ic.R, ic.W)
	}
	if ic.R+ic.W <= v {
		return fmt.Errorf("voting: item %q violates r+w > v (r=%d w=%d v=%d)", ic.Item, ic.R, ic.W, v)
	}
	if 2*ic.W <= v {
		return fmt.Errorf("voting: item %q violates w > v/2 (w=%d v=%d)", ic.Item, ic.W, v)
	}
	return nil
}

// Assignment is the cluster-wide vote assignment: the replication
// configuration of every item. It is immutable after Build and shared by all
// sites (the paper assumes the assignment is static, known configuration).
type Assignment struct {
	items map[types.ItemID]ItemConfig
	order []types.ItemID
}

// NewAssignment validates and indexes the given item configurations.
func NewAssignment(items ...ItemConfig) (*Assignment, error) {
	a := &Assignment{items: make(map[types.ItemID]ItemConfig, len(items))}
	for _, ic := range items {
		if err := ic.Validate(); err != nil {
			return nil, err
		}
		if _, dup := a.items[ic.Item]; dup {
			return nil, fmt.Errorf("voting: duplicate item %q", ic.Item)
		}
		a.items[ic.Item] = ic
		a.order = append(a.order, ic.Item)
	}
	return a, nil
}

// MustAssignment is NewAssignment that panics on error, for tests and fixed
// example scenarios.
func MustAssignment(items ...ItemConfig) *Assignment {
	a, err := NewAssignment(items...)
	if err != nil {
		panic(err)
	}
	return a
}

// Item returns the configuration of x.
func (a *Assignment) Item(x types.ItemID) (ItemConfig, bool) {
	ic, ok := a.items[x]
	return ic, ok
}

// Items returns all item IDs in declaration order.
func (a *Assignment) Items() []types.ItemID {
	out := make([]types.ItemID, len(a.order))
	copy(out, a.order)
	return out
}

// VotesAt returns the votes site holds for item x.
func (a *Assignment) VotesAt(site types.SiteID, x types.ItemID) int {
	return a.items[x].VotesAt(site)
}

// ReadQuorum returns r(x).
func (a *Assignment) ReadQuorum(x types.ItemID) int { return a.items[x].R }

// WriteQuorum returns w(x).
func (a *Assignment) WriteQuorum(x types.ItemID) int { return a.items[x].W }

// TotalVotes returns v(x).
func (a *Assignment) TotalVotes(x types.ItemID) int { return a.items[x].TotalVotes() }

// Participants returns the union of sites holding copies of the given items,
// ascending. These are the participants of a transaction writing those items.
func (a *Assignment) Participants(items []types.ItemID) []types.SiteID {
	seen := make(map[types.SiteID]bool)
	for _, x := range items {
		for _, c := range a.items[x].Copies {
			seen[c.Site] = true
		}
	}
	out := make([]types.SiteID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VotesFor sums the votes for item x held by the given sites.
func (a *Assignment) VotesFor(x types.ItemID, sites []types.SiteID) int {
	ic := a.items[x]
	total := 0
	for _, s := range sites {
		total += ic.VotesAt(s)
	}
	return total
}

// ReadQuorumMet reports whether a precomputed vote sum reaches r(x). It is
// the allocation-free primitive behind HasReadQuorum for callers (the
// analytic Monte Carlo engine) that tally votes incrementally instead of
// materializing site lists.
func (a *Assignment) ReadQuorumMet(x types.ItemID, votes int) bool {
	ic, ok := a.items[x]
	return ok && votes >= ic.R
}

// WriteQuorumMet reports whether a precomputed vote sum reaches w(x).
func (a *Assignment) WriteQuorumMet(x types.ItemID, votes int) bool {
	ic, ok := a.items[x]
	return ok && votes >= ic.W
}

// ForEachItem calls f for every item configuration in declaration order,
// without copying the item list (unlike Items).
func (a *Assignment) ForEachItem(f func(ItemConfig)) {
	for _, x := range a.order {
		f(a.items[x])
	}
}

// HasReadQuorum reports whether the sites jointly hold ≥ r(x) votes for x.
func (a *Assignment) HasReadQuorum(x types.ItemID, sites []types.SiteID) bool {
	ic, ok := a.items[x]
	if !ok {
		return false
	}
	return a.VotesFor(x, sites) >= ic.R
}

// HasWriteQuorum reports whether the sites jointly hold ≥ w(x) votes for x.
func (a *Assignment) HasWriteQuorum(x types.ItemID, sites []types.SiteID) bool {
	ic, ok := a.items[x]
	if !ok {
		return false
	}
	return a.VotesFor(x, sites) >= ic.W
}

// WriteQuorumForEvery reports whether the sites hold ≥ w(x) votes for every
// item in items — the "commit side" condition of Termination Protocol 1.
// It is false for an empty item list (no transaction writes nothing).
func (a *Assignment) WriteQuorumForEvery(items []types.ItemID, sites []types.SiteID) bool {
	if len(items) == 0 {
		return false
	}
	for _, x := range items {
		if !a.HasWriteQuorum(x, sites) {
			return false
		}
	}
	return true
}

// ReadQuorumForSome reports whether the sites hold ≥ r(x) votes for some item
// in items — the "abort side" condition of Termination Protocol 1.
func (a *Assignment) ReadQuorumForSome(items []types.ItemID, sites []types.SiteID) bool {
	for _, x := range items {
		if a.HasReadQuorum(x, sites) {
			return true
		}
	}
	return false
}

// ReadQuorumForEvery reports whether the sites hold ≥ r(x) votes for every
// item in items.
func (a *Assignment) ReadQuorumForEvery(items []types.ItemID, sites []types.SiteID) bool {
	if len(items) == 0 {
		return false
	}
	for _, x := range items {
		if !a.HasReadQuorum(x, sites) {
			return false
		}
	}
	return true
}

// WriteQuorumForSome reports whether the sites hold ≥ w(x) votes for some
// item in items — used by Termination Protocol 2's commit side (swapped
// roles).
func (a *Assignment) WriteQuorumForSome(items []types.ItemID, sites []types.SiteID) bool {
	for _, x := range items {
		if a.HasWriteQuorum(x, sites) {
			return true
		}
	}
	return false
}

// Uniform builds an ItemConfig with one single-vote copy per site and the
// given quorums. It is the common configuration of the paper's examples
// (each copy has vote 1).
func Uniform(item types.ItemID, r, w int, sites ...types.SiteID) ItemConfig {
	copies := make([]Copy, len(sites))
	for i, s := range sites {
		copies[i] = Copy{Site: s, Votes: 1}
	}
	return ItemConfig{Item: item, Copies: copies, R: r, W: w}
}

// MajorityQuorums returns (r, w) for n single-vote copies with both quorums
// set to a simple majority, the tightest symmetric choice satisfying the
// Gifford constraints.
func MajorityQuorums(n int) (r, w int) {
	w = n/2 + 1
	r = n + 1 - w
	return r, w
}
