package voting

import (
	"sort"
	"sync"

	"qcommit/internal/types"
)

// This file implements dynamic vote reassignment (Jajodia & Mutchler,
// "Dynamic voting", SIGMOD 1987; Barbara, Garcia-Molina & Spauster,
// "Increasing availability under mutual exclusion constraints with dynamic
// vote reassignment", ACM TODS 1989) — the third partition-processing
// strategy the paper's conclusion invites, next to static Gifford quorums
// and the missing-writes scheme.
//
// Static quorums lose ground monotonically: every failed copy is a vote gone
// until that exact copy returns, and after enough failures no partition can
// muster w(x) of the ORIGINAL copy set. Dynamic voting instead lets the
// reachable majority of the copies re-anchor the quorum basis on itself:
// after each committed write (and at heal/restart catch-up) a new vote table
// is installed in which only the current survivor set holds votes, so
// subsequent quorums are majorities of the survivors. Two sequential
// failures of a 4-copy item leave static quorums write-blocked (2 < w=3)
// while the dynamic basis has shrunk 4 → 3 → 2 and the two survivors still
// form a majority of the 3-vote table.
//
// Safety rests on two rules, both enforced here:
//
//  1. Version-numbered tables. Every table carries an epoch; installing a
//     new table requires a group holding a MAJORITY OF VOTES UNDER THE
//     NEWEST TABLE ANY GROUP MEMBER HAS INSTALLED. Two majorities under the
//     same table intersect, and the intersection site carries any newer
//     table forward, so the newest-known table of a legal group is always
//     the globally newest one (induction over installs).
//  2. Epoch guards on quorum assembly. A quorum probe counts votes under
//     the newest table known WITHIN the probing group. A stale minority —
//     sites that missed one or more reassignments — holds few or no votes
//     under any table a majority could have installed, so it can never read,
//     write, or reassign. (Per Barbara et al. the reassignment is
//     "autonomous": the surviving majority installs the new table without a
//     group-consensus round; the epoch ordering alone arbitrates.)
//
// Quorums under a table are simple majorities of its total votes
// (w = total/2+1, r = total+1−w), the tightest choice satisfying the
// Gifford constraints, with static copy weights carried into each table
// restricted to the surviving sites.

// voteTable is one version of an item's vote assignment: the epoch (version
// number) and the votes per surviving site. Tables are immutable once
// installed; a reassignment builds a fresh one.
type voteTable struct {
	epoch uint64
	votes map[types.SiteID]int
	total int
}

// quorums returns the table's majority read/write quorums.
func (t *voteTable) quorums() (r, w int) {
	w = t.total/2 + 1
	r = t.total + 1 - w
	return r, w
}

// dynItem is the per-item reassignment state.
type dynItem struct {
	// installed[site] is the newest vote table the site has installed; a
	// site that missed reassignments (down or partitioned away) keeps its
	// older table — that lag is exactly what the epoch guard exploits.
	installed map[types.SiteID]*voteTable
	// current is the globally newest table (max epoch over installed).
	current *voteTable
}

// tableAmong returns the newest table any of the given sites has installed,
// or nil if none of them holds a copy.
func (di *dynItem) tableAmong(sites []types.SiteID) *voteTable {
	var best *voteTable
	for _, s := range sites {
		if t := di.installed[s]; t != nil && (best == nil || t.epoch > best.epoch) {
			best = t
		}
	}
	return best
}

// Dynamic tracks version-numbered vote tables per item on top of a static
// Assignment and answers quorum questions under the newest table a probing
// group knows. It is safe for concurrent use.
type Dynamic struct {
	asgn *Assignment

	mu    sync.Mutex
	items map[types.ItemID]*dynItem
	// reassignments counts installed tables; restorations counts the subset
	// that restored the full static copy set — the churn study's
	// reassignment-churn metric.
	reassignments int
	restorations  int
}

// NewDynamic wraps an assignment with dynamic vote reassignment. Every item
// starts at epoch 0 with its static vote table installed at every copy.
func NewDynamic(asgn *Assignment) *Dynamic {
	d := &Dynamic{asgn: asgn, items: make(map[types.ItemID]*dynItem)}
	asgn.ForEachItem(func(ic ItemConfig) {
		t := &voteTable{votes: make(map[types.SiteID]int, len(ic.Copies))}
		for _, cp := range ic.Copies {
			t.votes[cp.Site] = cp.Votes
			t.total += cp.Votes
		}
		di := &dynItem{installed: make(map[types.SiteID]*voteTable, len(ic.Copies)), current: t}
		for _, cp := range ic.Copies {
			di.installed[cp.Site] = t
		}
		d.items[ic.Item] = di
	})
	return d
}

// Assignment returns the underlying static assignment.
func (d *Dynamic) Assignment() *Assignment { return d.asgn }

// Epoch returns the version number of item's newest installed vote table
// (0 for an unknown item: no reassignment has ever happened).
func (d *Dynamic) Epoch(item types.ItemID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return 0
	}
	return di.current.epoch
}

// EpochAt returns the epoch of the newest table the given site has
// installed — at most Epoch(item), and strictly less while the site is
// stale.
func (d *Dynamic) EpochAt(item types.ItemID, site types.SiteID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return 0
	}
	t := di.installed[site]
	if t == nil {
		return 0
	}
	return t.epoch
}

// VotesNow returns item's current vote table as copies, ascending by site.
// Sites outside the current majority basis hold zero votes and are omitted.
func (d *Dynamic) VotesNow(item types.ItemID) []Copy {
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return nil
	}
	out := make([]Copy, 0, len(di.current.votes))
	for s, v := range di.current.votes {
		out = append(out, Copy{Site: s, Votes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// InBasis reports whether site holds votes in item's current table.
func (d *Dynamic) InBasis(item types.ItemID, site types.SiteID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	return di != nil && di.current.votes[site] > 0
}

// StaleSites returns the copies of item outside the current majority basis
// — the sites that must catch up (copy sync + rejoin) before they count for
// quorums again — ascending.
func (d *Dynamic) StaleSites(item types.ItemID) []types.SiteID {
	ic, ok := d.asgn.Item(item)
	if !ok {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return nil
	}
	var out []types.SiteID
	for _, cp := range ic.Copies {
		if di.current.votes[cp.Site] == 0 {
			out = append(out, cp.Site)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VotesAmong returns the votes the given sites jointly hold under the
// newest vote table any of them has installed, together with that table's
// majority read/write quorums and its epoch. This is the epoch-guarded
// tally behind CanRead/CanWrite: a stale group is measured against the
// newest table it knows, under which it cannot hold a majority (see the
// package comment's induction). Unknown items report all zeros.
func (d *Dynamic) VotesAmong(item types.ItemID, sites []types.SiteID) (got, r, w int, epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return 0, 0, 0, 0
	}
	t := di.tableAmong(sites)
	if t == nil {
		// No group member holds a copy: no votes; report the current
		// table's quorums for context.
		r, w = di.current.quorums()
		return 0, r, w, di.current.epoch
	}
	for _, s := range sites {
		got += t.votes[s]
	}
	r, w = t.quorums()
	return got, r, w, t.epoch
}

// CanRead reports whether the given sites can assemble a read quorum for
// item under the newest vote table they jointly know.
func (d *Dynamic) CanRead(item types.ItemID, sites []types.SiteID) bool {
	got, r, _, _ := d.VotesAmong(item, sites)
	return r > 0 && got >= r
}

// CanWrite reports whether the given sites can assemble a write quorum for
// item under the newest vote table they jointly know.
func (d *Dynamic) CanWrite(item types.ItemID, sites []types.SiteID) bool {
	got, _, w, _ := d.VotesAmong(item, sites)
	return w > 0 && got >= w
}

// Reassign installs a new vote table for item whose majority basis is
// exactly the given survivor set (intersected with the item's copy sites,
// carrying their static weights). It is legal only if the survivors hold a
// write majority under the newest table any of them has installed — the
// epoch guard that keeps a stale minority from re-anchoring quorums on
// itself — and it is a no-op when the survivor set already matches the
// current basis (steady-state commits cause no epoch churn). The engine
// calls it after each committed write with the copies the commit reached,
// and from the heal/restart catch-up path with the caught-up reachable
// copies. It reports whether a new table was installed.
func (d *Dynamic) Reassign(item types.ItemID, survivors []types.SiteID) bool {
	ic, ok := d.asgn.Item(item)
	if !ok {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	di := d.items[item]
	if di == nil {
		return false
	}
	t := di.tableAmong(survivors)
	if t == nil {
		return false
	}
	got := 0
	for _, s := range survivors {
		got += t.votes[s]
	}
	if _, w := t.quorums(); got < w {
		return false // stale or minority group: must not touch the table
	}
	if t.epoch != di.current.epoch {
		// Unreachable by the intersection argument (a majority under t
		// includes an installer of every newer table); kept as a guard so a
		// bookkeeping bug degrades to unavailability, never to split brain.
		return false
	}
	nt := &voteTable{epoch: t.epoch + 1, votes: make(map[types.SiteID]int, len(survivors))}
	surv := make(map[types.SiteID]bool, len(survivors))
	for _, s := range survivors {
		surv[s] = true
	}
	for _, cp := range ic.Copies {
		if surv[cp.Site] {
			nt.votes[cp.Site] = cp.Votes
			nt.total += cp.Votes
		}
	}
	if nt.total == 0 {
		return false
	}
	if len(nt.votes) == len(t.votes) {
		same := true
		//qlint:allow determinism pure equality scan: same flips at most once and the result is identical in any visit order
		for s, v := range nt.votes {
			if t.votes[s] != v {
				same = false
				break
			}
		}
		if same {
			return false // basis unchanged: no install, no epoch churn
		}
	}
	for s := range nt.votes {
		di.installed[s] = nt
	}
	di.current = nt
	d.reassignments++
	if len(nt.votes) == len(ic.Copies) {
		d.restorations++
	}
	return true
}

// Transitions returns the cumulative reassignment-churn counters: tables
// installed, and the subset that restored the full static copy set.
func (d *Dynamic) Transitions() (reassignments, restorations int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reassignments, d.restorations
}
