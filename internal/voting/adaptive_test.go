package voting

import (
	"testing"

	"qcommit/internal/types"
)

func newAdaptive(t *testing.T) *Adaptive {
	t.Helper()
	return NewAdaptive(MustAssignment(Uniform("x", 2, 3, 1, 2, 3, 4)))
}

func TestAdaptiveStartsOptimistic(t *testing.T) {
	a := newAdaptive(t)
	if a.ModeOf("x") != Optimistic {
		t.Fatal("item should start optimistic")
	}
	r, mode, err := a.ReadQuorumNow("x")
	if err != nil || r != 1 || mode != Optimistic {
		t.Errorf("read quorum = %d,%v,%v; want 1 vote read-one", r, mode, err)
	}
	w, _, err := a.WriteQuorumNow("x")
	if err != nil || w != 4 {
		t.Errorf("write quorum = %d,%v; want 4 (write-all)", w, err)
	}
	// One copy serves a read in optimistic mode.
	if !a.CanRead("x", []types.SiteID{3}) {
		t.Error("single copy should serve an optimistic read")
	}
	// A write must reach everyone.
	if a.CanWrite("x", []types.SiteID{1, 2, 3}) {
		t.Error("3 of 4 copies must not satisfy write-all")
	}
}

func TestAdaptiveDegradesOnMissedWrite(t *testing.T) {
	a := newAdaptive(t)
	// A write reaches only sites 1-3 (site4's copy missed it). That is a
	// legal pessimistic write quorum (3 ≥ w=3), so the write proceeds and
	// the item degrades.
	if !a.RecordWrite("x", []types.SiteID{1, 2, 3}) {
		t.Fatal("write with w votes should be accepted")
	}
	if a.ModeOf("x") != Pessimistic {
		t.Fatal("item should be pessimistic after a missing write")
	}
	if got := a.MissingAt("x"); len(got) != 1 || got[0] != 4 {
		t.Fatalf("MissingAt = %v, want [site4]", got)
	}
	// Quorums are now the configured r/w.
	r, mode, _ := a.ReadQuorumNow("x")
	if r != 2 || mode != Pessimistic {
		t.Errorf("read quorum = %d,%v; want 2 pessimistic", r, mode)
	}
	w, _, _ := a.WriteQuorumNow("x")
	if w != 3 {
		t.Errorf("write quorum = %d; want 3", w)
	}
}

func TestAdaptiveStaleCopyCannotServeReads(t *testing.T) {
	a := newAdaptive(t)
	a.RecordWrite("x", []types.SiteID{1, 2, 3})
	// Sites {3,4}: 2 votes, but site4 is stale — only 1 fresh vote < r=2.
	if a.CanRead("x", []types.SiteID{3, 4}) {
		t.Error("stale copy counted toward the read quorum")
	}
	if !a.CanRead("x", []types.SiteID{2, 3}) {
		t.Error("two fresh copies should serve the read")
	}
}

func TestAdaptiveRejectsSubQuorumWrite(t *testing.T) {
	a := newAdaptive(t)
	if a.RecordWrite("x", []types.SiteID{1, 2}) {
		t.Error("write reaching 2 < w=3 votes must be rejected")
	}
	if a.ModeOf("x") != Optimistic {
		t.Error("rejected write must not degrade the item")
	}
}

func TestAdaptiveRecoversToOptimistic(t *testing.T) {
	a := newAdaptive(t)
	a.RecordWrite("x", []types.SiteID{1, 2, 3})
	// Another write in pessimistic mode misses site4 again: still one stale
	// site.
	if !a.RecordWrite("x", []types.SiteID{1, 2, 3}) {
		t.Fatal("pessimistic write with w votes should be accepted")
	}
	// Site4's copy catches up: back to optimistic.
	a.ResolveMissing("x", 4)
	if a.ModeOf("x") != Optimistic {
		t.Fatal("item should return to optimistic after resolution")
	}
	r, _, _ := a.ReadQuorumNow("x")
	if r != 1 {
		t.Errorf("read quorum after recovery = %d, want 1", r)
	}
}

func TestAdaptiveAccumulatesMissingSites(t *testing.T) {
	a := newAdaptive(t)
	a.RecordWrite("x", []types.SiteID{1, 2, 3}) // misses 4
	a.RecordWrite("x", []types.SiteID{2, 3, 4}) // misses 1... wait: 4 is stale
	// Site 4 applied the second write but still misses the first; both 1
	// and 4 now carry missing writes.
	got := a.MissingAt("x")
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("MissingAt = %v, want [site1 site4]", got)
	}
	a.ResolveMissing("x", 1)
	if a.ModeOf("x") != Pessimistic {
		t.Error("one unresolved site must keep the item pessimistic")
	}
	a.ResolveMissing("x", 4)
	if a.ModeOf("x") != Optimistic {
		t.Error("all resolved: item should be optimistic")
	}
}

func TestAdaptiveUnknownItem(t *testing.T) {
	a := newAdaptive(t)
	if _, _, err := a.ReadQuorumNow("ghost"); err == nil {
		t.Error("unknown item accepted")
	}
	if _, _, err := a.WriteQuorumNow("ghost"); err == nil {
		t.Error("unknown item accepted")
	}
	if a.CanRead("ghost", []types.SiteID{1}) || a.CanWrite("ghost", []types.SiteID{1}) {
		t.Error("unknown item reported accessible")
	}
	if a.RecordWrite("ghost", []types.SiteID{1}) {
		t.Error("unknown item write accepted")
	}
}

func TestAdaptiveModeString(t *testing.T) {
	if Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Error("mode strings wrong")
	}
}

func TestAdaptiveDegradeExceptAndTransitions(t *testing.T) {
	a := newAdaptive(t)
	if d, r := a.Transitions(); d != 0 || r != 0 {
		t.Fatalf("fresh adaptive has transitions %d/%d", d, r)
	}
	// Reaching every copy leaves the item optimistic.
	a.DegradeExcept("x", []types.SiteID{1, 2, 3, 4})
	if a.ModeOf("x") != Optimistic {
		t.Error("full-reach write must not demote")
	}
	// Missing one copy demotes — even below the pessimistic quorum, since
	// DegradeExcept is the post-commit bookkeeping hook, not a legality gate.
	a.DegradeExcept("x", []types.SiteID{1})
	if a.ModeOf("x") != Pessimistic {
		t.Fatal("missed copies must demote")
	}
	if !a.IsMissing("x", 2) || !a.IsMissing("x", 3) || !a.IsMissing("x", 4) {
		t.Error("sites 2-4 should carry missing writes")
	}
	if a.IsMissing("x", 1) {
		t.Error("reached site 1 marked missing")
	}
	// A second degradation while already pessimistic is not a new demotion.
	a.DegradeExcept("x", []types.SiteID{1, 2})
	if d, r := a.Transitions(); d != 1 || r != 0 {
		t.Errorf("transitions = %d/%d, want 1/0", d, r)
	}
	a.ResolveMissing("x", 2, 3)
	if d, r := a.Transitions(); d != 1 || r != 0 {
		t.Errorf("partial resolve counted as restoration: %d/%d", d, r)
	}
	a.ResolveMissing("x", 4)
	if d, r := a.Transitions(); d != 1 || r != 1 {
		t.Errorf("transitions = %d/%d, want 1/1", d, r)
	}
	if a.ModeOf("x") != Optimistic {
		t.Error("all resolved: item should be optimistic")
	}
	// Resolving an already-clean item is not a restoration.
	a.ResolveMissing("x", 1)
	if _, r := a.Transitions(); r != 1 {
		t.Error("no-op resolve counted as restoration")
	}
	// Unknown items are ignored.
	a.DegradeExcept("ghost", nil)
	if d, _ := a.Transitions(); d != 1 {
		t.Error("unknown-item degrade counted")
	}
}

func TestStrategyStringAndParse(t *testing.T) {
	if StrategyQuorum.String() != "quorum" || StrategyMissingWrites.String() != "missing-writes" ||
		StrategyDynamic.String() != "dynamic" || StrategyInvalid.String() != "invalid" {
		t.Error("strategy strings wrong")
	}
	if Strategy(99).String() == "" {
		t.Error("out-of-range strategy has empty string")
	}
	cases := map[string]Strategy{
		"quorum": StrategyQuorum, "Quorum": StrategyQuorum, "": StrategyQuorum,
		"missing-writes": StrategyMissingWrites, "missingwrites": StrategyMissingWrites,
		"MW": StrategyMissingWrites, " mw ": StrategyMissingWrites,
		"dynamic": StrategyDynamic, "dynamic-voting": StrategyDynamic,
		"DynamicVoting": StrategyDynamic, " dv ": StrategyDynamic,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// The error path must NOT return the zero value (StrategyQuorum): a
	// caller that drops the error would otherwise silently run under the
	// quorum fallback.
	got, err := ParseStrategy("bogus")
	if err == nil {
		t.Error("bogus strategy accepted")
	}
	if got != StrategyInvalid {
		t.Errorf("ParseStrategy error path returned %v, want StrategyInvalid", got)
	}
}
