package voting

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qcommit/internal/types"
)

func dynFixture() *Dynamic {
	return NewDynamic(MustAssignment(Uniform("x", 3, 3, 1, 2, 3, 4, 5)))
}

func TestDynamicInitialState(t *testing.T) {
	d := dynFixture()
	if got := d.Epoch("x"); got != 0 {
		t.Errorf("initial epoch = %d, want 0", got)
	}
	want := []Copy{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}}
	if got := d.VotesNow("x"); !reflect.DeepEqual(got, want) {
		t.Errorf("VotesNow = %v, want %v", got, want)
	}
	if stale := d.StaleSites("x"); len(stale) != 0 {
		t.Errorf("fresh tracker has stale sites %v", stale)
	}
	// Majority of 5 single-vote copies: r = w = 3.
	if !d.CanWrite("x", []types.SiteID{1, 2, 3}) || d.CanWrite("x", []types.SiteID{1, 2}) {
		t.Error("initial write quorum should be exactly a 3-site majority")
	}
	if !d.CanRead("x", []types.SiteID{3, 4, 5}) || d.CanRead("x", []types.SiteID{4, 5}) {
		t.Error("initial read quorum should be exactly a 3-site majority")
	}
	// Unknown items never form quorums.
	if d.CanRead("nope", []types.SiteID{1, 2, 3}) || d.CanWrite("nope", []types.SiteID{1, 2, 3}) {
		t.Error("unknown item formed a quorum")
	}
	if d.Reassign("nope", []types.SiteID{1, 2, 3}) {
		t.Error("unknown item reassigned")
	}
}

// TestDynamicEpochMonotonicity: every successful reassignment bumps the
// epoch by exactly one, no-op calls leave it alone, and a site's installed
// epoch never exceeds the item's.
func TestDynamicEpochMonotonicity(t *testing.T) {
	d := dynFixture()
	steps := [][]types.SiteID{
		{1, 2, 3, 4},    // shrink: epoch 1
		{1, 2, 3, 4},    // same basis: no-op
		{1, 2, 3},       // shrink: epoch 2
		{1, 2},          // majority of 3: epoch 3
		{1, 2, 3, 4, 5}, // full restoration: epoch 4
	}
	wantEpochs := []uint64{1, 1, 2, 3, 4}
	wantInstalled := []bool{true, false, true, true, true}
	for i, s := range steps {
		installed := d.Reassign("x", s)
		if installed != wantInstalled[i] {
			t.Errorf("step %d (%v): installed = %v, want %v", i, s, installed, wantInstalled[i])
		}
		if got := d.Epoch("x"); got != wantEpochs[i] {
			t.Errorf("step %d: epoch = %d, want %d", i, got, wantEpochs[i])
		}
		for site := types.SiteID(1); site <= 5; site++ {
			if at := d.EpochAt("x", site); at > d.Epoch("x") {
				t.Errorf("step %d: site %v installed epoch %d > item epoch %d", i, site, at, d.Epoch("x"))
			}
		}
	}
	if re, ro := d.Transitions(); re != 4 || ro != 1 {
		t.Errorf("transitions = %d/%d, want 4 reassignments, 1 restoration", re, ro)
	}
}

// TestDynamicStaleMinorityRejected is the epoch-guard contract: sites that
// missed reassignments hold few or no votes under any table they know, so
// they can neither form quorums nor install tables of their own — even when
// they would hold a majority under the table they last saw.
func TestDynamicStaleMinorityRejected(t *testing.T) {
	d := dynFixture()
	if !d.Reassign("x", []types.SiteID{1, 2, 3, 4}) { // 5 → 4, epoch 1
		t.Fatal("first shrink rejected")
	}
	if !d.Reassign("x", []types.SiteID{1, 2, 3}) { // 4 → 3, epoch 2
		t.Fatal("second shrink rejected")
	}

	// {3,4,5} would be a majority of the ORIGINAL 5-site table, but site 3
	// carries the epoch-2 table (basis {1,2,3}, w=2) under which the group
	// holds only site 3's single vote.
	if d.CanWrite("x", []types.SiteID{3, 4, 5}) {
		t.Error("stale trio formed a write quorum under a superseded table")
	}
	// {4,5}: site 4's newest table is epoch 1 (basis {1,2,3,4}, w=3); the
	// pair holds 1 vote under it.
	if d.CanWrite("x", []types.SiteID{4, 5}) || d.CanRead("x", []types.SiteID{4, 5}) {
		t.Error("stale pair formed a quorum")
	}
	if d.Reassign("x", []types.SiteID{4, 5}) {
		t.Error("stale pair installed a table")
	}
	if got := d.Epoch("x"); got != 2 {
		t.Errorf("epoch moved to %d under stale-minority pressure", got)
	}
	if got := d.StaleSites("x"); !reflect.DeepEqual(got, []types.SiteID{4, 5}) {
		t.Errorf("StaleSites = %v, want [4 5]", got)
	}

	// A mixed group containing a current-basis majority may expand the
	// basis (the rejoin path): {2,3} know the epoch-2 table and hold 2 of
	// its 3 votes, so {2,3,4} may install epoch 3 with site 4 back in.
	if !d.Reassign("x", []types.SiteID{2, 3, 4}) {
		t.Fatal("legal rejoin rejected")
	}
	if got := d.Epoch("x"); got != 3 {
		t.Errorf("epoch after rejoin = %d, want 3", got)
	}
	if d.InBasis("x", 1) || !d.InBasis("x", 4) {
		t.Error("rejoin basis wrong: want site 4 in, site 1 out")
	}
	// Site 1 is now the stale one; alone it cannot do anything.
	if d.CanWrite("x", []types.SiteID{1}) || d.Reassign("x", []types.SiteID{1}) {
		t.Error("freshly stale site retained power")
	}
}

// TestDynamicWeightedVotes: static copy weights carry into reassigned
// tables, and majorities are counted in votes, not sites.
func TestDynamicWeightedVotes(t *testing.T) {
	d := NewDynamic(MustAssignment(ItemConfig{
		Item:   "x",
		Copies: []Copy{{1, 3}, {2, 1}, {3, 1}, {4, 1}, {5, 1}},
		R:      4, W: 4,
	}))
	// {1,2}: 4 of 7 votes — a majority despite being 2 of 5 sites.
	if !d.Reassign("x", []types.SiteID{1, 2}) {
		t.Fatal("weighted majority rejected")
	}
	want := []Copy{{1, 3}, {2, 1}}
	if got := d.VotesNow("x"); !reflect.DeepEqual(got, want) {
		t.Errorf("VotesNow = %v, want %v", got, want)
	}
	// New table totals 4 votes: w = 3, so site 1 alone (3 votes) suffices.
	if !d.CanWrite("x", []types.SiteID{1}) {
		t.Error("3-of-4 weighted write quorum rejected")
	}
	if d.CanWrite("x", []types.SiteID{2}) {
		t.Error("1-of-4 vote accepted as write quorum")
	}
}

func TestDynamicVotesAmongReportsEpoch(t *testing.T) {
	d := dynFixture()
	d.Reassign("x", []types.SiteID{1, 2, 3})
	// The epoch-1 table totals 3 votes: w = 2, r = 3+1-2 = 2.
	got, r, w, epoch := d.VotesAmong("x", []types.SiteID{1, 2})
	if got != 2 || r != 2 || w != 2 || epoch != 1 {
		t.Errorf("VotesAmong = (%d, %d, %d, %d), want (2, 2, 2, 1)", got, r, w, epoch)
	}
	// A group with no copy site reports zero votes against the current table.
	got, _, w, epoch = d.VotesAmong("x", []types.SiteID{9})
	if got != 0 || w != 2 || epoch != 1 {
		t.Errorf("copyless VotesAmong = (%d, w=%d, epoch=%d), want (0, 2, 1)", got, w, epoch)
	}
}

// TestDynamicConcurrentUse hammers the tracker from many goroutines; run
// with -race this is the concurrency contract.
func TestDynamicConcurrentUse(t *testing.T) {
	asgn := MustAssignment(
		Uniform("x", 3, 3, 1, 2, 3, 4, 5),
		Uniform("y", 2, 2, 1, 2, 3),
	)
	d := NewDynamic(asgn)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			item := types.ItemID("x")
			if g%2 == 1 {
				item = "y"
			}
			bases := [][]types.SiteID{{1, 2, 3, 4, 5}, {1, 2, 3}, {1, 2, 3, 4}, {2, 3}}
			for i := 0; i < 200; i++ {
				d.Reassign(item, bases[i%len(bases)])
				d.CanRead(item, bases[(i+1)%len(bases)])
				d.CanWrite(item, bases[(i+2)%len(bases)])
				d.Epoch(item)
				d.VotesNow(item)
				d.StaleSites(item)
				d.InBasis(item, types.SiteID(i%5+1))
				d.Transitions()
			}
		}()
	}
	wg.Wait()
	// Whatever the interleaving, the guard invariants hold.
	for _, item := range []types.ItemID{"x", "y"} {
		copies := d.VotesNow(item)
		total := 0
		for _, cp := range copies {
			total += cp.Votes
		}
		if len(copies) == 0 || total == 0 {
			t.Errorf("%s: empty basis after concurrent churn", item)
		}
		re, ro := d.Transitions()
		if re < ro {
			t.Errorf("more restorations (%d) than reassignments (%d)", ro, re)
		}
	}
}

func TestDynamicAssignmentAccessor(t *testing.T) {
	asgn := MustAssignment(Uniform("x", 2, 2, 1, 2, 3))
	d := NewDynamic(asgn)
	if d.Assignment() != asgn {
		t.Error("Assignment accessor lost the wrapped assignment")
	}
}

func ExampleDynamic() {
	d := NewDynamic(MustAssignment(Uniform("x", 3, 3, 1, 2, 3, 4)))
	d.Reassign("x", []types.SiteID{1, 2, 3}) // a committed write missed site 4
	fmt.Println("epoch:", d.Epoch("x"))
	fmt.Println("survivor pair has write quorum:", d.CanWrite("x", []types.SiteID{1, 2}))
	fmt.Println("stale site alone:", d.CanWrite("x", []types.SiteID{4}))
	// Output:
	// epoch: 1
	// survivor pair has write quorum: true
	// stale site alone: false
}
