package voting

import (
	"fmt"
	"strings"
)

// Strategy selects the partition-processing strategy of the data-access
// layer: how many copies a read or write must touch, and what happens when a
// write cannot reach every copy.
type Strategy uint8

// Strategies.
const (
	// StrategyQuorum is Gifford weighted voting: every read collects r(x)
	// votes and every write collects w(x) votes, always. This is the
	// strategy the paper's protocols are built around, and the zero value.
	StrategyQuorum Strategy = iota
	// StrategyMissingWrites is the Eager & Sevcik adaptive scheme (ACM TODS
	// 1983, reference [5] of the paper): while an item has no missing
	// writes it runs optimistically — read any one copy, write all copies —
	// and the first write that misses a copy demotes the item to
	// pessimistic quorum mode until the stale copies catch up.
	StrategyMissingWrites
	// StrategyDynamic is dynamic vote reassignment (Jajodia & Mutchler,
	// SIGMOD 1987; Barbara, Garcia-Molina & Spauster, ACM TODS 1989): after
	// each committed write the reachable majority of an item's copies
	// installs a new, version-numbered vote table in which only the current
	// survivor set holds votes, so quorums are majorities of the survivors
	// rather than of the original copy set. Epoch guards keep a stale
	// minority from ever forming a quorum under a superseded table.
	StrategyDynamic

	// StrategyInvalid is the value ParseStrategy returns alongside a
	// non-nil error. It is deliberately NOT the zero value: a caller that
	// ignores the error cannot silently fall back to StrategyQuorum, and
	// every consumer of the value treats it as unusable.
	StrategyInvalid Strategy = 0xFF
)

// Valid reports whether s is one of the three usable strategies. Cluster
// constructors reject invalid values instead of silently running under the
// quorum default — the same dropped-error hazard ParseStrategy's
// StrategyInvalid sentinel exists to prevent.
func (s Strategy) Valid() bool {
	switch s {
	case StrategyQuorum, StrategyMissingWrites, StrategyDynamic:
		return true
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyQuorum:
		return "quorum"
	case StrategyMissingWrites:
		return "missing-writes"
	case StrategyDynamic:
		return "dynamic"
	case StrategyInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy maps a command-line spelling onto a Strategy. It accepts
// "quorum" and "gifford"; "missing-writes", "missingwrites" and "mw";
// "dynamic", "dynamic-voting", "dynamicvoting" and "dv" (all
// case-insensitive). The empty string is documented shorthand for the
// default, StrategyQuorum. Unrecognized spellings return StrategyInvalid —
// never a usable strategy — together with a non-nil error, so callers that
// drop the error cannot silently run under the quorum fallback.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quorum", "gifford", "":
		return StrategyQuorum, nil
	case "missing-writes", "missingwrites", "mw":
		return StrategyMissingWrites, nil
	case "dynamic", "dynamic-voting", "dynamicvoting", "dv":
		return StrategyDynamic, nil
	default:
		return StrategyInvalid, fmt.Errorf("voting: unknown strategy %q (want quorum, missing-writes or dynamic)", s)
	}
}
