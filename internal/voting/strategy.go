package voting

import (
	"fmt"
	"strings"
)

// Strategy selects the partition-processing strategy of the data-access
// layer: how many copies a read or write must touch, and what happens when a
// write cannot reach every copy.
type Strategy uint8

// Strategies.
const (
	// StrategyQuorum is Gifford weighted voting: every read collects r(x)
	// votes and every write collects w(x) votes, always. This is the
	// strategy the paper's protocols are built around.
	StrategyQuorum Strategy = iota
	// StrategyMissingWrites is the Eager & Sevcik adaptive scheme (ACM TODS
	// 1983, reference [5] of the paper): while an item has no missing
	// writes it runs optimistically — read any one copy, write all copies —
	// and the first write that misses a copy demotes the item to
	// pessimistic quorum mode until the stale copies catch up.
	StrategyMissingWrites
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyQuorum:
		return "quorum"
	case StrategyMissingWrites:
		return "missing-writes"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy maps a command-line spelling onto a Strategy. It accepts
// "quorum", "missing-writes", "missingwrites" and "mw" (case-insensitive).
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quorum", "gifford", "":
		return StrategyQuorum, nil
	case "missing-writes", "missingwrites", "mw":
		return StrategyMissingWrites, nil
	default:
		return StrategyQuorum, fmt.Errorf("voting: unknown strategy %q (want quorum or missing-writes)", s)
	}
}
