package voting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcommit/internal/types"
)

func TestItemConfigValidate(t *testing.T) {
	ok := Uniform("x", 2, 3, 1, 2, 3, 4)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		ic   ItemConfig
	}{
		{"no copies", ItemConfig{Item: "x", R: 1, W: 1}},
		{"zero votes", ItemConfig{Item: "x", Copies: []Copy{{Site: 1, Votes: 0}}, R: 1, W: 1}},
		{"dup site", ItemConfig{Item: "x", Copies: []Copy{{Site: 1, Votes: 1}, {Site: 1, Votes: 1}}, R: 1, W: 2}},
		{"r+w too small", Uniform("x", 1, 3, 1, 2, 3, 4)}, // 1+3 = 4 = v
		{"w too small", Uniform("x", 3, 2, 1, 2, 3, 4)},   // w=2 ≤ v/2
		{"r exceeds v", Uniform("x", 5, 4, 1, 2, 3, 4)},   // r > v
		{"zero quorum", Uniform("x", 0, 3, 1, 2, 3, 4)},
	}
	for _, c := range cases {
		if err := c.ic.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestItemConfigAccessors(t *testing.T) {
	ic := ItemConfig{Item: "x", Copies: []Copy{{Site: 3, Votes: 2}, {Site: 1, Votes: 1}}, R: 2, W: 2}
	if ic.TotalVotes() != 3 {
		t.Errorf("TotalVotes = %d", ic.TotalVotes())
	}
	if ic.VotesAt(3) != 2 || ic.VotesAt(1) != 1 || ic.VotesAt(9) != 0 {
		t.Error("VotesAt wrong")
	}
	sites := ic.Sites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 3 {
		t.Errorf("Sites = %v, want ascending", sites)
	}
}

func TestAssignmentConstruction(t *testing.T) {
	if _, err := NewAssignment(Uniform("x", 2, 3, 1, 2, 3, 4), Uniform("x", 2, 3, 5, 6, 7, 8)); err == nil {
		t.Error("duplicate item accepted")
	}
	if _, err := NewAssignment(Uniform("x", 1, 3, 1, 2, 3, 4)); err == nil {
		t.Error("invalid config accepted")
	}
	a := MustAssignment(Uniform("x", 2, 3, 1, 2, 3, 4), Uniform("y", 2, 3, 5, 6, 7, 8))
	items := a.Items()
	if len(items) != 2 || items[0] != "x" || items[1] != "y" {
		t.Errorf("Items = %v", items)
	}
	if _, ok := a.Item("x"); !ok {
		t.Error("Item lookup failed")
	}
	if _, ok := a.Item("z"); ok {
		t.Error("absent item found")
	}
	if a.ReadQuorum("x") != 2 || a.WriteQuorum("x") != 3 || a.TotalVotes("x") != 4 {
		t.Error("quorum accessors wrong")
	}
	if a.VotesAt(2, "x") != 1 || a.VotesAt(2, "y") != 0 {
		t.Error("VotesAt wrong")
	}
}

func TestMustAssignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssignment should panic on invalid input")
		}
	}()
	MustAssignment(Uniform("x", 1, 1, 1, 2, 3))
}

func TestParticipants(t *testing.T) {
	a := MustAssignment(Uniform("x", 2, 3, 1, 2, 3, 4), Uniform("y", 2, 3, 3, 5, 6, 7))
	got := a.Participants([]types.ItemID{"x", "y"})
	want := []types.SiteID{1, 2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Participants = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Participants = %v, want %v", got, want)
		}
	}
	if ps := a.Participants([]types.ItemID{"x"}); len(ps) != 4 {
		t.Errorf("x participants = %v", ps)
	}
}

func TestQuorumPredicates(t *testing.T) {
	// Example 1 layout: x at 1-4, y at 5-8, r=2, w=3.
	a := MustAssignment(Uniform("x", 2, 3, 1, 2, 3, 4), Uniform("y", 2, 3, 5, 6, 7, 8))
	items := []types.ItemID{"x", "y"}

	g1 := []types.SiteID{2, 3}    // Example 1's G1 survivors
	g2 := []types.SiteID{4, 5}    // G2
	g3 := []types.SiteID{6, 7, 8} // G3

	if !a.HasReadQuorum("x", g1) {
		t.Error("G1 should read x (2 votes ≥ r=2)")
	}
	if a.HasWriteQuorum("x", g1) {
		t.Error("G1 must not write x (2 < w=3)")
	}
	if !a.HasWriteQuorum("y", g3) {
		t.Error("G3 should write y (3 ≥ w=3)")
	}
	if a.HasReadQuorum("x", g3) {
		t.Error("G3 has no x copies")
	}
	if a.HasReadQuorum("z", g1) || a.HasWriteQuorum("z", g1) {
		t.Error("unknown item must have no quorums")
	}

	// TP1 conditions on the Example 1 partitions:
	if a.WriteQuorumForEvery(items, g1) {
		t.Error("G1 lacks write quorum for y")
	}
	if !a.ReadQuorumForSome(items, g1) {
		t.Error("G1 has read quorum for x → abort quorum possible")
	}
	if a.ReadQuorumForSome(items, g2) {
		t.Error("G2 must have no read quorum for any item (1 vote each)")
	}
	if !a.ReadQuorumForSome(items, g3) {
		t.Error("G3 has read quorum for y")
	}
	// Whole cluster satisfies everything.
	all := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	if !a.WriteQuorumForEvery(items, all) || !a.ReadQuorumForEvery(items, all) ||
		!a.WriteQuorumForSome(items, all) || !a.ReadQuorumForSome(items, all) {
		t.Error("full cluster should satisfy all quorum predicates")
	}
	// Empty item list: "for every" over nothing is defined false here
	// (transactions write at least one item).
	if a.WriteQuorumForEvery(nil, all) || a.ReadQuorumForEvery(nil, all) {
		t.Error("empty item list must not satisfy for-every predicates")
	}
}

func TestMajorityQuorums(t *testing.T) {
	for n := 1; n <= 9; n++ {
		r, w := MajorityQuorums(n)
		if r+w <= n {
			t.Errorf("n=%d: r+w=%d not > v", n, r+w)
		}
		if 2*w <= n {
			t.Errorf("n=%d: w=%d not > v/2", n, w)
		}
		ic := Uniform("x", r, w, sitesUpTo(n)...)
		if err := ic.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func sitesUpTo(n int) []types.SiteID {
	out := make([]types.SiteID, n)
	for i := range out {
		out[i] = types.SiteID(i + 1)
	}
	return out
}

// TestQuorumIntersectionProperty verifies the heart of the Gifford
// constraints for arbitrary valid configurations: any site set holding a
// write quorum intersects (in votes) any set holding a read quorum, and two
// disjoint site sets can never both hold write quorums.
func TestQuorumIntersectionProperty(t *testing.T) {
	f := func(nSites uint8, voteSeeds []uint8, split []bool) bool {
		n := int(nSites%6) + 2 // 2..7 sites
		copies := make([]Copy, n)
		total := 0
		for i := 0; i < n; i++ {
			v := 1
			if i < len(voteSeeds) {
				v = int(voteSeeds[i]%3) + 1
			}
			copies[i] = Copy{Site: types.SiteID(i + 1), Votes: v}
			total += v
		}
		w := total/2 + 1
		r := total + 1 - w
		ic := ItemConfig{Item: "x", Copies: copies, R: r, W: w}
		if ic.Validate() != nil {
			return true // skip rare degenerate (shouldn't happen)
		}
		a := MustAssignment(ic)

		// Partition the sites into two disjoint groups by split bits.
		var g1, g2 []types.SiteID
		for i := 0; i < n; i++ {
			inG1 := i < len(split) && split[i]
			if inG1 {
				g1 = append(g1, types.SiteID(i+1))
			} else {
				g2 = append(g2, types.SiteID(i+1))
			}
		}
		// Two disjoint write quorums are impossible.
		if a.HasWriteQuorum("x", g1) && a.HasWriteQuorum("x", g2) {
			return false
		}
		// A write quorum and a read quorum cannot live in disjoint groups.
		if a.HasWriteQuorum("x", g1) && a.HasReadQuorum("x", g2) {
			return false
		}
		if a.HasWriteQuorum("x", g2) && a.HasReadQuorum("x", g1) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestVotesForAdditivityProperty: VotesFor is additive over disjoint site
// sets and bounded by TotalVotes.
func TestVotesForAdditivityProperty(t *testing.T) {
	a := MustAssignment(Uniform("x", 3, 4, 1, 2, 3, 4, 5, 6))
	f := func(mask uint8) bool {
		var in, out []types.SiteID
		for i := 0; i < 6; i++ {
			if mask&(1<<i) != 0 {
				in = append(in, types.SiteID(i+1))
			} else {
				out = append(out, types.SiteID(i+1))
			}
		}
		return a.VotesFor("x", in)+a.VotesFor("x", out) == a.TotalVotes("x")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// TestQuorumMetAgainstHasQuorum: the vote-sum primitives agree with the
// site-list quorum checks for every subset of holders.
func TestQuorumMetAgainstHasQuorum(t *testing.T) {
	a := MustAssignment(Uniform("x", 3, 4, 1, 2, 3, 4, 5, 6))
	for mask := 0; mask < 1<<6; mask++ {
		var sites []types.SiteID
		for i := 0; i < 6; i++ {
			if mask&(1<<i) != 0 {
				sites = append(sites, types.SiteID(i+1))
			}
		}
		votes := a.VotesFor("x", sites)
		if got, want := a.ReadQuorumMet("x", votes), a.HasReadQuorum("x", sites); got != want {
			t.Fatalf("ReadQuorumMet(%d) = %v, HasReadQuorum(%v) = %v", votes, got, sites, want)
		}
		if got, want := a.WriteQuorumMet("x", votes), a.HasWriteQuorum("x", sites); got != want {
			t.Fatalf("WriteQuorumMet(%d) = %v, HasWriteQuorum(%v) = %v", votes, got, sites, want)
		}
	}
	if a.ReadQuorumMet("missing", 100) || a.WriteQuorumMet("missing", 100) {
		t.Error("quorum met for unknown item")
	}
}

// TestForEachItemOrder: ForEachItem visits every item in declaration order,
// matching Items().
func TestForEachItemOrder(t *testing.T) {
	a := MustAssignment(
		Uniform("b", 1, 2, 1, 2),
		Uniform("a", 1, 2, 2, 3),
		Uniform("c", 1, 2, 3, 4),
	)
	var seen []types.ItemID
	a.ForEachItem(func(ic ItemConfig) { seen = append(seen, ic.Item) })
	want := a.Items()
	if len(seen) != len(want) {
		t.Fatalf("visited %d items, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, seen, want)
		}
	}
}
