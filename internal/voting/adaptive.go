package voting

import (
	"fmt"
	"sort"
	"sync"

	"qcommit/internal/types"
)

// This file implements the missing-writes scheme (Eager & Sevcik, "Achieving
// robustness in distributed database systems", ACM TODS 1983 — reference [5]
// of the paper): an adaptive voting strategy that improves performance when
// there are no failures.
//
// While an item has no *missing writes*, transactions run in optimistic mode
// — read any single copy, write all copies — which is cheaper than quorum
// operations. The first write that fails to reach every copy records a
// missing write for the copies it missed; from then on the item operates in
// pessimistic (quorum) mode with the item's configured r(x)/w(x), which the
// Gifford constraints keep correct. When the stale copies catch up, the
// missing writes are resolved and the item returns to optimistic mode.
//
// The paper's conclusion notes its termination-protocol idea "can be
// generalized to work with other partition-processing strategies"; this
// module provides the obvious second strategy to generalize to.

// Mode is an item's current missing-writes operating mode.
type Mode uint8

// Modes.
const (
	// Optimistic: read-one / write-all. Requires no missing writes.
	Optimistic Mode = iota
	// Pessimistic: quorum reads and writes with the configured r(x)/w(x).
	Pessimistic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Optimistic {
		return "optimistic"
	}
	return "pessimistic"
}

// Adaptive tracks missing writes per item on top of a static Assignment and
// answers which quorum each operation needs right now. It is safe for
// concurrent use.
type Adaptive struct {
	asgn *Assignment

	mu sync.Mutex
	// missing[item] is the set of sites whose copy missed at least one
	// write since the item last left optimistic mode.
	missing map[types.ItemID]map[types.SiteID]bool
	// demotions counts optimistic→pessimistic transitions, restorations the
	// reverse — the churn study's mode-churn metric.
	demotions    int
	restorations int
}

// NewAdaptive wraps an assignment with missing-writes tracking. All items
// start in optimistic mode.
func NewAdaptive(asgn *Assignment) *Adaptive {
	return &Adaptive{
		asgn:    asgn,
		missing: make(map[types.ItemID]map[types.SiteID]bool),
	}
}

// Assignment returns the underlying static assignment.
func (a *Adaptive) Assignment() *Assignment { return a.asgn }

// ModeOf returns the item's current mode.
func (a *Adaptive) ModeOf(item types.ItemID) Mode {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.missing[item]) > 0 {
		return Pessimistic
	}
	return Optimistic
}

// MissingAt returns the sites currently carrying missing writes for item,
// ascending.
func (a *Adaptive) MissingAt(item types.ItemID) []types.SiteID {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.missing[item]
	out := make([]types.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadQuorumNow returns the votes a read of item must collect right now:
// in optimistic mode any single copy suffices (1 vote); in pessimistic mode
// the configured r(x).
func (a *Adaptive) ReadQuorumNow(item types.ItemID) (int, Mode, error) {
	ic, ok := a.asgn.Item(item)
	if !ok {
		return 0, Optimistic, fmt.Errorf("voting: unknown item %q", item)
	}
	if a.ModeOf(item) == Pessimistic {
		return ic.R, Pessimistic, nil
	}
	return 1, Optimistic, nil
}

// WriteQuorumNow returns the votes a write must collect right now: all
// copies' votes in optimistic mode (write-all), the configured w(x) in
// pessimistic mode.
func (a *Adaptive) WriteQuorumNow(item types.ItemID) (int, Mode, error) {
	ic, ok := a.asgn.Item(item)
	if !ok {
		return 0, Optimistic, fmt.Errorf("voting: unknown item %q", item)
	}
	if a.ModeOf(item) == Pessimistic {
		return ic.W, Pessimistic, nil
	}
	return ic.TotalVotes(), Optimistic, nil
}

// RecordWrite registers the result of a write operation: reached lists the
// sites whose copies applied it. If any copy of the item was missed, those
// sites gain missing writes and the item degrades to pessimistic mode. The
// write is only legal if the reached sites carry the currently required
// write quorum; RecordWrite reports false (and records nothing) otherwise.
func (a *Adaptive) RecordWrite(item types.ItemID, reached []types.SiteID) bool {
	ic, ok := a.asgn.Item(item)
	if !ok {
		return false
	}
	need, _, _ := a.WriteQuorumNow(item)
	got := a.asgn.VotesFor(item, reached)
	if got < need && got < ic.W {
		// Not even a pessimistic write quorum: the write must not proceed.
		return false
	}
	a.DegradeExcept(item, reached)
	return true
}

// DegradeExcept records missing writes for every copy of item NOT listed in
// reached, demoting the item to pessimistic mode if any copy was missed. It
// performs no quorum legality check — the engine calls it at commit-apply
// time, after the commit protocol has already collected the write quorum —
// whereas RecordWrite is the standalone front door that also enforces
// legality.
func (a *Adaptive) DegradeExcept(item types.ItemID, reached []types.SiteID) {
	ic, ok := a.asgn.Item(item)
	if !ok {
		return
	}
	reachedSet := make(map[types.SiteID]bool, len(reached))
	for _, s := range reached {
		reachedSet[s] = true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	wasOptimistic := len(a.missing[item]) == 0
	for _, cp := range ic.Copies {
		if !reachedSet[cp.Site] {
			set := a.missing[item]
			if set == nil {
				set = make(map[types.SiteID]bool)
				a.missing[item] = set
			}
			set[cp.Site] = true
		}
	}
	if wasOptimistic && len(a.missing[item]) > 0 {
		a.demotions++
	}
}

// IsMissing reports whether site currently carries a missing write for item.
func (a *Adaptive) IsMissing(item types.ItemID, site types.SiteID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.missing[item][site]
}

// Transitions returns the cumulative mode-transition counts: demotions
// (optimistic→pessimistic) and restorations (pessimistic→optimistic).
func (a *Adaptive) Transitions() (demotions, restorations int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.demotions, a.restorations
}

// ResolveMissing clears missing writes for the given sites (their copies
// caught up, e.g. by copying the latest version during recovery). When the
// last missing write of an item resolves, the item returns to optimistic
// mode.
func (a *Adaptive) ResolveMissing(item types.ItemID, sites ...types.SiteID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.missing[item]
	wasPessimistic := len(set) > 0
	for _, s := range sites {
		delete(set, s)
	}
	if len(set) == 0 {
		delete(a.missing, item)
		if wasPessimistic {
			a.restorations++
		}
	}
}

// CanRead reports whether the given sites can serve a read of item under the
// current mode. In pessimistic mode the sites must carry r(x) votes; in
// optimistic mode any copy-holding site works, but it must not be one
// carrying a missing write (vacuous: optimistic mode implies none).
func (a *Adaptive) CanRead(item types.ItemID, sites []types.SiteID) bool {
	need, mode, err := a.ReadQuorumNow(item)
	if err != nil {
		return false
	}
	if mode == Pessimistic {
		// Copies carrying missing writes must not serve reads.
		fresh := a.freshSites(item, sites)
		return a.asgn.VotesFor(item, fresh) >= need
	}
	return a.asgn.VotesFor(item, sites) >= 1
}

// CanWrite reports whether the given sites can accept a write of item under
// the current mode.
func (a *Adaptive) CanWrite(item types.ItemID, sites []types.SiteID) bool {
	need, _, err := a.WriteQuorumNow(item)
	if err != nil {
		return false
	}
	return a.asgn.VotesFor(item, sites) >= need
}

func (a *Adaptive) freshSites(item types.ItemID, sites []types.SiteID) []types.SiteID {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.missing[item]
	out := make([]types.SiteID, 0, len(sites))
	for _, s := range sites {
		if !set[s] {
			out = append(out, s)
		}
	}
	return out
}
