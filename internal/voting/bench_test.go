package voting

import (
	"testing"

	"qcommit/internal/types"
)

func benchAssignment() *Assignment {
	return MustAssignment(
		Uniform("x", 2, 3, 1, 2, 3, 4),
		Uniform("y", 2, 3, 5, 6, 7, 8),
		Uniform("z", 3, 4, 1, 3, 5, 7, 2, 4),
	)
}

func BenchmarkQuorumPredicates(b *testing.B) {
	a := benchAssignment()
	items := []types.ItemID{"x", "y", "z"}
	sites := []types.SiteID{2, 3, 5, 6, 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.WriteQuorumForEvery(items, sites)
		_ = a.ReadQuorumForSome(items, sites)
	}
}

func BenchmarkParticipants(b *testing.B) {
	a := benchAssignment()
	items := []types.ItemID{"x", "y", "z"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := a.Participants(items); len(got) != 8 {
			b.Fatal("bad participants")
		}
	}
}

func BenchmarkVotesFor(b *testing.B) {
	a := benchAssignment()
	sites := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a.VotesFor("z", sites) != 6 {
			b.Fatal("bad votes")
		}
	}
}
