// Package skeenq implements Skeen's quorum-based commit protocol (Proc. 6th
// Berkeley Workshop, 1982 — reference [16] of the paper), the prior work the
// paper improves on.
//
// Each site is assigned some number of votes. When failures occur, a
// transaction is committed only if a commit quorum Vc of site votes is cast
// for committing, and aborted only if an abort quorum Va is cast for
// aborting, with Vc + Va > V (the total). Because the quorums are counted in
// *site* votes regardless of which data items a partition can serve, a
// partition may block the transaction even though it holds a replica quorum
// for some written item — the availability gap Example 1 demonstrates and
// the paper's protocols close.
package skeenq

import (
	"fmt"

	"qcommit/internal/protocol"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// Spec is Skeen's quorum protocol with a site-vote assignment.
type Spec struct {
	// Votes assigns each site its vote weight. Sites absent from the map
	// have 0 votes.
	Votes map[types.SiteID]int
	// Vc is the commit quorum; Va is the abort quorum; Vc + Va must exceed
	// the total votes.
	Vc, Va int
	// PatienceRounds caps participant-initiated termination attempts.
	PatienceRounds int
}

var _ protocol.Spec = Spec{}

// Uniform builds a Spec giving one vote to each site, with quorums Vc, Va.
func Uniform(sites []types.SiteID, vc, va int) Spec {
	votes := make(map[types.SiteID]int, len(sites))
	for _, s := range sites {
		votes[s] = 1
	}
	return Spec{Votes: votes, Vc: vc, Va: va}
}

// Validate checks the quorum-intersection constraint Vc + Va > V.
func (s Spec) Validate() error {
	total := 0
	for _, v := range s.Votes {
		if v < 0 {
			return fmt.Errorf("skeenq: negative site vote")
		}
		total += v
	}
	if s.Vc <= 0 || s.Va <= 0 {
		return fmt.Errorf("skeenq: quorums must be positive (Vc=%d Va=%d)", s.Vc, s.Va)
	}
	if s.Vc+s.Va <= total {
		return fmt.Errorf("skeenq: Vc+Va must exceed total votes (Vc=%d Va=%d V=%d)", s.Vc, s.Va, total)
	}
	return nil
}

// Name implements protocol.Spec.
func (Spec) Name() string { return "SkeenQ" }

// NewCoordinator implements protocol.Spec: the coordinator may commit once
// PC-ACKs carry Vc site votes.
func (s Spec) NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID) protocol.Automaton {
	return threephase.NewCoordinator(txn, ws, participants,
		threephase.SiteVoteQuorum{Votes: s.Votes, Quorum: s.Vc}, threephase.AckTimeoutTerminate)
}

// NewParticipant implements protocol.Spec.
func (s Spec) NewParticipant(txn types.TxnID, init *wal.TxnImage) protocol.Automaton {
	return threephase.NewParticipant(txn, init, threephase.ParticipantOpts{PatienceRounds: s.PatienceRounds})
}

// NewTerminator implements protocol.Spec.
func (s Spec) NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32) protocol.Automaton {
	return threephase.NewTerminator(txn, ws, participants, epoch, Rules{Votes: s.Votes, Vc: s.Vc, Va: s.Va})
}

// Rules is Skeen's quorum termination rule set.
type Rules struct {
	Votes  map[types.SiteID]int
	Vc, Va int
}

var _ threephase.Rules = Rules{}

// Name implements threephase.Rules.
func (Rules) Name() string { return "SkeenQ-term" }

func (r Rules) votesOf(sites []types.SiteID) int {
	total := 0
	for _, s := range sites {
		total += r.Votes[s]
	}
	return total
}

// Decide implements threephase.Rules with site-vote quorums.
func (r Rules) Decide(env protocol.Env, t threephase.StateTally) threephase.Verdict {
	switch {
	case t.Any(types.StateCommitted) || r.votesOf(t.In(types.StatePC)) >= r.Vc:
		return threephase.VerdictCommit
	case t.Any(types.StateAborted) || t.Any(types.StateInitial) ||
		r.votesOf(t.In(types.StatePA)) >= r.Va:
		return threephase.VerdictAbort
	case t.Any(types.StatePC) && r.votesOf(t.NotIn(types.StatePA)) >= r.Vc:
		return threephase.VerdictTryCommit
	case r.votesOf(t.NotIn(types.StatePC)) >= r.Va:
		return threephase.VerdictTryAbort
	default:
		return threephase.VerdictBlock
	}
}

// CommitConfirmed implements threephase.Rules.
func (r Rules) CommitConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return r.votesOf(sites) >= r.Vc
}

// AbortConfirmed implements threephase.Rules.
func (r Rules) AbortConfirmed(env protocol.Env, sites []types.SiteID) bool {
	return r.votesOf(sites) >= r.Va
}
