package skeenq

import (
	"testing"

	"qcommit/internal/protocoltest"
	"qcommit/internal/threephase"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func ex1Spec() Spec {
	// Example 1's configuration: one vote per site, Vc=5, Va=4 (Vc+Va=9 > 8).
	return Uniform([]types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}, 5, 4)
}

func env() *protocoltest.Env {
	return protocoltest.New(1, voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	))
}

func TestValidate(t *testing.T) {
	if err := ex1Spec().Validate(); err != nil {
		t.Errorf("Example 1 spec invalid: %v", err)
	}
	bad := Uniform([]types.SiteID{1, 2, 3, 4}, 2, 2) // 2+2 = 4 = V
	if err := bad.Validate(); err == nil {
		t.Error("Vc+Va = V accepted")
	}
	if err := (Spec{Votes: map[types.SiteID]int{1: 1}, Vc: 0, Va: 2}).Validate(); err == nil {
		t.Error("zero quorum accepted")
	}
	if err := (Spec{Votes: map[types.SiteID]int{1: -1}, Vc: 1, Va: 1}).Validate(); err == nil {
		t.Error("negative votes accepted")
	}
}

func TestRulesDecideExample1Partitions(t *testing.T) {
	r := Rules{Votes: ex1Spec().Votes, Vc: 5, Va: 4}
	w, pc := types.StateWait, types.StatePC
	e := env()

	// G1 = {2,3} both W: 2 votes < Va=4 and < Vc=5 → block.
	if got := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{2: w, 3: w})); got != threephase.VerdictBlock {
		t.Errorf("G1 = %v, want block", got)
	}
	// G2 = {4 W, 5 PC}: 2 votes → block.
	if got := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{4: w, 5: pc})); got != threephase.VerdictBlock {
		t.Errorf("G2 = %v, want block", got)
	}
	// G3 = {6,7,8} all W: 3 votes < 4 → block.
	if got := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{6: w, 7: w, 8: w})); got != threephase.VerdictBlock {
		t.Errorf("G3 = %v, want block", got)
	}
}

func TestRulesQuorumPaths(t *testing.T) {
	r := Rules{Votes: ex1Spec().Votes, Vc: 5, Va: 4}
	w, pc, pa := types.StateWait, types.StatePC, types.StatePA
	e := env()

	// 4 non-PC sites ≥ Va=4 → try-abort.
	got := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: w, 3: w, 4: w, 6: w}))
	if got != threephase.VerdictTryAbort {
		t.Errorf("4 W sites = %v, want try-abort", got)
	}
	// 5 non-PA sites with one PC ≥ Vc=5 → try-commit.
	got = r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: w, 3: w, 4: w, 5: pc, 6: w}))
	if got != threephase.VerdictTryCommit {
		t.Errorf("5 sites with PC = %v, want try-commit", got)
	}
	// PA sites with Va votes → immediate abort.
	got = r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: pa, 3: pa, 4: pa, 6: pa, 7: w}))
	if got != threephase.VerdictAbort {
		t.Errorf("4 PA sites = %v, want abort", got)
	}
	// PC sites with Vc votes → immediate commit.
	got = r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: pc, 3: pc, 4: pc, 5: pc, 6: pc, 7: w}))
	if got != threephase.VerdictCommit {
		t.Errorf("5 PC sites = %v, want commit", got)
	}
	// Initial state present → immediate abort.
	got = r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: types.StateInitial, 3: w}))
	if got != threephase.VerdictAbort {
		t.Errorf("q present = %v, want abort", got)
	}
}

func TestConfirmations(t *testing.T) {
	r := Rules{Votes: ex1Spec().Votes, Vc: 5, Va: 4}
	e := env()
	if r.CommitConfirmed(e, []types.SiteID{1, 2, 3, 4}) {
		t.Error("4 votes should not confirm commit (Vc=5)")
	}
	if !r.CommitConfirmed(e, []types.SiteID{1, 2, 3, 4, 5}) {
		t.Error("5 votes should confirm commit")
	}
	if !r.AbortConfirmed(e, []types.SiteID{1, 2, 3, 4}) {
		t.Error("4 votes should confirm abort (Va=4)")
	}
	if r.AbortConfirmed(e, []types.SiteID{1, 2, 3}) {
		t.Error("3 votes should not confirm abort")
	}
}

// TestNoDisjointQuorums: with Vc+Va > V, a commit quorum and an abort quorum
// can never be assembled from disjoint site sets.
func TestNoDisjointQuorums(t *testing.T) {
	spec := ex1Spec()
	r := Rules{Votes: spec.Votes, Vc: spec.Vc, Va: spec.Va}
	e := env()
	all := []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	for mask := 0; mask < 1<<8; mask++ {
		var s1, s2 []types.SiteID
		for i, s := range all {
			if mask&(1<<i) != 0 {
				s1 = append(s1, s)
			} else {
				s2 = append(s2, s)
			}
		}
		if r.CommitConfirmed(e, s1) && r.AbortConfirmed(e, s2) {
			t.Fatalf("disjoint quorums: commit=%v abort=%v", s1, s2)
		}
	}
}

func TestWeightedVotes(t *testing.T) {
	// Give site1 weight 3: it alone can veto an abort quorum.
	spec := Spec{Votes: map[types.SiteID]int{1: 3, 2: 1, 3: 1}, Vc: 3, Va: 3}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Rules{Votes: spec.Votes, Vc: 3, Va: 3}
	e := env()
	got := r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		1: types.StateWait}))
	if got != threephase.VerdictTryAbort {
		t.Errorf("site1 alone (3 votes) = %v, want try-abort", got)
	}
	got = r.Decide(e, threephase.NewStateTally(map[types.SiteID]types.State{
		2: types.StateWait, 3: types.StateWait}))
	if got != threephase.VerdictBlock {
		t.Errorf("sites 2,3 (2 votes) = %v, want block", got)
	}
}
