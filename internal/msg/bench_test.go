package msg

import (
	"testing"

	"qcommit/internal/types"
)

func BenchmarkMarshalVoteReq(b *testing.B) {
	m := VoteReq{
		Txn:          42,
		Coord:        1,
		Participants: []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8},
		Writeset:     types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalVoteReq(b *testing.B) {
	frame, err := Marshal(VoteReq{
		Txn:          42,
		Coord:        1,
		Participants: []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8},
		Writeset:     types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripSmall(b *testing.B) {
	m := PCAck{Txn: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}
