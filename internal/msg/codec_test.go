package msg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qcommit/internal/types"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	ws := types.Writeset{{Item: "x", Value: -42}, {Item: "account/7", Value: 1 << 40}}
	parts := []types.SiteID{1, 2, 3, 8}
	return []Message{
		VoteReq{Txn: 7, Coord: 1, Participants: parts, Writeset: ws},
		VoteResp{Txn: 7, Vote: types.VoteNo},
		VoteResp{Txn: 7, Vote: types.VoteYes},
		PrepareToCommit{Txn: 7},
		PCAck{Txn: 7},
		PrepareToAbort{Txn: 7},
		PAAck{Txn: 7},
		Commit{Txn: 7},
		Abort{Txn: 7},
		Done{Txn: 7},
		StateReq{Txn: 7, Coord: 3, Epoch: 12},
		StateResp{Txn: 7, Epoch: 12, State: types.StatePA},
		DecisionReq{Txn: 7},
		DecisionResp{Txn: 7, Decision: types.DecisionCommit},
		DecisionResp{Txn: 7, Uncommitted: true},
		ElectionCall{Txn: 7, Ballot: 1<<40 | 3, Candidate: 3},
		ElectionOK{Txn: 7, Ballot: 99},
		CoordAnnounce{Txn: 7, Ballot: 99, Coord: 2},
	}
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	for _, m := range allMessages() {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", m, err)
		}
		got, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", m, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(got)) {
			t.Errorf("round trip %T:\n in: %#v\nout: %#v", m, m, got)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(m Message) Message {
	if v, ok := m.(VoteReq); ok {
		if len(v.Participants) == 0 {
			v.Participants = nil
		}
		if len(v.Writeset) == 0 {
			v.Writeset = nil
		}
		return v
	}
	return m
}

func TestCodecChecksumDetectsCorruption(t *testing.T) {
	frame, err := Marshal(Commit{Txn: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := Unmarshal(bad); err == nil {
			// A flip in the CRC bytes themselves must also be caught.
			t.Errorf("corruption at byte %d went undetected", i)
		}
	}
}

func TestCodecShortFrame(t *testing.T) {
	for _, frame := range [][]byte{nil, {}, {1}, {1, 2, 3, 4}} {
		if _, err := Unmarshal(frame); err == nil {
			t.Errorf("frame %v should fail", frame)
		}
	}
}

func TestCodecUnknownKind(t *testing.T) {
	// Build a frame with an unknown kind byte but a valid checksum.
	frame, err := Marshal(Commit{Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Re-marshal manually: corrupting kind invalidates the CRC, which is
	// also acceptable; use Marshal on a fake type to hit the encoder error.
	type weird struct{ Message }
	if _, err := Marshal(weird{Commit{}}); err == nil {
		t.Error("marshalling an unknown concrete type should fail")
	}
	_ = frame
}

func TestCodecRejectsTruncatedBody(t *testing.T) {
	full, err := Marshal(VoteReq{Txn: 3, Coord: 1, Participants: []types.SiteID{1, 2}, Writeset: types.Writeset{{Item: "x", Value: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	// Remove bytes from the middle, fix up nothing: CRC must catch it.
	trunc := append([]byte(nil), full[:len(full)-6]...)
	trunc = append(trunc, full[len(full)-4:]...)
	if _, err := Unmarshal(trunc); err == nil {
		t.Error("truncated body went undetected")
	}
}

func TestCodecRoundTripPropertyVoteReq(t *testing.T) {
	f := func(txn uint64, coord int32, parts []int32, items []uint8, vals []int64) bool {
		req := VoteReq{Txn: types.TxnID(txn), Coord: types.SiteID(coord)}
		for _, p := range parts {
			req.Participants = append(req.Participants, types.SiteID(p))
		}
		for i, it := range items {
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			req.Writeset = append(req.Writeset, types.Update{
				Item:  types.ItemID(string(rune('a' + it%26))),
				Value: v,
			})
		}
		frame, err := Marshal(req)
		if err != nil {
			return false
		}
		got, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(req), normalize(got))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestCodecNeverPanicsOnRandomBytes feeds random frames to Unmarshal; it may
// reject them but must not panic.
func TestCodecNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		frame := make([]byte, n)
		rng.Read(frame)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %v: %v", frame, r)
				}
			}()
			_, _ = Unmarshal(frame)
		}()
	}
}

func TestTxnOfCoversAllKinds(t *testing.T) {
	for _, m := range allMessages() {
		if got := TxnOf(m); got != 7 {
			t.Errorf("TxnOf(%T) = %v, want 7", m, got)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, m := range allMessages() {
		if s := m.Kind().String(); s == "" || s[0] == 'K' {
			t.Errorf("%T kind string = %q", m, s)
		}
	}
	if KindInvalid.String() != "Kind(0)" {
		t.Errorf("invalid kind = %q", KindInvalid.String())
	}
}

func TestEnvelopeString(t *testing.T) {
	e := Envelope{From: 1, To: 2, Msg: Commit{Txn: 3}}
	if e.String() != "site1->site2 COMMIT" {
		t.Errorf("envelope string = %q", e.String())
	}
}

func TestCodecCopyMessages(t *testing.T) {
	for _, m := range []Message{
		CopyReq{Item: "widgets"},
		CopyResp{Item: "widgets", Value: -17, Version: 1 << 50},
	} {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", m, err)
		}
		got, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip %T: in %#v out %#v", m, m, got)
		}
	}
	if TxnOf(CopyReq{Item: "x"}) != 0 {
		t.Error("copy messages are not transaction-scoped")
	}
}
