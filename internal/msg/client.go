package msg

import (
	"time"

	"qcommit/internal/types"
)

// Client protocol: the small request/response vocabulary spoken between a
// client (package client at the repository root) and a qcommitd node over
// the same stream framing the peer links use. Client messages carry a Req
// correlation number so a pipelined connection can match responses; the
// envelope From/To fields are 0 on client links (clients are not sites).
//
// CtrlPartition/CtrlAck are the e2e harness's failure-injection control: a
// multi-process cluster has no shared memory to install a partition through,
// so the harness tells every node's transport its local topology view.

// ClientBegin asks the receiving node to coordinate a new transaction.
type ClientBegin struct {
	Req      uint64
	Writeset types.Writeset
}

// Kind implements Message.
func (ClientBegin) Kind() Kind { return KindClientBegin }

// ClientBeginAck returns the transaction ID assigned by the coordinator.
type ClientBeginAck struct {
	Req uint64
	Txn types.TxnID
}

// Kind implements Message.
func (ClientBeginAck) Kind() Kind { return KindClientBeginAck }

// ClientWait asks the node to report Txn's locally durable outcome, waiting
// up to Timeout for it to become terminal.
type ClientWait struct {
	Req     uint64
	Txn     types.TxnID
	Timeout time.Duration
}

// Kind implements Message.
func (ClientWait) Kind() Kind { return KindClientWait }

// ClientOutcome answers a ClientWait with the node's local view of Txn.
type ClientOutcome struct {
	Req     uint64
	Txn     types.TxnID
	Outcome types.Outcome
}

// Kind implements Message.
func (ClientOutcome) Kind() Kind { return KindClientOutcome }

// ClientRead asks for the node's local copy of Item.
type ClientRead struct {
	Req  uint64
	Item types.ItemID
}

// Kind implements Message.
func (ClientRead) Kind() Kind { return KindClientRead }

// ClientValue answers a ClientRead. Found is false when the node holds no
// copy of the item.
type ClientValue struct {
	Req     uint64
	Item    types.ItemID
	Value   int64
	Version uint64
	Found   bool
}

// Kind implements Message.
func (ClientValue) Kind() Kind { return KindClientValue }

// CtrlPartition installs a partition view on the receiving node's transport;
// an empty Groups list heals the network.
type CtrlPartition struct {
	Req    uint64
	Groups [][]types.SiteID
}

// Kind implements Message.
func (CtrlPartition) Kind() Kind { return KindCtrlPartition }

// CtrlAck acknowledges a control request.
type CtrlAck struct {
	Req uint64
}

// Kind implements Message.
func (CtrlAck) Kind() Kind { return KindCtrlAck }
