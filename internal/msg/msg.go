// Package msg defines the protocol messages exchanged by all commit and
// termination protocols in the repository, together with a compact binary
// wire codec (see codec.go).
//
// The message vocabulary is the union of what the two-phase commit protocol
// (Fig. 1 of the paper), the three-phase commit protocol (Fig. 2), Skeen's
// quorum-based protocol, and the paper's quorum-based commit and termination
// protocols (Figs. 5, 8, 9) need. The paper's contribution adds
// PREPARE-TO-ABORT and PA-ACK, and the termination protocol's local-state
// poll (STATE-REQ / STATE-RESP).
package msg

import (
	"fmt"

	"qcommit/internal/types"
)

// Kind discriminates message types on the wire and in traces.
type Kind uint8

// Message kinds.
const (
	KindInvalid Kind = iota
	KindVoteReq
	KindVoteResp
	KindPrepareToCommit
	KindPCAck
	KindPrepareToAbort
	KindPAAck
	KindCommit
	KindAbort
	KindDone
	KindStateReq
	KindStateResp
	KindDecisionReq
	KindDecisionResp
	KindElectionCall
	KindElectionOK
	KindCoordAnnounce
	KindCopyReq
	KindCopyResp
	KindClientBegin
	KindClientBeginAck
	KindClientWait
	KindClientOutcome
	KindClientRead
	KindClientValue
	KindCtrlPartition
	KindCtrlAck
)

var kindNames = map[Kind]string{
	KindVoteReq:         "VOTE-REQ",
	KindVoteResp:        "VOTE",
	KindPrepareToCommit: "PREPARE-TO-COMMIT",
	KindPCAck:           "PC-ACK",
	KindPrepareToAbort:  "PREPARE-TO-ABORT",
	KindPAAck:           "PA-ACK",
	KindCommit:          "COMMIT",
	KindAbort:           "ABORT",
	KindDone:            "DONE",
	KindStateReq:        "STATE-REQ",
	KindStateResp:       "STATE-RESP",
	KindDecisionReq:     "DECISION-REQ",
	KindDecisionResp:    "DECISION-RESP",
	KindElectionCall:    "ELECTION",
	KindElectionOK:      "ELECTION-OK",
	KindCoordAnnounce:   "COORDINATOR",
	KindCopyReq:         "COPY-REQ",
	KindCopyResp:        "COPY-RESP",
	KindClientBegin:     "CLIENT-BEGIN",
	KindClientBeginAck:  "CLIENT-BEGIN-ACK",
	KindClientWait:      "CLIENT-WAIT",
	KindClientOutcome:   "CLIENT-OUTCOME",
	KindClientRead:      "CLIENT-READ",
	KindClientValue:     "CLIENT-VALUE",
	KindCtrlPartition:   "CTRL-PARTITION",
	KindCtrlAck:         "CTRL-ACK",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
}

// VoteReq starts the first phase of every commit protocol: the coordinator
// distributes the update values to all sites holding copies of items in the
// writeset and asks each to vote.
type VoteReq struct {
	Txn          types.TxnID
	Coord        types.SiteID
	Participants []types.SiteID
	Writeset     types.Writeset
}

// Kind implements Message.
func (VoteReq) Kind() Kind { return KindVoteReq }

// VoteResp carries a participant's yes/no vote.
type VoteResp struct {
	Txn  types.TxnID
	Vote types.Vote
}

// Kind implements Message.
func (VoteResp) Kind() Kind { return KindVoteResp }

// PrepareToCommit moves a waiting participant into the PC buffer state.
type PrepareToCommit struct {
	Txn types.TxnID
}

// Kind implements Message.
func (PrepareToCommit) Kind() Kind { return KindPrepareToCommit }

// PCAck acknowledges entry into PC.
type PCAck struct {
	Txn types.TxnID
}

// Kind implements Message.
func (PCAck) Kind() Kind { return KindPCAck }

// PrepareToAbort moves a waiting participant into the PA buffer state. This
// message (and state) is the paper's addition: a site in PA relinquishes its
// right to participate in a commit quorum.
type PrepareToAbort struct {
	Txn types.TxnID
}

// Kind implements Message.
func (PrepareToAbort) Kind() Kind { return KindPrepareToAbort }

// PAAck acknowledges entry into PA.
type PAAck struct {
	Txn types.TxnID
}

// Kind implements Message.
func (PAAck) Kind() Kind { return KindPAAck }

// Commit irrevocably commits the transaction at the receiver.
type Commit struct {
	Txn types.TxnID
}

// Kind implements Message.
func (Commit) Kind() Kind { return KindCommit }

// Abort irrevocably aborts the transaction at the receiver.
type Abort struct {
	Txn types.TxnID
}

// Kind implements Message.
func (Abort) Kind() Kind { return KindAbort }

// Done acknowledges a Commit or Abort command (used by 2PC's second phase
// bookkeeping and by the harness to detect quiescence).
type Done struct {
	Txn types.TxnID
}

// Kind implements Message.
func (Done) Kind() Kind { return KindDone }

// StateReq is phase 1 of the termination protocols: a (newly elected)
// termination coordinator polls participants for their local states.
type StateReq struct {
	Txn   types.TxnID
	Coord types.SiteID
	// Epoch distinguishes successive invocations of the (reenterable)
	// termination protocol so stale replies are discarded.
	Epoch uint32
}

// Kind implements Message.
func (StateReq) Kind() Kind { return KindStateReq }

// StateResp reports the sender's local state for the transaction.
type StateResp struct {
	Txn   types.TxnID
	Epoch uint32
	State types.State
}

// Kind implements Message.
func (StateResp) Kind() Kind { return KindStateResp }

// DecisionReq asks whether the receiver knows the transaction's outcome
// (used by 2PC's cooperative termination protocol).
type DecisionReq struct {
	Txn types.TxnID
}

// Kind implements Message.
func (DecisionReq) Kind() Kind { return KindDecisionReq }

// DecisionResp answers a DecisionReq. Decision is DecisionNone when the
// sender is itself uncertain; Uncommitted reports a sender still in q, which
// lets 2PC's cooperative termination abort safely.
type DecisionResp struct {
	Txn         types.TxnID
	Decision    types.Decision
	Uncommitted bool
}

// Kind implements Message.
func (DecisionResp) Kind() Kind { return KindDecisionResp }

// ElectionCall invites the receiver to accept the sender as coordinator of
// the termination protocol for Txn (invitation-style election, after
// Garcia-Molina).
type ElectionCall struct {
	Txn       types.TxnID
	Ballot    uint64
	Candidate types.SiteID
}

// Kind implements Message.
func (ElectionCall) Kind() Kind { return KindElectionCall }

// ElectionOK accepts an ElectionCall.
type ElectionOK struct {
	Txn    types.TxnID
	Ballot uint64
}

// Kind implements Message.
func (ElectionOK) Kind() Kind { return KindElectionOK }

// CoordAnnounce announces the sender as an elected termination coordinator.
type CoordAnnounce struct {
	Txn    types.TxnID
	Ballot uint64
	Coord  types.SiteID
}

// Kind implements Message.
func (CoordAnnounce) Kind() Kind { return KindCoordAnnounce }

// CopyReq asks the receiver for its current copy of an item (anti-entropy:
// a recovered site repairing replicas it may have missed writes on). Not a
// protocol message; served by the site host directly.
type CopyReq struct {
	Item types.ItemID
}

// Kind implements Message.
func (CopyReq) Kind() Kind { return KindCopyReq }

// CopyResp carries a copy's value and version. The receiver installs it only
// if the version exceeds its own (versions never regress).
type CopyResp struct {
	Item    types.ItemID
	Value   int64
	Version uint64
}

// Kind implements Message.
func (CopyResp) Kind() Kind { return KindCopyResp }

// TxnOf extracts the transaction ID a message concerns.
func TxnOf(m Message) types.TxnID {
	switch v := m.(type) {
	case VoteReq:
		return v.Txn
	case VoteResp:
		return v.Txn
	case PrepareToCommit:
		return v.Txn
	case PCAck:
		return v.Txn
	case PrepareToAbort:
		return v.Txn
	case PAAck:
		return v.Txn
	case Commit:
		return v.Txn
	case Abort:
		return v.Txn
	case Done:
		return v.Txn
	case StateReq:
		return v.Txn
	case StateResp:
		return v.Txn
	case DecisionReq:
		return v.Txn
	case DecisionResp:
		return v.Txn
	case ElectionCall:
		return v.Txn
	case ElectionOK:
		return v.Txn
	case CoordAnnounce:
		return v.Txn
	case ClientBeginAck:
		return v.Txn
	case ClientWait:
		return v.Txn
	case ClientOutcome:
		return v.Txn
	default:
		return 0
	}
}

// Envelope is a routed message.
type Envelope struct {
	From types.SiteID
	To   types.SiteID
	Msg  Message
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("%s->%s %s", e.From, e.To, e.Msg.Kind())
}
