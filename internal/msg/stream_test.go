package msg

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
	"time"

	"qcommit/internal/types"
)

// allWireMessages returns one populated instance of every marshalable
// message kind — the full wire vocabulary, including the anti-entropy and
// client/control messages that allMessages (protocol-only) leaves out.
func allWireMessages() []Message {
	ws := types.Writeset{{Item: "x", Value: -42}, {Item: "account/7", Value: 1 << 40}}
	return append(allMessages(),
		CopyReq{Item: "widgets"},
		CopyResp{Item: "widgets", Value: -17, Version: 1 << 50},
		ClientBegin{Req: 3, Writeset: ws},
		ClientBeginAck{Req: 3, Txn: 7},
		ClientWait{Req: 4, Txn: 7, Timeout: 1500 * time.Millisecond},
		ClientOutcome{Req: 4, Txn: 7, Outcome: types.OutcomeCommitted},
		ClientRead{Req: 5, Item: "widgets"},
		ClientValue{Req: 5, Item: "widgets", Value: -17, Version: 9, Found: true},
		ClientValue{Req: 6, Item: "nope"},
		CtrlPartition{Req: 7, Groups: [][]types.SiteID{{1, 2}, {3, 4, 5}}},
		CtrlPartition{Req: 8},
		CtrlAck{Req: 7},
	)
}

// normalizeWire extends normalize to the client messages carrying slices.
func normalizeWire(m Message) Message {
	switch v := m.(type) {
	case ClientBegin:
		if len(v.Writeset) == 0 {
			v.Writeset = nil
		}
		return v
	case CtrlPartition:
		if len(v.Groups) == 0 {
			v.Groups = nil
		}
		return v
	default:
		return normalize(m)
	}
}

// TestStreamRoundTripAllKinds writes every message kind through the stream
// framing into one buffer and reads them all back, closing the round-trip
// coverage gap: every kind in kindNames except KindInvalid must appear.
func TestStreamRoundTripAllKinds(t *testing.T) {
	msgs := allWireMessages()
	covered := make(map[Kind]bool)
	var buf bytes.Buffer
	for i, m := range msgs {
		covered[m.Kind()] = true
		env := Envelope{From: types.SiteID(i % 9), To: types.SiteID((i + 1) % 9), Msg: m}
		if err := WriteEnvelope(&buf, env); err != nil {
			t.Fatalf("WriteEnvelope(%T): %v", m, err)
		}
	}
	for k := range kindNames {
		if !covered[k] {
			t.Errorf("kind %v missing from the stream round-trip corpus", k)
		}
	}
	for i, m := range msgs {
		env, err := ReadEnvelope(&buf)
		if err != nil {
			t.Fatalf("ReadEnvelope #%d (%T): %v", i, m, err)
		}
		if env.From != types.SiteID(i%9) || env.To != types.SiteID((i+1)%9) {
			t.Errorf("#%d routing = %v->%v", i, env.From, env.To)
		}
		if !reflect.DeepEqual(normalizeWire(m), normalizeWire(env.Msg)) {
			t.Errorf("round trip %T:\n in: %#v\nout: %#v", m, m, env.Msg)
		}
	}
	if _, err := ReadEnvelope(&buf); err != io.EOF {
		t.Errorf("exhausted stream error = %v, want io.EOF", err)
	}
}

func TestStreamRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binary.AppendUvarint(nil, MaxFrame+1))
	if _, err := ReadEnvelope(&buf); err != ErrFrameTooLarge {
		t.Errorf("oversized frame error = %v, want ErrFrameTooLarge", err)
	}
}

func TestStreamRejectsEmptyFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(0)
	if _, err := ReadEnvelope(&buf); err != ErrEmptyFrame {
		t.Errorf("empty frame error = %v, want ErrEmptyFrame", err)
	}
}

func TestStreamTruncatedPayload(t *testing.T) {
	full, err := AppendEnvelope(nil, Envelope{From: 1, To: 2, Msg: Commit{Txn: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, err := ReadEnvelope(r); err == nil {
			t.Errorf("truncation at %d/%d went undetected", cut, len(full))
		}
	}
}

// TestStreamControlMessagesDoNotFrame: messages with KindInvalid (internal
// control events) must be rejected by the stream writer, staying local by
// construction.
func TestStreamControlMessagesDoNotFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, Envelope{From: 1, To: 2, Msg: localControl{}}); err == nil {
		t.Error("an unmarshalable control message crossed the stream framing")
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes written for a rejected message", buf.Len())
	}
}

// TestStreamUnbufferedReader: ReadEnvelope must work on a reader without
// ReadByte and must not consume bytes past the frame.
func TestStreamUnbufferedReader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, Envelope{From: 3, To: 4, Msg: Done{Txn: 11}}); err != nil {
		t.Fatal(err)
	}
	tail := []byte{0xAA, 0xBB}
	stream := append(append([]byte(nil), buf.Bytes()...), tail...)
	r := &readerOnly{bytes.NewReader(stream)}
	env, err := ReadEnvelope(r)
	if err != nil {
		t.Fatal(err)
	}
	if env.Msg.(Done).Txn != 11 {
		t.Errorf("decoded %#v", env.Msg)
	}
	rest, _ := io.ReadAll(r.r)
	if !bytes.Equal(rest, tail) {
		t.Errorf("bytes past the frame were consumed: %v left, want %v", rest, tail)
	}
}

// readerOnly hides every interface except io.Reader.
type readerOnly struct{ r io.Reader }

func (r *readerOnly) Read(p []byte) (int, error) { return r.r.Read(p) }

// localControl stands in for runtime-internal events (KindInvalid).
type localControl struct{}

func (localControl) Kind() Kind { return KindInvalid }
