package msg

import (
	"encoding/binary"
	"errors"
	"io"

	"qcommit/internal/types"
)

// Stream framing: the codec in codec.go is self-contained per message but
// carries no routing and no boundaries, so byte streams (TCP connections)
// wrap each message as
//
//	uvarint payload-length | payload
//	payload = varint From | varint To | Marshal(msg) frame
//
// The checksummed frame stays byte-identical to the datagram form, so a
// stream peer and the in-process fabric exercise the same codec.

// MaxFrame bounds one stream payload. Protocol messages are tiny (the
// largest carries a writeset); anything bigger is a corrupt or hostile
// length prefix and poisons the connection.
const MaxFrame = 1 << 20

// Stream framing errors.
var (
	ErrFrameTooLarge = errors.New("msg: stream frame exceeds MaxFrame")
	ErrEmptyFrame    = errors.New("msg: empty stream frame")
)

// AppendFrame appends the stream framing of an already-marshalled message
// frame routed from -> to.
func AppendFrame(dst []byte, from, to types.SiteID, frame []byte) []byte {
	var hdr []byte
	hdr = binary.AppendVarint(hdr, int64(from))
	hdr = binary.AppendVarint(hdr, int64(to))
	dst = binary.AppendUvarint(dst, uint64(len(hdr)+len(frame)))
	dst = append(dst, hdr...)
	return append(dst, frame...)
}

// AppendEnvelope marshals env.Msg and appends its stream framing.
func AppendEnvelope(dst []byte, env Envelope) ([]byte, error) {
	frame, err := Marshal(env.Msg)
	if err != nil {
		return dst, err
	}
	return AppendFrame(dst, env.From, env.To, frame), nil
}

// WriteEnvelope writes one stream-framed envelope.
func WriteEnvelope(w io.Writer, env Envelope) error {
	buf, err := AppendEnvelope(nil, env)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// byteReader adapts an io.Reader for uvarint decoding without buffering
// past the current frame.
type byteReader struct {
	r io.Reader
	b [1]byte
}

func (br *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(br.r, br.b[:]); err != nil {
		return 0, err
	}
	return br.b[0], nil
}

// ReadEnvelope reads one stream-framed envelope. r should be buffered
// (e.g. a *bufio.Reader) for efficiency; only bytes belonging to the frame
// are consumed. io.EOF is returned unwrapped on a clean boundary.
func ReadEnvelope(r io.Reader) (Envelope, error) {
	var br io.ByteReader
	if b, ok := r.(io.ByteReader); ok {
		br = b
	} else {
		br = &byteReader{r: r}
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return Envelope{}, err
	}
	if n == 0 {
		return Envelope{}, ErrEmptyFrame
	}
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Envelope{}, err
	}
	from, k := binary.Varint(payload)
	if k <= 0 {
		return Envelope{}, ErrTruncated
	}
	payload = payload[k:]
	to, k := binary.Varint(payload)
	if k <= 0 {
		return Envelope{}, ErrTruncated
	}
	m, err := Unmarshal(payload[k:])
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{From: types.SiteID(from), To: types.SiteID(to), Msg: m}, nil
}
