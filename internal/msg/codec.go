package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"qcommit/internal/types"
)

// Wire format: every frame is
//
//	kind (1 byte) | body (varint-encoded fields) | crc32 of kind+body (4 bytes, big endian)
//
// Integers use unsigned varints; signed values use zig-zag varints; strings
// and slices are length-prefixed. The format is self-contained per message;
// framing across a byte stream is the transport's concern.

// Codec errors.
var (
	ErrShortFrame  = errors.New("msg: frame too short")
	ErrBadChecksum = errors.New("msg: checksum mismatch")
	ErrBadKind     = errors.New("msg: unknown message kind")
	ErrTruncated   = errors.New("msg: truncated body")
	ErrTrailing    = errors.New("msg: trailing bytes after body")
)

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) sites(ss []types.SiteID) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.varint(int64(s))
	}
}
func (w *writer) writeset(ws types.Writeset) {
	w.uvarint(uint64(len(ws)))
	for _, u := range ws {
		w.str(string(u.Item))
		w.varint(u.Value)
	}
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail(ErrTruncated)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) sites() []types.SiteID {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > math.MaxInt32 || n > uint64(len(r.buf)) {
		// each site takes ≥1 byte, so n > len(buf) is certainly truncated
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]types.SiteID, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, types.SiteID(r.varint()))
	}
	return out
}

func (r *reader) writeset() types.Writeset {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make(types.Writeset, 0, n)
	for i := uint64(0); i < n; i++ {
		item := r.str()
		val := r.varint()
		out = append(out, types.Update{Item: types.ItemID(item), Value: val})
	}
	return out
}

// Marshal encodes m into a checksummed frame.
func Marshal(m Message) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 64)}
	w.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case VoteReq:
		w.uvarint(uint64(v.Txn))
		w.varint(int64(v.Coord))
		w.sites(v.Participants)
		w.writeset(v.Writeset)
	case VoteResp:
		w.uvarint(uint64(v.Txn))
		w.u8(uint8(v.Vote))
	case PrepareToCommit:
		w.uvarint(uint64(v.Txn))
	case PCAck:
		w.uvarint(uint64(v.Txn))
	case PrepareToAbort:
		w.uvarint(uint64(v.Txn))
	case PAAck:
		w.uvarint(uint64(v.Txn))
	case Commit:
		w.uvarint(uint64(v.Txn))
	case Abort:
		w.uvarint(uint64(v.Txn))
	case Done:
		w.uvarint(uint64(v.Txn))
	case StateReq:
		w.uvarint(uint64(v.Txn))
		w.varint(int64(v.Coord))
		w.uvarint(uint64(v.Epoch))
	case StateResp:
		w.uvarint(uint64(v.Txn))
		w.uvarint(uint64(v.Epoch))
		w.u8(uint8(v.State))
	case DecisionReq:
		w.uvarint(uint64(v.Txn))
	case DecisionResp:
		w.uvarint(uint64(v.Txn))
		w.u8(uint8(v.Decision))
		if v.Uncommitted {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case ElectionCall:
		w.uvarint(uint64(v.Txn))
		w.uvarint(v.Ballot)
		w.varint(int64(v.Candidate))
	case ElectionOK:
		w.uvarint(uint64(v.Txn))
		w.uvarint(v.Ballot)
	case CoordAnnounce:
		w.uvarint(uint64(v.Txn))
		w.uvarint(v.Ballot)
		w.varint(int64(v.Coord))
	case CopyReq:
		w.str(string(v.Item))
	case CopyResp:
		w.str(string(v.Item))
		w.varint(v.Value)
		w.uvarint(v.Version)
	case ClientBegin:
		w.uvarint(v.Req)
		w.writeset(v.Writeset)
	case ClientBeginAck:
		w.uvarint(v.Req)
		w.uvarint(uint64(v.Txn))
	case ClientWait:
		w.uvarint(v.Req)
		w.uvarint(uint64(v.Txn))
		w.varint(int64(v.Timeout))
	case ClientOutcome:
		w.uvarint(v.Req)
		w.uvarint(uint64(v.Txn))
		w.u8(uint8(v.Outcome))
	case ClientRead:
		w.uvarint(v.Req)
		w.str(string(v.Item))
	case ClientValue:
		w.uvarint(v.Req)
		w.str(string(v.Item))
		w.varint(v.Value)
		w.uvarint(v.Version)
		if v.Found {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case CtrlPartition:
		w.uvarint(v.Req)
		w.uvarint(uint64(len(v.Groups)))
		for _, g := range v.Groups {
			w.sites(g)
		}
	case CtrlAck:
		w.uvarint(v.Req)
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadKind, m)
	}
	sum := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.BigEndian.AppendUint32(w.buf, sum)
	return w.buf, nil
}

// Unmarshal decodes a frame produced by Marshal, verifying its checksum.
func Unmarshal(frame []byte) (Message, error) {
	if len(frame) < 5 { // kind + crc
		return nil, ErrShortFrame
	}
	body, sumBytes := frame[:len(frame)-4], frame[len(frame)-4:]
	want := binary.BigEndian.Uint32(sumBytes)
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadChecksum
	}
	kind := Kind(body[0])
	r := &reader{buf: body[1:]}
	var m Message
	switch kind {
	case KindVoteReq:
		m = VoteReq{
			Txn:          types.TxnID(r.uvarint()),
			Coord:        types.SiteID(r.varint()),
			Participants: r.sites(),
			Writeset:     r.writeset(),
		}
	case KindVoteResp:
		txn := types.TxnID(r.uvarint())
		var vote types.Vote
		if len(r.buf) < 1 {
			r.fail(ErrTruncated)
		} else {
			vote = types.Vote(r.buf[0])
			r.buf = r.buf[1:]
		}
		m = VoteResp{Txn: txn, Vote: vote}
	case KindPrepareToCommit:
		m = PrepareToCommit{Txn: types.TxnID(r.uvarint())}
	case KindPCAck:
		m = PCAck{Txn: types.TxnID(r.uvarint())}
	case KindPrepareToAbort:
		m = PrepareToAbort{Txn: types.TxnID(r.uvarint())}
	case KindPAAck:
		m = PAAck{Txn: types.TxnID(r.uvarint())}
	case KindCommit:
		m = Commit{Txn: types.TxnID(r.uvarint())}
	case KindAbort:
		m = Abort{Txn: types.TxnID(r.uvarint())}
	case KindDone:
		m = Done{Txn: types.TxnID(r.uvarint())}
	case KindStateReq:
		m = StateReq{
			Txn:   types.TxnID(r.uvarint()),
			Coord: types.SiteID(r.varint()),
			Epoch: uint32(r.uvarint()),
		}
	case KindStateResp:
		txn := types.TxnID(r.uvarint())
		epoch := uint32(r.uvarint())
		var st types.State
		if len(r.buf) < 1 {
			r.fail(ErrTruncated)
		} else {
			st = types.State(r.buf[0])
			r.buf = r.buf[1:]
		}
		m = StateResp{Txn: txn, Epoch: epoch, State: st}
	case KindDecisionReq:
		m = DecisionReq{Txn: types.TxnID(r.uvarint())}
	case KindDecisionResp:
		txn := types.TxnID(r.uvarint())
		var dec types.Decision
		var unc bool
		if len(r.buf) < 2 {
			r.fail(ErrTruncated)
		} else {
			dec = types.Decision(r.buf[0])
			unc = r.buf[1] == 1
			r.buf = r.buf[2:]
		}
		m = DecisionResp{Txn: txn, Decision: dec, Uncommitted: unc}
	case KindElectionCall:
		m = ElectionCall{
			Txn:       types.TxnID(r.uvarint()),
			Ballot:    r.uvarint(),
			Candidate: types.SiteID(r.varint()),
		}
	case KindElectionOK:
		m = ElectionOK{Txn: types.TxnID(r.uvarint()), Ballot: r.uvarint()}
	case KindCoordAnnounce:
		m = CoordAnnounce{
			Txn:    types.TxnID(r.uvarint()),
			Ballot: r.uvarint(),
			Coord:  types.SiteID(r.varint()),
		}
	case KindCopyReq:
		m = CopyReq{Item: types.ItemID(r.str())}
	case KindCopyResp:
		m = CopyResp{
			Item:    types.ItemID(r.str()),
			Value:   r.varint(),
			Version: r.uvarint(),
		}
	case KindClientBegin:
		m = ClientBegin{Req: r.uvarint(), Writeset: r.writeset()}
	case KindClientBeginAck:
		m = ClientBeginAck{Req: r.uvarint(), Txn: types.TxnID(r.uvarint())}
	case KindClientWait:
		m = ClientWait{
			Req:     r.uvarint(),
			Txn:     types.TxnID(r.uvarint()),
			Timeout: time.Duration(r.varint()),
		}
	case KindClientOutcome:
		txn := ClientOutcome{Req: r.uvarint(), Txn: types.TxnID(r.uvarint())}
		if len(r.buf) < 1 {
			r.fail(ErrTruncated)
		} else {
			txn.Outcome = types.Outcome(r.buf[0])
			r.buf = r.buf[1:]
		}
		m = txn
	case KindClientRead:
		m = ClientRead{Req: r.uvarint(), Item: types.ItemID(r.str())}
	case KindClientValue:
		v := ClientValue{
			Req:     r.uvarint(),
			Item:    types.ItemID(r.str()),
			Value:   r.varint(),
			Version: r.uvarint(),
		}
		if len(r.buf) < 1 {
			r.fail(ErrTruncated)
		} else {
			v.Found = r.buf[0] == 1
			r.buf = r.buf[1:]
		}
		m = v
	case KindCtrlPartition:
		cp := CtrlPartition{Req: r.uvarint()}
		n := r.uvarint()
		if n > uint64(len(r.buf)) {
			// each group takes ≥1 byte, so n > len(buf) is certainly truncated
			r.fail(ErrTruncated)
		} else {
			for i := uint64(0); i < n && r.err == nil; i++ {
				cp.Groups = append(cp.Groups, r.sites())
			}
		}
		m = cp
	case KindCtrlAck:
		m = CtrlAck{Req: r.uvarint()}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}
