package msg

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the datagram codec and the stream
// reader. Both sit on the network boundary in the tcp transport, so they
// must reject garbage with an error — never panic, never hang, never accept
// a frame a re-marshal cannot reproduce semantically.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allWireMessages() {
		frame, err := Marshal(m)
		if err != nil {
			f.Fatalf("Marshal(%T): %v", m, err)
		}
		f.Add(frame)
		f.Add(AppendFrame(nil, 1, 2, frame))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Unmarshal(data); err == nil {
			// Accepted frames must round-trip: a message the codec decodes
			// is one it can re-encode and decode to the same value.
			frame, err := Marshal(m)
			if err != nil {
				t.Fatalf("Unmarshal accepted %x but Marshal(%#v) failed: %v", data, m, err)
			}
			back, err := Unmarshal(frame)
			if err != nil {
				t.Fatalf("re-Unmarshal of %#v failed: %v", m, err)
			}
			_ = back
		}
		// The stream reader must terminate with a value or an error on any
		// finite input.
		if env, err := ReadEnvelope(bytes.NewReader(data)); err == nil {
			if _, err := Marshal(env.Msg); err != nil {
				t.Fatalf("ReadEnvelope accepted %x but Marshal(%#v) failed: %v", data, env.Msg, err)
			}
		}
	})
}
