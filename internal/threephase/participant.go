// Package threephase provides the building blocks shared by every
// three-phase-style protocol in the repository: the participant automaton
// with the q/W/PC/PA/C/A state machine (Fig. 6 of the paper), a generic
// commit coordinator parameterized by its early-commit acknowledgement rule
// (plain 3PC, Skeen's quorum rule, or the paper's CP1/CP2 rules), and the
// generic three-phase termination coordinator parameterized by its quorum
// rules (Skeen's site-vote rules, the paper's TP1/TP2 replica-vote rules, or
// 3PC's site-failure-only rule).
package threephase

import (
	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// ParticipantOpts tunes participant behaviour.
type ParticipantOpts struct {
	// BuggyBufferCrossing makes the participant respond to PREPARE-TO-ABORT
	// while in PC and to PREPARE-TO-COMMIT while in PA — the exact rule
	// violation of the paper's Example 3, kept behind a flag so the
	// counterexample (two concurrent coordinators terminating the
	// transaction inconsistently) can be reproduced and asserted.
	BuggyBufferCrossing bool
	// PatienceRounds caps how many times the participant will ask for
	// termination before going quiet (bounds simulations that would
	// otherwise block forever). Defaults to 4.
	PatienceRounds int
}

func (o ParticipantOpts) withDefaults() ParticipantOpts {
	if o.PatienceRounds <= 0 {
		o.PatienceRounds = 4
	}
	return o
}

// Participant is the per-site automaton of all three-phase-style protocols.
// State transitions follow Fig. 6: q→W on a yes vote, q→A on a no vote,
// W→PC on PREPARE-TO-COMMIT, W→PA on PREPARE-TO-ABORT, PC/W/PA→C on COMMIT,
// PC/W/PA→A on ABORT. There is no transition between PC and PA: a
// participant in PC ignores PREPARE-TO-ABORT and one in PA ignores
// PREPARE-TO-COMMIT (unless BuggyBufferCrossing reproduces Example 3).
type Participant struct {
	txn   types.TxnID
	opts  ParticipantOpts
	state types.State
	coord types.SiteID

	patienceLeft int
	timerSeq     int
}

// NewParticipant creates a participant. init is non-nil when rejoining after
// a crash (or when a paper scenario is constructed mid-protocol).
func NewParticipant(txn types.TxnID, init *wal.TxnImage, opts ParticipantOpts) *Participant {
	opts = opts.withDefaults()
	p := &Participant{txn: txn, opts: opts, state: types.StateInitial, patienceLeft: opts.PatienceRounds}
	if init != nil {
		p.state = init.State
		p.coord = init.Coord
	}
	return p
}

// State returns the participant's local state.
func (p *Participant) State() types.State { return p.state }

// Start implements protocol.Automaton.
func (p *Participant) Start(env protocol.Env) {
	if p.state == types.StateWait || p.state == types.StatePC || p.state == types.StatePA {
		// Mid-protocol (recovery or scripted scenario): watch for silence.
		p.armPatience(env)
	}
}

func (p *Participant) armPatience(env protocol.Env) {
	p.timerSeq++
	env.SetTimer(protocol.ParticipantPatience(env), p.timerSeq)
}

// OnTimer implements protocol.Automaton: patience expiry starts the election
// protocol, as in the paper ("occurs when the participant does not receive a
// response from the coordinator within 3T").
func (p *Participant) OnTimer(token int, env protocol.Env) {
	if token != p.timerSeq {
		return // superseded by later coordinator activity
	}
	if p.state.Terminal() || p.state == types.StateInitial {
		return
	}
	if p.patienceLeft <= 0 {
		return
	}
	p.patienceLeft--
	env.Tracef("%s: %s silent too long in %s, invoking termination", p.txn, env.Self(), p.state)
	env.RequestTermination(p.txn)
	p.armPatience(env)
}

// OnMessage implements protocol.Automaton.
func (p *Participant) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	switch v := m.(type) {
	case msg.VoteReq:
		p.onVoteReq(from, v, env)
	case msg.PrepareToCommit:
		p.onPTC(from, env)
	case msg.PrepareToAbort:
		p.onPTA(from, env)
	case msg.Commit:
		if !p.state.Terminal() && p.state != types.StateInitial {
			p.state = types.StateCommitted
			env.Commit(p.txn)
			env.Send(from, msg.Done{Txn: p.txn})
		}
	case msg.Abort:
		if !p.state.Terminal() {
			p.state = types.StateAborted
			env.Abort(p.txn)
			env.Send(from, msg.Done{Txn: p.txn})
		}
	case msg.StateReq:
		env.Send(from, msg.StateResp{Txn: p.txn, Epoch: v.Epoch, State: p.state})
		// Reporting q is a promise not to vote yes afterwards — the
		// termination protocol may abort on the strength of this reply.
		if p.state == types.StateInitial {
			p.state = types.StateAborted
			env.Abort(p.txn)
			return
		}
		if !p.state.Terminal() {
			p.armPatience(env) // a termination coordinator is active
		}
	case msg.DecisionReq:
		// Cooperative poll (2PC vocabulary); answer from our state so mixed
		// protocol stacks still interoperate.
		resp := msg.DecisionResp{Txn: p.txn}
		switch p.state {
		case types.StateCommitted:
			resp.Decision = types.DecisionCommit
		case types.StateAborted:
			resp.Decision = types.DecisionAbort
		case types.StateInitial:
			// "Uncommitted" lets the poller abort; refuse to vote from here
			// on by aborting unilaterally (we have not voted, so we may).
			resp.Uncommitted = true
			p.state = types.StateAborted
			env.Abort(p.txn)
		}
		env.Send(from, resp)
	}
}

func (p *Participant) onVoteReq(from types.SiteID, v msg.VoteReq, env protocol.Env) {
	switch p.state {
	case types.StateInitial:
		p.coord = v.Coord
		if env.AcquireLocks(p.txn) {
			env.Append(wal.Record{
				Type:         wal.RecVotedYes,
				Txn:          p.txn,
				Coord:        v.Coord,
				Participants: v.Participants,
				Writeset:     v.Writeset,
			})
			p.state = types.StateWait
			env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteYes})
			p.armPatience(env)
		} else {
			// Cannot implement the update (e.g. I/O subsystem failure or a
			// lock conflict): vote no and abort unilaterally.
			env.Append(wal.Record{Type: wal.RecVotedNo, Txn: p.txn})
			env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteNo})
			p.state = types.StateAborted
			env.Abort(p.txn)
		}
	case types.StateWait:
		// Duplicate VOTE-REQ: re-send the yes vote.
		env.Send(from, msg.VoteResp{Txn: p.txn, Vote: types.VoteYes})
	}
}

func (p *Participant) onPTC(from types.SiteID, env protocol.Env) {
	switch p.state {
	case types.StateWait:
		env.Append(wal.Record{Type: wal.RecPC, Txn: p.txn})
		p.state = types.StatePC
		env.Tracef("%s: %s enters PC", p.txn, env.Self())
		env.Send(from, msg.PCAck{Txn: p.txn})
		p.armPatience(env)
	case types.StatePC:
		env.Send(from, msg.PCAck{Txn: p.txn}) // idempotent re-ack
		p.armPatience(env)
	case types.StatePA:
		if p.opts.BuggyBufferCrossing {
			// Example 3's forbidden behaviour: responding to
			// PREPARE-TO-COMMIT while in PA lets two concurrent termination
			// coordinators form both quorums.
			env.Append(wal.Record{Type: wal.RecPC, Txn: p.txn})
			p.state = types.StatePC
			env.Tracef("%s: %s BUGGY PA→PC crossing", p.txn, env.Self())
			env.Send(from, msg.PCAck{Txn: p.txn})
			p.armPatience(env)
			return
		}
		// Correct rule: a participant in PA ignores PREPARE-TO-COMMIT.
		env.Tracef("%s: %s in PA ignores PREPARE-TO-COMMIT", p.txn, env.Self())
	}
}

func (p *Participant) onPTA(from types.SiteID, env protocol.Env) {
	switch p.state {
	case types.StateWait:
		env.Append(wal.Record{Type: wal.RecPA, Txn: p.txn})
		p.state = types.StatePA
		env.Tracef("%s: %s enters PA", p.txn, env.Self())
		env.Send(from, msg.PAAck{Txn: p.txn})
		p.armPatience(env)
	case types.StatePA:
		env.Send(from, msg.PAAck{Txn: p.txn}) // idempotent re-ack
		p.armPatience(env)
	case types.StatePC:
		if p.opts.BuggyBufferCrossing {
			env.Append(wal.Record{Type: wal.RecPA, Txn: p.txn})
			p.state = types.StatePA
			env.Tracef("%s: %s BUGGY PC→PA crossing", p.txn, env.Self())
			env.Send(from, msg.PAAck{Txn: p.txn})
			p.armPatience(env)
			return
		}
		// Correct rule: a participant in PC ignores PREPARE-TO-ABORT.
		env.Tracef("%s: %s in PC ignores PREPARE-TO-ABORT", p.txn, env.Self())
	}
}
