package threephase

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/protocoltest"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

func ex1() *voting.Assignment {
	return voting.MustAssignment(
		voting.Uniform("x", 2, 3, 1, 2, 3, 4),
		voting.Uniform("y", 2, 3, 5, 6, 7, 8),
	)
}

var (
	ws    = types.Writeset{{Item: "x", Value: 1}, {Item: "y", Value: 2}}
	parts = []types.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
)

func voteReq(coord types.SiteID) msg.VoteReq {
	return msg.VoteReq{Txn: 1, Coord: coord, Participants: parts, Writeset: ws}
}

func TestParticipantVotesYes(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)

	if p.State() != types.StateWait {
		t.Errorf("state = %v, want W", p.State())
	}
	if len(env.Logs) != 1 || env.Logs[0].Type != wal.RecVotedYes {
		t.Errorf("logs = %v, want one VOTED-YES forced before the vote", env.Logs)
	}
	sent := env.SentTo(1)
	if len(sent) != 1 {
		t.Fatalf("sent %d messages to coordinator", len(sent))
	}
	if v, ok := sent[0].(msg.VoteResp); !ok || v.Vote != types.VoteYes {
		t.Errorf("vote = %#v", sent[0])
	}
	if len(env.Timers) == 0 {
		t.Error("no patience timer armed")
	}
}

func TestParticipantVotesNoOnLockFailure(t *testing.T) {
	env := protocoltest.New(2, ex1())
	env.LockOK = false
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)

	if p.State() != types.StateAborted {
		t.Errorf("state = %v, want A (unilateral abort on no vote)", p.State())
	}
	sent := env.SentTo(1)
	if v, ok := sent[0].(msg.VoteResp); !ok || v.Vote != types.VoteNo {
		t.Errorf("vote = %#v", sent[0])
	}
	if len(env.Aborted) != 1 {
		t.Error("host abort not requested")
	}
}

func TestParticipantDuplicateVoteReqIdempotent(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	n := len(env.Logs)
	p.OnMessage(1, voteReq(1), env)
	if len(env.Logs) != n {
		t.Error("duplicate VOTE-REQ forced another log record")
	}
	if got := env.SentTo(1); len(got) != 2 {
		t.Errorf("expected re-sent yes vote, got %d messages", len(got))
	}
}

func TestParticipantPTCAndPTA(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)

	p.OnMessage(3, msg.PrepareToCommit{Txn: 1}, env)
	if p.State() != types.StatePC {
		t.Fatalf("state = %v, want PC", p.State())
	}
	if k := env.SentTo(3); len(k) != 1 || k[0].Kind() != msg.KindPCAck {
		t.Errorf("PC-ACK not sent: %v", k)
	}
	// The paper's rule: a participant in PC ignores PREPARE-TO-ABORT.
	p.OnMessage(4, msg.PrepareToAbort{Txn: 1}, env)
	if p.State() != types.StatePC {
		t.Errorf("PC site moved to %v on PREPARE-TO-ABORT", p.State())
	}
	if k := env.SentTo(4); len(k) != 0 {
		t.Errorf("PC site responded to PREPARE-TO-ABORT: %v", k)
	}
	// Re-delivered PTC re-acks without a new log record.
	n := len(env.Logs)
	p.OnMessage(3, msg.PrepareToCommit{Txn: 1}, env)
	if len(env.Logs) != n {
		t.Error("duplicate PTC logged again")
	}
}

func TestParticipantPAIgnoresPTC(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	p.OnMessage(3, msg.PrepareToAbort{Txn: 1}, env)
	if p.State() != types.StatePA {
		t.Fatalf("state = %v, want PA", p.State())
	}
	p.OnMessage(4, msg.PrepareToCommit{Txn: 1}, env)
	if p.State() != types.StatePA {
		t.Errorf("PA site moved to %v on PREPARE-TO-COMMIT", p.State())
	}
	if k := env.SentTo(4); len(k) != 0 {
		t.Errorf("PA site responded to PREPARE-TO-COMMIT: %v", k)
	}
}

func TestParticipantBuggyCrossings(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{BuggyBufferCrossing: true})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	p.OnMessage(3, msg.PrepareToAbort{Txn: 1}, env)
	p.OnMessage(4, msg.PrepareToCommit{Txn: 1}, env)
	if p.State() != types.StatePC {
		t.Errorf("buggy participant state = %v, want PC after crossing", p.State())
	}
	if k := env.SentTo(4); len(k) != 1 || k[0].Kind() != msg.KindPCAck {
		t.Errorf("buggy participant did not ack PTC from PA: %v", k)
	}
}

func TestParticipantCommitAndAbort(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	p.OnMessage(1, msg.Commit{Txn: 1}, env)
	if p.State() != types.StateCommitted || len(env.Committed) != 1 {
		t.Errorf("commit not applied: state=%v", p.State())
	}
	// Terminal is irrevocable: a late ABORT must be ignored.
	p.OnMessage(1, msg.Abort{Txn: 1}, env)
	if p.State() != types.StateCommitted || len(env.Aborted) != 0 {
		t.Error("terminal state not irrevocable")
	}
}

func TestParticipantCommitInInitialIgnored(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, msg.Commit{Txn: 1}, env)
	if p.State() != types.StateInitial || len(env.Committed) != 0 {
		t.Error("COMMIT honored in q; a site that never voted cannot commit")
	}
}

func TestParticipantStateReqResponse(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	p.OnMessage(7, msg.StateReq{Txn: 1, Coord: 7, Epoch: 3}, env)
	sent := env.SentTo(7)
	if len(sent) != 1 {
		t.Fatalf("sent = %v", sent)
	}
	resp, ok := sent[0].(msg.StateResp)
	if !ok || resp.State != types.StateWait || resp.Epoch != 3 {
		t.Errorf("state resp = %#v", sent[0])
	}
}

func TestParticipantPatienceTriggersTermination(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{PatienceRounds: 2})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	tm := env.LastTimer()
	p.OnTimer(tm.Token, env)
	if len(env.TermReqs) != 1 {
		t.Fatal("patience expiry did not request termination")
	}
	// Budget bounds the retries.
	p.OnTimer(env.LastTimer().Token, env)
	p.OnTimer(env.LastTimer().Token, env)
	p.OnTimer(env.LastTimer().Token, env)
	if len(env.TermReqs) > 2 {
		t.Errorf("termination requested %d times, budget was 2", len(env.TermReqs))
	}
}

func TestParticipantStaleTimerIgnored(t *testing.T) {
	env := protocoltest.New(2, ex1())
	p := NewParticipant(1, nil, ParticipantOpts{})
	p.Start(env)
	p.OnMessage(1, voteReq(1), env)
	stale := env.LastTimer().Token
	// Coordinator activity re-arms patience, superseding the old timer.
	p.OnMessage(7, msg.StateReq{Txn: 1, Coord: 7, Epoch: 1}, env)
	p.OnTimer(stale, env)
	if len(env.TermReqs) != 0 {
		t.Error("stale patience timer acted")
	}
}

func TestParticipantRecoveryImage(t *testing.T) {
	env := protocoltest.New(2, ex1())
	img := &wal.TxnImage{Txn: 1, State: types.StatePC, Coord: 1, Participants: parts, Writeset: ws}
	p := NewParticipant(1, img, ParticipantOpts{})
	p.Start(env)
	if p.State() != types.StatePC {
		t.Errorf("recovered state = %v", p.State())
	}
	if len(env.Timers) == 0 {
		t.Error("recovered mid-protocol participant must arm patience")
	}
}

// --- coordinator ---

func runVotes(c *Coordinator, env *protocoltest.Env, yes []types.SiteID) {
	for _, s := range yes {
		c.OnMessage(s, msg.VoteResp{Txn: 1, Vote: types.VoteYes}, env)
	}
}

func TestCoordinatorHappyPathCP1(t *testing.T) {
	env := protocoltest.New(1, ex1())
	c := NewCoordinator(1, ws, parts, WriteQuorumEvery{Items: ws.Items()}, AckTimeoutTerminate)
	c.Start(env)

	// Phase 1: VOTE-REQ to every participant, BEGIN logged first.
	if env.Logs[0].Type != wal.RecBegin {
		t.Error("BEGIN not logged")
	}
	if got := len(env.Sends); got != len(parts) {
		t.Fatalf("sent %d VOTE-REQs, want %d", got, len(parts))
	}
	env.Reset()

	runVotes(c, env, parts)
	// Phase 2: PTC to every participant.
	ptc := 0
	for _, s := range env.Sends {
		if s.Msg.Kind() == msg.KindPrepareToCommit {
			ptc++
		}
	}
	if ptc != len(parts) {
		t.Fatalf("sent %d PTCs, want %d", ptc, len(parts))
	}
	env.Reset()

	// CP1 commits once PC-ACKs cover w(x) for every item: 3 x-sites + 3
	// y-sites. Two acks of each do not suffice.
	for _, s := range []types.SiteID{1, 2, 5, 6} {
		c.OnMessage(s, msg.PCAck{Txn: 1}, env)
	}
	if len(env.Sends) != 0 {
		t.Fatal("committed before the write quorum of acks")
	}
	c.OnMessage(3, msg.PCAck{Txn: 1}, env)
	if len(env.Sends) != 0 {
		t.Fatal("committed with w votes for x but not y")
	}
	c.OnMessage(7, msg.PCAck{Txn: 1}, env)
	commits := 0
	for _, s := range env.Sends {
		if s.Msg.Kind() == msg.KindCommit {
			commits++
		}
	}
	if commits != len(parts) {
		t.Errorf("sent %d COMMITs after quorum, want %d", commits, len(parts))
	}
	if c.DecidedAtAck != 6 {
		t.Errorf("DecidedAtAck = %d, want 6", c.DecidedAtAck)
	}
}

func TestCoordinatorCP2CommitsFaster(t *testing.T) {
	env := protocoltest.New(1, ex1())
	c := NewCoordinator(1, ws, parts, ReadQuorumSome{Items: ws.Items()}, AckTimeoutTerminate)
	c.Start(env)
	runVotes(c, env, parts)
	env.Reset()

	// CP2 needs only r(x) = 2 votes of PC-ACKs for some item.
	c.OnMessage(1, msg.PCAck{Txn: 1}, env)
	if len(env.Sends) != 0 {
		t.Fatal("committed after one ack")
	}
	c.OnMessage(2, msg.PCAck{Txn: 1}, env)
	if len(env.Sends) == 0 {
		t.Fatal("CP2 should commit after two x acks")
	}
	if c.DecidedAtAck != 2 {
		t.Errorf("DecidedAtAck = %d, want 2", c.DecidedAtAck)
	}
}

func TestCoordinatorAbortsOnNoVote(t *testing.T) {
	env := protocoltest.New(1, ex1())
	c := NewCoordinator(1, ws, parts, AllAcks{Participants: parts}, AckTimeoutCommit)
	c.Start(env)
	env.Reset()
	c.OnMessage(2, msg.VoteResp{Txn: 1, Vote: types.VoteNo}, env)
	aborts := 0
	for _, s := range env.Sends {
		if s.Msg.Kind() == msg.KindAbort {
			aborts++
		}
	}
	if aborts != len(parts) {
		t.Errorf("sent %d ABORTs, want %d", aborts, len(parts))
	}
	// Late yes votes must not resurrect the transaction.
	env.Reset()
	runVotes(c, env, parts)
	if len(env.Sends) != 0 {
		t.Error("decided coordinator kept acting")
	}
}

func TestCoordinatorVoteTimeoutAborts(t *testing.T) {
	env := protocoltest.New(1, ex1())
	c := NewCoordinator(1, ws, parts, AllAcks{Participants: parts}, AckTimeoutCommit)
	c.Start(env)
	env.Reset()
	c.OnTimer(tokVotes, env)
	if len(env.Sends) == 0 || env.Sends[0].Msg.Kind() != msg.KindAbort {
		t.Error("vote timeout did not abort")
	}
}

func TestCoordinatorAckTimeoutPolicies(t *testing.T) {
	// 3PC: commit anyway.
	env := protocoltest.New(1, ex1())
	c := NewCoordinator(1, ws, parts, AllAcks{Participants: parts}, AckTimeoutCommit)
	c.Start(env)
	runVotes(c, env, parts)
	env.Reset()
	c.OnTimer(tokAcks, env)
	if len(env.Sends) == 0 || env.Sends[0].Msg.Kind() != msg.KindCommit {
		t.Error("3PC policy should commit on ack timeout")
	}

	// Quorum protocols: hand over to termination.
	env2 := protocoltest.New(1, ex1())
	c2 := NewCoordinator(1, ws, parts, WriteQuorumEvery{Items: ws.Items()}, AckTimeoutTerminate)
	c2.Start(env2)
	runVotes(c2, env2, parts)
	env2.Reset()
	c2.OnTimer(tokAcks, env2)
	if len(env2.TermReqs) != 1 {
		t.Error("terminate policy should request termination on ack timeout")
	}
}

// --- terminator ---

type fixedRules struct {
	verdict Verdict
	commit  bool
	abort   bool
}

func (fixedRules) Name() string                                              { return "fixed" }
func (f fixedRules) Decide(env protocol.Env, t StateTally) Verdict           { return f.verdict }
func (f fixedRules) CommitConfirmed(env protocol.Env, s []types.SiteID) bool { return f.commit }
func (f fixedRules) AbortConfirmed(env protocol.Env, s []types.SiteID) bool  { return f.abort }

func TestTerminatorPollsAndDistributes(t *testing.T) {
	env := protocoltest.New(2, ex1())
	term := NewTerminator(1, ws, parts, 5, fixedRules{verdict: VerdictCommit})
	term.Start(env)
	reqs := 0
	for _, s := range env.Sends {
		if r, ok := s.Msg.(msg.StateReq); ok {
			reqs++
			if r.Epoch != 5 {
				t.Errorf("epoch = %d, want 5", r.Epoch)
			}
		}
	}
	if reqs != len(parts) {
		t.Fatalf("polled %d, want %d (including self)", reqs, len(parts))
	}
	env.Reset()
	term.OnMessage(2, msg.StateResp{Txn: 1, Epoch: 5, State: types.StateWait}, env)
	term.OnTimer(tokCollect, env)
	commits := 0
	for _, s := range env.Sends {
		if s.Msg.Kind() == msg.KindCommit {
			commits++
		}
	}
	if commits != len(parts) {
		t.Errorf("distributed %d COMMITs, want %d", commits, len(parts))
	}
	if len(env.TermDones) != 1 {
		t.Error("TerminatorDone not signalled")
	}
}

func TestTerminatorStaleEpochIgnored(t *testing.T) {
	env := protocoltest.New(2, ex1())
	term := NewTerminator(1, ws, []types.SiteID{2, 3}, 5, fixedRules{verdict: VerdictBlock})
	term.Start(env)
	term.OnMessage(3, msg.StateResp{Txn: 1, Epoch: 4, State: types.StateCommitted}, env)
	env.Reset()
	term.OnTimer(tokCollect, env)
	if len(env.Blocked) != 1 {
		t.Error("stale-epoch response should not have been counted")
	}
}

func TestTerminatorTryCommitConfirmFlow(t *testing.T) {
	env := protocoltest.New(2, ex1())
	term := NewTerminator(1, ws, parts, 1, fixedRules{verdict: VerdictTryCommit, commit: true})
	term.Start(env)
	term.OnMessage(5, msg.StateResp{Txn: 1, Epoch: 1, State: types.StatePC}, env)
	term.OnMessage(4, msg.StateResp{Txn: 1, Epoch: 1, State: types.StateWait}, env)
	env.Reset()
	term.OnTimer(tokCollect, env)
	// PTC must go to the W reporter only.
	if got := env.SentTo(4); len(got) != 1 || got[0].Kind() != msg.KindPrepareToCommit {
		t.Errorf("PTC to site4 = %v", got)
	}
	if got := env.SentTo(5); len(got) != 0 {
		t.Errorf("PC reporter should not get PTC: %v", got)
	}
	term.OnMessage(4, msg.PCAck{Txn: 1}, env)
	env.Reset()
	term.OnTimer(tokConfirm, env)
	if len(env.Sends) == 0 || env.Sends[0].Msg.Kind() != msg.KindCommit {
		t.Error("confirmed try-commit should distribute COMMIT")
	}
}

func TestTerminatorReentersOnFailedConfirm(t *testing.T) {
	env := protocoltest.New(2, ex1())
	term := NewTerminator(1, ws, parts, 1, fixedRules{verdict: VerdictTryAbort, abort: false})
	term.Start(env)
	term.OnMessage(4, msg.StateResp{Txn: 1, Epoch: 1, State: types.StateWait}, env)
	term.OnTimer(tokCollect, env)
	env.Reset()
	term.OnTimer(tokConfirm, env)
	if len(env.TermReqs) != 1 {
		t.Error("failed confirmation should restart the election protocol")
	}
	if len(env.Sends) != 0 {
		t.Error("no decision should be distributed on failed confirmation")
	}
}

func TestTerminatorBlockVerdict(t *testing.T) {
	env := protocoltest.New(2, ex1())
	term := NewTerminator(1, ws, parts, 1, fixedRules{verdict: VerdictBlock})
	term.Start(env)
	env.Reset()
	term.OnTimer(tokCollect, env)
	if len(env.Blocked) != 1 {
		t.Error("block verdict not reported")
	}
}

func TestStateTallyHelpers(t *testing.T) {
	tl := NewStateTally(map[types.SiteID]types.State{
		2: types.StateWait, 3: types.StatePC, 4: types.StateWait,
	})
	if !tl.Any(types.StatePC) || tl.Any(types.StateAborted) {
		t.Error("Any wrong")
	}
	if got := tl.In(types.StateWait); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("In(W) = %v", got)
	}
	if got := tl.NotIn(types.StatePC); len(got) != 2 {
		t.Errorf("NotIn(PC) = %v", got)
	}
	if len(tl.Responders) != 3 {
		t.Errorf("Responders = %v", tl.Responders)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictCommit: "commit", VerdictAbort: "abort",
		VerdictTryCommit: "try-commit", VerdictTryAbort: "try-abort", VerdictBlock: "block",
	} {
		if v.String() != want {
			t.Errorf("verdict %d = %q, want %q", v, v.String(), want)
		}
	}
}
