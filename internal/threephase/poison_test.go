package threephase

import (
	"testing"

	"qcommit/internal/msg"
	"qcommit/internal/protocoltest"
	"qcommit/internal/types"
)

// TestParticipantPoisonsVoteAfterInitialReply: a participant in q that has
// answered a termination poll (StateReq or DecisionReq) has promised the
// termination protocol it never voted — the paper's abort-on-initial rules
// lean on that reply. A VOTE-REQ arriving afterwards must therefore not
// yield a yes vote.
func TestParticipantPoisonsVoteAfterInitialReply(t *testing.T) {
	cases := []struct {
		name string
		poll msg.Message
	}{
		{"state-req", msg.StateReq{Txn: 1, Epoch: 1}},
		{"decision-req", msg.DecisionReq{Txn: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := protocoltest.New(2, ex1())
			p := NewParticipant(1, nil, ParticipantOpts{})
			p.Start(e)
			p.OnMessage(3, tc.poll, e)
			if len(e.Aborted) != 1 {
				t.Fatalf("participant did not abort after initial-state reply (aborted %v)", e.Aborted)
			}
			// The poll reply itself still reports the polled state.
			if len(e.Sends) != 1 {
				t.Fatalf("sends = %v", e.SentKinds())
			}
			switch m := e.Sends[0].Msg.(type) {
			case msg.StateResp:
				if m.State != types.StateInitial {
					t.Errorf("state reply = %v, want initial", m.State)
				}
			case msg.DecisionResp:
				if !m.Uncommitted {
					t.Error("decision reply not marked uncommitted")
				}
			}
			e.Reset()
			p.OnMessage(1, voteReq(1), e)
			for _, s := range e.Sends {
				if v, ok := s.Msg.(msg.VoteResp); ok && v.Vote == types.VoteYes {
					t.Error("participant voted yes after promising q")
				}
			}
		})
	}
}
