package threephase

import (
	"fmt"
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
)

// Verdict is the phase-2 classification of a termination coordinator after
// polling local states (the five-way branch of Figs. 5 and 8).
type Verdict uint8

// Verdicts.
const (
	// VerdictCommit terminates immediately with COMMIT.
	VerdictCommit Verdict = iota
	// VerdictAbort terminates immediately with ABORT.
	VerdictAbort
	// VerdictTryCommit attempts to establish a commit quorum via
	// PREPARE-TO-COMMIT.
	VerdictTryCommit
	// VerdictTryAbort attempts to establish an abort quorum via
	// PREPARE-TO-ABORT.
	VerdictTryAbort
	// VerdictBlock blocks the transaction in this partition.
	VerdictBlock
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictCommit:
		return "commit"
	case VerdictAbort:
		return "abort"
	case VerdictTryCommit:
		return "try-commit"
	case VerdictTryAbort:
		return "try-abort"
	default:
		return "block"
	}
}

// StateTally summarizes the local states collected in phase 1.
type StateTally struct {
	// ByState holds the responding sites per state, ascending.
	ByState map[types.State][]types.SiteID
	// Responders holds every responding site, ascending.
	Responders []types.SiteID
}

// NewStateTally builds a tally from collected responses.
func NewStateTally(resp map[types.SiteID]types.State) StateTally {
	t := StateTally{ByState: make(map[types.State][]types.SiteID)}
	//qlint:allow determinism both collected slices (per-state buckets and Responders) are sorted below before anyone reads them
	for s, st := range resp {
		t.ByState[st] = append(t.ByState[st], s)
		t.Responders = append(t.Responders, s)
	}
	for st := range t.ByState {
		sort.Slice(t.ByState[st], func(i, j int) bool { return t.ByState[st][i] < t.ByState[st][j] })
	}
	sort.Slice(t.Responders, func(i, j int) bool { return t.Responders[i] < t.Responders[j] })
	return t
}

// Any reports whether at least one responder is in the given state.
func (t StateTally) Any(st types.State) bool { return len(t.ByState[st]) > 0 }

// In returns the responders in the given state.
func (t StateTally) In(st types.State) []types.SiteID { return t.ByState[st] }

// NotIn returns the responders not in the given state.
func (t StateTally) NotIn(st types.State) []types.SiteID {
	var out []types.SiteID
	for _, s := range t.Responders {
		if !containsSite(t.ByState[st], s) {
			out = append(out, s)
		}
	}
	return out
}

func containsSite(ss []types.SiteID, x types.SiteID) bool {
	for _, s := range ss {
		if s == x {
			return true
		}
	}
	return false
}

// Rules is the protocol-specific quorum logic of a termination coordinator.
type Rules interface {
	// Name identifies the rule set in traces ("TP1", "TP2", "SkeenQ-term",
	// "3PC-term").
	Name() string
	// Decide classifies the phase-1 tally.
	Decide(env protocol.Env, tally StateTally) Verdict
	// CommitConfirmed reports whether the given sites (phase-1 PC reporters
	// plus phase-2 PC-ackers) establish the commit quorum.
	CommitConfirmed(env protocol.Env, sites []types.SiteID) bool
	// AbortConfirmed reports whether the given sites (phase-1 PA reporters
	// plus phase-2 PA-ackers) establish the abort quorum.
	AbortConfirmed(env protocol.Env, sites []types.SiteID) bool
}

type termPhase uint8

const (
	tpCollect termPhase = iota
	tpConfirmCommit
	tpConfirmAbort
	tpDone
)

// Terminator timer tokens.
const (
	tokCollect = iota + 1
	tokConfirm
)

// Terminator is the generic three-phase termination coordinator of Figs. 5
// and 8, parameterized by Rules. Phase 1 polls local states from all
// reachable participants; phase 2 classifies; phase 3 confirms the attempted
// quorum within a 2T window and either distributes the decision or restarts
// the election protocol (the protocol is reenterable).
type Terminator struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
	epoch        uint32
	rules        Rules

	phase   termPhase
	resp    map[types.SiteID]types.State
	confirm map[types.SiteID]bool
}

// NewTerminator builds a termination coordinator for one partition round.
func NewTerminator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, epoch uint32, rules Rules) *Terminator {
	return &Terminator{
		txn:          txn,
		ws:           ws,
		participants: participants,
		epoch:        epoch,
		rules:        rules,
		resp:         make(map[types.SiteID]types.State),
		confirm:      make(map[types.SiteID]bool),
	}
}

// Start implements protocol.Automaton: phase 1, request local states from
// all reachable participants (including this site itself).
func (t *Terminator) Start(env protocol.Env) {
	env.Tracef("%s: terminator %s (epoch %d, %s) polls states", t.txn, env.Self(), t.epoch, t.rules.Name())
	for _, p := range t.participants {
		env.Send(p, msg.StateReq{Txn: t.txn, Coord: env.Self(), Epoch: t.epoch})
	}
	env.SetTimer(protocol.AckWindow(env), tokCollect)
}

// OnMessage implements protocol.Automaton.
func (t *Terminator) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	switch v := m.(type) {
	case msg.StateResp:
		if t.phase == tpCollect && v.Epoch == t.epoch {
			t.resp[from] = v.State
		}
	case msg.PCAck:
		if t.phase == tpConfirmCommit {
			t.confirm[from] = true
		}
	case msg.PAAck:
		if t.phase == tpConfirmAbort {
			t.confirm[from] = true
		}
	}
}

// OnTimer implements protocol.Automaton.
func (t *Terminator) OnTimer(token int, env protocol.Env) {
	switch token {
	case tokCollect:
		if t.phase == tpCollect {
			t.evaluate(env)
		}
	case tokConfirm:
		switch t.phase {
		case tpConfirmCommit:
			if t.rules.CommitConfirmed(env, keys(t.confirm)) {
				t.distribute(env, types.DecisionCommit)
			} else {
				t.reenter(env, "commit quorum not confirmed")
			}
		case tpConfirmAbort:
			if t.rules.AbortConfirmed(env, keys(t.confirm)) {
				t.distribute(env, types.DecisionAbort)
			} else {
				t.reenter(env, "abort quorum not confirmed")
			}
		}
	}
}

// evaluate is phase 2: classify collected states and act.
func (t *Terminator) evaluate(env protocol.Env) {
	tally := NewStateTally(t.resp)
	verdict := t.rules.Decide(env, tally)
	env.Tracef("%s: terminator %s tallied %s → %s", t.txn, env.Self(), tallyString(tally), verdict)
	switch verdict {
	case VerdictCommit:
		t.distribute(env, types.DecisionCommit)
	case VerdictAbort:
		t.distribute(env, types.DecisionAbort)
	case VerdictTryCommit:
		t.phase = tpConfirmCommit
		for _, s := range tally.In(types.StatePC) {
			t.confirm[s] = true // phase-1 PC reporters count toward the quorum
		}
		for _, s := range tally.In(types.StateWait) {
			env.Send(s, msg.PrepareToCommit{Txn: t.txn})
		}
		env.SetTimer(protocol.AckWindow(env), tokConfirm)
	case VerdictTryAbort:
		t.phase = tpConfirmAbort
		for _, s := range tally.In(types.StatePA) {
			t.confirm[s] = true // phase-1 PA reporters count toward the quorum
		}
		for _, s := range tally.In(types.StateWait) {
			env.Send(s, msg.PrepareToAbort{Txn: t.txn})
		}
		env.SetTimer(protocol.AckWindow(env), tokConfirm)
	case VerdictBlock:
		t.phase = tpDone
		env.Block(t.txn)
		env.TerminatorDone(t.txn)
	}
}

func (t *Terminator) distribute(env protocol.Env, d types.Decision) {
	t.phase = tpDone
	env.Tracef("%s: terminator %s distributes %s", t.txn, env.Self(), d)
	for _, p := range t.participants {
		switch d {
		case types.DecisionCommit:
			env.Send(p, msg.Commit{Txn: t.txn})
		case types.DecisionAbort:
			env.Send(p, msg.Abort{Txn: t.txn})
		}
	}
	env.TerminatorDone(t.txn)
}

// reenter restarts the election protocol, as Figs. 5 and 8 prescribe when
// the phase-3 acknowledgements fall short ("else start the election
// protocol").
func (t *Terminator) reenter(env protocol.Env, why string) {
	t.phase = tpDone
	env.Tracef("%s: terminator %s re-enters election (%s)", t.txn, env.Self(), why)
	env.TerminatorDone(t.txn)
	env.RequestTermination(t.txn)
}

func keys(set map[types.SiteID]bool) []types.SiteID {
	out := make([]types.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func tallyString(t StateTally) string {
	s := ""
	for _, st := range []types.State{types.StateInitial, types.StateWait, types.StatePC, types.StatePA, types.StateCommitted, types.StateAborted} {
		if n := len(t.ByState[st]); n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s:%d", st, n)
		}
	}
	if s == "" {
		return "(no responses)"
	}
	return s
}
