package threephase

import (
	"sort"

	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/types"
	"qcommit/internal/wal"
)

// AckRule decides when the coordinator may send COMMIT before all PC-ACKs
// have arrived — the knob that distinguishes plain 3PC from Skeen's quorum
// commit protocol and from the paper's commit protocols 1 and 2 (Fig. 9).
type AckRule interface {
	// Name identifies the rule in traces.
	Name() string
	// Satisfied reports whether the acknowledged sites suffice to commit.
	Satisfied(env protocol.Env, acked []types.SiteID) bool
}

// AckTimeoutPolicy selects what the coordinator does when the ack window
// closes with the rule unsatisfied.
type AckTimeoutPolicy uint8

// Policies.
const (
	// AckTimeoutCommit commits anyway, presuming silent participants failed
	// (plain 3PC, which assumes a reliable network and only site failures).
	AckTimeoutCommit AckTimeoutPolicy = iota
	// AckTimeoutTerminate hands the transaction to the termination protocol
	// (the quorum-based protocols).
	AckTimeoutTerminate
)

type coordPhase uint8

const (
	cpVoting coordPhase = iota
	cpPreparing
	cpDone
)

// Timer tokens.
const (
	tokVotes = iota + 1
	tokAcks
)

// Coordinator drives the commit protocol for one transaction. It follows the
// three-phase skeleton of Figs. 2 and 9: distribute VOTE-REQ, collect votes,
// distribute PREPARE-TO-COMMIT on unanimous yes, collect PC-ACKs until the
// AckRule is satisfied, then distribute COMMIT. Any no vote or vote timeout
// aborts.
type Coordinator struct {
	txn          types.TxnID
	ws           types.Writeset
	participants []types.SiteID
	rule         AckRule
	policy       AckTimeoutPolicy

	phase coordPhase
	votes map[types.SiteID]types.Vote
	acked map[types.SiteID]bool
	// DecidedAtAck is set when the commit decision was reached (for latency
	// measurements): number of PC-ACKs received at decision time.
	DecidedAtAck int
}

// AcksAtDecision returns how many PC-ACKs the coordinator had received when
// it decided to commit (0 if it has not committed). The engine exposes this
// for the claim-C2 benchmarks.
func (c *Coordinator) AcksAtDecision() int { return c.DecidedAtAck }

// NewCoordinator builds a coordinator for txn with the given early-commit
// rule and timeout policy.
func NewCoordinator(txn types.TxnID, ws types.Writeset, participants []types.SiteID, rule AckRule, policy AckTimeoutPolicy) *Coordinator {
	return &Coordinator{
		txn:          txn,
		ws:           ws,
		participants: participants,
		rule:         rule,
		policy:       policy,
		votes:        make(map[types.SiteID]types.Vote),
		acked:        make(map[types.SiteID]bool),
	}
}

// Start implements protocol.Automaton: phase 1, distribute the update values
// and request votes.
func (c *Coordinator) Start(env protocol.Env) {
	env.Append(wal.Record{
		Type:         wal.RecBegin,
		Txn:          c.txn,
		Coord:        env.Self(),
		Participants: c.participants,
		Writeset:     c.ws,
	})
	env.Tracef("%s: coordinator %s starts commit (%s rule)", c.txn, env.Self(), c.rule.Name())
	req := msg.VoteReq{Txn: c.txn, Coord: env.Self(), Participants: c.participants, Writeset: c.ws}
	for _, p := range c.participants {
		env.Send(p, req)
	}
	env.SetTimer(protocol.AckWindow(env), tokVotes)
}

// OnMessage implements protocol.Automaton.
func (c *Coordinator) OnMessage(from types.SiteID, m msg.Message, env protocol.Env) {
	switch v := m.(type) {
	case msg.VoteResp:
		if c.phase != cpVoting {
			return
		}
		c.votes[from] = v.Vote
		if v.Vote == types.VoteNo {
			c.decideAbort(env, "participant voted no")
			return
		}
		if c.allYes() {
			c.beginPrepare(env)
		}
	case msg.PCAck:
		if c.phase != cpPreparing {
			return
		}
		c.acked[from] = true
		if c.rule.Satisfied(env, c.ackedSites()) {
			c.DecidedAtAck = len(c.acked)
			c.decideCommit(env)
		}
	}
}

// OnTimer implements protocol.Automaton.
func (c *Coordinator) OnTimer(token int, env protocol.Env) {
	switch token {
	case tokVotes:
		if c.phase == cpVoting {
			c.decideAbort(env, "vote timeout")
		}
	case tokAcks:
		if c.phase != cpPreparing {
			return
		}
		if c.rule.Satisfied(env, c.ackedSites()) {
			c.decideCommit(env)
			return
		}
		switch c.policy {
		case AckTimeoutCommit:
			env.Tracef("%s: ack window closed, committing anyway (3PC site-failure assumption)", c.txn)
			c.decideCommit(env)
		case AckTimeoutTerminate:
			env.Tracef("%s: ack window closed without a quorum, invoking termination", c.txn)
			c.phase = cpDone
			env.RequestTermination(c.txn)
		}
	}
}

func (c *Coordinator) allYes() bool {
	for _, p := range c.participants {
		v, ok := c.votes[p]
		if !ok || v != types.VoteYes {
			return false
		}
	}
	return true
}

func (c *Coordinator) ackedSites() []types.SiteID {
	out := make([]types.SiteID, 0, len(c.acked))
	for s := range c.acked {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Coordinator) beginPrepare(env protocol.Env) {
	c.phase = cpPreparing
	env.Tracef("%s: all votes yes, distributing PREPARE-TO-COMMIT", c.txn)
	for _, p := range c.participants {
		env.Send(p, msg.PrepareToCommit{Txn: c.txn})
	}
	env.SetTimer(protocol.AckWindow(env), tokAcks)
}

func (c *Coordinator) decideCommit(env protocol.Env) {
	if c.phase == cpDone {
		return
	}
	c.phase = cpDone
	env.Tracef("%s: coordinator decides COMMIT after %d PC-ACKs", c.txn, len(c.acked))
	for _, p := range c.participants {
		env.Send(p, msg.Commit{Txn: c.txn})
	}
	if !contains(c.participants, env.Self()) {
		// Pure coordinator (holds no copies): record its own decision.
		env.Commit(c.txn)
	}
}

func (c *Coordinator) decideAbort(env protocol.Env, why string) {
	if c.phase == cpDone {
		return
	}
	c.phase = cpDone
	env.Tracef("%s: coordinator decides ABORT (%s)", c.txn, why)
	for _, p := range c.participants {
		env.Send(p, msg.Abort{Txn: c.txn})
	}
	if !contains(c.participants, env.Self()) {
		env.Abort(c.txn)
	}
}

func contains(ss []types.SiteID, x types.SiteID) bool {
	for _, s := range ss {
		if s == x {
			return true
		}
	}
	return false
}

// --- ack rules ---

// AllAcks is plain 3PC: every participant must acknowledge.
type AllAcks struct {
	Participants []types.SiteID
}

// Name implements AckRule.
func (AllAcks) Name() string { return "all-acks" }

// Satisfied implements AckRule.
func (r AllAcks) Satisfied(env protocol.Env, acked []types.SiteID) bool {
	if len(acked) < len(r.Participants) {
		return false
	}
	set := make(map[types.SiteID]bool, len(acked))
	for _, s := range acked {
		set[s] = true
	}
	for _, p := range r.Participants {
		if !set[p] {
			return false
		}
	}
	return true
}

// WriteQuorumEvery is the paper's commit protocol 1: the coordinator only
// has to wait for PC-ACKs worth w(x) votes for every data item x in the
// writeset, because those acknowledgements ensure an abort quorum can never
// be formed any more.
type WriteQuorumEvery struct {
	Items []types.ItemID
}

// Name implements AckRule.
func (WriteQuorumEvery) Name() string { return "CP1 w(x)-every" }

// Satisfied implements AckRule.
func (r WriteQuorumEvery) Satisfied(env protocol.Env, acked []types.SiteID) bool {
	return env.Assignment().WriteQuorumForEvery(r.Items, acked)
}

// ReadQuorumSome is the paper's commit protocol 2: PC-ACKs worth r(x) votes
// for some item x in the writeset suffice, for the symmetric reason. This
// makes commit protocol 2 faster than commit protocol 1.
type ReadQuorumSome struct {
	Items []types.ItemID
}

// Name implements AckRule.
func (ReadQuorumSome) Name() string { return "CP2 r(x)-some" }

// Satisfied implements AckRule.
func (r ReadQuorumSome) Satisfied(env protocol.Env, acked []types.SiteID) bool {
	return env.Assignment().ReadQuorumForSome(r.Items, acked)
}

// SiteVoteQuorum is Skeen's quorum commit rule: acknowledged sites must
// carry at least Vc site votes.
type SiteVoteQuorum struct {
	Votes  map[types.SiteID]int
	Quorum int
}

// Name implements AckRule.
func (SiteVoteQuorum) Name() string { return "SkeenQ Vc" }

// Satisfied implements AckRule.
func (r SiteVoteQuorum) Satisfied(env protocol.Env, acked []types.SiteID) bool {
	total := 0
	for _, s := range acked {
		total += r.Votes[s]
	}
	return total >= r.Quorum
}
