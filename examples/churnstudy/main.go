// Churn study: steady-state availability under failure and repair. Where
// the partition study freezes one interrupted commit, this example lets the
// cluster live: sites crash and repair (exponential MTTF/MTTR), a
// transaction stream keeps arriving, and every protocol is measured on what
// a client experiences over time — committed/aborted/blocked fractions,
// termination-latency percentiles, and the share of time spent waiting.
//
// Two sweeps:
//
//  1. repair speed (MTTR) under site churn only: faster repair means more
//     replicas answer the vote phase, so more of the stream commits;
//
//  2. partition churn: the network splits and heals while transactions are
//     in flight — the quorum protocols stay safe, while the 3PC baseline
//     pays for its optimism with atomicity violations (Example 2, now as a
//     steady-state rate).
//
// Run with:
//
//	go run ./examples/churnstudy
package main

import (
	"fmt"
	"log"

	"qcommit"
)

func main() {
	fmt.Println("=== repair-speed sweep: site churn only (MTTF 2s) ===")
	for _, mttr := range []qcommit.Duration{100 * qcommit.Millisecond, 400 * qcommit.Millisecond, 1600 * qcommit.Millisecond} {
		params := qcommit.DefaultChurnParams()
		params.MTTR = mttr
		params.Horizon = 4 * qcommit.Second
		results, err := qcommit.ChurnStudy(params, 8, 1, qcommit.ChurnOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- MTTR = %dms ---\n", mttr/qcommit.Millisecond)
		fmt.Print(qcommit.FormatChurnTable(results))
		fmt.Println()
	}

	fmt.Println("=== partition churn: the network splits and heals mid-stream ===")
	params := qcommit.DefaultChurnParams()
	params.MTTF = 4 * qcommit.Second
	params.MTTR = 500 * qcommit.Millisecond
	params.PartitionMTBF = 1200 * qcommit.Millisecond
	params.PartitionMTTR = 500 * qcommit.Millisecond
	params.Horizon = 4 * qcommit.Second
	results, err := qcommit.ChurnStudy(params, 10, 42, qcommit.ChurnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(qcommit.FormatChurnTable(results))
	fmt.Println()
	for _, r := range results {
		if r.Label == "3PC" && r.Violations > 0 {
			fmt.Printf("3PC violated atomicity %d times: its site-failure termination rule\n", r.Violations)
			fmt.Println("assumes silent sites are down, so two partition sides can decide")
			fmt.Println("differently — the paper's Example 2, recurring at steady state.")
		}
	}
	fmt.Println()
	fmt.Println("reading the tables: committed/aborted/blocked are fractions of the")
	fmt.Println("submitted stream at the horizon; p50/p95/p99 are time-to-termination")
	fmt.Println("percentiles in virtual time; blkshare is the share of post-submission")
	fmt.Println("time transactions spent awaiting a decision.")
}
