// Dynamic voting: vote reassignment as an access strategy (Jajodia &
// Mutchler, SIGMOD 1987; Barbara, Garcia-Molina & Spauster, ACM TODS 1989),
// integrated via Options.Strategy. Static quorums lose a vote with every
// copy a committed write leaves behind: after a second failure of a 4-copy
// item no partition holds w=3 of the original votes, and writes stay
// unavailable until those exact copies return. Under dynamic voting each
// committed write re-anchors the item's quorum basis on the copies it
// reached — a new, version-numbered vote table in which only the survivors
// hold votes — so after the same two failures the two survivors still form
// a majority (2 of the 3-vote table) and writes stay available. Epoch
// guards keep the stale minority from ever forming a quorum of its own. The
// commit and termination protocols themselves keep running on the static
// assignment; the strategy governs the data-access layer, exactly like the
// missing-writes scheme.
//
//	go run ./examples/dynamicvoting
package main

import (
	"fmt"

	"qcommit"
)

func votes(c *qcommit.Cluster, item qcommit.ItemID) string {
	s := ""
	for i, cp := range c.VotesNow(item) {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", cp.Site, cp.Votes)
	}
	return s
}

func main() {
	items := []qcommit.ReplicatedItem{
		{Name: "ledger", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 100},
	}
	newCluster := func(strategy qcommit.Strategy) *qcommit.Cluster {
		return qcommit.MustCluster(items, qcommit.Options{
			Protocol: qcommit.ProtoQC1,
			Strategy: strategy,
			Seed:     7,
		})
	}
	static := newCluster(qcommit.StrategyQuorum)
	dynamic := newCluster(qcommit.StrategyDynamic)

	fmt.Println("ledger: 4 copies at sites 1-4, static quorums r=2 w=3")
	fmt.Printf("initial table: epoch %d, votes %s\n\n", dynamic.VoteEpoch("ledger"), votes(dynamic, "ledger"))

	// First failure: a replica crashes after voting, so the commit still
	// reaches its write quorum but misses site4's copy. The dynamic cluster
	// reassigns votes so the three reached survivors form the new majority
	// basis; the static cluster just soldiers on one vote short.
	for _, c := range []*qcommit.Cluster{static, dynamic} {
		txn := c.Submit(1, map[qcommit.ItemID]int64{"ledger": 180})
		c.CrashAt(qcommit.Time(15*qcommit.Millisecond), 4)
		c.Run()
		fmt.Printf("[%v] write with site4 crashing mid-commit: %v\n", c.Strategy(), c.Outcome(txn))
	}
	fmt.Printf("dynamic basis now: epoch %d, votes %s (write majority: 2 of 3)\n\n",
		dynamic.VoteEpoch("ledger"), votes(dynamic, "ledger"))

	// Second failure. Static quorums are stuck: sites 1-2 hold 2 of the
	// original 4 votes, short of w=3, and no write can proceed anywhere.
	// The dynamic basis shrank to {1,2,3}, where the surviving pair still
	// forms a majority — the data stays write-available.
	static.Crash(3)
	dynamic.Crash(3)
	fmt.Printf("[%v] write-available from site1 after the second failure? %v\n",
		static.Strategy(), static.CanWrite(1, "ledger"))
	fmt.Printf("[%v] write-available from site1 after the second failure? %v\n",
		dynamic.Strategy(), dynamic.CanWrite(1, "ledger"))
	if v, err := dynamic.QuorumRead(1, "ledger"); err == nil {
		fmt.Printf("[dynamic] read from the surviving pair: %d\n", v)
	}

	// The stale minority can never hijack the item: sites 3 and 4 recover
	// into a partition of their own, but under the newest vote table either
	// of them has installed (epoch 1, basis {1,2,3}) they muster 1 vote of
	// 3 — no quorum, no reassignment.
	dynamic.Restart(3)
	dynamic.Restart(4)
	dynamic.Partition([]qcommit.SiteID{3, 4}, []qcommit.SiteID{1, 2})
	fmt.Printf("\nstale pair {3,4} write-available in a minority partition? %v\n",
		dynamic.CanWrite(3, "ledger"))

	// Heal: the catch-up pass syncs the copies outside the basis and
	// reassigns votes to fold everyone back in, restoring the full table.
	dynamic.Heal()
	dynamic.Run()
	reassigns, restores := dynamic.VoteTransitions()
	fmt.Printf("after heal + catch-up: epoch %d, votes %s (%d reassignments, %d restoration)\n",
		dynamic.VoteEpoch("ledger"), votes(dynamic, "ledger"), reassigns, restores)
	if v := dynamic.Violations(); len(v) > 0 {
		fmt.Println("VIOLATIONS:", v)
	}
}
