// Networked: the live runtime as real processes on real sockets.
//
//	go run ./examples/networked
//
// Builds cmd/qcommitd, spawns one process per site on loopback TCP, and
// drives the cluster through the client protocol: a committed transaction,
// a partition installed over the control channel (under which coordinators
// terminate — abort — instead of wedging), and a post-heal commit. This is
// the same stack the e2e suite kill -9s.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"qcommit"
	"qcommit/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "qcommitd-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "qcommitd")
	if out, err := exec.Command("go", "build", "-o", bin, "qcommit/cmd/qcommitd").CombinedOutput(); err != nil {
		return fmt.Errorf("building qcommitd: %v\n%s", err, out)
	}

	// Reserve three loopback ports and build the shared peer map every
	// process must agree on.
	sites := []qcommit.SiteID{1, 2, 3}
	addrs := make(map[qcommit.SiteID]string)
	var peerParts []string
	for _, s := range sites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[s] = ln.Addr().String()
		ln.Close()
		peerParts = append(peerParts, fmt.Sprintf("%d=%s", int(s), addrs[s]))
	}
	peers := strings.Join(peerParts, ",")

	var daemons []*exec.Cmd
	defer func() {
		for _, d := range daemons {
			d.Process.Kill()
			d.Wait()
		}
	}()
	for _, s := range sites {
		cmd := exec.Command(bin,
			"-site", fmt.Sprint(int(s)),
			"-peers", peers,
			"-items", "x",
			"-protocol", "qc1",
			"-timeout-base", "100ms")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting site %d: %v", s, err)
		}
		daemons = append(daemons, cmd)
	}

	clients := make(map[qcommit.SiteID]*client.Client)
	for _, s := range sites {
		c, err := dialRetry(addrs[s], s)
		if err != nil {
			return err
		}
		defer c.Close()
		clients[s] = c
	}
	fmt.Printf("cluster up: %d qcommitd processes speaking QC1 over TCP\n", len(sites))

	// A transaction through the full wire protocol: the client talks to
	// site 1, site 1 coordinates the vote/prepare/commit rounds with its
	// peers over the sockets.
	txn, err := clients[1].Begin(map[qcommit.ItemID]int64{"x": 7})
	if err != nil {
		return err
	}
	o, err := clients[1].WaitOutcome(txn, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("txn %v: %v\n", txn, o)
	for _, s := range sites {
		v, _, _, err := readRetry(clients[s], "x", 7, 10*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  site %d copy of x = %d\n", s, v)
	}

	// Install a partition view on every node through the control channel.
	// The isolated coordinator cannot collect votes, so it times out and
	// aborts — it terminates instead of wedging, the paper's whole point.
	for _, s := range sites {
		if err := clients[s].Partition([]qcommit.SiteID{1}, []qcommit.SiteID{2, 3}); err != nil {
			return err
		}
	}
	cutTxn, err := clients[1].Begin(map[qcommit.ItemID]int64{"x": 99})
	if err != nil {
		return err
	}
	o, err = clients[1].WaitOutcome(cutTxn, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("under partition {1}|{2,3}, txn %v at the isolated site: %v (terminated, not blocked)\n", cutTxn, o)

	// Heal and show the cluster commits everywhere again.
	for _, s := range sites {
		if err := clients[s].Heal(); err != nil {
			return err
		}
	}
	healTxn, err := clients[2].Begin(map[qcommit.ItemID]int64{"x": 8})
	if err != nil {
		return err
	}
	o, err = clients[2].WaitOutcome(healTxn, 10*time.Second)
	if err != nil {
		return err
	}
	v, _, _, err := readRetry(clients[3], "x", 8, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("after heal, txn %v: %v; x = %d at site 3\n", healTxn, o, v)
	return nil
}

// dialRetry connects to a booting daemon.
func dialRetry(addr string, site qcommit.SiteID) (*client.Client, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := client.Dial(addr, site)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// readRetry polls a copy until it converges on want (remote copies apply
// the commit asynchronously after the coordinator decides).
func readRetry(c *client.Client, item qcommit.ItemID, want int64, d time.Duration) (int64, uint64, bool, error) {
	deadline := time.Now().Add(d)
	for {
		v, ver, found, err := c.Read(item)
		if err != nil || (found && v == want) || time.Now().After(deadline) {
			return v, ver, found, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}
