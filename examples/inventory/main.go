// Inventory: the live goroutine runtime. Warehouse stock counts replicated
// over real concurrent site goroutines with wall-clock timeouts; orders race
// for the same stock, a site crashes and recovers mid-stream.
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"time"

	"qcommit"
)

func main() {
	items := []qcommit.ReplicatedItem{
		{Name: "widgets", Sites: []qcommit.SiteID{1, 2, 3}, Initial: 100},
		{Name: "gadgets", Sites: []qcommit.SiteID{2, 3, 4}, Initial: 50},
	}
	cluster, err := qcommit.NewLiveCluster(items, qcommit.LiveOptions{
		Protocol:    qcommit.ProtoQC2,
		Seed:        11,
		TimeoutBase: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Sequential reservations from different front-end sites.
	stockW, stockG := int64(100), int64(50)
	for i := 0; i < 3; i++ {
		stockW -= 10
		txn := cluster.Submit(qcommit.SiteID(i%3+1), map[qcommit.ItemID]int64{"widgets": stockW})
		out := cluster.WaitOutcome(txn, 5*time.Second)
		fmt.Printf("order %d (reserve 10 widgets): %v, stock now %d\n", i+1, out, stockW)
	}

	// Two racing orders touch the same stock row: the no-wait lock policy
	// makes at most one commit.
	t1 := cluster.Submit(1, map[qcommit.ItemID]int64{"widgets": stockW - 20})
	t2 := cluster.Submit(2, map[qcommit.ItemID]int64{"widgets": stockW - 30})
	o1 := cluster.WaitOutcome(t1, 5*time.Second)
	o2 := cluster.WaitOutcome(t2, 5*time.Second)
	fmt.Printf("racing orders: #A=%v #B=%v (write-write conflict, at most one commits)\n", o1, o2)

	// Crash a copy holder: updates to its item now ABORT — atomic commitment
	// requires a unanimous yes vote, and a crashed site cannot vote. (The
	// quorum rules govern termination and acknowledgement counting, not the
	// vote itself.)
	cluster.Crash(4)
	stockG -= 5
	txnDown := cluster.Submit(2, map[qcommit.ItemID]int64{"gadgets": stockG})
	outDown := cluster.WaitOutcome(txnDown, 5*time.Second)
	fmt.Printf("gadget order with copy-holder site4 down: %v\n", outDown)

	// Restart site4 and retry: the order commits, and site4's copy applies.
	cluster.Restart(4)
	txnUp := cluster.Submit(2, map[qcommit.ItemID]int64{"gadgets": stockG})
	outUp := cluster.WaitOutcome(txnUp, 5*time.Second)
	fmt.Printf("gadget order after site4 restarted: %v\n", outUp)
	if outUp == qcommit.OutcomeCommitted {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v, _, err := cluster.CopyAt(4, "gadgets"); err == nil && v == stockG {
				ver := uint64(0)
				_, ver, _ = cluster.CopyAt(4, "gadgets")
				fmt.Printf("site4's copy: gadgets=%d (version %d)\n", v, ver)
				break
			}
			if time.Now().After(deadline) {
				log.Fatal("site4 never applied the committed write")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	if cluster.Violated(txnDown) || cluster.Violated(txnUp) || cluster.Violated(t1) || cluster.Violated(t2) {
		fmt.Println("ATOMICITY VIOLATED — should never happen")
	} else {
		fmt.Println("all transactions terminated atomically on the live runtime")
	}
}
