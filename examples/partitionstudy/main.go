// Partition study: the paper's comparison, end to end. Replays the exact
// Example 1 scenario under all five protocols, then runs a Monte Carlo
// sweep over random interrupted commits to show the availability ordering
// (QC2 ≥ QC1 > SkeenQ > 2PC, with 3PC "winning" only by violating
// atomicity).
//
//	go run ./examples/partitionstudy
package main

import (
	"fmt"
	"log"

	"qcommit"
	"qcommit/internal/avail"
)

func main() {
	fmt.Println("=== the Example 1 scenario under every protocol ===")
	fmt.Println("coordinator crashed, site5 in PC, partition {1,2,3}|{4,5}|{6,7,8}")
	fmt.Println()
	for _, proto := range qcommit.AllProtocols() {
		cluster, txn, err := qcommit.SetupExample1(proto, 1)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Run()
		rep := cluster.Availability(txn)
		t := rep.Tally()
		violations := len(cluster.Violations())
		fmt.Printf("%-7s terminated %d/3 partitions, blocked %d; readable item-pairs %d/%d; violations %d\n",
			proto, t.Terminated, t.Blocked, t.Readable, t.ItemGroupPairs, violations)
	}

	fmt.Println()
	fmt.Println("=== Monte Carlo: 300 random interrupted commits ===")
	results, err := avail.MonteCarlo(avail.DefaultScenarioParams(), 300, 99, avail.StandardBuilders(), avail.EngineReplay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(avail.FormatMCTable(results))
	fmt.Println()
	fmt.Println("reading the table: term-rate is the fraction of partitions that could")
	fmt.Println("terminate (commit or abort) the interrupted transaction; read/write-avail")
	fmt.Println("count (item, partition) pairs accessible afterwards. 3PC terminates")
	fmt.Println("everything but pays with atomicity violations — the paper's Example 2.")
}
