// Quickstart: a replicated item, one transaction, one partition.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qcommit"
)

func main() {
	// A single item "counter" with five single-vote copies and majority
	// quorums (r=3, w=3), managed by the paper's protocol 1.
	cluster, err := qcommit.NewCluster([]qcommit.ReplicatedItem{
		{Name: "counter", Sites: []qcommit.SiteID{1, 2, 3, 4, 5}, Initial: 0},
	}, qcommit.Options{Protocol: qcommit.ProtoQC1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Commit a write through the full protocol (vote, prepare, commit).
	txn := cluster.Submit(1, map[qcommit.ItemID]int64{"counter": 7})
	cluster.Run()
	fmt.Printf("transaction %v: %v\n", txn, cluster.Outcome(txn))

	// Weighted-voting read: collects a read quorum and takes the highest
	// version.
	v, err := cluster.QuorumRead(3, "counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %d (read from site3's partition)\n", v)

	// Partition the network 3|2: the majority side still reads and writes,
	// the minority side cannot.
	cluster.Partition([]qcommit.SiteID{1, 2, 3}, []qcommit.SiteID{4, 5})
	fmt.Printf("after partition {1,2,3}|{4,5}:\n")
	fmt.Printf("  majority side: can read = %v, can write = %v\n",
		cluster.CanRead(1, "counter"), cluster.CanWrite(1, "counter"))
	fmt.Printf("  minority side: can read = %v, can write = %v\n",
		cluster.CanRead(4, "counter"), cluster.CanWrite(4, "counter"))

	// A transaction submitted on the majority side still commits.
	cluster.Heal()
	txn2 := cluster.Submit(2, map[qcommit.ItemID]int64{"counter": 8})
	cluster.Run()
	fmt.Printf("transaction %v after heal: %v\n", txn2, cluster.Outcome(txn2))
	v, _ = cluster.QuorumRead(5, "counter")
	fmt.Printf("counter = %d\n", v)
}
