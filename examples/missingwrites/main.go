// Missing writes: the adaptive access strategy (Eager & Sevcik 1983,
// reference [5] of the paper) integrated into the cluster's data-access
// layer via Options.Strategy. While all copies are healthy, reads touch one
// copy and writes touch all (cheap); a committed write that misses a copy —
// here, a replica that crashes after voting — demotes the item to
// pessimistic quorum mode; restarting the site triggers anti-entropy, the
// stale copy catches up, and optimistic mode returns.
//
//	go run ./examples/missingwrites
package main

import (
	"fmt"

	"qcommit"
)

func main() {
	c := qcommit.MustCluster([]qcommit.ReplicatedItem{
		{Name: "orders", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 100},
	}, qcommit.Options{
		Protocol: qcommit.ProtoQC1,
		Strategy: qcommit.StrategyMissingWrites,
		Seed:     7,
	})

	show := func(stage string) {
		fmt.Printf("%-34s mode=%-11v missing=%v\n", stage, c.ItemMode("orders"), c.MissingWritesAt("orders"))
	}

	// Healthy: every item starts optimistic — any single copy serves reads.
	show("healthy:")
	c.Partition([]qcommit.SiteID{3}, []qcommit.SiteID{1, 2, 4})
	v, err := c.QuorumRead(3, "orders")
	fmt.Printf("  read-one from isolated site3: %d, %v\n", v, err)
	c.Heal()

	// A replica crashes after voting: the commit still reaches the write
	// quorum (w=3 of 4 copies), but site4's copy misses the write. The item
	// degrades to pessimistic quorum mode and the stale copy is barred from
	// serving reads.
	txn := c.Submit(1, map[qcommit.ItemID]int64{"orders": 180})
	c.CrashAt(qcommit.Time(15*qcommit.Millisecond), 4)
	c.Run()
	fmt.Printf("\ntransaction outcome: %v (write quorum met without site4)\n", c.Outcome(txn))
	show("after the write missed site4:")
	v, err = c.QuorumRead(1, "orders")
	fmt.Printf("  pessimistic quorum read: %d, %v\n", v, err)
	c.Partition([]qcommit.SiteID{3}, []qcommit.SiteID{1, 2}) // site4 down, 3 isolated
	if _, err := c.QuorumRead(3, "orders"); err != nil {
		fmt.Printf("  read-one now refused: %v\n", err)
	}
	c.Heal()

	// Site4 restarts: anti-entropy copies the latest committed version over,
	// the missing write resolves, and optimistic mode is restored.
	c.Restart(4)
	c.Run()
	show("\nafter site4 caught up (restored):")
	cv, ver, _ := c.CopyAt(4, "orders")
	fmt.Printf("  site4 copy: %d (version %d)\n", cv, ver)
	demotions, restorations := c.ModeTransitions()
	fmt.Printf("  mode transitions: %d demotion(s), %d restoration(s)\n", demotions, restorations)
	if v := c.Violations(); len(v) > 0 {
		fmt.Println("  VIOLATIONS:", v)
	}
}
