// Missing writes: the adaptive voting strategy (Eager & Sevcik 1983,
// reference [5] of the paper) layered over the static quorum assignment.
// While all copies are healthy, reads touch one copy and writes touch all
// (cheap); the first write that misses a copy degrades the item to quorum
// mode; catching the copy up restores optimistic mode.
//
//	go run ./examples/missingwrites
package main

import (
	"fmt"

	"qcommit/internal/types"
	"qcommit/internal/voting"
)

func main() {
	asgn := voting.MustAssignment(
		voting.Uniform("orders", 2, 3, 1, 2, 3, 4),
	)
	a := voting.NewAdaptive(asgn)

	show := func(stage string) {
		r, _, _ := a.ReadQuorumNow("orders")
		w, mode, _ := a.WriteQuorumNow("orders")
		fmt.Printf("%-34s mode=%-11s read needs %d vote(s), write needs %d\n", stage, mode, r, w)
	}

	show("healthy:")
	fmt.Printf("  site3 alone can serve reads: %v\n\n", a.CanRead("orders", []types.SiteID{3}))

	// A write reaches sites 1-3 only (site4 was briefly unreachable). Three
	// votes still satisfy the pessimistic write quorum w=3, so the write
	// commits — but site4 now carries a missing write.
	if !a.RecordWrite("orders", []types.SiteID{1, 2, 3}) {
		panic("write with w votes rejected")
	}
	show("after a write missed site4:")
	fmt.Printf("  missing at: %v\n", a.MissingAt("orders"))
	fmt.Printf("  site4 alone can serve reads: %v (stale copy excluded)\n",
		a.CanRead("orders", []types.SiteID{4}))
	fmt.Printf("  sites 1,2 can serve reads:   %v (2 fresh votes ≥ r=2)\n\n",
		a.CanRead("orders", []types.SiteID{1, 2}))

	// A sub-quorum write must be refused outright.
	if a.RecordWrite("orders", []types.SiteID{1, 2}) {
		panic("sub-quorum write accepted")
	}
	fmt.Println("a write reaching only 2 votes is refused (w=3)")

	// Site4's copy catches up (anti-entropy / recovery copy transfer):
	// optimistic mode returns.
	a.ResolveMissing("orders", 4)
	show("\nafter site4 caught up:")
}
