// Banking: replicated account balances across branch sites, a transfer
// interrupted by a coordinator crash plus a network partition, and the
// paper's point — which branches keep serving which accounts afterward.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"

	"qcommit"
)

func main() {
	// Two accounts replicated over six branch sites. "alice" lives at the
	// west-coast branches 1-4, "bob" at the east-coast branches 3-6; sites 3
	// and 4 carry both. Reads need 2 votes, writes need 3.
	items := []qcommit.ReplicatedItem{
		{Name: "alice", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 1000},
		{Name: "bob", Sites: []qcommit.SiteID{3, 4, 5, 6}, R: 2, W: 3, Initial: 500},
	}
	cluster, err := qcommit.NewCluster(items, qcommit.Options{Protocol: qcommit.ProtoQC1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A normal transfer: alice pays bob 200. Both balances are in one
	// atomic writeset, so all six branches participate.
	txn := cluster.Submit(1, map[qcommit.ItemID]int64{"alice": 800, "bob": 700})
	cluster.Run()
	fmt.Printf("transfer #1: %v\n", cluster.Outcome(txn))
	a, _ := cluster.QuorumRead(2, "alice")
	b, _ := cluster.QuorumRead(5, "bob")
	fmt.Printf("balances: alice=%d bob=%d\n\n", a, b)

	// A second transfer is interrupted: the coordinator crashes mid-prepare
	// and the network splits west {1,2,3} / east {4,5,6}. (Times are
	// relative to the current virtual clock.)
	txn2 := cluster.Submit(1, map[qcommit.ItemID]int64{"alice": 700, "bob": 800})
	interruptAt := cluster.Now() + qcommit.Time(14*qcommit.Millisecond)
	cluster.CrashAt(interruptAt, 1)
	cluster.PartitionAt(interruptAt, []qcommit.SiteID{1, 2, 3}, []qcommit.SiteID{4, 5, 6})
	cluster.Run()

	fmt.Printf("transfer #2 interrupted (coordinator crash + partition):\n")
	for _, site := range cluster.Sites() {
		fmt.Printf("  site%d: %v\n", site, cluster.OutcomeAt(site, txn2))
	}
	fmt.Println()
	fmt.Print(cluster.Availability(txn2).String())

	// The quorum-based termination protocol terminated the transfer in the
	// partitions that could assemble replica quorums; accounts there are
	// accessible again. Show which branch can serve whom.
	fmt.Println("\nbranch service map during the partition:")
	for _, site := range cluster.Sites() {
		for _, acct := range []qcommit.ItemID{"alice", "bob"} {
			if v, err := cluster.QuorumRead(site, acct); err == nil {
				fmt.Printf("  site%d can read %s = %d\n", site, acct, v)
			}
		}
	}

	// Heal, restart the coordinator and nudge the termination protocol:
	// every branch converges.
	cluster.Heal()
	cluster.Restart(1)
	cluster.Kick(txn2)
	cluster.Run()
	fmt.Printf("\nafter heal: transfer #2 is %v everywhere\n", cluster.Outcome(txn2))
	a, _ = cluster.QuorumRead(2, "alice")
	b, _ = cluster.QuorumRead(5, "bob")
	fmt.Printf("balances: alice=%d bob=%d\n", a, b)
	if v := cluster.Violations(); len(v) > 0 {
		fmt.Println("violations:", v)
	} else {
		fmt.Println("atomicity held throughout (money was neither lost nor created)")
	}
}
