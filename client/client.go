// Package client speaks the qcommitd client protocol: a request/response
// layer over the same stream framing the peer links use (see internal/msg).
// One Client holds one TCP connection to one node and pipelines its calls: a
// dedicated reader goroutine demultiplexes responses by correlation number,
// so any number of goroutines may issue requests concurrently on one Client
// and independent exchanges overlap on the wire instead of queueing behind
// each other's round-trip latency.
//
// The control calls (Partition, Heal) drive the e2e failure-injection
// machinery: a multi-process cluster has no shared memory to install a
// partition through, so a harness tells every node's transport its local
// topology view, one control round-trip per node.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"qcommit/internal/msg"
	"qcommit/internal/transport"
	"qcommit/internal/types"
)

// ioTimeout bounds one request/response exchange that is not itself a
// deadline-carrying wait.
const ioTimeout = 10 * time.Second

// Client is one connection to one qcommitd node.
type Client struct {
	site types.SiteID
	conn net.Conn

	wmu sync.Mutex // serializes frame writes on the connection

	mu      sync.Mutex
	req     uint64
	waiters map[uint64]chan msg.Message
	readErr error // sticky; set when the reader goroutine exits
}

// Dial connects to the qcommitd node serving site at addr.
func Dial(addr string, site types.SiteID) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, ioTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial site%d at %s: %w", site, addr, err)
	}
	c := &Client{
		site:    site,
		conn:    conn,
		waiters: make(map[uint64]chan msg.Message),
	}
	go c.readLoop()
	return c, nil
}

// Site returns the site this client talks to.
func (c *Client) Site() types.SiteID { return c.site }

// Close closes the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop demultiplexes inbound frames to the calls waiting on them. A
// response whose waiter already gave up (per-call timeout) is dropped.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		env, err := msg.ReadEnvelope(br)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for req, ch := range c.waiters {
				close(ch)
				delete(c.waiters, req)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		if ch, ok := c.waiters[reqOf(env.Msg)]; ok {
			//qlint:allow lockheld waiter channels are buffered (cap 1, one reply per request), so the send never blocks
			ch <- env.Msg
			delete(c.waiters, reqOf(env.Msg))
		}
		c.mu.Unlock()
	}
}

// roundTrip registers a waiter, sends one request, and blocks until the
// response carrying its correlation number arrives or timeout passes. Other
// calls' exchanges proceed concurrently.
func (c *Client) roundTrip(build func(req uint64) msg.Message, timeout time.Duration) (msg.Message, error) {
	ch := make(chan msg.Message, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("client: site%d: connection down: %w", c.site, err)
	}
	c.req++
	req := c.req
	c.waiters[req] = ch
	c.mu.Unlock()

	env := msg.Envelope{From: transport.ClientID, To: c.site, Msg: build(req)}
	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(ioTimeout))
	err := msg.WriteEnvelope(c.conn, env)
	c.conn.SetWriteDeadline(time.Time{})
	c.wmu.Unlock()
	if err != nil {
		c.abandon(req)
		return nil, fmt.Errorf("client: site%d request: %w", c.site, err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, fmt.Errorf("client: site%d response: %w", c.site, err)
		}
		return m, nil
	case <-timer.C:
		c.abandon(req)
		return nil, fmt.Errorf("client: site%d: no response within %v", c.site, timeout)
	}
}

// abandon drops the waiter for req; a late response is discarded by readLoop.
func (c *Client) abandon(req uint64) {
	c.mu.Lock()
	delete(c.waiters, req)
	c.mu.Unlock()
}

func reqOf(m msg.Message) uint64 {
	switch v := m.(type) {
	case msg.ClientBeginAck:
		return v.Req
	case msg.ClientOutcome:
		return v.Req
	case msg.ClientValue:
		return v.Req
	case msg.CtrlAck:
		return v.Req
	default:
		return 0
	}
}

// Begin asks the node to coordinate a transaction writing the given values
// and returns its cluster-wide transaction ID.
func (c *Client) Begin(writes map[types.ItemID]int64) (types.TxnID, error) {
	items := make([]types.ItemID, 0, len(writes))
	for it := range writes {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	ws := make(types.Writeset, 0, len(items))
	for _, it := range items {
		ws = append(ws, types.Update{Item: it, Value: writes[it]})
	}
	resp, err := c.roundTrip(func(req uint64) msg.Message {
		return msg.ClientBegin{Req: req, Writeset: ws}
	}, ioTimeout)
	if err != nil {
		return 0, err
	}
	ack, ok := resp.(msg.ClientBeginAck)
	if !ok {
		return 0, fmt.Errorf("client: site%d: unexpected %T to Begin", c.site, resp)
	}
	return ack.Txn, nil
}

// WaitOutcome blocks until the node has durably decided txn or timeout
// passes, returning the node's local view at that point (OutcomeBlocked for
// a node wedged mid-protocol — the observable that distinguishes a blocked
// 2PC survivor from a terminated quorum-protocol one).
func (c *Client) WaitOutcome(txn types.TxnID, timeout time.Duration) (types.Outcome, error) {
	resp, err := c.roundTrip(func(req uint64) msg.Message {
		return msg.ClientWait{Req: req, Txn: txn, Timeout: timeout}
	}, timeout+ioTimeout)
	if err != nil {
		return types.OutcomeUnknown, err
	}
	out, ok := resp.(msg.ClientOutcome)
	if !ok {
		return types.OutcomeUnknown, fmt.Errorf("client: site%d: unexpected %T to WaitOutcome", c.site, resp)
	}
	return out.Outcome, nil
}

// Read returns the node's local copy of item (found=false when the node
// holds no copy).
func (c *Client) Read(item types.ItemID) (value int64, version uint64, found bool, err error) {
	resp, err := c.roundTrip(func(req uint64) msg.Message {
		return msg.ClientRead{Req: req, Item: item}
	}, ioTimeout)
	if err != nil {
		return 0, 0, false, err
	}
	v, ok := resp.(msg.ClientValue)
	if !ok {
		return 0, 0, false, fmt.Errorf("client: site%d: unexpected %T to Read", c.site, resp)
	}
	return v.Value, v.Version, v.Found, nil
}

// Partition installs a partition view on this node's transport; the groups
// describe the whole network, unlisted sites forming a residual group. Drive
// the same call to every node to cut a real multi-process cluster.
func (c *Client) Partition(groups ...[]types.SiteID) error {
	resp, err := c.roundTrip(func(req uint64) msg.Message {
		return msg.CtrlPartition{Req: req, Groups: groups}
	}, ioTimeout)
	if err != nil {
		return err
	}
	if _, ok := resp.(msg.CtrlAck); !ok {
		return fmt.Errorf("client: site%d: unexpected %T to Partition", c.site, resp)
	}
	return nil
}

// Heal removes this node's partition view.
func (c *Client) Heal() error { return c.Partition() }
